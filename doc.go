// Package sdmmon is a from-scratch reproduction of "System-Level Security
// for Network Processors with Hardware Monitors" (Hu, Wolf, Teixeira,
// Tessier — DAC 2014).
//
// The repository implements the complete system in Go: a MIPS-I network
// processor core simulator with an instruction-granular hardware monitor, a
// parameterizable Merkle-tree hash, the three-entity secure installation
// protocol (manufacturer → operator → device), a gate-level netlist +
// LUT-mapping flow that regenerates the FPGA resource tables, an embedded
// cost model for the control-processor timings, and the attack models the
// security argument rests on.
//
// Entry points:
//   - internal/core: the SDMMon facade (manufacture → certify → program →
//     install → run).
//   - cmd/experiments: regenerates every table and figure of the paper.
//   - cmd/sdmmon: file-based CLI for the full lifecycle.
//   - examples/: runnable walk-throughs.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results, including two reproduction findings about the
// arithmetic-sum compression function.
package sdmmon
