# SDMMon — build, test and reproduction targets.

GO ?= go
GOFMT ?= gofmt

.PHONY: all check build vet fmt-check test test-short test-race test-obs test-faults test-rollout test-shard test-threat test-fleet test-campaign test-tenant bench bench-ingress bench-tenant fuzz experiments examples verilog clean

all: check

# The default CI gate: build, static checks, full tests, the race
# detector over the concurrent packages, the observability layer, the
# fault-injection suite, the live-upgrade suite, the sharded traffic
# plane, the graded threat-response engine, the adversarial campaign
# corpus, and the multi-tenant protection domains.
check: build vet fmt-check test test-race test-obs test-faults test-rollout test-shard test-threat test-fleet test-campaign test-tenant

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail if any file is not gofmt-clean.
fmt-check:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race detector over the packages with real goroutine concurrency (the
# ProcessBatch workers and the network-path pipeline).
test-race:
	$(GO) test -race ./internal/npu/... ./internal/network/...

# The observability layer under the race detector: event rings, the
# metrics registry, the exporters, and the stats/telemetry consistency
# tests in the packages that publish into it.
test-obs:
	$(GO) test -race ./internal/obs/...
	$(GO) test -race -run 'Obs|Telemetry|Stats|WireGroundTruth|RoundTrip|DoubleCount' \
		./internal/npu/... ./internal/network/... ./cmd/npsim/...

# The live-upgrade suite under the race detector: staged install and
# atomic cutover, canary rollout with auto-rollback, and the
# anti-downgrade sequence ledger.
test-rollout:
	$(GO) test -race -run 'Upgrade|Stage|Commit|Rollback|Rollout|Downgrade|Manifest|Sequence|Ledger|Replay' \
		./internal/seccrypto/... ./internal/npu/... ./internal/core/... ./internal/network/...

# The resilience suite under the race detector: fault injectors, core
# quarantine/recovery, and the retrying secure install.
test-faults:
	$(GO) test -race ./internal/fault/...
	$(GO) test -race -run 'FaultInjection|Supervisor|Quarantine|Recovery|Watchdog|Reliable|QueueSim' \
		./internal/npu/... ./internal/network/...

# The sharded traffic plane under the race detector (dispatch, admission
# control, failover, packet conservation, the lock-free ingress ring),
# plus the perf gates run without instrumentation so their numbers are
# undistorted: TestShardScalingGate (>= 1.6x simulated aggregate at 4
# shards vs 1) and TestIngressFastGate (>= 2x ring vs mutex hand-off).
test-shard:
	$(GO) test -race ./internal/shard/...
	$(GO) test -run 'ShardScalingGate|IngressFastGate' -count=1 ./internal/shard/

# The graded threat-response engine under the race detector: EWMA/FSM
# edge cases, deterministic campaign replay (byte-identical incident
# records), the live-plane concurrent-drains test, and the shard-side
# conservation drill with responses firing mid-traffic.
test-threat:
	$(GO) test -race ./internal/threat/...
	$(GO) test -race -run 'Threat' -count=1 ./internal/shard/...

# The hierarchical control plane under the race detector (wave rollouts,
# partition-tolerant delivery, resume, rotation), plus the npsim drills
# end to end.
test-fleet:
	$(GO) test -race ./internal/fleet/...
	$(GO) run ./cmd/npsim -fleet all -routers 96 -seed 4 > /dev/null

# The adversarial campaign corpus under the race detector: the five
# attack families with byte-identical replay, the live concurrent-plane
# drill, the FreezeAt poisoning contrast, the fleet evasion drill, and
# the npsim self-asserting campaign drill end to end.
test-campaign:
	$(GO) test -race ./internal/campaign/...
	$(GO) test -race -run 'Campaign' -count=1 ./internal/shard/... ./internal/threat/... ./internal/fleet/...
	$(GO) run ./cmd/npsim -campaign all -seed 2 > /dev/null

# The multi-tenant protection domains under the race detector: the
# trusted domain manager (per-tenant ledgers, domain-gated installs,
# canaried tenant rollouts), the npu domain partition, the per-tenant
# dispatch/conservation/leakage tests in the shard plane, and the npsim
# two-tenant isolation drill end to end (gadget + noc at one tenant,
# bystander byte-identical to a no-attack control).
test-tenant:
	$(GO) test -race ./internal/tenant/...
	$(GO) test -race -run 'Tenant|Domain|Instance' -count=1 ./internal/npu/... ./internal/shard/... ./internal/campaign/...
	$(GO) run ./cmd/npsim -tenant > /dev/null

bench:
	$(GO) test -bench=. -benchmem ./...

# Re-measure only the ingress hand-off series (lock-free ring vs the
# mutex-queue baseline at 1/4/16 submitters), merging the points into the
# existing BENCH_npu.json and recomputing the ingress_fast ratios.
bench-ingress:
	$(GO) run ./cmd/npsim -benchingress

# Re-measure only the tenant_isolation series (per-tenant pkts/sec at
# 1/2/4 tenants on a partitioned plane), merging the points into the
# existing BENCH_npu.json and recomputing the min_vs_baseline ratios.
bench-tenant:
	$(GO) run ./cmd/npsim -benchtenant

# Brief fuzzing pass over the attacker-facing parsers and the data plane.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzAssemble -fuzztime=30s ./internal/asm/
	$(GO) test -run=NONE -fuzz=FuzzDeserializeProgram -fuzztime=30s ./internal/asm/
	$(GO) test -run=NONE -fuzz=FuzzDeserializeGraph -fuzztime=30s ./internal/monitor/
	$(GO) test -run=NONE -fuzz=FuzzUnmarshalPackage -fuzztime=30s ./internal/seccrypto/
	$(GO) test -run=NONE -fuzz=FuzzProcessPacket -fuzztime=30s ./internal/npu/
	$(GO) test -run=NONE -fuzz=FuzzThreatPolicy -fuzztime=30s ./internal/threat/
	$(GO) test -run=NONE -fuzz=FuzzIncidentRecord -fuzztime=30s ./internal/threat/
	$(GO) test -run=NONE -fuzz=FuzzFleetReport -fuzztime=30s ./internal/fleet/
	$(GO) test -run=NONE -fuzz=FuzzRotationPlan -fuzztime=30s ./internal/fleet/
	$(GO) test -run=NONE -fuzz=FuzzCampaignSpec -fuzztime=30s ./internal/campaign/

# Regenerate every table/figure of the paper (EXPERIMENTS.md source).
experiments:
	$(GO) run ./cmd/experiments

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/secure_install
	$(GO) run ./examples/attack_detection
	$(GO) run ./examples/multicore_router
	$(GO) run ./examples/hardware_flow

# Emit the RTL artifacts.
verilog:
	$(GO) run ./cmd/hwgen -unit merkle -o merkle_hash_unit.v
	$(GO) run ./cmd/hwgen -unit bitcount -o bitcount_hash_unit.v
	$(GO) run ./cmd/hwgen -unit comparator -o hash_comparator.v

clean:
	rm -f merkle_hash_unit.v bitcount_hash_unit.v hash_comparator.v
	rm -f test_output.txt bench_output.txt
