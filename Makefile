# SDMMon — build, test and reproduction targets.

GO ?= go

.PHONY: all build vet test test-short bench fuzz experiments examples verilog clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Brief fuzzing pass over the attacker-facing parsers.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzAssemble -fuzztime=30s ./internal/asm/
	$(GO) test -run=NONE -fuzz=FuzzDeserializeProgram -fuzztime=30s ./internal/asm/
	$(GO) test -run=NONE -fuzz=FuzzDeserializeGraph -fuzztime=30s ./internal/monitor/
	$(GO) test -run=NONE -fuzz=FuzzUnmarshalPackage -fuzztime=30s ./internal/seccrypto/

# Regenerate every table/figure of the paper (EXPERIMENTS.md source).
experiments:
	$(GO) run ./cmd/experiments

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/secure_install
	$(GO) run ./examples/attack_detection
	$(GO) run ./examples/multicore_router
	$(GO) run ./examples/hardware_flow

# Emit the RTL artifacts.
verilog:
	$(GO) run ./cmd/hwgen -unit merkle -o merkle_hash_unit.v
	$(GO) run ./cmd/hwgen -unit bitcount -o bitcount_hash_unit.v
	$(GO) run ./cmd/hwgen -unit comparator -o hash_comparator.v

clean:
	rm -f merkle_hash_unit.v bitcount_hash_unit.v hash_comparator.v
	rm -f test_output.txt bench_output.txt
