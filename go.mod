module sdmmon

go 1.22
