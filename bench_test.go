package sdmmon

// One benchmark per evaluation artifact (Tables 1–3, Figure 6), the
// prose-claim experiments (E5, E6, E8), microbenchmarks of the hot paths,
// and the ablations called out in DESIGN.md §5. Shape metrics (who wins, by
// what factor) are exported via b.ReportMetric so `go test -bench` output
// doubles as the EXPERIMENTS.md data source.

import (
	crand "crypto/rand"
	"fmt"
	mrand "math/rand"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/attack"
	"sdmmon/internal/fpga"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
	"sdmmon/internal/netlist"
	"sdmmon/internal/network"
	"sdmmon/internal/npu"
	"sdmmon/internal/obs"
	"sdmmon/internal/packet"
	"sdmmon/internal/seccrypto"
	"sdmmon/internal/techmap"
	"sdmmon/internal/timing"
)

// --- Table 1 ---------------------------------------------------------------

func BenchmarkTable1ResourceUse(b *testing.B) {
	var rows []fpga.Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = fpga.Table1(fpga.DefaultMonitorConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[1].Model.LUTs), "controlproc-LUTs")
	b.ReportMetric(float64(rows[2].Model.LUTs), "npcore-LUTs")
	b.ReportMetric(rows[2].ErrPct(), "npcore-err-%")
}

// --- Table 2 ---------------------------------------------------------------

func BenchmarkTable2SecurityFunctions(b *testing.B) {
	m := timing.NiosIIPrototype()
	var steps []timing.Step
	for i := 0; i < b.N; i++ {
		steps = m.Table2(timing.PrototypePackageInput())
	}
	for _, s := range steps {
		switch s.Name {
		case "Decrypt AES key using router private key":
			b.ReportMetric(s.Seconds, "rsa-decrypt-s")
		case "Total":
			b.ReportMetric(s.Seconds, "total-s")
		}
	}
}

// BenchmarkSecureInstall measures the real cryptographic pipeline (not the
// embedded model): device-side verification of a genuine package.
func BenchmarkSecureInstall(b *testing.B) {
	mfr, err := seccrypto.NewManufacturer("m", crand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	op, err := seccrypto.NewOperator("o", crand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	cert, err := mfr.IssueCertificate(op)
	if err != nil {
		b.Fatal(err)
	}
	op.SetCertificate(cert)
	dev, err := mfr.ProvisionDevice("r0", crand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		b.Fatal(err)
	}
	h := mhash.NewMerkle(0xABCD)
	g, err := monitor.Extract(prog, h)
	if err != nil {
		b.Fatal(err)
	}
	pkg, err := op.BuildPackage(dev.PublicInfo(), &seccrypto.Bundle{
		Binary: prog.Serialize(), Graph: g.Serialize(), HashParam: 0xABCD,
	}, crand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dev.OpenPackage(pkg, false); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 3 ---------------------------------------------------------------

func BenchmarkTable3HashCost(b *testing.B) {
	var rows []fpga.Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = fpga.Table3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Model.LUTs), "bitcount-LUTs")
	b.ReportMetric(float64(rows[1].Model.LUTs), "merkle-LUTs")
	b.ReportMetric(float64(rows[1].Model.MemBits), "merkle-membits")
}

func BenchmarkTechmapMerkleUnit(b *testing.B) {
	ckt := netlist.BuildMerkleUnit(netlist.MerkleUnitOptions{Registered: true})
	for i := 0; i < b.N; i++ {
		if _, err := techmap.Map(ckt, techmap.Options{K: 4, UseCarryChains: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 6 ---------------------------------------------------------------

func BenchmarkFigure6HashDistribution(b *testing.B) {
	rng := mrand.New(mrand.NewSource(1))
	mk := func(p uint32) mhash.Hasher { return mhash.NewMerkle(p) }
	var pd *mhash.PairDistribution
	for i := 0; i < b.N; i++ {
		pd = mhash.HammingDistribution(mk, 200, rng)
	}
	b.ReportMetric(pd.Mean(16), "mean-outHD-at-inHD16")
	b.ReportMetric(pd.TotalVariation(16), "TV-at-inHD16")
	b.ReportMetric(pd.TotalVariation(1), "TV-at-inHD1")
}

// --- E5: geometric escape probability ---------------------------------------

func BenchmarkEscapeProbability(b *testing.B) {
	rng := mrand.New(mrand.NewSource(2))
	mk := func(p uint32) mhash.Hasher { return mhash.NewMerkle(p) }
	var probs []float64
	for i := 0; i < b.N; i++ {
		probs = mhash.EscapeProbability(mk, 2, 20000, rng)
	}
	b.ReportMetric(probs[1], "escape-k1")
	b.ReportMetric(probs[2], "escape-k2")
}

// --- E6: cascade containment -------------------------------------------------

func BenchmarkCascadeContainment(b *testing.B) {
	variants := []struct {
		name        string
		diverse     bool
		compression mhash.Compress
	}{
		{"homogeneous-sum", false, nil},
		{"diverse-sum", true, nil},
		{"diverse-sbox", true, mhash.SBoxCompress()},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var res network.CascadeResult
			for i := 0; i < b.N; i++ {
				f, err := network.NewFleet(network.FleetConfig{
					Size: 8, DiverseParams: v.diverse, Compression: v.compression,
					Seed: int64(i) + 5,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err = f.Cascade()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Compromised), "compromised-of-8")
		})
	}
}

// --- E8: detection -----------------------------------------------------------

func BenchmarkDetectionLatency(b *testing.B) {
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		b.Fatal(err)
	}
	smash := attack.DefaultSmash()
	code, err := smash.HijackPayload()
	if err != nil {
		b.Fatal(err)
	}
	pkt, err := smash.CraftPacket(code)
	if err != nil {
		b.Fatal(err)
	}
	h := mhash.NewMerkle(0x1357)
	g, err := monitor.Extract(prog, h)
	if err != nil {
		b.Fatal(err)
	}
	m, err := monitor.New(g, h)
	if err != nil {
		b.Fatal(err)
	}
	core := apps.NewCore(prog)
	core.Trace = m.Observe
	detected := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		res := core.Process(pkt, 0)
		if res.Exc != nil {
			detected++
		}
	}
	b.ReportMetric(float64(detected)/float64(b.N), "detection-rate")
}

// --- throughput + monitor-overhead ablation ----------------------------------

func benchThroughput(b *testing.B, monitors bool) {
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		b.Fatal(err)
	}
	h := mhash.NewMerkle(0x2468)
	g, err := monitor.Extract(prog, h)
	if err != nil {
		b.Fatal(err)
	}
	np, err := npu.New(npu.Config{Cores: 1, MonitorsEnabled: monitors})
	if err != nil {
		b.Fatal(err)
	}
	if err := np.InstallAll("ipv4cm", prog.Serialize(), g.Serialize(), 0x2468); err != nil {
		b.Fatal(err)
	}
	gen := packet.NewGenerator(9)
	gen.OptionWords = 1
	pkts := make([][]byte, 64)
	for i := range pkts {
		pkts[i] = gen.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := np.Process(pkts[i%len(pkts)], 0); err != nil {
			b.Fatal(err)
		}
	}
	s := np.Stats()
	b.ReportMetric(float64(s.Cycles)/float64(s.Processed), "simcycles/pkt")
}

func BenchmarkMonitoredForwarding(b *testing.B)   { benchThroughput(b, true) }
func BenchmarkUnmonitoredForwarding(b *testing.B) { benchThroughput(b, false) }

// BenchmarkParallelForwarding exercises the goroutine-per-core batch path.
func BenchmarkParallelForwarding(b *testing.B) {
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		b.Fatal(err)
	}
	h := mhash.NewMerkle(0x9999)
	g, err := monitor.Extract(prog, h)
	if err != nil {
		b.Fatal(err)
	}
	np, err := npu.New(npu.Config{Cores: 4, MonitorsEnabled: true})
	if err != nil {
		b.Fatal(err)
	}
	if err := np.InstallAll("ipv4cm", prog.Serialize(), g.Serialize(), 0x9999); err != nil {
		b.Fatal(err)
	}
	gen := packet.NewGenerator(10)
	gen.OptionWords = 1
	batch := make([][]byte, 256)
	for i := range batch {
		batch[i] = gen.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := np.ProcessBatch(batch, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(batch)), "pkts/batch")
}

// --- NP throughput sweep (BENCH_npu.json) --------------------------------------

// npThroughputReport collects every BenchmarkNPThroughput sub-benchmark and
// rewrites BENCH_npu.json as they complete, so a partial -bench run still
// leaves a valid baseline on disk. Shared schema with `npsim -bench`.
var npThroughputReport = npu.NewBenchReport("ipv4cm", "BenchmarkNPThroughput")

// BenchmarkNPThroughput sweeps core counts and batch sizes over the
// allocation-free fast path and the pre-optimization reference path
// (Config.Reference), reporting wall-clock packets/sec and emitting the
// machine-readable BENCH_npu.json perf baseline.
func BenchmarkNPThroughput(b *testing.B) {
	paths := []struct {
		name      string
		reference bool
	}{{"fast", false}, {"reference", true}}
	for _, path := range paths {
		for _, cores := range []int{1, 2, 4, 8} {
			for _, batch := range []int{64, 256} {
				name := fmt.Sprintf("%s/cores=%d/batch=%d", path.name, cores, batch)
				path, cores, batch := path, cores, batch
				b.Run(name, func(b *testing.B) {
					benchNPThroughputPoint(b, path.name, cores, batch, path.reference, nil)
				})
			}
		}
	}
	// Instrumented delta: the fast-path shapes `npsim -bench` also measures,
	// re-run with a live telemetry collector (counters, per-core cycle
	// histograms, event rings). Write() pairs them with the bare points above
	// into OverheadInstrumented.
	for _, cores := range []int{4, 8} {
		cores := cores
		name := fmt.Sprintf("fast/cores=%d/batch=256/instrumented", cores)
		b.Run(name, func(b *testing.B) {
			benchNPThroughputPoint(b, "fast", cores, 256, false, obs.New(obs.DefaultRingDepth))
		})
	}
}

func benchNPThroughputPoint(b *testing.B, pathName string, cores, batch int, reference bool, col *obs.Collector) {
	np, err := npu.NewBenchNPWith("ipv4cm", cores, reference, 11, col)
	if err != nil {
		b.Fatal(err)
	}
	pkts := npu.BenchPackets(batch, 12, 1)
	// Warm-up: hash caches, output buffers, batch arena.
	if _, err := np.ProcessBatch(pkts, 0); err != nil {
		b.Fatal(err)
	}
	before := np.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := np.ProcessBatch(pkts, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	after := np.Stats()
	wall := b.Elapsed().Seconds()
	processed := after.Processed - before.Processed
	point := npu.BenchPoint{
		Path: pathName, Cores: cores, Batch: batch,
		Packets: processed, WallSeconds: wall,
		Instrumented: col != nil,
	}
	if wall > 0 && processed > 0 {
		point.PktsPerSec = float64(processed) / wall
		point.NsPerPkt = wall * 1e9 / float64(processed)
		point.SimCyclesPerPkt = float64(after.Cycles-before.Cycles) / float64(processed)
	}
	if hits, misses := np.HashCacheStats(); hits+misses > 0 {
		point.HashHitRate = float64(hits) / float64(hits+misses)
	}
	b.ReportMetric(point.PktsPerSec, "pkts/sec")
	npThroughputReport.Add(point)
	if err := npThroughputReport.Write("BENCH_npu.json"); err != nil {
		b.Fatal(err)
	}
}

// --- E9: dynamic workload management -------------------------------------------

func BenchmarkWorkloadRebalancing(b *testing.B) {
	np, err := npu.New(npu.Config{Cores: 4, MonitorsEnabled: true})
	if err != nil {
		b.Fatal(err)
	}
	m, err := network.NewWorkloadManager(np, network.DefaultClasses(), 200, 1)
	if err != nil {
		b.Fatal(err)
	}
	gen := packet.NewGenerator(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Flip the mix periodically so rebalances occur inside the loop.
		if i%400 == 0 {
			gen.UDPShare = 1 - gen.UDPShare
		}
		if _, err := m.Process(gen.Next(), 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Reprograms), "reprograms")
}

// --- hash microbenchmarks ------------------------------------------------------

func BenchmarkMerkleHash(b *testing.B) {
	h := mhash.NewMerkle(0xCAFEBABE)
	var sink uint8
	for i := 0; i < b.N; i++ {
		sink ^= h.Hash(uint32(i) * 2654435761)
	}
	_ = sink
}

func BenchmarkBitcountHash(b *testing.B) {
	h := mhash.NewBitcount()
	var sink uint8
	for i := 0; i < b.N; i++ {
		sink ^= h.Hash(uint32(i) * 2654435761)
	}
	_ = sink
}

// BenchmarkMonitorImplementations compares the map-based reference monitor
// with the packed (hardware-layout, bitmap) monitor on the same stream.
func BenchmarkMonitorImplementations(b *testing.B) {
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		b.Fatal(err)
	}
	h := mhash.NewMerkle(0x1111)
	g, err := monitor.Extract(prog, h)
	if err != nil {
		b.Fatal(err)
	}
	words := prog.CodeWords()
	b.Run("map", func(b *testing.B) {
		m, err := monitor.New(g, h)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			cw := words[i%len(words)]
			if !m.Observe(cw.Addr, cw.W) {
				m.Reset()
			}
		}
	})
	b.Run("packed", func(b *testing.B) {
		p, err := monitor.Pack(g)
		if err != nil {
			b.Fatal(err)
		}
		m, err := monitor.NewPacked(p, h)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			cw := words[i%len(words)]
			if !m.Observe(cw.Addr, cw.W) {
				m.Reset()
			}
		}
	})
}

func BenchmarkGraphExtraction(b *testing.B) {
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		b.Fatal(err)
	}
	h := mhash.NewMerkle(7)
	for i := 0; i < b.N; i++ {
		if _, err := monitor.Extract(prog, h); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations ------------------------------------------------------------------

// BenchmarkAblationCompression compares the compression functions on the
// two properties that matter: Figure 6 randomness (TV distance at mid-range
// input HD) and attack transferability across parameters.
func BenchmarkAblationCompression(b *testing.B) {
	mks := map[string]func(uint32) mhash.Hasher{
		"sum": func(p uint32) mhash.Hasher { return mhash.NewMerkle(p) },
		"xor": func(p uint32) mhash.Hasher {
			h, _ := mhash.NewMerkleWith(p, 4, mhash.XorCompress(4))
			return h
		},
		"sbox": func(p uint32) mhash.Hasher {
			h, _ := mhash.NewMerkleWith(p, 4, mhash.SBoxCompress())
			return h
		},
	}
	for name, mk := range mks {
		b.Run(name, func(b *testing.B) {
			rng := mrand.New(mrand.NewSource(3))
			var pd *mhash.PairDistribution
			for i := 0; i < b.N; i++ {
				pd = mhash.HammingDistribution(mk, 150, rng)
			}
			b.ReportMetric(pd.TotalVariation(16), "TV-at-inHD16")
			b.ReportMetric(attack.TransferProbability(mk, 2000, 4), "attack-transfer-prob")
		})
	}
}

// BenchmarkAblationHashWidth sweeps the monitor hash width: escape
// probability halves per bit while the monitoring-graph memory grows.
func BenchmarkAblationHashWidth(b *testing.B) {
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		b.Fatal(err)
	}
	for _, width := range []int{2, 4, 8} {
		b.Run(map[int]string{2: "w2", 4: "w4", 8: "w8"}[width], func(b *testing.B) {
			mk := func(p uint32) mhash.Hasher {
				h, err := mhash.NewMerkleWith(p, width, nil)
				if err != nil {
					b.Fatal(err)
				}
				return h
			}
			rng := mrand.New(mrand.NewSource(5))
			var esc []float64
			for i := 0; i < b.N; i++ {
				esc = mhash.EscapeProbability(mk, 1, 20000, rng)
			}
			g, err := monitor.Extract(prog, mk(1))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(esc[1], "escape-k1")
			b.ReportMetric(float64(g.MemoryBits()), "graph-bits")
		})
	}
}

// BenchmarkAblationGranularity compares the paper's per-instruction
// monitoring against the related-work block-granularity design point:
// memory footprint vs detection latency.
func BenchmarkAblationGranularity(b *testing.B) {
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		b.Fatal(err)
	}
	h := mhash.NewMerkle(0xB10C)
	g, err := monitor.Extract(prog, h)
	if err != nil {
		b.Fatal(err)
	}
	bg, err := monitor.ExtractBlocks(prog, h)
	if err != nil {
		b.Fatal(err)
	}
	words := prog.CodeWords()
	b.Run("instruction", func(b *testing.B) {
		m, err := monitor.New(g, h)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			cw := words[i%len(words)]
			if !m.Observe(cw.Addr, cw.W) {
				m.Reset()
			}
		}
		b.ReportMetric(float64(g.MemoryBits()), "graph-bits")
	})
	b.Run("block", func(b *testing.B) {
		m, err := monitor.NewBlock(bg, h)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			cw := words[i%len(words)]
			if !m.Observe(cw.Addr, cw.W) {
				m.Reset()
			}
		}
		b.ReportMetric(float64(bg.MemoryBits()), "graph-bits")
	})
}

// BenchmarkAblationLUTK maps the Table 3 circuits at K=4 and K=6.
func BenchmarkAblationLUTK(b *testing.B) {
	merkle := netlist.BuildMerkleUnit(netlist.MerkleUnitOptions{Registered: true})
	bitcount := netlist.BuildBitcountUnit(netlist.BitcountUnitOptions{Registered: true})
	for _, k := range []int{4, 6} {
		b.Run(map[int]string{4: "K4", 6: "K6"}[k], func(b *testing.B) {
			var rm, rb *techmap.Result
			var err error
			for i := 0; i < b.N; i++ {
				rm, err = techmap.Map(merkle, techmap.Options{K: k, UseCarryChains: true})
				if err != nil {
					b.Fatal(err)
				}
				rb, err = techmap.Map(bitcount, techmap.Options{K: k})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rm.TotalALUTs()), "merkle-ALUTs")
			b.ReportMetric(float64(rb.TotalALUTs()), "bitcount-ALUTs")
		})
	}
}
