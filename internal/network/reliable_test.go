package network

import (
	"errors"
	"fmt"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/core"
	"sdmmon/internal/fault"
	"sdmmon/internal/packet"
)

// reliableFleet builds an operator and n certified routers for rollout
// tests.
func reliableFleet(t *testing.T, n int) (*core.Operator, []*core.Device) {
	t.Helper()
	mfr, err := core.NewManufacturer("acme", nil)
	if err != nil {
		t.Fatal(err)
	}
	op, err := core.NewOperator("isp", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := mfr.Certify(op); err != nil {
		t.Fatal(err)
	}
	var devices []*core.Device
	for i := 0; i < n; i++ {
		d, err := mfr.Manufacture(fmt.Sprintf("router-%d", i), core.DeviceConfig{Cores: 1, MonitorsEnabled: true})
		if err != nil {
			t.Fatal(err)
		}
		devices = append(devices, d)
	}
	return op, devices
}

// The acceptance scenario: a 4-router fleet over a link losing and
// corrupting well above 10% of datagrams still converges, with retries
// visible per router and every installed package verified.
func TestDistributeReliableConvergesOverLossyLink(t *testing.T) {
	op, devices := reliableFleet(t, 4)
	link := NewLossyLink(GigE(), fault.LinkFaults{DropRate: 0.25, CorruptRate: 0.15, DuplicateRate: 0.05}, 99)
	pol := DefaultRetryPolicy()
	pol.MaxAttempts = 32
	pol.DeadlineSeconds = 0 // attempts bound only; loss decides the count

	out, err := DistributeReliable(op, devices, apps.IPv4CM(), link, pol, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged() {
		t.Fatalf("fleet did not converge: %d failed, reports %+v", out.Failed, out.Reports)
	}
	if out.Succeeded != 4 || len(out.Reports) != 4 {
		t.Fatalf("succeeded=%d reports=%d, want 4/4", out.Succeeded, len(out.Reports))
	}
	if out.TotalAttempts <= 4 {
		t.Errorf("TotalAttempts=%d over a 40%% faulty link — losses were not exercised", out.TotalAttempts)
	}
	for _, r := range out.Reports {
		if r.Install == nil || r.Err != nil {
			t.Fatalf("%s: converged rollout has Install=%v Err=%v", r.DeviceID, r.Install, r.Err)
		}
		if r.Attempts < 1 {
			t.Errorf("%s: attempts=%d", r.DeviceID, r.Attempts)
		}
		if r.Attempts > 1 && r.BackoffSeconds <= 0 {
			t.Errorf("%s: %d attempts but no backoff accrued", r.DeviceID, r.Attempts)
		}
		if r.TotalSeconds < r.WireSeconds+r.BackoffSeconds {
			t.Errorf("%s: TotalSeconds=%g below wire+backoff", r.DeviceID, r.TotalSeconds)
		}
	}
	// The installs are real: every router processes benign traffic clean.
	gen := packet.NewGenerator(11)
	for _, d := range devices {
		res, err := d.Process(gen.Next(), 0)
		if err != nil || res.Detected {
			t.Fatalf("%s: post-rollout traffic failed: res=%+v err=%v", d.ID, res, err)
		}
	}
}

// A permanently dead router is a partial failure with a typed error — not
// a fleet abort: the other routers still converge.
func TestDistributeReliablePartialFailure(t *testing.T) {
	op, devices := reliableFleet(t, 4)
	link := NewLossyLink(GigE(), fault.LinkFaults{}, 1)
	link.Dead = map[string]bool{devices[2].ID: true}
	pol := DefaultRetryPolicy()
	pol.DeadlineSeconds = 0

	out, err := DistributeReliable(op, devices, apps.IPv4CM(), link, pol, 3)
	if err != nil {
		t.Fatalf("partial failure must not abort the fleet: %v", err)
	}
	if out.Succeeded != 3 || out.Failed != 1 {
		t.Fatalf("succeeded=%d failed=%d, want 3/1", out.Succeeded, out.Failed)
	}
	dead := out.Reports[2]
	if dead.DeviceID != devices[2].ID {
		t.Fatalf("report order changed: %s", dead.DeviceID)
	}
	if !errors.Is(dead.Err, ErrDeliveryAttempts) {
		t.Fatalf("dead router error = %v, want ErrDeliveryAttempts", dead.Err)
	}
	if dead.Attempts != pol.MaxAttempts || dead.Install != nil {
		t.Errorf("dead router: attempts=%d install=%v", dead.Attempts, dead.Install)
	}
	for i, r := range out.Reports {
		if i == 2 {
			continue
		}
		if r.Err != nil || r.Install == nil || r.Attempts != 1 {
			t.Errorf("%s: clean-link router not installed in one attempt: %+v", r.DeviceID, r)
		}
	}
}

// A tight per-router deadline trips ErrDeliveryDeadline before the attempt
// budget runs out.
func TestDistributeReliableDeadline(t *testing.T) {
	op, devices := reliableFleet(t, 1)
	link := NewLossyLink(GigE(), fault.LinkFaults{DropRate: 1}, 5)
	pol := RetryPolicy{
		MaxAttempts:        1000,
		BaseBackoffSeconds: 0.5,
		MaxBackoffSeconds:  2,
		DeadlineSeconds:    3,
	}
	out, err := DistributeReliable(op, devices, apps.IPv4CM(), link, pol, 9)
	if err != nil {
		t.Fatal(err)
	}
	rep := out.Reports[0]
	if !errors.Is(rep.Err, ErrDeliveryDeadline) {
		t.Fatalf("error = %v, want ErrDeliveryDeadline", rep.Err)
	}
	if rep.Attempts >= pol.MaxAttempts {
		t.Errorf("deadline should trip before the %d-attempt budget (used %d)", pol.MaxAttempts, rep.Attempts)
	}
	if out.Converged() {
		t.Error("Converged() true with a failed router")
	}
}

// Corrupted packages must be rejected by the crypto pipeline and retried —
// a corrupt-only link (nothing dropped) still converges, proving the
// device never trusts a damaged package and the retry loop heals it.
func TestDistributeReliableCorruptionNeverTrusted(t *testing.T) {
	op, devices := reliableFleet(t, 2)
	link := NewLossyLink(GigE(), fault.LinkFaults{CorruptRate: 0.5}, 21)
	pol := DefaultRetryPolicy()
	pol.MaxAttempts = 64
	pol.DeadlineSeconds = 0

	out, err := DistributeReliable(op, devices, apps.IPv4CM(), link, pol, 13)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged() {
		t.Fatalf("corrupt-only link did not converge: %+v", out.Reports)
	}
	// Every converged install passed the full verification pipeline; a
	// corrupted package that had been accepted would show up here as a
	// router alarming on its own (mis-hashed) code immediately.
	gen := packet.NewGenerator(17)
	for _, d := range devices {
		for i := 0; i < 20; i++ {
			res, err := d.Process(gen.Next(), 0)
			if err != nil || res.Detected {
				t.Fatalf("%s: corrupted install slipped through: res=%+v err=%v", d.ID, res, err)
			}
		}
	}
}
