package network

import (
	"errors"
	"fmt"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/core"
	"sdmmon/internal/fault"
	"sdmmon/internal/npu"
)

// upgradeFleet builds a supervised fleet with udpecho@1.0.0 installed and
// serving on every router.
func upgradeFleet(t *testing.T, n int) (*core.Operator, []*core.Device) {
	t.Helper()
	mfr, err := core.NewManufacturer("acme", nil)
	if err != nil {
		t.Fatal(err)
	}
	op, err := core.NewOperator("isp", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := mfr.Certify(op); err != nil {
		t.Fatal(err)
	}
	op.SetAppVersion("udpecho", "1.0.0")
	var devices []*core.Device
	for i := 0; i < n; i++ {
		d, err := mfr.Manufacture(fmt.Sprintf("router-%d", i), core.DeviceConfig{
			Cores: 2, MonitorsEnabled: true, Supervisor: npu.DefaultSupervisorConfig(),
		})
		if err != nil {
			t.Fatal(err)
		}
		wire, err := op.ProgramWire(d.Public(), apps.UDPEcho())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Install(wire); err != nil {
			t.Fatal(err)
		}
		devices = append(devices, d)
	}
	return op, devices
}

func allLive(t *testing.T, devices []*core.Device, want string) {
	t.Helper()
	for _, d := range devices {
		if live, ok := d.LiveApp(); !ok || live != want {
			t.Fatalf("%s live=%q, want %q", d.ID, live, want)
		}
	}
}

// The invariant scenario: a clean fleet upgrade under traffic. Zero packets
// attributable to the upgrade are dropped — no alarms, no faults, exact
// conservation — and every router ends on the new version.
func TestUpgradeFleetCleanZeroDowntime(t *testing.T) {
	op, devices := upgradeFleet(t, 4)
	op.SetAppVersion("udpecho", "1.1.0")
	link := NewLossyLink(GigE(), fault.LinkFaults{}, 1)
	rep, err := UpgradeFleet(op, devices, apps.UDPEcho(), RolloutConfig{Link: link, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.RolledBack {
		t.Fatalf("clean rollout: completed=%v rolledback=%v reason=%q", rep.Completed, rep.RolledBack, rep.Reason)
	}
	if rep.Target != "udpecho@1.1.0" {
		t.Fatalf("target=%q", rep.Target)
	}
	allLive(t, devices, "udpecho@1.1.0")
	if rep.Waves < 2 {
		t.Fatalf("waves=%d, want canary wave + at least one more", rep.Waves)
	}
	for _, o := range rep.Outcomes {
		if o.Phase != PhaseCommitted {
			t.Fatalf("%s phase=%v", o.DeviceID, o.Phase)
		}
	}
	// Zero downtime, quantified: every sampled packet conserved, none lost
	// to alarms or faults, and the data-plane drain is just the per-core
	// cutovers.
	if !rep.Conserved {
		t.Fatal("packet accounting not conserved across the upgrade")
	}
	if rep.Alarms != 0 || rep.Faults != 0 {
		t.Fatalf("upgrade caused %d alarms / %d faults", rep.Alarms, rep.Faults)
	}
	if rep.Processed == 0 || rep.Processed != rep.Forwarded+rep.Dropped {
		t.Fatalf("traffic totals inconsistent: %+v", rep)
	}
	wantDrain := uint64(4 * 2 * 64) // routers x cores x commit cost
	if rep.Cost.DrainCycles != wantDrain {
		t.Fatalf("DrainCycles=%d, want %d", rep.Cost.DrainCycles, wantDrain)
	}
	if rep.Cost.Deliveries != 4 || rep.Cost.Attempts != 4 {
		t.Fatalf("cost deliveries=%d attempts=%d, want 4/4 on a clean link", rep.Cost.Deliveries, rep.Cost.Attempts)
	}
}

// The invariant scenario: a bad canary trips the health gate and the whole
// fleet rolls back — every router back on the old version, later waves never
// attempted.
func TestUpgradeFleetBadCanaryAutoRollback(t *testing.T) {
	op, devices := upgradeFleet(t, 4)
	op.SetAppVersion("udpecho", "2.0.0")
	link := NewLossyLink(GigE(), fault.LinkFaults{}, 2)
	rep, err := UpgradeFleet(op, devices, apps.FaultyEcho(), RolloutConfig{Link: link, Seed: 2}, nil)
	if !errors.Is(err, ErrHealthRegression) {
		t.Fatalf("bad canary: err=%v, want ErrHealthRegression", err)
	}
	if !rep.RolledBack || rep.Completed {
		t.Fatalf("rolledback=%v completed=%v", rep.RolledBack, rep.Completed)
	}
	allLive(t, devices, "udpecho@1.0.0")
	if rep.Outcomes[0].Phase != PhaseRolledBack {
		t.Fatalf("canary phase=%v, want rolled-back", rep.Outcomes[0].Phase)
	}
	for _, o := range rep.Outcomes[1:] {
		if o.Phase != PhasePending || o.Wave != -1 {
			t.Fatalf("%s was touched: phase=%v wave=%d", o.DeviceID, o.Phase, o.Wave)
		}
	}
	if !rep.Conserved {
		t.Fatal("accounting not conserved through rollback")
	}
	// The canary's regression is visible in the sample that tripped the gate.
	if o := rep.Outcomes[0]; o.After.Rate() <= o.Baseline.Rate() {
		t.Fatalf("canary sample shows no regression: after=%v baseline=%v", o.After, o.Baseline)
	}
	// The routers still serve traffic on the restored version.
	for _, d := range devices {
		if _, err := d.Process([]byte{0x45, 0, 0, 20, 0, 0, 0, 0, 64, 6, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8}, 0); err != nil {
			t.Fatalf("%s dead after rollback: %v", d.ID, err)
		}
	}
}

// A lossy management link delays staging (retries) but cannot affect the
// data plane: the rollout completes with more attempts than deliveries and
// zero upgrade-attributable drops.
func TestUpgradeFleetOverLossyLink(t *testing.T) {
	op, devices := upgradeFleet(t, 4)
	op.SetAppVersion("udpecho", "1.2.0")
	link := NewLossyLink(GigE(), fault.LinkFaults{DropRate: 0.3, CorruptRate: 0.15}, 17)
	pol := DefaultRetryPolicy()
	pol.MaxAttempts = 32
	pol.DeadlineSeconds = 0
	rep, err := UpgradeFleet(op, devices, apps.UDPEcho(), RolloutConfig{Link: link, Seed: 3, Policy: pol}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("lossy rollout incomplete: %q", rep.Reason)
	}
	allLive(t, devices, "udpecho@1.2.0")
	if rep.Cost.Attempts <= rep.Cost.Deliveries {
		t.Fatalf("attempts=%d deliveries=%d — loss not exercised", rep.Cost.Attempts, rep.Cost.Deliveries)
	}
	if rep.Alarms != 0 || rep.Faults != 0 || !rep.Conserved {
		t.Fatalf("management loss leaked into the data plane: %+v", rep)
	}
}

// A dead canary aborts the rollout before anything commits anywhere.
func TestUpgradeFleetDeadCanaryAbortsBeforeCommit(t *testing.T) {
	op, devices := upgradeFleet(t, 3)
	op.SetAppVersion("udpecho", "1.3.0")
	link := NewLossyLink(GigE(), fault.LinkFaults{}, 4)
	link.Dead = map[string]bool{"router-0": true}
	pol := DefaultRetryPolicy()
	pol.MaxAttempts = 2
	rep, err := UpgradeFleet(op, devices, apps.UDPEcho(), RolloutConfig{Link: link, Seed: 4, Policy: pol}, nil)
	if !errors.Is(err, ErrCanaryDelivery) {
		t.Fatalf("dead canary: err=%v, want ErrCanaryDelivery", err)
	}
	if rep.Completed || rep.RolledBack {
		t.Fatalf("completed=%v rolledback=%v", rep.Completed, rep.RolledBack)
	}
	allLive(t, devices, "udpecho@1.0.0")
	if rep.Outcomes[0].Phase != PhaseFailed {
		t.Fatalf("canary phase=%v", rep.Outcomes[0].Phase)
	}
	for _, d := range devices {
		if _, err := d.CommitUpgrade(); !errors.Is(err, npu.ErrNothingStaged) {
			t.Fatalf("%s has something staged/committed after aborted canary: %v", d.ID, err)
		}
	}
}

// Partial failure is resumable: a dead non-canary router fails its wave
// while the rest commit; a second UpgradeFleet with the prior report
// retries only the failed router.
func TestUpgradeFleetResumesAfterFailedRouter(t *testing.T) {
	op, devices := upgradeFleet(t, 4)
	op.SetAppVersion("udpecho", "1.4.0")
	link := NewLossyLink(GigE(), fault.LinkFaults{}, 5)
	link.Dead = map[string]bool{"router-2": true}
	pol := DefaultRetryPolicy()
	pol.MaxAttempts = 2
	rep, err := UpgradeFleet(op, devices, apps.UDPEcho(), RolloutConfig{Link: link, Seed: 5, Policy: pol}, nil)
	if err != nil {
		t.Fatalf("non-canary delivery failure must not abort: %v", err)
	}
	if rep.Completed {
		t.Fatal("rollout with a dead router reported complete")
	}
	failed := rep.Outcome("router-2")
	if failed == nil || failed.Phase != PhaseFailed {
		t.Fatalf("router-2 outcome: %+v", failed)
	}
	committed := 0
	for _, o := range rep.Outcomes {
		if o.Phase == PhaseCommitted {
			committed++
		}
	}
	if committed != 3 {
		t.Fatalf("committed=%d, want 3", committed)
	}

	// Heal the link and resume: only router-2 is attempted.
	link.Dead = nil
	rep2, err := UpgradeFleet(op, devices, apps.UDPEcho(), RolloutConfig{Link: link, Seed: 6, Policy: pol}, rep)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Completed {
		t.Fatalf("resume incomplete: %q", rep2.Reason)
	}
	for _, o := range rep2.Outcomes {
		if o.Phase != PhaseCommitted {
			t.Fatalf("%s phase=%v after resume", o.DeviceID, o.Phase)
		}
	}
	// Already-committed routers were skipped, not re-delivered.
	if rep2.Cost.Deliveries != rep.Cost.Deliveries+1 {
		t.Fatalf("resume deliveries=%d, want prior+1=%d", rep2.Cost.Deliveries, rep.Cost.Deliveries+1)
	}
	// The resumed router runs a later release of the same line (the
	// operator counter moved on); everyone is on some 1.4.x of udpecho.
	if live, _ := devices[2].LiveApp(); live != rep2.Outcome("router-2").Delivery.Install.App {
		t.Fatalf("router-2 live=%q", live)
	}
}
