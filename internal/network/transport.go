package network

import (
	"fmt"

	"sdmmon/internal/apps"
	"sdmmon/internal/core"
	"sdmmon/internal/timing"
)

// Link models the operator→router management path ("devices distributed
// anywhere in the Internet", §5): serialization bandwidth plus a fixed
// round-trip setup cost. The prototype's 1 Gbps port never limits the
// download — the Nios II's per-byte receive processing does — so both are
// accounted: the wire time here, the processing time in the Table 2 model.
type Link struct {
	BandwidthBps float64 // payload bits per second on the wire
	RTTSeconds   float64 // connection setup (FTP control dialog)
}

// GigE is the prototype's 1 Gbps management port with WAN-ish latency.
func GigE() Link { return Link{BandwidthBps: 1e9, RTTSeconds: 0.05} }

// TransferSeconds returns the wire time for n bytes: the fixed round-trip
// setup cost plus serialization. A non-positive bandwidth models an
// unconstrained wire (local bench harnesses build such links): the
// serialization term vanishes but the RTT is still paid — a zero-bandwidth
// link must not silently discount the connection setup it still performs.
func (l Link) TransferSeconds(n int) float64 {
	if l.BandwidthBps <= 0 {
		return l.RTTSeconds
	}
	return l.RTTSeconds + float64(8*n)/l.BandwidthBps
}

// DeliveryReport records one router's installation including transport.
type DeliveryReport struct {
	DeviceID       string
	Install        *core.InstallReport // nil when the install never converged
	WireSeconds    float64             // link serialization + RTT, all attempts
	ProcessSeconds float64             // control-processor work (Table 2 model)
	BackoffSeconds float64             // time spent waiting between retries
	TotalSeconds   float64
	// Attempts is the number of transmissions (1 on a clean link).
	Attempts int
	// Err records why the install never converged (deadline, attempts
	// exhausted); nil on success.
	Err error
}

// Distribute programs every device with the application over the link,
// running the real cryptographic pipeline on each and accounting both wire
// and control-processor time. Each device receives its own package with a
// fresh hash parameter (SR2/SR4).
func Distribute(op *core.Operator, devices []*core.Device, app *apps.App, link Link) ([]DeliveryReport, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("network: no devices to program")
	}
	model := timing.NiosIIPrototype()
	var out []DeliveryReport
	for _, dev := range devices {
		wire, err := op.ProgramWire(dev.Public(), app)
		if err != nil {
			return out, fmt.Errorf("network: packaging for %s: %w", dev.ID, err)
		}
		rep, err := dev.Install(wire)
		if err != nil {
			return out, fmt.Errorf("network: install on %s: %w", dev.ID, err)
		}
		wireS := link.TransferSeconds(len(wire))
		procS := model.EstimateOps(rep.Ops)
		out = append(out, DeliveryReport{
			DeviceID:       dev.ID,
			Install:        rep,
			WireSeconds:    wireS,
			ProcessSeconds: procS,
			TotalSeconds:   wireS + procS,
			Attempts:       1,
		})
	}
	return out, nil
}
