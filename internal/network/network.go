// Package network simulates the system environment around the routers: an
// operator distributing bundles to a fleet of identical devices, traffic
// flowing through them, and the fleet-scale attack experiments behind the
// paper's homogeneity argument (§1, §3.2): "a potentially successful brute
// force attack on one system cannot be exploited on other systems".
//
// The fleet here installs bundles directly onto the NPs (the cryptographic
// installation path is exercised end-to-end in internal/core with a small
// number of devices; generating an RSA-2048 identity per simulated router
// would only slow the data-plane experiments down without changing them).
package network

import (
	"fmt"
	"math/rand"

	"sdmmon/internal/apps"
	"sdmmon/internal/attack"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
	"sdmmon/internal/npu"
	"sdmmon/internal/packet"
)

// Router is one fleet member: a monitored single-app NP plus the secret
// parameter its monitoring graph was generated with.
type Router struct {
	ID    string
	NP    *npu.NP
	Param uint32
}

// FleetConfig configures NewFleet.
type FleetConfig struct {
	Size int
	// DiverseParams draws a fresh hash parameter per router (SR2); false
	// models the homogeneous fleet the paper warns about.
	DiverseParams bool
	// Compression selects the Merkle compression (nil = the paper's sum).
	Compression mhash.Compress
	// CoresPerRouter defaults to 1.
	CoresPerRouter int
	// Monitors defaults to true; false builds the unprotected baseline.
	MonitorsDisabled bool
	// App defaults to the vulnerable ipv4cm.
	App *apps.App
	// Seed drives parameter drawing.
	Seed int64
}

// Fleet is a set of routers running the same application.
type Fleet struct {
	Routers []*Router
	App     *apps.App
	mkHash  func(uint32) mhash.Hasher
}

// NewFleet builds and programs a fleet.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Size < 1 {
		return nil, fmt.Errorf("network: fleet size %d", cfg.Size)
	}
	if cfg.CoresPerRouter == 0 {
		cfg.CoresPerRouter = 1
	}
	if cfg.App == nil {
		cfg.App = apps.IPv4CM()
	}
	mk := func(p uint32) mhash.Hasher { return mhash.NewMerkle(p) }
	if cfg.Compression != nil {
		c := cfg.Compression
		mk = func(p uint32) mhash.Hasher {
			h, err := mhash.NewMerkleWith(p, 4, c)
			if err != nil {
				panic(err) // width 4 is always valid
			}
			return h
		}
	}
	prog, err := cfg.App.Program()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	shared := rng.Uint32()

	f := &Fleet{App: cfg.App, mkHash: mk}
	for i := 0; i < cfg.Size; i++ {
		param := shared
		if cfg.DiverseParams {
			param = rng.Uint32()
		}
		np, err := npu.New(npu.Config{
			Cores:           cfg.CoresPerRouter,
			MonitorsEnabled: !cfg.MonitorsDisabled,
			NewHasher:       mk,
		})
		if err != nil {
			return nil, err
		}
		h := mk(param)
		g, err := monitor.Extract(prog, h)
		if err != nil {
			return nil, err
		}
		if err := np.InstallAll(cfg.App.Name, prog.Serialize(), g.Serialize(), param); err != nil {
			return nil, err
		}
		f.Routers = append(f.Routers, &Router{ID: fmt.Sprintf("router-%d", i), NP: np, Param: param})
	}
	return f, nil
}

// Hasher builds the fleet's hash unit for a parameter (attacker tooling).
func (f *Fleet) Hasher(param uint32) mhash.Hasher { return f.mkHash(param) }

// RunTraffic pushes n benign packets through every router and returns the
// total number of false alarms (should be zero).
func (f *Fleet) RunTraffic(n int, seed int64) (falseAlarms int, err error) {
	for _, r := range f.Routers {
		gen := packet.NewGenerator(seed)
		gen.OptionWords = 1
		for i := 0; i < n; i++ {
			res, err := r.NP.Process(gen.Next(), 0)
			if err != nil {
				return falseAlarms, err
			}
			if res.Detected {
				falseAlarms++
			}
		}
	}
	return falseAlarms, nil
}

// CascadeResult summarizes a fleet-wide attack replay.
type CascadeResult struct {
	Fleet       int
	Engineered  bool // the attacker found a matching attack for router 0
	Compromised int  // routers with corrupted persistent state
	Detected    int  // routers whose monitor alarmed on the attack packet
}

// Cascade runs the homogeneity experiment (E6): the attacker obtains router
// 0's hash parameter (leak or per-§3.2 brute force on one unit), engineers
// the one-instruction persistent-corruption attack against it, and replays
// the identical packet against the whole fleet. Compromise is judged by the
// corruption surviving in scratch memory.
func (f *Fleet) Cascade() (CascadeResult, error) {
	res := CascadeResult{Fleet: len(f.Routers)}
	prog, err := f.App.Program()
	if err != nil {
		return res, err
	}
	smash := attack.DefaultSmash()
	h0 := f.mkHash(f.Routers[0].Param)
	pkt, ok, err := smash.PersistAttack(prog, h0)
	if err != nil {
		return res, err
	}
	res.Engineered = ok
	if !ok {
		return res, nil
	}
	for _, r := range f.Routers {
		out, err := r.NP.ProcessOn(0, pkt, 0)
		if err != nil {
			return res, err
		}
		if out.Detected {
			res.Detected++
		}
		hit, err := attack.PersistSucceeded(r.NP, 0)
		if err != nil {
			return res, err
		}
		if hit {
			res.Compromised++
		}
	}
	return res, nil
}

// SmashAll sends the generic (non-engineered) hijack packet to every router
// and reports how many detected it — the E8 detection experiment at fleet
// scale.
func (f *Fleet) SmashAll() (detected, hijacked int, err error) {
	smash := attack.DefaultSmash()
	code, err := smash.HijackPayload()
	if err != nil {
		return 0, 0, err
	}
	pkt, err := smash.CraftPacket(code)
	if err != nil {
		return 0, 0, err
	}
	for _, r := range f.Routers {
		out, err := r.NP.ProcessOn(0, pkt, 0)
		if err != nil {
			return detected, hijacked, err
		}
		if out.Detected {
			detected++
		}
		if attack.Succeeded(apps.PacketResult{Verdict: out.Verdict, Packet: out.Packet}) {
			hijacked++
		}
	}
	return detected, hijacked, nil
}
