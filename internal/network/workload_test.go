package network

import (
	"testing"

	"sdmmon/internal/npu"
	"sdmmon/internal/packet"
)

func newManagedNP(t *testing.T, cores, epoch int) (*npu.NP, *WorkloadManager) {
	t.Helper()
	np, err := npu.New(npu.Config{Cores: cores, MonitorsEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewWorkloadManager(np, DefaultClasses(), epoch, 1)
	if err != nil {
		t.Fatal(err)
	}
	return np, m
}

func TestWorkloadManagerValidation(t *testing.T) {
	np, err := npu.New(npu.Config{Cores: 1, MonitorsEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWorkloadManager(np, nil, 10, 1); err == nil {
		t.Error("no classes accepted")
	}
	if _, err := NewWorkloadManager(np, DefaultClasses(), 0, 1); err == nil {
		t.Error("zero epoch accepted")
	}
}

func TestWorkloadShiftsCoresWithTraffic(t *testing.T) {
	_, m := newManagedNP(t, 4, 200)
	initial := m.Reprograms // the initial programming of all cores
	if initial != 4 {
		t.Fatalf("initial reprograms = %d, want 4", initial)
	}

	// Phase 1: mostly non-UDP traffic.
	gen := packet.NewGenerator(2)
	gen.UDPShare = 0.1
	for i := 0; i < 600; i++ {
		if _, err := m.Process(gen.Next(), 0); err != nil {
			t.Fatal(err)
		}
	}
	phase1 := m.Assignment()
	udp1 := countOf(phase1, "udp")

	// Phase 2: the mix flips to UDP-heavy; the manager must shift cores.
	gen.UDPShare = 0.9
	for i := 0; i < 600; i++ {
		if _, err := m.Process(gen.Next(), 0); err != nil {
			t.Fatal(err)
		}
	}
	phase2 := m.Assignment()
	udp2 := countOf(phase2, "udp")

	if udp2 <= udp1 {
		t.Errorf("udp cores did not grow under udp-heavy traffic: %v -> %v", phase1, phase2)
	}
	if m.Reprograms <= initial {
		t.Error("no runtime reprogramming happened")
	}
	// Every installation drew a fresh parameter (SR2 under dynamics).
	if m.FreshParameters() != m.Reprograms {
		t.Errorf("parameters %d != reprograms %d — a parameter was reused",
			m.FreshParameters(), m.Reprograms)
	}
}

func countOf(assignment []string, name string) int {
	n := 0
	for _, a := range assignment {
		if a == name {
			n++
		}
	}
	return n
}

func TestWorkloadNoFalseAlarmsAcrossReprogramming(t *testing.T) {
	np, m := newManagedNP(t, 3, 100)
	gen := packet.NewGenerator(3)
	gen.UDPShare = 0.5
	for i := 0; i < 900; i++ {
		// Oscillate the mix to force repeated rebalancing.
		if i%300 == 0 {
			gen.UDPShare = 1 - gen.UDPShare
		}
		res, err := m.Process(gen.Next(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected {
			t.Fatalf("false alarm at packet %d on core %d", i, res.Core)
		}
	}
	if np.Stats().Alarms != 0 {
		t.Errorf("alarms = %d", np.Stats().Alarms)
	}
	if m.Processed != 900 {
		t.Errorf("processed = %d", m.Processed)
	}
}

func TestWorkloadFallbackServesUnassignedClass(t *testing.T) {
	// With a single core, one class owns it and the other is served by
	// fallback routing.
	_, m := newManagedNP(t, 1, 1000)
	gen := packet.NewGenerator(4)
	gen.UDPShare = 0.5
	for i := 0; i < 100; i++ {
		if _, err := m.Process(gen.Next(), 0); err != nil {
			t.Fatal(err)
		}
	}
	if m.Fallback == 0 {
		t.Error("expected fallback routing with one core and two classes")
	}
}

func TestFlowGeneratorStableTuples(t *testing.T) {
	if _, err := NewFlowGenerator(0, 1); err == nil {
		t.Error("zero flow population accepted")
	}
	g, err := NewFlowGenerator(16, 42)
	if err != nil {
		t.Fatal(err)
	}
	flows := g.Flows()
	if len(flows) != 16 {
		t.Fatalf("population %d", len(flows))
	}
	for i := 0; i < 400; i++ {
		pkt, idx := g.NextIndexed()
		f := flows[idx]
		if !packet.ChecksumOK(pkt) {
			t.Fatalf("packet %d: bad header checksum", i)
		}
		p, err := packet.ParseIPv4(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if p.Src != f.Src || p.Dst != f.Dst || p.Proto != f.Proto {
			t.Fatalf("packet %d: addressing drifted from flow %d", i, idx)
		}
		// The port pair must sit at the start of the L4 payload for both
		// protocols — that is where a 5-tuple hash reads it.
		if len(p.Payload) < 4 {
			t.Fatalf("packet %d: payload too short for ports", i)
		}
		srcPort := uint16(p.Payload[0])<<8 | uint16(p.Payload[1])
		dstPort := uint16(p.Payload[2])<<8 | uint16(p.Payload[3])
		if srcPort != f.SrcPort || dstPort != f.DstPort {
			t.Fatalf("packet %d: ports %d→%d, want %d→%d", i, srcPort, dstPort, f.SrcPort, f.DstPort)
		}
		if f.Proto == packet.ProtoUDP {
			if _, err := packet.ParseUDP(p.Payload); err != nil {
				t.Fatalf("packet %d: UDP flow payload: %v", i, err)
			}
		}
	}
	// Same seed reproduces the same population.
	g2, err := NewFlowGenerator(16, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range g2.Flows() {
		if f != flows[i] {
			t.Fatalf("flow %d not reproducible from seed", i)
		}
	}
}

// TestFlowGeneratorNextBatch pins the batch emitter the shard plane's
// SubmitBatch amortizes against: deterministic for a seed, structurally
// identical traffic to per-packet draws (every packet belongs to the
// population, checksums intact), and flow-coherent — bursts of one flow
// follow each other, because that run structure is what the dispatch
// cache in SubmitBatch exists for.
func TestFlowGeneratorNextBatch(t *testing.T) {
	g1, err := NewFlowGenerator(32, 9)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewFlowGenerator(32, 9)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1024
	a := g1.NextBatch(make([][]byte, n))
	b := g2.NextBatch(make([][]byte, n))
	if len(a) != n {
		t.Fatalf("batch length %d, want %d", len(a), n)
	}
	for i := range a {
		if string(a[i]) != string(b[i]) {
			t.Fatalf("packet %d differs between same-seed generators", i)
		}
	}

	tuple := func(pkt []byte) [13]byte {
		p, err := packet.ParseIPv4(pkt)
		if err != nil {
			t.Fatal(err)
		}
		var k [13]byte
		copy(k[0:4], p.Src[:])
		copy(k[4:8], p.Dst[:])
		k[8] = p.Proto
		copy(k[9:13], p.Payload[:4]) // port pair leads the L4 payload
		return k
	}
	known := map[[13]byte]bool{}
	for _, f := range g1.Flows() {
		var k [13]byte
		copy(k[0:4], f.Src[:])
		copy(k[4:8], f.Dst[:])
		k[8] = f.Proto
		k[9], k[10] = byte(f.SrcPort>>8), byte(f.SrcPort)
		k[11], k[12] = byte(f.DstPort>>8), byte(f.DstPort)
		known[k] = true
	}
	runs := 0
	for i, pkt := range a {
		if !packet.ChecksumOK(pkt) {
			t.Fatalf("packet %d: bad header checksum", i)
		}
		k := tuple(pkt)
		if !known[k] {
			t.Fatalf("packet %d: 5-tuple outside the flow population", i)
		}
		if i > 0 && k == tuple(a[i-1]) {
			runs++
		}
	}
	// Runs are 1–4 packets long, so well over a third of adjacent pairs
	// share a flow in expectation; a uniform per-packet draw over 32 flows
	// would share ~3%.
	if runs < n/4 {
		t.Errorf("only %d of %d adjacent pairs share a flow — batch traffic is not flow-coherent", runs, n-1)
	}

	// Interleaving batch and single draws keeps a seeded generator
	// deterministic: the batch consumes the rng exactly as the equivalent
	// single draws would have been free to.
	g3, err := NewFlowGenerator(32, 9)
	if err != nil {
		t.Fatal(err)
	}
	g3.NextBatch(make([][]byte, n))
	if string(g1.Next()) != string(g3.Next()) {
		t.Error("generator state diverged after identical batch draws")
	}
}
