package network

import (
	"math/rand"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/attack"
	"sdmmon/internal/monitor"
	"sdmmon/internal/npu"
	"sdmmon/internal/packet"
)

// Soak test: a sustained mixed workload across many cores, parameters and
// applications must produce zero false alarms and zero escaped attacks.
// Skipped under -short.
func TestSoakMixedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(77))
	smash := attack.DefaultSmash()
	code, err := smash.HijackPayload()
	if err != nil {
		t.Fatal(err)
	}
	atk, err := smash.CraftPacket(code)
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 6
	for round := 0; round < rounds; round++ {
		np, err := npu.New(npu.Config{Cores: 4, MonitorsEnabled: true})
		if err != nil {
			t.Fatal(err)
		}
		// A different app per round, all cores re-keyed.
		appList := apps.All()
		app := appList[round%len(appList)]
		prog, err := app.Program()
		if err != nil {
			t.Fatal(err)
		}
		param := rng.Uint32()
		h := np.HasherFor(param)
		g, err := monitor.Extract(prog, h)
		if err != nil {
			t.Fatal(err)
		}
		if err := np.InstallAll(app.Name, prog.Serialize(), g.Serialize(), param); err != nil {
			t.Fatal(err)
		}
		gen := packet.NewGenerator(int64(round))
		gen.OptionWords = round % 4
		escaped := 0
		for i := 0; i < 5000; i++ {
			var pkt []byte
			isAttack := app.Vulnerable && i%500 == 250
			if isAttack {
				pkt = atk
			} else {
				pkt = gen.Next()
			}
			res, err := np.Process(pkt, rng.Intn(50))
			if err != nil {
				t.Fatal(err)
			}
			if !isAttack && res.Detected {
				t.Fatalf("round %d (%s): false alarm on benign packet %d", round, app.Name, i)
			}
			if isAttack && attack.Succeeded(apps.PacketResult{Verdict: res.Verdict, Packet: res.Packet}) {
				escaped++
			}
		}
		if escaped > 0 {
			t.Errorf("round %d (%s): %d attacks escaped", round, app.Name, escaped)
		}
		s := np.Stats()
		if s.Processed != 5000 {
			t.Errorf("round %d: processed %d", round, s.Processed)
		}
	}
}
