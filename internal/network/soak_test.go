package network

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"sdmmon/internal/apps"
	"sdmmon/internal/attack"
	"sdmmon/internal/monitor"
	"sdmmon/internal/npu"
	"sdmmon/internal/packet"
)

// checkGoroutineLeak fails the test if goroutines spawned during it (e.g.
// ProcessBatch workers) are still alive at cleanup. Workers may take a
// moment to unwind after the final batch returns, so the baseline is
// polled with a deadline rather than compared once.
func checkGoroutineLeak(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			if n := runtime.NumGoroutine(); n <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				buf = buf[:runtime.Stack(buf, true)]
				t.Errorf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// Soak test: a sustained mixed workload across many cores, parameters and
// applications must produce zero false alarms and zero escaped attacks.
// Skipped under -short.
func TestSoakMixedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	checkGoroutineLeak(t)
	rng := rand.New(rand.NewSource(77))
	smash := attack.DefaultSmash()
	code, err := smash.HijackPayload()
	if err != nil {
		t.Fatal(err)
	}
	atk, err := smash.CraftPacket(code)
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 6
	for round := 0; round < rounds; round++ {
		np, err := npu.New(npu.Config{Cores: 4, MonitorsEnabled: true})
		if err != nil {
			t.Fatal(err)
		}
		// A different app per round, all cores re-keyed.
		appList := apps.All()
		app := appList[round%len(appList)]
		prog, err := app.Program()
		if err != nil {
			t.Fatal(err)
		}
		param := rng.Uint32()
		h := np.HasherFor(param)
		g, err := monitor.Extract(prog, h)
		if err != nil {
			t.Fatal(err)
		}
		if err := np.InstallAll(app.Name, prog.Serialize(), g.Serialize(), param); err != nil {
			t.Fatal(err)
		}
		gen := packet.NewGenerator(int64(round))
		gen.OptionWords = round % 4
		escaped := 0
		for i := 0; i < 5000; i++ {
			var pkt []byte
			isAttack := app.Vulnerable && i%500 == 250
			if isAttack {
				pkt = atk
			} else {
				pkt = gen.Next()
			}
			res, err := np.Process(pkt, rng.Intn(50))
			if err != nil {
				t.Fatal(err)
			}
			if !isAttack && res.Detected {
				t.Fatalf("round %d (%s): false alarm on benign packet %d", round, app.Name, i)
			}
			if isAttack && attack.Succeeded(apps.PacketResult{Verdict: res.Verdict, Packet: res.Packet}) {
				escaped++
			}
		}
		if escaped > 0 {
			t.Errorf("round %d (%s): %d attacks escaped", round, app.Name, escaped)
		}
		// A burst through the concurrent batch path: its worker goroutines
		// must all unwind (the leak check at the top holds them to that)
		// and accounting must stay exact.
		burst := make([][]byte, 512)
		for i := range burst {
			burst[i] = gen.Next()
		}
		results, err := np.ProcessBatch(burst, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range results {
			if res.Detected {
				t.Fatalf("round %d: false alarm in batch packet %d", round, i)
			}
		}
		s := np.Stats()
		if s.Processed != 5000+512 {
			t.Errorf("round %d: processed %d", round, s.Processed)
		}
		if !s.Conserved() {
			t.Errorf("round %d: accounting not conserved: %+v", round, s)
		}
	}
}
