package network

import "fmt"

// PathResult describes one packet's traversal of a multi-hop router path.
type PathResult struct {
	Hops       int  // routers that processed the packet
	Delivered  bool // emerged from the last hop with a forward verdict
	DetectedAt int  // hop index whose monitor alarmed, -1 if none
	Packet     []byte
}

// ForwardPath pushes one packet through the fleet's routers in order — a
// line topology, each router running its installed application on the
// packet as rewritten by the previous hop. Processing stops at the first
// drop or alarm; the network keeps operating afterwards (per-packet
// recovery).
func (f *Fleet) ForwardPath(pkt []byte, qdepth int) (PathResult, error) {
	res := PathResult{DetectedAt: -1, Packet: append([]byte(nil), pkt...)}
	for i, r := range f.Routers {
		out, err := r.NP.Process(res.Packet, qdepth)
		if err != nil {
			return res, fmt.Errorf("network: hop %d: %w", i, err)
		}
		res.Hops++
		if out.Detected {
			res.DetectedAt = i
			return res, nil
		}
		if out.Verdict != 1 {
			return res, nil // dropped (TTL, policy)
		}
		res.Packet = out.Packet
	}
	res.Delivered = true
	return res, nil
}
