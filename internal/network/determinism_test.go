package network

import (
	"errors"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/fault"
)

// deliverySignature reduces a fleet rollout to the retry-loop facts that
// must replay identically: per-router attempt counts and backoff seconds
// (the jitter stream), and the link's ground-truth wire fault accounting.
type deliverySignature struct {
	attempts []int
	backoff  []float64
	wire     fault.WireStats
}

func signatureOf(t *testing.T, linkSeed, seed int64) deliverySignature {
	t.Helper()
	op, devices := reliableFleet(t, 4)
	link := NewLossyLink(GigE(), fault.LinkFaults{DropRate: 0.3, CorruptRate: 0.2}, linkSeed)
	pol := DefaultRetryPolicy()
	pol.MaxAttempts = 32
	pol.DeadlineSeconds = 0
	out, err := DistributeReliable(op, devices, apps.IPv4CM(), link, pol, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged() {
		t.Fatalf("fleet did not converge: %+v", out.Reports)
	}
	sig := deliverySignature{wire: link.WireStats()}
	for _, r := range out.Reports {
		sig.attempts = append(sig.attempts, r.Attempts)
		sig.backoff = append(sig.backoff, r.BackoffSeconds)
	}
	return sig
}

// Satellite regression: deliverWithRetry draws its jitter from a per-call
// seeded RNG (DeriveSeed over the recipient ID), not a stream shared across
// routers, so two runs with the same seeds replay the identical retry
// trajectory router by router — the property fleet-scale replay rests on.
func TestDeliveryJitterDeterministicAcrossRuns(t *testing.T) {
	a := signatureOf(t, 99, 7)
	b := signatureOf(t, 99, 7)
	if len(a.attempts) != len(b.attempts) {
		t.Fatalf("report counts differ: %d vs %d", len(a.attempts), len(b.attempts))
	}
	for i := range a.attempts {
		if a.attempts[i] != b.attempts[i] {
			t.Errorf("router %d: attempts %d vs %d across identical runs", i, a.attempts[i], b.attempts[i])
		}
		if a.backoff[i] != b.backoff[i] {
			t.Errorf("router %d: backoff %v vs %v across identical runs", i, a.backoff[i], b.backoff[i])
		}
	}
	if a.wire != b.wire {
		t.Errorf("wire stats diverged: %+v vs %+v", a.wire, b.wire)
	}
}

// Different recipient IDs draw different jitter streams from the same seed:
// the derivation is per-call, not a fleet-wide constant.
func TestDeriveSeedSeparatesRecipients(t *testing.T) {
	if DeriveSeed(7, "router-0") == DeriveSeed(7, "router-1") {
		t.Error("distinct recipients derived the same delivery seed")
	}
	if DeriveSeed(7, "router-0") != DeriveSeed(7, "router-0") {
		t.Error("seed derivation is not a pure function")
	}
}

// A partition window blackholes the link while the virtual clock is inside
// it and heals once the accrued wire+backoff time passes the window's end —
// the delivery loop itself rides the partition out when its budget allows.
func TestDeliverReliableRidesOutPartition(t *testing.T) {
	link := NewLossyLink(GigE(), fault.LinkFaults{}, 1)
	link.Partitions = []fault.PartitionLink{{Start: 0, End: 2}}
	pol := RetryPolicy{MaxAttempts: 64, BaseBackoffSeconds: 0.25, MaxBackoffSeconds: 1}
	applied := 0
	rep := DeliverReliable(link, "r0", []byte("payload"), pol, 5, func([]byte) error {
		applied++
		return nil
	})
	if rep.Err != nil {
		t.Fatalf("delivery should converge after the window closes: %v", rep.Err)
	}
	if applied != 1 {
		t.Fatalf("apply ran %d times, want 1", applied)
	}
	if rep.Attempts < 2 {
		t.Errorf("attempts=%d, want >1 (first transmissions land inside the window)", rep.Attempts)
	}
	if link.PartitionDrops() == 0 {
		t.Error("no partition drops recorded for transmissions inside the window")
	}
	if link.Clock() < 2 {
		t.Errorf("virtual clock %v did not pass the window end", link.Clock())
	}
}

// A partition that outlasts the retry budget fails the delivery with the
// typed attempts error, and every transmission is accounted as a partition
// drop — not a wire fault.
func TestDeliverReliablePartitionExhaustsBudget(t *testing.T) {
	link := NewLossyLink(GigE(), fault.LinkFaults{}, 1)
	link.Partitions = []fault.PartitionLink{{Start: 0, End: 1e9}}
	pol := RetryPolicy{MaxAttempts: 4, BaseBackoffSeconds: 0.1, MaxBackoffSeconds: 1}
	rep := DeliverReliable(link, "r0", []byte("payload"), pol, 5, func([]byte) error {
		t.Fatal("apply ran during a partition")
		return nil
	})
	if !errors.Is(rep.Err, ErrDeliveryAttempts) {
		t.Fatalf("err = %v, want ErrDeliveryAttempts", rep.Err)
	}
	if got := link.PartitionDrops(); got != uint64(pol.MaxAttempts) {
		t.Errorf("partition drops = %d, want %d", got, pol.MaxAttempts)
	}
	if ws := link.WireStats(); ws.Sent != 0 {
		t.Errorf("partitioned transmissions leaked into wire stats: %+v", ws)
	}
}
