package network

import (
	"errors"
	"fmt"

	"sdmmon/internal/apps"
	"sdmmon/internal/core"
	"sdmmon/internal/obs"
	"sdmmon/internal/packet"
	"sdmmon/internal/timing"
)

// Staged fleet rollout (DESIGN.md §10): upgrading a fleet of routers that are
// forwarding live traffic must not take the data plane down — neither by the
// upgrade mechanics (solved by the NP's stage/commit path, which cuts over at
// a packet boundary) nor by the new version itself being bad (solved here:
// canaries commit first, a health gate compares their alarm/fault rate
// against their own pre-upgrade baseline, and a regression rolls the whole
// fleet back to the retained previous version). Delivery failures are not
// regressions: a router the lossy management network never reached is
// reported Failed and the rollout is resumable, while the routers that did
// upgrade stay upgraded.

// Rollout-level errors.
var (
	// ErrCanaryDelivery: a canary could not be reached/verified, so nothing
	// was committed anywhere.
	ErrCanaryDelivery = errors.New("network: canary delivery failed")
	// ErrHealthRegression: an upgraded router regressed against its
	// baseline; the fleet was rolled back.
	ErrHealthRegression = errors.New("network: health regression after upgrade")
)

// UpgradeGate parameterizes the post-commit health check.
type UpgradeGate struct {
	// HealthPackets is how many packets to run through a router for one
	// health sample (baseline and post-commit). Default 128.
	HealthPackets int
	// RateBudget is the tolerated increase of the per-packet event rate
	// (alarms+faults over processed) above the pre-upgrade baseline before
	// the gate declares a regression. Default 0.02.
	RateBudget float64
}

// RolloutConfig shapes a staged fleet upgrade.
type RolloutConfig struct {
	// Canaries is the size of the first wave (default 1). The canary wave
	// is special: a delivery failure there aborts the rollout before
	// anything commits.
	Canaries int
	// WaveSize bounds the later waves (default: half the fleet, min 1).
	WaveSize int
	Gate     UpgradeGate
	Policy   RetryPolicy
	// Link carries the packages; required.
	Link *LossyLink
	// Seed drives retry jitter and the health-sample traffic.
	Seed int64
}

// withDefaults fills zero fields.
func (c RolloutConfig) withDefaults(fleet int) RolloutConfig {
	if c.Canaries <= 0 {
		c.Canaries = 1
	}
	if c.WaveSize <= 0 {
		c.WaveSize = fleet / 2
		if c.WaveSize < 1 {
			c.WaveSize = 1
		}
	}
	if c.Gate.HealthPackets <= 0 {
		c.Gate.HealthPackets = 128
	}
	if c.Gate.RateBudget <= 0 {
		c.Gate.RateBudget = 0.02
	}
	if c.Policy.MaxAttempts < 1 {
		c.Policy = DefaultRetryPolicy()
	}
	return c
}

// UpgradePhase is where one router ended up.
type UpgradePhase int

const (
	// PhasePending: not yet attempted (or aborted before commit; retried on
	// resume).
	PhasePending UpgradePhase = iota
	// PhaseStaged: new version staged but not committed (transient).
	PhaseStaged
	// PhaseCommitted: running the new version.
	PhaseCommitted
	// PhaseRolledBack: was committed, then restored to the previous version
	// by the fleet-wide rollback.
	PhaseRolledBack
	// PhaseFailed: delivery never converged (lossy link, dead router);
	// retried on resume.
	PhaseFailed
)

func (p UpgradePhase) String() string {
	switch p {
	case PhasePending:
		return "pending"
	case PhaseStaged:
		return "staged"
	case PhaseCommitted:
		return "committed"
	case PhaseRolledBack:
		return "rolled-back"
	case PhaseFailed:
		return "failed"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// HealthSample is one traffic measurement on one router.
type HealthSample struct {
	Processed uint64
	// Events counts alarms plus architectural faults (watchdog trips are a
	// subset of faults).
	Events      uint64
	Quarantines uint64
}

// Rate is events per processed packet (0 for an empty sample).
func (h HealthSample) Rate() float64 {
	if h.Processed == 0 {
		return 0
	}
	return float64(h.Events) / float64(h.Processed)
}

// RouterOutcome is one router's rollout record.
type RouterOutcome struct {
	DeviceID string
	Phase    UpgradePhase
	// Wave is the wave index the router was upgraded in (0 = canary wave,
	// -1 = never attempted).
	Wave     int
	Delivery *DeliveryReport // nil when never attempted
	Baseline HealthSample    // pre-upgrade traffic sample
	After    HealthSample    // post-commit traffic sample (zero if not reached)
	Err      error
}

// RolloutReport is the full outcome of UpgradeFleet. It is resumable: pass it
// back as prior to skip the routers that already committed.
type RolloutReport struct {
	// Target is the manifest-derived label of the new version
	// ("app@version"), filled from the first successful delivery.
	Target   string
	Outcomes []RouterOutcome
	// Waves is how many waves ran (including the canary wave).
	Waves int
	// Completed: every router is on the new version.
	Completed bool
	// RolledBack: the health gate tripped and the fleet was restored.
	RolledBack bool
	// Reason explains a non-completed rollout in one line.
	Reason string
	Cost   timing.RolloutCost

	// Fleet-wide traffic accounting for every health-sample packet run
	// during the rollout — the zero-downtime evidence.
	Processed, Forwarded, Dropped, Alarms, Faults uint64
	// Conserved: every sampled packet was forwarded or dropped, on every
	// router — npu.Stats.Conserved held fleet-wide.
	Conserved bool
}

// Outcome returns the record for one router (nil if unknown).
func (r *RolloutReport) Outcome(deviceID string) *RouterOutcome {
	for i := range r.Outcomes {
		if r.Outcomes[i].DeviceID == deviceID {
			return &r.Outcomes[i]
		}
	}
	return nil
}

// committed lists indices of routers currently on the new version.
func (r *RolloutReport) committed() []int {
	var out []int
	for i := range r.Outcomes {
		if r.Outcomes[i].Phase == PhaseCommitted {
			out = append(out, i)
		}
	}
	return out
}

// sampleHealth runs n packets of deterministic traffic through a device and
// returns the sample plus the raw stat deltas for fleet accounting.
func sampleHealth(dev *core.Device, gen *packet.Generator, n int) (HealthSample, [3]uint64, error) {
	pkts := make([][]byte, n)
	for i := range pkts {
		pkts[i] = gen.Next()
	}
	before := dev.Stats()
	_, err := dev.NP().ProcessBatch(pkts, 0)
	after := dev.Stats()
	h := HealthSample{
		Processed:   after.Processed - before.Processed,
		Events:      (after.Alarms - before.Alarms) + (after.Faults - before.Faults),
		Quarantines: after.Quarantines - before.Quarantines,
	}
	deltas := [3]uint64{
		after.Forwarded - before.Forwarded,
		after.Dropped - before.Dropped,
		after.Alarms - before.Alarms,
	}
	return h, deltas, err
}

// regressed applies the gate: a router regresses when its post-commit event
// rate exceeds baseline plus budget, or the supervisor quarantined a core on
// the new version.
func (g UpgradeGate) regressed(base, after HealthSample) bool {
	if after.Quarantines > 0 {
		return true
	}
	return after.Rate() > base.Rate()+g.RateBudget
}

// UpgradeFleet performs a staged, canaried, health-gated upgrade of the fleet
// to app. Every router follows stage → commit → health check; the canary wave
// commits first and gates the rest. On a health regression every committed
// router (this run and, via prior, earlier runs) is rolled back to the
// retained previous version. On delivery failure to a non-canary router the
// rollout continues and the report is resumable: call UpgradeFleet again with
// the returned report as prior and only the not-yet-committed routers are
// attempted.
//
// devices must line up with prior.Outcomes when resuming (same IDs).
func UpgradeFleet(op *core.Operator, devices []*core.Device, app *apps.App, cfg RolloutConfig, prior *RolloutReport) (*RolloutReport, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("network: no devices to upgrade")
	}
	if cfg.Link == nil {
		return nil, fmt.Errorf("network: rollout requires a link")
	}
	cfg = cfg.withDefaults(len(devices))
	model := timing.NiosIIPrototype()

	rep := &RolloutReport{Outcomes: make([]RouterOutcome, len(devices))}
	if prior != nil {
		rep.Target = prior.Target
		rep.Cost = prior.Cost
		// The traffic totals carry over too: Cost already accumulates
		// across runs, so restarting the packet counters at zero made a
		// resumed report internally inconsistent (attempts from two runs
		// against samples from one).
		rep.Processed = prior.Processed
		rep.Forwarded = prior.Forwarded
		rep.Dropped = prior.Dropped
		rep.Alarms = prior.Alarms
		rep.Faults = prior.Faults
	}
	var todo []int
	for i, dev := range devices {
		rep.Outcomes[i] = RouterOutcome{DeviceID: dev.ID, Phase: PhasePending, Wave: -1}
		if prior != nil {
			if po := prior.Outcome(dev.ID); po != nil && po.Phase == PhaseCommitted {
				rep.Outcomes[i] = *po
				continue
			}
		}
		todo = append(todo, i)
	}

	// Wave plan: canaries first, then fixed-size waves over the remainder.
	var waves [][]int
	if len(todo) > 0 {
		n := cfg.Canaries
		if n > len(todo) {
			n = len(todo)
		}
		waves = append(waves, todo[:n])
		for rest := todo[n:]; len(rest) > 0; {
			k := cfg.WaveSize
			if k > len(rest) {
				k = len(rest)
			}
			waves = append(waves, rest[:k])
			rest = rest[k:]
		}
	}

	finish := func(reason string, err error) (*RolloutReport, error) {
		rep.Reason = reason
		rep.Conserved = true
		for _, dev := range devices {
			if !dev.Stats().Conserved() {
				rep.Conserved = false
			}
		}
		rep.Completed = err == nil && !rep.RolledBack
		for i := range rep.Outcomes {
			if rep.Outcomes[i].Phase != PhaseCommitted {
				rep.Completed = false
			}
		}
		publishRollout(rep, cfg.Link.Obs)
		return rep, err
	}
	account := func(d [3]uint64, h HealthSample) {
		rep.Processed += h.Processed
		rep.Forwarded += d[0]
		rep.Dropped += d[1]
		rep.Alarms += d[2]
		rep.Faults += h.Events - d[2]
	}

	for wv, wave := range waves {
		rep.Waves = wv + 1
		canaryWave := wv == 0
		var committedThisWave []int

		for _, i := range wave {
			dev := devices[i]
			out := &rep.Outcomes[i]
			out.Wave = wv

			// Pre-upgrade baseline on live traffic: the old version keeps
			// serving while everything below happens.
			gen := packet.NewGenerator(cfg.Seed ^ int64(i)<<8 ^ int64(wv))
			base, d, err := sampleHealth(dev, gen, cfg.Gate.HealthPackets)
			account(d, base)
			if err != nil {
				return finish(fmt.Sprintf("baseline traffic on %s failed: %v", dev.ID, err),
					fmt.Errorf("network: baseline on %s: %w", dev.ID, err))
			}
			out.Baseline = base

			// Stage over the lossy link with retries; the live version is
			// untouched whether this succeeds or not.
			wire, err := op.ProgramWire(dev.Public(), app)
			if err != nil {
				return finish(fmt.Sprintf("packaging for %s failed", dev.ID),
					fmt.Errorf("network: packaging for %s: %w", dev.ID, err))
			}
			drep := deliverWithRetry(dev, wire, cfg.Link, cfg.Policy, model, cfg.Seed, (*core.Device).StageUpgrade)
			out.Delivery = &drep
			rep.Cost.AddDelivery(drep.WireSeconds, drep.ProcessSeconds, drep.BackoffSeconds,
				drep.Attempts, drep.Err == nil)
			if drep.Err != nil {
				out.Err = drep.Err
				if canaryWave {
					// Nothing has committed anywhere: abort any staged
					// canaries and leave the fleet exactly as it was.
					for _, j := range wave {
						devices[j].AbortUpgrade()
						if rep.Outcomes[j].Phase == PhaseStaged {
							rep.Outcomes[j].Phase = PhasePending
						}
					}
					out.Phase = PhaseFailed
					return finish(fmt.Sprintf("canary %s unreachable", dev.ID),
						fmt.Errorf("%w: %s: %v", ErrCanaryDelivery, dev.ID, drep.Err))
				}
				out.Phase = PhaseFailed
				continue
			}
			out.Phase = PhaseStaged
			if rep.Target == "" && drep.Install != nil {
				rep.Target = drep.Install.App
			}
		}

		// Commit the wave's staged routers, each cutting over at its own
		// packet boundary.
		for _, i := range wave {
			if rep.Outcomes[i].Phase != PhaseStaged {
				continue
			}
			cycles, err := devices[i].CommitUpgrade()
			rep.Cost.DrainCycles += cycles
			if err != nil {
				rep.Outcomes[i].Phase = PhaseFailed
				rep.Outcomes[i].Err = err
				continue
			}
			rep.Outcomes[i].Phase = PhaseCommitted
			committedThisWave = append(committedThisWave, i)
		}

		// Health gate: every router committed this wave runs post-commit
		// traffic and is compared to its own baseline.
		for _, i := range committedThisWave {
			dev := devices[i]
			out := &rep.Outcomes[i]
			gen := packet.NewGenerator(cfg.Seed ^ int64(i)<<8 ^ int64(wv) ^ 0x5a5a)
			after, d, err := sampleHealth(dev, gen, cfg.Gate.HealthPackets)
			account(d, after)
			out.After = after
			regressed := cfg.Gate.regressed(out.Baseline, after)
			if err != nil {
				// The new version took the whole NP down (all cores
				// quarantined) — the strongest possible regression.
				regressed = true
			}
			if !regressed {
				continue
			}
			out.Err = fmt.Errorf("%w: %s rate %.4f vs baseline %.4f (+%d quarantines)",
				ErrHealthRegression, dev.ID, after.Rate(), out.Baseline.Rate(), after.Quarantines)

			// Fleet-wide rollback: every committed router — this wave,
			// earlier waves, prior runs — returns to the retained version.
			for _, j := range rep.committed() {
				cycles, rbErr := devices[j].RollbackUpgrade()
				rep.Cost.DrainCycles += cycles
				if rbErr != nil {
					rep.Outcomes[j].Err = fmt.Errorf("rollback on %s: %w", devices[j].ID, rbErr)
					continue
				}
				rep.Outcomes[j].Phase = PhaseRolledBack
			}
			// Staged-but-uncommitted routers in later waves never existed;
			// drop anything staged.
			for _, dev := range devices {
				dev.AbortUpgrade()
			}
			rep.RolledBack = true
			return finish(fmt.Sprintf("health regression on %s; fleet rolled back", dev.ID), out.Err)
		}
	}

	return finish("", nil)
}

// publishRollout exports a rollout report's running totals into the link's
// collector: the cost aggregate plus the fleet traffic gauges. Everything is
// a Set, so a resumed rollout republishing its carried-forward totals stays
// consistent with the report instead of doubling. Nil-safe.
func publishRollout(rep *RolloutReport, col *obs.Collector) {
	reg := col.Registry()
	if reg == nil {
		return
	}
	rep.Cost.Publish(reg)
	reg.Gauge("rollout_packets_processed").Set(float64(rep.Processed))
	reg.Gauge("rollout_packets_forwarded").Set(float64(rep.Forwarded))
	reg.Gauge("rollout_packets_dropped").Set(float64(rep.Dropped))
	reg.Gauge("rollout_alarms").Set(float64(rep.Alarms))
	reg.Gauge("rollout_faults").Set(float64(rep.Faults))
	reg.Gauge("rollout_waves").Set(float64(rep.Waves))
}
