package network

import (
	"testing"

	"sdmmon/internal/attack"
	"sdmmon/internal/packet"
)

func pathFleet(t *testing.T, hops int, monitored bool) *Fleet {
	t.Helper()
	f, err := NewFleet(FleetConfig{
		Size: hops, DiverseParams: true, Seed: 41, MonitorsDisabled: !monitored,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPathDeliversBenignTraffic(t *testing.T) {
	const hops = 3
	f := pathFleet(t, hops, true)
	gen := packet.NewGenerator(7)
	for i := 0; i < 100; i++ {
		in := gen.Next()
		if in[8] <= hops { // would legitimately expire en route
			continue
		}
		res, err := f.ForwardPath(in, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Delivered || res.Hops != hops {
			t.Fatalf("packet %d: hops=%d delivered=%v detectedAt=%d",
				i, res.Hops, res.Delivered, res.DetectedAt)
		}
		// TTL decremented once per hop; header checksum still valid.
		if res.Packet[8] != in[8]-hops {
			t.Errorf("TTL %d -> %d over %d hops", in[8], res.Packet[8], hops)
		}
		if !packet.ChecksumOK(res.Packet) {
			t.Error("checksum broken in flight")
		}
	}
}

func TestPathExpiresTTL(t *testing.T) {
	f := pathFleet(t, 3, true)
	gen := packet.NewGenerator(8)
	pkt := gen.Next()
	pkt[8] = 2 // expires at the third hop
	// Re-checksum after the edit.
	p, err := packet.ParseIPv4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	pkt, err = p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.ForwardPath(pkt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered {
		t.Fatal("TTL-2 packet delivered over 3 hops")
	}
	if res.Hops != 3 || res.DetectedAt != -1 {
		t.Errorf("hops=%d detectedAt=%d", res.Hops, res.DetectedAt)
	}
}

func TestPathStopsAttackAtFirstHop(t *testing.T) {
	f := pathFleet(t, 3, true)
	smash := attack.DefaultSmash()
	code, err := smash.HijackPayload()
	if err != nil {
		t.Fatal(err)
	}
	atk, err := smash.CraftPacket(code)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.ForwardPath(atk, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered {
		t.Fatal("attack packet delivered")
	}
	if res.DetectedAt != 0 {
		t.Errorf("detected at hop %d, want 0", res.DetectedAt)
	}
	// The path keeps delivering afterwards (recovery).
	gen := packet.NewGenerator(9)
	out, err := f.ForwardPath(gen.Next(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Delivered {
		t.Error("path dead after recovery")
	}
}

// The attack packet is dangerous at EVERY hop: forwarded by an unmonitored
// router, it still carries the overflow and smashes the next monitored hop,
// which catches it. Defense in depth works across the path.
func TestPathAttackCaughtDownstreamOfUnmonitoredHop(t *testing.T) {
	f0 := pathFleet(t, 1, false) // legacy unmonitored edge router
	f12 := pathFleet(t, 2, true) // monitored core network
	smash := attack.DefaultSmash()
	code, err := smash.HijackPayload()
	if err != nil {
		t.Fatal(err)
	}
	atk, err := smash.CraftPacket(code)
	if err != nil {
		t.Fatal(err)
	}
	r0, err := f0.ForwardPath(atk, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r0.Delivered {
		t.Fatal("unmonitored hop did not forward the hijack output")
	}
	res, err := f12.ForwardPath(r0.Packet, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectedAt != 0 {
		t.Errorf("monitored hop did not catch the forwarded attack (detectedAt=%d)", res.DetectedAt)
	}
}

// Honest negative result: the monitor protects the *processor*, not packet
// semantics. A benign packet whose destination was tampered upstream (the
// outcome of a successful hijack on a legacy router) is processed by valid
// code downstream and sails through — monitors cannot flag it.
func TestPathDoesNotCatchUpstreamSemanticDamage(t *testing.T) {
	f := pathFleet(t, 2, true)
	gen := packet.NewGenerator(10)
	pkt := gen.Next()
	// Upstream damage: destination rewritten to the attacker sink.
	p, err := packet.ParseIPv4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	p.Dst = attack.SinkIP
	tampered, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.ForwardPath(tampered, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectedAt != -1 {
		t.Error("monitor flagged a validly-processed (but semantically tampered) packet")
	}
	if !res.Delivered {
		t.Error("tampered-but-wellformed packet dropped")
	}
}
