package network

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/core"
	"sdmmon/internal/fault"
	"sdmmon/internal/npu"
	"sdmmon/internal/obs"
)

// TestReliableReportMatchesWireGroundTruth audits the delivery accounting
// against the injector's own record of what it did to the wire: every
// dropped or corrupted datagram is exactly one failed attempt, every clean
// delivery exactly one success, and nothing is counted twice on the retry
// path. The published metrics must agree with the report to the counter.
func TestReliableReportMatchesWireGroundTruth(t *testing.T) {
	op, devices := reliableFleet(t, 4)
	col := obs.New(64)
	link := NewLossyLink(GigE(), fault.LinkFaults{DropRate: 0.3, CorruptRate: 0.2, DuplicateRate: 0.1}, 4242)
	link.Obs = col
	pol := DefaultRetryPolicy()
	pol.MaxAttempts = 64
	pol.DeadlineSeconds = 0

	out, err := DistributeReliable(op, devices, apps.IPv4CM(), link, pol, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged() {
		t.Fatalf("fleet did not converge: %+v", out.Reports)
	}

	// Per-router attempts sum to the fleet total — the aggregate is not
	// double-counted anywhere on the retry path.
	var sum int
	var backoff, wiresec float64
	for _, r := range out.Reports {
		sum += r.Attempts
		backoff += r.BackoffSeconds
		wiresec += r.WireSeconds
	}
	if sum != out.TotalAttempts {
		t.Fatalf("sum of per-router attempts %d != TotalAttempts %d", sum, out.TotalAttempts)
	}

	// Ground truth: with no dead routers and no deadline, every transmission
	// reaches the injector once, and every failed attempt is exactly one
	// dropped or corrupted datagram (a duplicated corrupt datagram fails
	// both copies of the one attempt).
	st := link.WireStats()
	if st.Sent != uint64(out.TotalAttempts) {
		t.Fatalf("wire saw %d datagrams, reports claim %d attempts", st.Sent, out.TotalAttempts)
	}
	if got, want := uint64(out.TotalAttempts), st.Dropped+st.Corrupted+uint64(out.Succeeded); got != want {
		t.Fatalf("attempts %d != dropped %d + corrupted %d + succeeded %d",
			out.TotalAttempts, st.Dropped, st.Corrupted, out.Succeeded)
	}

	// The exported counters match the report exactly.
	snap := col.Snapshot()
	if got := snap.Counters["net_delivery_attempts_total"]; got != uint64(out.TotalAttempts) {
		t.Errorf("net_delivery_attempts_total = %d, want %d", got, out.TotalAttempts)
	}
	if got := snap.Counters["net_deliveries_total"]; got != uint64(out.Succeeded) {
		t.Errorf("net_deliveries_total = %d, want %d", got, out.Succeeded)
	}
	if got := snap.Counters["net_delivery_failures_total"]; got != 0 {
		t.Errorf("net_delivery_failures_total = %d on a converged fleet", got)
	}
	if got := snap.Gauges["net_backoff_seconds_total"]; math.Abs(got-backoff) > 1e-9 {
		t.Errorf("net_backoff_seconds_total = %g, want %g", got, backoff)
	}
	if got := snap.Gauges["net_wire_seconds_total"]; math.Abs(got-wiresec) > 1e-9 {
		t.Errorf("net_wire_seconds_total = %g, want %g", got, wiresec)
	}
	if h, ok := snap.Histograms["net_verify_seconds"]; !ok || h.Count != uint64(out.Succeeded) {
		t.Errorf("net_verify_seconds count = %+v, want %d samples", h, out.Succeeded)
	}
}

// TestDeadlineStopsBeforeNextTransmit pins the deadline-overrun fix: once
// the accrued backoff pushes wire+backoff past DeadlineSeconds, the loop
// must give up instead of transmitting one more time. With a 10 s backoff
// against a 3 s deadline the very first retry wait blows the budget, so
// exactly one transmission may happen.
func TestDeadlineStopsBeforeNextTransmit(t *testing.T) {
	op, devices := reliableFleet(t, 1)
	link := NewLossyLink(GigE(), fault.LinkFaults{DropRate: 1}, 2)
	pol := RetryPolicy{
		MaxAttempts:        1000,
		BaseBackoffSeconds: 10,
		MaxBackoffSeconds:  10,
		DeadlineSeconds:    3,
	}
	out, err := DistributeReliable(op, devices, apps.IPv4CM(), link, pol, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep := out.Reports[0]
	if !errors.Is(rep.Err, ErrDeliveryDeadline) {
		t.Fatalf("error = %v, want ErrDeliveryDeadline", rep.Err)
	}
	if rep.Attempts != 1 {
		t.Errorf("attempts = %d: transmitted again after the backoff already exceeded the deadline", rep.Attempts)
	}
	if st := link.WireStats(); st.Sent != 1 {
		t.Errorf("wire saw %d datagrams, want 1", st.Sent)
	}
}

// obsFleet is upgradeFleet with one shared collector attached to every
// device (fleet-aggregate telemetry).
func obsFleet(t *testing.T, n int, col *obs.Collector) (*core.Operator, []*core.Device) {
	t.Helper()
	mfr, err := core.NewManufacturer("acme", nil)
	if err != nil {
		t.Fatal(err)
	}
	op, err := core.NewOperator("isp", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := mfr.Certify(op); err != nil {
		t.Fatal(err)
	}
	op.SetAppVersion("udpecho", "1.0.0")
	var devices []*core.Device
	for i := 0; i < n; i++ {
		d, err := mfr.Manufacture(fmt.Sprintf("router-%d", i), core.DeviceConfig{
			Cores: 2, MonitorsEnabled: true, Supervisor: npu.DefaultSupervisorConfig(), Obs: col,
		})
		if err != nil {
			t.Fatal(err)
		}
		wire, err := op.ProgramWire(d.Public(), apps.UDPEcho())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Install(wire); err != nil {
			t.Fatal(err)
		}
		devices = append(devices, d)
	}
	return op, devices
}

// TestRolloutExportersRoundTrip is the acceptance scenario: a fleet rollout
// over a mildly lossy link with telemetry on, whose JSON and Prometheus
// exports both carry counters consistent with the RolloutReport itself.
func TestRolloutExportersRoundTrip(t *testing.T) {
	col := obs.New(obs.DefaultRingDepth)
	op, devices := obsFleet(t, 4, col)
	op.SetAppVersion("udpecho", "1.1.0")
	link := NewLossyLink(GigE(), fault.LinkFaults{DropRate: 0.2}, 77)
	link.Obs = col
	pol := DefaultRetryPolicy()
	pol.DeadlineSeconds = 0

	rep, err := UpgradeFleet(op, devices, apps.UDPEcho(), RolloutConfig{Link: link, Seed: 5, Policy: pol}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("rollout incomplete: %q", rep.Reason)
	}

	snap := col.Snapshot()

	// The published gauges mirror the report.
	gauges := map[string]float64{
		"rollout_attempts":          float64(rep.Cost.Attempts),
		"rollout_deliveries":        float64(rep.Cost.Deliveries),
		"rollout_backoff_seconds":   rep.Cost.BackoffSeconds,
		"rollout_wire_seconds":      rep.Cost.WireSeconds,
		"rollout_crypto_seconds":    rep.Cost.ProcessSeconds,
		"rollout_drain_cycles":      float64(rep.Cost.DrainCycles),
		"rollout_packets_processed": float64(rep.Processed),
		"rollout_packets_forwarded": float64(rep.Forwarded),
		"rollout_packets_dropped":   float64(rep.Dropped),
		"rollout_waves":             float64(rep.Waves),
	}
	for name, want := range gauges {
		if got := snap.Gauges[name]; math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %g, want %g (report %+v)", name, got, want, rep.Cost)
		}
	}
	// The NP-side aggregate counters include every health-sample packet
	// (plus nothing else: the fleet only processed sample traffic).
	if got := snap.Counters["np_packets_processed_total"]; got != rep.Processed {
		t.Errorf("np_packets_processed_total = %d, want report Processed %d", got, rep.Processed)
	}
	// Stage/commit trace events reached the rings: 4 routers × 2 cores.
	var stages, commits int
	for _, e := range col.Events() {
		switch e.Kind {
		case obs.EvStage:
			stages++
		case obs.EvCommit:
			commits++
		}
	}
	if stages < 8 || commits != 8 {
		t.Errorf("trace: %d stage, %d commit events, want ≥8 and exactly 8", stages, commits)
	}

	// JSON round-trip: export → parse → same numbers.
	var jb strings.Builder
	if err := snap.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var back obs.Snapshot
	if err := json.Unmarshal([]byte(jb.String()), &back); err != nil {
		t.Fatalf("JSON export does not parse: %v", err)
	}
	if back.Gauges["rollout_attempts"] != float64(rep.Cost.Attempts) ||
		back.Counters["np_packets_processed_total"] != rep.Processed {
		t.Errorf("JSON round-trip diverged from report: %+v", back.Gauges)
	}

	// Prometheus round-trip: the text export carries the same values.
	var pb strings.Builder
	if err := snap.WritePrometheus(&pb); err != nil {
		t.Fatal(err)
	}
	promText := pb.String()
	for _, want := range []string{
		fmt.Sprintf("rollout_attempts %d", rep.Cost.Attempts),
		fmt.Sprintf("rollout_deliveries %d", rep.Cost.Deliveries),
		fmt.Sprintf("np_packets_processed_total %d", rep.Processed),
	} {
		if !strings.Contains(promText, want+"\n") {
			t.Errorf("prometheus export missing %q:\n%s", want, promText)
		}
	}
}

// A resumed rollout must not double any of its carried-forward accounting:
// the resumed report's totals stay consistent, and republishing them leaves
// the gauges equal to the final report (not summed across runs).
func TestRolloutResumeDoesNotDoubleCount(t *testing.T) {
	col := obs.New(obs.DefaultRingDepth)
	op, devices := obsFleet(t, 4, col)
	op.SetAppVersion("udpecho", "1.1.0")
	link := NewLossyLink(GigE(), fault.LinkFaults{}, 1)
	link.Obs = col
	link.Dead = map[string]bool{devices[3].ID: true}
	pol := DefaultRetryPolicy()
	pol.MaxAttempts = 3
	pol.DeadlineSeconds = 0

	rep1, err := UpgradeFleet(op, devices, apps.UDPEcho(), RolloutConfig{Link: link, Seed: 9, Policy: pol}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Completed {
		t.Fatal("rollout completed despite a dead router")
	}

	// Heal the link; resume with the prior report.
	link.Dead = nil
	op.SetAppVersion("udpecho", "1.2.0")
	rep2, err := UpgradeFleet(op, devices, apps.UDPEcho(), RolloutConfig{Link: link, Seed: 9, Policy: pol}, rep1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Completed {
		t.Fatalf("resume incomplete: %q", rep2.Reason)
	}

	// Carried totals are monotonic and consistent: the resumed report owns
	// all traffic from both runs, conserved.
	if rep2.Processed <= rep1.Processed {
		t.Errorf("resume lost traffic accounting: %d then %d", rep1.Processed, rep2.Processed)
	}
	if rep2.Processed != rep2.Forwarded+rep2.Dropped {
		t.Errorf("resumed totals not conserved: processed=%d fwd=%d drop=%d",
			rep2.Processed, rep2.Forwarded, rep2.Dropped)
	}
	// The gauges equal the final report — Set semantics, no doubling on
	// republication.
	snap := col.Snapshot()
	if got := snap.Gauges["rollout_packets_processed"]; got != float64(rep2.Processed) {
		t.Errorf("rollout_packets_processed = %g, want %d", got, rep2.Processed)
	}
	if got := snap.Gauges["rollout_attempts"]; got != float64(rep2.Cost.Attempts) {
		t.Errorf("rollout_attempts = %g, want %d", got, rep2.Cost.Attempts)
	}
}
