package network

import (
	"fmt"
	"math/rand"

	"sdmmon/internal/apps"
	"sdmmon/internal/monitor"
	"sdmmon/internal/npu"
	"sdmmon/internal/packet"
)

// WorkloadManager addresses the paper's "Dynamics" challenge (§1): multiple
// cores are managed and reprogrammed at runtime as traffic and network
// functionality change. Packets are classified to traffic classes, each
// class is served by an application, and at the end of every epoch the core
// assignment is rebalanced to the observed mix — each reprogramming drawing
// a fresh hash parameter exactly as a real operator push would (SR2).
//
// (Workload management policy itself is out of the paper's scope — it cites
// Wu & Wolf [13] — so the policy here is deliberately simple: proportional
// core shares with at least one core per class seen.)
type WorkloadManager struct {
	np      *npu.NP
	classes []WorkloadClass
	rng     *rand.Rand

	assignment []string // core -> app name
	rr         map[string]int
	counts     map[string]int
	epochSize  int
	inEpoch    int

	// Stats.
	Reprograms int
	Processed  int
	Fallback   int // packets served by a core not running their class app
	paramsUsed map[uint32]bool
}

// WorkloadClass binds a traffic class to the application serving it.
type WorkloadClass struct {
	Name string
	App  *apps.App
	// Match classifies a wire-format packet.
	Match func(pkt []byte) bool
}

// DefaultClasses splits traffic into UDP (echo service) and everything else
// (IPv4 forwarding).
func DefaultClasses() []WorkloadClass {
	return []WorkloadClass{
		{
			Name: "udp",
			App:  apps.UDPEcho(),
			Match: func(pkt []byte) bool {
				return len(pkt) >= 20 && pkt[9] == packet.ProtoUDP
			},
		},
		{
			Name:  "other",
			App:   apps.IPv4Safe(),
			Match: func(pkt []byte) bool { return true },
		},
	}
}

// NewWorkloadManager builds a manager over an NP whose cores it will
// program. epochSize is the rebalancing period in packets.
func NewWorkloadManager(np *npu.NP, classes []WorkloadClass, epochSize int, seed int64) (*WorkloadManager, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("network: no traffic classes")
	}
	if epochSize < 1 {
		return nil, fmt.Errorf("network: epoch size %d", epochSize)
	}
	m := &WorkloadManager{
		np:         np,
		classes:    classes,
		rng:        rand.New(rand.NewSource(seed)),
		assignment: make([]string, np.Cores()),
		rr:         map[string]int{},
		counts:     map[string]int{},
		epochSize:  epochSize,
		paramsUsed: map[uint32]bool{},
	}
	// Initial assignment: first class everywhere.
	for c := 0; c < np.Cores(); c++ {
		if err := m.program(c, classes[0].Name); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// program installs the class's app on a core with a fresh parameter.
func (m *WorkloadManager) program(core int, className string) error {
	cls, err := m.class(className)
	if err != nil {
		return err
	}
	prog, err := cls.App.Program()
	if err != nil {
		return err
	}
	param := m.rng.Uint32()
	h := m.np.HasherFor(param)
	g, err := monitor.Extract(prog, h)
	if err != nil {
		return err
	}
	if err := m.np.Install(core, cls.Name, prog.Serialize(), g.Serialize(), param); err != nil {
		return err
	}
	m.assignment[core] = cls.Name
	m.Reprograms++
	m.paramsUsed[param] = true
	return nil
}

func (m *WorkloadManager) class(name string) (*WorkloadClass, error) {
	for i := range m.classes {
		if m.classes[i].Name == name {
			return &m.classes[i], nil
		}
	}
	return nil, fmt.Errorf("network: unknown class %q", name)
}

// classify returns the first matching class name.
func (m *WorkloadManager) classify(pkt []byte) string {
	for i := range m.classes {
		if m.classes[i].Match(pkt) {
			return m.classes[i].Name
		}
	}
	return m.classes[len(m.classes)-1].Name
}

// Process routes one packet to a core running its class's application
// (round-robin among them; any core as fallback) and advances the epoch.
func (m *WorkloadManager) Process(pkt []byte, qdepth int) (npu.Result, error) {
	name := m.classify(pkt)
	m.counts[name]++
	m.Processed++
	m.inEpoch++

	core := -1
	matching := 0
	for c, a := range m.assignment {
		if a == name {
			matching++
			_ = c
		}
	}
	if matching > 0 {
		k := m.rr[name] % matching
		m.rr[name]++
		for c, a := range m.assignment {
			if a == name {
				if k == 0 {
					core = c
					break
				}
				k--
			}
		}
	} else {
		core = m.rr["_fallback"] % m.np.Cores()
		m.rr["_fallback"]++
		m.Fallback++
	}
	res, err := m.np.ProcessOn(core, pkt, qdepth)
	if err != nil {
		return res, err
	}
	if m.inEpoch >= m.epochSize {
		if err := m.rebalance(); err != nil {
			return res, err
		}
	}
	return res, nil
}

// rebalance reassigns cores proportionally to the epoch's class mix.
func (m *WorkloadManager) rebalance() error {
	defer func() {
		m.inEpoch = 0
		m.counts = map[string]int{}
	}()
	total := 0
	for _, n := range m.counts {
		total += n
	}
	if total == 0 {
		return nil
	}
	cores := m.np.Cores()
	// Desired share per class: proportional, at least 1 core for any class
	// with traffic, fill remainder with the largest class.
	type share struct {
		name string
		want int
		frac float64
	}
	var shares []share
	for i := range m.classes {
		n := m.counts[m.classes[i].Name]
		if n == 0 {
			continue
		}
		f := float64(n) / float64(total) * float64(cores)
		w := int(f)
		if w == 0 {
			w = 1
		}
		shares = append(shares, share{m.classes[i].Name, w, f})
	}
	sum := 0
	for _, s := range shares {
		sum += s.want
	}
	for i := 0; sum > cores && i < len(shares); i++ {
		// Trim over-allocation from the smallest shares.
		min := 0
		for j := range shares {
			if shares[j].frac < shares[min].frac {
				min = j
			}
		}
		if shares[min].want > 1 {
			shares[min].want--
			sum--
		} else {
			shares[min].frac = 1e9 // cannot trim; look elsewhere
		}
	}
	for sum < cores && len(shares) > 0 {
		max := 0
		for j := range shares {
			if shares[j].frac > shares[max].frac {
				max = j
			}
		}
		shares[max].want++
		sum++
	}

	// Build the target assignment, changing as few cores as possible.
	want := map[string]int{}
	for _, s := range shares {
		want[s.name] = s.want
	}
	have := map[string]int{}
	for _, a := range m.assignment {
		have[a]++
	}
	for c := 0; c < cores; c++ {
		a := m.assignment[c]
		if have[a] > want[a] {
			// This core must switch to an under-served class.
			for _, s := range shares {
				if have[s.name] < want[s.name] {
					have[a]--
					have[s.name]++
					if err := m.program(c, s.name); err != nil {
						return err
					}
					break
				}
			}
		}
	}
	return nil
}

// Assignment returns the current core→class mapping.
func (m *WorkloadManager) Assignment() []string {
	return append([]string(nil), m.assignment...)
}

// FreshParameters reports how many distinct hash parameters installations
// have used — every reprogramming must re-key (SR2).
func (m *WorkloadManager) FreshParameters() int { return len(m.paramsUsed) }

// Flow is a stable 5-tuple identity: every packet a FlowGenerator emits for
// a flow carries exactly these addresses, protocol and ports, so any
// dispatcher hashing the 5-tuple sees the flow as one unit.
type Flow struct {
	Src, Dst         [4]byte
	Proto            uint8 // packet.ProtoUDP or packet.ProtoTCP
	SrcPort, DstPort uint16
}

// FlowGenerator produces benign traffic drawn from a fixed population of
// flows. Unlike packet.Generator — which randomizes addressing per packet —
// only the payload, ID and TTL vary here; the 5-tuple is pinned per flow.
// That is the traffic shape flow-affinity dispatch needs: packets of one
// flow must land on one shard, and a generator that never repeats a tuple
// cannot exercise that property.
type FlowGenerator struct {
	rng   *rand.Rand
	flows []Flow
	// MinPayload/MaxPayload bound the application payload size (before the
	// UDP header, for UDP flows).
	MinPayload, MaxPayload int
}

// NewFlowGenerator builds a generator over a fixed population of flows.
// The population is derived from the seed: same seed, same flows.
func NewFlowGenerator(flows int, seed int64) (*FlowGenerator, error) {
	if flows < 1 {
		return nil, fmt.Errorf("network: flow population %d must be >= 1", flows)
	}
	rng := rand.New(rand.NewSource(seed))
	pop := make([]Flow, flows)
	for i := range pop {
		proto := uint8(packet.ProtoTCP)
		if rng.Float64() < 0.5 {
			proto = packet.ProtoUDP
		}
		pop[i] = Flow{
			Src:     packet.IP(10, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1+rng.Intn(254))),
			Dst:     packet.IP(192, 168, byte(rng.Intn(256)), byte(1+rng.Intn(254))),
			Proto:   proto,
			SrcPort: uint16(1024 + rng.Intn(60000)),
			DstPort: uint16(1 + rng.Intn(1024)),
		}
	}
	return &FlowGenerator{
		rng:        rng,
		flows:      pop,
		MinPayload: 16,
		MaxPayload: 256,
	}, nil
}

// Flows returns a copy of the flow population.
func (g *FlowGenerator) Flows() []Flow { return append([]Flow(nil), g.flows...) }

// Next produces one wire-format packet for a uniformly chosen flow.
func (g *FlowGenerator) Next() []byte {
	pkt, _ := g.NextIndexed()
	return pkt
}

// NextIndexed produces one packet and reports which flow it belongs to, so
// tests can assert that same-flow packets share a dispatch target.
func (g *FlowGenerator) NextIndexed() ([]byte, int) {
	i := g.rng.Intn(len(g.flows))
	return g.packetFor(i), i
}

// NextBatch fills dst with wire-format packets and returns it. Traffic
// comes out in flow-coherent bursts — after each uniformly drawn flow, up
// to three more packets of the same flow may follow — because that is the
// run structure real captures have and what batch submitters
// (shard.Plane.SubmitBatch) amortize their per-flow dispatch work
// against. Same rng as Next: a seeded generator stays deterministic
// across any interleaving of Next/NextIndexed/NextBatch calls.
func (g *FlowGenerator) NextBatch(dst [][]byte) [][]byte {
	for i := 0; i < len(dst); {
		flow := g.rng.Intn(len(g.flows))
		run := 1 + g.rng.Intn(4)
		for r := 0; r < run && i < len(dst); r++ {
			dst[i] = g.packetFor(flow)
			i++
		}
	}
	return dst
}

// packetFor builds one packet of flow i (payload, ID and TTL drawn from
// the generator's rng; the 5-tuple pinned by the flow).
func (g *FlowGenerator) packetFor(i int) []byte {
	f := g.flows[i]
	payloadLen := g.MinPayload
	if g.MaxPayload > g.MinPayload {
		payloadLen += g.rng.Intn(g.MaxPayload - g.MinPayload)
	}
	payload := make([]byte, payloadLen)
	g.rng.Read(payload)
	switch f.Proto {
	case packet.ProtoUDP:
		u := &packet.UDP{SrcPort: f.SrcPort, DstPort: f.DstPort, Payload: payload}
		payload = u.Marshal()
	default:
		// TCP-marked filler: the port pair sits in the first 4 payload
		// bytes, exactly where a real TCP header carries it — which is
		// where a 5-tuple hash reads it from the wire.
		if len(payload) < 4 {
			payload = make([]byte, 4)
		}
		payload[0] = byte(f.SrcPort >> 8)
		payload[1] = byte(f.SrcPort)
		payload[2] = byte(f.DstPort >> 8)
		payload[3] = byte(f.DstPort)
	}
	p := &packet.IPv4{
		// ECT(0): the flows model ECN-capable transports, so threshold
		// congestion at the shard planes' admission control CE-marks them
		// instead of dropping (RFC 3168 forbids marking not-ECT traffic).
		TOS:     uint8(g.rng.Intn(256))&^0x3 | 0x2,
		ID:      uint16(g.rng.Intn(65536)),
		TTL:     uint8(2 + g.rng.Intn(62)),
		Proto:   f.Proto,
		Src:     f.Src,
		Dst:     f.Dst,
		Payload: payload,
	}
	b, err := p.Marshal()
	if err != nil {
		// Only in-range sizes are produced; a failure is a bug.
		panic(err)
	}
	return b
}
