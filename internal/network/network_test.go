package network

import (
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/attack"
	"sdmmon/internal/mhash"
)

func TestFleetConfigValidation(t *testing.T) {
	if _, err := NewFleet(FleetConfig{Size: 0}); err == nil {
		t.Error("empty fleet accepted")
	}
}

func TestFleetParams(t *testing.T) {
	homo, err := NewFleet(FleetConfig{Size: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range homo.Routers[1:] {
		if r.Param != homo.Routers[0].Param {
			t.Fatal("homogeneous fleet has diverse parameters")
		}
	}
	div, err := NewFleet(FleetConfig{Size: 8, DiverseParams: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]bool{}
	for _, r := range div.Routers {
		seen[r.Param] = true
	}
	if len(seen) < 7 {
		t.Errorf("diverse fleet drew only %d distinct parameters", len(seen))
	}
}

func TestFleetBenignTraffic(t *testing.T) {
	f, err := NewFleet(FleetConfig{Size: 4, DiverseParams: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	alarms, err := f.RunTraffic(40, 99)
	if err != nil {
		t.Fatal(err)
	}
	if alarms != 0 {
		t.Errorf("%d false alarms on benign traffic", alarms)
	}
}

func TestSmashAllDetectedWhenMonitored(t *testing.T) {
	f, err := NewFleet(FleetConfig{Size: 8, DiverseParams: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	detected, hijacked, err := f.SmashAll()
	if err != nil {
		t.Fatal(err)
	}
	if hijacked != 0 {
		t.Errorf("%d routers hijacked despite monitors", hijacked)
	}
	if detected < 7 {
		t.Errorf("only %d/8 detections", detected)
	}
}

func TestSmashAllHijacksUnmonitoredFleet(t *testing.T) {
	f, err := NewFleet(FleetConfig{Size: 4, MonitorsDisabled: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	detected, hijacked, err := f.SmashAll()
	if err != nil {
		t.Fatal(err)
	}
	if detected != 0 {
		t.Error("unmonitored fleet detected attacks")
	}
	if hijacked != 4 {
		t.Errorf("%d/4 hijacked, want all", hijacked)
	}
}

// E6, finding included: under the paper's sum compression the engineered
// attack compromises the whole fleet even with diverse parameters; the
// S-box compression contains it.
func TestCascadeContainment(t *testing.T) {
	// Homogeneous fleet, sum compression: total compromise (the paper's
	// warning scenario).
	homo, err := NewFleet(FleetConfig{Size: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := homo.Cascade()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Engineered {
		t.Fatal("attacker failed to engineer against the leaked parameter")
	}
	if res.Compromised != 12 {
		t.Errorf("homogeneous sum fleet: %d/12 compromised, want 12", res.Compromised)
	}

	// Diverse fleet, sum compression: STILL total compromise — the
	// collapse finding (hash equality is parameter-independent).
	divSum, err := NewFleet(FleetConfig{Size: 12, DiverseParams: true, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err = divSum.Cascade()
	if err != nil {
		t.Fatal(err)
	}
	if res.Engineered && res.Compromised != 12 {
		t.Errorf("diverse sum fleet: %d/12 compromised — expected the collapse finding (12)",
			res.Compromised)
	}

	// Diverse fleet, S-box compression: contained to ≈1/16 per router.
	divBox, err := NewFleet(FleetConfig{Size: 24, DiverseParams: true,
		Compression: mhash.SBoxCompress(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err = divBox.Cascade()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Engineered {
		t.Skip("no matching store variant under this parameter (rare); seed-dependent")
	}
	// Router 0 is compromised by construction; transfers beyond it should
	// be rare (expected ≈ 24/16 ≈ 1.5; allow up to 7).
	if res.Compromised > 8 {
		t.Errorf("s-box diverse fleet: %d/24 compromised, want containment", res.Compromised)
	}
	if res.Compromised < 1 {
		t.Error("router 0 itself should be compromised (attack engineered against it)")
	}
	// Detection accounting: the persist attack always trips the alarm one
	// instruction later on the router it matches; on mismatching routers
	// it alarms immediately. Either way every router detects it.
	if res.Detected != 24 {
		t.Errorf("detected on %d/24 routers", res.Detected)
	}
}

func TestCascadeWithSafeApp(t *testing.T) {
	// The bounds-checked app is not smashable: no compromise anywhere.
	f, err := NewFleet(FleetConfig{Size: 4, App: apps.IPv4Safe(), Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Cascade()
	if err != nil {
		t.Fatal(err)
	}
	if res.Compromised != 0 {
		t.Errorf("safe app compromised on %d routers", res.Compromised)
	}
}

func TestTransferProbabilityAnalytic(t *testing.T) {
	// Cross-check the analytic transfer probabilities used in
	// EXPERIMENTS.md: sum → 1.0, s-box → ≈1/16.
	sum := func(p uint32) mhash.Hasher { return mhash.NewMerkle(p) }
	if got := transferProb(t, sum); got != 1.0 {
		t.Errorf("sum transfer probability = %.3f, want 1.0", got)
	}
	box := func(p uint32) mhash.Hasher {
		h, err := mhash.NewMerkleWith(p, 4, mhash.SBoxCompress())
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	if got := transferProb(t, box); got < 0.03 || got > 0.11 {
		t.Errorf("s-box transfer probability = %.3f, want ≈1/16", got)
	}
}

func transferProb(t *testing.T, mk func(uint32) mhash.Hasher) float64 {
	t.Helper()
	return attack.TransferProbability(mk, 3000, 42)
}
