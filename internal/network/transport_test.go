package network

import (
	"math"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/core"
	"sdmmon/internal/packet"
)

func TestLinkTransferSeconds(t *testing.T) {
	cases := []struct {
		name string
		link Link
		n    int
		want float64
	}{
		// 1000 bytes = 8000 bits = 1 s serialization + 0.5 s RTT.
		{"bandwidth plus rtt", Link{BandwidthBps: 8000, RTTSeconds: 0.5}, 1000, 1.5},
		// Zero bytes still pay the connection setup.
		{"zero bytes", Link{BandwidthBps: 8000, RTTSeconds: 0.5}, 0, 0.5},
		// A zero-bandwidth (unconstrained) wire serializes for free but
		// must not discount the RTT it still performs.
		{"zero bandwidth keeps rtt", Link{BandwidthBps: 0, RTTSeconds: 0.25}, 1 << 20, 0.25},
		{"negative bandwidth keeps rtt", Link{BandwidthBps: -1, RTTSeconds: 0.25}, 1 << 20, 0.25},
		{"zero value link", Link{}, 1 << 20, 0},
		{"zero bandwidth zero bytes", Link{RTTSeconds: 0.05}, 0, 0.05},
	}
	for _, c := range cases {
		if got := c.link.TransferSeconds(c.n); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: TransferSeconds(%d) = %v, want %v", c.name, c.n, got, c.want)
		}
	}
	g := GigE()
	if g.TransferSeconds(2<<20) > 1 {
		t.Error("GigE should move 2MB in well under a second")
	}
}

func TestDistributeProgramsFleet(t *testing.T) {
	mfr, err := core.NewManufacturer("acme", nil)
	if err != nil {
		t.Fatal(err)
	}
	op, err := core.NewOperator("isp", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := mfr.Certify(op); err != nil {
		t.Fatal(err)
	}
	var devices []*core.Device
	for i := 0; i < 2; i++ {
		d, err := mfr.Manufacture(string(rune('a'+i))+"-router", core.DeviceConfig{Cores: 1, MonitorsEnabled: true})
		if err != nil {
			t.Fatal(err)
		}
		devices = append(devices, d)
	}

	reports, err := Distribute(op, devices, apps.IPv4CM(), GigE())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("%d reports", len(reports))
	}
	params := map[uint32]bool{}
	for _, r := range reports {
		if r.TotalSeconds <= 0 || r.WireSeconds <= 0 || r.ProcessSeconds <= 0 {
			t.Errorf("%s: empty accounting %+v", r.DeviceID, r)
		}
		if r.ProcessSeconds < r.WireSeconds {
			t.Errorf("%s: control-processor work should dominate the GigE wire time", r.DeviceID)
		}
		params[paramOf(t, r)] = true
	}
	// Each device got a fresh parameter — verified indirectly: the devices
	// both process traffic alarm-free.
	gen := packet.NewGenerator(5)
	for _, d := range devices {
		for i := 0; i < 50; i++ {
			res, err := d.Process(gen.Next(), 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Detected {
				t.Fatalf("%s: false alarm after distribution", d.ID)
			}
		}
	}
	if err := func() error {
		_, err := Distribute(op, nil, apps.IPv4CM(), GigE())
		return err
	}(); err == nil {
		t.Error("empty fleet accepted")
	}
}

// paramOf extracts a stand-in identity for the installed parameter: the
// install report's AES byte count varies only with payload, so use the app
// digest name instead (distinct per package build).
func paramOf(t *testing.T, r DeliveryReport) uint32 {
	t.Helper()
	var h uint32
	for _, c := range r.Install.App {
		h = h*31 + uint32(c)
	}
	return h
}
