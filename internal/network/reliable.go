package network

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"sdmmon/internal/apps"
	"sdmmon/internal/core"
	"sdmmon/internal/fault"
	"sdmmon/internal/obs"
	"sdmmon/internal/timing"
)

// This file makes the secure-installation path survive the management
// network it actually runs over (§5: "devices distributed anywhere in the
// Internet"): packages are retransmitted over a lossy link with capped
// exponential backoff plus jitter, each router has a delivery deadline, and
// a fleet rollout reports partial failure per router instead of aborting.
// Corrupted packages are indistinguishable from attacks at the device — the
// signature or decryption check fails — so they are retried, never trusted.

// Rollout outcome errors recorded per router in DeliveryReport.Err.
var (
	// ErrDeliveryAttempts: the retry budget ran out without one verified
	// installation.
	ErrDeliveryAttempts = errors.New("network: delivery attempts exhausted")
	// ErrDeliveryDeadline: the per-router deadline elapsed first.
	ErrDeliveryDeadline = errors.New("network: delivery deadline exceeded")
)

// LossyLink is a management path with injected faults: datagrams are
// dropped, bit-corrupted, or duplicated per fault.LinkFaults, routers
// listed in Dead receive nothing at all (a permanently unreachable device),
// and scheduled Partitions blackhole the whole link for virtual-time
// windows. Timing still follows the embedded Link.
//
// The link carries its own virtual clock: the delivery loops advance it as
// wire and backoff time accrue, so partition windows are evaluated against
// the same simulated seconds the reports account. A link is owned by one
// delivery loop at a time (the fleet control plane gives each router group
// its own link); the clock is not synchronized further.
type LossyLink struct {
	Link
	Faults fault.LinkFaults
	// Dead routers drop every datagram regardless of Faults.
	Dead map[string]bool
	// Partitions are scheduled blackhole windows evaluated against the
	// link's virtual clock at each Deliver.
	Partitions []fault.PartitionLink
	// Obs, when set, receives delivery telemetry (attempt/outcome counters,
	// wire/backoff second totals, verify-time histogram) from every retry
	// loop run over this link. Nil disables instrumentation at zero cost.
	Obs *obs.Collector

	inj *fault.Injector
	// clock is the link's virtual time in seconds (see SetClock/Advance).
	clock float64
	// partitionDrops counts datagrams blackholed by an active partition
	// window — kept apart from WireStats because a partition is scheduled
	// infrastructure failure, not per-datagram wire randomness.
	partitionDrops uint64
}

// SetClock positions the link's virtual clock (a rollout sets it to the
// wave's start time before delivering over the link).
func (l *LossyLink) SetClock(t float64) { l.clock = t }

// Clock reports the link's current virtual time in seconds.
func (l *LossyLink) Clock() float64 { return l.clock }

// Advance moves the link's virtual clock forward. The delivery loops call
// it as wire and backoff seconds accrue; dt <= 0 is ignored.
func (l *LossyLink) Advance(dt float64) {
	if dt > 0 {
		l.clock += dt
	}
}

// Partitioned reports whether a scheduled partition window blackholes the
// link at its current virtual time.
func (l *LossyLink) Partitioned() bool {
	for _, p := range l.Partitions {
		if p.Active(l.clock) {
			return true
		}
	}
	return false
}

// PartitionDrops counts datagrams blackholed by partition windows.
func (l *LossyLink) PartitionDrops() uint64 { return l.partitionDrops }

// NewLossyLink builds a lossy link over base with a deterministic fault
// stream drawn from seed.
func NewLossyLink(base Link, faults fault.LinkFaults, seed int64) *LossyLink {
	return &LossyLink{Link: base, Faults: faults, inj: fault.New(seed)}
}

// WireStats exposes the injector's ground-truth fault accounting (zero
// value when the link was built without an injector). Dead-router drops are
// not wire faults and are not counted here.
func (l *LossyLink) WireStats() fault.WireStats {
	if l.inj == nil {
		return fault.WireStats{}
	}
	return l.inj.WireStats()
}

// Deliver transports one datagram toward a device and returns what arrives:
// zero, one (possibly corrupted), or two copies.
func (l *LossyLink) Deliver(deviceID string, wire []byte) [][]byte {
	if l.Partitioned() {
		l.partitionDrops++
		return nil
	}
	if l.Dead[deviceID] {
		return nil
	}
	if l.inj == nil {
		return [][]byte{append([]byte(nil), wire...)}
	}
	return l.inj.Wire(wire, l.Faults)
}

// RetryPolicy bounds the per-router retry loop.
type RetryPolicy struct {
	// MaxAttempts is the transmission budget per router (>= 1).
	MaxAttempts int
	// BaseBackoffSeconds is the wait after the first failed attempt; it
	// doubles per attempt up to MaxBackoffSeconds.
	BaseBackoffSeconds float64
	MaxBackoffSeconds  float64
	// JitterFrac spreads each backoff uniformly over ±JitterFrac of its
	// nominal value (decorrelates fleet-wide retry storms).
	JitterFrac float64
	// DeadlineSeconds is the per-router budget in simulated seconds (wire
	// time + backoff); 0 disables the deadline.
	DeadlineSeconds float64
}

// DefaultRetryPolicy matches a WAN management path: 8 attempts, 100 ms
// initial backoff capped at 5 s, ±25% jitter, 60 s per-router deadline.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:        8,
		BaseBackoffSeconds: 0.1,
		MaxBackoffSeconds:  5,
		JitterFrac:         0.25,
		DeadlineSeconds:    60,
	}
}

// backoff returns the jittered wait before transmission attempt+1.
func (p RetryPolicy) backoff(attempt int, rng *rand.Rand) float64 {
	b := p.BaseBackoffSeconds * math.Pow(2, float64(attempt-1))
	if p.MaxBackoffSeconds > 0 && b > p.MaxBackoffSeconds {
		b = p.MaxBackoffSeconds
	}
	if p.JitterFrac > 0 {
		b *= 1 + p.JitterFrac*(2*rng.Float64()-1)
	}
	return b
}

// FleetRollout is the outcome of a reliable fleet-wide installation.
type FleetRollout struct {
	Reports   []DeliveryReport
	Succeeded int
	Failed    int
	// TotalAttempts sums transmissions across the fleet.
	TotalAttempts int
}

// Converged reports whether every router installed successfully.
func (r FleetRollout) Converged() bool { return r.Failed == 0 }

// DistributeReliable programs every device over a lossy link, retrying
// per router with capped exponential backoff until the package verifies,
// the attempt budget runs out, or the router's deadline passes. A router
// that never converges is reported as failed — with its attempt count and
// error — while the rest of the fleet proceeds; only infrastructure errors
// (packaging itself failing) abort the rollout.
func DistributeReliable(op *core.Operator, devices []*core.Device, app *apps.App, link *LossyLink, pol RetryPolicy, seed int64) (FleetRollout, error) {
	var out FleetRollout
	if len(devices) == 0 {
		return out, fmt.Errorf("network: no devices to program")
	}
	if pol.MaxAttempts < 1 {
		pol.MaxAttempts = 1
	}
	model := timing.NiosIIPrototype()
	for _, dev := range devices {
		wire, err := op.ProgramWire(dev.Public(), app)
		if err != nil {
			return out, fmt.Errorf("network: packaging for %s: %w", dev.ID, err)
		}
		rep := deliverWithRetry(dev, wire, link, pol, model, seed, (*core.Device).Install)
		out.Reports = append(out.Reports, rep)
		out.TotalAttempts += rep.Attempts
		if rep.Err == nil {
			out.Succeeded++
		} else {
			out.Failed++
		}
	}
	return out, nil
}

// installFunc is how a delivered package lands on the device: the
// destructive (*core.Device).Install for plain distribution, or
// (*core.Device).StageUpgrade for the staged rollout path — the retry loop
// is identical either way because both run the full verification pipeline.
type installFunc func(dev *core.Device, wire []byte) (*core.InstallReport, error)

// DeriveSeed folds a recipient identity into a delivery seed (FNV-1a), so
// every per-recipient retry loop draws jitter from its own stream. A shared
// stream would make the jitter sequence depend on delivery order, which a
// concurrent (per-group) fleet rollout does not have — per-call derivation
// is what makes fleet-scale replay byte-deterministic per seed.
func DeriveSeed(seed int64, id string) int64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range []byte(id) {
		h = (h ^ uint64(b)) * prime
	}
	return seed ^ int64(h)
}

// DeliverReliable runs the capped-backoff retry loop for one recipient over
// a lossy link: transmit, apply every arriving copy until one verifies,
// back off with seeded jitter, give up when the attempt budget or the
// per-recipient deadline runs out. apply must return nil only after full
// verification — a corrupted datagram surfaces there exactly like an attack
// and is retried, never trusted. The link's virtual clock advances with the
// accrued wire and backoff seconds, so scheduled partition windows open and
// close while the loop runs.
func DeliverReliable(link *LossyLink, id string, wire []byte, pol RetryPolicy, seed int64, apply func(copy []byte) error) DeliveryReport {
	if pol.MaxAttempts < 1 {
		pol.MaxAttempts = 1
	}
	rng := rand.New(rand.NewSource(DeriveSeed(seed, id)))
	rep := DeliveryReport{DeviceID: id}
	var lastErr error
	for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
		rep.Attempts = attempt
		// The wire time is spent whether or not the package arrives: a
		// lost transfer is only discovered when the response times out.
		wireS := link.TransferSeconds(len(wire))
		rep.WireSeconds += wireS
		link.Advance(wireS)
		copies := link.Deliver(id, wire)
		if len(copies) == 0 {
			lastErr = fmt.Errorf("network: %s attempt %d: package lost in transit", id, attempt)
		}
		for _, c := range copies {
			if err := apply(c); err != nil {
				// Bit corruption surfaces as a signature/decrypt/parse
				// failure — exactly like an attack. Never trust it;
				// retransmit instead.
				lastErr = fmt.Errorf("network: %s attempt %d: %w", id, attempt, err)
				continue
			}
			// Converged. Duplicate copies of an already-installed
			// package are simply ignored by stopping here.
			rep.TotalSeconds = rep.WireSeconds + rep.BackoffSeconds
			return rep
		}
		// Accrue the backoff before the deadline check. The previous order
		// (check, then accrue) let attempt N+1 transmit even when the wait
		// preceding it had already blown the per-router budget — the report
		// then both overran DeadlineSeconds and overstated attempts.
		if attempt < pol.MaxAttempts {
			b := pol.backoff(attempt, rng)
			rep.BackoffSeconds += b
			link.Advance(b)
		}
		if pol.DeadlineSeconds > 0 && rep.WireSeconds+rep.BackoffSeconds > pol.DeadlineSeconds {
			rep.Err = fmt.Errorf("%w after %d attempts (%.2fs): %v",
				ErrDeliveryDeadline, attempt, rep.WireSeconds+rep.BackoffSeconds, lastErr)
			rep.TotalSeconds = rep.WireSeconds + rep.BackoffSeconds
			return rep
		}
	}
	rep.Err = fmt.Errorf("%w (%d attempts): %v", ErrDeliveryAttempts, pol.MaxAttempts, lastErr)
	rep.TotalSeconds = rep.WireSeconds + rep.BackoffSeconds
	return rep
}

// deliverWithRetry runs the per-router retry loop for one prepared package
// through the device's cryptographic install pipeline, adding the modeled
// control-processor verification time on success.
func deliverWithRetry(dev *core.Device, wire []byte, link *LossyLink, pol RetryPolicy, model timing.CostModel, seed int64, install installFunc) DeliveryReport {
	var inst *core.InstallReport
	rep := DeliverReliable(link, dev.ID, wire, pol, seed, func(c []byte) error {
		r, err := install(dev, c)
		if err == nil {
			inst = r
		}
		return err
	})
	if rep.Err == nil {
		rep.Install = inst
		rep.ProcessSeconds = model.EstimateOps(inst.Ops)
		rep.TotalSeconds = rep.WireSeconds + rep.ProcessSeconds + rep.BackoffSeconds
	}
	publishDelivery(link, &rep)
	return rep
}

// publishDelivery folds one finished delivery report into the link's
// collector. No-op (a handful of nil checks) when the link carries no
// collector — the management plane shares the data plane's disabled-hook
// contract.
func publishDelivery(link *LossyLink, rep *DeliveryReport) {
	reg := link.Obs.Registry()
	if reg == nil {
		return
	}
	reg.Counter("net_delivery_attempts_total").Add(uint64(rep.Attempts))
	reg.Gauge("net_wire_seconds_total").Add(rep.WireSeconds)
	reg.Gauge("net_backoff_seconds_total").Add(rep.BackoffSeconds)
	if rep.Err == nil {
		reg.Counter("net_deliveries_total").Inc()
		reg.Histogram("net_verify_seconds", obs.SecondsBuckets).Observe(rep.ProcessSeconds)
	} else {
		reg.Counter("net_delivery_failures_total").Inc()
	}
}
