package attack

import (
	"math/rand"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/isa"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
	"sdmmon/internal/packet"
)

func TestCraftPacketIsWellFormed(t *testing.T) {
	c := DefaultSmash()
	code, err := c.HijackPayload()
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := c.CraftPacket(code)
	if err != nil {
		t.Fatal(err)
	}
	p, err := packet.ParseIPv4(pkt)
	if err != nil {
		t.Fatalf("attack packet does not parse: %v", err)
	}
	if len(p.Options) != 24 {
		t.Errorf("options = %d bytes, want 24 (IHL 11)", len(p.Options))
	}
	if !packet.ChecksumOK(pkt) {
		t.Error("attack packet has invalid checksum — would be dropped early")
	}
	if _, err := c.CraftPacket(nil); err == nil {
		t.Error("empty payload accepted")
	}
}

func TestSmashHijacksUnmonitoredCore(t *testing.T) {
	// Without a hardware monitor the data-plane attack fully succeeds:
	// the core executes packet-borne code, rewrites the destination and
	// reports a clean forward.
	c := DefaultSmash()
	code, err := c.HijackPayload()
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := c.CraftPacket(code)
	if err != nil {
		t.Fatal(err)
	}
	res, err := apps.RunApp(apps.IPv4CM(), pkt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exc != nil {
		t.Fatalf("attack crashed instead of hijacking: %v", res.Exc)
	}
	if !Succeeded(res) {
		t.Fatalf("hijack failed: verdict=%d dst=% x", res.Verdict, res.Packet[16:20])
	}
}

func TestSafeVariantResistsSmash(t *testing.T) {
	c := DefaultSmash()
	code, err := c.HijackPayload()
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := c.CraftPacket(code)
	if err != nil {
		t.Fatal(err)
	}
	res, err := apps.RunApp(apps.IPv4Safe(), pkt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if Succeeded(res) {
		t.Fatal("bounds-checked variant was hijacked")
	}
}

func TestMonitorDetectsSmash(t *testing.T) {
	// The paper's core claim (E8): with the monitor attached, the hijack
	// is detected and the core reset; the packet is dropped.
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	detections := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		h := mhash.NewMerkle(rng.Uint32())
		g, err := monitor.Extract(prog, h)
		if err != nil {
			t.Fatal(err)
		}
		m, err := monitor.New(g, h)
		if err != nil {
			t.Fatal(err)
		}
		core := apps.NewCore(prog)
		core.Trace = m.Observe

		c := DefaultSmash()
		code, err := c.HijackPayload()
		if err != nil {
			t.Fatal(err)
		}
		pkt, err := c.CraftPacket(code)
		if err != nil {
			t.Fatal(err)
		}
		res := core.Process(pkt, 0)
		if res.Exc != nil {
			detections++
			if Succeeded(res) {
				t.Error("detected attack still counted as success")
			}
		}
		m.Reset()
	}
	// Escape probability per instruction ≈ 1/16; a 6-instruction payload
	// escapes entirely with probability ≪ 1. Expect near-universal
	// detection.
	if detections < trials-5 {
		t.Errorf("detected %d/%d attacks", detections, trials)
	}
}

func TestMonitorStaysQuietOnBenignTrafficAroundAttacks(t *testing.T) {
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		t.Fatal(err)
	}
	h := mhash.NewMerkle(0xFEED1234)
	g, err := monitor.Extract(prog, h)
	if err != nil {
		t.Fatal(err)
	}
	m, err := monitor.New(g, h)
	if err != nil {
		t.Fatal(err)
	}
	core := apps.NewCore(prog)
	core.Trace = m.Observe
	gen := packet.NewGenerator(5)
	gen.OptionWords = 2

	smash := DefaultSmash()
	code, err := smash.HijackPayload()
	if err != nil {
		t.Fatal(err)
	}
	atk, err := smash.CraftPacket(code)
	if err != nil {
		t.Fatal(err)
	}

	benignAlarms, attackMisses := 0, 0
	for i := 0; i < 300; i++ {
		m.Reset()
		if i%50 == 25 { // interleave attacks
			res := core.Process(atk, 0)
			if res.Exc == nil && Succeeded(res) {
				attackMisses++
			}
			continue
		}
		res := core.Process(gen.Next(), 0)
		if res.Exc != nil {
			benignAlarms++
		}
	}
	if benignAlarms != 0 {
		t.Errorf("%d false alarms on benign traffic", benignAlarms)
	}
	if attackMisses > 1 {
		t.Errorf("%d attacks escaped", attackMisses)
	}
}

func TestTemplateVariants(t *testing.T) {
	f := FillerTemplate()
	vs := f.Variants(1 << 16)
	if len(vs) != 65536 {
		t.Fatalf("filler variants = %d", len(vs))
	}
	seen := map[isa.Word]bool{}
	for _, v := range vs {
		if v.Op() != isa.OpANDI || v.Rs() != isa.RegT6 || v.Rt() != isa.RegT6 {
			t.Fatalf("variant %08x broke the template", uint32(v))
		}
		seen[v] = true
	}
	if len(seen) != 65536 {
		t.Error("variants not distinct")
	}
	exact := Template{Base: isa.NOP}
	if len(exact.Variants(100)) != 1 {
		t.Error("exact template should have one variant")
	}
	if got := len(f.Variants(10)); got != 10 {
		t.Errorf("limit ignored: %d", got)
	}
}

func TestEngineerMatchesKnownParameter(t *testing.T) {
	// §3.2: with the parameter known, the attacker can engineer a
	// hash-matching attack. Expected sequence: a long valid path (hashes
	// of random valid-looking words under the same unit).
	rng := rand.New(rand.NewSource(9))
	h := mhash.NewMerkle(rng.Uint32())
	trace := make([]isa.Word, 512)
	for i := range trace {
		trace[i] = isa.Word(rng.Uint32())
	}
	want := ExpectedHashes(h, trace)
	res := Engineer(h, want, HijackTemplates(apps.PktBase))
	if !res.OK {
		t.Fatalf("engineering failed: %v", res)
	}
	if !AcceptedBy(h, want, res.Code) {
		t.Fatal("engineered code not accepted under its own parameter")
	}
	if res.Fillers == 0 {
		t.Log("engineering needed no fillers (lucky parameter)")
	}
}

// Reproduction finding: with the paper's arithmetic-sum compression the
// Merkle tree collapses to (Σnibbles(param) + Σnibbles(instr)) mod 16, so
// h(a) == h(b) does not depend on the parameter at all. An engineered
// hash-matching attack therefore transfers to EVERY router — parameter
// diversity (SR2) is vacuous for equality-matching attacks under the
// prototype's own compression function. A nonlinear compression (the S-box
// variant) restores the intended containment. Both behaviours are pinned
// here and reported in EXPERIMENTS.md (experiment E6).
func TestEngineeredAttackTransferability(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	trace := make([]isa.Word, 512)
	for i := range trace {
		trace[i] = isa.Word(rng.Uint32())
	}
	const fleet = 100

	transfersWith := func(mk func(uint32) mhash.Hasher) int {
		h0 := mk(rng.Uint32())
		want0 := ExpectedHashes(h0, trace)
		res := Engineer(h0, want0, HijackTemplates(apps.PktBase))
		if !res.OK {
			t.Fatal("engineering failed")
		}
		if !AcceptedBy(h0, want0, res.Code) {
			t.Fatal("engineered code rejected by its own parameter")
		}
		transfers := 0
		for i := 0; i < fleet; i++ {
			hi := mk(rng.Uint32())
			wanti := ExpectedHashes(hi, trace)
			if AcceptedBy(hi, wanti, res.Code) {
				transfers++
			}
		}
		return transfers
	}

	sum := transfersWith(func(p uint32) mhash.Hasher { return mhash.NewMerkle(p) })
	if sum != fleet {
		t.Errorf("sum compression: %d/%d transfers — the collapse finding should make it %d",
			sum, fleet, fleet)
	}
	sbox := transfersWith(func(p uint32) mhash.Hasher {
		h, err := mhash.NewMerkleWith(p, 4, mhash.SBoxCompress())
		if err != nil {
			t.Fatal(err)
		}
		return h
	})
	if sbox != 0 {
		t.Errorf("s-box compression: %d/%d transfers, want containment (0)", sbox, fleet)
	}
}

func TestAcceptedByLengthGuard(t *testing.T) {
	h := mhash.NewMerkle(1)
	if AcceptedBy(h, []uint8{1}, []isa.Word{0, 0}) {
		t.Error("code longer than expected sequence accepted")
	}
}

func TestBreakTemplateAlwaysMatchable(t *testing.T) {
	// break has 20 free bits: under any parameter, some variant matches
	// any target hash value.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		h := mhash.NewMerkle(rng.Uint32())
		for target := uint8(0); target < 16; target++ {
			found := false
			for _, v := range BreakTemplate().Variants(1 << 12) {
				if h.Hash(uint32(v)) == target {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("no break variant hashes to %d", target)
			}
		}
	}
}
