// Package attack implements the adversary models of the paper's security
// analysis: the data-plane stack-smashing attack (§1, after Chasaki & Wolf)
// that hijacks a network processor core with a single malformed packet, and
// the hash-matching attack engineering of §3.2 (an instruction sequence
// whose hashes are "identical to the hash values expected by the monitor"),
// which quantifies why per-router hash parameters are needed (SR2).
package attack

import (
	"encoding/binary"
	"fmt"

	"sdmmon/internal/apps"
	"sdmmon/internal/asm"
	"sdmmon/internal/isa"
	"sdmmon/internal/packet"
)

// SmashConfig is the attacker's knowledge of the target platform layout —
// realistic for a homogeneous fleet of identical routers (§1).
type SmashConfig struct {
	// PktBase is the fixed address the dispatcher DMA-writes packets to.
	PktBase uint32
	// RAOffsetInOptions is the byte offset within the IP options field
	// whose four bytes land on the saved return address: the vulnerable
	// app copies options to a 16-byte buffer at $sp and keeps $ra at
	// 20($sp).
	RAOffsetInOptions int
}

// DefaultSmash targets the built-in ipv4cm application.
func DefaultSmash() SmashConfig {
	return SmashConfig{PktBase: apps.PktBase, RAOffsetInOptions: 20}
}

// optionLen is the attack's option-field size: 24 bytes (IHL = 11). The
// dispatcher parks $sp at the top of core memory, so the 16-byte buffer
// overflow may extend exactly to the saved $ra at bytes 20..23 — longer
// options would run past the top of RAM and fault before the function
// returns.
const optionLen = 24

// codeOffset is where attacker code lands inside the packet: right after
// the 20+24-byte header.
const codeOffset = 20 + optionLen

// CodeAddr returns the memory address of the injected code.
func (c SmashConfig) CodeAddr() uint32 { return c.PktBase + codeOffset }

// CraftPacket builds the malformed attack packet: a maximal IP header whose
// options overflow the on-stack buffer, overwrite the saved return address
// with the payload address, and whose payload is the attacker's machine
// code.
func (c SmashConfig) CraftPacket(code []isa.Word) ([]byte, error) {
	if len(code) == 0 {
		return nil, fmt.Errorf("attack: empty payload")
	}
	opts := make([]byte, optionLen)
	for i := range opts {
		opts[i] = 0x01 // NOP options; innocuous filler
	}
	if c.RAOffsetInOptions+4 > len(opts) {
		return nil, fmt.Errorf("attack: ra offset %d outside options", c.RAOffsetInOptions)
	}
	binary.BigEndian.PutUint32(opts[c.RAOffsetInOptions:], c.CodeAddr())

	payload := make([]byte, 4*len(code))
	for i, w := range code {
		binary.BigEndian.PutUint32(payload[4*i:], uint32(w))
	}
	p := &packet.IPv4{
		TOS:     0,
		ID:      0x6666,
		TTL:     17,
		Proto:   packet.ProtoUDP,
		Src:     packet.IP(10, 66, 66, 66),
		Dst:     packet.IP(192, 168, 1, 1),
		Options: opts,
		Payload: payload,
	}
	return p.Marshal()
}

// HijackPayload is the default attacker code: redirect the packet to the
// attacker's sink address, report a normal "forward" verdict and terminate
// cleanly — the core believes processing succeeded. Assembled at the
// injected-code address so branches (if any) resolve correctly.
func (c SmashConfig) HijackPayload() ([]isa.Word, error) {
	src := fmt.Sprintf(`
	.text 0x%x
main:
	li $t0, 0x%x          # packet base
	li $t1, 0x0A424242    # attacker sink 10.66.66.66
	sw $t1, 16($t0)       # rewrite destination IP
	li $v0, 1             # pretend the verdict is "forward"
	break
`, c.CodeAddr(), c.PktBase)
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("attack: payload: %w", err)
	}
	var code []isa.Word
	for _, cw := range prog.CodeWords() {
		code = append(code, cw.W)
	}
	return code, nil
}

// SinkIP is the destination the hijack payload rewrites packets to.
var SinkIP = packet.IP(10, 0x42, 0x42, 0x42)

// Succeeded reports whether a processed packet shows the hijack outcome:
// forwarded with the destination rewritten to the attacker sink.
func Succeeded(res apps.PacketResult) bool {
	if res.Verdict != apps.VerdictForward || len(res.Packet) < 20 {
		return false
	}
	var dst [4]byte
	copy(dst[:], res.Packet[16:20])
	return dst == SinkIP
}
