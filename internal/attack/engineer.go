package attack

import (
	"fmt"

	"sdmmon/internal/isa"
	"sdmmon/internal/mhash"
)

// Template is an attack instruction with don't-care bits: every variant
// Base | (x & Mask) is semantically acceptable to the attacker (unused
// immediate bits, interchangeable scratch registers, the ignored code field
// of break). The hash-matching engineering of §3.2 searches these variants
// for one whose hash equals the monitor's expected value.
type Template struct {
	Name string
	Base isa.Word
	Mask uint32
}

// Variants enumerates up to limit variants of the template.
func (t Template) Variants(limit int) []isa.Word {
	if t.Mask == 0 {
		return []isa.Word{t.Base}
	}
	var out []isa.Word
	// Enumerate values of the masked field by iterating a counter through
	// the mask's bit positions.
	var bits []uint
	for i := uint(0); i < 32; i++ {
		if t.Mask&(1<<i) != 0 {
			bits = append(bits, i)
		}
	}
	n := 1 << uint(len(bits))
	if n > limit {
		n = limit
	}
	for v := 0; v < n; v++ {
		var field uint32
		for j, b := range bits {
			if v&(1<<uint(j)) != 0 {
				field |= 1 << b
			}
		}
		out = append(out, t.Base|isa.Word(field))
	}
	return out
}

// FillerTemplate is a semantically inert instruction with 16 don't-care
// bits: andi $t6, $t6, imm only narrows a scratch register.
func FillerTemplate() Template {
	return Template{
		Name: "filler-andi",
		Base: isa.EncodeI(isa.OpANDI, isa.RegT6, isa.RegT6, 0),
		Mask: 0x0000FFFF,
	}
}

// FillerTemplates returns several inert instruction families (all only
// touch the $t6 scratch register), so that a position can be matched even
// when one family's variant set misses the target hash value.
func FillerTemplates() []Template {
	return []Template{
		FillerTemplate(),
		{Name: "filler-ori", Base: isa.EncodeI(isa.OpORI, isa.RegT6, isa.RegT6, 0), Mask: 0x0000FFFF},
		{Name: "filler-xori", Base: isa.EncodeI(isa.OpXORI, isa.RegT6, isa.RegT6, 0), Mask: 0x0000FFFF},
		{Name: "filler-lui", Base: isa.EncodeI(isa.OpLUI, 0, isa.RegT6, 0), Mask: 0x0000FFFF},
		{Name: "filler-slti", Base: isa.EncodeI(isa.OpSLTI, isa.RegT6, isa.RegT6, 0), Mask: 0x0000FFFF},
	}
}

// BreakTemplate is break with its 20-bit ignored code field free — always
// hash-matchable in practice.
func BreakTemplate() Template {
	return Template{
		Name: "break",
		Base: isa.EncodeR(isa.FnBREAK, 0, 0, 0, 0),
		Mask: 0x03FFFFC0,
	}
}

// HijackTemplates is the hijack payload of SmashConfig.HijackPayload with
// the attacker's degrees of freedom made explicit: the sink address's low
// bits and break's ignored code field are free; the rest are exact and rely
// on filler-sliding to land on a matching position.
func HijackTemplates(pktBase uint32) []Template {
	return []Template{
		{Name: "lui-base", Base: isa.EncodeI(isa.OpLUI, 0, isa.RegT0, uint16(pktBase>>16))},
		{Name: "ori-base", Base: isa.EncodeI(isa.OpORI, isa.RegT0, isa.RegT0, uint16(pktBase))},
		{Name: "lui-sink", Base: isa.EncodeI(isa.OpLUI, 0, isa.RegT1, 0x0A42)},
		// The sink's low 16 bits are attacker-chosen: full freedom.
		{Name: "ori-sink", Base: isa.EncodeI(isa.OpORI, isa.RegT1, isa.RegT1, 0), Mask: 0x0000FFFF},
		{Name: "sw-dst", Base: isa.EncodeI(isa.OpSW, isa.RegT0, isa.RegT1, 16)},
		{Name: "li-verdict", Base: isa.EncodeI(isa.OpADDIU, isa.RegZero, isa.RegV0, 1)},
		BreakTemplate(),
	}
}

// EngineerResult is the outcome of hash-matching engineering.
type EngineerResult struct {
	Code    []isa.Word
	Fillers int  // inert instructions inserted to realign
	OK      bool // every payload instruction placed
}

// Engineer builds an attack instruction sequence whose hash sequence equals
// `want` (the hashes the monitor expects along a valid path) under the
// *known* hash unit h — the attacker's position once a parameter has leaked
// or been brute-forced on one router of a homogeneous fleet. Payload
// instructions are emitted in order; where a payload instruction cannot
// match the expected hash at its position, inert fillers are inserted to
// slide it to a matching position.
func Engineer(h mhash.Hasher, want []uint8, payload []Template) EngineerResult {
	var out []isa.Word
	fillers := 0
	pos := 0
	fillerSet := FillerTemplates()

	match := func(t Template) (isa.Word, bool) {
		for _, v := range t.Variants(1 << 16) {
			if h.Hash(uint32(v)) == want[pos] {
				return v, true
			}
		}
		return 0, false
	}
	matchFiller := func() (isa.Word, bool) {
		for _, f := range fillerSet {
			if w, ok := match(f); ok {
				return w, true
			}
		}
		return 0, false
	}

	for _, t := range payload {
		placed := false
		for pos < len(want) {
			if w, ok := match(t); ok {
				out = append(out, w)
				pos++
				placed = true
				break
			}
			// Slide: insert a filler matching this position instead.
			fw, ok := matchFiller()
			if !ok {
				return EngineerResult{Code: out, Fillers: fillers, OK: false}
			}
			out = append(out, fw)
			fillers++
			pos++
		}
		if !placed {
			return EngineerResult{Code: out, Fillers: fillers, OK: false}
		}
	}
	return EngineerResult{Code: out, Fillers: fillers, OK: true}
}

// AcceptedBy reports whether the engineered sequence's hashes match the
// expected sequence under hash unit h (e.g., a *different* router's
// parameter): the replay test of the homogeneity experiment.
func AcceptedBy(h mhash.Hasher, want []uint8, code []isa.Word) bool {
	if len(code) > len(want) {
		return false
	}
	for i, w := range code {
		if h.Hash(uint32(w)) != want[i] {
			return false
		}
	}
	return true
}

// ExpectedHashes computes the monitor's expected hash sequence along a
// known-valid instruction trace (the attacker derives this from the binary,
// which AC2 grants them).
func ExpectedHashes(h mhash.Hasher, trace []isa.Word) []uint8 {
	out := make([]uint8, len(trace))
	for i, w := range trace {
		out[i] = h.Hash(uint32(w))
	}
	return out
}

// String renders the engineered code.
func (r EngineerResult) String() string {
	s := fmt.Sprintf("engineered %d instructions (%d fillers, ok=%v)", len(r.Code), r.Fillers, r.OK)
	return s
}
