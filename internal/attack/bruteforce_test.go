package attack

import (
	"math/rand"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/mhash"
)

func TestBruteForcePersistAgainstSBox(t *testing.T) {
	// Against the nonlinear compression the attacker needs ≈2^4 probes on
	// average; measure over several hidden parameters.
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		t.Fatal(err)
	}
	mk := func(p uint32) mhash.Hasher {
		h, err := mhash.NewMerkleWith(p, 4, mhash.SBoxCompress())
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	smash := DefaultSmash()
	rng := rand.New(rand.NewSource(31))
	totalProbes, successes := 0, 0
	const victims = 12
	for i := 0; i < victims; i++ {
		oracle, err := NewNPOracle(prog, mk, rng.Uint32())
		if err != nil {
			t.Fatal(err)
		}
		res, err := smash.BruteForcePersist(oracle.Probe, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Succeeded {
			successes++
			totalProbes += res.Probes
		}
		if oracle.Tested() != res.Probes {
			t.Errorf("oracle served %d probes, campaign says %d", oracle.Tested(), res.Probes)
		}
	}
	if successes < victims-1 {
		t.Fatalf("only %d/%d campaigns succeeded", successes, victims)
	}
	mean := float64(totalProbes) / float64(successes)
	// Expected ≈16 (analytic: ExpectedProbes(4,1)); the enumerated variant
	// order is not hash-uniform, so allow wide slack.
	if mean < 2 || mean > 120 {
		t.Errorf("mean probes %.1f, want O(16)", mean)
	}
}

func TestBruteForceSumIsImmediate(t *testing.T) {
	// Against the paper's sum compression the first matching variant is
	// parameter-independent: the same probe index succeeds on every
	// victim (and typically within the first ~16 variants).
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		t.Fatal(err)
	}
	mk := func(p uint32) mhash.Hasher { return mhash.NewMerkle(p) }
	smash := DefaultSmash()
	rng := rand.New(rand.NewSource(32))
	var probeCounts []int
	for i := 0; i < 6; i++ {
		oracle, err := NewNPOracle(prog, mk, rng.Uint32())
		if err != nil {
			t.Fatal(err)
		}
		res, err := smash.BruteForcePersist(oracle.Probe, 254)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Succeeded {
			t.Fatal("brute force failed against sum compression")
		}
		probeCounts = append(probeCounts, res.Probes)
	}
	for _, p := range probeCounts[1:] {
		if p != probeCounts[0] {
			t.Errorf("probe counts differ across parameters (%v) — sum collapse predicts identical",
				probeCounts)
		}
	}
}

func TestBruteForceBudgetRespected(t *testing.T) {
	neverHit := func(pkt []byte) (bool, error) { return false, nil }
	res, err := DefaultSmash().BruteForcePersist(neverHit, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded || res.Probes != 10 {
		t.Errorf("budget ignored: %+v", res)
	}
}

func TestExpectedProbes(t *testing.T) {
	if ExpectedProbes(4, 1) != 16 {
		t.Error("4-bit single instruction should cost 16")
	}
	if ExpectedProbes(4, 2) != 256 {
		t.Error("two instructions should cost 256")
	}
	if ExpectedProbes(8, 1) != 256 {
		t.Error("8-bit hash should cost 256")
	}
}
