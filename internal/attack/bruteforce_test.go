package attack

import (
	"math/rand"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/mhash"
)

func TestBruteForcePersistAgainstSBox(t *testing.T) {
	// Against the nonlinear compression the attacker needs ≈2^4 probes on
	// average; measure over several hidden parameters.
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		t.Fatal(err)
	}
	mk := func(p uint32) mhash.Hasher {
		h, err := mhash.NewMerkleWith(p, 4, mhash.SBoxCompress())
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	smash := DefaultSmash()
	rng := rand.New(rand.NewSource(31))
	totalProbes, successes := 0, 0
	const victims = 12
	for i := 0; i < victims; i++ {
		oracle, err := NewNPOracle(prog, mk, rng.Uint32())
		if err != nil {
			t.Fatal(err)
		}
		res, err := smash.BruteForcePersist(oracle.Probe, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Succeeded {
			successes++
			totalProbes += res.Probes
		}
		if oracle.Tested() != res.Probes {
			t.Errorf("oracle served %d probes, campaign says %d", oracle.Tested(), res.Probes)
		}
	}
	if successes < victims-1 {
		t.Fatalf("only %d/%d campaigns succeeded", successes, victims)
	}
	mean := float64(totalProbes) / float64(successes)
	// Expected ≈16 (analytic: ExpectedProbes(4,1)); the enumerated variant
	// order is not hash-uniform, so allow wide slack.
	if mean < 2 || mean > 120 {
		t.Errorf("mean probes %.1f, want O(16)", mean)
	}
}

func TestBruteForceSumIsImmediate(t *testing.T) {
	// Against the paper's sum compression the first matching variant is
	// parameter-independent: the same probe index succeeds on every
	// victim (and typically within the first ~16 variants).
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		t.Fatal(err)
	}
	mk := func(p uint32) mhash.Hasher { return mhash.NewMerkle(p) }
	smash := DefaultSmash()
	rng := rand.New(rand.NewSource(32))
	var probeCounts []int
	for i := 0; i < 6; i++ {
		oracle, err := NewNPOracle(prog, mk, rng.Uint32())
		if err != nil {
			t.Fatal(err)
		}
		res, err := smash.BruteForcePersist(oracle.Probe, 254)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Succeeded {
			t.Fatal("brute force failed against sum compression")
		}
		probeCounts = append(probeCounts, res.Probes)
	}
	for _, p := range probeCounts[1:] {
		if p != probeCounts[0] {
			t.Errorf("probe counts differ across parameters (%v) — sum collapse predicts identical",
				probeCounts)
		}
	}
}

func TestBruteForceBudgetRespected(t *testing.T) {
	neverHit := func(pkt []byte) (bool, error) { return false, nil }
	res, err := DefaultSmash().BruteForcePersist(neverHit, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded || res.Probes != 10 {
		t.Errorf("budget ignored: %+v", res)
	}
}

func TestSearchPersistBudgetTable(t *testing.T) {
	// Satellite: budgeted search must stop at the cap, report honest effort
	// statistics, and refuse unbounded budgets outright.
	smash := DefaultSmash()
	variants := smash.PersistVariants()
	neverHit := func(pkt []byte) (bool, uint64, error) { return false, 37, nil }
	hitAt := func(n int) CostedOracle {
		calls := 0
		return func(pkt []byte) (bool, uint64, error) {
			calls++
			return calls == n, 37, nil
		}
	}
	cases := []struct {
		name          string
		oracle        CostedOracle
		budget        SearchBudget
		wantErr       bool
		wantSucceeded bool
		wantExhausted bool
		wantAttempts  int
		wantCycles    uint64
	}{
		{
			name:          "probe cap exhausts",
			oracle:        neverHit,
			budget:        SearchBudget{MaxProbes: 8},
			wantExhausted: true,
			wantAttempts:  8,
			wantCycles:    8 * 37,
		},
		{
			name:   "cycle cap exhausts",
			oracle: neverHit,
			// 5 probes × 37 cycles = 185 ≥ 150, so the 6th is refused.
			budget:        SearchBudget{MaxCycles: 150},
			wantExhausted: true,
			wantAttempts:  5,
			wantCycles:    5 * 37,
		},
		{
			name:    "unbounded refused",
			oracle:  neverHit,
			budget:  SearchBudget{},
			wantErr: true,
		},
		{
			name:    "negative probe cap refused",
			oracle:  neverHit,
			budget:  SearchBudget{MaxProbes: -1, MaxCycles: 100},
			wantErr: true,
		},
		{
			name:          "success within budget",
			oracle:        hitAt(4),
			budget:        SearchBudget{MaxProbes: 16, MaxCycles: 1 << 20},
			wantSucceeded: true,
			wantAttempts:  4,
			wantCycles:    4 * 37,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, stats, err := smash.SearchPersist(tc.oracle, tc.budget, variants)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("want budget error, got res=%+v stats=%+v", res, stats)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if res.Succeeded != tc.wantSucceeded {
				t.Errorf("Succeeded=%v, want %v", res.Succeeded, tc.wantSucceeded)
			}
			if stats.Exhausted != tc.wantExhausted {
				t.Errorf("Exhausted=%v, want %v", stats.Exhausted, tc.wantExhausted)
			}
			if stats.Attempts != tc.wantAttempts || res.Probes != tc.wantAttempts {
				t.Errorf("Attempts=%d Probes=%d, want %d", stats.Attempts, res.Probes, tc.wantAttempts)
			}
			if stats.Cycles != tc.wantCycles {
				t.Errorf("Cycles=%d, want %d", stats.Cycles, tc.wantCycles)
			}
			if stats.WallSeconds < 0 {
				t.Errorf("WallSeconds=%f negative", stats.WallSeconds)
			}
		})
	}
}

func TestExpectedProbes(t *testing.T) {
	if ExpectedProbes(4, 1) != 16 {
		t.Error("4-bit single instruction should cost 16")
	}
	if ExpectedProbes(4, 2) != 256 {
		t.Error("two instructions should cost 256")
	}
	if ExpectedProbes(8, 1) != 256 {
		t.Error("8-bit hash should cost 256")
	}
}
