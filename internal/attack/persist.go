package attack

import (
	"fmt"

	"sdmmon/internal/asm"
	"sdmmon/internal/isa"
	"sdmmon/internal/mhash"
)

// This file implements the strongest attack the monitor's semantics leave
// open and the homogeneity experiment (E6) measures: a *single* engineered
// instruction that hash-matches the monitor's expected value at the return
// site, corrupts persistent per-core state (scratch memory), and only then
// trips the alarm. The packet is dropped — but the damage survives the
// recovery, because recovery resets core registers, not memory.
//
// Against the paper's arithmetic-sum compression the required hash match is
// parameter-independent (see TestEngineeredAttackTransferability), so one
// such attack compromises an entire diverse-parameter fleet; the S-box
// compression confines it to ≈1/16 of routers per attempt.

// PersistTargetOffset is the scratch word the attack corrupts (word 1 —
// word 0 is the app's CM counter).
const PersistTargetOffset = 4

// PersistVariants enumerates sw $rt, off($t0) with offsets sweeping the
// scratch region and the stored register ranging over values known to be
// nonzero at the hijack entry point of ipv4cm ($t0 holds PktBase+20 there,
// so offset -2064-4k targets scratch word 1+k). Both fields are attacker
// don't-cares — any nonzero value in any scratch word is corruption — which
// gives the brute-force search ~2000 hash-diverse candidates. Exported so
// campaign drivers can reorder the candidate stream under their own seed.
func (c SmashConfig) PersistVariants() []isa.Word {
	t0 := c.PktBase + 20
	// Registers holding nonzero values when the smashed return fires:
	// v0=1, t0=pkt+20, t2/t8=option length, a0=pkt, s0=ihl, sp, ra.
	regs := []uint32{isa.RegT0, isa.RegV0, isa.RegA0, isa.RegS0,
		isa.RegT2, isa.RegT8, isa.RegSP, isa.RegRA}
	var out []isa.Word
	for k := 0; k < 255; k++ {
		target := 0x3800 + 4 + 4*uint32(k) // scratch words 1..255
		off := int32(target) - int32(t0)
		for _, rt := range regs {
			out = append(out, isa.EncodeI(isa.OpSW, isa.RegT0, rt, uint16(int16(off))))
		}
	}
	return out
}

// PersistAttack engineers the one-instruction scratch-corruption attack
// against a router whose hash parameter the attacker knows (leaked or
// brute-forced on one unit of a homogeneous fleet). prog is the installed
// binary, which AC2 grants the attacker. ok=false when no store variant
// hash-matches under h.
func (c SmashConfig) PersistAttack(prog *asm.Program, h mhash.Hasher) (pkt []byte, ok bool, err error) {
	retSite, err := ReturnSiteAfterEntryCall(prog)
	if err != nil {
		return nil, false, err
	}
	retWord, okw := prog.WordAt(retSite)
	if !okw {
		return nil, false, fmt.Errorf("attack: return site 0x%x not code", retSite)
	}
	want := h.Hash(uint32(retWord))
	for _, v := range c.PersistVariants() {
		if h.Hash(uint32(v)) == want {
			p, err := c.CraftPacket([]isa.Word{v})
			if err != nil {
				return nil, false, err
			}
			return p, true, nil
		}
	}
	return nil, false, nil
}

// ReturnSiteAfterEntryCall finds the instruction address following the
// first jal in the program: the graph position the monitor lands on after
// the smashed jr $ra. Exported so campaign drivers can compute the expected
// fall-through hash sequence a gadget chain must match to evade.
func ReturnSiteAfterEntryCall(prog *asm.Program) (uint32, error) {
	for _, cw := range prog.CodeWords() {
		if cw.W.Op() == isa.OpJAL {
			return cw.Addr + 4, nil
		}
	}
	return 0, fmt.Errorf("attack: no call site in binary")
}

// PersistCompromised checks per-core scratch memory for the corruption
// marker the persist attack leaves.
type ScratchReader interface {
	Scratch(coreID, off, n int) ([]byte, error)
}

// PersistSucceeded reports whether any scratch word 1..255 of the core is
// nonzero (the persist attack's footprint; the benign apps only touch
// word 0 and the protocol counter table of the counter app — run the
// experiment with ipv4cm).
func PersistSucceeded(r ScratchReader, coreID int) (bool, error) {
	b, err := r.Scratch(coreID, PersistTargetOffset, 255*4)
	if err != nil {
		return false, err
	}
	for _, x := range b {
		if x != 0 {
			return true, nil
		}
	}
	return false, nil
}

// TransferProbability returns the analytic probability that a persist
// attack engineered for one parameter also matches under an independent
// random parameter, for the given hasher family: 1.0 for the sum
// compression (the collapse finding), ≈1/16 for an ideal parameterized
// hash.
func TransferProbability(mk func(uint32) mhash.Hasher, samples int, seed int64) float64 {
	// Reuse the mhash sensitivity machinery indirectly: a transfer happens
	// iff h'(attack) == h'(valid) given h(attack) == h(valid).
	rng := newLCG(seed)
	hits, total := 0, 0
	for total < samples {
		p0 := uint32(rng.next())
		h0 := mk(p0)
		a := uint32(rng.next())
		b := uint32(rng.next())
		if h0.Hash(a) != h0.Hash(b) {
			continue // not a valid engineered pair under h0
		}
		h1 := mk(uint32(rng.next()))
		if h1.Hash(a) == h1.Hash(b) {
			hits++
		}
		total++
	}
	return float64(hits) / float64(samples)
}

// newLCG is a tiny deterministic generator so this package does not drag
// math/rand into non-test code paths that want reproducibility.
type lcg struct{ s uint64 }

func newLCG(seed int64) *lcg { return &lcg{s: uint64(seed)*2862933555777941757 + 3037000493} }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 16
}
