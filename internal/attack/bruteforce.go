package attack

import (
	"fmt"
	"time"

	"sdmmon/internal/apps"
	"sdmmon/internal/asm"
	"sdmmon/internal/isa"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
)

// §3.2 argues that without the parameter "the only viable attack would be a
// brute force enumeration of different hash sequences" and that this is
// "difficult to implement for longer attacks". This file quantifies the
// easy end the paper does not dwell on: the attacker probes a live router
// (send attack variant, observe whether the persistent corruption landed —
// AC1 lets them observe behaviour) until one variant passes. For a
// one-instruction attack against a W-bit hash the expected probe count is
// only 2^W; the geometric hardness genuinely protects only multi-instruction
// sequences.

// ProbeOracle abstracts the victim: it reports whether one attack packet
// achieved persistent compromise (the attacker can test this via subsequent
// behaviour).
type ProbeOracle func(pkt []byte) (compromised bool, err error)

// BruteForceResult records one probing campaign.
type BruteForceResult struct {
	Probes    int  // packets sent until success (or budget exhaustion)
	Succeeded bool // a variant passed within the budget
}

// CostedOracle is a ProbeOracle that also reports the virtual cost of the
// probe (core cycles spent processing the attack packet), so a search can
// be capped by attacker-side compute rather than just packet count.
type CostedOracle func(pkt []byte) (compromised bool, cycles uint64, err error)

// SearchBudget caps a collision search. At least one cap must be set —
// unbounded searches are refused so campaign drivers cannot accidentally
// run an open-ended enumeration against a live fleet. A zero field means
// "no cap on that axis".
type SearchBudget struct {
	MaxProbes int    // packets the attacker may send (0 = uncapped)
	MaxCycles uint64 // virtual core cycles the probes may consume (0 = uncapped)
}

func (b SearchBudget) validate() error {
	if b.MaxProbes <= 0 && b.MaxCycles == 0 {
		return fmt.Errorf("attack: unbounded search refused: set MaxProbes or MaxCycles")
	}
	if b.MaxProbes < 0 {
		return fmt.Errorf("attack: negative probe budget %d", b.MaxProbes)
	}
	return nil
}

// SearchStats records the effort a collision search actually spent, whether
// it hit a budget wall, and the wall-clock cost of the enumeration.
// WallSeconds is informational only (it is host-timing dependent) and must
// be excluded from any deterministic-replay comparison.
type SearchStats struct {
	Attempts    int     // probes actually sent
	Cycles      uint64  // virtual core cycles consumed by the probes
	WallSeconds float64 // host wall-clock spent in the search loop
	Exhausted   bool    // a budget cap stopped the search before success
}

// SearchPersist enumerates the persist-attack store variants against the
// costed oracle under an enforced budget, in the order given by variants
// (pass c.PersistVariants() for the canonical sweep, or a reordered copy
// for a seeded campaign). It returns the campaign outcome plus the effort
// statistics; err is non-nil only for oracle/craft failures or an invalid
// (unbounded) budget.
func (c SmashConfig) SearchPersist(oracle CostedOracle, budget SearchBudget, variants []isa.Word) (BruteForceResult, SearchStats, error) {
	var stats SearchStats
	if err := budget.validate(); err != nil {
		return BruteForceResult{}, stats, err
	}
	start := time.Now()
	defer func() { stats.WallSeconds = time.Since(start).Seconds() }()
	for _, v := range variants {
		if budget.MaxProbes > 0 && stats.Attempts >= budget.MaxProbes {
			stats.Exhausted = true
			break
		}
		if budget.MaxCycles > 0 && stats.Cycles >= budget.MaxCycles {
			stats.Exhausted = true
			break
		}
		pkt, err := c.CraftPacket([]isa.Word{v})
		if err != nil {
			return BruteForceResult{Probes: stats.Attempts}, stats, err
		}
		stats.Attempts++
		hit, cycles, err := oracle(pkt)
		stats.Cycles += cycles
		if err != nil {
			return BruteForceResult{Probes: stats.Attempts}, stats, err
		}
		if hit {
			return BruteForceResult{Probes: stats.Attempts, Succeeded: true}, stats, nil
		}
	}
	return BruteForceResult{Probes: stats.Attempts}, stats, nil
}

// BruteForcePersist enumerates the persist-attack store variants against
// the oracle until one lands, up to maxProbes. It is the uncosted wrapper
// around SearchPersist kept for the homogeneity experiment.
func (c SmashConfig) BruteForcePersist(oracle ProbeOracle, maxProbes int) (BruteForceResult, error) {
	costed := func(pkt []byte) (bool, uint64, error) {
		hit, err := oracle(pkt)
		return hit, 0, err
	}
	res, _, err := c.SearchPersist(costed, SearchBudget{MaxProbes: maxProbes}, c.PersistVariants())
	return res, err
}

// ExpectedProbes returns the analytic expected probe count for a
// k-instruction attack against a W-bit hash: each probe succeeds with
// probability 2^(-W·k), so the expectation is 2^(W·k).
func ExpectedProbes(width, k int) float64 {
	v := 1.0
	for i := 0; i < width*k; i++ {
		v *= 2
	}
	return v
}

// NPOracle is a ProbeOracle over a real monitored core holding a hidden
// parameter: each probe runs the packet on a fresh core and observes
// whether scratch memory was corrupted (the attacker-visible outcome).
type NPOracle struct {
	core   *apps.Core
	mon    *monitor.PackedMonitor
	tested int
}

// NewNPOracle builds the victim. The parameter stays inside; the attacker
// only calls Probe.
func NewNPOracle(prog *asm.Program, mk func(uint32) mhash.Hasher, param uint32) (*NPOracle, error) {
	h := mk(param)
	g, err := monitor.Extract(prog, h)
	if err != nil {
		return nil, err
	}
	p, err := monitor.Pack(g)
	if err != nil {
		return nil, err
	}
	m, err := monitor.NewPacked(p, h)
	if err != nil {
		return nil, err
	}
	core := apps.NewCore(prog)
	core.Trace = m.Observe
	return &NPOracle{core: core, mon: m}, nil
}

// Probe runs the packet and reports persistent compromise. The victim
// recovers (monitor reset, scratch scrubbed) between probes, modelling an
// operator who reimages after each detected incident — the attacker still
// wins as soon as one variant slips its store through.
func (o *NPOracle) Probe(pkt []byte) (bool, error) {
	hit, _, err := o.ProbeCosted(pkt)
	return hit, err
}

// ProbeCosted is Probe plus the virtual cycle cost of processing the probe
// packet, making NPOracle usable as a CostedOracle for budgeted searches.
func (o *NPOracle) ProbeCosted(pkt []byte) (bool, uint64, error) {
	o.mon.Reset()
	res := o.core.Process(pkt, 0)
	o.tested++
	hit, err := PersistSucceeded(coreScratch{o.core}, 0)
	if err != nil {
		return false, res.Cycles, err
	}
	if hit {
		return true, res.Cycles, nil
	}
	// Scrub scratch for the next probe.
	o.core.Mem().WriteBytes(uint32(apps.ScratchBase), make([]byte, 2048))
	return false, res.Cycles, nil
}

// Tested reports how many probes the oracle served.
func (o *NPOracle) Tested() int { return o.tested }

type coreScratch struct{ core *apps.Core }

func (c coreScratch) Scratch(coreID, off, n int) ([]byte, error) {
	return c.core.Scratch(off, n), nil
}
