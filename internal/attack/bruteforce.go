package attack

import (
	"sdmmon/internal/apps"
	"sdmmon/internal/asm"
	"sdmmon/internal/isa"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
)

// §3.2 argues that without the parameter "the only viable attack would be a
// brute force enumeration of different hash sequences" and that this is
// "difficult to implement for longer attacks". This file quantifies the
// easy end the paper does not dwell on: the attacker probes a live router
// (send attack variant, observe whether the persistent corruption landed —
// AC1 lets them observe behaviour) until one variant passes. For a
// one-instruction attack against a W-bit hash the expected probe count is
// only 2^W; the geometric hardness genuinely protects only multi-instruction
// sequences.

// ProbeOracle abstracts the victim: it reports whether one attack packet
// achieved persistent compromise (the attacker can test this via subsequent
// behaviour).
type ProbeOracle func(pkt []byte) (compromised bool, err error)

// BruteForceResult records one probing campaign.
type BruteForceResult struct {
	Probes    int  // packets sent until success (or budget exhaustion)
	Succeeded bool // a variant passed within the budget
}

// BruteForcePersist enumerates the persist-attack store variants against
// the oracle until one lands, up to maxProbes.
func (c SmashConfig) BruteForcePersist(oracle ProbeOracle, maxProbes int) (BruteForceResult, error) {
	probes := 0
	for _, v := range c.persistVariants() {
		if probes >= maxProbes {
			break
		}
		pkt, err := c.CraftPacket([]isa.Word{v})
		if err != nil {
			return BruteForceResult{Probes: probes}, err
		}
		probes++
		hit, err := oracle(pkt)
		if err != nil {
			return BruteForceResult{Probes: probes}, err
		}
		if hit {
			return BruteForceResult{Probes: probes, Succeeded: true}, nil
		}
	}
	return BruteForceResult{Probes: probes}, nil
}

// ExpectedProbes returns the analytic expected probe count for a
// k-instruction attack against a W-bit hash: each probe succeeds with
// probability 2^(-W·k), so the expectation is 2^(W·k).
func ExpectedProbes(width, k int) float64 {
	v := 1.0
	for i := 0; i < width*k; i++ {
		v *= 2
	}
	return v
}

// NPOracle is a ProbeOracle over a real monitored core holding a hidden
// parameter: each probe runs the packet on a fresh core and observes
// whether scratch memory was corrupted (the attacker-visible outcome).
type NPOracle struct {
	core   *apps.Core
	mon    *monitor.PackedMonitor
	tested int
}

// NewNPOracle builds the victim. The parameter stays inside; the attacker
// only calls Probe.
func NewNPOracle(prog *asm.Program, mk func(uint32) mhash.Hasher, param uint32) (*NPOracle, error) {
	h := mk(param)
	g, err := monitor.Extract(prog, h)
	if err != nil {
		return nil, err
	}
	p, err := monitor.Pack(g)
	if err != nil {
		return nil, err
	}
	m, err := monitor.NewPacked(p, h)
	if err != nil {
		return nil, err
	}
	core := apps.NewCore(prog)
	core.Trace = m.Observe
	return &NPOracle{core: core, mon: m}, nil
}

// Probe runs the packet and reports persistent compromise. The victim
// recovers (monitor reset, scratch scrubbed) between probes, modelling an
// operator who reimages after each detected incident — the attacker still
// wins as soon as one variant slips its store through.
func (o *NPOracle) Probe(pkt []byte) (bool, error) {
	o.mon.Reset()
	o.core.Process(pkt, 0)
	o.tested++
	hit, err := PersistSucceeded(coreScratch{o.core}, 0)
	if err != nil {
		return false, err
	}
	if hit {
		return true, nil
	}
	// Scrub scratch for the next probe.
	o.core.Mem().WriteBytes(uint32(apps.ScratchBase), make([]byte, 2048))
	return false, nil
}

// Tested reports how many probes the oracle served.
func (o *NPOracle) Tested() int { return o.tested }

type coreScratch struct{ core *apps.Core }

func (c coreScratch) Scratch(coreID, off, n int) ([]byte, error) {
	return c.core.Scratch(off, n), nil
}
