package attack

import (
	"math/rand"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/isa"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
	"sdmmon/internal/packet"
)

// Attack-side equivalence of the monitoring fast path: the flattened
// PackedMonitor with a word-keyed FastHasher must reach exactly the same
// alarm decisions as the map-based reference monitor with an uncached
// hasher — on the E8 stack smash and on packet-derived (self-modified)
// code, the case where a PC-keyed cache would be wrong.

func fastAndRefMonitors(t *testing.T, param uint32) (*monitor.PackedMonitor, *monitor.Monitor, *apps.Core, *apps.Core) {
	t.Helper()
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		t.Fatal(err)
	}
	ref := mhash.NewMerkle(param)
	g, err := monitor.Extract(prog, ref)
	if err != nil {
		t.Fatal(err)
	}
	p, err := monitor.Pack(g)
	if err != nil {
		t.Fatal(err)
	}
	fastMon, err := monitor.NewPacked(p, mhash.NewFastDefault(mhash.NewMerkle(param)))
	if err != nil {
		t.Fatal(err)
	}
	refMon, err := monitor.New(g, ref)
	if err != nil {
		t.Fatal(err)
	}
	fastCore, refCore := apps.NewCore(prog), apps.NewCore(prog)
	fastCore.Trace = fastMon.Observe
	refCore.Trace = refMon.Observe
	return fastMon, refMon, fastCore, refCore
}

// TestFastPathEquivalenceE8Attack: both implementations detect the
// stack-smash hijack, at the same instruction, every time.
func TestFastPathEquivalenceE8Attack(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	smash := DefaultSmash()
	code, err := smash.HijackPayload()
	if err != nil {
		t.Fatal(err)
	}
	atk, err := smash.CraftPacket(code)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		fastMon, refMon, fastCore, refCore := fastAndRefMonitors(t, rng.Uint32())
		// Warm the hash cache and monitors with benign traffic first, so
		// the attack hits a fully populated cache.
		gen := packet.NewGenerator(int64(trial))
		gen.OptionWords = 1
		for i := 0; i < 10; i++ {
			pkt := gen.Next()
			fastMon.Reset()
			refMon.Reset()
			fastCore.Process(pkt, 0)
			refCore.Process(pkt, 0)
		}
		fastMon.Reset()
		refMon.Reset()
		fr := fastCore.Process(atk, 0)
		rr := refCore.Process(atk, 0)
		if !fastMon.Alarmed() || !refMon.Alarmed() {
			t.Fatalf("trial %d: alarm fast=%v ref=%v", trial, fastMon.Alarmed(), refMon.Alarmed())
		}
		if fr.Exc == nil || rr.Exc == nil {
			t.Fatalf("trial %d: attack not stopped (fast exc=%v ref exc=%v)", trial, fr.Exc, rr.Exc)
		}
		if fastMon.AlarmPC() != refMon.AlarmPC() {
			t.Fatalf("trial %d: alarm pc fast=%#x ref=%#x", trial, fastMon.AlarmPC(), refMon.AlarmPC())
		}
		fc, _, _ := fastMon.Counters()
		rc, _, _ := refMon.Counters()
		if fc != rc {
			t.Fatalf("trial %d: checked fast=%d ref=%d", trial, fc, rc)
		}
	}
}

// TestFastPathPacketDerivedCode executes two *different* attacker payloads
// that land at the *same* packet-memory addresses, back to back on one
// core. A PC-keyed hash cache would replay the first payload's hashes for
// the second run and could diverge from the reference; the word-keyed
// cache hashes what actually retired, so the fast path stays bit-identical
// on every run.
func TestFastPathPacketDerivedCode(t *testing.T) {
	smash := DefaultSmash()
	hijack, err := smash.HijackPayload()
	if err != nil {
		t.Fatal(err)
	}
	// A second, distinct payload at the same address: ALU words then a
	// register jump. Content differs word-for-word from the hijack payload.
	alt := []isa.Word{
		isa.Word(0x24020001), // li $v0, 1
		isa.Word(0x24420041), // addiu $v0, $v0, 0x41
		isa.Word(0x00421021), // addu $v0, $v0, $v0
		isa.Word(0x03E00008), // jr $ra
		isa.Word(0x00000000), // nop
	}
	pktA, err := smash.CraftPacket(hijack)
	if err != nil {
		t.Fatal(err)
	}
	pktB, err := smash.CraftPacket(alt)
	if err != nil {
		t.Fatal(err)
	}

	param := uint32(0x2468ACE0)
	fastMon, refMon, fastCore, refCore := fastAndRefMonitors(t, param)

	for round, pkt := range [][]byte{pktA, pktB, pktA} {
		fastMon.Reset()
		refMon.Reset()
		fastCore.Process(pkt, 0)
		refCore.Process(pkt, 0)
		if fastMon.Alarmed() != refMon.Alarmed() {
			t.Fatalf("round %d: alarm fast=%v ref=%v", round, fastMon.Alarmed(), refMon.Alarmed())
		}
		if fastMon.AlarmPC() != refMon.AlarmPC() {
			t.Fatalf("round %d: alarm pc fast=%#x ref=%#x", round, fastMon.AlarmPC(), refMon.AlarmPC())
		}
		fc, _, _ := fastMon.Counters()
		rc, _, _ := refMon.Counters()
		if fc != rc {
			t.Fatalf("round %d: checked fast=%d ref=%d", round, fc, rc)
		}
	}

	// The cache serves correct per-word hashes for both payloads even
	// though they occupied the same addresses.
	fh := mhash.NewFastDefault(mhash.NewMerkle(param))
	ref := mhash.NewMerkle(param)
	for _, w := range append(append([]isa.Word{}, hijack...), alt...) {
		if fh.Hash(uint32(w)) != ref.Hash(uint32(w)) {
			t.Fatalf("word %#x: cached hash diverges from reference", uint32(w))
		}
	}
}
