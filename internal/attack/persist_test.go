package attack

import (
	"math/rand"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
)

// scratchAdapter lets PersistSucceeded read an apps.Core.
type scratchAdapter struct{ core *apps.Core }

func (s scratchAdapter) Scratch(coreID, off, n int) ([]byte, error) {
	return s.core.Scratch(off, n), nil
}

func TestPersistAttackCorruptsThroughDetection(t *testing.T) {
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		t.Fatal(err)
	}
	smash := DefaultSmash()
	rng := rand.New(rand.NewSource(77))

	engineered := 0
	corrupted := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		param := rng.Uint32()
		h := mhash.NewMerkle(param)
		pkt, ok, err := smash.PersistAttack(prog, h)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		engineered++
		g, err := monitor.Extract(prog, h)
		if err != nil {
			t.Fatal(err)
		}
		m, err := monitor.New(g, h)
		if err != nil {
			t.Fatal(err)
		}
		core := apps.NewCore(prog)
		core.Trace = m.Observe
		res := core.Process(pkt, 0)
		// The engineered instruction executes (hash matches), the next
		// one alarms: detection happens but too late for the scratch.
		if res.Exc == nil {
			t.Error("persist attack ran to completion without alarm")
		}
		hit, err := PersistSucceeded(scratchAdapter{core}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			corrupted++
		}
	}
	if engineered == 0 {
		t.Fatal("attacker never found a matching store variant")
	}
	if corrupted != engineered {
		t.Errorf("corrupted %d of %d engineered attacks — the matched store should always land",
			corrupted, engineered)
	}
}

func TestPersistAttackFailsWithoutMatch(t *testing.T) {
	// When the monitor alarms on the very first attacker instruction, the
	// store never retires and scratch stays clean: run the persist packet
	// engineered for parameter A against a router keyed with parameter B
	// under the S-box compression (where matches are parameter-dependent).
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		t.Fatal(err)
	}
	smash := DefaultSmash()
	rng := rand.New(rand.NewSource(78))
	mk := func(p uint32) mhash.Hasher {
		h, err := mhash.NewMerkleWith(p, 4, mhash.SBoxCompress())
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	clean := 0
	total := 0
	for total < 10 {
		hA := mk(rng.Uint32())
		pkt, ok, err := smash.PersistAttack(prog, hA)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		hB := mk(rng.Uint32())
		g, err := monitor.Extract(prog, hB)
		if err != nil {
			t.Fatal(err)
		}
		m, err := monitor.New(g, hB)
		if err != nil {
			t.Fatal(err)
		}
		core := apps.NewCore(prog)
		core.Trace = m.Observe
		core.Process(pkt, 0)
		hit, err := PersistSucceeded(scratchAdapter{core}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !hit {
			clean++
		}
		total++
	}
	// Expected transfer ≈ 1/16: most cross-parameter replays stay clean.
	if clean < 7 {
		t.Errorf("only %d/10 cross-parameter replays contained", clean)
	}
}

func TestTransferProbabilityValues(t *testing.T) {
	sum := TransferProbability(func(p uint32) mhash.Hasher { return mhash.NewMerkle(p) }, 2000, 1)
	if sum != 1.0 {
		t.Errorf("sum transfer = %.3f, want 1.0 (collapse finding)", sum)
	}
	box := TransferProbability(func(p uint32) mhash.Hasher {
		h, _ := mhash.NewMerkleWith(p, 4, mhash.SBoxCompress())
		return h
	}, 2000, 2)
	if box < 0.03 || box > 0.11 {
		t.Errorf("s-box transfer = %.3f, want ≈0.0625", box)
	}
	bc := TransferProbability(func(p uint32) mhash.Hasher { return mhash.NewBitcount() }, 500, 3)
	if bc != 1.0 {
		t.Errorf("bitcount transfer = %.3f, want 1.0 (no parameter)", bc)
	}
}
