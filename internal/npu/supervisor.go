package npu

import (
	"errors"
	"fmt"
)

// The per-core supervisor turns the paper's single-packet recovery (§2.1)
// into graceful fleet-grade degradation: a core whose alarm/fault rate in a
// sliding window exceeds a threshold is *quarantined* — removed from
// dispatch while the remaining cores keep forwarding — and re-introduced
// through a probation period after a clean re-installation. Transient
// faults (one flipped packet) never quarantine; persistent faults
// (corrupted instruction memory, a broken hash unit) do, because recovery
// resets registers, not memory, so they alarm on every packet.

// Typed dispatch errors.
var (
	// ErrNoAppInstalled: no core has an application installed.
	ErrNoAppInstalled = errors.New("npu: no core has an application installed")
	// ErrCoreQuarantined: the addressed core is quarantined and takes no
	// traffic until it is re-installed and passes probation.
	ErrCoreQuarantined = errors.New("npu: core quarantined")
	// ErrNoCoreAvailable: every loaded core is quarantined.
	ErrNoCoreAvailable = errors.New("npu: no core available (all quarantined)")
)

// SupervisorConfig parameterizes the per-core health tracker. The zero
// value disables the supervisor (no per-packet overhead beyond a nil-check,
// and no quarantine transitions — manual Quarantine still works).
type SupervisorConfig struct {
	// Window is the sliding window length in packets. 0 disables the
	// supervisor.
	Window int
	// Threshold is the number of alarm/fault events within Window that
	// quarantines the core. Values < 1 are clamped to 1.
	Threshold int
	// ProbationPackets is the number of consecutive clean packets a
	// re-installed core must process before it returns to full health; a
	// single event during probation re-quarantines immediately. Values < 1
	// are clamped to 1.
	ProbationPackets int
}

// DefaultSupervisorConfig quarantines a core that alarms or faults on 8 of
// its last 64 packets, and requires 32 clean packets after re-install.
func DefaultSupervisorConfig() SupervisorConfig {
	return SupervisorConfig{Window: 64, Threshold: 8, ProbationPackets: 32}
}

// CoreHealth is a core's supervisor state.
type CoreHealth int

const (
	// CoreHealthy: the core is in dispatch with no restrictions.
	CoreHealthy CoreHealth = iota
	// CoreProbation: the core is back in dispatch after a re-install but
	// one event re-quarantines it immediately.
	CoreProbation
	// CoreQuarantined: the core is out of dispatch.
	CoreQuarantined
)

func (h CoreHealth) String() string {
	switch h {
	case CoreHealthy:
		return "healthy"
	case CoreProbation:
		return "probation"
	case CoreQuarantined:
		return "quarantined"
	}
	return fmt.Sprintf("health(%d)", int(h))
}

// supState is the allocation-free per-core health tracker. The window is a
// preallocated ring of event flags; the steady-state record() path touches
// only fixed-size fields, preserving the zero-alloc packet path.
type supState struct {
	enabled        bool
	window         []uint8 // ring: 1 = alarm/fault on that packet
	sum            int     // events currently inside the window
	pos            int     // ring cursor
	threshold      int
	probation      int // remaining clean probation packets; 0 = none
	probationTotal int
	quarantined    bool
}

func newSupState(cfg SupervisorConfig) supState {
	if cfg.Window <= 0 {
		return supState{}
	}
	if cfg.Threshold < 1 {
		cfg.Threshold = 1
	}
	if cfg.ProbationPackets < 1 {
		cfg.ProbationPackets = 1
	}
	return supState{
		enabled:        true,
		window:         make([]uint8, cfg.Window),
		threshold:      cfg.Threshold,
		probationTotal: cfg.ProbationPackets,
	}
}

// record folds one packet outcome into the window and reports whether this
// packet's event quarantined the core.
func (s *supState) record(event bool) bool {
	if !s.enabled || s.quarantined {
		return false
	}
	if s.probation > 0 {
		if event {
			s.quarantined = true
			return true
		}
		s.probation--
		return false
	}
	old := s.window[s.pos]
	s.sum -= int(old)
	var v uint8
	if event {
		v = 1
	}
	s.window[s.pos] = v
	s.sum += int(v)
	s.pos++
	if s.pos == len(s.window) {
		s.pos = 0
	}
	if s.sum >= s.threshold {
		s.quarantined = true
		return true
	}
	return false
}

// onInstall handles a (re-)installation: a quarantined core re-enters
// dispatch on probation with a cleared window — the probe-reintroduction
// step of the quarantine policy.
func (s *supState) onInstall() {
	if !s.quarantined {
		return
	}
	s.quarantined = false
	if s.enabled {
		s.probation = s.probationTotal
		for i := range s.window {
			s.window[i] = 0
		}
		s.sum = 0
		s.pos = 0
	}
}

// available reports whether the slot can take traffic.
func (s *coreSlot) available() bool { return s.loaded && !s.sup.quarantined }

// CoreHealth reports a core's supervisor state.
func (np *NP) CoreHealth(coreID int) (CoreHealth, error) {
	if coreID < 0 || coreID >= len(np.slots) {
		return CoreHealthy, fmt.Errorf("npu: core %d out of range", coreID)
	}
	s := &np.slots[coreID].sup
	switch {
	case s.quarantined:
		return CoreQuarantined, nil
	case s.probation > 0:
		return CoreProbation, nil
	}
	return CoreHealthy, nil
}

// AvailableCores counts loaded, non-quarantined cores.
func (np *NP) AvailableCores() int {
	n := 0
	for _, s := range np.slots {
		if s.available() {
			n++
		}
	}
	return n
}

// Quarantine removes a core from dispatch manually (operator action, the
// degraded-throughput bench, or a mid-run failover drill). It works with or
// without the supervisor; the core returns via re-installation like any
// quarantined core. The slot lock orders the write against an in-flight
// packet, so quarantining a core that is actively processing is safe.
func (np *NP) Quarantine(coreID int) error {
	if coreID < 0 || coreID >= len(np.slots) {
		return fmt.Errorf("npu: core %d out of range", coreID)
	}
	s := np.slots[coreID]
	s.mu.Lock()
	s.sup.quarantined = true
	s.mu.Unlock()
	return nil
}
