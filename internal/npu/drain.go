package npu

// This file is the NP's face toward a multi-NP traffic plane
// (internal/shard): a batch-drain entry point that reports per-batch
// outcomes instead of per-packet results, and a race-safe health probe the
// dispatcher can consult without owning the packet path.

// BatchOutcome summarizes one drained batch. Unlike ProcessBatch's result
// slice it exposes no per-packet data, so a queue drainer can account a
// batch without walking (or retaining) individual results.
type BatchOutcome struct {
	Processed uint64 // packets that ran on a core
	Forwarded uint64
	Dropped   uint64 // verdict + alarm + fault drops
	Alarms    uint64
	Faults    uint64
	// ECNMarked counts forwarded packets leaving with the CE mark set
	// (whether the application marked them under queue pressure or they
	// arrived pre-marked by upstream admission control).
	ECNMarked uint64
	Cycles    uint64
	// Unprocessed counts packets of this batch that never reached a core:
	// rejected before execution (oversize) or left unclaimed because every
	// core quarantined mid-batch. Processed + Unprocessed == len(batch).
	Unprocessed int
}

// DrainBatch runs one batch through the batch engine and summarizes its
// fate. It is the hook a shard worker drains its ingress queue with:
// qdepth is the backlog the congestion-management applications see, and
// the returned error keeps ProcessBatch's semantics (first per-packet
// error, or ErrNoCoreAvailable when the batch could not finish on a fully
// quarantined NP). The outcome is built from this batch's own merged stat
// delta — not a Stats() before/after window — so concurrent traffic on
// the same NP (a rollout's health sample batching against a live line
// card) cannot leak into the shard's accounting. The ECNMarked tally comes
// from inside the batch engine, while it still holds batchMu: the result
// Packet slices alias the NP's reused arena, so scanning them here would
// race a concurrent batch overwriting it.
func (np *NP) DrainBatch(pkts [][]byte, qdepth int) (BatchOutcome, error) {
	return np.DrainBatchRelease(pkts, qdepth, nil)
}

// DrainBatchRelease is DrainBatch with a buffer-return hook. The batch
// engine copies every input into core packet memory before executing it
// and copies every output into the NP's own arena before returning, so
// once processBatch comes back no reference to the pkts slices survives
// anywhere in the NP. release (if non-nil) is invoked exactly once at
// that point — after the engine's last read of the inputs, before the
// outcome is accounted — which is the earliest instant a zero-copy
// ingress (internal/shard) can recycle the buffers backing pkts without
// waiting for its own accounting to finish. Callers must not touch the
// buffers from the callback onward on this goroutine's behalf.
func (np *NP) DrainBatchRelease(pkts [][]byte, qdepth int, release func()) (BatchOutcome, error) {
	return np.drainBatch(pkts, qdepth, -1, release)
}

// DrainBatchDomain is DrainBatch restricted to the cores of one protection
// domain (domain.go): the batch runs only on slots the named domain owns,
// and a fully-quarantined domain reports ErrNoCoreAvailable even while
// other domains' cores stay healthy — which is what lets the shard plane
// fail over one tenant's lane without disturbing the card's other tenants.
func (np *NP) DrainBatchDomain(domain string, pkts [][]byte, qdepth int) (BatchOutcome, error) {
	return np.DrainBatchDomainRelease(domain, pkts, qdepth, nil)
}

// DrainBatchDomainRelease is DrainBatchDomain with DrainBatchRelease's
// buffer-return hook.
func (np *NP) DrainBatchDomainRelease(domain string, pkts [][]byte, qdepth int, release func()) (BatchOutcome, error) {
	idx, err := np.domainIdx(domain)
	if err != nil {
		if release != nil {
			release()
		}
		return BatchOutcome{Unprocessed: len(pkts)}, err
	}
	if len(np.Domains()) == 1 {
		idx = -1 // no partition installed: the root domain is the whole NP
	}
	return np.drainBatch(pkts, qdepth, idx, release)
}

func (np *NP) drainBatch(pkts [][]byte, qdepth int, domIdx int, release func()) (BatchOutcome, error) {
	_, d, ecnMarked, err := np.processBatch(pkts, qdepth, domIdx)
	if release != nil {
		release()
	}

	var o BatchOutcome
	o.Processed = d.Processed
	o.Forwarded = d.Forwarded
	o.Dropped = d.Dropped
	o.Alarms = d.Alarms
	o.Faults = d.Faults
	o.Cycles = d.Cycles
	o.ECNMarked = ecnMarked
	o.Unprocessed = len(pkts) - int(o.Processed)
	return o, err
}

// Healthy reports whether at least one core can take traffic. Unlike
// AvailableCores it takes each slot's lock, so it is safe to call while the
// NP is processing (the per-NP health probe of the shard plane's failover
// logic).
func (np *NP) Healthy() bool {
	for _, s := range np.slots {
		s.mu.Lock()
		ok := s.available()
		s.mu.Unlock()
		if ok {
			return true
		}
	}
	return false
}
