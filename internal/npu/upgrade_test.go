package npu

import (
	"errors"
	"sync"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/attack"
	"sdmmon/internal/mhash"
	"sdmmon/internal/packet"
)

// stagedNP builds a supervised NP with v1 (udpecho) live on every core and
// returns it together with a staged-ready v2 bundle (counter).
func stagedNP(t *testing.T, cores int) (np *NP, bin2, g2 []byte) {
	t.Helper()
	np, err := New(Config{Cores: cores, MonitorsEnabled: true, Supervisor: DefaultSupervisorConfig()})
	if err != nil {
		t.Fatal(err)
	}
	bin1, g1 := makeBundle(t, apps.UDPEcho(), 0x1111)
	if err := np.InstallAll("v1", bin1, g1, 0x1111); err != nil {
		t.Fatal(err)
	}
	bin2, g2 = makeBundle(t, apps.Counter(), 0x2222)
	return np, bin2, g2
}

// The full lifecycle on one core: stage leaves the old version live, commit
// cuts over and retains it, rollback swaps back, rolling back again
// roll-forwards.
func TestStageCommitRollbackLifecycle(t *testing.T) {
	np, bin2, g2 := stagedNP(t, 2)
	gen := packet.NewGenerator(7)

	if err := np.StageInstall(0, "v2", bin2, g2, 0x2222); err != nil {
		t.Fatal(err)
	}
	if app, _ := np.AppOn(0); app != "v1" {
		t.Fatalf("staging replaced the live app: %q", app)
	}
	if app, ok := np.StagedApp(0); !ok || app != "v2" {
		t.Fatalf("StagedApp=%q,%v want v2", app, ok)
	}
	// The old version serves while v2 sits staged.
	if res, err := np.ProcessOn(0, gen.Next(), 0); err != nil || res.Faulted || res.Detected {
		t.Fatalf("live app broken while staged: res=%+v err=%v", res, err)
	}

	cycles, err := np.Commit(0)
	if err != nil || cycles != commitCycles {
		t.Fatalf("Commit: cycles=%d err=%v", cycles, err)
	}
	if app, _ := np.AppOn(0); app != "v2" {
		t.Fatalf("after commit live=%q want v2", app)
	}
	if _, ok := np.StagedApp(0); ok {
		t.Fatal("staged slot not cleared by commit")
	}
	if app, ok := np.RetainedApp(0); !ok || app != "v1" {
		t.Fatalf("RetainedApp=%q,%v want v1", app, ok)
	}
	if res, err := np.ProcessOn(0, gen.Next(), 0); err != nil || res.Faulted || res.Detected {
		t.Fatalf("v2 broken after commit: res=%+v err=%v", res, err)
	}

	if _, err := np.Rollback(0); err != nil {
		t.Fatal(err)
	}
	if app, _ := np.AppOn(0); app != "v1" {
		t.Fatalf("after rollback live=%q want v1", app)
	}
	// Rollback swapped, so v2 is now the retained version: rolling back
	// again is a roll-forward.
	if app, _ := np.RetainedApp(0); app != "v2" {
		t.Fatalf("retained after rollback=%q want v2", app)
	}
	if _, err := np.Rollback(0); err != nil {
		t.Fatal(err)
	}
	if app, _ := np.AppOn(0); app != "v2" {
		t.Fatalf("after roll-forward live=%q want v2", app)
	}
	if s := np.Stats(); !s.Conserved() {
		t.Fatalf("accounting not conserved: %+v", s)
	}
}

func TestUpgradeErrorPaths(t *testing.T) {
	np, bin2, g2 := stagedNP(t, 2)

	if _, err := np.Commit(0); !errors.Is(err, ErrNothingStaged) {
		t.Fatalf("Commit with nothing staged: %v", err)
	}
	if _, err := np.Rollback(0); !errors.Is(err, ErrNothingRetained) {
		t.Fatalf("Rollback with nothing retained: %v", err)
	}

	// CommitAll is all-or-nothing: one core staged, the other not — nothing
	// commits.
	if err := np.StageInstall(0, "v2", bin2, g2, 0x2222); err != nil {
		t.Fatal(err)
	}
	if _, err := np.CommitAll(); !errors.Is(err, ErrNothingStaged) {
		t.Fatalf("partial CommitAll: %v", err)
	}
	if app, _ := np.AppOn(0); app != "v1" {
		t.Fatalf("partial CommitAll mutated core 0: live=%q", app)
	}

	// Abort drops the staged bundle without touching the live slot.
	if err := np.AbortStaged(0); err != nil {
		t.Fatal(err)
	}
	if np.HasStaged(0) {
		t.Fatal("AbortStaged left a staged bundle")
	}
	if app, _ := np.AppOn(0); app != "v1" {
		t.Fatalf("AbortStaged mutated the live slot: %q", app)
	}

	// RollbackAll is all-or-nothing too: commit only core 0, core 1 has no
	// retained version.
	if err := np.StageInstall(0, "v2", bin2, g2, 0x2222); err != nil {
		t.Fatal(err)
	}
	if _, err := np.Commit(0); err != nil {
		t.Fatal(err)
	}
	if _, err := np.RollbackAll(); !errors.Is(err, ErrNothingRetained) {
		t.Fatalf("partial RollbackAll: %v", err)
	}
	if app, _ := np.AppOn(0); app != "v2" {
		t.Fatalf("partial RollbackAll mutated core 0: live=%q", app)
	}
}

// countingHasher corrupts the hash stream once a configured factory call is
// reached — a stateful hash-unit factory, the way InstallAll can partially
// fail on an otherwise valid bundle.
type corruptHasher struct{ inner mhash.Hasher }

func (c corruptHasher) Hash(instr uint32) uint8 { return c.inner.Hash(instr) + 1 }
func (c corruptHasher) Width() int              { return c.inner.Width() }

// Satellite regression (the pre-upgrade InstallAll bug): a bundle whose
// preparation fails for a *later* core must leave every core on the old
// version — not cores 0..N-1 upgraded and the rest stale.
func TestInstallAllTransactionalOnPartialFailure(t *testing.T) {
	calls, failFrom := 0, 1<<30
	np, err := New(Config{
		Cores:           4,
		MonitorsEnabled: true,
		NewHasher: func(p uint32) mhash.Hasher {
			calls++
			if calls >= failFrom {
				return corruptHasher{inner: mhash.NewMerkle(p)}
			}
			return mhash.NewMerkle(p)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	bin1, g1 := makeBundle(t, apps.UDPEcho(), 0x1111)
	if err := np.InstallAll("v1", bin1, g1, 0x1111); err != nil {
		t.Fatal(err)
	}

	// Second install: the factory goes bad on the third core's preparation.
	bin2, g2 := makeBundle(t, apps.Counter(), 0x2222)
	failFrom = calls + 3
	if err := np.InstallAll("v2", bin2, g2, 0x2222); err == nil {
		t.Fatal("InstallAll succeeded with a corrupting hash factory")
	}
	for i := 0; i < np.Cores(); i++ {
		if app, ok := np.AppOn(i); !ok || app != "v1" {
			t.Fatalf("core %d on %q after failed InstallAll, want v1 everywhere", i, app)
		}
	}
	// And the same atomicity for the staged path: no core may hold a
	// partially staged bundle.
	failFrom = calls + 3
	if err := np.StageInstallAll("v2", bin2, g2, 0x2222); err == nil {
		t.Fatal("StageInstallAll succeeded with a corrupting hash factory")
	}
	for i := 0; i < np.Cores(); i++ {
		if np.HasStaged(i) {
			t.Fatalf("core %d holds a staged bundle after failed StageInstallAll", i)
		}
	}
	// The fleet still serves traffic on v1.
	if _, err := np.Process(packet.NewGenerator(3).Next(), 0); err != nil {
		t.Fatal(err)
	}
}

// Edge case: staging onto a quarantined core works (that is how it heals),
// but the quarantine is not lifted until the commit — the staged bundle must
// not resurrect a sick core early.
func TestStageOnQuarantinedCoreLiftsOnlyAtCommit(t *testing.T) {
	np, bin2, g2 := stagedNP(t, 2)
	if err := np.Quarantine(1); err != nil {
		t.Fatal(err)
	}

	if err := np.StageInstall(1, "v2", bin2, g2, 0x2222); err != nil {
		t.Fatalf("staging onto quarantined core: %v", err)
	}
	if h, _ := np.CoreHealth(1); h != CoreQuarantined {
		t.Fatalf("staging lifted the quarantine early: health=%v", h)
	}
	if _, err := np.ProcessOn(1, packet.NewGenerator(9).Next(), 0); !errors.Is(err, ErrCoreQuarantined) {
		t.Fatalf("quarantined core took traffic while staged: %v", err)
	}

	if _, err := np.Commit(1); err != nil {
		t.Fatal(err)
	}
	if h, _ := np.CoreHealth(1); h != CoreProbation {
		t.Fatalf("committed core health=%v, want probation", h)
	}
	if res, err := np.ProcessOn(1, packet.NewGenerator(9).Next(), 0); err != nil || res.Faulted {
		t.Fatalf("committed core rejected traffic: res=%+v err=%v", res, err)
	}
}

// Edge case: CommitAll racing ProcessBatch (run under -race). The per-core
// lock drains the in-flight packet, so no packet executes against a mixed
// image: with monitors on, a torn binary/monitor pair would alarm, and the
// accounting must stay exactly conserved.
func TestCommitDuringProcessBatch(t *testing.T) {
	np, bin2, g2 := stagedNP(t, 4)
	gen := packet.NewGenerator(17)
	const batches, batchSize = 40, 64
	all := make([][][]byte, batches)
	for b := range all {
		all[b] = make([][]byte, batchSize)
		for i := range all[b] {
			all[b][i] = gen.Next()
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	errc := make(chan error, batches)
	go func() {
		defer wg.Done()
		for b := range all {
			if _, err := np.ProcessBatch(all[b], 0); err != nil {
				errc <- err
				return
			}
		}
	}()

	// Upgrade mid-traffic, then roll back mid-traffic, then forward again.
	if err := np.StageInstallAll("v2", bin2, g2, 0x2222); err != nil {
		t.Fatal(err)
	}
	if _, err := np.CommitAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := np.RollbackAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := np.RollbackAll(); err != nil { // roll-forward to v2
		t.Fatal(err)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	s := np.Stats()
	if !s.Conserved() {
		t.Fatalf("accounting not conserved across live upgrade: %+v", s)
	}
	if s.Alarms != 0 || s.Faults != 0 {
		t.Fatalf("upgrade under traffic caused %d alarms / %d faults — a packet saw a mixed image", s.Alarms, s.Faults)
	}
	if s.Processed != batches*batchSize {
		t.Fatalf("Processed=%d want %d (packets lost during cutover)", s.Processed, batches*batchSize)
	}
	for i := 0; i < np.Cores(); i++ {
		if app, _ := np.AppOn(i); app != "v2" {
			t.Fatalf("core %d on %q after roll-forward, want v2", i, app)
		}
	}
}

// Edge case: rollback targeting a retained slot that was the *source* of
// alarms. The vulnerable v1 raised alarms (even quarantined the core), was
// upgraded away, and is rolled back to: the rollback must reset supervisor
// state (probation), and the restored core must process benign traffic —
// the alarm was the packet's fault, not the image's.
func TestRollbackAfterRetainedSlotAlarmed(t *testing.T) {
	np, err := New(Config{Cores: 1, MonitorsEnabled: true,
		Supervisor: SupervisorConfig{Window: 8, Threshold: 2, ProbationPackets: 2}})
	if err != nil {
		t.Fatal(err)
	}
	bin1, g1 := makeBundle(t, apps.IPv4CM(), 0x1111)
	if err := np.InstallAll("v1", bin1, g1, 0x1111); err != nil {
		t.Fatal(err)
	}

	// Drive the vulnerable v1 into quarantine with attack packets.
	smash := attack.DefaultSmash()
	code, err := smash.HijackPayload()
	if err != nil {
		t.Fatal(err)
	}
	atk, err := smash.CraftPacket(code)
	if err != nil {
		t.Fatal(err)
	}
	alarms := 0
	for i := 0; i < 4; i++ {
		res, err := np.ProcessOn(0, atk, 0)
		if errors.Is(err, ErrCoreQuarantined) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected {
			alarms++
		}
	}
	if alarms == 0 {
		t.Fatal("attack traffic never alarmed — fixture broken")
	}
	if h, _ := np.CoreHealth(0); h != CoreQuarantined {
		t.Fatalf("core not quarantined after repeated alarms: %v", h)
	}

	// Upgrade to the patched version, then roll back to the alarm source.
	bin2, g2 := makeBundle(t, apps.IPv4Safe(), 0x2222)
	if err := np.StageInstallAll("v2", bin2, g2, 0x2222); err != nil {
		t.Fatal(err)
	}
	if _, err := np.CommitAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := np.RollbackAll(); err != nil {
		t.Fatal(err)
	}
	if app, _ := np.AppOn(0); app != "v1" {
		t.Fatalf("live=%q after rollback, want v1", app)
	}
	if h, _ := np.CoreHealth(0); h != CoreProbation {
		t.Fatalf("rolled-back core health=%v, want probation", h)
	}
	// Benign traffic runs clean on the restored (recovered) image.
	gen := packet.NewGenerator(23)
	for i := 0; i < 8; i++ {
		if res, err := np.ProcessOn(0, gen.Next(), 0); err != nil || res.Detected || res.Faulted {
			t.Fatalf("benign packet %d on rolled-back core: res=%+v err=%v", i, res, err)
		}
	}
	// And the monitor is still live: the attack is re-detected.
	res, err := np.ProcessOn(0, atk, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatal("rolled-back monitor missed the attack")
	}
	if s := np.Stats(); !s.Conserved() {
		t.Fatalf("accounting not conserved: %+v", s)
	}
}

// The acceptance bar: the per-core drain lock must not cost the steady-state
// packet path its zero-allocation property — including after a live upgrade.
func TestZeroAllocsAfterUpgrade(t *testing.T) {
	np, bin2, g2 := stagedNP(t, 1)
	if err := np.StageInstallAll("v2", bin2, g2, 0x2222); err != nil {
		t.Fatal(err)
	}
	if _, err := np.CommitAll(); err != nil {
		t.Fatal(err)
	}
	gen := packet.NewGenerator(31)
	pkts := make([][]byte, 32)
	for i := range pkts {
		pkts[i] = gen.Next()
	}
	for _, p := range pkts { // warm up hash cache + output buffer
		if _, err := np.ProcessOn(0, p, 0); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := np.ProcessOn(0, pkts[i%len(pkts)], 0); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("post-upgrade steady state allocates %.2f objects/packet, want 0", allocs)
	}
}
