package npu

import (
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/fault"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
	"sdmmon/internal/packet"
)

// The invariant suite: whatever fault is injected, the NP must (1) detect
// it or reject it at install time, (2) recover within the documented cycle
// bound (the watchdog budget plus the reset sequence), (3) conserve packet
// accounting exactly, and (4) never leave a monitor silently dead.

// assertMonitorLive fails if a core's monitor stopped checking
// instructions while traffic flowed — the "silently dead monitor" case.
func assertMonitorLive(t *testing.T, np *NP, coreID int, checkedBefore uint64) uint64 {
	t.Helper()
	checked, _, _, err := np.MonitorStats(coreID)
	if err != nil {
		t.Fatal(err)
	}
	if checked <= checkedBefore {
		t.Fatalf("core %d monitor silently dead: checked stuck at %d", coreID, checked)
	}
	return checked
}

// Instruction-memory bit flips: every undetected flip must still leave the
// NP conserving packets, and a detected flip must recover within the cycle
// bound — the next packet on that core processes normally (after the flip
// is healed by re-install).
func TestFaultInjectionBitFlipSweep(t *testing.T) {
	np, err := New(Config{Cores: 1, MonitorsEnabled: true, Supervisor: testSupervisor()})
	if err != nil {
		t.Fatal(err)
	}
	bin, g := makeBundle(t, apps.IPv4CM(), 0xF1F)
	inj := fault.New(1234)
	gen := packet.NewGenerator(55)

	detected, faulted, silent := 0, 0, 0
	const trials = 48
	for i := 0; i < trials; i++ {
		if err := np.InstallAll("ipv4cm", bin, g, 0xF1F); err != nil {
			t.Fatal(err)
		}
		c, err := np.Core(0)
		if err != nil {
			t.Fatal(err)
		}
		inj.FlipCodeBit(c)
		res, err := np.ProcessOn(0, gen.Next(), 0)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case res.Detected:
			detected++
		case res.Faulted:
			faulted++
		default:
			// The flipped word was never executed on this path, or the
			// 4-bit hash collided (expected ~1/16 of executed flips).
			silent++
		}
		// Recovery bound: the faulted packet itself can burn at most the
		// watchdog budget; nothing may exceed it.
		if res.Cycles > c.MaxCyclesPerPacket+64 {
			t.Fatalf("trial %d: %d cycles exceeds the recovery bound", i, res.Cycles)
		}
		// Recovery invariant: after re-install (healing the flip), a
		// benign packet forwards immediately.
		if err := np.InstallAll("ipv4cm", bin, g, 0xF1F); err != nil {
			t.Fatal(err)
		}
		probe, err := np.ProcessOn(0, gen.Next(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if probe.Detected || probe.Faulted {
			t.Fatalf("trial %d: core did not recover after re-install", i)
		}
	}
	s := np.Stats()
	if !s.Conserved() {
		t.Fatalf("accounting not conserved: %+v", s)
	}
	if int(s.Alarms) != detected {
		t.Fatalf("Alarms=%d but %d detections observed", s.Alarms, detected)
	}
	if detected == 0 {
		t.Fatal("bit-flip sweep never triggered the monitor — injector is broken")
	}
	t.Logf("bit flips: %d detected, %d arch-faulted, %d silent of %d", detected, faulted, silent, trials)
}

// A flaky hash unit (the monitor's own circuit faulting) must raise
// alarms, not silently stop checking, and the supervisor must quarantine
// the core — the monitor-liveness invariant.
func TestFaultInjectionFlakyHashUnit(t *testing.T) {
	inj := fault.New(77)
	var flaky []*fault.FlakyHasher
	cfg := Config{
		Cores:           1,
		MonitorsEnabled: true,
		Supervisor:      testSupervisor(),
		NewHasher: func(p uint32) mhash.Hasher {
			h := inj.FlakyHasher(mhash.NewMerkle(p), 0)
			flaky = append(flaky, h)
			return h
		},
	}
	np, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		t.Fatal(err)
	}
	g, err := monitor.Extract(prog, mhash.NewMerkle(0xFA17))
	if err != nil {
		t.Fatal(err)
	}
	if err := np.InstallAll("ipv4cm", prog.Serialize(), g.Serialize(), 0xFA17); err != nil {
		t.Fatal(err)
	}
	// Healthy baseline, then arm the hash-unit fault. The fast path caches
	// instruction hashes per installation, so re-install first: a cold
	// cache forces every lookup through the (now flaky) hash circuit.
	gen := packet.NewGenerator(9)
	res, err := np.ProcessOn(0, gen.Next(), 0)
	if err != nil || res.Detected {
		t.Fatalf("clean baseline failed: res=%+v err=%v", res, err)
	}
	assertMonitorLive(t, np, 0, 0)
	if err := np.InstallAll("ipv4cm", prog.Serialize(), g.Serialize(), 0xFA17); err != nil {
		t.Fatal(err)
	}
	for _, h := range flaky {
		h.SetRate(1)
	}
	alarms := 0
	for i := 0; i < 32; i++ {
		if h, _ := np.CoreHealth(0); h == CoreQuarantined {
			break
		}
		res, err := np.ProcessOn(0, gen.Next(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected {
			alarms++
		}
	}
	if alarms == 0 {
		t.Fatal("flaky hash unit raised no alarms — monitor silently dead")
	}
	if h, _ := np.CoreHealth(0); h != CoreQuarantined {
		t.Fatalf("flaky-hash core not quarantined (health %v)", h)
	}
	assertMonitorLive(t, np, 0, 0)
	if s := np.Stats(); !s.Conserved() {
		t.Fatalf("accounting not conserved: %+v", s)
	}
}

// Monitoring-graph corruption at install time: the install-time self-check
// must reject the bundle, or — when the corruption lands in semantically
// irrelevant bits — the installed monitor must still be live on traffic.
func TestFaultInjectionGraphCorruption(t *testing.T) {
	np, err := New(Config{Cores: 1, MonitorsEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	bin, g := makeBundle(t, apps.IPv4CM(), 0x60F)
	inj := fault.New(4242)
	gen := packet.NewGenerator(13)

	rejected, accepted := 0, 0
	for i := 0; i < 32; i++ {
		bad := inj.CorruptBits(g, 1+i%8)
		if err := np.InstallAll("ipv4cm", bin, bad, 0x60F); err != nil {
			rejected++
			continue
		}
		accepted++
		// Corruption slipped past the self-check: the monitor must still
		// observe instructions (not silently dead).
		if _, err := np.ProcessOn(0, gen.Next(), 0); err != nil {
			t.Fatal(err)
		}
		assertMonitorLive(t, np, 0, 0)
	}
	if rejected == 0 {
		t.Fatal("no corrupted graph was rejected — install self-check is dead")
	}
	t.Logf("graph corruption: %d rejected at install, %d accepted-but-live of 32", rejected, accepted)
}

// Hang injection (cycle-budget exhaustion): the watchdog must trip, be
// surfaced distinctly in Stats.WatchdogTrips, and the core must take the
// next packet normally once the budget is restored.
func TestFaultInjectionHangWatchdog(t *testing.T) {
	np := supervisedNP(t, 1)
	c, err := np.Core(0)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(5)
	restore := inj.Hang(c, 8)
	gen := packet.NewGenerator(31)
	res, err := np.ProcessOn(0, gen.Next(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Faulted || res.Detected {
		t.Fatalf("hung packet: %+v, want Faulted without alarm", res)
	}
	if res.Cycles > 8+64 {
		t.Fatalf("hung packet burned %d cycles, beyond the watchdog bound", res.Cycles)
	}
	s := np.Stats()
	if s.WatchdogTrips != 1 {
		t.Fatalf("WatchdogTrips=%d, want 1 (distinct from Faults=%d)", s.WatchdogTrips, s.Faults)
	}
	if s.Faults != 1 {
		t.Fatalf("Faults=%d, want 1", s.Faults)
	}
	// Recovery: restore the budget, next packet forwards.
	restore()
	res, err = np.ProcessOn(0, gen.Next(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != apps.VerdictForward || res.Faulted {
		t.Fatalf("core did not recover from hang: %+v", res)
	}
	if s := np.Stats(); !s.Conserved() {
		t.Fatalf("accounting not conserved: %+v", s)
	}
}

// A persistent hang (budget never restored) is a persistent fault: the
// supervisor quarantines the hung core and WatchdogTrips counts every trip.
func TestFaultInjectionPersistentHangQuarantines(t *testing.T) {
	np := supervisedNP(t, 1)
	c, err := np.Core(0)
	if err != nil {
		t.Fatal(err)
	}
	fault.New(6).Hang(c, 4) // never restored
	gen := packet.NewGenerator(41)
	for i := 0; i < 32; i++ {
		if h, _ := np.CoreHealth(0); h == CoreQuarantined {
			break
		}
		if _, err := np.ProcessOn(0, gen.Next(), 0); err != nil {
			t.Fatal(err)
		}
	}
	if h, _ := np.CoreHealth(0); h != CoreQuarantined {
		t.Fatal("persistently hung core was not quarantined")
	}
	s := np.Stats()
	if s.WatchdogTrips == 0 || s.WatchdogTrips != s.Faults {
		t.Fatalf("WatchdogTrips=%d Faults=%d, want equal and nonzero", s.WatchdogTrips, s.Faults)
	}
}

// Spurious exceptions from a poisoned (undecodable) instruction word: with
// monitors on, the hash mismatch alarms; with monitors off, the reserved-
// instruction trap still drops the packet. Either way accounting holds.
func TestFaultInjectionSpuriousException(t *testing.T) {
	for _, monitors := range []bool{true, false} {
		np, err := New(Config{Cores: 1, MonitorsEnabled: monitors})
		if err != nil {
			t.Fatal(err)
		}
		bin, g := makeBundle(t, apps.IPv4CM(), 0x5105)
		if err := np.InstallAll("ipv4cm", bin, g, 0x5105); err != nil {
			t.Fatal(err)
		}
		c, err := np.Core(0)
		if err != nil {
			t.Fatal(err)
		}
		inj := fault.New(8)
		if !inj.Poison(c, c.Program().Entry) {
			t.Fatal("poison failed")
		}
		res, err := np.ProcessOn(0, packet.NewGenerator(2).Next(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != apps.VerdictDrop {
			t.Fatalf("monitors=%v: poisoned packet not dropped: %+v", monitors, res)
		}
		if monitors && !res.Detected {
			t.Errorf("monitors on: poisoned instruction not detected (hash should mismatch)")
		}
		if !monitors && !res.Faulted {
			t.Errorf("monitors off: poisoned instruction did not fault")
		}
		if s := np.Stats(); !s.Conserved() {
			t.Fatalf("monitors=%v: accounting not conserved: %+v", monitors, s)
		}
	}
}
