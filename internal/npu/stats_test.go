package npu

import (
	"sync"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/obs"
	"sdmmon/internal/packet"
)

// TestStatsConcurrentWithBatch reads the aggregate stats while ProcessBatch
// is running. Under -race this pins the snapshot semantics of NP.Stats():
// readers must never observe torn counters or race with the per-batch merge.
func TestStatsConcurrentWithBatch(t *testing.T) {
	np := newNP(t, 4, true)
	bin, g := makeBundle(t, apps.IPv4CM(), 0xBA7C)
	if err := np.InstallAll("ipv4cm", bin, g, 0xBA7C); err != nil {
		t.Fatal(err)
	}
	gen := packet.NewGenerator(71)
	pkts := make([][]byte, 256)
	for i := range pkts {
		pkts[i] = gen.Next()
	}
	atk := attackSmash(t)
	for i := 10; i < len(pkts); i += 40 {
		pkts[i] = atk
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Every snapshot must be internally consistent: the merge
			// is atomic with respect to readers, so conservation holds
			// at every instant, not just at quiescence.
			if s := np.Stats(); !s.Conserved() {
				t.Errorf("torn stats snapshot: %+v", s)
				return
			}
		}
	}()
	for round := 0; round < 8; round++ {
		if _, err := np.ProcessBatch(pkts, 0); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	s := np.Stats()
	if want := uint64(8 * len(pkts)); s.Processed != want {
		t.Fatalf("Processed = %d, want %d", s.Processed, want)
	}
	if !s.Conserved() {
		t.Fatalf("final stats not conserved: %+v", s)
	}
}

// TestVerdictDropsClamp pins the unsigned-underflow fix: when alarm/fault
// counts exceed drops (transient mid-quarantine accounting windows),
// VerdictDrops must clamp at zero instead of wrapping to ~2^64.
func TestVerdictDropsClamp(t *testing.T) {
	cases := []struct {
		name string
		s    Stats
		want uint64
	}{
		{"normal", Stats{Processed: 10, Forwarded: 5, Dropped: 5, Alarms: 2, Faults: 1}, 2},
		{"all verdict", Stats{Processed: 4, Dropped: 4}, 4},
		{"exact", Stats{Processed: 3, Dropped: 3, Alarms: 2, Faults: 1}, 0},
		{"underflow", Stats{Processed: 2, Dropped: 1, Alarms: 1, Faults: 1}, 0},
		{"underflow alarms only", Stats{Dropped: 0, Alarms: 5}, 0},
	}
	for _, tc := range cases {
		if got := tc.s.VerdictDrops(); got != tc.want {
			t.Errorf("%s: VerdictDrops() = %d, want %d", tc.name, got, tc.want)
		}
		if got := tc.s.VerdictDrops(); got > tc.s.Dropped {
			t.Errorf("%s: VerdictDrops() = %d exceeds Dropped = %d (wrapped?)", tc.name, got, tc.s.Dropped)
		}
	}
	// Alongside Conserved(): a conserved stats snapshot always yields a
	// sane decomposition Forwarded + VerdictDrops + Alarms + Faults ≤
	// Processed.
	s := Stats{Processed: 10, Forwarded: 6, Dropped: 4, Alarms: 1, Faults: 1}
	if !s.Conserved() {
		t.Fatal("fixture not conserved")
	}
	if s.Forwarded+s.VerdictDrops()+s.Alarms+s.Faults != s.Processed {
		t.Errorf("decomposition broken: %+v", s)
	}
}

// TestObsMirrorsStats checks the tentpole wiring: when a collector is
// attached, the aggregate counters and per-core cycle histograms track the
// NP's own statistics exactly.
func TestObsMirrorsStats(t *testing.T) {
	col := obs.New(1024)
	np, err := New(Config{Cores: 2, MonitorsEnabled: true, Obs: col})
	if err != nil {
		t.Fatal(err)
	}
	bin, g := makeBundle(t, apps.IPv4CM(), 0xBA7C)
	if err := np.InstallAll("ipv4cm", bin, g, 0xBA7C); err != nil {
		t.Fatal(err)
	}
	gen := packet.NewGenerator(72)
	pkts := make([][]byte, 64)
	for i := range pkts {
		pkts[i] = gen.Next()
	}
	pkts[7] = attackSmash(t)
	if _, err := np.ProcessBatch(pkts, 0); err != nil {
		t.Fatal(err)
	}

	s := np.Stats()
	snap := col.Snapshot()
	for name, want := range map[string]uint64{
		"np_packets_processed_total": s.Processed,
		"np_packets_forwarded_total": s.Forwarded,
		"np_packets_dropped_total":   s.Dropped,
		"np_alarms_total":            s.Alarms,
		"np_faults_total":            s.Faults,
		"np_installs_total":          2,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d (stats %+v)", name, got, want, s)
		}
	}
	var hcount uint64
	for name, h := range snap.Histograms {
		if len(name) >= len("np_packet_cycles") && name[:len("np_packet_cycles")] == "np_packet_cycles" {
			hcount += h.Count
		}
	}
	if hcount != s.Processed {
		t.Errorf("per-core cycle histogram samples = %d, want Processed = %d", hcount, s.Processed)
	}
	if bl, ok := snap.Histograms["np_batch_seconds"]; !ok || bl.Count != 1 {
		t.Errorf("np_batch_seconds count = %+v, want 1 sample", bl)
	}

	// Alarm events made it into the ring with recovery following.
	events := col.Events()
	var alarms, recovers int
	for _, e := range events {
		switch e.Kind {
		case obs.EvAlarm:
			alarms++
		case obs.EvRecover:
			recovers++
		}
	}
	if alarms == 0 || recovers != alarms {
		t.Errorf("trace: %d alarms, %d recoveries (events %d)", alarms, recovers, len(events))
	}
}
