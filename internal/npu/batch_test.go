package npu

import (
	"bytes"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/packet"
)

func TestProcessBatchMatchesSequential(t *testing.T) {
	mkNP := func() *NP {
		np := newNP(t, 4, true)
		bin, g := makeBundle(t, apps.IPv4CM(), 0xBA7C)
		if err := np.InstallAll("ipv4cm", bin, g, 0xBA7C); err != nil {
			t.Fatal(err)
		}
		return np
	}
	gen := packet.NewGenerator(61)
	gen.OptionWords = 1
	pkts := make([][]byte, 200)
	for i := range pkts {
		pkts[i] = gen.Next()
	}
	// Interleave attacks.
	atk := attackSmash(t)
	for i := 20; i < len(pkts); i += 50 {
		pkts[i] = atk
	}

	seqNP := mkNP()
	var seqResults []Result
	for _, p := range pkts {
		r, err := seqNP.Process(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		seqResults = append(seqResults, r)
	}

	batchNP := mkNP()
	batchResults, err := batchNP.ProcessBatch(pkts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(batchResults) != len(pkts) {
		t.Fatalf("%d results", len(batchResults))
	}
	// Outcomes per packet are identical (core assignment may differ).
	for i := range pkts {
		s, b := seqResults[i], batchResults[i]
		if s.Verdict != b.Verdict || s.Detected != b.Detected || s.Faulted != b.Faulted {
			t.Errorf("packet %d: sequential %+v vs batch %+v", i, s, b)
		}
		if !bytes.Equal(s.Packet, b.Packet) {
			t.Errorf("packet %d: output bytes differ", i)
		}
	}
	// Aggregate stats agree.
	ss, bs := seqNP.Stats(), batchNP.Stats()
	if ss.Processed != bs.Processed || ss.Forwarded != bs.Forwarded ||
		ss.Dropped != bs.Dropped || ss.Alarms != bs.Alarms || ss.Faults != bs.Faults {
		t.Errorf("stats: sequential %+v vs batch %+v", ss, bs)
	}
}

func TestProcessBatchNoCores(t *testing.T) {
	np := newNP(t, 2, true)
	if _, err := np.ProcessBatch([][]byte{{1}}, 0); err == nil {
		t.Error("batch without installed app accepted")
	}
}

func TestProcessBatchEmpty(t *testing.T) {
	np := queuedNP(t, 1)
	res, err := np.ProcessBatch(nil, 0)
	if err != nil || len(res) != 0 {
		t.Errorf("empty batch: %v, %d results", err, len(res))
	}
}

func TestProcessBatchCompletesAndAttributesCores(t *testing.T) {
	// Work distribution is packet-level stealing, so how many cores run
	// depends on the host scheduler (on a single-CPU host one worker may
	// drain the whole queue). The contract: every packet is processed
	// exactly once and attributed to a valid core.
	np := queuedNP(t, 4)
	gen := packet.NewGenerator(62)
	pkts := make([][]byte, 400)
	for i := range pkts {
		pkts[i] = gen.Next()
	}
	results, err := np.ProcessBatch(pkts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(pkts) {
		t.Fatalf("%d results for %d packets", len(results), len(pkts))
	}
	for i, r := range results {
		if r.Core < 0 || r.Core >= 4 {
			t.Fatalf("packet %d attributed to core %d", i, r.Core)
		}
	}
	if got := np.Stats().Processed; got != 400 {
		t.Errorf("processed %d", got)
	}
}
