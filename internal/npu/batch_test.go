package npu

import (
	"bytes"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/packet"
)

func TestProcessBatchMatchesSequential(t *testing.T) {
	mkNP := func() *NP {
		np := newNP(t, 4, true)
		bin, g := makeBundle(t, apps.IPv4CM(), 0xBA7C)
		if err := np.InstallAll("ipv4cm", bin, g, 0xBA7C); err != nil {
			t.Fatal(err)
		}
		return np
	}
	gen := packet.NewGenerator(61)
	gen.OptionWords = 1
	pkts := make([][]byte, 200)
	for i := range pkts {
		pkts[i] = gen.Next()
	}
	// Interleave attacks.
	atk := attackSmash(t)
	for i := 20; i < len(pkts); i += 50 {
		pkts[i] = atk
	}

	seqNP := mkNP()
	var seqResults []Result
	for _, p := range pkts {
		r, err := seqNP.Process(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Result.Packet aliases the core's output buffer; copy to retain
		// it past the next packet on that core.
		r.Packet = append([]byte(nil), r.Packet...)
		seqResults = append(seqResults, r)
	}

	batchNP := mkNP()
	batchResults, err := batchNP.ProcessBatch(pkts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(batchResults) != len(pkts) {
		t.Fatalf("%d results", len(batchResults))
	}
	// Outcomes per packet are identical (core assignment may differ).
	for i := range pkts {
		s, b := seqResults[i], batchResults[i]
		if s.Verdict != b.Verdict || s.Detected != b.Detected || s.Faulted != b.Faulted {
			t.Errorf("packet %d: sequential %+v vs batch %+v", i, s, b)
		}
		if !bytes.Equal(s.Packet, b.Packet) {
			t.Errorf("packet %d: output bytes differ", i)
		}
	}
	// Aggregate stats agree.
	ss, bs := seqNP.Stats(), batchNP.Stats()
	if ss.Processed != bs.Processed || ss.Forwarded != bs.Forwarded ||
		ss.Dropped != bs.Dropped || ss.Alarms != bs.Alarms || ss.Faults != bs.Faults {
		t.Errorf("stats: sequential %+v vs batch %+v", ss, bs)
	}
}

// TestProcessBatchPartialError pins the error semantics: a packet that
// cannot be processed (here: larger than the packet memory window) yields
// its zero Result and the first error, while every other packet is still
// processed, still ordered, and still counted in the aggregate stats —
// partial work never vanishes.
func TestProcessBatchPartialError(t *testing.T) {
	np := queuedNP(t, 4)
	gen := packet.NewGenerator(63)
	pkts := make([][]byte, 100)
	for i := range pkts {
		pkts[i] = gen.Next()
	}
	oversized := make([]byte, apps.MemSize-apps.PktBase+1)
	pkts[37] = oversized

	results, err := np.ProcessBatch(pkts, 0)
	if err == nil {
		t.Fatal("oversized packet produced no error")
	}
	if len(results) != len(pkts) {
		t.Fatalf("%d results for %d packets", len(results), len(pkts))
	}
	if results[37].Packet != nil || results[37].Verdict != 0 {
		t.Errorf("errored packet has non-zero result %+v", results[37])
	}
	processedResults := 0
	for i, r := range results {
		if i == 37 {
			continue
		}
		if r.Packet == nil {
			t.Fatalf("packet %d has no result", i)
		}
		processedResults++
	}
	s := np.Stats()
	if s.Processed != uint64(processedResults) {
		t.Errorf("stats merged %d processed, want %d", s.Processed, processedResults)
	}
	if s.Processed != s.Forwarded+s.Dropped {
		t.Errorf("conservation violated: %+v", s)
	}
}

// TestProcessOnOversized pins the same error on the single-packet path,
// with stats untouched.
func TestProcessOnOversized(t *testing.T) {
	np := queuedNP(t, 1)
	if _, err := np.ProcessOn(0, make([]byte, apps.MemSize-apps.PktBase+1), 0); err == nil {
		t.Fatal("oversized packet accepted")
	}
	if s := np.Stats(); s.Processed != 0 {
		t.Errorf("errored packet counted: %+v", s)
	}
}

func TestProcessBatchNoCores(t *testing.T) {
	np := newNP(t, 2, true)
	if _, err := np.ProcessBatch([][]byte{{1}}, 0); err == nil {
		t.Error("batch without installed app accepted")
	}
}

func TestProcessBatchEmpty(t *testing.T) {
	np := queuedNP(t, 1)
	res, err := np.ProcessBatch(nil, 0)
	if err != nil || len(res) != 0 {
		t.Errorf("empty batch: %v, %d results", err, len(res))
	}
}

func TestProcessBatchCompletesAndAttributesCores(t *testing.T) {
	// Work distribution is packet-level stealing, so how many cores run
	// depends on the host scheduler (on a single-CPU host one worker may
	// drain the whole queue). The contract: every packet is processed
	// exactly once and attributed to a valid core.
	np := queuedNP(t, 4)
	gen := packet.NewGenerator(62)
	pkts := make([][]byte, 400)
	for i := range pkts {
		pkts[i] = gen.Next()
	}
	results, err := np.ProcessBatch(pkts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(pkts) {
		t.Fatalf("%d results for %d packets", len(results), len(pkts))
	}
	for i, r := range results {
		if r.Core < 0 || r.Core >= 4 {
			t.Fatalf("packet %d attributed to core %d", i, r.Core)
		}
	}
	if got := np.Stats().Processed; got != 400 {
		t.Errorf("processed %d", got)
	}
}
