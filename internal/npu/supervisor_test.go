package npu

import (
	"errors"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/fault"
	"sdmmon/internal/packet"
)

// testSupervisor is a fast-converging policy for tests.
func testSupervisor() SupervisorConfig {
	return SupervisorConfig{Window: 16, Threshold: 4, ProbationPackets: 8}
}

func supervisedNP(t *testing.T, cores int) *NP {
	t.Helper()
	np, err := New(Config{Cores: cores, MonitorsEnabled: true, Supervisor: testSupervisor()})
	if err != nil {
		t.Fatal(err)
	}
	bin, g := makeBundle(t, apps.IPv4CM(), 0x5AFE)
	if err := np.InstallAll("ipv4cm", bin, g, 0x5AFE); err != nil {
		t.Fatal(err)
	}
	return np
}

// injectPersistentFault flips an instruction-memory bit on coreID that the
// monitor provably alarms on: it probes flips of the entry word bit by bit
// (re-installing between probes) until one detects, then leaves that flip
// in place. Deterministic for a fixed bundle/parameter.
func injectPersistentFault(t *testing.T, np *NP, coreID int) {
	t.Helper()
	bin, g := makeBundle(t, apps.IPv4CM(), 0x5AFE)
	gen := packet.NewGenerator(99)
	c, err := np.Core(coreID)
	if err != nil {
		t.Fatal(err)
	}
	entry := c.Program().Entry
	inj := fault.New(1)
	for bit := uint(0); bit < 32; bit++ {
		if err := np.Install(coreID, "ipv4cm", bin, g, 0x5AFE); err != nil {
			t.Fatal(err)
		}
		c, _ = np.Core(coreID)
		if !inj.FlipBit(c, entry, bit) {
			t.Fatalf("flip at %#x failed", entry)
		}
		res, err := np.ProcessOn(coreID, gen.Next(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected {
			return // fault armed, one alarm already recorded
		}
	}
	t.Fatal("no entry-word bit flip produced an alarm")
}

// driveToQuarantine feeds benign packets at the faulty core until the
// supervisor quarantines it, bounding the recovery loop.
func driveToQuarantine(t *testing.T, np *NP, coreID, maxPackets int) int {
	t.Helper()
	gen := packet.NewGenerator(123)
	for i := 0; i < maxPackets; i++ {
		if h, _ := np.CoreHealth(coreID); h == CoreQuarantined {
			return i
		}
		if _, err := np.ProcessOn(coreID, gen.Next(), 0); err != nil {
			t.Fatal(err)
		}
	}
	h, _ := np.CoreHealth(coreID)
	if h != CoreQuarantined {
		t.Fatalf("core %d not quarantined after %d packets (health %v)", coreID, maxPackets, h)
	}
	return maxPackets
}

// The tentpole lifecycle: persistent fault → repeated alarms → quarantine →
// the NP keeps forwarding degraded → clean re-install → probation → healthy.
func TestSupervisorQuarantineLifecycle(t *testing.T) {
	np := supervisedNP(t, 2)
	injectPersistentFault(t, np, 0)
	driveToQuarantine(t, np, 0, 64)

	s := np.Stats()
	if s.Quarantines != 1 {
		t.Fatalf("Quarantines=%d, want 1", s.Quarantines)
	}
	if !s.Conserved() {
		t.Fatalf("accounting not conserved: %+v", s)
	}
	if got := np.AvailableCores(); got != 1 {
		t.Fatalf("AvailableCores=%d, want 1", got)
	}
	if _, err := np.ProcessOn(0, packet.NewGenerator(5).Next(), 0); !errors.Is(err, ErrCoreQuarantined) {
		t.Fatalf("ProcessOn quarantined core: err=%v, want ErrCoreQuarantined", err)
	}

	// Graceful degradation: round-robin dispatch forwards on core 1 only.
	gen := packet.NewGenerator(7)
	for i := 0; i < 10; i++ {
		res, err := np.Process(gen.Next(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Core != 1 {
			t.Fatalf("packet dispatched to quarantined core %d", res.Core)
		}
		if !(res.Verdict == apps.VerdictForward && !res.Detected) {
			t.Fatalf("degraded NP failed benign packet %d: %+v", i, res)
		}
	}

	// Probe-reintroduction: a clean re-install enters probation...
	bin, g := makeBundle(t, apps.IPv4CM(), 0x5AFE)
	if err := np.Install(0, "ipv4cm", bin, g, 0x5AFE); err != nil {
		t.Fatal(err)
	}
	if h, _ := np.CoreHealth(0); h != CoreProbation {
		t.Fatalf("health after re-install: %v, want probation", h)
	}
	// ...and clean packets graduate it back to full health.
	for i := 0; i < testSupervisor().ProbationPackets; i++ {
		res, err := np.ProcessOn(0, gen.Next(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected || res.Faulted {
			t.Fatalf("probation packet %d alarmed on a clean core", i)
		}
	}
	if h, _ := np.CoreHealth(0); h != CoreHealthy {
		t.Fatalf("health after probation: %v, want healthy", h)
	}
	if got := np.AvailableCores(); got != 2 {
		t.Fatalf("AvailableCores=%d, want 2", got)
	}
}

// A fault that survives the re-install (still-broken hardware) fails
// probation on its first alarm and re-quarantines immediately.
func TestSupervisorProbationFailure(t *testing.T) {
	np := supervisedNP(t, 1)
	injectPersistentFault(t, np, 0)
	driveToQuarantine(t, np, 0, 64)

	bin, g := makeBundle(t, apps.IPv4CM(), 0x5AFE)
	if err := np.Install(0, "ipv4cm", bin, g, 0x5AFE); err != nil {
		t.Fatal(err)
	}
	// Re-arm the same persistent fault on the freshly installed core.
	injectPersistentFault(t, np, 0)
	// injectPersistentFault re-installs while probing, so the core is on
	// probation with one alarm already taken: it must be quarantined at
	// once, not after Threshold events.
	if h, _ := np.CoreHealth(0); h != CoreQuarantined {
		t.Fatalf("health after probation alarm: %v, want quarantined", h)
	}
	if s := np.Stats(); s.Quarantines != 2 {
		t.Fatalf("Quarantines=%d, want 2", s.Quarantines)
	}
}

// All cores quarantined: dispatch reports the typed error, not a panic or
// a silent drop.
func TestSupervisorAllQuarantined(t *testing.T) {
	np := supervisedNP(t, 1)
	if err := np.Quarantine(0); err != nil {
		t.Fatal(err)
	}
	if _, err := np.Process(packet.NewGenerator(1).Next(), 0); !errors.Is(err, ErrNoCoreAvailable) {
		t.Fatalf("Process: err=%v, want ErrNoCoreAvailable", err)
	}
	if _, err := np.ProcessBatch([][]byte{packet.NewGenerator(1).Next()}, 0); !errors.Is(err, ErrNoCoreAvailable) {
		t.Fatalf("ProcessBatch: err=%v, want ErrNoCoreAvailable", err)
	}
}

// Mid-batch quarantine, deterministic single-core version: the only worker
// alarms on every packet, quarantines partway through the batch, and the
// unprocessed tail surfaces as the typed error — with the processed prefix
// fully accounted.
func TestSupervisorQuarantineMidBatch(t *testing.T) {
	np := supervisedNP(t, 1)
	injectPersistentFault(t, np, 0)

	before := np.Stats()
	gen := packet.NewGenerator(17)
	pkts := make([][]byte, 64)
	for i := range pkts {
		pkts[i] = gen.Next()
	}
	results, err := np.ProcessBatch(pkts, 0)
	if !errors.Is(err, ErrNoCoreAvailable) {
		t.Fatalf("err=%v, want ErrNoCoreAvailable for the unprocessed tail", err)
	}
	if h, _ := np.CoreHealth(0); h != CoreQuarantined {
		t.Fatalf("core 0 health %v, want quarantined", h)
	}
	s := np.Stats()
	if !s.Conserved() {
		t.Fatalf("accounting not conserved: %+v", s)
	}
	processed := int(s.Processed - before.Processed)
	if processed == 0 || processed >= len(pkts) {
		t.Fatalf("processed %d of %d, want a strict mid-batch prefix", processed, len(pkts))
	}
	// The processed prefix has fates; the unprocessed tail is zero-valued.
	for i := 0; i < processed; i++ {
		if !results[i].Detected {
			t.Fatalf("packet %d on the faulty core not detected", i)
		}
	}
	for i := processed; i < len(pkts); i++ {
		if results[i].Detected || results[i].Faulted || results[i].Packet != nil {
			t.Fatalf("unprocessed packet %d has a fate: %+v", i, results[i])
		}
	}
}

// A batch over a degraded NP (one core already quarantined) completes in
// full on the remaining core — every packet gets a fate and the aggregate
// statistics stay conserved.
func TestBatchDegradedOnQuarantinedCore(t *testing.T) {
	np := supervisedNP(t, 2)
	if err := np.Quarantine(0); err != nil {
		t.Fatal(err)
	}
	gen := packet.NewGenerator(17)
	pkts := make([][]byte, 256)
	for i := range pkts {
		pkts[i] = gen.Next()
	}
	results, err := np.ProcessBatch(pkts, 0)
	if err != nil {
		t.Fatalf("batch with one healthy core errored: %v", err)
	}
	for i, r := range results {
		if r.Core != 1 {
			t.Fatalf("packet %d ran on quarantined core %d", i, r.Core)
		}
		if r.Verdict != apps.VerdictForward || r.Detected || r.Faulted {
			t.Fatalf("benign packet %d not forwarded: %+v", i, r)
		}
	}
	if s := np.Stats(); !s.Conserved() {
		t.Fatalf("accounting not conserved: %+v", s)
	}
}

// Manual quarantine works without the supervisor enabled (operator action,
// degraded-throughput bench).
func TestManualQuarantineWithoutSupervisor(t *testing.T) {
	np := newNP(t, 2, true)
	bin, g := makeBundle(t, apps.IPv4CM(), 0xD00D)
	if err := np.InstallAll("ipv4cm", bin, g, 0xD00D); err != nil {
		t.Fatal(err)
	}
	if err := np.Quarantine(0); err != nil {
		t.Fatal(err)
	}
	gen := packet.NewGenerator(3)
	for i := 0; i < 6; i++ {
		res, err := np.Process(gen.Next(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Core != 1 {
			t.Fatalf("dispatched to manually quarantined core %d", res.Core)
		}
	}
	// Re-install releases it even with the supervisor off (no probation).
	if err := np.Install(0, "ipv4cm", bin, g, 0xD00D); err != nil {
		t.Fatal(err)
	}
	if h, _ := np.CoreHealth(0); h != CoreHealthy {
		t.Fatalf("health after re-install: %v, want healthy", h)
	}
}

// Quarantine visibly degrades the queued NP: the run completes, the
// remaining core forwards, and packet accounting is exactly conserved.
func TestQueueSimQuarantineDegradation(t *testing.T) {
	np := supervisedNP(t, 2)
	if err := np.Quarantine(0); err != nil {
		t.Fatal(err)
	}
	gen := packet.NewGenerator(21)
	q := &QueueSim{NP: np, Capacity: 32, MeanInterArrival: 200, Seed: 2}
	st, err := q.Run(400, gen.Next)
	if err != nil {
		t.Fatal(err)
	}
	if st.QuarantinedCores != 1 {
		t.Fatalf("QuarantinedCores=%d, want 1", st.QuarantinedCores)
	}
	if st.Forwarded == 0 {
		t.Fatal("degraded NP forwarded nothing")
	}
	if st.Arrived != st.TailDrops+st.Processed {
		t.Fatalf("queue accounting broken: arrived=%d taildrops=%d processed=%d",
			st.Arrived, st.TailDrops, st.Processed)
	}
	if st.Processed != st.Forwarded+st.AppDrops {
		t.Fatalf("drain accounting broken: %+v", st)
	}
}

// The fully wedged NP sheds its backlog at the queue and terminates.
func TestQueueSimAllQuarantinedSheds(t *testing.T) {
	np := supervisedNP(t, 2)
	for c := 0; c < 2; c++ {
		if err := np.Quarantine(c); err != nil {
			t.Fatal(err)
		}
	}
	gen := packet.NewGenerator(22)
	q := &QueueSim{NP: np, Capacity: 16, MeanInterArrival: 50, Seed: 3}
	st, err := q.Run(200, gen.Next)
	if err != nil {
		t.Fatal(err)
	}
	if st.Processed != 0 {
		t.Fatalf("wedged NP processed %d packets", st.Processed)
	}
	if st.StarvedDrops == 0 {
		t.Fatal("no starved drops recorded")
	}
	if st.Arrived != st.TailDrops+st.Processed {
		t.Fatalf("conservation broken: %+v", st)
	}
	if st.QuarantinedCores != 2 {
		t.Fatalf("QuarantinedCores=%d, want 2", st.QuarantinedCores)
	}
}

// Typed validation errors (the satellite): errors.Is must match.
func TestQueueSimTypedErrors(t *testing.T) {
	np := queuedNP(t, 1)
	q := &QueueSim{NP: np, Capacity: 0, MeanInterArrival: 10}
	if _, err := q.Run(1, nil); !errors.Is(err, ErrQueueCapacity) {
		t.Errorf("capacity error %v, want ErrQueueCapacity", err)
	}
	q = &QueueSim{NP: np, Capacity: 10, MeanInterArrival: 0}
	if _, err := q.Run(1, nil); !errors.Is(err, ErrQueueInterArrival) {
		t.Errorf("inter-arrival error %v, want ErrQueueInterArrival", err)
	}
	q = &QueueSim{NP: np, Capacity: 10, MeanInterArrival: -3}
	if _, err := q.Run(1, nil); !errors.Is(err, ErrQueueInterArrival) {
		t.Errorf("negative inter-arrival error %v, want ErrQueueInterArrival", err)
	}
}
