package npu

import (
	"fmt"
	"math/rand"
)

// QueueSim runs the NP behind an ingress queue in virtual time, making the
// queue depth the applications see *endogenous*: packets arrive by a
// Poisson-ish process, cores drain the queue at their actual simulated
// cycle cost, and the congestion-management path of IPv4+CM marks packets
// exactly when the real backlog crosses its threshold.
type QueueSim struct {
	NP *NP
	// Capacity is the ingress queue limit; arrivals beyond it tail-drop.
	Capacity int
	// MeanInterArrival is the average cycles between arrivals.
	MeanInterArrival float64
	// Seed drives the arrival process.
	Seed int64
}

// QueueStats summarizes a queued run.
type QueueStats struct {
	Arrived   int
	TailDrops int // dropped at the full ingress queue
	Processed int
	Forwarded int
	ECNMarked int // forwarded packets carrying the CE mark
	AppDrops  int
	MaxQueue  int
	AvgQueue  float64
	Cycles    uint64 // virtual time consumed
	// ServiceCycles is the total core time spent processing; divided by
	// Cycles (× cores) it gives the utilization.
	ServiceCycles uint64
}

// Utilization returns the busy fraction of the NP's cores over the run.
func (s QueueStats) Utilization(cores int) float64 {
	if s.Cycles == 0 || cores == 0 {
		return 0
	}
	return float64(s.ServiceCycles) / (float64(s.Cycles) * float64(cores))
}

// Run feeds n generated packets through the queue.
func (q *QueueSim) Run(n int, gen func() []byte) (QueueStats, error) {
	var st QueueStats
	if q.Capacity < 1 {
		return st, fmt.Errorf("npu: queue capacity %d", q.Capacity)
	}
	if q.MeanInterArrival <= 0 {
		return st, fmt.Errorf("npu: mean inter-arrival %f", q.MeanInterArrival)
	}
	rng := rand.New(rand.NewSource(q.Seed))
	cores := q.NP.Cores()
	busyUntil := make([]uint64, cores)
	var queue [][]byte
	var clock uint64
	nextArrival := uint64(0)
	arrivals := 0
	var queueAreaCycles float64
	lastClock := uint64(0)

	draw := func() uint64 {
		// Exponential inter-arrival, floored at 1 cycle.
		d := rng.ExpFloat64() * q.MeanInterArrival
		if d < 1 {
			d = 1
		}
		return uint64(d)
	}

	for arrivals < n || len(queue) > 0 || anyBusy(busyUntil, clock) {
		// Advance virtual time to the next event.
		next := ^uint64(0)
		if arrivals < n && nextArrival < next {
			next = nextArrival
		}
		for _, b := range busyUntil {
			if b > clock && b < next {
				next = b
			}
		}
		// A free core with a queued packet is an immediate event.
		if len(queue) > 0 {
			for _, b := range busyUntil {
				if b <= clock {
					next = clock
					break
				}
			}
		}
		if next == ^uint64(0) {
			break
		}
		queueAreaCycles += float64(len(queue)) * float64(next-lastClock)
		lastClock = next
		clock = next

		// Arrival.
		if arrivals < n && clock >= nextArrival {
			pkt := gen()
			arrivals++
			st.Arrived++
			if len(queue) >= q.Capacity {
				st.TailDrops++
			} else {
				queue = append(queue, pkt)
				if len(queue) > st.MaxQueue {
					st.MaxQueue = len(queue)
				}
			}
			nextArrival = clock + draw()
		}

		// Dispatch to every free core.
		for c := 0; c < cores && len(queue) > 0; c++ {
			if busyUntil[c] > clock {
				continue
			}
			pkt := queue[0]
			queue = queue[1:]
			res, err := q.NP.ProcessOn(c, pkt, len(queue))
			if err != nil {
				return st, err
			}
			st.Processed++
			st.ServiceCycles += res.Cycles
			busyUntil[c] = clock + res.Cycles
			switch {
			case res.Verdict == 1 && !res.Detected && !res.Faulted:
				st.Forwarded++
				if len(res.Packet) > 1 && res.Packet[1]&0x3 == 0x3 {
					st.ECNMarked++
				}
			default:
				st.AppDrops++
			}
		}
	}
	st.Cycles = clock
	if clock > 0 {
		st.AvgQueue = queueAreaCycles / float64(clock)
	}
	return st, nil
}

func anyBusy(busy []uint64, clock uint64) bool {
	for _, b := range busy {
		if b > clock {
			return true
		}
	}
	return false
}
