package npu

import (
	"errors"
	"fmt"
	"math/rand"
)

// Typed configuration errors for QueueSim.Run.
var (
	// ErrQueueCapacity: Capacity must be at least 1.
	ErrQueueCapacity = errors.New("npu: queue capacity must be >= 1")
	// ErrQueueInterArrival: MeanInterArrival must be positive.
	ErrQueueInterArrival = errors.New("npu: mean inter-arrival must be positive")
)

// QueueSim runs the NP behind an ingress queue in virtual time, making the
// queue depth the applications see *endogenous*: packets arrive by a
// Poisson-ish process, cores drain the queue at their actual simulated
// cycle cost, and the congestion-management path of IPv4+CM marks packets
// exactly when the real backlog crosses its threshold.
type QueueSim struct {
	NP *NP
	// Capacity is the ingress queue limit; arrivals beyond it tail-drop.
	Capacity int
	// MeanInterArrival is the average cycles between arrivals.
	MeanInterArrival float64
	// Seed drives the arrival process.
	Seed int64
	// InterArrival, when non-nil, replaces the random arrival process: it
	// returns the gap in cycles between arrival i-1 and arrival i (the
	// first arrival is always at cycle 0), clamped below at 1. A
	// deterministic schedule makes AvgQueue hand-computable, which is how
	// the time-weighted accounting is pinned by regression tests.
	InterArrival func(i int) uint64
}

// QueueStats summarizes a queued run.
type QueueStats struct {
	Arrived   int
	TailDrops int // dropped at the full ingress queue
	Processed int
	Forwarded int
	ECNMarked int // forwarded packets carrying the CE mark
	AppDrops  int
	MaxQueue  int
	AvgQueue  float64
	// StarvedDrops counts packets dropped because every core was
	// quarantined (a wedged NP sheds its whole backlog; included in
	// TailDrops for conservation).
	StarvedDrops int
	// QuarantinedCores is the number of quarantined cores at run end —
	// the visible face of graceful degradation.
	QuarantinedCores int
	Cycles           uint64 // virtual time consumed
	// ServiceCycles is the total core time spent processing; divided by
	// Cycles (× cores) it gives the utilization.
	ServiceCycles uint64
}

// Utilization returns the busy fraction of the NP's cores over the run.
//
// cores must be the NP's *total* core count (NP.Cores()) — the same
// denominator the run dispatched over. Passing the currently-available
// count after quarantine shrank the effective pool mid-run would overstate
// the busy fraction (service cycles accrued on a core before it was
// quarantined still count against full capacity). Because callers can get
// this wrong, and because a shrunk pool can push the raw ratio past 1, the
// result is clamped to [0, 1].
func (s QueueStats) Utilization(cores int) float64 {
	if s.Cycles == 0 || cores <= 0 {
		return 0
	}
	u := float64(s.ServiceCycles) / (float64(s.Cycles) * float64(cores))
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// Run feeds n generated packets through the queue.
func (q *QueueSim) Run(n int, gen func() []byte) (QueueStats, error) {
	var st QueueStats
	if q.Capacity < 1 {
		return st, fmt.Errorf("%w (got %d)", ErrQueueCapacity, q.Capacity)
	}
	if q.MeanInterArrival <= 0 {
		return st, fmt.Errorf("%w (got %g)", ErrQueueInterArrival, q.MeanInterArrival)
	}
	rng := rand.New(rand.NewSource(q.Seed))
	cores := q.NP.Cores()
	busyUntil := make([]uint64, cores)
	var queue [][]byte
	var clock uint64
	nextArrival := uint64(0)
	arrivals := 0
	// Time-weighted queue-depth accounting. The integration invariant,
	// pinned by TestQueueAvgQueueHandComputable: every iteration integrates
	// depth × (next − lastClock) *before* mutating the queue, and lastClock
	// always equals clock at the top of an iteration, so the integrated
	// intervals exactly tile [0, clock] — including the final drain, where
	// the queue is empty but the last packets are still in service and the
	// clock still advances to their completion. finalize() computes the
	// summary on *every* exit path; an early error return must not hand
	// back stats with the horizon and average missing.
	var queueAreaCycles float64
	lastClock := uint64(0)
	finalize := func() {
		st.Cycles = clock
		for c := 0; c < cores; c++ {
			if q.NP.slots[c].sup.quarantined {
				st.QuarantinedCores++
			}
		}
		if clock > 0 {
			st.AvgQueue = queueAreaCycles / float64(clock)
		}
	}

	draw := func() uint64 {
		if q.InterArrival != nil {
			// Deterministic schedule: gap before arrival `arrivals`
			// (the one being scheduled), floored at 1 cycle.
			d := q.InterArrival(arrivals)
			if d < 1 {
				d = 1
			}
			return d
		}
		// Exponential inter-arrival, floored at 1 cycle.
		d := rng.ExpFloat64() * q.MeanInterArrival
		if d < 1 {
			d = 1
		}
		return uint64(d)
	}

	for arrivals < n || len(queue) > 0 || anyBusy(busyUntil, clock) {
		// Advance virtual time to the next event.
		next := ^uint64(0)
		if arrivals < n && nextArrival < next {
			next = nextArrival
		}
		for _, b := range busyUntil {
			if b > clock && b < next {
				next = b
			}
		}
		// A free available core with a queued packet is an immediate
		// event. Quarantined cores don't count — otherwise a wedged NP
		// would spin the clock in place.
		if len(queue) > 0 {
			for c, b := range busyUntil {
				if b <= clock && q.NP.slots[c].available() {
					next = clock
					break
				}
			}
		}
		if next == ^uint64(0) {
			break
		}
		queueAreaCycles += float64(len(queue)) * float64(next-lastClock)
		lastClock = next
		clock = next

		// Arrival.
		if arrivals < n && clock >= nextArrival {
			pkt := gen()
			arrivals++
			st.Arrived++
			if len(queue) >= q.Capacity {
				st.TailDrops++
			} else {
				queue = append(queue, pkt)
				if len(queue) > st.MaxQueue {
					st.MaxQueue = len(queue)
				}
			}
			nextArrival = clock + draw()
		}

		// Dispatch to every free available core.
		for c := 0; c < cores && len(queue) > 0; c++ {
			if busyUntil[c] > clock || !q.NP.slots[c].available() {
				continue
			}
			pkt := queue[0]
			queue = queue[1:]
			res, err := q.NP.ProcessOn(c, pkt, len(queue))
			if err != nil {
				finalize()
				return st, err
			}
			st.Processed++
			st.ServiceCycles += res.Cycles
			busyUntil[c] = clock + res.Cycles
			switch {
			case res.Verdict == 1 && !res.Detected && !res.Faulted:
				st.Forwarded++
				if len(res.Packet) > 1 && res.Packet[1]&0x3 == 0x3 {
					st.ECNMarked++
				}
			default:
				st.AppDrops++
			}
		}

		// Graceful degradation's worst case: every core quarantined. The
		// backlog can never drain, so it is shed at the queue — counted,
		// not lost — and the run finishes once arrivals stop.
		if len(queue) > 0 && q.NP.AvailableCores() == 0 {
			st.StarvedDrops += len(queue)
			st.TailDrops += len(queue)
			queue = queue[:0]
		}
	}
	finalize()
	return st, nil
}

func anyBusy(busy []uint64, clock uint64) bool {
	for _, b := range busy {
		if b > clock {
			return true
		}
	}
	return false
}
