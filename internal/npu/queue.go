package npu

import (
	"errors"
	"fmt"
	"math/rand"
)

// Typed configuration errors for QueueSim.Run.
var (
	// ErrQueueCapacity: Capacity must be at least 1.
	ErrQueueCapacity = errors.New("npu: queue capacity must be >= 1")
	// ErrQueueInterArrival: MeanInterArrival must be positive.
	ErrQueueInterArrival = errors.New("npu: mean inter-arrival must be positive")
)

// QueueSim runs the NP behind an ingress queue in virtual time, making the
// queue depth the applications see *endogenous*: packets arrive by a
// Poisson-ish process, cores drain the queue at their actual simulated
// cycle cost, and the congestion-management path of IPv4+CM marks packets
// exactly when the real backlog crosses its threshold.
type QueueSim struct {
	NP *NP
	// Capacity is the ingress queue limit; arrivals beyond it tail-drop.
	Capacity int
	// MeanInterArrival is the average cycles between arrivals.
	MeanInterArrival float64
	// Seed drives the arrival process.
	Seed int64
}

// QueueStats summarizes a queued run.
type QueueStats struct {
	Arrived   int
	TailDrops int // dropped at the full ingress queue
	Processed int
	Forwarded int
	ECNMarked int // forwarded packets carrying the CE mark
	AppDrops  int
	MaxQueue  int
	AvgQueue  float64
	// StarvedDrops counts packets dropped because every core was
	// quarantined (a wedged NP sheds its whole backlog; included in
	// TailDrops for conservation).
	StarvedDrops int
	// QuarantinedCores is the number of quarantined cores at run end —
	// the visible face of graceful degradation.
	QuarantinedCores int
	Cycles           uint64 // virtual time consumed
	// ServiceCycles is the total core time spent processing; divided by
	// Cycles (× cores) it gives the utilization.
	ServiceCycles uint64
}

// Utilization returns the busy fraction of the NP's cores over the run.
func (s QueueStats) Utilization(cores int) float64 {
	if s.Cycles == 0 || cores == 0 {
		return 0
	}
	return float64(s.ServiceCycles) / (float64(s.Cycles) * float64(cores))
}

// Run feeds n generated packets through the queue.
func (q *QueueSim) Run(n int, gen func() []byte) (QueueStats, error) {
	var st QueueStats
	if q.Capacity < 1 {
		return st, fmt.Errorf("%w (got %d)", ErrQueueCapacity, q.Capacity)
	}
	if q.MeanInterArrival <= 0 {
		return st, fmt.Errorf("%w (got %g)", ErrQueueInterArrival, q.MeanInterArrival)
	}
	rng := rand.New(rand.NewSource(q.Seed))
	cores := q.NP.Cores()
	busyUntil := make([]uint64, cores)
	var queue [][]byte
	var clock uint64
	nextArrival := uint64(0)
	arrivals := 0
	var queueAreaCycles float64
	lastClock := uint64(0)

	draw := func() uint64 {
		// Exponential inter-arrival, floored at 1 cycle.
		d := rng.ExpFloat64() * q.MeanInterArrival
		if d < 1 {
			d = 1
		}
		return uint64(d)
	}

	for arrivals < n || len(queue) > 0 || anyBusy(busyUntil, clock) {
		// Advance virtual time to the next event.
		next := ^uint64(0)
		if arrivals < n && nextArrival < next {
			next = nextArrival
		}
		for _, b := range busyUntil {
			if b > clock && b < next {
				next = b
			}
		}
		// A free available core with a queued packet is an immediate
		// event. Quarantined cores don't count — otherwise a wedged NP
		// would spin the clock in place.
		if len(queue) > 0 {
			for c, b := range busyUntil {
				if b <= clock && q.NP.slots[c].available() {
					next = clock
					break
				}
			}
		}
		if next == ^uint64(0) {
			break
		}
		queueAreaCycles += float64(len(queue)) * float64(next-lastClock)
		lastClock = next
		clock = next

		// Arrival.
		if arrivals < n && clock >= nextArrival {
			pkt := gen()
			arrivals++
			st.Arrived++
			if len(queue) >= q.Capacity {
				st.TailDrops++
			} else {
				queue = append(queue, pkt)
				if len(queue) > st.MaxQueue {
					st.MaxQueue = len(queue)
				}
			}
			nextArrival = clock + draw()
		}

		// Dispatch to every free available core.
		for c := 0; c < cores && len(queue) > 0; c++ {
			if busyUntil[c] > clock || !q.NP.slots[c].available() {
				continue
			}
			pkt := queue[0]
			queue = queue[1:]
			res, err := q.NP.ProcessOn(c, pkt, len(queue))
			if err != nil {
				return st, err
			}
			st.Processed++
			st.ServiceCycles += res.Cycles
			busyUntil[c] = clock + res.Cycles
			switch {
			case res.Verdict == 1 && !res.Detected && !res.Faulted:
				st.Forwarded++
				if len(res.Packet) > 1 && res.Packet[1]&0x3 == 0x3 {
					st.ECNMarked++
				}
			default:
				st.AppDrops++
			}
		}

		// Graceful degradation's worst case: every core quarantined. The
		// backlog can never drain, so it is shed at the queue — counted,
		// not lost — and the run finishes once arrivals stop.
		if len(queue) > 0 && q.NP.AvailableCores() == 0 {
			st.StarvedDrops += len(queue)
			st.TailDrops += len(queue)
			queue = queue[:0]
		}
	}
	st.Cycles = clock
	for c := 0; c < cores; c++ {
		if q.NP.slots[c].sup.quarantined {
			st.QuarantinedCores++
		}
	}
	if clock > 0 {
		st.AvgQueue = queueAreaCycles / float64(clock)
	}
	return st, nil
}

func anyBusy(busy []uint64, clock uint64) bool {
	for _, b := range busy {
		if b > clock {
			return true
		}
	}
	return false
}
