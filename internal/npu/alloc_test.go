package npu

import (
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/packet"
)

// The tentpole guarantee: the steady-state packet path — dispatch, core
// reset, per-instruction hashing and monitoring, output read-back, stats —
// performs zero heap allocations per packet. The supervisor is enabled
// here deliberately: health tracking rides the same path and must not
// cost an allocation (its sliding window is a preallocated ring).

func allocNP(t *testing.T, cores int, reference bool) *NP {
	t.Helper()
	np, err := New(Config{
		Cores:           cores,
		MonitorsEnabled: true,
		Reference:       reference,
		Supervisor:      DefaultSupervisorConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	bin, g := makeBundle(t, apps.IPv4CM(), 0xA110C)
	if err := np.InstallAll("ipv4cm", bin, g, 0xA110C); err != nil {
		t.Fatal(err)
	}
	return np
}

func TestProcessOnZeroAllocs(t *testing.T) {
	np := allocNP(t, 1, false)
	gen := packet.NewGenerator(31)
	gen.OptionWords = 2
	pkts := make([][]byte, 32)
	for i := range pkts {
		pkts[i] = gen.Next()
	}
	// Warm up: populate the hash cache and size the output buffer.
	for _, p := range pkts {
		if _, err := np.ProcessOn(0, p, 0); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := np.ProcessOn(0, pkts[i%len(pkts)], 0); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state ProcessOn allocates %.2f objects/packet, want 0", allocs)
	}
}

// TestProcessBatchAmortizedAllocs: the batch path reuses its arena, offsets
// and delta scratch, so per-packet allocations amortize to (almost)
// nothing; what remains is the returned results slice and the per-batch
// goroutine bookkeeping.
func TestProcessBatchAmortizedAllocs(t *testing.T) {
	np := allocNP(t, 4, false)
	gen := packet.NewGenerator(32)
	gen.OptionWords = 1
	pkts := make([][]byte, 512)
	for i := range pkts {
		pkts[i] = gen.Next()
	}
	if _, err := np.ProcessBatch(pkts, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := np.ProcessBatch(pkts, 0); err != nil {
			t.Fatal(err)
		}
	})
	perPacket := allocs / float64(len(pkts))
	if perPacket > 0.1 {
		t.Fatalf("batch path allocates %.3f objects/packet (%.0f/batch), want <= 0.1", perPacket, allocs)
	}
}
