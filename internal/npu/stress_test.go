package npu

import (
	"encoding/binary"
	"testing"

	"sdmmon/internal/packet"
)

// TestProcessBatchStress drives thousands of packets through the
// goroutine-per-core batch path (run under `make test-race`) and asserts
// the two batch invariants:
//
//  1. Result-order preservation: results[i] is the fate of pkts[i]. Each
//     packet carries a unique ID in its payload tail, which ipv4cm never
//     touches, so the ID must survive into the matching result slot.
//  2. Stats conservation: every packet is counted exactly once and
//     Processed == Forwarded + Dropped.
func TestProcessBatchStress(t *testing.T) {
	const cores = 4
	n := 4000
	batches := 3
	if testing.Short() {
		n, batches = 800, 2
	}
	np := queuedNP(t, cores)
	atk := attackSmash(t)
	gen := packet.NewGenerator(64)
	gen.OptionWords = 1
	gen.MinPayload, gen.MaxPayload = 16, 64

	var wantProcessed uint64
	for batch := 0; batch < batches; batch++ {
		pkts := make([][]byte, n)
		ids := make([]uint32, n)
		for i := range pkts {
			if i%97 == 96 {
				// Interleave attack packets: they alarm, drop, and must
				// not disturb ordering or counting of their neighbours.
				pkts[i] = atk
				continue
			}
			p := gen.Next()
			id := uint32(batch)<<16 | uint32(i)
			binary.BigEndian.PutUint32(p[len(p)-4:], id)
			pkts[i] = p
			ids[i] = id
		}
		results, err := np.ProcessBatch(pkts, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != n {
			t.Fatalf("batch %d: %d results", batch, len(results))
		}
		for i, r := range results {
			if pkts[i] == nil || i%97 == 96 {
				if !r.Detected && !r.Faulted {
					t.Fatalf("batch %d packet %d: attack neither detected nor faulted: %+v", batch, i, r)
				}
				continue
			}
			if r.Core < 0 || r.Core >= cores {
				t.Fatalf("batch %d packet %d: core %d", batch, i, r.Core)
			}
			if len(r.Packet) != len(pkts[i]) {
				t.Fatalf("batch %d packet %d: %d output bytes for %d input", batch, i, len(r.Packet), len(pkts[i]))
			}
			if got := binary.BigEndian.Uint32(r.Packet[len(r.Packet)-4:]); got != ids[i] {
				t.Fatalf("batch %d: result %d carries ID %#x, want %#x — order not preserved", batch, i, got, ids[i])
			}
		}
		wantProcessed += uint64(n)
	}
	s := np.Stats()
	if s.Processed != wantProcessed {
		t.Errorf("processed %d packets, want %d", s.Processed, wantProcessed)
	}
	if s.Processed != s.Forwarded+s.Dropped {
		t.Errorf("stats conservation violated: Processed=%d Forwarded=%d Dropped=%d",
			s.Processed, s.Forwarded, s.Dropped)
	}
	if s.Alarms == 0 {
		t.Error("no alarms despite interleaved attacks")
	}
	// Per-core monitor counters are consistent with the aggregate.
	var monAlarms uint64
	for c := 0; c < cores; c++ {
		_, alarms, _, err := np.MonitorStats(c)
		if err != nil {
			t.Fatal(err)
		}
		monAlarms += alarms
	}
	if monAlarms != s.Alarms {
		t.Errorf("monitor alarms %d != aggregate %d", monAlarms, s.Alarms)
	}
}
