package npu

import (
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/attack"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
	"sdmmon/internal/packet"
)

// makeBundle assembles an app and extracts its graph under param.
func makeBundle(t *testing.T, app *apps.App, param uint32) (binary, graph []byte) {
	t.Helper()
	prog, err := app.Program()
	if err != nil {
		t.Fatal(err)
	}
	h := mhash.NewMerkle(param)
	g, err := monitor.Extract(prog, h)
	if err != nil {
		t.Fatal(err)
	}
	return prog.Serialize(), g.Serialize()
}

func newNP(t *testing.T, cores int, monitors bool) *NP {
	t.Helper()
	np, err := New(Config{Cores: cores, MonitorsEnabled: monitors})
	if err != nil {
		t.Fatal(err)
	}
	return np
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Cores: 0}); err == nil {
		t.Error("0 cores accepted")
	}
}

func TestInstallAndProcess(t *testing.T) {
	np := newNP(t, 2, true)
	bin, g := makeBundle(t, apps.IPv4CM(), 0x1234)
	if err := np.InstallAll("ipv4cm", bin, g, 0x1234); err != nil {
		t.Fatal(err)
	}
	gen := packet.NewGenerator(1)
	for i := 0; i < 50; i++ {
		res, err := np.Process(gen.Next(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected || res.Faulted {
			t.Fatalf("packet %d: detected=%v faulted=%v", i, res.Detected, res.Faulted)
		}
	}
	s := np.Stats()
	if s.Processed != 50 || s.Forwarded != 50 || s.Alarms != 0 {
		t.Errorf("stats = %+v", s)
	}
	if name, ok := np.AppOn(0); !ok || name != "ipv4cm" {
		t.Errorf("AppOn = %q, %v", name, ok)
	}
}

func TestRoundRobinDispatch(t *testing.T) {
	np := newNP(t, 3, true)
	bin, g := makeBundle(t, apps.Counter(), 0x77)
	if err := np.InstallAll("counter", bin, g, 0x77); err != nil {
		t.Fatal(err)
	}
	gen := packet.NewGenerator(2)
	seen := map[int]int{}
	for i := 0; i < 9; i++ {
		res, err := np.Process(gen.Next(), 0)
		if err != nil {
			t.Fatal(err)
		}
		seen[res.Core]++
	}
	for c := 0; c < 3; c++ {
		if seen[c] != 3 {
			t.Errorf("core %d got %d packets, want 3 (%v)", c, seen[c], seen)
		}
	}
}

func TestInstallValidatesBundle(t *testing.T) {
	np := newNP(t, 1, true)
	bin, g := makeBundle(t, apps.IPv4CM(), 5)
	// Wrong parameter: graph hashes will not match.
	if err := np.Install(0, "x", bin, g, 6); err == nil {
		t.Error("mismatched parameter accepted")
	}
	if err := np.Install(0, "x", []byte("junk"), g, 5); err == nil {
		t.Error("junk binary accepted")
	}
	if err := np.Install(0, "x", bin, []byte("junk"), 5); err == nil {
		t.Error("junk graph accepted")
	}
	if err := np.Install(5, "x", bin, g, 5); err == nil {
		t.Error("core out of range accepted")
	}
}

func TestProcessWithoutInstall(t *testing.T) {
	np := newNP(t, 1, true)
	if _, err := np.Process([]byte{1, 2, 3}, 0); err == nil {
		t.Error("process without app accepted")
	}
	if _, err := np.ProcessOn(0, []byte{1}, 0); err == nil {
		t.Error("ProcessOn unloaded core accepted")
	}
	if _, err := np.Scratch(0, 0, 4); err == nil {
		t.Error("Scratch on unloaded core accepted")
	}
	if _, _, _, err := np.MonitorStats(0); err == nil {
		t.Error("MonitorStats on unloaded core accepted")
	}
}

func TestAttackDetectedAndRecovered(t *testing.T) {
	np := newNP(t, 2, true)
	bin, g := makeBundle(t, apps.IPv4CM(), 0xFACE)
	if err := np.InstallAll("ipv4cm", bin, g, 0xFACE); err != nil {
		t.Fatal(err)
	}
	smash := attack.DefaultSmash()
	code, err := smash.HijackPayload()
	if err != nil {
		t.Fatal(err)
	}
	atk, err := smash.CraftPacket(code)
	if err != nil {
		t.Fatal(err)
	}
	res, err := np.Process(atk, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatal("attack not detected")
	}
	if res.Verdict != apps.VerdictDrop {
		t.Error("detected attack not dropped")
	}
	// Recovery: the same core keeps processing benign traffic afterwards.
	gen := packet.NewGenerator(3)
	for i := 0; i < 20; i++ {
		res, err := np.Process(gen.Next(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected {
			t.Fatalf("false alarm after recovery at packet %d", i)
		}
	}
	s := np.Stats()
	if s.Alarms != 1 {
		t.Errorf("alarms = %d, want 1", s.Alarms)
	}
	if _, alarms, _, err := np.MonitorStats(res.Core); err != nil || alarms > 1 {
		t.Errorf("monitor stats: alarms=%d err=%v", alarms, err)
	}
}

func TestUnmonitoredNPIsHijacked(t *testing.T) {
	// The baseline of the security argument: without monitors the same
	// packet owns the core.
	np := newNP(t, 1, false)
	bin, g := makeBundle(t, apps.IPv4CM(), 0xFACE)
	if err := np.InstallAll("ipv4cm", bin, g, 0xFACE); err != nil {
		t.Fatal(err)
	}
	smash := attack.DefaultSmash()
	code, err := smash.HijackPayload()
	if err != nil {
		t.Fatal(err)
	}
	atk, err := smash.CraftPacket(code)
	if err != nil {
		t.Fatal(err)
	}
	res, err := np.Process(atk, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected {
		t.Fatal("monitors disabled but attack detected")
	}
	if !attack.Succeeded(toPacketResult(res)) {
		t.Fatalf("hijack should succeed unmonitored: verdict=%d", res.Verdict)
	}
}

func toPacketResult(r Result) apps.PacketResult {
	return apps.PacketResult{Verdict: r.Verdict, Packet: r.Packet}
}

func TestPerCoreInstallDifferentApps(t *testing.T) {
	np := newNP(t, 2, true)
	binA, gA := makeBundle(t, apps.UDPEcho(), 1)
	binB, gB := makeBundle(t, apps.Counter(), 2)
	if err := np.Install(0, "udpecho", binA, gA, 1); err != nil {
		t.Fatal(err)
	}
	if err := np.Install(1, "counter", binB, gB, 2); err != nil {
		t.Fatal(err)
	}
	gen := packet.NewGenerator(4)
	pkt := gen.Next()
	if _, err := np.ProcessOn(0, pkt, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := np.ProcessOn(1, pkt, 0); err != nil {
		t.Fatal(err)
	}
	if a, _ := np.AppOn(0); a != "udpecho" {
		t.Errorf("core 0 app = %s", a)
	}
	if a, _ := np.AppOn(1); a != "counter" {
		t.Errorf("core 1 app = %s", a)
	}
}

func TestReinstallReplacesApp(t *testing.T) {
	// The "Dynamics" requirement: cores are reprogrammed at runtime.
	np := newNP(t, 1, true)
	binA, gA := makeBundle(t, apps.IPv4CM(), 10)
	if err := np.Install(0, "ipv4cm", binA, gA, 10); err != nil {
		t.Fatal(err)
	}
	gen := packet.NewGenerator(5)
	if _, err := np.Process(gen.Next(), 0); err != nil {
		t.Fatal(err)
	}
	binB, gB := makeBundle(t, apps.UDPEcho(), 11)
	if err := np.Install(0, "udpecho", binB, gB, 11); err != nil {
		t.Fatal(err)
	}
	res, err := np.Process(gen.Next(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected {
		t.Error("false alarm after reinstallation")
	}
	if a, _ := np.AppOn(0); a != "udpecho" {
		t.Errorf("app after reinstall = %s", a)
	}
}
