package npu

import (
	"errors"
	"fmt"

	"sdmmon/internal/obs"
)

// Live upgrades (DESIGN.md §10): the paper's secure dynamic installation
// (§3) pushes new bundles to routers that are already serving traffic, but a
// destructive Install replaces the live slot in place — one bad byte and the
// core is down until a good bundle arrives. The two-phase path separates the
// expensive, fallible work from the cutover: StageInstall deserializes,
// packs, and self-checks the new bundle into a shadow slot while the old
// bundle keeps forwarding packets; Commit swaps the shadow in at a packet
// boundary (the per-core lock drains the in-flight packet, so no packet ever
// sees mixed binary/monitor/hasher state) and retains the displaced version;
// Rollback swaps the retained version back just as atomically. Abort throws
// a staged bundle away without touching the live slot.

// Upgrade lifecycle errors.
var (
	// ErrNothingStaged: Commit was called with no staged bundle on the core.
	ErrNothingStaged = errors.New("npu: nothing staged")
	// ErrNothingRetained: Rollback was called but the core has no retained
	// previous version (never committed, or freshly installed).
	ErrNothingRetained = errors.New("npu: no retained version to roll back to")
)

// commitCycles is the simulated cost of one core's atomic cutover: the
// staged image is already resident (program memory, monitor bank, hash
// parameter all loaded at staging time), so the commit is a bank select plus
// the fixed core reset sequence — the same constant the resident-application
// Switch path charges.
const commitCycles = 64

// StageInstall prepares a bundle into a core's shadow slot: deserialize the
// binary and graph, compile the packed monitor, build the hash unit, and run
// the graph/binary self-check — all without touching the live slot, which
// keeps serving packets. A later StageInstall replaces the staged bundle; a
// quarantined core may stage (that is how it gets healed) but stays out of
// dispatch until the commit re-introduces it on probation.
func (np *NP) StageInstall(coreID int, name string, binary, graph []byte, param uint32) error {
	if coreID < 0 || coreID >= len(np.slots) {
		return fmt.Errorf("npu: core %d out of range", coreID)
	}
	p, err := np.prepare(name, binary, graph, param)
	if err != nil {
		return err
	}
	slot := np.slots[coreID]
	slot.mu.Lock()
	slot.staged = p
	slot.mu.Unlock()
	slot.ring.Emit(obs.EvStage, 0, 0)
	np.mStages.Inc()
	return nil
}

// StageInstallAll stages the same bundle on every core. Preparation happens
// for every core before any shadow slot is written, so a failure leaves all
// cores exactly as they were.
func (np *NP) StageInstallAll(name string, binary, graph []byte, param uint32) error {
	prepared := make([]*preparedApp, len(np.slots))
	for i := range np.slots {
		p, err := np.prepare(name, binary, graph, param)
		if err != nil {
			return err
		}
		prepared[i] = p
	}
	for i, slot := range np.slots {
		slot.mu.Lock()
		slot.staged = prepared[i]
		slot.mu.Unlock()
		slot.ring.Emit(obs.EvStage, 0, 0)
		np.mStages.Inc()
	}
	return nil
}

// Commit cuts one core over to its staged bundle at a packet boundary: the
// per-core lock waits for the in-flight packet (if any) to retire, the
// staged image becomes live, and the displaced image is retained for
// Rollback. A quarantined core re-enters dispatch on probation, exactly like
// a destructive re-install. Returns the simulated cutover cost in core
// cycles. Safe to call while ProcessBatch is running.
func (np *NP) Commit(coreID int) (uint64, error) {
	if coreID < 0 || coreID >= len(np.slots) {
		return 0, fmt.Errorf("npu: core %d out of range", coreID)
	}
	slot := np.slots[coreID]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if slot.staged == nil {
		return 0, fmt.Errorf("npu: core %d: %w", coreID, ErrNothingStaged)
	}
	if slot.loaded {
		slot.prev = slot.liveImage()
	}
	slot.setLive(slot.staged)
	slot.staged = nil
	slot.sup.onInstall()
	slot.ring.Emit(obs.EvCommit, 0, commitCycles)
	np.mCommits.Inc()
	return commitCycles, nil
}

// CommitAll commits every core, all-or-nothing: if any core has nothing
// staged, no core is cut over. Cores commit one at a time, each at its own
// packet boundary — the data plane never pauses fleet-wide, and a packet in
// flight on core 1 while core 0 commits still sees a consistent (old or new,
// never mixed) image on whichever core runs it.
func (np *NP) CommitAll() (uint64, error) {
	for i, slot := range np.slots {
		slot.mu.Lock()
		staged := slot.staged != nil
		slot.mu.Unlock()
		if !staged {
			return 0, fmt.Errorf("npu: core %d: %w", i, ErrNothingStaged)
		}
	}
	var cycles uint64
	for i := range np.slots {
		c, err := np.Commit(i)
		if err != nil {
			return cycles, err
		}
		cycles += c
	}
	return cycles, nil
}

// AbortStaged discards a core's staged bundle (no-op if nothing is staged).
// The live slot is untouched.
func (np *NP) AbortStaged(coreID int) error {
	if coreID < 0 || coreID >= len(np.slots) {
		return fmt.Errorf("npu: core %d out of range", coreID)
	}
	slot := np.slots[coreID]
	slot.mu.Lock()
	hadStaged := slot.staged != nil
	slot.staged = nil
	slot.mu.Unlock()
	if hadStaged {
		slot.ring.Emit(obs.EvAbort, 0, 0)
		np.mAborts.Inc()
	}
	return nil
}

// AbortAllStaged discards every core's staged bundle.
func (np *NP) AbortAllStaged() {
	for i := range np.slots {
		_ = np.AbortStaged(i)
	}
}

// Rollback restores a core's retained previous version at a packet boundary,
// swapping it with the current live image (so a roll-forward is possible by
// rolling back again). The retained image keeps its scratch memory — the
// hardware model is a bank switch, not a reload. The core returns to
// dispatch on probation if it was quarantined. Returns the simulated cutover
// cost in cycles.
func (np *NP) Rollback(coreID int) (uint64, error) {
	if coreID < 0 || coreID >= len(np.slots) {
		return 0, fmt.Errorf("npu: core %d out of range", coreID)
	}
	slot := np.slots[coreID]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if slot.prev == nil {
		return 0, fmt.Errorf("npu: core %d: %w", coreID, ErrNothingRetained)
	}
	displaced := slot.liveImage()
	s := slot.prev
	slot.setLive(s)
	slot.prev = displaced
	slot.sup.onInstall()
	slot.ring.Emit(obs.EvRollback, 0, commitCycles)
	np.mRollbacks.Inc()
	return commitCycles, nil
}

// RollbackAll rolls every core back, all-or-nothing: if any core has no
// retained version, no core is touched.
func (np *NP) RollbackAll() (uint64, error) {
	for i, slot := range np.slots {
		slot.mu.Lock()
		ok := slot.prev != nil
		slot.mu.Unlock()
		if !ok {
			return 0, fmt.Errorf("npu: core %d: %w", i, ErrNothingRetained)
		}
	}
	var cycles uint64
	for i := range np.slots {
		c, err := np.Rollback(i)
		if err != nil {
			return cycles, err
		}
		cycles += c
	}
	return cycles, nil
}

// HasStaged reports whether a core has a staged (uncommitted) bundle.
func (np *NP) HasStaged(coreID int) bool {
	if coreID < 0 || coreID >= len(np.slots) {
		return false
	}
	slot := np.slots[coreID]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	return slot.staged != nil
}

// CanRollback reports whether a core retains a previous version.
func (np *NP) CanRollback(coreID int) bool {
	if coreID < 0 || coreID >= len(np.slots) {
		return false
	}
	slot := np.slots[coreID]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	return slot.prev != nil
}

// StagedApp reports the application name staged on a core, if any.
func (np *NP) StagedApp(coreID int) (string, bool) {
	if coreID < 0 || coreID >= len(np.slots) {
		return "", false
	}
	slot := np.slots[coreID]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if slot.staged == nil {
		return "", false
	}
	return slot.staged.appName, true
}

// RetainedApp reports the application name of a core's retained previous
// version, if any.
func (np *NP) RetainedApp(coreID int) (string, bool) {
	if coreID < 0 || coreID >= len(np.slots) {
		return "", false
	}
	slot := np.slots[coreID]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if slot.prev == nil {
		return "", false
	}
	return slot.prev.appName, true
}
