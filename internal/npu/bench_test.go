package npu

import (
	"path/filepath"
	"testing"
)

// TestInstrumentedOverheadBounded is the acceptance gate for the telemetry
// layer: with a live collector attached, the batch fast path must stay within
// 5% of the bare path's throughput. One wall-clock comparison on a loaded CI
// machine is noise, so each side takes the best of several runs and the
// threshold gets a few full retries before the test gives up.
func TestInstrumentedOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock throughput comparison")
	}
	const (
		packets   = 1 << 15
		threshold = 1.05
		retries   = 4
	)
	shape := ThroughputConfig{Cores: 4, Batch: 256, Packets: packets, Seed: 11}
	best := func(cfg ThroughputConfig) float64 {
		var pps float64
		for i := 0; i < 3; i++ {
			p, err := MeasureThroughput(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if p.PktsPerSec > pps {
				pps = p.PktsPerSec
			}
		}
		return pps
	}
	var overhead float64
	for attempt := 0; attempt < retries; attempt++ {
		bareCfg, instrCfg := shape, shape
		instrCfg.Instrumented = true
		bare := best(bareCfg)
		instr := best(instrCfg)
		if bare <= 0 || instr <= 0 {
			t.Fatalf("degenerate throughput: bare=%v instrumented=%v", bare, instr)
		}
		overhead = bare / instr
		if overhead <= threshold {
			t.Logf("instrumented overhead %.2f%% (bare %.0f pps, instrumented %.0f pps)",
				(overhead-1)*100, bare, instr)
			return
		}
		t.Logf("attempt %d: overhead %.2f%% over the %.0f%% budget, retrying",
			attempt+1, (overhead-1)*100, (threshold-1)*100)
	}
	t.Errorf("instrumented path %.2f%% slower than bare after %d attempts (budget %.0f%%)",
		(overhead-1)*100, retries, (threshold-1)*100)
}

// TestMeasureThroughputInstrumentedPoint checks the sweep-point plumbing: an
// instrumented point is marked as such, keys itself distinctly from the bare
// point of the same shape, and the report derives the overhead ratio.
func TestMeasureThroughputInstrumentedPoint(t *testing.T) {
	cfg := ThroughputConfig{Cores: 2, Batch: 64, Packets: 256, Seed: 3, Instrumented: true}
	p, err := MeasureThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Instrumented {
		t.Error("point not marked instrumented")
	}
	if p.Key() != "cores=2/batch=64/instrumented" {
		t.Errorf("Key() = %q", p.Key())
	}
	if p.bareKey() != "cores=2/batch=64" {
		t.Errorf("bareKey() = %q", p.bareKey())
	}
	if p.Packets != 256 {
		t.Errorf("Packets = %d, want 256", p.Packets)
	}

	bare := p
	bare.Instrumented = false
	bare.PktsPerSec = 2 * p.PktsPerSec // synthetic: bare exactly 2x faster
	rep := NewBenchReport("ipv4cm", "test")
	rep.Add(bare)
	rep.Add(p)
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.Write(out); err != nil {
		t.Fatal(err)
	}
	got := rep.OverheadInstrumented["fast/cores=2/batch=64"]
	if got < 1.99 || got > 2.01 {
		t.Errorf("OverheadInstrumented = %v, want ~2.0", got)
	}
}
