package npu

// Protection-domain tests: partition validation, the domain-gated install
// path (cross-tenant installs must be refused), per-domain statistics,
// domain-restricted batch drains, and the per-instance metric namespace
// (two NPs on one collector keep disjoint series).

import (
	"errors"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/obs"
	"sdmmon/internal/packet"
)

func domainNP(t *testing.T, cores int) *NP {
	t.Helper()
	np := newNP(t, cores, true)
	bin, g := makeBundle(t, apps.IPv4CM(), 0xD0)
	if err := np.InstallAll("ipv4cm", bin, g, 0xD0); err != nil {
		t.Fatal(err)
	}
	return np
}

func TestSetDomainsValidation(t *testing.T) {
	np := domainNP(t, 4)
	bad := [][]DomainSpec{
		{{Name: "", Cores: []int{0}}},
		{{Name: "a", Cores: []int{0}}, {Name: "a", Cores: []int{1}}},
		{{Name: "a", Cores: nil}},
		{{Name: "a", Cores: []int{4}}},
		{{Name: "a", Cores: []int{0}}, {Name: "b", Cores: []int{0}}},
	}
	for i, specs := range bad {
		if err := np.SetDomains(specs); err == nil {
			t.Errorf("case %d: SetDomains accepted an invalid partition", i)
		}
	}
	// A failed SetDomains must leave the previous (root-only) partition.
	if got := np.Domains(); len(got) != 1 || got[0] != "" {
		t.Errorf("failed SetDomains mutated the partition: %v", got)
	}

	if err := np.SetDomains([]DomainSpec{
		{Name: "a", Cores: []int{0, 1}},
		{Name: "b", Cores: []int{3}},
	}); err != nil {
		t.Fatal(err)
	}
	if d, _ := np.DomainOf(2); d != "" {
		t.Errorf("unlisted core 2 in domain %q, want root", d)
	}
	if d, _ := np.DomainOf(3); d != "b" {
		t.Errorf("core 3 in domain %q, want b", d)
	}
	cores, err := np.DomainCores("a")
	if err != nil || len(cores) != 2 || cores[0] != 0 || cores[1] != 1 {
		t.Errorf("DomainCores(a) = %v, %v", cores, err)
	}
	if _, err := np.DomainCores("ghost"); !errors.Is(err, ErrUnknownDomain) {
		t.Errorf("unknown domain error = %v", err)
	}
}

// TestCrossDomainInstallRefused is the tentpole's access-control
// acceptance check: no install, stage, commit, rollback, or quarantine
// addressed through one domain may reach a core another domain owns — and
// the refusal is ErrDomainViolation with no state change.
func TestCrossDomainInstallRefused(t *testing.T) {
	np := domainNP(t, 4)
	if err := np.SetDomains([]DomainSpec{
		{Name: "a", Cores: []int{0, 1}},
		{Name: "b", Cores: []int{2, 3}},
	}); err != nil {
		t.Fatal(err)
	}
	bin, g := makeBundle(t, apps.UDPEcho(), 0xE0)

	if err := np.InstallDomain("a", 2, "udpecho", bin, g, 0xE0); !errors.Is(err, ErrDomainViolation) {
		t.Errorf("InstallDomain onto b's core: %v, want ErrDomainViolation", err)
	}
	if err := np.StageInstallDomain("a", 3, "udpecho", bin, g, 0xE0); !errors.Is(err, ErrDomainViolation) {
		t.Errorf("StageInstallDomain onto b's core: %v, want ErrDomainViolation", err)
	}
	if _, err := np.CommitDomain("a", 2); !errors.Is(err, ErrDomainViolation) {
		t.Errorf("CommitDomain onto b's core: %v, want ErrDomainViolation", err)
	}
	if _, err := np.RollbackDomain("a", 2); !errors.Is(err, ErrDomainViolation) {
		t.Errorf("RollbackDomain onto b's core: %v, want ErrDomainViolation", err)
	}
	if err := np.QuarantineDomain("a", 2); !errors.Is(err, ErrDomainViolation) {
		t.Errorf("QuarantineDomain onto b's core: %v, want ErrDomainViolation", err)
	}
	if err := np.InstallDomain("ghost", 0, "udpecho", bin, g, 0xE0); !errors.Is(err, ErrUnknownDomain) {
		t.Errorf("unknown domain install: %v, want ErrUnknownDomain", err)
	}
	// b's cores are untouched by all of the above.
	for _, core := range []int{2, 3} {
		if name, ok := np.AppOn(core); !ok || name != "ipv4cm" {
			t.Errorf("core %d app = %q, %v after refused cross-domain calls", core, name, ok)
		}
	}

	// The domain-wide install lands on exactly the domain's cores.
	if err := np.InstallDomainAll("a", "udpecho", bin, g, 0xE0); err != nil {
		t.Fatal(err)
	}
	for core := 0; core < 4; core++ {
		want := "ipv4cm"
		if core < 2 {
			want = "udpecho"
		}
		if name, _ := np.AppOn(core); name != want {
			t.Errorf("core %d runs %q after InstallDomainAll(a), want %q", core, name, want)
		}
	}
}

// TestDomainStagedCommitRollback drives the two-phase upgrade through the
// domain-gated entry points and checks the all-or-nothing guard.
func TestDomainStagedCommitRollback(t *testing.T) {
	np := domainNP(t, 4)
	if err := np.SetDomains([]DomainSpec{
		{Name: "a", Cores: []int{0, 1}},
		{Name: "b", Cores: []int{2, 3}},
	}); err != nil {
		t.Fatal(err)
	}
	bin, g := makeBundle(t, apps.UDPEcho(), 0xE1)

	// Nothing staged anywhere: the domain-wide commit must refuse.
	if _, err := np.CommitDomainAll("a"); !errors.Is(err, ErrNothingStaged) {
		t.Fatalf("CommitDomainAll with nothing staged: %v", err)
	}
	if err := np.StageInstallDomainAll("a", "udpecho", bin, g, 0xE1); err != nil {
		t.Fatal(err)
	}
	// b has nothing staged; a's staging must not be visible to b's commit.
	if _, err := np.CommitDomainAll("b"); !errors.Is(err, ErrNothingStaged) {
		t.Fatalf("CommitDomainAll(b) saw a's staged bundles: %v", err)
	}
	if _, err := np.CommitDomainAll("a"); err != nil {
		t.Fatal(err)
	}
	for core := 0; core < 4; core++ {
		want := "ipv4cm"
		if core < 2 {
			want = "udpecho"
		}
		if name, _ := np.AppOn(core); name != want {
			t.Errorf("core %d runs %q after CommitDomainAll(a), want %q", core, name, want)
		}
	}
	if _, err := np.RollbackDomainAll("a"); err != nil {
		t.Fatal(err)
	}
	for core := 0; core < 2; core++ {
		if name, _ := np.AppOn(core); name != "ipv4cm" {
			t.Errorf("core %d runs %q after RollbackDomainAll(a), want ipv4cm", core, name)
		}
	}
	if _, err := np.RollbackDomainAll("b"); !errors.Is(err, ErrNothingRetained) {
		t.Errorf("RollbackDomainAll(b) with nothing retained: %v", err)
	}
}

// TestDomainRestrictedBatchAndStats: DrainBatchDomain runs only on the
// domain's cores, per-domain stat accounts partition the NP aggregate, and
// a fully-quarantined domain reports ErrNoCoreAvailable while its
// neighbors stay healthy.
func TestDomainRestrictedBatchAndStats(t *testing.T) {
	np := domainNP(t, 4)
	if err := np.SetDomains([]DomainSpec{
		{Name: "a", Cores: []int{0, 1}},
		{Name: "b", Cores: []int{2, 3}},
	}); err != nil {
		t.Fatal(err)
	}
	gen := packet.NewGenerator(7)
	batch := make([][]byte, 40)
	for i := range batch {
		batch[i] = gen.Next()
	}

	out, err := np.DrainBatchDomain("a", batch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Processed != 40 || out.Unprocessed != 0 {
		t.Fatalf("domain a drain: %+v", out)
	}
	sa, err := np.StatsDomain("a")
	if err != nil {
		t.Fatal(err)
	}
	sb, err := np.StatsDomain("b")
	if err != nil {
		t.Fatal(err)
	}
	if sa.Processed != 40 {
		t.Errorf("domain a processed %d, want 40", sa.Processed)
	}
	if sb.Processed != 0 {
		t.Errorf("domain b processed %d packets of a's traffic", sb.Processed)
	}
	if agg := np.Stats(); agg.Processed != 40 {
		t.Errorf("aggregate processed %d, want 40", agg.Processed)
	}

	// Wedge domain a; b keeps draining, a reports no cores.
	for _, core := range []int{0, 1} {
		if err := np.QuarantineDomain("a", core); err != nil {
			t.Fatal(err)
		}
	}
	if np.HealthyDomain("a") {
		t.Error("domain a healthy with both cores quarantined")
	}
	if !np.HealthyDomain("b") {
		t.Error("domain b lost health to a's quarantine")
	}
	if n, _ := np.AvailableCoresDomain("b"); n != 2 {
		t.Errorf("domain b has %d available cores, want 2", n)
	}
	if _, err := np.DrainBatchDomain("a", batch, 0); !errors.Is(err, ErrNoCoreAvailable) {
		t.Errorf("drain on wedged domain: %v, want ErrNoCoreAvailable", err)
	}
	if out, err := np.DrainBatchDomain("b", batch, 0); err != nil || out.Processed != 40 {
		t.Errorf("domain b drain after a wedged: %+v, %v", out, err)
	}
	if _, err := np.DrainBatchDomain("ghost", batch, 0); !errors.Is(err, ErrUnknownDomain) {
		t.Errorf("drain on unknown domain: %v", err)
	}
	if np.HealthyDomain("ghost") {
		t.Error("unknown domain reported healthy")
	}
}

// TestInstanceLabelsKeepSeriesDisjoint pins the metric-collision bug: two
// NPs sharing one obs.Collector used to write the same np_* and
// np_packet_cycles{core="N"} series. With distinct Config.Instance values
// every series carries an np="…" label, and traffic on one NP moves only
// its own series.
func TestInstanceLabelsKeepSeriesDisjoint(t *testing.T) {
	col := obs.New(64)
	mk := func(instance string) *NP {
		np, err := New(Config{Cores: 2, MonitorsEnabled: true, Obs: col, Instance: instance})
		if err != nil {
			t.Fatal(err)
		}
		bin, g := makeBundle(t, apps.IPv4CM(), 0xC0)
		if err := np.InstallAll("ipv4cm", bin, g, 0xC0); err != nil {
			t.Fatal(err)
		}
		return np
	}
	np0, np1 := mk("lc0"), mk("lc1")
	if np0.Instance() != "lc0" || np1.Instance() != "lc1" {
		t.Fatal("Instance() does not echo the config")
	}

	gen := packet.NewGenerator(3)
	for i := 0; i < 20; i++ {
		if _, err := np0.Process(gen.Next(), 0); err != nil {
			t.Fatal(err)
		}
	}

	snap := col.Registry().Snapshot()
	name0 := obs.Labeled("np_packets_processed_total", "np", "lc0")
	name1 := obs.Labeled("np_packets_processed_total", "np", "lc1")
	if got := snap.Counters[name0]; got != 20 {
		t.Errorf("%s = %d, want 20", name0, got)
	}
	if got := snap.Counters[name1]; got != 0 {
		t.Errorf("%s = %d after traffic on lc0 only, want 0", name1, got)
	}
	if _, ok := snap.Counters["np_packets_processed_total"]; ok {
		t.Error("bare (unlabeled) series present despite Instance being set")
	}
	// The per-core cycle histograms are disjoint too: installs on both NPs
	// register both series, but only lc0's accumulated observations.
	h0 := snap.Histograms[obs.Labeled("np_packet_cycles", "np", "lc0", "core", "0")]
	h1 := snap.Histograms[obs.Labeled("np_packet_cycles", "np", "lc1", "core", "0")]
	if h0.Count == 0 {
		t.Error("lc0 core-0 cycle histogram never observed")
	}
	if h1.Count != 0 {
		t.Errorf("lc1 core-0 cycle histogram observed %d packets of lc0's traffic", h1.Count)
	}

	// The byte-identical form of the same assertion, on the full slice.
	before := snap.FilterLabel("np", "lc1")
	for i := 0; i < 20; i++ {
		if _, err := np0.Process(gen.Next(), 0); err != nil {
			t.Fatal(err)
		}
	}
	after := col.Registry().Snapshot().FilterLabel("np", "lc1")
	if !snapshotsEqual(t, before, after) {
		t.Error("lc1's labeled slice moved under lc0's traffic")
	}
}

func snapshotsEqual(t *testing.T, a, b obs.Snapshot) bool {
	t.Helper()
	ja, err := a.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	return string(ja) == string(jb)
}

// TestDomainStatsFollowShardDrain: the domain account and the root
// aggregate stay consistent under the same batch engine the shard plane
// uses, including the reset on repartition.
func TestDomainStatsRepartitionResets(t *testing.T) {
	np := domainNP(t, 2)
	if err := np.SetDomains([]DomainSpec{{Name: "x", Cores: []int{0, 1}}}); err != nil {
		t.Fatal(err)
	}
	gen := packet.NewGenerator(11)
	batch := make([][]byte, 10)
	for i := range batch {
		batch[i] = gen.Next()
	}
	if _, err := np.DrainBatchDomain("x", batch, 0); err != nil {
		t.Fatal(err)
	}
	if s, _ := np.StatsDomain("x"); s.Processed != 10 {
		t.Fatalf("domain x processed %d, want 10", s.Processed)
	}
	// Repartition: domain accounts reset, the NP aggregate survives.
	if err := np.SetDomains([]DomainSpec{{Name: "y", Cores: []int{0, 1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := np.StatsDomain("x"); !errors.Is(err, ErrUnknownDomain) {
		t.Error("stale domain still resolvable after repartition")
	}
	if s, _ := np.StatsDomain("y"); s.Processed != 0 {
		t.Errorf("fresh domain y inherited %d processed packets", s.Processed)
	}
	if agg := np.Stats(); agg.Processed != 10 {
		t.Errorf("aggregate lost history across repartition: %d", agg.Processed)
	}
}
