package npu

import (
	"strings"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/attack"
	"sdmmon/internal/isa"
	"sdmmon/internal/packet"
)

// Satellite to the resilience tentpole: §2.1's recovery sequence is not
// just "no false alarms afterwards" — it is a full state reset. After the
// E8 stack-smash alarm the stack pointer and PC are back at their reset
// values, the monitor is re-armed, the forensic trace still shows the
// alarm until the next packet claims the core, and a benign packet
// forwards immediately.
func TestStackSmashRecoveryResetsAllState(t *testing.T) {
	np, err := New(Config{Cores: 1, MonitorsEnabled: true, TraceDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	bin, g := makeBundle(t, apps.IPv4CM(), 0xFACE)
	if err := np.InstallAll("ipv4cm", bin, g, 0xFACE); err != nil {
		t.Fatal(err)
	}
	smash := attack.DefaultSmash()
	code, err := smash.HijackPayload()
	if err != nil {
		t.Fatal(err)
	}
	atk, err := smash.CraftPacket(code)
	if err != nil {
		t.Fatal(err)
	}

	res, err := np.ProcessOn(0, atk, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected || res.Verdict != apps.VerdictDrop {
		t.Fatalf("stack smash not detected+dropped: %+v", res)
	}

	slot := np.slots[0]
	// Core state: recovery ran eagerly at the alarm, so the CPU is
	// already back at its reset state — stack pointer cleared, PC at the
	// program entry, no leftover register contents from the hijack.
	c := slot.core.CPU()
	if c.Regs[isa.RegSP] != 0 {
		t.Errorf("stack pointer not reset after alarm: %#x", c.Regs[isa.RegSP])
	}
	if c.PC != slot.core.Program().Entry {
		t.Errorf("PC %#x not at entry %#x after alarm", c.PC, slot.core.Program().Entry)
	}
	for r, v := range c.Regs {
		if v != 0 {
			t.Errorf("register %s not cleared after alarm: %#x", isa.RegName(uint32(r)), v)
		}
	}
	// Monitor state: re-armed (a still-alarmed monitor would flag every
	// subsequent instruction as part of the old attack).
	if slot.mon.Alarmed() {
		t.Error("monitor still alarmed after recovery")
	}
	// Forensic state: the trace of the attack survives until the next
	// packet — this is the window the operator (and npsim -trace) reads.
	dump := np.TraceDump(0, 32)
	if dump == "" || !strings.Contains(dump, "!!") {
		t.Fatalf("forensic trace lost at recovery:\n%s", dump)
	}

	// Continuation: the very next benign packet forwards, and by then the
	// tracer holds only that packet's instructions — no stale attack
	// entries, no Rejected markers.
	benign := packet.NewGenerator(7).Next()
	res, err = np.ProcessOn(0, benign, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected || res.Verdict != apps.VerdictForward {
		t.Fatalf("benign packet after recovery: %+v, want clean forward", res)
	}
	for _, e := range slot.tracer.Last(64) {
		if e.Rejected {
			t.Fatalf("stale attack entry in post-recovery trace: seq %d pc %#x", e.Seq, e.PC)
		}
	}
	if got := slot.tracer.Retired(); got == 0 || got > res.Cycles {
		t.Errorf("tracer retired %d, want only the benign packet's %d instructions", got, res.Cycles)
	}

	// Accounting: one alarm, one drop, one forward, exactly conserved.
	s := np.Stats()
	if s.Alarms != 1 || s.Forwarded != 1 || !s.Conserved() {
		t.Fatalf("recovery accounting wrong: %+v", s)
	}
}
