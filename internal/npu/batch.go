package npu

import (
	"fmt"
	"sync"

	"sdmmon/internal/apps"
)

// ProcessBatch runs a batch of packets across the NP's cores concurrently —
// one goroutine per core, each with its own CPU, memory, hash unit and
// monitor, exactly like the hardware's parallelism. Packets are distributed
// by a shared work channel (packet-level load balancing); results keep
// their input order. Statistics are aggregated once at the end, so the
// per-packet path stays lock-free.
func (np *NP) ProcessBatch(pkts [][]byte, qdepth int) ([]Result, error) {
	loaded := 0
	for _, s := range np.slots {
		if s.loaded {
			loaded++
		}
	}
	if loaded == 0 {
		return nil, fmt.Errorf("npu: no core has an application installed")
	}

	type job struct {
		idx int
		pkt []byte
	}
	// Buffered so producers never gate consumers: the whole batch is
	// enqueued up front and the cores drain it at their own pace.
	jobs := make(chan job, len(pkts))
	results := make([]Result, len(pkts))
	var firstErr error
	var errOnce sync.Once
	var wg sync.WaitGroup

	// Per-core deltas merged into np.stats after the barrier.
	deltas := make([]Stats, len(np.slots))

	for coreID, slot := range np.slots {
		if !slot.loaded {
			continue
		}
		wg.Add(1)
		go func(coreID int, slot *coreSlot) {
			defer wg.Done()
			d := &deltas[coreID]
			for j := range jobs {
				res, err := processOnSlot(slot, coreID, j.pkt, qdepth, np.cfg.MonitorsEnabled, d)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					continue
				}
				results[j.idx] = res
			}
		}(coreID, slot)
	}
	for i, p := range pkts {
		jobs <- job{idx: i, pkt: p}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for _, d := range deltas {
		np.stats.Processed += d.Processed
		np.stats.Forwarded += d.Forwarded
		np.stats.Dropped += d.Dropped
		np.stats.Alarms += d.Alarms
		np.stats.Faults += d.Faults
		np.stats.Cycles += d.Cycles
	}
	return results, nil
}

// processOnSlot is the lock-free per-core packet path shared by ProcessOn
// (via the stats pointer indirection) and ProcessBatch.
func processOnSlot(slot *coreSlot, coreID int, pkt []byte, qdepth int, monitors bool, stats *Stats) (Result, error) {
	if monitors {
		slot.mon.Reset()
	}
	res := slot.core.Process(pkt, qdepth)

	out := Result{Core: coreID, Verdict: res.Verdict, Packet: res.Packet, Cycles: res.Cycles}
	stats.Processed++
	stats.Cycles += res.Cycles
	switch {
	case res.Exc != nil && monitors && slot.mon.Alarmed():
		out.Detected = true
		out.Verdict = apps.VerdictDrop
		stats.Alarms++
		stats.Dropped++
	case res.Exc != nil:
		out.Faulted = true
		out.Verdict = apps.VerdictDrop
		stats.Faults++
		stats.Dropped++
	case res.Verdict == apps.VerdictForward:
		stats.Forwarded++
	default:
		stats.Dropped++
	}
	return out, nil
}
