package npu

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sdmmon/internal/apps"
	"sdmmon/internal/cpu"
	"sdmmon/internal/obs"
)

// ProcessBatch runs a batch of packets across the NP's cores concurrently —
// one goroutine per core, each with its own CPU, memory, hash unit and
// monitor, exactly like the hardware's parallelism. Workers claim packets
// from a shared atomic cursor (packet-level load balancing with no channel
// traffic); results keep their input order: results[i] is the fate of
// pkts[i].
//
// Output bytes are copied into a per-NP arena that is reused across
// batches, so the per-packet path performs no heap allocations in steady
// state; see Result for the lifetime of the Packet slices.
//
// Error semantics: a packet that cannot be processed (e.g. it exceeds the
// packet memory window) leaves its zero-valued Result in place and the
// first such error is returned alongside the full results slice. Statistics
// for every packet that *was* processed are always merged into the NP's
// aggregate stats, error or not — partial work never vanishes from the
// counters.
//
// Concurrent ProcessBatch calls on the same NP serialize on batchMu (the
// scratch arena is single-owner), so a management-plane batch — a rollout
// health sample, say — can run against an NP that a shard worker is
// draining. Result.Packet slices are only valid until the next batch.
func (np *NP) ProcessBatch(pkts [][]byte, qdepth int) ([]Result, error) {
	results, _, _, err := np.processBatch(pkts, qdepth, -1)
	return results, err
}

// processBatch is the shared batch engine: it additionally returns the
// merged stat delta of exactly this batch, which is how DrainBatch
// accounts a batch without a Stats() before/after window that concurrent
// traffic on the same NP would pollute, and the batch's CE-marked forward
// count, which must be tallied while batchMu is still held because the
// results alias the reused arena (a concurrent batch overwrites it the
// moment the lock is released).
//
// domIdx restricts the batch to the cores of one protection domain
// (domain.go); -1 runs on every core. The loaded/available probes count
// only participating cores, so a tenant whose domain is fully quarantined
// sees ErrNoCoreAvailable even while other tenants' cores are healthy.
func (np *NP) processBatch(pkts [][]byte, qdepth int, domIdx int) ([]Result, Stats, uint64, error) {
	np.batchMu.Lock()
	defer np.batchMu.Unlock()
	loaded, available := 0, 0
	for id, s := range np.slots {
		if domIdx >= 0 && np.slotDomain[id] != domIdx {
			continue
		}
		s.mu.Lock()
		if s.loaded {
			loaded++
		}
		if s.available() {
			available++
		}
		s.mu.Unlock()
	}
	if loaded == 0 {
		return nil, Stats{}, 0, ErrNoAppInstalled
	}
	if available == 0 {
		return nil, Stats{}, 0, ErrNoCoreAvailable
	}

	results := make([]Result, len(pkts))

	// Arena sizing: output length equals input length, so the per-result
	// regions are known up front and workers copy into disjoint slices.
	if len(np.offs) < len(pkts)+1 {
		np.offs = make([]int, len(pkts)+1)
	}
	offs := np.offs[:len(pkts)+1]
	offs[0] = 0
	for i, p := range pkts {
		offs[i+1] = offs[i] + len(p)
	}
	total := offs[len(pkts)]
	if cap(np.arena) < total {
		np.arena = make([]byte, total)
	}
	arena := np.arena[:total]

	if len(np.deltas) != len(np.slots) {
		np.deltas = make([]Stats, len(np.slots))
	}
	deltas := np.deltas
	for i := range deltas {
		deltas[i] = Stats{}
	}

	var cursor atomic.Int64
	var firstErr error
	var errOnce sync.Once
	var wg sync.WaitGroup

	// Batch latency is measured only when a collector is attached: the
	// clock reads bracket the fan-out/fan-in, not the per-packet path.
	var batchStart time.Time
	if np.batchLat != nil {
		batchStart = time.Now()
	}

	for coreID, slot := range np.slots {
		if domIdx >= 0 && np.slotDomain[coreID] != domIdx {
			continue
		}
		slot.mu.Lock()
		ok := slot.available()
		slot.mu.Unlock()
		if !ok {
			continue
		}
		wg.Add(1)
		go func(coreID int, slot *coreSlot) {
			defer wg.Done()
			d := &deltas[coreID]
			for {
				// A core quarantined mid-batch stops claiming packets;
				// the shared cursor hands the remainder to the other
				// workers. The slot lock orders this read against
				// concurrent commits/rollbacks (which may lift a
				// quarantine) as well as this worker's own writes.
				slot.mu.Lock()
				q := slot.sup.quarantined
				slot.mu.Unlock()
				if q {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= len(pkts) {
					return
				}
				res, err := processOnSlot(slot, coreID, pkts[i], qdepth, np.cfg.MonitorsEnabled, d)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					continue
				}
				// Copy the aliased core output into this packet's arena
				// region so every result in the batch stays valid at once.
				dst := arena[offs[i]:offs[i+1]]
				copy(dst, res.Packet)
				res.Packet = dst
				results[i] = res
			}
		}(coreID, slot)
	}
	wg.Wait()
	// Merge per-core deltas unconditionally: packets processed before or
	// after an errored one stay visible in the aggregate statistics (and in
	// each core's domain account). The stats mutex is taken once per batch.
	merged := np.mergeDeltas(deltas)
	if np.batchLat != nil {
		np.batchLat.Observe(time.Since(batchStart).Seconds())
	}
	// Every worker quarantined mid-batch: the unclaimed tail was never
	// processed. Claimed packets are always processed before the claim
	// loop re-checks quarantine, so the cursor bounds the loss exactly.
	if n := int(cursor.Load()); n < len(pkts) && firstErr == nil {
		firstErr = fmt.Errorf("npu: %d packets unprocessed: %w", len(pkts)-n, ErrNoCoreAvailable)
	}
	// CE-marked forward count, tallied before batchMu is released: the
	// Packet slices alias the arena, which the next batch reuses.
	var ecnMarked uint64
	for i := range results {
		r := &results[i]
		if r.Verdict == apps.VerdictForward && !r.Detected && !r.Faulted &&
			len(r.Packet) > 1 && r.Packet[1]&0x3 == 0x3 {
			ecnMarked++
		}
	}
	return results, merged, ecnMarked, firstErr
}

// add accumulates d into s.
func (s *Stats) add(d *Stats) {
	s.Processed += d.Processed
	s.Forwarded += d.Forwarded
	s.Dropped += d.Dropped
	s.Alarms += d.Alarms
	s.Faults += d.Faults
	s.WatchdogTrips += d.WatchdogTrips
	s.Quarantines += d.Quarantines
	s.Cycles += d.Cycles
}

// processOnSlot is the per-core packet path shared by ProcessOn (via the
// stats pointer indirection) and ProcessBatch. It holds the slot lock for
// the duration of the packet, so a concurrent Commit/Rollback drains the
// in-flight packet and cuts over at the boundary — no packet ever executes
// against a mixed binary/monitor/hasher image. The lock is per-core and
// uncontended in steady state; the path still performs zero heap
// allocations, and the returned Result.Packet aliases the core's output
// buffer.
func processOnSlot(slot *coreSlot, coreID int, pkt []byte, qdepth int, monitors bool, stats *Stats) (Result, error) {
	if len(pkt) > apps.MemSize-apps.PktBase {
		return Result{}, fmt.Errorf("npu: packet length %d exceeds the %d-byte packet memory window",
			len(pkt), apps.MemSize-apps.PktBase)
	}
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if monitors {
		slot.mon.Reset()
	}
	// Deferred tail of the previous packet's recovery: wipe the forensic
	// trace once the core takes new traffic (the dump stays readable
	// between the alarm and this packet).
	if slot.resetTrace {
		if slot.tracer != nil {
			slot.tracer.Reset()
		}
		slot.resetTrace = false
	}
	res := slot.core.Process(pkt, qdepth)

	out := Result{Core: coreID, Verdict: res.Verdict, Packet: res.Packet, Cycles: res.Cycles}
	stats.Processed++
	stats.Cycles += res.Cycles
	slot.cyc.Observe(float64(res.Cycles))
	event := false
	switch {
	case res.Exc != nil && monitors && slot.mon.Alarmed():
		out.Detected = true
		out.Verdict = apps.VerdictDrop
		stats.Alarms++
		stats.Dropped++
		event = true
		slot.ring.Emit(obs.EvAlarm, slot.mon.AlarmPC(), res.Cycles)
	case res.Exc != nil:
		out.Faulted = true
		out.Verdict = apps.VerdictDrop
		stats.Faults++
		if res.Exc.Kind == cpu.ExcCycleLimit {
			stats.WatchdogTrips++
			slot.ring.Emit(obs.EvWatchdog, 0, res.Cycles)
		} else {
			slot.ring.Emit(obs.EvFault, 0, res.Cycles)
		}
		stats.Dropped++
		event = true
	case res.Verdict == apps.VerdictForward:
		stats.Forwarded++
	default:
		stats.Dropped++
	}
	if event {
		// §2.1 recovery, eagerly at the alarm/fault boundary: packet
		// dropped (above), registers cleared with PC back at the entry
		// point, monitor reset. All fixed-size state — no allocation.
		slot.core.Recover()
		if monitors {
			slot.mon.Reset()
		}
		slot.resetTrace = true
		slot.ring.Emit(obs.EvRecover, 0, 0)
	}
	if slot.sup.record(event) {
		stats.Quarantines++
		slot.ring.Emit(obs.EvQuarantine, 0, 0)
	}
	return out, nil
}
