package npu

import (
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/attack"
	"sdmmon/internal/packet"
)

func queuedNP(t *testing.T, cores int) *NP {
	t.Helper()
	np := newNP(t, cores, true)
	bin, g := makeBundle(t, apps.IPv4CM(), 0x600D)
	if err := np.InstallAll("ipv4cm", bin, g, 0x600D); err != nil {
		t.Fatal(err)
	}
	return np
}

func TestQueueSimValidation(t *testing.T) {
	np := queuedNP(t, 1)
	q := &QueueSim{NP: np, Capacity: 0, MeanInterArrival: 10}
	if _, err := q.Run(1, nil); err == nil {
		t.Error("zero capacity accepted")
	}
	q = &QueueSim{NP: np, Capacity: 10, MeanInterArrival: 0}
	if _, err := q.Run(1, nil); err == nil {
		t.Error("zero inter-arrival accepted")
	}
}

func TestQueueLightLoadNoPressure(t *testing.T) {
	np := queuedNP(t, 2)
	gen := packet.NewGenerator(1)
	// Processing takes ~80 cycles/packet on one of two cores; arrivals
	// every ~400 cycles leave the queue empty.
	q := &QueueSim{NP: np, Capacity: 64, MeanInterArrival: 400, Seed: 1}
	st, err := q.Run(500, gen.Next)
	if err != nil {
		t.Fatal(err)
	}
	if st.TailDrops != 0 {
		t.Errorf("tail drops under light load: %d", st.TailDrops)
	}
	if st.ECNMarked != 0 {
		t.Errorf("CE marks under light load: %d", st.ECNMarked)
	}
	if st.Forwarded != st.Processed {
		t.Errorf("forwarded %d != processed %d", st.Forwarded, st.Processed)
	}
	if st.AvgQueue > 1.0 {
		t.Errorf("avg queue %f under light load", st.AvgQueue)
	}
}

func TestQueueOverloadMarksAndDrops(t *testing.T) {
	np := queuedNP(t, 1)
	gen := packet.NewGenerator(2)
	// One core at ~80+ cycles/packet with arrivals every ~20 cycles is a
	// 4-5x overload: the queue saturates, CM marks, the tail drops.
	q := &QueueSim{NP: np, Capacity: 64, MeanInterArrival: 20, Seed: 2}
	st, err := q.Run(2000, gen.Next)
	if err != nil {
		t.Fatal(err)
	}
	if st.TailDrops == 0 {
		t.Error("no tail drops under 4x overload")
	}
	if st.ECNMarked == 0 {
		t.Error("congestion management never marked under overload")
	}
	if st.MaxQueue < apps.CMThreshold {
		t.Errorf("max queue %d below the CM threshold", st.MaxQueue)
	}
	if st.Arrived != 2000 {
		t.Errorf("arrived %d", st.Arrived)
	}
	if st.Processed+st.TailDrops != st.Arrived {
		t.Errorf("accounting: %d processed + %d dropped != %d arrived",
			st.Processed, st.TailDrops, st.Arrived)
	}
}

func TestQueueLoadSweepMonotone(t *testing.T) {
	// Marking fraction grows with offered load.
	prevMarked := -1.0
	for _, ia := range []float64{200, 60, 25} {
		np := queuedNP(t, 1)
		gen := packet.NewGenerator(3)
		q := &QueueSim{NP: np, Capacity: 64, MeanInterArrival: ia, Seed: 3}
		st, err := q.Run(1500, gen.Next)
		if err != nil {
			t.Fatal(err)
		}
		frac := 0.0
		if st.Forwarded > 0 {
			frac = float64(st.ECNMarked) / float64(st.Forwarded)
		}
		if frac < prevMarked {
			t.Errorf("marking fraction fell from %.3f to %.3f as load rose", prevMarked, frac)
		}
		prevMarked = frac
	}
}

// TestQueueAvgQueueHandComputable pins the time-weighted queue-depth
// integration on a hand-computable schedule: one core, four identical
// packets of service cost S, arriving at cycles 0, 1, 2, 3. The queue depth
// as a function of time is then exactly
//
//	0 on [0,1), 1 on [1,2), 2 on [2,3), 3 on [3,S),
//	2 on [S,2S), 1 on [2S,3S), 0 on [3S,4S]
//
// so the depth integral is 1 + 2 + 3(S-3) + 2S + S = 6S - 6 queue-cycles,
// the run ends at 4S (the final drain of packet 4), and AvgQueue must be
// (6S-6)/(4S) — the denominator includes the tail interval where the queue
// is already empty but the last packet is still in service.
func TestQueueAvgQueueHandComputable(t *testing.T) {
	// Learn the fixed packet's deterministic service cost.
	pkt := packet.NewGenerator(7).Next()
	probe, err := queuedNP(t, 1).ProcessOn(0, append([]byte(nil), pkt...), 0)
	if err != nil {
		t.Fatal(err)
	}
	S := probe.Cycles
	if S < 4 {
		t.Fatalf("service cost %d too small for the schedule", S)
	}

	np := queuedNP(t, 1)
	q := &QueueSim{
		NP: np, Capacity: 64, MeanInterArrival: 1, Seed: 7,
		InterArrival: func(i int) uint64 { return 1 },
	}
	st, err := q.Run(4, func() []byte { return append([]byte(nil), pkt...) })
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 4*S {
		t.Errorf("run ended at %d cycles, want 4S = %d (final drain missing)", st.Cycles, 4*S)
	}
	if st.MaxQueue != 3 {
		t.Errorf("max queue %d, want 3", st.MaxQueue)
	}
	want := float64(6*S-6) / float64(4*S)
	if diff := st.AvgQueue - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("AvgQueue = %v, want %v (area 6S-6 over horizon 4S with S=%d)", st.AvgQueue, want, S)
	}
	// The deterministic schedule also pins utilization: 4S service cycles
	// over a 4S horizon on one core is exactly 1.0.
	if u := st.Utilization(np.Cores()); u != 1 {
		t.Errorf("utilization %v, want 1.0", u)
	}
}

// TestQueueUtilizationClamped pins the [0,1] clamp: a caller passing a
// shrunken core count (the quarantine-mid-run mistake Utilization's
// contract warns about) must read full utilization, not >1.
func TestQueueUtilizationClamped(t *testing.T) {
	st := QueueStats{Cycles: 1000, ServiceCycles: 1800}
	if u := st.Utilization(2); u != 0.9 {
		t.Errorf("well-formed utilization = %v, want 0.9", u)
	}
	// Same run accounted against 1 core (as if the caller used the
	// post-quarantine pool): raw ratio 1.8, clamped to 1.
	if u := st.Utilization(1); u != 1 {
		t.Errorf("clamped utilization = %v, want 1", u)
	}
	if u := st.Utilization(0); u != 0 {
		t.Errorf("zero-core utilization = %v, want 0", u)
	}
	if u := st.Utilization(-3); u != 0 {
		t.Errorf("negative-core utilization = %v, want 0", u)
	}
}

func TestQueueAttacksDetectedUnderLoad(t *testing.T) {
	// Detection must hold up under queue pressure: interleave attack
	// packets into an overloaded arrival stream.
	np := queuedNP(t, 2)
	gen := packet.NewGenerator(5)
	smash := attackSmash(t)
	i := 0
	mix := func() []byte {
		i++
		if i%40 == 0 {
			return smash
		}
		return gen.Next()
	}
	q := &QueueSim{NP: np, Capacity: 64, MeanInterArrival: 25, Seed: 5}
	st, err := q.Run(2000, mix)
	if err != nil {
		t.Fatal(err)
	}
	s := np.Stats()
	if s.Alarms == 0 {
		t.Error("no attacks detected under load")
	}
	// Every alarm corresponds to an app-level drop (recovery).
	if st.AppDrops < int(s.Alarms) {
		t.Errorf("app drops %d < alarms %d", st.AppDrops, s.Alarms)
	}
}

func attackSmash(t *testing.T) []byte {
	t.Helper()
	smash := attack.DefaultSmash()
	code, err := smash.HijackPayload()
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := smash.CraftPacket(code)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

func TestQueueMoreCoresRelievePressure(t *testing.T) {
	run := func(cores int) QueueStats {
		np := queuedNP(t, cores)
		gen := packet.NewGenerator(4)
		q := &QueueSim{NP: np, Capacity: 64, MeanInterArrival: 30, Seed: 4}
		st, err := q.Run(1500, gen.Next)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	one := run(1)
	four := run(4)
	if four.TailDrops >= one.TailDrops && one.TailDrops > 0 {
		t.Errorf("4 cores (%d drops) should beat 1 core (%d drops)",
			four.TailDrops, one.TailDrops)
	}
	if four.AvgQueue >= one.AvgQueue && one.AvgQueue > 0.5 {
		t.Errorf("4 cores avg queue %.2f should beat 1 core %.2f",
			four.AvgQueue, one.AvgQueue)
	}
}
