package npu

import (
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/attack"
	"sdmmon/internal/packet"
)

func queuedNP(t *testing.T, cores int) *NP {
	t.Helper()
	np := newNP(t, cores, true)
	bin, g := makeBundle(t, apps.IPv4CM(), 0x600D)
	if err := np.InstallAll("ipv4cm", bin, g, 0x600D); err != nil {
		t.Fatal(err)
	}
	return np
}

func TestQueueSimValidation(t *testing.T) {
	np := queuedNP(t, 1)
	q := &QueueSim{NP: np, Capacity: 0, MeanInterArrival: 10}
	if _, err := q.Run(1, nil); err == nil {
		t.Error("zero capacity accepted")
	}
	q = &QueueSim{NP: np, Capacity: 10, MeanInterArrival: 0}
	if _, err := q.Run(1, nil); err == nil {
		t.Error("zero inter-arrival accepted")
	}
}

func TestQueueLightLoadNoPressure(t *testing.T) {
	np := queuedNP(t, 2)
	gen := packet.NewGenerator(1)
	// Processing takes ~80 cycles/packet on one of two cores; arrivals
	// every ~400 cycles leave the queue empty.
	q := &QueueSim{NP: np, Capacity: 64, MeanInterArrival: 400, Seed: 1}
	st, err := q.Run(500, gen.Next)
	if err != nil {
		t.Fatal(err)
	}
	if st.TailDrops != 0 {
		t.Errorf("tail drops under light load: %d", st.TailDrops)
	}
	if st.ECNMarked != 0 {
		t.Errorf("CE marks under light load: %d", st.ECNMarked)
	}
	if st.Forwarded != st.Processed {
		t.Errorf("forwarded %d != processed %d", st.Forwarded, st.Processed)
	}
	if st.AvgQueue > 1.0 {
		t.Errorf("avg queue %f under light load", st.AvgQueue)
	}
}

func TestQueueOverloadMarksAndDrops(t *testing.T) {
	np := queuedNP(t, 1)
	gen := packet.NewGenerator(2)
	// One core at ~80+ cycles/packet with arrivals every ~20 cycles is a
	// 4-5x overload: the queue saturates, CM marks, the tail drops.
	q := &QueueSim{NP: np, Capacity: 64, MeanInterArrival: 20, Seed: 2}
	st, err := q.Run(2000, gen.Next)
	if err != nil {
		t.Fatal(err)
	}
	if st.TailDrops == 0 {
		t.Error("no tail drops under 4x overload")
	}
	if st.ECNMarked == 0 {
		t.Error("congestion management never marked under overload")
	}
	if st.MaxQueue < apps.CMThreshold {
		t.Errorf("max queue %d below the CM threshold", st.MaxQueue)
	}
	if st.Arrived != 2000 {
		t.Errorf("arrived %d", st.Arrived)
	}
	if st.Processed+st.TailDrops != st.Arrived {
		t.Errorf("accounting: %d processed + %d dropped != %d arrived",
			st.Processed, st.TailDrops, st.Arrived)
	}
}

func TestQueueLoadSweepMonotone(t *testing.T) {
	// Marking fraction grows with offered load.
	prevMarked := -1.0
	for _, ia := range []float64{200, 60, 25} {
		np := queuedNP(t, 1)
		gen := packet.NewGenerator(3)
		q := &QueueSim{NP: np, Capacity: 64, MeanInterArrival: ia, Seed: 3}
		st, err := q.Run(1500, gen.Next)
		if err != nil {
			t.Fatal(err)
		}
		frac := 0.0
		if st.Forwarded > 0 {
			frac = float64(st.ECNMarked) / float64(st.Forwarded)
		}
		if frac < prevMarked {
			t.Errorf("marking fraction fell from %.3f to %.3f as load rose", prevMarked, frac)
		}
		prevMarked = frac
	}
}

func TestQueueAttacksDetectedUnderLoad(t *testing.T) {
	// Detection must hold up under queue pressure: interleave attack
	// packets into an overloaded arrival stream.
	np := queuedNP(t, 2)
	gen := packet.NewGenerator(5)
	smash := attackSmash(t)
	i := 0
	mix := func() []byte {
		i++
		if i%40 == 0 {
			return smash
		}
		return gen.Next()
	}
	q := &QueueSim{NP: np, Capacity: 64, MeanInterArrival: 25, Seed: 5}
	st, err := q.Run(2000, mix)
	if err != nil {
		t.Fatal(err)
	}
	s := np.Stats()
	if s.Alarms == 0 {
		t.Error("no attacks detected under load")
	}
	// Every alarm corresponds to an app-level drop (recovery).
	if st.AppDrops < int(s.Alarms) {
		t.Errorf("app drops %d < alarms %d", st.AppDrops, s.Alarms)
	}
}

func attackSmash(t *testing.T) []byte {
	t.Helper()
	smash := attack.DefaultSmash()
	code, err := smash.HijackPayload()
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := smash.CraftPacket(code)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

func TestQueueMoreCoresRelievePressure(t *testing.T) {
	run := func(cores int) QueueStats {
		np := queuedNP(t, cores)
		gen := packet.NewGenerator(4)
		q := &QueueSim{NP: np, Capacity: 64, MeanInterArrival: 30, Seed: 4}
		st, err := q.Run(1500, gen.Next)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	one := run(1)
	four := run(4)
	if four.TailDrops >= one.TailDrops && one.TailDrops > 0 {
		t.Errorf("4 cores (%d drops) should beat 1 core (%d drops)",
			four.TailDrops, one.TailDrops)
	}
	if four.AvgQueue >= one.AvgQueue && one.AvgQueue > 0.5 {
		t.Errorf("4 cores avg queue %.2f should beat 1 core %.2f",
			four.AvgQueue, one.AvgQueue)
	}
}
