package npu

import (
	"fmt"

	"sdmmon/internal/apps"
	"sdmmon/internal/asm"
	"sdmmon/internal/monitor"
)

// §4.2 notes that while a secure installation takes ~25 s, "switching
// between applications already installed on the network processor can be
// done quickly to accommodate dynamic changes in workload by keeping
// multiple binaries and graphs in memory." This file implements that
// library: verified bundles are kept resident per NP, and a core switches
// to any resident application without touching the cryptographic path.

// residentApp is one verified bundle kept in NP memory.
type residentApp struct {
	name   string
	binary []byte
	graph  []byte
	param  uint32
}

// LoadLibrary verifies and stores a bundle in the NP's resident library
// without installing it on any core. The caller (the control processor)
// must have verified the package signature first — identical trust model to
// Install.
func (np *NP) LoadLibrary(name string, binary, graph []byte, param uint32) error {
	// Validate once at load time so Switch can be unconditional.
	prog, err := asm.Deserialize(binary)
	if err != nil {
		return fmt.Errorf("npu: library %q: binary: %w", name, err)
	}
	g, err := monitor.Deserialize(graph)
	if err != nil {
		return fmt.Errorf("npu: library %q: graph: %w", name, err)
	}
	if err := g.Validate(prog, np.cfg.NewHasher(param)); err != nil {
		return fmt.Errorf("npu: library %q: %w", name, err)
	}
	if np.library == nil {
		np.library = map[string]*residentApp{}
	}
	np.library[name] = &residentApp{name: name, binary: binary, graph: graph, param: param}
	return nil
}

// Library lists the resident application names.
func (np *NP) Library() []string {
	var out []string
	for name := range np.library {
		out = append(out, name)
	}
	return out
}

// Switch points a core at a resident application. This is the fast path of
// the paper's parenthetical: no download, no RSA, no AES — just a reload of
// the core's program memory and monitor state. It returns the simulated
// cost in core cycles (the binary copy into instruction memory), which is
// microseconds at 100 MHz versus ~25 s for a fresh secure installation.
func (np *NP) Switch(coreID int, name string) (cycles uint64, err error) {
	if coreID < 0 || coreID >= len(np.slots) {
		return 0, fmt.Errorf("npu: core %d out of range", coreID)
	}
	app, ok := np.library[name]
	if !ok {
		return 0, fmt.Errorf("npu: application %q not resident", name)
	}
	if err := np.Install(coreID, app.name, app.binary, app.graph, app.param); err != nil {
		return 0, err
	}
	// Cost model: one cycle per 32-bit word copied from shared memory into
	// the core's instruction store plus a fixed reset sequence. The graph
	// is already resident in monitor memory (banked), so only the bank
	// select contributes.
	prog, err := asm.Deserialize(app.binary)
	if err != nil {
		return 0, err
	}
	words := uint64(len(prog.CodeWords()))
	const resetSequence = 64
	return words + resetSequence, nil
}

// LoadLibraryApp is a convenience: assemble a built-in application, extract
// its graph under a fresh hasher parameter, verify, and make it resident.
func (np *NP) LoadLibraryApp(app *apps.App, param uint32) error {
	prog, err := app.Program()
	if err != nil {
		return err
	}
	g, err := monitor.Extract(prog, np.cfg.NewHasher(param))
	if err != nil {
		return err
	}
	return np.LoadLibrary(app.Name, prog.Serialize(), g.Serialize(), param)
}
