// Package npu models the multiprocessor network processor of the paper: a
// set of PLASMA-like cores, each paired with a parameterizable hash unit
// and a hardware monitor, behind a packet dispatcher. Packets are assigned
// to cores; a monitor alarm triggers the paper's recovery sequence (§2.1):
// drop the attack packet, reset the core and its monitor, continue with the
// next packet.
package npu

import (
	"fmt"
	"sync"

	"sdmmon/internal/apps"
	"sdmmon/internal/asm"
	"sdmmon/internal/cpu"
	"sdmmon/internal/isa"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
	"sdmmon/internal/obs"
)

// Stats aggregates data-plane outcomes.
type Stats struct {
	Processed uint64
	Forwarded uint64
	Dropped   uint64 // all drops: verdict drops + alarm drops + fault drops
	Alarms    uint64 // monitor alarms (attack detections + any false alarms)
	Faults    uint64 // architectural exceptions without monitor alarm
	// WatchdogTrips counts the subset of Faults that were cycle-budget
	// exhaustions (ExcCycleLimit) — hung/runaway cores, surfaced
	// distinctly so hang injection is observable.
	WatchdogTrips uint64
	// Quarantines counts supervisor quarantine transitions (including
	// probation failures that re-quarantine a core).
	Quarantines uint64
	Cycles      uint64
}

// VerdictDrops returns the drops decided by the application itself (TTL,
// malformed, ACL deny) — Dropped minus the alarm and fault drops. Clamped
// at zero: an alarm or fault outcome counted without a corresponding drop
// (mid-quarantine accounting windows) must read as "no verdict drops", not
// wrap to a huge unsigned value.
func (s Stats) VerdictDrops() uint64 {
	if s.Dropped < s.Alarms+s.Faults {
		return 0
	}
	return s.Dropped - s.Alarms - s.Faults
}

// Conserved reports exact packet conservation: every processed packet is
// either forwarded or dropped (verdict, alarm, or fault) — the accounting
// invariant the fault-injection suite holds the data plane to.
func (s Stats) Conserved() bool { return s.Processed == s.Forwarded+s.Dropped }

// coreMonitor abstracts the per-core monitor implementation: the flattened
// packed fast path (default) or the map-based NFA reference
// (Config.Reference). Both are semantically identical — proved by the
// equivalence tests in internal/monitor and internal/attack.
type coreMonitor interface {
	Observe(pc uint32, w isa.Word) bool
	Reset()
	Alarmed() bool
	AlarmPC() uint32
	Counters() (checked, alarms uint64, maxPositions int)
}

// preparedApp is a fully built installation image: core with loaded program,
// compiled monitor, wired tracer, and hash unit. Building one is the
// expensive, fallible half of an installation; making it live is a pointer
// swap. Both the live slot contents and the staged/retained shadow slots are
// preparedApps.
type preparedApp struct {
	core    *apps.Core
	mon     coreMonitor
	tracer  *cpu.Tracer
	hasher  mhash.Hasher
	appName string
	param   uint32
}

// coreSlot is one core with its security hardware.
type coreSlot struct {
	// mu serializes the packet path against install/commit/rollback swaps:
	// a cutover acquires the lock and therefore waits for the in-flight
	// packet to retire — the "per-core drain" that makes commits atomic at
	// packet boundaries. Uncontended in steady state and allocation-free.
	mu      sync.Mutex
	core    *apps.Core
	mon     coreMonitor
	tracer  *cpu.Tracer
	hasher  mhash.Hasher
	appName string
	param   uint32
	loaded  bool
	// resetTrace defers the forensic-trace wipe of the recovery sequence
	// to the core's next packet, keeping the dump readable between an
	// alarm and that packet (the window npsim -forensic uses).
	resetTrace bool
	// ring and cyc are this core's telemetry hooks (nil when the NP has no
	// collector): the lifecycle event ring and the per-packet cycle
	// histogram. Both are allocation-free to write.
	ring *obs.EventRing
	cyc  *obs.Histogram
	// sup is the per-core health tracker (see supervisor.go).
	sup supState
	// staged is the shadow slot of the two-phase install (see upgrade.go):
	// a prepared bundle awaiting Commit while the live slot keeps serving.
	staged *preparedApp
	// prev is the retained previous version after a Commit, restored by
	// Rollback.
	prev *preparedApp
}

// liveImage captures the current live installation as a preparedApp (for
// retention at commit time). Call with mu held.
func (s *coreSlot) liveImage() *preparedApp {
	return &preparedApp{core: s.core, mon: s.mon, tracer: s.tracer,
		hasher: s.hasher, appName: s.appName, param: s.param}
}

// setLive makes a prepared image the slot's live installation. Call with mu
// held.
func (s *coreSlot) setLive(p *preparedApp) {
	s.core = p.core
	s.mon = p.mon
	s.tracer = p.tracer
	s.hasher = p.hasher
	s.appName = p.appName
	s.param = p.param
	s.loaded = true
	s.resetTrace = false
}

// Config configures an NP instance.
type Config struct {
	// Cores is the number of processing cores (the prototype has one; the
	// architecture targets many, §1 "Dynamics").
	Cores int
	// MonitorsEnabled disconnects the monitors when false (the insecure
	// baseline for comparison benches).
	MonitorsEnabled bool
	// NewHasher builds the per-installation hash unit from a parameter.
	// Defaults to the paper's 4-bit sum-compression Merkle tree.
	NewHasher func(param uint32) mhash.Hasher
	// TraceDepth, when > 0, keeps a per-core forensic ring of the last N
	// retired instructions (with the alarm instruction flagged).
	TraceDepth int
	// Reference selects the pre-optimization monitoring path: the
	// map-based NFA monitor stepping an uncached hash unit. The default
	// (false) is the allocation-free fast path — flattened PackedMonitor
	// transitions plus a word-keyed FastHasher. The two are semantically
	// identical; Reference exists for A/B throughput comparison
	// (cmd/npsim -bench, BenchmarkNPThroughput).
	Reference bool
	// HashCacheBits sizes the per-core instruction-hash cache as log2 of
	// the entry count; 0 selects mhash.DefaultFastCacheBits. Ignored when
	// Reference is set.
	HashCacheBits int
	// Supervisor enables the per-core health tracker (quarantine on
	// persistent alarms/faults, probation after re-install). The zero
	// value disables it.
	Supervisor SupervisorConfig
	// Obs attaches a telemetry collector: per-core lifecycle event rings,
	// aggregate outcome counters, per-core cycle histograms, and the batch
	// latency distribution. Nil disables all hooks at zero cost (the
	// packet path stays allocation-free either way).
	Obs *obs.Collector
	// Instance, when non-empty, is folded into every registered metric
	// name as an `np="<instance>"` label. Two NPs sharing one Collector
	// MUST set distinct instances, or they publish into the same series
	// (`np_packet_cycles{core="0"}` names the same histogram on both).
	// Empty keeps the historical unlabeled names for single-NP collectors.
	Instance string
}

// NP is a multicore network processor.
type NP struct {
	cfg     Config
	slots   []*coreSlot
	next    int // round-robin dispatch pointer
	stats   Stats
	library map[string]*residentApp // verified bundles kept in memory

	// statsMu guards the aggregate stats: ProcessOn and the ProcessBatch
	// merge write through mergeStats while Stats() snapshots concurrently.
	// It also guards the protection-domain tables below.
	statsMu sync.Mutex

	// Protection-domain partition (see domain.go): domain names (index 0 is
	// the root domain ""), the per-slot owner index, and the per-domain
	// stat accounts folded alongside the aggregate.
	domains    []string
	slotDomain []int
	domStats   []Stats

	// Telemetry hooks (all nil without Config.Obs): aggregate outcome
	// counters mirrored from the stats merge, lifecycle counters from the
	// install/upgrade paths, and the batch latency histogram.
	mProcessed, mForwarded, mDropped *obs.Counter
	mAlarms, mFaults, mWatchdog      *obs.Counter
	mQuarantines                     *obs.Counter
	mInstalls, mStages, mCommits     *obs.Counter
	mRollbacks, mAborts              *obs.Counter
	batchLat                         *obs.Histogram

	// Reused ProcessBatch scratch (see batch.go): packet-copy arena,
	// per-result offsets, per-core stat deltas. Amortizes batch setup to
	// zero allocations in steady state. batchMu serializes batch entry so
	// the scratch is single-owner even when a management-plane caller
	// (e.g. a rollout's health sample) batches against an NP whose shard
	// worker is draining it concurrently.
	batchMu sync.Mutex
	arena   []byte
	offs    []int
	deltas  []Stats
}

// New builds an NP.
func New(cfg Config) (*NP, error) {
	if cfg.Cores < 1 {
		return nil, fmt.Errorf("npu: %d cores", cfg.Cores)
	}
	if cfg.NewHasher == nil {
		cfg.NewHasher = func(p uint32) mhash.Hasher { return mhash.NewMerkle(p) }
	}
	np := &NP{
		cfg:        cfg,
		slots:      make([]*coreSlot, cfg.Cores),
		domains:    []string{""},
		slotDomain: make([]int, cfg.Cores),
		domStats:   make([]Stats, 1),
	}
	for i := range np.slots {
		np.slots[i] = &coreSlot{sup: newSupState(cfg.Supervisor)}
	}
	if cfg.Obs != nil {
		reg := cfg.Obs.Registry()
		// With Config.Instance set, every name carries an np="…" label so
		// two NPs sharing a Collector keep disjoint series; empty Instance
		// reproduces the historical unlabeled names exactly.
		name := func(base string) string { return obs.Labeled(base, "np", cfg.Instance) }
		np.mProcessed = reg.Counter(name("np_packets_processed_total"))
		np.mForwarded = reg.Counter(name("np_packets_forwarded_total"))
		np.mDropped = reg.Counter(name("np_packets_dropped_total"))
		np.mAlarms = reg.Counter(name("np_alarms_total"))
		np.mFaults = reg.Counter(name("np_faults_total"))
		np.mWatchdog = reg.Counter(name("np_watchdog_trips_total"))
		np.mQuarantines = reg.Counter(name("np_quarantines_total"))
		np.mInstalls = reg.Counter(name("np_installs_total"))
		np.mStages = reg.Counter(name("np_stages_total"))
		np.mCommits = reg.Counter(name("np_commits_total"))
		np.mRollbacks = reg.Counter(name("np_rollbacks_total"))
		np.mAborts = reg.Counter(name("np_aborts_total"))
		np.batchLat = reg.Histogram(name("np_batch_seconds"), obs.LatencyBuckets)
		for i, slot := range np.slots {
			slot.ring = cfg.Obs.Ring(i)
			slot.cyc = reg.Histogram(
				obs.Labeled("np_packet_cycles", "np", cfg.Instance, "core", fmt.Sprintf("%d", i)),
				obs.CycleBuckets)
		}
	}
	return np, nil
}

// Instance reports the obs label configured for this NP ("" when unset).
func (np *NP) Instance() string { return np.cfg.Instance }

// Cores returns the core count.
func (np *NP) Cores() int { return len(np.slots) }

// HasherFor builds a hash unit for a parameter using this NP's configured
// hash family; the operator-side graph extraction must use the same family.
func (np *NP) HasherFor(param uint32) mhash.Hasher { return np.cfg.NewHasher(param) }

// Stats returns a copy of the aggregate statistics. Safe to call
// concurrently with Process/ProcessOn/ProcessBatch: the copy is taken under
// the stats mutex, so it is always a consistent snapshot, never a torn read
// of counters mid-merge.
func (np *NP) Stats() Stats {
	np.statsMu.Lock()
	defer np.statsMu.Unlock()
	return np.stats
}

// mergeStats folds a per-call delta into the aggregate — and, when a
// domain partition is installed and the delta is attributable to a core,
// into that core's domain account — under the stats mutex, then mirrors
// the delta into the telemetry counters (nil-safe no-ops without a
// collector). The delta is computed lock-free on the packet path; only the
// fold serializes. coreID < 0 skips domain attribution.
func (np *NP) mergeStats(d *Stats, coreID int) {
	np.statsMu.Lock()
	np.stats.add(d)
	if len(np.domains) > 1 && coreID >= 0 && coreID < len(np.slotDomain) {
		np.domStats[np.slotDomain[coreID]].add(d)
	}
	np.statsMu.Unlock()
	np.mirrorStats(d)
}

// mergeDeltas folds the batch engine's per-core deltas into the aggregate
// and each core's domain account in one stats-mutex acquisition, then
// mirrors the merged delta into the telemetry counters. Returns the merge.
func (np *NP) mergeDeltas(deltas []Stats) Stats {
	var merged Stats
	np.statsMu.Lock()
	dom := len(np.domains) > 1
	for i := range deltas {
		merged.add(&deltas[i])
		if dom && i < len(np.slotDomain) {
			np.domStats[np.slotDomain[i]].add(&deltas[i])
		}
	}
	np.stats.add(&merged)
	np.statsMu.Unlock()
	np.mirrorStats(&merged)
	return merged
}

// mirrorStats mirrors a delta into the obs counters (nil-safe).
func (np *NP) mirrorStats(d *Stats) {
	np.mProcessed.Add(d.Processed)
	np.mForwarded.Add(d.Forwarded)
	np.mDropped.Add(d.Dropped)
	np.mAlarms.Add(d.Alarms)
	np.mFaults.Add(d.Faults)
	np.mWatchdog.Add(d.WatchdogTrips)
	np.mQuarantines.Add(d.Quarantines)
}

// prepare builds a complete installation image from a verified bundle:
// deserialize binary and graph, build the hash unit, run the graph/binary
// self-check, compile the monitor, and wire the trace chain. It touches no
// slot — callers decide whether the image becomes live immediately (Install)
// or waits in a shadow slot (StageInstall).
func (np *NP) prepare(name string, binary, graph []byte, param uint32) (*preparedApp, error) {
	prog, err := asm.Deserialize(binary)
	if err != nil {
		return nil, fmt.Errorf("npu: binary: %w", err)
	}
	g, err := monitor.Deserialize(graph)
	if err != nil {
		return nil, fmt.Errorf("npu: graph: %w", err)
	}
	hasher := np.cfg.NewHasher(param)
	// Post-installation self-check: the graph must actually describe this
	// binary under this parameter (defense in depth; catches operator
	// tooling bugs, not attacks — those are stopped by the signature).
	if err := g.Validate(prog, hasher); err != nil {
		return nil, fmt.Errorf("npu: graph/binary mismatch: %w", err)
	}
	var mon coreMonitor
	if np.cfg.Reference {
		// Pre-optimization reference: map-based NFA monitor, uncached
		// hash unit.
		m, err := monitor.New(g, hasher)
		if err != nil {
			return nil, fmt.Errorf("npu: %w", err)
		}
		mon = m
	} else {
		// The per-instruction fast path: packed hardware-layout monitor
		// compiled to flat transition arrays, fed by a word-keyed
		// instruction-hash cache with concrete (non-interface) dispatch.
		packed, err := monitor.Pack(g)
		if err != nil {
			return nil, fmt.Errorf("npu: %w", err)
		}
		cacheBits := np.cfg.HashCacheBits
		if cacheBits == 0 {
			cacheBits = mhash.DefaultFastCacheBits
		}
		m, err := monitor.NewPacked(packed, mhash.NewFast(hasher, cacheBits))
		if err != nil {
			return nil, fmt.Errorf("npu: %w", err)
		}
		mon = m
	}
	p := &preparedApp{core: apps.NewCore(prog), mon: mon, hasher: hasher,
		appName: name, param: param}
	var trace cpu.TraceFunc
	if np.cfg.MonitorsEnabled {
		trace = mon.Observe
	}
	if np.cfg.TraceDepth > 0 {
		p.tracer = cpu.NewTracer(np.cfg.TraceDepth, trace)
		trace = p.tracer.Observe
	}
	p.core.Trace = trace
	return p, nil
}

// Install loads a verified bundle onto one core: the processing binary, the
// monitoring graph, and the hash parameter. This is the step the secure
// installation protocol gates; the NP itself trusts its caller (the control
// processor) to have verified the package. Install is destructive — the
// previous installation is discarded along with any staged or retained
// version; live upgrades use StageInstall/Commit (upgrade.go) instead.
func (np *NP) Install(coreID int, name string, binary, graph []byte, param uint32) error {
	if coreID < 0 || coreID >= len(np.slots) {
		return fmt.Errorf("npu: core %d out of range", coreID)
	}
	p, err := np.prepare(name, binary, graph, param)
	if err != nil {
		return err
	}
	slot := np.slots[coreID]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	slot.setLive(p)
	slot.staged = nil
	slot.prev = nil
	// A quarantined core re-enters dispatch on probation: the clean
	// re-install (fresh core memory, fresh monitor) is the probe step of
	// the quarantine policy.
	slot.sup.onInstall()
	slot.ring.Emit(obs.EvInstall, 0, 0)
	np.mInstalls.Inc()
	return nil
}

// TraceDump returns the core's forensic trace (last n instructions), or ""
// when tracing is disabled.
func (np *NP) TraceDump(coreID, n int) string {
	if coreID < 0 || coreID >= len(np.slots) || np.slots[coreID].tracer == nil {
		return ""
	}
	return np.slots[coreID].tracer.Dump(n)
}

// InstallAll installs the same bundle on every core, transactionally: every
// core's image is prepared and self-checked before any slot is mutated, so a
// bundle that fails validation for core N can no longer leave cores 0..N-1
// upgraded and the rest stale. (Per-core preparation matters even for an
// identical bundle — the configured hash-unit factory may be stateful, as
// the fault-injection suite's flaky hashers are.)
func (np *NP) InstallAll(name string, binary, graph []byte, param uint32) error {
	prepared := make([]*preparedApp, len(np.slots))
	for i := range np.slots {
		p, err := np.prepare(name, binary, graph, param)
		if err != nil {
			return err
		}
		prepared[i] = p
	}
	for i, slot := range np.slots {
		slot.mu.Lock()
		slot.setLive(prepared[i])
		slot.staged = nil
		slot.prev = nil
		slot.sup.onInstall()
		slot.mu.Unlock()
		slot.ring.Emit(obs.EvInstall, 0, 0)
		np.mInstalls.Inc()
	}
	return nil
}

// AppOn reports the application installed on a core.
func (np *NP) AppOn(coreID int) (string, bool) {
	if coreID < 0 || coreID >= len(np.slots) || !np.slots[coreID].loaded {
		return "", false
	}
	return np.slots[coreID].appName, true
}

// ParamOn reports the hash parameter of the live installation on a core —
// the fleet rotation invariant ("no two routers share hash parameters")
// audits the fleet through this.
func (np *NP) ParamOn(coreID int) (uint32, bool) {
	if coreID < 0 || coreID >= len(np.slots) {
		return 0, false
	}
	slot := np.slots[coreID]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if !slot.loaded {
		return 0, false
	}
	return slot.param, true
}

// Result describes one packet's fate.
//
// Packet aliases reused storage: after Process/ProcessOn it points at the
// core's output buffer and is valid until the next packet on that core;
// after ProcessBatch it points into the NP's batch arena and is valid until
// the next ProcessBatch call. Copy it to retain it longer. This is what
// keeps the steady-state data plane allocation-free.
type Result struct {
	Core     int
	Verdict  int
	Packet   []byte
	Detected bool // monitor alarm fired (packet dropped, core reset)
	Faulted  bool // architectural exception without an alarm
	Cycles   uint64
}

// Process dispatches one packet round-robin across available (loaded,
// non-quarantined) cores.
func (np *NP) Process(pkt []byte, qdepth int) (Result, error) {
	n := len(np.slots)
	anyLoaded := false
	for i := 0; i < n; i++ {
		id := (np.next + i) % n
		s := np.slots[id]
		if !s.loaded {
			continue
		}
		anyLoaded = true
		if s.sup.quarantined {
			continue
		}
		np.next = (id + 1) % n
		return np.ProcessOn(id, pkt, qdepth)
	}
	if anyLoaded {
		return Result{}, ErrNoCoreAvailable
	}
	return Result{}, ErrNoAppInstalled
}

// ProcessOn runs one packet on a specific core. On a monitor alarm the
// paper's recovery applies: the attack packet is dropped, core and monitor
// reset, processing continues.
func (np *NP) ProcessOn(coreID int, pkt []byte, qdepth int) (Result, error) {
	if coreID < 0 || coreID >= len(np.slots) || !np.slots[coreID].loaded {
		return Result{}, fmt.Errorf("npu: core %d not loaded", coreID)
	}
	if np.slots[coreID].sup.quarantined {
		return Result{}, fmt.Errorf("npu: core %d: %w", coreID, ErrCoreQuarantined)
	}
	// Accumulate into a stack-local delta and fold it in under the stats
	// mutex: Stats() readers and ProcessOn calls on other cores never race
	// on the aggregate, and the packet path stays allocation-free.
	var d Stats
	res, err := processOnSlot(np.slots[coreID], coreID, pkt, qdepth, np.cfg.MonitorsEnabled, &d)
	if err != nil {
		return res, err
	}
	np.mergeStats(&d, coreID)
	return res, nil
}

// Core exposes a core's execution engine for diagnostics and fault
// injection (the fault suite flips bits in its instruction memory and
// shrinks its watchdog budget).
func (np *NP) Core(coreID int) (*apps.Core, error) {
	if coreID < 0 || coreID >= len(np.slots) || !np.slots[coreID].loaded {
		return nil, fmt.Errorf("npu: core %d not loaded", coreID)
	}
	return np.slots[coreID].core, nil
}

// Tracer exposes a core's forensic tracer, or nil when tracing is off.
func (np *NP) Tracer(coreID int) *cpu.Tracer {
	if coreID < 0 || coreID >= len(np.slots) {
		return nil
	}
	return np.slots[coreID].tracer
}

// Scratch exposes a core's scratch memory for persistence experiments.
func (np *NP) Scratch(coreID, off, n int) ([]byte, error) {
	if coreID < 0 || coreID >= len(np.slots) || !np.slots[coreID].loaded {
		return nil, fmt.Errorf("npu: core %d not loaded", coreID)
	}
	return np.slots[coreID].core.Scratch(off, n), nil
}

// MonitorStats reports a core's monitor counters. It takes the slot lock,
// so a read concurrent with the packet path sees counters from a packet
// boundary, never a mid-packet tear.
func (np *NP) MonitorStats(coreID int) (checked, alarms uint64, maxPositions int, err error) {
	if coreID < 0 || coreID >= len(np.slots) {
		return 0, 0, 0, fmt.Errorf("npu: core %d not loaded", coreID)
	}
	slot := np.slots[coreID]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if !slot.loaded {
		return 0, 0, 0, fmt.Errorf("npu: core %d not loaded", coreID)
	}
	checked, alarms, maxPositions = slot.mon.Counters()
	return checked, alarms, maxPositions, nil
}
