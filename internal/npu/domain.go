package npu

// Protection domains (DESIGN.md §17): the per-NP half of the multi-tenant
// trusted layer. A domain is an exclusive set of core slots owned by one
// tenant; the trusted domain manager (internal/tenant) assigns the
// partition once with SetDomains and then performs every install, stage,
// commit, rollback, and quarantine through the *Domain entry points below,
// which refuse any core the named domain does not own. This is the
// Sanctum-style discipline: the mapping lives in one small trusted layer,
// and nothing a tenant does — including its own upgrade traffic — can
// reach another tenant's slots. Per-domain statistics accumulate alongside
// the NP aggregate so a tenant's health is observable without reading (or
// perturbing) anyone else's numbers.

import (
	"errors"
	"fmt"

	"sdmmon/internal/obs"
)

// Domain access errors.
var (
	// ErrDomainViolation: a *Domain call addressed a core the named domain
	// does not own. The operation is refused with no state change.
	ErrDomainViolation = errors.New("npu: core outside caller's protection domain")
	// ErrUnknownDomain: the named domain is not in the current partition.
	ErrUnknownDomain = errors.New("npu: unknown protection domain")
)

// DomainSpec names one protection domain and the cores it owns.
type DomainSpec struct {
	Name  string
	Cores []int
}

// SetDomains installs a core partition: each listed domain owns its cores
// exclusively; cores not listed anywhere stay in the root domain "". The
// call replaces any previous partition and zeroes the per-domain stat
// accounts (the NP aggregate is untouched). It is a trusted-layer setup
// operation: call it before the partition takes traffic, not concurrently
// with a domain being re-partitioned mid-drain.
func (np *NP) SetDomains(specs []DomainSpec) error {
	n := len(np.slots)
	slotDomain := make([]int, n)
	domains := make([]string, 1, len(specs)+1)
	seen := map[string]bool{"": true}
	for _, sp := range specs {
		if sp.Name == "" {
			return fmt.Errorf("npu: domain name must be non-empty")
		}
		if seen[sp.Name] {
			return fmt.Errorf("npu: duplicate domain %q", sp.Name)
		}
		if len(sp.Cores) == 0 {
			return fmt.Errorf("npu: domain %q owns no cores", sp.Name)
		}
		seen[sp.Name] = true
		idx := len(domains)
		domains = append(domains, sp.Name)
		for _, c := range sp.Cores {
			if c < 0 || c >= n {
				return fmt.Errorf("npu: domain %q: core %d out of range", sp.Name, c)
			}
			if slotDomain[c] != 0 {
				return fmt.Errorf("npu: core %d claimed by both %q and %q",
					c, domains[slotDomain[c]], sp.Name)
			}
			slotDomain[c] = idx
		}
	}
	// batchMu orders the swap against the batch engine's participant scan;
	// statsMu against the per-domain stat folds and name lookups.
	np.batchMu.Lock()
	np.statsMu.Lock()
	np.domains = domains
	np.slotDomain = slotDomain
	np.domStats = make([]Stats, len(domains))
	np.statsMu.Unlock()
	np.batchMu.Unlock()
	return nil
}

// Domains lists the current partition's domain names, root ("") first.
func (np *NP) Domains() []string {
	np.statsMu.Lock()
	defer np.statsMu.Unlock()
	return append([]string(nil), np.domains...)
}

// DomainOf reports the domain owning a core ("" = root).
func (np *NP) DomainOf(coreID int) (string, error) {
	if coreID < 0 || coreID >= len(np.slots) {
		return "", fmt.Errorf("npu: core %d out of range", coreID)
	}
	np.statsMu.Lock()
	defer np.statsMu.Unlock()
	return np.domains[np.slotDomain[coreID]], nil
}

// DomainCores lists the cores a domain owns, ascending.
func (np *NP) DomainCores(name string) ([]int, error) {
	np.statsMu.Lock()
	defer np.statsMu.Unlock()
	idx := np.domainIdxLocked(name)
	if idx < 0 {
		return nil, fmt.Errorf("npu: %w: %q", ErrUnknownDomain, name)
	}
	var cores []int
	for c, d := range np.slotDomain {
		if d == idx {
			cores = append(cores, c)
		}
	}
	return cores, nil
}

// domainIdxLocked resolves a domain name to its index, -1 when unknown.
// Call with statsMu held.
func (np *NP) domainIdxLocked(name string) int {
	for i, d := range np.domains {
		if d == name {
			return i
		}
	}
	return -1
}

// domainIdx resolves a domain name to its index.
func (np *NP) domainIdx(name string) (int, error) {
	np.statsMu.Lock()
	defer np.statsMu.Unlock()
	idx := np.domainIdxLocked(name)
	if idx < 0 {
		return 0, fmt.Errorf("npu: %w: %q", ErrUnknownDomain, name)
	}
	return idx, nil
}

// checkDomain is the ownership gate every *Domain mutation passes through.
func (np *NP) checkDomain(domain string, coreID int) error {
	if coreID < 0 || coreID >= len(np.slots) {
		return fmt.Errorf("npu: core %d out of range", coreID)
	}
	np.statsMu.Lock()
	defer np.statsMu.Unlock()
	idx := np.domainIdxLocked(domain)
	if idx < 0 {
		return fmt.Errorf("npu: %w: %q", ErrUnknownDomain, domain)
	}
	if owner := np.slotDomain[coreID]; owner != idx {
		return fmt.Errorf("npu: domain %q, core %d owned by %q: %w",
			domain, coreID, np.domains[owner], ErrDomainViolation)
	}
	return nil
}

// InstallDomain is Install gated on domain ownership: the bundle lands on
// the core only if the named domain owns it.
func (np *NP) InstallDomain(domain string, coreID int, name string, binary, graph []byte, param uint32) error {
	if err := np.checkDomain(domain, coreID); err != nil {
		return err
	}
	return np.Install(coreID, name, binary, graph, param)
}

// InstallDomainAll installs one bundle on every core the domain owns,
// transactionally: all images are prepared and self-checked before any
// slot is mutated. Cores outside the domain are never touched.
func (np *NP) InstallDomainAll(domain, name string, binary, graph []byte, param uint32) error {
	cores, err := np.DomainCores(domain)
	if err != nil {
		return err
	}
	if len(cores) == 0 {
		return fmt.Errorf("npu: domain %q owns no cores", domain)
	}
	prepared := make([]*preparedApp, len(cores))
	for i := range cores {
		p, err := np.prepare(name, binary, graph, param)
		if err != nil {
			return err
		}
		prepared[i] = p
	}
	for i, coreID := range cores {
		slot := np.slots[coreID]
		slot.mu.Lock()
		slot.setLive(prepared[i])
		slot.staged = nil
		slot.prev = nil
		slot.sup.onInstall()
		slot.mu.Unlock()
		slot.ring.Emit(obs.EvInstall, 0, 0)
		np.mInstalls.Inc()
	}
	return nil
}

// StageInstallDomain is StageInstall gated on domain ownership.
func (np *NP) StageInstallDomain(domain string, coreID int, name string, binary, graph []byte, param uint32) error {
	if err := np.checkDomain(domain, coreID); err != nil {
		return err
	}
	return np.StageInstall(coreID, name, binary, graph, param)
}

// StageInstallDomainAll stages one bundle on every core the domain owns;
// preparation happens for every core before any shadow slot is written.
func (np *NP) StageInstallDomainAll(domain, name string, binary, graph []byte, param uint32) error {
	cores, err := np.DomainCores(domain)
	if err != nil {
		return err
	}
	if len(cores) == 0 {
		return fmt.Errorf("npu: domain %q owns no cores", domain)
	}
	prepared := make([]*preparedApp, len(cores))
	for i := range cores {
		p, err := np.prepare(name, binary, graph, param)
		if err != nil {
			return err
		}
		prepared[i] = p
	}
	for i, coreID := range cores {
		slot := np.slots[coreID]
		slot.mu.Lock()
		slot.staged = prepared[i]
		slot.mu.Unlock()
		slot.ring.Emit(obs.EvStage, 0, 0)
		np.mStages.Inc()
	}
	return nil
}

// CommitDomain is Commit gated on domain ownership.
func (np *NP) CommitDomain(domain string, coreID int) (uint64, error) {
	if err := np.checkDomain(domain, coreID); err != nil {
		return 0, err
	}
	return np.Commit(coreID)
}

// CommitDomainAll commits every core the domain owns, all-or-nothing
// within the domain: if any owned core has nothing staged, no owned core
// is cut over. Other domains' staged bundles are invisible to the check
// and untouched by the commit.
func (np *NP) CommitDomainAll(domain string) (uint64, error) {
	cores, err := np.DomainCores(domain)
	if err != nil {
		return 0, err
	}
	for _, coreID := range cores {
		if !np.HasStaged(coreID) {
			return 0, fmt.Errorf("npu: core %d: %w", coreID, ErrNothingStaged)
		}
	}
	var cycles uint64
	for _, coreID := range cores {
		c, err := np.Commit(coreID)
		if err != nil {
			return cycles, err
		}
		cycles += c
	}
	return cycles, nil
}

// RollbackDomain is Rollback gated on domain ownership.
func (np *NP) RollbackDomain(domain string, coreID int) (uint64, error) {
	if err := np.checkDomain(domain, coreID); err != nil {
		return 0, err
	}
	return np.Rollback(coreID)
}

// RollbackDomainAll rolls back every core the domain owns, all-or-nothing
// within the domain.
func (np *NP) RollbackDomainAll(domain string) (uint64, error) {
	cores, err := np.DomainCores(domain)
	if err != nil {
		return 0, err
	}
	for _, coreID := range cores {
		if !np.CanRollback(coreID) {
			return 0, fmt.Errorf("npu: core %d: %w", coreID, ErrNothingRetained)
		}
	}
	var cycles uint64
	for _, coreID := range cores {
		c, err := np.Rollback(coreID)
		if err != nil {
			return cycles, err
		}
		cycles += c
	}
	return cycles, nil
}

// AbortStagedDomain discards staged bundles on every core the domain owns.
func (np *NP) AbortStagedDomain(domain string) error {
	cores, err := np.DomainCores(domain)
	if err != nil {
		return err
	}
	for _, coreID := range cores {
		_ = np.AbortStaged(coreID)
	}
	return nil
}

// QuarantineDomain is Quarantine gated on domain ownership: a tenant's
// responder can isolate its own cores and no one else's.
func (np *NP) QuarantineDomain(domain string, coreID int) error {
	if err := np.checkDomain(domain, coreID); err != nil {
		return err
	}
	return np.Quarantine(coreID)
}

// StatsDomain returns the domain's stat account: the outcomes of exactly
// the packets that ran on its cores since the partition was installed.
// With no partition installed, the root domain "" reads as the NP
// aggregate.
func (np *NP) StatsDomain(name string) (Stats, error) {
	np.statsMu.Lock()
	defer np.statsMu.Unlock()
	idx := np.domainIdxLocked(name)
	if idx < 0 {
		return Stats{}, fmt.Errorf("npu: %w: %q", ErrUnknownDomain, name)
	}
	if len(np.domains) == 1 {
		return np.stats, nil
	}
	return np.domStats[idx], nil
}

// HealthyDomain reports whether at least one core the domain owns can take
// traffic — the per-tenant health probe of the shard plane's failover
// logic. An unknown domain is never healthy.
func (np *NP) HealthyDomain(name string) bool {
	idx, err := np.domainIdx(name)
	if err != nil {
		return false
	}
	for coreID, s := range np.slots {
		np.statsMu.Lock()
		mine := np.slotDomain[coreID] == idx
		np.statsMu.Unlock()
		if !mine {
			continue
		}
		s.mu.Lock()
		ok := s.available()
		s.mu.Unlock()
		if ok {
			return true
		}
	}
	return false
}

// AvailableCoresDomain counts the domain's loaded, non-quarantined cores.
func (np *NP) AvailableCoresDomain(name string) (int, error) {
	idx, err := np.domainIdx(name)
	if err != nil {
		return 0, err
	}
	n := 0
	for coreID, s := range np.slots {
		np.statsMu.Lock()
		mine := np.slotDomain[coreID] == idx
		np.statsMu.Unlock()
		if !mine {
			continue
		}
		s.mu.Lock()
		if s.available() {
			n++
		}
		s.mu.Unlock()
	}
	return n, nil
}
