package npu

import (
	"sort"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/packet"
)

func TestLibraryLoadAndSwitch(t *testing.T) {
	np := newNP(t, 1, true)
	if err := np.LoadLibraryApp(apps.IPv4CM(), 0x1001); err != nil {
		t.Fatal(err)
	}
	if err := np.LoadLibraryApp(apps.UDPEcho(), 0x1002); err != nil {
		t.Fatal(err)
	}
	if err := np.LoadLibraryApp(apps.Counter(), 0x1003); err != nil {
		t.Fatal(err)
	}
	names := np.Library()
	sort.Strings(names)
	if len(names) != 3 || names[0] != "counter" {
		t.Fatalf("library = %v", names)
	}

	gen := packet.NewGenerator(71)
	gen.OptionWords = 1
	for _, name := range []string{"ipv4cm", "udpecho", "counter", "ipv4cm"} {
		cycles, err := np.Switch(0, name)
		if err != nil {
			t.Fatalf("switch to %s: %v", name, err)
		}
		if cycles == 0 || cycles > 1000 {
			t.Errorf("switch cost %d cycles implausible", cycles)
		}
		// Traffic flows alarm-free immediately after every switch.
		for i := 0; i < 20; i++ {
			res, err := np.Process(gen.Next(), 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Detected {
				t.Fatalf("false alarm after switching to %s", name)
			}
		}
		if got, _ := np.AppOn(0); got != name {
			t.Errorf("AppOn = %s, want %s", got, name)
		}
	}
}

func TestSwitchErrors(t *testing.T) {
	np := newNP(t, 1, true)
	if _, err := np.Switch(0, "ghost"); err == nil {
		t.Error("switch to unloaded app accepted")
	}
	if err := np.LoadLibraryApp(apps.Counter(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := np.Switch(5, "counter"); err == nil {
		t.Error("switch on bad core accepted")
	}
}

func TestLoadLibraryValidates(t *testing.T) {
	np := newNP(t, 1, true)
	bin, g := makeBundle(t, apps.IPv4CM(), 7)
	if err := np.LoadLibrary("x", bin, g, 8); err == nil {
		t.Error("mismatched parameter accepted into library")
	}
	if err := np.LoadLibrary("x", []byte("junk"), g, 7); err == nil {
		t.Error("junk binary accepted into library")
	}
	if err := np.LoadLibrary("x", bin, []byte("junk"), 7); err == nil {
		t.Error("junk graph accepted into library")
	}
}

// The paper's quantitative contrast: a resident switch costs microseconds
// at 100 MHz while a fresh secure installation costs ~25 s on the
// prototype (Table 2) — about six orders of magnitude.
func TestSwitchVsInstallCostGap(t *testing.T) {
	np := newNP(t, 1, true)
	if err := np.LoadLibraryApp(apps.IPv4CM(), 0xAA); err != nil {
		t.Fatal(err)
	}
	cycles, err := np.Switch(0, "ipv4cm")
	if err != nil {
		t.Fatal(err)
	}
	switchSeconds := float64(cycles) / 100e6
	const installSeconds = 25.0 // Table 2 total
	if ratio := installSeconds / switchSeconds; ratio < 1e5 {
		t.Errorf("install/switch ratio %.0f, expected >= 1e5", ratio)
	}
}
