package npu

import (
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/attack"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
	"sdmmon/internal/packet"
)

// fuzzNP builds an NP with ipv4cm and monitors installed, without a
// *testing.T (fuzz targets construct state under *testing.F).
func fuzzNP(cores int) (*NP, error) {
	np, err := New(Config{Cores: cores, MonitorsEnabled: true})
	if err != nil {
		return nil, err
	}
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		return nil, err
	}
	const param = 0x600D
	g, err := monitor.Extract(prog, mhash.NewMerkle(param))
	if err != nil {
		return nil, err
	}
	if err := np.InstallAll("ipv4cm", prog.Serialize(), g.Serialize(), param); err != nil {
		return nil, err
	}
	return np, nil
}

// FuzzProcessPacket throws arbitrary bytes at an installed ipv4cm core with
// monitors enabled. Whatever the bytes — truncated headers, garbage options,
// crafted attack payloads — the data plane must not panic, the statistics
// must not drift (every accepted packet counted exactly once, conservation
// preserved), and a monitor alarm must always translate into a drop verdict
// (the paper's recovery sequence).
func FuzzProcessPacket(f *testing.F) {
	gen := packet.NewGenerator(77)
	gen.OptionWords = 1
	f.Add(gen.Next())
	f.Add(gen.Next())
	smash := attack.DefaultSmash()
	if code, err := smash.HijackPayload(); err == nil {
		if pkt, err := smash.CraftPacket(code); err == nil {
			f.Add(pkt)
		}
	}
	f.Add([]byte(nil))
	f.Add([]byte{0x45})
	f.Add(make([]byte, 20))

	np, err := fuzzNP(1)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, pkt []byte) {
		before := np.Stats()
		res, err := np.ProcessOn(0, pkt, 0)
		after := np.Stats()
		if err != nil {
			// Only an oversized packet may be rejected, and a rejected
			// packet must leave the statistics untouched.
			if len(pkt) <= apps.MemSize-apps.PktBase {
				t.Fatalf("in-range packet (%d bytes) rejected: %v", len(pkt), err)
			}
			if after != before {
				t.Fatalf("rejected packet changed stats: %+v -> %+v", before, after)
			}
			return
		}
		if after.Processed != before.Processed+1 {
			t.Fatalf("Processed %d -> %d for one packet", before.Processed, after.Processed)
		}
		if after.Processed != after.Forwarded+after.Dropped {
			t.Fatalf("stats conservation violated: %+v", after)
		}
		if res.Detected && res.Verdict != apps.VerdictDrop {
			t.Fatalf("alarm without drop verdict: %+v", res)
		}
		if res.Detected && res.Faulted {
			t.Fatalf("result both detected and faulted: %+v", res)
		}
	})
}
