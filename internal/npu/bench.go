package npu

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"sdmmon/internal/apps"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
	"sdmmon/internal/obs"
	"sdmmon/internal/packet"
)

// Throughput harness shared by `cmd/npsim -bench` and the top-level
// BenchmarkNPThroughput. Both emit the same machine-readable BENCH_npu.json
// so future PRs have a perf trajectory to compare against.

// ThroughputConfig describes one measurement point.
type ThroughputConfig struct {
	App         string // application name; "" selects ipv4cm
	Cores       int
	Batch       int   // packets per ProcessBatch call
	Packets     int   // total packets to time (rounded up to whole batches)
	Reference   bool  // pre-optimization path (map NFA + uncached hash unit)
	Seed        int64 // traffic and hash-parameter seed
	OptionWords int   // IP option words in benign traffic
	// QuarantineCores removes the first N cores from dispatch before the
	// timed region — the degraded-mode throughput point (graceful
	// degradation after the supervisor isolates faulty cores).
	QuarantineCores int
	// Instrumented attaches a live telemetry collector (counters, per-core
	// cycle histograms, event rings) for the timed region — the
	// observability-overhead point, to be compared against the bare point
	// of the same shape.
	Instrumented bool
}

// BenchPoint is one measured sweep point of the throughput harness.
type BenchPoint struct {
	Path string `json:"path"` // "fast", "reference" or "shard"
	// Cores is the per-NP core count (per-shard on the "shard" path).
	Cores int `json:"cores"`
	// Shards > 0 marks a sharded-plane point measured across that many NPs.
	Shards          int     `json:"shards,omitempty"`
	Batch           int     `json:"batch"`
	Packets         uint64  `json:"packets"`
	WallSeconds     float64 `json:"wall_seconds"`
	PktsPerSec      float64 `json:"pkts_per_sec"`
	NsPerPkt        float64 `json:"ns_per_pkt"`
	SimCyclesPerPkt float64 `json:"sim_cycles_per_pkt"`
	// SimAggPktsPerSec is the simulated-hardware aggregate throughput of a
	// sharded point: packets divided by the plane's virtual-time makespan
	// (the slowest shard's busy cycles over its core count, at the modeled
	// clock). Wall-clock throughput on the simulation host cannot show
	// line-card scaling — the host interleaves every simulated core on the
	// CPUs it has — so the scaling claim is made in virtual time and the
	// wall numbers are reported alongside for honesty.
	SimAggPktsPerSec float64 `json:"sim_agg_pkts_per_sec,omitempty"`
	// P99BatchCycles is the 99th-percentile per-batch simulated cycle cost
	// on a sharded point (batch latency in virtual time).
	P99BatchCycles uint64 `json:"p99_batch_cycles,omitempty"`
	// Submitters > 0 marks an ingress point (path "ingress_ring" or
	// "ingress_mutex"): that many concurrent producers fed one consumer.
	Submitters  int     `json:"submitters,omitempty"`
	HashHitRate float64 `json:"hash_hit_rate"` // 0 on the reference path
	// QuarantinedCores > 0 marks a degraded-mode point: that many cores
	// were quarantined before the timed region.
	QuarantinedCores int `json:"quarantined_cores,omitempty"`
	// Instrumented marks a point measured with a live telemetry collector.
	Instrumented bool `json:"instrumented,omitempty"`
}

// Key identifies the sweep point independent of which path produced it.
func (p BenchPoint) Key() string {
	k := fmt.Sprintf("cores=%d/batch=%d", p.Cores, p.Batch)
	if p.Shards > 0 {
		k = fmt.Sprintf("shards=%d/", p.Shards) + k
	}
	if p.QuarantinedCores > 0 {
		k += fmt.Sprintf("/quarantined=%d", p.QuarantinedCores)
	}
	if p.Instrumented {
		k += "/instrumented"
	}
	if p.Submitters > 0 {
		k += fmt.Sprintf("/submitters=%d", p.Submitters)
	}
	return k
}

// bareKey is the key of the uninstrumented point of the same shape.
func (p BenchPoint) bareKey() string {
	bare := p
	bare.Instrumented = false
	return bare.Key()
}

// BenchReport is the BENCH_npu.json document.
type BenchReport struct {
	App        string       `json:"app"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Source     string       `json:"source"`
	Points     []BenchPoint `json:"points"`
	// SpeedupFastVsReference maps a sweep-point key to fast-path pps divided
	// by reference-path pps, for every point measured on both paths.
	SpeedupFastVsReference map[string]float64 `json:"speedup_fast_vs_reference,omitempty"`
	// OverheadInstrumented maps a sweep-point key to bare-path ns/pkt
	// divided by instrumented ns/pkt inverse — i.e. instrumented time over
	// bare time — for every shape measured both ways. 1.03 = 3% slower with
	// telemetry on.
	OverheadInstrumented map[string]float64 `json:"overhead_instrumented,omitempty"`
	// ShardScaling maps a sharded point's key to its simulated aggregate
	// throughput divided by the 1-shard point of the same per-shard shape —
	// the line-card scaling curve.
	ShardScaling map[string]float64 `json:"shard_scaling,omitempty"`
	// IngressFast maps an ingress point's key to ring-ingress pps divided
	// by mutex-queue pps of the same shape (batch, submitters) — the
	// speedup of the lock-free hand-off over the pre-ring implementation.
	IngressFast map[string]float64 `json:"ingress_fast,omitempty"`
	// FleetRollout maps "routers=N/loss=P%" to one complete control-plane
	// rotation rollout at that scale and management-link loss rate, in
	// virtual link-seconds (measured by internal/fleet; Write leaves the
	// series untouched — only the derived ratio maps are recomputed).
	FleetRollout map[string]FleetRolloutPoint `json:"fleet_rollout,omitempty"`
	// CampaignDetection maps an attack-campaign family name to its
	// detection-latency distribution over a seed sweep (measured by
	// internal/campaign; Write leaves the series untouched). Latencies are
	// in packets admitted before the classifier reached the family's
	// detection level — the adversarial-robustness trajectory the bench
	// document carries so future PRs can see detection regress.
	CampaignDetection map[string]CampaignDetectionPoint `json:"campaign_detection,omitempty"`
	// TenantIsolation maps "tenants=N" to a per-tenant throughput
	// measurement on a partitioned plane (measured by internal/tenant;
	// Write recomputes only the derived MinVsBaseline ratios). Each tenant
	// owns the same core count at every N, so ideal isolation keeps the
	// slowest tenant's throughput at the tenants=1 baseline instead of
	// dividing it by N.
	TenantIsolation map[string]TenantIsolationPoint `json:"tenant_isolation,omitempty"`
}

// FleetRolloutPoint is one fleet_rollout series entry. The fields mirror
// fleet.RolloutMeasurement (internal/fleet depends on this package, so the
// bench document declares its own shape).
type FleetRolloutPoint struct {
	Routers           int     `json:"routers"`
	Groups            int     `json:"groups"`
	DropRate          float64 `json:"drop_rate"`
	MakespanSeconds   float64 `json:"makespan_seconds"`
	TotalAttempts     uint64  `json:"total_attempts"`
	AttemptsPerRouter float64 `json:"attempts_per_router"`
}

// CampaignDetectionPoint is one campaign_detection series entry. The
// fields mirror campaign.DetectionDistribution (internal/campaign depends
// on this package, so the bench document declares its own shape).
type CampaignDetectionPoint struct {
	Family           string  `json:"family"`
	Runs             int     `json:"runs"`
	Detected         int     `json:"detected"`
	P50              int64   `json:"p50"`
	P99              int64   `json:"p99"`
	Min              int64   `json:"min"`
	Max              int64   `json:"max"`
	MeanEvasionDepth float64 `json:"mean_evasion_depth"`
}

// TenantIsolationPoint is one tenant_isolation series entry. The fields
// mirror tenant.IsolationPoint (internal/tenant depends on this package,
// so the bench document declares its own shape).
type TenantIsolationPoint struct {
	Tenants          int       `json:"tenants"`
	Shards           int       `json:"shards"`
	CoresPerTenant   int       `json:"cores_per_tenant"`
	PacketsPerTenant uint64    `json:"packets_per_tenant"`
	PerTenant        []float64 `json:"per_tenant_pkts_per_sec"`
	MinPktsPerSec    float64   `json:"min_pkts_per_sec"`
	AggPktsPerSec    float64   `json:"agg_pkts_per_sec"`
	// MinVsBaseline is this point's MinPktsPerSec over the tenants=1
	// point's, recomputed by Write; ~1.0 means adding tenants cost the
	// slowest tenant nothing.
	MinVsBaseline float64 `json:"min_vs_baseline,omitempty"`
}

// Add records a point, replacing any earlier measurement of the same
// (path, cores, batch) — benchmark frameworks re-run sub-benchmarks with
// growing iteration counts and only the last (longest) run should stick.
func (r *BenchReport) Add(p BenchPoint) {
	for i := range r.Points {
		if r.Points[i].Path == p.Path && r.Points[i].Key() == p.Key() {
			r.Points[i] = p
			return
		}
	}
	r.Points = append(r.Points, p)
}

// Write recomputes the speedup table and writes the report as indented JSON.
func (r *BenchReport) Write(path string) error {
	fast := make(map[string]float64)
	ref := make(map[string]float64)
	for _, p := range r.Points {
		if p.Path == "reference" {
			ref[p.Key()] = p.PktsPerSec
		} else {
			fast[p.Key()] = p.PktsPerSec
		}
	}
	r.SpeedupFastVsReference = nil
	for k, f := range fast {
		if rp, ok := ref[k]; ok && rp > 0 {
			if r.SpeedupFastVsReference == nil {
				r.SpeedupFastVsReference = make(map[string]float64)
			}
			r.SpeedupFastVsReference[k] = f / rp
		}
	}
	// Instrumented-vs-bare delta for every shape measured both ways (same
	// path, same cores/batch, one with a live collector).
	bare := make(map[string]float64)
	for _, p := range r.Points {
		if !p.Instrumented {
			bare[p.Path+"/"+p.Key()] = p.PktsPerSec
		}
	}
	r.OverheadInstrumented = nil
	for _, p := range r.Points {
		if !p.Instrumented || p.PktsPerSec <= 0 {
			continue
		}
		if bp, ok := bare[p.Path+"/"+p.bareKey()]; ok && bp > 0 {
			if r.OverheadInstrumented == nil {
				r.OverheadInstrumented = make(map[string]float64)
			}
			r.OverheadInstrumented[p.Path+"/"+p.bareKey()] = bp / p.PktsPerSec
		}
	}
	// Line-card scaling: every sharded point against the 1-shard point of
	// the same per-shard shape, in simulated aggregate throughput.
	r.ShardScaling = nil
	base := make(map[string]float64)
	for _, p := range r.Points {
		if p.Shards == 1 && p.SimAggPktsPerSec > 0 {
			base[fmt.Sprintf("cores=%d/batch=%d", p.Cores, p.Batch)] = p.SimAggPktsPerSec
		}
	}
	for _, p := range r.Points {
		if p.Shards <= 0 || p.SimAggPktsPerSec <= 0 {
			continue
		}
		if b, ok := base[fmt.Sprintf("cores=%d/batch=%d", p.Cores, p.Batch)]; ok && b > 0 {
			if r.ShardScaling == nil {
				r.ShardScaling = make(map[string]float64)
			}
			r.ShardScaling[p.Key()] = p.SimAggPktsPerSec / b
		}
	}
	// Lock-free ingress vs the mutex-queue baseline, per shape.
	r.IngressFast = nil
	mtx := make(map[string]float64)
	for _, p := range r.Points {
		if p.Path == "ingress_mutex" && p.PktsPerSec > 0 {
			mtx[p.Key()] = p.PktsPerSec
		}
	}
	for _, p := range r.Points {
		if p.Path != "ingress_ring" || p.PktsPerSec <= 0 {
			continue
		}
		if m, ok := mtx[p.Key()]; ok && m > 0 {
			if r.IngressFast == nil {
				r.IngressFast = make(map[string]float64)
			}
			r.IngressFast[p.Key()] = p.PktsPerSec / m
		}
	}
	// Tenant isolation vs the single-tenant baseline of the same shape.
	if base, ok := r.TenantIsolation["tenants=1"]; ok && base.MinPktsPerSec > 0 {
		for k, p := range r.TenantIsolation {
			p.MinVsBaseline = p.MinPktsPerSec / base.MinPktsPerSec
			r.TenantIsolation[k] = p
		}
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBenchReport reads an existing BENCH document so a partial sweep
// (make bench-ingress) can refresh its own series while every other
// point and pass-through series survives; Write recomputes the derived
// ratio maps from whatever points remain.
func LoadBenchReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// NewBenchNP builds an NP with the named application and its monitoring
// graph installed on every core — the standard fixture for throughput runs.
func NewBenchNP(appName string, cores int, reference bool, seed int64) (*NP, error) {
	return NewBenchNPWith(appName, cores, reference, seed, nil)
}

// NewBenchNPWith is NewBenchNP with an optional telemetry collector attached
// (the instrumented-overhead fixture).
func NewBenchNPWith(appName string, cores int, reference bool, seed int64, col *obs.Collector) (*NP, error) {
	if appName == "" {
		appName = "ipv4cm"
	}
	app, err := apps.ByName(appName)
	if err != nil {
		return nil, err
	}
	prog, err := app.Program()
	if err != nil {
		return nil, err
	}
	param := uint32(seed)*2654435761 + 0x600D
	g, err := monitor.Extract(prog, mhash.NewMerkle(param))
	if err != nil {
		return nil, err
	}
	np, err := New(Config{Cores: cores, MonitorsEnabled: true, Reference: reference, Obs: col})
	if err != nil {
		return nil, err
	}
	if err := np.InstallAll(appName, prog.Serialize(), g.Serialize(), param); err != nil {
		return nil, err
	}
	return np, nil
}

// BenchPackets generates a reusable batch of benign traffic.
func BenchPackets(n int, seed int64, optWords int) [][]byte {
	gen := packet.NewGenerator(seed)
	gen.OptionWords = optWords
	pkts := make([][]byte, n)
	for i := range pkts {
		pkts[i] = gen.Next()
	}
	return pkts
}

// HashCacheStats sums the per-core instruction-hash cache counters. Both are
// zero on the Reference path (which has no cache).
func (np *NP) HashCacheStats() (hits, misses uint64) {
	for _, s := range np.slots {
		if !s.loaded {
			continue
		}
		if pm, ok := s.mon.(*monitor.PackedMonitor); ok {
			h, m := pm.CacheStats()
			hits += h
			misses += m
		}
	}
	return hits, misses
}

// MeasureThroughput runs one sweep point: build the NP, warm one batch, then
// time cfg.Packets packets (rounded up to whole batches) through
// ProcessBatch under wall-clock.
func MeasureThroughput(cfg ThroughputConfig) (BenchPoint, error) {
	if cfg.Cores < 1 || cfg.Batch < 1 {
		return BenchPoint{}, fmt.Errorf("npu: bench needs cores >= 1 and batch >= 1")
	}
	if cfg.Packets < cfg.Batch {
		cfg.Packets = cfg.Batch
	}
	if cfg.QuarantineCores < 0 || cfg.QuarantineCores >= cfg.Cores {
		return BenchPoint{}, fmt.Errorf("npu: bench needs 0 <= quarantined cores < cores")
	}
	var col *obs.Collector
	if cfg.Instrumented {
		col = obs.New(obs.DefaultRingDepth)
	}
	np, err := NewBenchNPWith(cfg.App, cfg.Cores, cfg.Reference, cfg.Seed, col)
	if err != nil {
		return BenchPoint{}, err
	}
	// Degraded mode: knock out the first N cores the way the supervisor
	// would, leaving dispatch to route around them.
	for i := 0; i < cfg.QuarantineCores; i++ {
		if err := np.Quarantine(i); err != nil {
			return BenchPoint{}, err
		}
	}
	optWords := cfg.OptionWords
	if optWords == 0 {
		optWords = 1
	}
	pkts := BenchPackets(cfg.Batch, cfg.Seed+1, optWords)
	// Warm-up: populate the hash caches and size the batch arena, so the
	// timed region measures the allocation-free steady state.
	if _, err := np.ProcessBatch(pkts, 0); err != nil {
		return BenchPoint{}, err
	}
	before := np.Stats()
	hitsBefore, missesBefore := np.HashCacheStats()
	rounds := (cfg.Packets + cfg.Batch - 1) / cfg.Batch
	start := time.Now()
	for r := 0; r < rounds; r++ {
		if _, err := np.ProcessBatch(pkts, 0); err != nil {
			return BenchPoint{}, err
		}
	}
	wall := time.Since(start).Seconds()
	after := np.Stats()
	hits, misses := np.HashCacheStats()
	hits -= hitsBefore
	misses -= missesBefore

	p := BenchPoint{
		Cores:            cfg.Cores,
		Batch:            cfg.Batch,
		Packets:          after.Processed - before.Processed,
		WallSeconds:      wall,
		QuarantinedCores: cfg.QuarantineCores,
		Instrumented:     cfg.Instrumented,
	}
	if cfg.Reference {
		p.Path = "reference"
	} else {
		p.Path = "fast"
	}
	if wall > 0 {
		p.PktsPerSec = float64(p.Packets) / wall
		p.NsPerPkt = wall * 1e9 / float64(p.Packets)
	}
	if p.Packets > 0 {
		p.SimCyclesPerPkt = float64(after.Cycles-before.Cycles) / float64(p.Packets)
	}
	if total := hits + misses; total > 0 {
		p.HashHitRate = float64(hits) / float64(total)
	}
	return p, nil
}

// NewBenchReport builds an empty report stamped with the runtime shape.
func NewBenchReport(app, source string) *BenchReport {
	if app == "" {
		app = "ipv4cm"
	}
	return &BenchReport{App: app, GOMAXPROCS: runtime.GOMAXPROCS(0), Source: source}
}
