package isa

import "fmt"

// Disasm renders the instruction word at byte address pc as assembly text in
// the same syntax accepted by the internal assembler, so that
// asm → isa → Disasm → asm round-trips.
func Disasm(pc uint32, w Word) string {
	if w == NOP {
		return "nop"
	}
	switch w.Op() {
	case OpSpecial:
		return disasmSpecial(w)
	case OpRegImm:
		return disasmRegImm(pc, w)
	case OpJ:
		return fmt.Sprintf("j 0x%x", JumpTarget(pc, w))
	case OpJAL:
		return fmt.Sprintf("jal 0x%x", JumpTarget(pc, w))
	case OpBEQ:
		return fmt.Sprintf("beq %s, %s, 0x%x", RegName(w.Rs()), RegName(w.Rt()), BranchTarget(pc, w))
	case OpBNE:
		return fmt.Sprintf("bne %s, %s, 0x%x", RegName(w.Rs()), RegName(w.Rt()), BranchTarget(pc, w))
	case OpBLEZ:
		return fmt.Sprintf("blez %s, 0x%x", RegName(w.Rs()), BranchTarget(pc, w))
	case OpBGTZ:
		return fmt.Sprintf("bgtz %s, 0x%x", RegName(w.Rs()), BranchTarget(pc, w))
	case OpADDI:
		return fmt.Sprintf("addi %s, %s, %d", RegName(w.Rt()), RegName(w.Rs()), w.SImm())
	case OpADDIU:
		return fmt.Sprintf("addiu %s, %s, %d", RegName(w.Rt()), RegName(w.Rs()), w.SImm())
	case OpSLTI:
		return fmt.Sprintf("slti %s, %s, %d", RegName(w.Rt()), RegName(w.Rs()), w.SImm())
	case OpSLTIU:
		return fmt.Sprintf("sltiu %s, %s, %d", RegName(w.Rt()), RegName(w.Rs()), w.SImm())
	case OpANDI:
		return fmt.Sprintf("andi %s, %s, 0x%x", RegName(w.Rt()), RegName(w.Rs()), w.Imm())
	case OpORI:
		return fmt.Sprintf("ori %s, %s, 0x%x", RegName(w.Rt()), RegName(w.Rs()), w.Imm())
	case OpXORI:
		return fmt.Sprintf("xori %s, %s, 0x%x", RegName(w.Rt()), RegName(w.Rs()), w.Imm())
	case OpLUI:
		return fmt.Sprintf("lui %s, 0x%x", RegName(w.Rt()), w.Imm())
	case OpLB:
		return memForm("lb", w)
	case OpLH:
		return memForm("lh", w)
	case OpLW:
		return memForm("lw", w)
	case OpLBU:
		return memForm("lbu", w)
	case OpLHU:
		return memForm("lhu", w)
	case OpSB:
		return memForm("sb", w)
	case OpSH:
		return memForm("sh", w)
	case OpSW:
		return memForm("sw", w)
	}
	return fmt.Sprintf(".word 0x%08x", uint32(w))
}

func memForm(mn string, w Word) string {
	return fmt.Sprintf("%s %s, %d(%s)", mn, RegName(w.Rt()), w.SImm(), RegName(w.Rs()))
}

func disasmSpecial(w Word) string {
	rd, rs, rt := RegName(w.Rd()), RegName(w.Rs()), RegName(w.Rt())
	switch w.Fn() {
	case FnSLL:
		return fmt.Sprintf("sll %s, %s, %d", rd, rt, w.Shamt())
	case FnSRL:
		return fmt.Sprintf("srl %s, %s, %d", rd, rt, w.Shamt())
	case FnSRA:
		return fmt.Sprintf("sra %s, %s, %d", rd, rt, w.Shamt())
	case FnSLLV:
		return fmt.Sprintf("sllv %s, %s, %s", rd, rt, rs)
	case FnSRLV:
		return fmt.Sprintf("srlv %s, %s, %s", rd, rt, rs)
	case FnSRAV:
		return fmt.Sprintf("srav %s, %s, %s", rd, rt, rs)
	case FnJR:
		return fmt.Sprintf("jr %s", rs)
	case FnJALR:
		if w.Rd() == RegRA {
			return fmt.Sprintf("jalr %s", rs)
		}
		return fmt.Sprintf("jalr %s, %s", rd, rs)
	case FnSYSCALL:
		return "syscall"
	case FnBREAK:
		return "break"
	case FnMFHI:
		return fmt.Sprintf("mfhi %s", rd)
	case FnMTHI:
		return fmt.Sprintf("mthi %s", rs)
	case FnMFLO:
		return fmt.Sprintf("mflo %s", rd)
	case FnMTLO:
		return fmt.Sprintf("mtlo %s", rs)
	case FnMULT:
		return fmt.Sprintf("mult %s, %s", rs, rt)
	case FnMULTU:
		return fmt.Sprintf("multu %s, %s", rs, rt)
	case FnDIV:
		return fmt.Sprintf("div %s, %s", rs, rt)
	case FnDIVU:
		return fmt.Sprintf("divu %s, %s", rs, rt)
	case FnADD:
		return fmt.Sprintf("add %s, %s, %s", rd, rs, rt)
	case FnADDU:
		return fmt.Sprintf("addu %s, %s, %s", rd, rs, rt)
	case FnSUB:
		return fmt.Sprintf("sub %s, %s, %s", rd, rs, rt)
	case FnSUBU:
		return fmt.Sprintf("subu %s, %s, %s", rd, rs, rt)
	case FnAND:
		return fmt.Sprintf("and %s, %s, %s", rd, rs, rt)
	case FnOR:
		return fmt.Sprintf("or %s, %s, %s", rd, rs, rt)
	case FnXOR:
		return fmt.Sprintf("xor %s, %s, %s", rd, rs, rt)
	case FnNOR:
		return fmt.Sprintf("nor %s, %s, %s", rd, rs, rt)
	case FnSLT:
		return fmt.Sprintf("slt %s, %s, %s", rd, rs, rt)
	case FnSLTU:
		return fmt.Sprintf("sltu %s, %s, %s", rd, rs, rt)
	}
	return fmt.Sprintf(".word 0x%08x", uint32(w))
}

func disasmRegImm(pc uint32, w Word) string {
	rs := RegName(w.Rs())
	t := BranchTarget(pc, w)
	switch w.Rt() {
	case RtBLTZ:
		return fmt.Sprintf("bltz %s, 0x%x", rs, t)
	case RtBGEZ:
		return fmt.Sprintf("bgez %s, 0x%x", rs, t)
	case RtBLTZAL:
		return fmt.Sprintf("bltzal %s, 0x%x", rs, t)
	case RtBGEZAL:
		return fmt.Sprintf("bgezal %s, 0x%x", rs, t)
	}
	return fmt.Sprintf(".word 0x%08x", uint32(w))
}
