package isa

import (
	"strings"
	"testing"
)

// Every implemented instruction must disassemble to real text (never the
// .word fallback) and name its operands consistently.
func TestDisasmCoversEveryValidForm(t *testing.T) {
	var words []Word
	// All SPECIAL functions.
	for _, fn := range []uint32{
		FnSLL, FnSRL, FnSRA, FnSLLV, FnSRLV, FnSRAV,
		FnJR, FnJALR, FnSYSCALL, FnBREAK,
		FnMFHI, FnMTHI, FnMFLO, FnMTLO,
		FnMULT, FnMULTU, FnDIV, FnDIVU,
		FnADD, FnADDU, FnSUB, FnSUBU,
		FnAND, FnOR, FnXOR, FnNOR, FnSLT, FnSLTU,
	} {
		words = append(words, EncodeR(fn, RegT0, RegT1, RegT2, 3))
		words = append(words, EncodeR(fn, RegA0, RegA1, RegRA, 0))
	}
	// All I-type opcodes.
	for _, op := range []uint32{
		OpADDI, OpADDIU, OpSLTI, OpSLTIU, OpANDI, OpORI, OpXORI, OpLUI,
		OpBEQ, OpBNE, OpBLEZ, OpBGTZ,
		OpLB, OpLH, OpLW, OpLBU, OpLHU, OpSB, OpSH, OpSW,
	} {
		words = append(words, EncodeI(op, RegSP, RegT3, 0x10))
		words = append(words, EncodeI(op, RegGP, RegS0, 0xFFF0))
	}
	// REGIMM selectors and jumps.
	for _, rt := range []uint32{RtBLTZ, RtBGEZ, RtBLTZAL, RtBGEZAL} {
		words = append(words, EncodeI(OpRegImm, RegT4, rt, 8))
	}
	words = append(words, EncodeJ(OpJ, 0x1000), EncodeJ(OpJAL, 0x2000))

	for _, w := range words {
		if !Valid(w) {
			t.Fatalf("%08x should be valid", uint32(w))
		}
		text := Disasm(0x400, w)
		if strings.HasPrefix(text, ".word") {
			t.Errorf("%08x disassembles to fallback %q", uint32(w), text)
		}
		if text == "" {
			t.Errorf("%08x disassembles to empty string", uint32(w))
		}
	}
}

func TestDisasmFallbacksOnReservedEncodings(t *testing.T) {
	for _, w := range []Word{
		EncodeR(0x3E, 0, 0, 0, 0),     // reserved SPECIAL fn
		EncodeI(OpRegImm, 0, 0x15, 0), // reserved REGIMM rt
		Word(0x2F) << 26,              // reserved major opcode
	} {
		if got := Disasm(0, w); !strings.HasPrefix(got, ".word") {
			t.Errorf("%08x: expected .word fallback, got %q", uint32(w), got)
		}
	}
}

func TestRegNameOutOfRange(t *testing.T) {
	if got := RegName(40); !strings.Contains(got, "?") {
		t.Errorf("RegName(40) = %q", got)
	}
}
