package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFieldAccessors(t *testing.T) {
	// add $t0, $t1, $t2 -> opcode 0, rs=9, rt=10, rd=8, fn=0x20
	w := EncodeR(FnADD, RegT1, RegT2, RegT0, 0)
	if w.Op() != OpSpecial {
		t.Errorf("Op = %#x, want SPECIAL", w.Op())
	}
	if w.Rs() != RegT1 || w.Rt() != RegT2 || w.Rd() != RegT0 {
		t.Errorf("fields rs=%d rt=%d rd=%d", w.Rs(), w.Rt(), w.Rd())
	}
	if w.Fn() != FnADD {
		t.Errorf("Fn = %#x, want %#x", w.Fn(), FnADD)
	}
}

func TestEncodeIImmediates(t *testing.T) {
	w := EncodeI(OpADDIU, RegSP, RegSP, 0xFFFC) // addiu sp, sp, -4
	if w.SImm() != -4 {
		t.Errorf("SImm = %d, want -4", w.SImm())
	}
	if w.Imm() != 0xFFFC {
		t.Errorf("Imm = %#x, want 0xFFFC", w.Imm())
	}
}

func TestEncodeJTargetRoundTrip(t *testing.T) {
	for _, addr := range []uint32{0x0, 0x400, 0x0003FFFC, 0x01234568} {
		w := EncodeJ(OpJ, addr)
		got := JumpTarget(0x100, w)
		if got != addr {
			t.Errorf("JumpTarget(EncodeJ(%#x)) = %#x", addr, got)
		}
	}
}

func TestBranchTarget(t *testing.T) {
	// beq at pc=0x100 with offset +3 words targets 0x100+4+12 = 0x110.
	w := EncodeI(OpBEQ, 0, 0, 3)
	if got := BranchTarget(0x100, w); got != 0x110 {
		t.Errorf("forward target = %#x, want 0x110", got)
	}
	// Negative offset -1 word: 0x100+4-4 = 0x100 (self loop via branch).
	w = EncodeI(OpBEQ, 0, 0, 0xFFFF)
	if got := BranchTarget(0x100, w); got != 0x100 {
		t.Errorf("backward target = %#x, want 0x100", got)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		w    Word
		want Kind
	}{
		{EncodeR(FnADD, 1, 2, 3, 0), KindSeq},
		{EncodeI(OpLW, RegSP, RegT0, 0), KindSeq},
		{EncodeI(OpBEQ, 1, 2, 8), KindBranch},
		{EncodeI(OpBNE, 1, 2, 8), KindBranch},
		{EncodeI(OpBLEZ, 1, 0, 8), KindBranch},
		{EncodeI(OpBGTZ, 1, 0, 8), KindBranch},
		{EncodeI(OpRegImm, 1, RtBLTZ, 8), KindBranch},
		{EncodeI(OpRegImm, 1, RtBGEZAL, 8), KindBranch},
		{EncodeJ(OpJ, 0x40), KindJump},
		{EncodeJ(OpJAL, 0x40), KindJump},
		{EncodeR(FnJR, RegRA, 0, 0, 0), KindJumpReg},
		{EncodeR(FnJALR, RegT9, 0, RegRA, 0), KindJumpReg},
		{EncodeR(FnSYSCALL, 0, 0, 0, 0), KindTrap},
		{EncodeR(FnBREAK, 0, 0, 0, 0), KindTrap},
	}
	for _, c := range cases {
		if got := Classify(c.w); got != c.want {
			t.Errorf("Classify(%08x) = %v, want %v (%s)", uint32(c.w), got, c.want, Disasm(0, c.w))
		}
	}
}

func TestIsLink(t *testing.T) {
	if !IsLink(EncodeJ(OpJAL, 0x40)) {
		t.Error("jal should link")
	}
	if !IsLink(EncodeR(FnJALR, RegT9, 0, RegRA, 0)) {
		t.Error("jalr should link")
	}
	if !IsLink(EncodeI(OpRegImm, 1, RtBGEZAL, 4)) {
		t.Error("bgezal should link")
	}
	if IsLink(EncodeJ(OpJ, 0x40)) {
		t.Error("j should not link")
	}
	if IsLink(EncodeR(FnJR, RegRA, 0, 0, 0)) {
		t.Error("jr should not link")
	}
}

func TestIsMemAccess(t *testing.T) {
	mem, store := IsMemAccess(EncodeI(OpLW, 1, 2, 0))
	if !mem || store {
		t.Error("lw should be a non-store memory access")
	}
	mem, store = IsMemAccess(EncodeI(OpSW, 1, 2, 0))
	if !mem || !store {
		t.Error("sw should be a store")
	}
	mem, _ = IsMemAccess(EncodeR(FnADD, 1, 2, 3, 0))
	if mem {
		t.Error("add is not a memory access")
	}
}

func TestRegNames(t *testing.T) {
	if RegName(RegSP) != "$sp" {
		t.Errorf("RegName(29) = %s", RegName(RegSP))
	}
	for i := uint32(0); i < 32; i++ {
		n := RegName(i)
		got, ok := RegNumber(n)
		if !ok || got != i {
			t.Errorf("RegNumber(RegName(%d)) = %d, %v", i, got, ok)
		}
	}
	if _, ok := RegNumber("$99"); ok {
		t.Error("register 99 should not resolve")
	}
	if _, ok := RegNumber("bogus"); ok {
		t.Error("register 'bogus' should not resolve")
	}
	if r, ok := RegNumber("31"); !ok || r != 31 {
		t.Error("numeric register names should resolve")
	}
}

func TestValidCoversEncodedInstructions(t *testing.T) {
	ws := []Word{
		EncodeR(FnADDU, 1, 2, 3, 0),
		EncodeR(FnSLL, 0, 2, 3, 5),
		EncodeI(OpORI, 1, 2, 0xFF),
		EncodeI(OpLW, 1, 2, 4),
		EncodeJ(OpJAL, 0x40),
		EncodeI(OpRegImm, 3, RtBLTZ, 4),
	}
	for _, w := range ws {
		if !Valid(w) {
			t.Errorf("Valid(%08x)=false for %s", uint32(w), Disasm(0, w))
		}
	}
	// Reserved opcodes must be invalid.
	invalid := []Word{
		Word(0x3F << 26),              // opcode 0x3F unassigned
		EncodeR(0x3F, 0, 0, 0, 0),     // SPECIAL fn 0x3F unassigned
		EncodeI(OpRegImm, 0, 0x1F, 0), // REGIMM rt 0x1F unassigned
	}
	for _, w := range invalid {
		if Valid(w) {
			t.Errorf("Valid(%08x)=true, want false", uint32(w))
		}
	}
}

// Property: encoding field extraction is consistent for random field values.
func TestQuickEncodeRFields(t *testing.T) {
	f := func(fn, rs, rt, rd, sh uint8) bool {
		w := EncodeR(uint32(fn), uint32(rs), uint32(rt), uint32(rd), uint32(sh))
		return w.Op() == OpSpecial &&
			w.Rs() == uint32(rs&0x1F) &&
			w.Rt() == uint32(rt&0x1F) &&
			w.Rd() == uint32(rd&0x1F) &&
			w.Shamt() == uint32(sh&0x1F) &&
			w.Fn() == uint32(fn&0x3F)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: sign extension of the immediate matches int16 semantics.
func TestQuickSImm(t *testing.T) {
	f := func(op uint8, imm uint16) bool {
		w := EncodeI(uint32(op&0x3F), 0, 0, imm)
		return w.SImm() == int32(int16(imm)) && w.Imm() == imm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: branch targets round-trip through offset arithmetic for random
// in-range targets.
func TestQuickBranchTargetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		pc := uint32(rng.Intn(1<<20)) &^ 3
		off := int32(int16(rng.Uint32()))
		target := pc + 4 + uint32(off)<<2
		w := EncodeI(OpBEQ, 0, 0, uint16(off))
		if got := BranchTarget(pc, w); got != target {
			t.Fatalf("pc=%#x off=%d: got %#x want %#x", pc, off, got, target)
		}
	}
}
