// Package isa defines the MIPS-I instruction subset executed by the
// PLASMA-like network processor cores simulated in this repository.
//
// The package provides 32-bit instruction word encoding and decoding, the
// register file naming conventions, a disassembler, and instruction
// classification helpers used by the offline monitoring-graph analysis
// (control-flow kind, branch targets, delay-slot-free semantics).
//
// The simulated core deliberately omits branch delay slots: the original
// PLASMA core resolves them in hardware, and the hardware monitor of the
// paper observes the *retired* instruction stream, which is identical either
// way. Dropping delay slots keeps the monitoring-graph successor relation
// exactly "next instruction or branch target".
package isa

import "fmt"

// Word is a 32-bit instruction word as fetched from memory.
type Word uint32

// Opcode values (bits 31:26 of the instruction word).
const (
	OpSpecial uint32 = 0x00 // R-type, function in bits 5:0
	OpRegImm  uint32 = 0x01 // BLTZ/BGEZ and friends, selector in rt
	OpJ       uint32 = 0x02
	OpJAL     uint32 = 0x03
	OpBEQ     uint32 = 0x04
	OpBNE     uint32 = 0x05
	OpBLEZ    uint32 = 0x06
	OpBGTZ    uint32 = 0x07
	OpADDI    uint32 = 0x08
	OpADDIU   uint32 = 0x09
	OpSLTI    uint32 = 0x0A
	OpSLTIU   uint32 = 0x0B
	OpANDI    uint32 = 0x0C
	OpORI     uint32 = 0x0D
	OpXORI    uint32 = 0x0E
	OpLUI     uint32 = 0x0F
	OpLB      uint32 = 0x20
	OpLH      uint32 = 0x21
	OpLW      uint32 = 0x23
	OpLBU     uint32 = 0x24
	OpLHU     uint32 = 0x25
	OpSB      uint32 = 0x28
	OpSH      uint32 = 0x29
	OpSW      uint32 = 0x2B
)

// SPECIAL function codes (bits 5:0 when opcode == OpSpecial).
const (
	FnSLL     uint32 = 0x00
	FnSRL     uint32 = 0x02
	FnSRA     uint32 = 0x03
	FnSLLV    uint32 = 0x04
	FnSRLV    uint32 = 0x06
	FnSRAV    uint32 = 0x07
	FnJR      uint32 = 0x08
	FnJALR    uint32 = 0x09
	FnSYSCALL uint32 = 0x0C
	FnBREAK   uint32 = 0x0D
	FnMFHI    uint32 = 0x10
	FnMTHI    uint32 = 0x11
	FnMFLO    uint32 = 0x12
	FnMTLO    uint32 = 0x13
	FnMULT    uint32 = 0x18
	FnMULTU   uint32 = 0x19
	FnDIV     uint32 = 0x1A
	FnDIVU    uint32 = 0x1B
	FnADD     uint32 = 0x20
	FnADDU    uint32 = 0x21
	FnSUB     uint32 = 0x22
	FnSUBU    uint32 = 0x23
	FnAND     uint32 = 0x24
	FnOR      uint32 = 0x25
	FnXOR     uint32 = 0x26
	FnNOR     uint32 = 0x27
	FnSLT     uint32 = 0x2A
	FnSLTU    uint32 = 0x2B
)

// REGIMM rt selectors (when opcode == OpRegImm).
const (
	RtBLTZ   uint32 = 0x00
	RtBGEZ   uint32 = 0x01
	RtBLTZAL uint32 = 0x10
	RtBGEZAL uint32 = 0x11
)

// Register numbers with conventional MIPS ABI names.
const (
	RegZero = 0 // $zero — hardwired zero
	RegAT   = 1 // $at — assembler temporary
	RegV0   = 2 // $v0 — return value
	RegV1   = 3 // $v1
	RegA0   = 4 // $a0 — argument
	RegA1   = 5 // $a1
	RegA2   = 6 // $a2
	RegA3   = 7 // $a3
	RegT0   = 8 // $t0 — caller-saved temporaries
	RegT1   = 9
	RegT2   = 10
	RegT3   = 11
	RegT4   = 12
	RegT5   = 13
	RegT6   = 14
	RegT7   = 15
	RegS0   = 16 // $s0 — callee-saved
	RegS1   = 17
	RegS2   = 18
	RegS3   = 19
	RegS4   = 20
	RegS5   = 21
	RegS6   = 22
	RegS7   = 23
	RegT8   = 24
	RegT9   = 25
	RegK0   = 26 // $k0 — kernel reserved
	RegK1   = 27
	RegGP   = 28 // $gp — global pointer
	RegSP   = 29 // $sp — stack pointer
	RegFP   = 30 // $fp — frame pointer
	RegRA   = 31 // $ra — return address
)

// RegNames maps register numbers to their conventional ABI names (without
// the leading '$').
var RegNames = [32]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// RegName returns the ABI name for register r, e.g. "$sp".
func RegName(r uint32) string {
	if r < 32 {
		return "$" + RegNames[r]
	}
	return fmt.Sprintf("$?%d", r)
}

// RegNumber returns the register number for a name such as "$sp", "sp",
// "$29" or "29". The second return value reports whether the name resolved.
func RegNumber(name string) (uint32, bool) {
	if len(name) > 0 && name[0] == '$' {
		name = name[1:]
	}
	for i, n := range RegNames {
		if n == name {
			return uint32(i), true
		}
	}
	// Numeric form.
	var v uint32
	if len(name) == 0 {
		return 0, false
	}
	for _, c := range name {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + uint32(c-'0')
	}
	if v < 32 {
		return v, true
	}
	return 0, false
}

// Field accessors on the raw instruction word.

// Op returns the major opcode, bits 31:26.
func (w Word) Op() uint32 { return uint32(w) >> 26 }

// Rs returns the rs field, bits 25:21.
func (w Word) Rs() uint32 { return (uint32(w) >> 21) & 0x1F }

// Rt returns the rt field, bits 20:16.
func (w Word) Rt() uint32 { return (uint32(w) >> 16) & 0x1F }

// Rd returns the rd field, bits 15:11.
func (w Word) Rd() uint32 { return (uint32(w) >> 11) & 0x1F }

// Shamt returns the shift-amount field, bits 10:6.
func (w Word) Shamt() uint32 { return (uint32(w) >> 6) & 0x1F }

// Fn returns the SPECIAL function field, bits 5:0.
func (w Word) Fn() uint32 { return uint32(w) & 0x3F }

// Imm returns the raw 16-bit immediate field.
func (w Word) Imm() uint16 { return uint16(w) }

// SImm returns the immediate field sign-extended to 32 bits.
func (w Word) SImm() int32 { return int32(int16(uint16(w))) }

// Target returns the 26-bit jump target field.
func (w Word) Target() uint32 { return uint32(w) & 0x03FFFFFF }

// Encoders.

// EncodeR builds an R-type (SPECIAL) instruction word.
func EncodeR(fn, rs, rt, rd, shamt uint32) Word {
	return Word(OpSpecial<<26 | (rs&0x1F)<<21 | (rt&0x1F)<<16 | (rd&0x1F)<<11 | (shamt&0x1F)<<6 | (fn & 0x3F))
}

// EncodeI builds an I-type instruction word.
func EncodeI(op, rs, rt uint32, imm uint16) Word {
	return Word((op&0x3F)<<26 | (rs&0x1F)<<21 | (rt&0x1F)<<16 | uint32(imm))
}

// EncodeJ builds a J-type instruction word; target is a byte address whose
// word index is stored in the low 26 bits.
func EncodeJ(op uint32, targetAddr uint32) Word {
	return Word((op&0x3F)<<26 | (targetAddr>>2)&0x03FFFFFF)
}

// NOP is the canonical no-operation encoding (sll $zero, $zero, 0).
const NOP Word = 0

// Kind classifies an instruction for control-flow analysis.
type Kind int

const (
	// KindSeq is a plain sequential instruction (ALU, load, store, ...).
	KindSeq Kind = iota
	// KindBranch is a conditional branch: successors are both the fall
	// through and the branch target.
	KindBranch
	// KindJump is an unconditional direct jump (j, jal): single successor
	// at the encoded target. jal additionally links $ra.
	KindJump
	// KindJumpReg is an indirect jump (jr, jalr): the successor set is not
	// statically known from the word alone; the analyzer resolves it from
	// call-site knowledge (returns) or treats it as "any block entry".
	KindJumpReg
	// KindTrap is syscall/break: the core traps (our simulator halts or
	// services it); treated as a block terminator.
	KindTrap
)

// Classify reports the control-flow kind of the instruction word.
func Classify(w Word) Kind {
	switch w.Op() {
	case OpSpecial:
		switch w.Fn() {
		case FnJR, FnJALR:
			return KindJumpReg
		case FnSYSCALL, FnBREAK:
			return KindTrap
		}
		return KindSeq
	case OpRegImm:
		switch w.Rt() {
		case RtBLTZ, RtBGEZ, RtBLTZAL, RtBGEZAL:
			return KindBranch
		}
		return KindSeq
	case OpJ, OpJAL:
		return KindJump
	case OpBEQ, OpBNE, OpBLEZ, OpBGTZ:
		return KindBranch
	}
	return KindSeq
}

// IsLink reports whether the instruction writes a return address to $ra
// (jal, jalr with rd=$ra, bltzal, bgezal).
func IsLink(w Word) bool {
	switch w.Op() {
	case OpJAL:
		return true
	case OpSpecial:
		return w.Fn() == FnJALR
	case OpRegImm:
		return w.Rt() == RtBLTZAL || w.Rt() == RtBGEZAL
	}
	return false
}

// BranchTarget returns the branch destination of a conditional branch at
// byte address pc. Valid only when Classify(w) == KindBranch.
func BranchTarget(pc uint32, w Word) uint32 {
	return pc + 4 + uint32(w.SImm())<<2
}

// JumpTarget returns the destination of a direct jump at byte address pc.
// Valid only when Classify(w) == KindJump. The upper 4 bits come from the
// address of the following instruction, per the MIPS J-format.
func JumpTarget(pc uint32, w Word) uint32 {
	return ((pc + 4) & 0xF0000000) | w.Target()<<2
}

// IsMemAccess reports whether the instruction reads or writes data memory,
// and whether the access is a store.
func IsMemAccess(w Word) (mem, store bool) {
	switch w.Op() {
	case OpLB, OpLH, OpLW, OpLBU, OpLHU:
		return true, false
	case OpSB, OpSH, OpSW:
		return true, true
	}
	return false, false
}

// Valid reports whether the word decodes to an instruction this subset
// implements. The CPU raises a reserved-instruction exception otherwise.
func Valid(w Word) bool {
	switch w.Op() {
	case OpSpecial:
		switch w.Fn() {
		case FnSLL, FnSRL, FnSRA, FnSLLV, FnSRLV, FnSRAV,
			FnJR, FnJALR, FnSYSCALL, FnBREAK,
			FnMFHI, FnMTHI, FnMFLO, FnMTLO,
			FnMULT, FnMULTU, FnDIV, FnDIVU,
			FnADD, FnADDU, FnSUB, FnSUBU,
			FnAND, FnOR, FnXOR, FnNOR, FnSLT, FnSLTU:
			return true
		}
		return false
	case OpRegImm:
		switch w.Rt() {
		case RtBLTZ, RtBGEZ, RtBLTZAL, RtBGEZAL:
			return true
		}
		return false
	case OpJ, OpJAL, OpBEQ, OpBNE, OpBLEZ, OpBGTZ,
		OpADDI, OpADDIU, OpSLTI, OpSLTIU, OpANDI, OpORI, OpXORI, OpLUI,
		OpLB, OpLH, OpLW, OpLBU, OpLHU, OpSB, OpSH, OpSW:
		return true
	}
	return false
}
