package isa

import (
	"strings"
	"testing"
)

func TestDisasmForms(t *testing.T) {
	cases := []struct {
		pc   uint32
		w    Word
		want string
	}{
		{0, NOP, "nop"},
		{0, EncodeR(FnADD, RegT1, RegT2, RegT0, 0), "add $t0, $t1, $t2"},
		{0, EncodeR(FnADDU, RegA0, RegA1, RegV0, 0), "addu $v0, $a0, $a1"},
		{0, EncodeR(FnSLL, 0, RegT0, RegT1, 4), "sll $t1, $t0, 4"},
		{0, EncodeR(FnSLLV, RegT2, RegT0, RegT1, 0), "sllv $t1, $t0, $t2"},
		{0, EncodeR(FnJR, RegRA, 0, 0, 0), "jr $ra"},
		{0, EncodeR(FnJALR, RegT9, 0, RegRA, 0), "jalr $t9"},
		{0, EncodeR(FnJALR, RegT9, 0, RegT0, 0), "jalr $t0, $t9"},
		{0, EncodeR(FnSYSCALL, 0, 0, 0, 0), "syscall"},
		{0, EncodeR(FnBREAK, 0, 0, 0, 0), "break"},
		{0, EncodeR(FnMFHI, 0, 0, RegT0, 0), "mfhi $t0"},
		{0, EncodeR(FnMULT, RegT0, RegT1, 0, 0), "mult $t0, $t1"},
		{0, EncodeI(OpADDIU, RegSP, RegSP, 0xFFFC), "addiu $sp, $sp, -4"},
		{0, EncodeI(OpORI, RegZero, RegT0, 0xBEEF), "ori $t0, $zero, 0xbeef"},
		{0, EncodeI(OpLUI, 0, RegT0, 0x1234), "lui $t0, 0x1234"},
		{0, EncodeI(OpLW, RegSP, RegT0, 8), "lw $t0, 8($sp)"},
		{0, EncodeI(OpSB, RegA0, RegT1, 0xFFFF), "sb $t1, -1($a0)"},
		{0x100, EncodeI(OpBEQ, RegT0, RegT1, 3), "beq $t0, $t1, 0x110"},
		{0x100, EncodeI(OpBLEZ, RegT0, 0, 3), "blez $t0, 0x110"},
		{0x100, EncodeI(OpRegImm, RegT0, RtBLTZ, 3), "bltz $t0, 0x110"},
		{0x100, EncodeJ(OpJ, 0x4000), "j 0x4000"},
		{0x100, EncodeJ(OpJAL, 0x4000), "jal 0x4000"},
	}
	for _, c := range cases {
		if got := Disasm(c.pc, c.w); got != c.want {
			t.Errorf("Disasm(%#x, %08x) = %q, want %q", c.pc, uint32(c.w), got, c.want)
		}
	}
}

func TestDisasmUnknownWord(t *testing.T) {
	w := Word(0xFC000000) // opcode 0x3F, unassigned
	got := Disasm(0, w)
	if !strings.HasPrefix(got, ".word") {
		t.Errorf("unknown word disassembled to %q, want .word form", got)
	}
}
