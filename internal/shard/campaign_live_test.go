package shard_test

import (
	"testing"

	"sdmmon/internal/campaign"
	"sdmmon/internal/threat"
)

// The campaign corpus against the real concurrent plane: submitter
// goroutines race the line-card workers while gadget-chain attack packets
// ride the clean traffic and the live Sampler → Engine → PlaneResponder
// loop responds. RunLive fails on any mid-run conservation violation, so
// this test (run under -race by make test-campaign) pins both the
// accounting and the thread-safety of the response path under fire.
func TestCampaignLiveDrillConservation(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		res, err := campaign.RunLive(campaign.LiveConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Escalated {
			t.Errorf("seed %d: attack packets never escalated the live engine", seed)
		}
		if res.Peak < threat.Low {
			t.Errorf("seed %d: peak %v, want >= LOW under a gadget barrage", seed, res.Peak)
		}
		if res.Stats.Forwarded+res.Stats.AppDrops == 0 {
			t.Errorf("seed %d: plane processed nothing", seed)
		}
		if !res.Stats.Conserved() {
			t.Errorf("seed %d: final stats not conserved: %+v", seed, res.Stats)
		}
		t.Logf("seed %d: peak=%v final=%v incidents=%d isolated=%d forwarded=%d",
			seed, res.Peak, res.Final, res.Incidents, res.IsolatedCores, res.Stats.Forwarded)
	}
}
