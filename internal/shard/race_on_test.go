//go:build race

package shard

// raceEnabled reports whether this test binary was built with the race
// detector. Perf gates skip themselves under -race: the detector
// instruments every atomic operation, which taxes the lock-free ring far
// more than the mutex baseline and inverts the comparison the gate is
// about. make test-shard runs the gates in a separate uninstrumented
// pass.
const raceEnabled = true
