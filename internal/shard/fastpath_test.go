package shard

import (
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sdmmon/internal/network"
	"sdmmon/internal/npu"
	"sdmmon/internal/obs"
	"sdmmon/internal/packet"
)

// seqPacket builds one UDP packet of a flow identified by its source port,
// carrying a big-endian sequence number as the payload — the fixture the
// ordering and fast-path tests read back out of the drain hook.
func seqPacket(srcPort uint16, seq uint32) []byte {
	var pay [4]byte
	binary.BigEndian.PutUint32(pay[:], seq)
	u := &packet.UDP{SrcPort: srcPort, DstPort: 7, Payload: pay[:]}
	p := &packet.IPv4{
		TTL: 64, Proto: packet.ProtoUDP,
		Src: packet.IP(10, 0, 0, 1), Dst: packet.IP(192, 168, 0, 9),
		Payload: u.Marshal(),
	}
	b, err := p.Marshal()
	if err != nil {
		panic(err)
	}
	return b
}

// TestDepthGaugeCoversInflightMidDrain pins the stale-gauge bugfix: the
// depth gauge must reflect queued + in-flight packets, so a scrape taken
// while the worker holds a dequeued batch agrees with Stats().Backlog. The
// old drain path set the gauge to the residual queue length at dequeue
// time, understating the true backlog by the batch in flight.
func TestDepthGaugeCoversInflightMidDrain(t *testing.T) {
	col := obs.New(0)
	plane, err := NewPlane(Config{
		NPs:           []*npu.NP{planeNP(t, 1, 7)},
		QueueCapacity: 256,
		MarkThreshold: 256, // marking off: every submission queues
		BatchSize:     16,
		Obs:           col,
	})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan int, 1)
	release := make(chan struct{})
	var once sync.Once
	plane.drainHook = func(shard int, pkts [][]byte) {
		once.Do(func() {
			entered <- len(pkts)
			<-release
		})
	}

	const total = 40
	gen, err := network.NewFlowGenerator(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if got := plane.Submit(gen.Next()); got != AdmitQueued {
			t.Fatalf("submit %d: %v, want queued", i, got)
		}
	}
	inflight := <-entered
	if inflight < 1 {
		t.Fatalf("worker entered the hook with an empty batch")
	}
	// The worker is wedged mid-drain: inflight packets dequeued but not
	// yet accounted, the rest on the ring. Gauge and Stats must agree on
	// the whole backlog.
	g := col.Registry().Gauge(`shard_queue_depth{shard="0"}`)
	st := plane.Stats()
	if st.Shards[0].Backlog != total {
		t.Fatalf("mid-drain Backlog = %d, want %d", st.Shards[0].Backlog, total)
	}
	if got := int(g.Value()); got != total {
		t.Errorf("mid-drain depth gauge = %d, want %d (batch of %d in flight understated)",
			got, total, inflight)
	}
	close(release)
	plane.Close()
	st = plane.Stats()
	if !st.Conserved() || st.Backlog != 0 {
		t.Fatalf("after close: backlog %d, conserved %v: %+v", st.Backlog, st.Conserved(), st)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("drained gauge = %v, want 0", got)
	}
}

// TestClosedPlaneSubmitFastPath pins the admission-gate reorder: Submit on
// a closed (or locked-down) plane must refuse before doing any dispatch
// work — no flow hash, no pooled copy, no per-card accounting, no
// allocation — so a shutdown or lockdown storm costs almost nothing.
func TestClosedPlaneSubmitFastPath(t *testing.T) {
	closed, err := NewPlane(Config{NPs: []*npu.NP{planeNP(t, 1, 9)}, QueueCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	closed.Close()
	pkt := seqPacket(999, 0)

	const runs = 500
	allocs := testing.AllocsPerRun(runs, func() {
		if got := closed.Submit(pkt); got != AdmitStarved {
			t.Fatalf("closed-plane submit = %v, want starved", got)
		}
	})
	if allocs != 0 {
		t.Errorf("closed-plane submit allocates %.2f per packet, want 0", allocs)
	}
	st := closed.Stats()
	for _, s := range st.Shards {
		if s.Arrived != 0 {
			t.Errorf("closed-plane submit reached shard %d (%d arrivals) — gate runs after dispatch", s.Shard, s.Arrived)
		}
	}
	if st.Arrived != runs+1 || st.Starved != st.Arrived {
		t.Errorf("closed-plane accounting: arrived %d starved %d, want both %d", st.Arrived, st.Starved, runs+1)
	}
	if !st.Conserved() {
		t.Fatalf("not conserved: %+v", st)
	}

	// Benchmark assertion: rejecting at the gate is cheaper than admitting.
	// The open plane's worker is parked behind the hook so its submit cost
	// is pure ingress (hash + pooled copy + publish) — the work the gate
	// skips; the margin is wide enough that the comparison is stable even
	// on a noisy host.
	open, err := NewPlane(Config{
		NPs:           []*npu.NP{planeNP(t, 1, 10)},
		QueueCapacity: 16384,
		MarkThreshold: 16384,
		BatchSize:     16,
	})
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	open.drainHook = func(int, [][]byte) { <-block }
	timeSubmits := func(p *Plane) time.Duration {
		const iters = 2000
		best := time.Duration(1 << 62)
		for r := 0; r < 5; r++ {
			t0 := time.Now()
			for i := 0; i < iters; i++ {
				p.Submit(pkt)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	openCost := timeSubmits(open)
	closedCost := timeSubmits(closed)
	t.Logf("closed-plane submit %v per 2000, open admission %v per 2000", closedCost, openCost)
	if closedCost >= openCost {
		t.Errorf("closed-plane submit (%v) not cheaper than open admission (%v) — the gate is paying dispatch work", closedCost, openCost)
	}
	close(block)
	open.Close()
	if st := open.Stats(); !st.Conserved() {
		t.Fatalf("open plane not conserved: %+v", st)
	}
}

// BenchmarkClosedPlaneSubmit records the cost of the refusal fast path.
func BenchmarkClosedPlaneSubmit(b *testing.B) {
	np, err := npu.NewBenchNP("", 1, false, 3)
	if err != nil {
		b.Fatal(err)
	}
	plane, err := NewPlane(Config{NPs: []*npu.NP{np}, QueueCapacity: 64})
	if err != nil {
		b.Fatal(err)
	}
	plane.Close()
	pkt := seqPacket(999, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plane.Submit(pkt)
	}
}

// TestSubmitSteadyStateZeroAllocs is the submit-side half of the
// zero-copy gate: with the arena warm, admitting a packet — flow hash,
// admission control, pooled copy, ring publish, gauge update — performs
// zero heap allocations. The worker is wedged behind the drain hook so
// only the producer path is measured.
func TestSubmitSteadyStateZeroAllocs(t *testing.T) {
	plane, err := NewPlane(Config{
		NPs:           []*npu.NP{planeNP(t, 1, 5)},
		QueueCapacity: 4096,
		MarkThreshold: 4096,
		BatchSize:     16,
	})
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	plane.drainHook = func(int, [][]byte) { <-block }
	pkt := seqPacket(4242, 1)
	allocs := testing.AllocsPerRun(400, func() {
		if got := plane.Submit(pkt); got != AdmitQueued {
			t.Fatalf("steady-state submit = %v, want queued", got)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state submit allocates %.2f per packet, want 0", allocs)
	}
	close(block)
	plane.Close()
	st := plane.Stats()
	if !st.Conserved() || st.Backlog != 0 {
		t.Fatalf("after close: backlog %d, conserved %v", st.Backlog, st.Conserved())
	}
}

// TestSubmitDrainSteadyStateAllocsAmortized is the whole-path half of the
// zero-copy gate: a warm plane moving full batches from SubmitBatch
// through the NP and back to the arena stays within the npu batch
// engine's own amortized allocation standard (per-batch bookkeeping —
// the release closure, worker scheduling — amortized across the batch;
// nothing per-packet).
func TestSubmitDrainSteadyStateAllocsAmortized(t *testing.T) {
	col := obs.New(0)
	plane, err := NewPlane(Config{
		NPs:           []*npu.NP{planeNP(t, 1, 63)},
		QueueCapacity: 2048,
		MarkThreshold: 2048,
		BatchSize:     64,
		Obs:           col,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := network.NewFlowGenerator(64, 17)
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 512
	pkts := gen.NextBatch(make([][]byte, chunk))
	fwd := col.Registry().Counter("shard_forwarded_total")
	drp := col.Registry().Counter("shard_app_drops_total")
	var want uint64
	cycle := func() {
		plane.SubmitBatch(pkts)
		want += chunk
		// Settled-counter spin (no Stats(): that would allocate in the
		// measured region). Capacity covers the chunk, so every packet
		// settles as forwarded or app-dropped.
		for fwd.Value()+drp.Value() < want {
			runtime.Gosched()
		}
	}
	cycle() // warm the arena, the NP pools, and the worker
	allocs := testing.AllocsPerRun(20, cycle)
	perPkt := allocs / chunk
	t.Logf("submit+drain steady state: %.3f allocs/packet (%.1f per %d-packet chunk)", perPkt, allocs, chunk)
	if perPkt > 0.2 {
		t.Errorf("submit+drain steady state allocates %.3f per packet, want amortized <= 0.2", perPkt)
	}
	plane.Close()
	if st := plane.Stats(); !st.Conserved() || st.Backlog != 0 {
		t.Fatalf("after close: backlog %d, conserved %v", st.Backlog, st.Conserved())
	}
}

// TestSubmitBatchConservationUnderFailoverAndClose drives concurrent
// SubmitBatch callers into a failover and a racing Close and pins three
// contracts at once: every packet gets exactly one admission outcome and
// exactly one accounting slot (Arrived is exact, conservation holds,
// backlog drains to zero); the failover fires exactly once; and per-flow
// ordering survives — on any one shard, a flow's packets are drained in
// submit order. Run with -race (make test-shard).
func TestSubmitBatchConservationUnderFailoverAndClose(t *testing.T) {
	nps := []*npu.NP{planeNP(t, 1, 81), planeNP(t, 1, 82), planeNP(t, 1, 83)}
	plane, err := NewPlane(Config{
		NPs:           nps,
		QueueCapacity: 128,
		MarkThreshold: 128, // marking off; a small queue still tail-drops
		BatchSize:     16,
	})
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		flow uint16
		seq  uint32
	}
	// One slot per shard: each worker appends only to its own slice, and
	// the main goroutine reads after Close (workers joined), so no lock is
	// needed.
	drained := make([][]rec, len(nps))
	plane.drainHook = func(shard int, pkts [][]byte) {
		for _, p := range pkts {
			drained[shard] = append(drained[shard], rec{
				flow: binary.BigEndian.Uint16(p[20:22]),
				seq:  binary.BigEndian.Uint32(p[28:32]),
			})
		}
	}

	const (
		submitters = 4
		flowsPer   = 8 // flows owned by one submitter: disjoint across submitters
		perFlow    = 500
		total      = submitters * flowsPer * perFlow
	)
	var progress atomic.Int64
	totals := make([]BatchAdmission, submitters)
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			chunk := make([][]byte, 0, 32)
			flush := func() {
				a := plane.SubmitBatch(chunk)
				totals[g].Queued += a.Queued
				totals[g].Marked += a.Marked
				totals[g].Dropped += a.Dropped
				totals[g].Starved += a.Starved
				progress.Add(int64(len(chunk)))
				chunk = chunk[:0]
			}
			// Interleave the submitter's flows so every chunk carries
			// several flows and every flow spans many chunks.
			for seq := 0; seq < perFlow; seq++ {
				for f := 0; f < flowsPer; f++ {
					port := uint16(2000 + g*flowsPer + f)
					chunk = append(chunk, seqPacket(port, uint32(seq)))
					if len(chunk) == cap(chunk) {
						flush()
					}
				}
			}
			flush()
		}(g)
	}
	// The drill: fail a shard mid-run, then close the plane while
	// submitters are still pushing.
	var drill sync.WaitGroup
	drill.Add(1)
	go func() {
		defer drill.Done()
		for progress.Load() < total/2 {
			runtime.Gosched()
		}
		if err := plane.FailShard(1); err != nil {
			t.Error(err)
		}
		for progress.Load() < 3*total/4 {
			runtime.Gosched()
		}
		plane.Close()
	}()
	wg.Wait()
	drill.Wait()
	plane.Close() // idempotent; guarantees workers are joined

	st := plane.Stats()
	if st.Arrived != total {
		t.Errorf("arrived %d, want exactly %d", st.Arrived, total)
	}
	accounted := 0
	for _, a := range totals {
		accounted += a.Total()
	}
	if accounted != total {
		t.Errorf("admission outcomes account for %d packets, want %d", accounted, total)
	}
	if !st.Conserved() {
		t.Fatalf("not conserved: %+v", st)
	}
	if st.Backlog != 0 {
		t.Errorf("backlog %d after close", st.Backlog)
	}
	if st.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", st.Failovers)
	}
	if !st.Shards[1].Failed {
		t.Error("shard 1 not marked failed")
	}

	// Per-flow ordering per shard: a flow's packets were submitted in
	// strictly increasing sequence by its one owner, traverse one FIFO
	// ring, and are drained by one worker — so on any shard the sequence
	// numbers of one flow must be strictly increasing (drops leave gaps;
	// they never reorder).
	drainedTotal := 0
	for shard, recs := range drained {
		drainedTotal += len(recs)
		lastSeq := map[uint16]uint32{}
		for i, r := range recs {
			if last, ok := lastSeq[r.flow]; ok && r.seq <= last {
				t.Fatalf("shard %d: flow %d drained seq %d after %d (record %d) — per-flow order broken",
					shard, r.flow, r.seq, last, i)
			}
			lastSeq[r.flow] = r.seq
		}
	}
	if drainedTotal == 0 {
		t.Fatal("no packet reached a drain worker")
	}
}
