package shard

import (
	"fmt"
	"sort"
	"time"

	"sdmmon/internal/network"
	"sdmmon/internal/npu"
)

// BenchConfig describes one sharded-plane measurement point.
type BenchConfig struct {
	App           string // application name; "" selects ipv4cm
	Shards        int
	CoresPerShard int
	Batch         int // worker drain batch size
	Packets       int // packets submitted through the plane
	Flows         int // flow population; 0 selects 256
	Seed          int64
	// ClockMHz is the modeled hardware clock for the simulated aggregate
	// throughput; 0 selects 100 MHz (the Virtex-II Pro class prototype).
	ClockMHz float64
}

// MeasureThroughput runs one sharded point: K freshly installed NPs behind
// the dispatcher, the whole packet budget submitted and drained to
// completion.
//
// Two throughput numbers come out. PktsPerSec is wall-clock on the
// simulation host — on a small host the shards timeshare its CPUs, so this
// number cannot (and is not expected to) scale with K. SimAggPktsPerSec is
// the simulated hardware's aggregate: the plane's makespan in virtual time
// is the slowest shard's busy cycles divided by its core count (each NP's
// cores and each line card run concurrently in real hardware), and the
// aggregate is packets over that makespan at the modeled clock. The
// scaling gate and the BENCH shard series are stated on the simulated
// number, which is deterministic for a given seed.
func MeasureThroughput(cfg BenchConfig) (npu.BenchPoint, error) {
	if cfg.Shards < 1 || cfg.CoresPerShard < 1 {
		return npu.BenchPoint{}, fmt.Errorf("shard: bench needs shards >= 1 and cores >= 1")
	}
	if cfg.Batch < 1 {
		cfg.Batch = 64
	}
	if cfg.Packets < 1 {
		cfg.Packets = 4096
	}
	flows := cfg.Flows
	if flows == 0 {
		flows = 256
	}
	clockHz := cfg.ClockMHz * 1e6
	if clockHz <= 0 {
		clockHz = 100e6
	}

	nps := make([]*npu.NP, cfg.Shards)
	for i := range nps {
		np, err := npu.NewBenchNP(cfg.App, cfg.CoresPerShard, false, cfg.Seed+int64(i))
		if err != nil {
			return npu.BenchPoint{}, err
		}
		nps[i] = np
	}
	// Capacity covers the full budget and marking is disabled (threshold =
	// capacity): no tail drops, no CE rewrites — every seed processes the
	// identical packet set, so the virtual-time numbers are reproducible.
	plane, err := NewPlane(Config{
		NPs:               nps,
		QueueCapacity:     cfg.Packets,
		MarkThreshold:     cfg.Packets,
		BatchSize:         cfg.Batch,
		RecordBatchCycles: true,
	})
	if err != nil {
		return npu.BenchPoint{}, err
	}
	gen, err := network.NewFlowGenerator(flows, cfg.Seed+101)
	if err != nil {
		return npu.BenchPoint{}, err
	}
	pkts := gen.NextBatch(make([][]byte, cfg.Packets))

	start := time.Now()
	plane.SubmitBatch(pkts)
	plane.Close()
	wall := time.Since(start).Seconds()

	st := plane.Stats()
	if !st.Conserved() {
		return npu.BenchPoint{}, fmt.Errorf("shard: bench run not conserved: %+v", st)
	}
	if st.TailDrops != 0 || st.Starved != 0 || st.Backlog != 0 {
		return npu.BenchPoint{}, fmt.Errorf("shard: bench run lost packets (tail=%d starved=%d backlog=%d)",
			st.TailDrops, st.Starved, st.Backlog)
	}

	p := npu.BenchPoint{
		Path:        "shard",
		Cores:       cfg.CoresPerShard,
		Shards:      cfg.Shards,
		Batch:       cfg.Batch,
		Packets:     st.Forwarded + st.AppDrops,
		WallSeconds: wall,
	}
	var totalCycles, makespan uint64
	for _, s := range st.Shards {
		totalCycles += s.Cycles
		span := s.Cycles / uint64(cfg.CoresPerShard)
		if span > makespan {
			makespan = span
		}
	}
	if wall > 0 {
		p.PktsPerSec = float64(p.Packets) / wall
		p.NsPerPkt = wall * 1e9 / float64(p.Packets)
	}
	if p.Packets > 0 {
		p.SimCyclesPerPkt = float64(totalCycles) / float64(p.Packets)
	}
	if makespan > 0 {
		p.SimAggPktsPerSec = float64(p.Packets) * clockHz / float64(makespan)
	}
	if bc := plane.BatchCycles(); len(bc) > 0 {
		sort.Slice(bc, func(i, j int) bool { return bc[i] < bc[j] })
		idx := (len(bc)*99+99)/100 - 1 // ceil(0.99 n) - 1: nearest-rank p99
		if idx < 0 {
			idx = 0
		}
		p.P99BatchCycles = bc[idx]
	}
	return p, nil
}
