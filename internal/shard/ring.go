package shard

// Lock-free ingress machinery for the line cards: a bounded Vyukov-style
// ring buffer carrying pooled packet buffers, and the arena that recycles
// those buffers once the NP has consumed a batch. FireGuard (PAPERS.md)
// decouples its monitored pipeline from the checkers through hardware
// queues; this file is that decoupling in software — producers never take
// a lock to hand a packet to a shard worker, and the steady-state path
// allocates nothing.
//
// Memory model (who owns a packet buffer when — DESIGN.md §16):
//
//	arena free list → Submit (copies the caller's bytes in, may CE-mark
//	the copy) → ingress ring → shard worker batch → NP batch engine
//	(DrainBatchRelease: the engine DMAs the bytes into core memory and
//	never retains the input slice) → back to the arena free list.
//
// Exactly one stage owns a buffer at any instant, which is why no
// per-slot lock is needed: the ring's sequence numbers are the ownership
// hand-off, and the single drain worker means dequeues never contend.

import "sync/atomic"

// cacheLinePad separates the producer- and consumer-owned cursors so a
// submitter hammering tail never invalidates the cache line the worker
// reads head from (false sharing is the classic SPSC/MPSC ring killer).
type cacheLinePad [64]byte

// pbuf is one arena-owned packet buffer. data keeps its backing array
// across recycles (append into data[:0]), so a warmed pool serves any
// packet the NPs accept without allocating.
type pbuf struct {
	data []byte
}

// ringSlot pairs a sequence number with the published buffer. The
// sequence is the Vyukov bounded-queue protocol: seq == pos means the
// slot is free for the producer claiming position pos, seq == pos+1
// means the slot holds that position's element for the consumer, and the
// atomic store of seq is the release that publishes buf.
type ringSlot struct {
	seq atomic.Uint64
	buf *pbuf
}

// bufRing is a bounded multi-producer ring of packet buffers (capacity
// rounded up to a power of two). It serves two roles: the MPSC ingress
// queue of a line card (many Submit goroutines, one drain worker) and
// the MPMC free list of an arena. Enqueue never blocks — a full ring
// reports false and the caller tail-drops, exactly the admission
// semantics a bounded ingress queue wants.
type bufRing struct {
	mask  uint64
	slots []ringSlot
	_     cacheLinePad
	head  atomic.Uint64 // consumer cursor
	_     cacheLinePad
	tail  atomic.Uint64 // producer cursor
	_     cacheLinePad
}

func newBufRing(capacity int) *bufRing {
	n := 1
	for n < capacity {
		n <<= 1
	}
	r := &bufRing{mask: uint64(n - 1), slots: make([]ringSlot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap is the physical capacity (the rounded-up power of two).
func (r *bufRing) Cap() int { return len(r.slots) }

// Len is the instantaneous occupancy. Under concurrent traffic it is an
// approximation (the two cursors are read at different moments), clamped
// to [0, Cap] — exactly the fidelity admission control needs.
func (r *bufRing) Len() int {
	d := int64(r.tail.Load()) - int64(r.head.Load())
	if d < 0 {
		d = 0
	}
	if d > int64(len(r.slots)) {
		d = int64(len(r.slots))
	}
	return int(d)
}

// Empty reports whether the ring held nothing at the moment of the call.
func (r *bufRing) Empty() bool { return r.tail.Load() == r.head.Load() }

// Enqueue publishes b, or reports false if the ring is full. Safe for
// any number of concurrent producers.
func (r *bufRing) Enqueue(b *pbuf) bool {
	pos := r.tail.Load()
	for {
		s := &r.slots[pos&r.mask]
		switch d := int64(s.seq.Load()) - int64(pos); {
		case d == 0:
			// Slot free at this position: claim it by advancing tail.
			if r.tail.CompareAndSwap(pos, pos+1) {
				s.buf = b
				s.seq.Store(pos + 1) // release: publishes buf
				return true
			}
			pos = r.tail.Load()
		case d < 0:
			// The slot still holds the element from one lap ago: full.
			return false
		default:
			// Another producer claimed pos; chase the cursor.
			pos = r.tail.Load()
		}
	}
}

// Dequeue removes the oldest buffer, or returns nil if the ring is
// empty. Safe for concurrent consumers (the arena free list); on the
// ingress ring the shard worker is the only caller.
func (r *bufRing) Dequeue() *pbuf {
	pos := r.head.Load()
	for {
		s := &r.slots[pos&r.mask]
		switch d := int64(s.seq.Load()) - int64(pos+1); {
		case d == 0:
			if r.head.CompareAndSwap(pos, pos+1) {
				b := s.buf
				s.buf = nil
				// Free the slot for the producer one lap ahead.
				s.seq.Store(pos + uint64(len(r.slots)))
				return b
			}
			pos = r.head.Load()
		case d < 0:
			return nil
		default:
			pos = r.head.Load()
		}
	}
}

// arenaBufBytes sizes a fresh buffer's backing array. Buffers grow on
// demand and keep their growth across recycles, so this only has to
// cover the common packet, not the largest.
const arenaBufBytes = 512

// arenaPrefill caps how many buffers an arena allocates eagerly. A plane
// sized for a huge queue (the bench harness sets capacity = the whole
// packet budget) warms the rest on first use; after one pass through the
// free list the working set is fully pooled and the path allocates
// nothing.
const arenaPrefill = 1024

// arena is a line card's recycling pool of packet buffers. Get falls
// back to a fresh allocation when the pool runs transiently dry (more
// producers in flight than the sizing slack) — correct, just not free.
// Put drops the buffer to the GC if the free list is full, which can
// only happen after such fallback allocations.
type arena struct {
	free *bufRing
}

// newArena builds a pool whose free list can hold the card's whole
// physical working set: every ring slot plus a drained batch in flight
// plus slack for producers mid-copy.
func newArena(capacity, batch int) *arena {
	a := &arena{free: newBufRing(capacity + batch + 64)}
	n := a.free.Cap()
	if n > arenaPrefill {
		n = arenaPrefill
	}
	for i := 0; i < n; i++ {
		a.free.Enqueue(&pbuf{data: make([]byte, 0, arenaBufBytes)})
	}
	return a
}

func (a *arena) Get() *pbuf {
	if b := a.free.Dequeue(); b != nil {
		return b
	}
	return &pbuf{data: make([]byte, 0, arenaBufBytes)}
}

func (a *arena) Put(b *pbuf) {
	b.data = b.data[:0]
	a.free.Enqueue(b)
}
