package shard

// Tenancy tests: per-tenant lanes, the isolation-pinning bugfix sweep
// (SetAdmission clamp, stale dispatch hints, per-tenant conservation), and
// the no-leakage property of tenant-labeled telemetry.

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sdmmon/internal/npu"
	"sdmmon/internal/obs"
	"sdmmon/internal/packet"
)

// tenantPkt builds a UDP packet whose source IP's second octet encodes the
// tenant and whose source port selects the flow.
func tenantPkt(t *testing.T, tenant int, flow uint16) []byte {
	t.Helper()
	u := &packet.UDP{SrcPort: 1000 + flow, DstPort: 53, Payload: []byte("query")}
	p := &packet.IPv4{
		TTL: 64, Proto: packet.ProtoUDP,
		Src: packet.IP(10, byte(tenant), 0, 1), Dst: packet.IP(192, 168, 0, 1),
		Payload: u.Marshal(),
	}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// classifyBySrc reads the tenant back out of the source IP.
func classifyBySrc(pkt []byte) int {
	if len(pkt) < 20 {
		return -1
	}
	return int(pkt[13])
}

// tenantNP builds an installed NP partitioned into two 2-core domains "a"
// and "b".
func tenantNP(t *testing.T, seed int64) *npu.NP {
	t.Helper()
	np := planeNP(t, 4, seed)
	if err := np.SetDomains([]npu.DomainSpec{
		{Name: "a", Cores: []int{0, 1}},
		{Name: "b", Cores: []int{2, 3}},
	}); err != nil {
		t.Fatal(err)
	}
	return np
}

func twoTenantPlane(t *testing.T, shards int, col *obs.Collector, classify func([]byte) int) *Plane {
	t.Helper()
	nps := make([]*npu.NP, shards)
	for i := range nps {
		nps[i] = tenantNP(t, int64(i))
	}
	if classify == nil {
		classify = classifyBySrc
	}
	plane, err := NewPlane(Config{
		NPs:           nps,
		QueueCapacity: 128,
		Obs:           col,
		Tenancy:       &TenancyConfig{Tenants: []string{"a", "b"}, Classify: classify},
	})
	if err != nil {
		t.Fatal(err)
	}
	return plane
}

// TestNewPlaneTenancyValidation: a tenant without a matching protection
// domain on every NP — or a broken tenancy config — must be refused at
// construction, not discovered as misrouted traffic later.
func TestNewPlaneTenancyValidation(t *testing.T) {
	plain := planeNP(t, 4, 99) // no domains installed
	cases := []Config{
		{NPs: []*npu.NP{plain}, QueueCapacity: 8,
			Tenancy: &TenancyConfig{Tenants: []string{"a", "b"}, Classify: classifyBySrc}},
		{NPs: []*npu.NP{tenantNP(t, 0)}, QueueCapacity: 8,
			Tenancy: &TenancyConfig{Tenants: []string{"a", "b"}}}, // no classifier
		{NPs: []*npu.NP{tenantNP(t, 0)}, QueueCapacity: 8,
			Tenancy: &TenancyConfig{Tenants: []string{"a", "a"}, Classify: classifyBySrc}},
		{NPs: []*npu.NP{tenantNP(t, 0)}, QueueCapacity: 8,
			Tenancy: &TenancyConfig{Tenants: []string{"a", ""}, Classify: classifyBySrc}},
	}
	for i, cfg := range cases {
		if p, err := NewPlane(cfg); err == nil {
			p.Close()
			t.Errorf("case %d: NewPlane accepted an invalid tenancy config", i)
		}
	}
}

// TestSetAdmissionClampsToRing pins the soft-capacity bug: SetAdmission
// used to accept any capacity and report it back from Admission() even
// though enforcement silently stopped at the built ring's physical size.
// The clamp makes the reported threshold equal the enforced one.
func TestSetAdmissionClampsToRing(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }
	defer release()

	plane, err := NewPlane(Config{
		NPs:           []*npu.NP{planeNP(t, 2, 1)},
		QueueCapacity: 10, // ring rounds up to 16
		BatchSize:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Close()
	plane.drainHook = func(int, [][]byte) { <-gate }

	phys := plane.cards[0].lanes[0].queue.Cap()
	if phys != 16 {
		t.Fatalf("ring capacity %d, want 16", phys)
	}
	if err := plane.SetAdmission(0, 1<<20, 1<<19); err != nil {
		t.Fatal(err)
	}
	cap0, mark0, err := plane.Admission(0)
	if err != nil {
		t.Fatal(err)
	}
	if cap0 != phys || mark0 != phys {
		t.Fatalf("Admission() reports (%d, %d) after oversized SetAdmission, want clamp to (%d, %d)",
			cap0, mark0, phys, phys)
	}

	// Enforcement side: with the worker wedged in the drain hook (holding
	// one in-flight packet), at most cap0 more packets fit. Everything past
	// the reported capacity must tail-drop — reported == enforced.
	pkt := tenantPkt(t, 0, 7)
	admitted, dropped := 0, 0
	for i := 0; i < 3*phys; i++ {
		switch plane.Submit(pkt) {
		case AdmitQueued, AdmitMarked:
			admitted++
		case AdmitDropped:
			dropped++
		default:
			t.Fatal("unexpected starvation on a healthy single-shard plane")
		}
	}
	if admitted > cap0+1 { // +1: the packet parked inside the drain hook
		t.Errorf("admitted %d packets, but Admission() promised capacity %d", admitted, cap0)
	}
	if dropped == 0 {
		t.Error("no tail drops while submitting past the physical ring")
	}

	// Sane requests are untouched, invalid ones still refused.
	if err := plane.SetAdmission(0, 8, 4); err != nil {
		t.Fatal(err)
	}
	if cap0, mark0, _ = plane.Admission(0); cap0 != 8 || mark0 != 4 {
		t.Errorf("in-range SetAdmission altered: got (%d, %d), want (8, 4)", cap0, mark0)
	}
	if err := plane.SetAdmission(0, 0, 0); err == nil {
		t.Error("SetAdmission accepted capacity 0")
	}
	release()
}

// TestStaleHintInvalidatedMidBatch pins satellite 3: SubmitBatch's
// same-flow dispatch cache must not route onto a card that failed between
// two packets of the batch. The classifier (called per packet, before
// dispatch) fails the flow's card mid-batch from the submitting goroutine,
// so the assertion is deterministic: not one packet lands on the failed
// card after FailShard returns.
func TestStaleHintInvalidatedMidBatch(t *testing.T) {
	plane := twoTenantPlane(t, 2, nil, nil)
	defer plane.Close()

	pkt := tenantPkt(t, 0, 1)
	key := FlowKeyOf(pkt)
	target := plane.ShardForTenant(key, 0)
	if target < 0 {
		t.Fatal("no shard for the probe flow")
	}
	other := 1 - target
	lane := plane.cards[target].lanes[0]

	const batchLen, failAt = 30, 15
	var calls, arrivedAtFail int
	classify := func(p []byte) int {
		calls++
		if calls == failAt {
			arrivedAtFail = int(lane.arrived.Load())
			if err := plane.FailShard(target); err != nil {
				t.Error(err)
			}
		}
		return classifyBySrc(p)
	}
	plane.classify = classify

	batch := make([][]byte, batchLen)
	for i := range batch {
		batch[i] = pkt
	}
	out := plane.SubmitBatch(batch)
	if out.Total() != batchLen {
		t.Fatalf("batch accounted %d of %d packets", out.Total(), batchLen)
	}
	if out.Starved != 0 {
		t.Errorf("%d packets starved with a healthy shard remaining", out.Starved)
	}
	if got := int(lane.arrived.Load()); got != arrivedAtFail {
		t.Errorf("failed card admitted %d packets after FailShard returned (stale hint)",
			got-arrivedAtFail)
	}
	if got := int(plane.cards[other].lanes[0].arrived.Load()); got != batchLen-arrivedAtFail {
		t.Errorf("surviving card saw %d packets, want the rerouted %d",
			got, batchLen-arrivedAtFail)
	}

	// The cache is per-call; a fresh batch must not resurrect the hint.
	plane.classify = classifyBySrc
	plane.SubmitBatch(batch)
	if got := int(lane.arrived.Load()); got != arrivedAtFail {
		t.Errorf("failed card admitted %d packets in a fresh batch", got-arrivedAtFail)
	}
}

// TestFailTenantShardIsolatesLane: failing one tenant's lane on one card
// reroutes only that tenant's flows there; the card stays up and the other
// tenant keeps using it.
func TestFailTenantShardIsolatesLane(t *testing.T) {
	plane := twoTenantPlane(t, 2, nil, nil)
	defer plane.Close()

	if err := plane.FailTenantShard(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := plane.FailTenantShard(5, 0); err == nil {
		t.Error("FailTenantShard accepted an out-of-range shard")
	}
	if err := plane.FailTenantShard(0, 9); err == nil {
		t.Error("FailTenantShard accepted an out-of-range tenant")
	}

	for flow := uint16(0); flow < 64; flow++ {
		for tenant := 0; tenant < 2; tenant++ {
			if adm := plane.Submit(tenantPkt(t, tenant, flow)); adm == AdmitStarved {
				t.Fatalf("tenant %d flow %d starved with healthy lanes remaining", tenant, flow)
			}
		}
	}

	if got := plane.cards[0].lanes[0].arrived.Load(); got != 0 {
		t.Errorf("dead lane admitted %d packets", got)
	}
	if plane.cards[0].lanes[1].arrived.Load() == 0 {
		t.Error("tenant b stopped using card 0 after tenant a's lane failed")
	}
	if plane.cards[1].lanes[0].arrived.Load() == 0 {
		t.Error("tenant a's flows did not rehash onto card 1")
	}
	st := plane.Stats()
	if st.Failovers != 0 {
		t.Errorf("lane failover escalated to %d card failovers", st.Failovers)
	}
	for _, ts := range st.Tenants {
		if !ts.Conserved() {
			t.Errorf("tenant %q not conserved: %+v", ts.Name, ts)
		}
	}
	if st.Tenants[0].LanesDead != 1 || st.Tenants[1].LanesDead != 0 {
		t.Errorf("dead lanes (%d, %d), want (1, 0)",
			st.Tenants[0].LanesDead, st.Tenants[1].LanesDead)
	}
}

// TestQuarantinedDomainFailsLaneNotCard: when one tenant's protection
// domain on one NP is fully quarantined, that tenant's lane there dies (its
// backlog shed as starved drops, its flows rehashed) while the card keeps
// serving the other tenant.
func TestQuarantinedDomainFailsLaneNotCard(t *testing.T) {
	plane := twoTenantPlane(t, 2, nil, nil)
	defer plane.Close()

	// Wedge tenant a's domain on card 0 through the domain-gated
	// supervisor entry point.
	np0 := plane.cards[0].np
	for _, core := range []int{0, 1} {
		if err := np0.QuarantineDomain("a", core); err != nil {
			t.Fatal(err)
		}
	}
	if np0.HealthyDomain("a") {
		t.Fatal("domain a still healthy after quarantining both cores")
	}
	if !np0.HealthyDomain("b") {
		t.Fatal("quarantining domain a took down domain b")
	}

	// Drive tenant a until the worker discovers the wedged domain and
	// fails the lane.
	lane := plane.cards[0].lanes[0]
	deadline := time.Now().Add(5 * time.Second)
	for !lane.dead.Load() {
		if time.Now().After(deadline) {
			t.Fatal("lane never failed over on a quarantined domain")
		}
		for flow := uint16(0); flow < 32; flow++ {
			plane.Submit(tenantPkt(t, 0, flow))
		}
	}

	// Tenant b's lane on the same card still takes and completes traffic.
	for flow := uint16(0); flow < 32; flow++ {
		if adm := plane.Submit(tenantPkt(t, 1, flow)); adm == AdmitStarved {
			t.Fatal("tenant b starved on a card whose a-lane died")
		}
	}
	st := plane.Stats()
	if st.Failovers != 0 {
		t.Errorf("lane death escalated to %d card failovers", st.Failovers)
	}
	for _, ts := range st.Tenants {
		if !ts.Conserved() {
			t.Errorf("tenant %q not conserved: %+v", ts.Name, ts)
		}
	}
	if st.Tenants[1].Starved != 0 {
		t.Errorf("tenant b shows %d starved drops from tenant a's failure", st.Tenants[1].Starved)
	}
}

// TestTenantLockdownScoped: LockdownTenant closes exactly one tenant's
// admission.
func TestTenantLockdownScoped(t *testing.T) {
	plane := twoTenantPlane(t, 1, nil, nil)
	defer plane.Close()

	if err := plane.LockdownTenant(0); err != nil {
		t.Fatal(err)
	}
	if !plane.TenantLockedDown(0) || plane.TenantLockedDown(1) {
		t.Fatal("tenant lockdown flags wrong")
	}
	if adm := plane.Submit(tenantPkt(t, 0, 1)); adm != AdmitStarved {
		t.Errorf("locked-down tenant admitted: %v", adm)
	}
	if adm := plane.Submit(tenantPkt(t, 1, 1)); adm == AdmitStarved {
		t.Error("bystander tenant starved by another tenant's lockdown")
	}
	if err := plane.ClearLockdownTenant(0); err != nil {
		t.Fatal(err)
	}
	if adm := plane.Submit(tenantPkt(t, 0, 1)); adm == AdmitStarved {
		t.Error("tenant still starved after ClearLockdownTenant")
	}
	st := plane.Stats()
	if st.Tenants[0].Starved != 1 {
		t.Errorf("tenant a starved count %d, want exactly the lockdown drop", st.Tenants[0].Starved)
	}
	if st.Tenants[1].Starved != 0 {
		t.Errorf("tenant b starved count %d, want 0", st.Tenants[1].Starved)
	}
}

// TestPerTenantAdmissionScoped: SetTenantAdmission moves one lane;
// SetAdmission moves the whole card.
func TestPerTenantAdmissionScoped(t *testing.T) {
	plane := twoTenantPlane(t, 1, nil, nil)
	defer plane.Close()

	if err := plane.SetTenantAdmission(0, 0, 4, 2); err != nil {
		t.Fatal(err)
	}
	capA, markA, _ := plane.TenantAdmission(0, 0)
	capB, markB, _ := plane.TenantAdmission(0, 1)
	if capA != 4 || markA != 2 {
		t.Errorf("tenant a admission (%d, %d), want (4, 2)", capA, markA)
	}
	if capB != 128 || markB != 64 {
		t.Errorf("tenant b admission moved to (%d, %d) by tenant a's tightening", capB, markB)
	}
	if err := plane.SetAdmission(0, 16, 8); err != nil {
		t.Fatal(err)
	}
	for tenant := 0; tenant < 2; tenant++ {
		c, m, _ := plane.TenantAdmission(0, tenant)
		if c != 16 || m != 8 {
			t.Errorf("tenant %d admission (%d, %d) after card-wide set, want (16, 8)", tenant, c, m)
		}
	}
}

// TestTenantCounterLeakage drives only tenant a — including a lane
// failover on a, the noisiest response path — and requires tenant b's
// entire labeled slice of the shared registry to stay byte-identical.
func TestTenantCounterLeakage(t *testing.T) {
	col := obs.New(64)
	plane := twoTenantPlane(t, 2, col, nil)
	defer plane.Close()

	canon := func(s obs.Snapshot) string {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	before := canon(col.Registry().Snapshot().FilterLabel("tenant", "b"))
	if before == "{}" || before == "" {
		t.Log("note: tenant b slice empty before traffic") // still a valid comparison
	}

	for flow := uint16(0); flow < 128; flow++ {
		plane.Submit(tenantPkt(t, 0, flow))
	}
	if err := plane.FailTenantShard(0, 0); err != nil {
		t.Fatal(err)
	}
	for flow := uint16(0); flow < 128; flow++ {
		plane.Submit(tenantPkt(t, 0, flow))
	}

	after := canon(col.Registry().Snapshot().FilterLabel("tenant", "b"))
	if before != after {
		t.Errorf("tenant b's metric slice moved under tenant a's traffic:\nbefore %s\nafter  %s",
			before, after)
	}
	// And tenant a's slice did move — the comparison is not vacuous.
	aSlice := col.Registry().Snapshot().FilterLabel("tenant", "a")
	if aSlice.Counters[obs.Labeled("shard_arrived_total", "tenant", "a")] == 0 {
		t.Error("tenant a's labeled arrival counter never moved")
	}
}

// TestPerTenantConservationUnderChaos is the satellite-4 suite: concurrent
// producers for two tenants, with card failover, lane failover, tenant and
// plane lockdown, and Close racing them — and the per-tenant conservation
// invariant checked at mid-run snapshots, not just at quiescence. Run with
// -race.
func TestPerTenantConservationUnderChaos(t *testing.T) {
	plane := twoTenantPlane(t, 3, nil, nil)

	var submitted [2]atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				batch := make([][]byte, 0, 16)
				var perTenant [2]uint64
				for j := 0; j < 16; j++ {
					tenant := (i + j + w) % 2
					batch = append(batch, tenantPkt(t, tenant, uint16((w*131+i*17+j)%512)))
					perTenant[tenant]++
				}
				out := plane.SubmitBatch(batch)
				if out.Total() != len(batch) {
					t.Errorf("batch accounted %d of %d", out.Total(), len(batch))
					return
				}
				submitted[0].Add(perTenant[0])
				submitted[1].Add(perTenant[1])
			}
		}(w)
	}

	// Mid-run snapshots: conservation per tenant at any instant.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := plane.Stats()
			for _, ts := range st.Tenants {
				if !ts.Conserved() {
					t.Errorf("mid-run: tenant %q not conserved: %+v", ts.Name, ts)
					return
				}
			}
			if !st.Conserved() {
				t.Errorf("mid-run: plane not conserved")
				return
			}
		}
	}()

	time.Sleep(30 * time.Millisecond)
	if err := plane.FailTenantShard(0, 1); err != nil {
		t.Error(err)
	}
	time.Sleep(10 * time.Millisecond)
	if err := plane.FailShard(1); err != nil {
		t.Error(err)
	}
	if err := plane.LockdownTenant(0); err != nil {
		t.Error(err)
	}
	time.Sleep(10 * time.Millisecond)
	if err := plane.ClearLockdownTenant(0); err != nil {
		t.Error(err)
	}
	plane.Lockdown()
	time.Sleep(5 * time.Millisecond)
	plane.ClearLockdown()
	time.Sleep(20 * time.Millisecond)

	close(stop)
	wg.Wait()
	plane.Close()

	st := plane.Stats()
	for tenant, ts := range st.Tenants {
		if !ts.Conserved() {
			t.Errorf("final: tenant %q not conserved: %+v", ts.Name, ts)
		}
		if ts.Backlog != 0 {
			t.Errorf("final: tenant %q backlog %d after Close", ts.Name, ts.Backlog)
		}
		if want := submitted[tenant].Load(); ts.Arrived != want {
			t.Errorf("tenant %q arrived %d, submitted %d", ts.Name, ts.Arrived, want)
		}
	}
	if !st.Conserved() {
		t.Errorf("final: plane not conserved: %+v", st)
	}
	if got, want := st.Arrived, submitted[0].Load()+submitted[1].Load(); got != want {
		t.Errorf("plane arrived %d, submitted %d", got, want)
	}
}

// TestSingleTenantTenancyNoop: a one-tenant TenancyConfig behaves exactly
// like the historical plane — unlabeled series, whole-NP drains.
func TestSingleTenantTenancyNoop(t *testing.T) {
	col := obs.New(64)
	plane, err := NewPlane(Config{
		NPs:           []*npu.NP{planeNP(t, 2, 5)},
		QueueCapacity: 32,
		Obs:           col,
		Tenancy:       &TenancyConfig{Tenants: []string{"solo"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for flow := uint16(0); flow < 32; flow++ {
		if adm := plane.Submit(tenantPkt(t, 3, flow)); adm == AdmitStarved {
			t.Fatal("single-tenant plane starved healthy traffic")
		}
	}
	plane.Close()
	snap := col.Registry().Snapshot()
	if got := snap.Counters["shard_arrived_total"]; got != 32 {
		t.Errorf("bare shard_arrived_total = %d, want 32", got)
	}
	for name := range snap.Counters {
		if obs.HasLabel(name, "tenant", "solo") {
			t.Errorf("single-tenant plane registered labeled series %q", name)
		}
	}
	st := plane.Stats()
	if len(st.Tenants) != 1 || !st.Tenants[0].Conserved() || st.Tenants[0].Backlog != 0 {
		t.Errorf("single-tenant TenantStats wrong: %+v", st.Tenants)
	}
}
