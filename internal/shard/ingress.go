package shard

// Ingress micro-benchmark: the mutex-guarded slice queue the plane used
// before the ring rewrite, measured head to head against the lock-free
// ring + arena, with 1..N submitters feeding one consumer. The full-plane
// bench (bench.go) is drain-bound on a small host — the NPs' simulated
// cores dominate — so the ingress_fast series in BENCH_npu.json isolates
// the mechanics this PR replaced: what does it cost to hand a packet
// from a submitter to the shard worker?

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sdmmon/internal/network"
	"sdmmon/internal/npu"
)

// IngressConfig describes one ingress measurement point.
type IngressConfig struct {
	// Submitters is the number of concurrent producer goroutines.
	Submitters int
	// Packets is the total packet budget across all submitters.
	Packets int
	// Capacity bounds the queue; 0 selects 4096. Producers retry a full
	// queue instead of dropping, so both implementations move the same
	// packets and the number measured is sustainable hand-off throughput
	// at a fixed bound.
	Capacity int
	// Batch caps the consumer's drain batch; 0 selects 64.
	Batch int
	// MutexQueue selects the pre-ring baseline: a mutex+cond guarded
	// append-grown slice queue with per-packet signaling, replicated from
	// the old Plane.Submit/worker pair.
	MutexQueue bool
	Seed       int64
}

// mutexIngress is the baseline: the old line card's ingress, verbatim —
// every submit takes the lock, appends, signals; the consumer copies a
// batch head out under the lock and advances the slice.
type mutexIngress struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue [][]byte
	cap   int
}

func (q *mutexIngress) submit(pkt []byte) bool {
	// The old plane took ownership of the submitted slice, which forced
	// the caller to cut a fresh heap buffer for every packet (a NIC
	// driver or generator cannot hand over the buffer it is about to
	// reuse). That allocation is part of the old design's per-packet
	// cost, so the baseline pays it here — both implementations then
	// offer the same contract (the caller keeps its buffer), one through
	// the garbage collector, one through the arena.
	owned := append([]byte(nil), pkt...)
	q.mu.Lock()
	if len(q.queue) >= q.cap {
		q.mu.Unlock()
		return false
	}
	q.queue = append(q.queue, owned)
	q.cond.Signal()
	q.mu.Unlock()
	return true
}

func (q *mutexIngress) drain(buf [][]byte) int {
	q.mu.Lock()
	for len(q.queue) == 0 {
		q.cond.Wait()
	}
	n := len(q.queue)
	if n > len(buf) {
		n = len(buf)
	}
	copy(buf, q.queue[:n])
	for i := 0; i < n; i++ {
		q.queue[i] = nil // release for GC; the slice head advances
	}
	q.queue = q.queue[n:]
	q.mu.Unlock()
	return n
}

// MeasureIngress times one ingress point: Submitters producers hand
// Packets packets to a single consumer through either the mutex-queue
// baseline or the ring + arena, and the wall clock runs until the
// consumer has drained every packet. Both implementations provide the
// same external contract — the producer's buffer is free for reuse the
// moment submit returns — the baseline through a per-packet heap copy
// it hands to the garbage collector (the old plane's take-ownership
// semantics pushed exactly this allocation onto every caller), the ring
// through a copy into a recycled arena buffer.
func MeasureIngress(cfg IngressConfig) (npu.BenchPoint, error) {
	if cfg.Submitters < 1 {
		return npu.BenchPoint{}, fmt.Errorf("shard: ingress bench needs submitters >= 1")
	}
	if cfg.Packets < cfg.Submitters {
		cfg.Packets = cfg.Submitters
	}
	capacity := cfg.Capacity
	if capacity == 0 {
		capacity = 4096
	}
	batch := cfg.Batch
	if batch == 0 {
		batch = 64
	}
	gen, err := network.NewFlowGenerator(256, cfg.Seed+77)
	if err != nil {
		return npu.BenchPoint{}, err
	}
	// Pre-cut the budget so producers touch no shared generator state.
	per := cfg.Packets / cfg.Submitters
	lots := make([][][]byte, cfg.Submitters)
	total := 0
	for i := range lots {
		n := per
		if i == 0 {
			n += cfg.Packets - per*cfg.Submitters
		}
		lots[i] = gen.NextBatch(make([][]byte, n))
		total += n
	}

	// Collect before timing: the caller (a sweep harness) may carry heap
	// debt from earlier measurements, and GC assists landing inside the
	// timed region would tax whichever implementation happens to be
	// running — packet generation just above allocates the whole budget.
	runtime.GC()

	var wg sync.WaitGroup
	start := time.Now()
	if cfg.MutexQueue {
		q := &mutexIngress{cap: capacity}
		q.cond = sync.NewCond(&q.mu)
		for _, lot := range lots {
			wg.Add(1)
			go func(lot [][]byte) {
				defer wg.Done()
				for _, pkt := range lot {
					for !q.submit(pkt) {
						runtime.Gosched()
					}
				}
			}(lot)
		}
		buf := make([][]byte, batch)
		for consumed := 0; consumed < total; {
			consumed += q.drain(buf)
		}
	} else {
		ring := newBufRing(capacity)
		pool := newArena(ring.Cap(), batch)
		var mu sync.Mutex
		cond := sync.NewCond(&mu)
		var parked atomic.Bool
		for _, lot := range lots {
			wg.Add(1)
			go func(lot [][]byte) {
				defer wg.Done()
				for _, pkt := range lot {
					b := pool.Get()
					b.data = append(b.data[:0], pkt...)
					for !ring.Enqueue(b) {
						runtime.Gosched()
					}
					if parked.Load() {
						mu.Lock()
						parked.Store(false)
						cond.Broadcast()
						mu.Unlock()
					}
				}
			}(lot)
		}
		buf := make([]*pbuf, batch)
		for consumed := 0; consumed < total; {
			n := 0
			for n < batch {
				b := ring.Dequeue()
				if b == nil {
					break
				}
				buf[n] = b
				n++
			}
			if n == 0 {
				parked.Store(true)
				if ring.Empty() {
					mu.Lock()
					for parked.Load() && ring.Empty() {
						cond.Wait()
					}
					parked.Store(false)
					mu.Unlock()
				} else {
					parked.Store(false)
				}
				continue
			}
			for i := 0; i < n; i++ {
				pool.Put(buf[i])
			}
			consumed += n
		}
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	p := npu.BenchPoint{
		Path:        "ingress_ring",
		Batch:       batch,
		Submitters:  cfg.Submitters,
		Packets:     uint64(total),
		WallSeconds: wall,
	}
	if cfg.MutexQueue {
		p.Path = "ingress_mutex"
	}
	if wall > 0 {
		p.PktsPerSec = float64(total) / wall
		p.NsPerPkt = wall * 1e9 / float64(total)
	}
	return p, nil
}
