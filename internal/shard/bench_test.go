package shard

import (
	"runtime"
	"testing"
)

// TestIngressFastGate is the perf gate of the ring rewrite, stated on the
// mechanics the rewrite replaced: handing packets from submitters to a
// shard worker through the lock-free ring + arena must be at least 2x the
// mutex-queue baseline under contention. Both sides offer the identical
// contract (the caller keeps its buffer — see MeasureIngress). The two
// paths are measured as interleaved head-to-head pairs and the gate takes
// the best pairing: on a small shared host either side can lose a run to
// scheduler or GC luck, but a rewrite that had genuinely regressed below
// 2x would miss the bar in every pairing.
func TestIngressFastGate(t *testing.T) {
	if raceEnabled {
		t.Skip("perf gate needs an uninstrumented build; make test-shard runs it without -race")
	}
	measure := func(mutex bool) float64 {
		// The baseline's per-packet heap copies leave garbage behind;
		// collect it so one side's GC debt never taxes the other's run.
		runtime.GC()
		p, err := MeasureIngress(IngressConfig{
			Submitters: 4,
			Packets:    160000,
			Seed:       5,
			MutexQueue: mutex,
		})
		if err != nil {
			t.Fatalf("mutex=%v: %v", mutex, err)
		}
		return p.PktsPerSec
	}
	// Discarded warmup pair: the first measurement in a fresh process pays
	// page faults and scheduler warmup that neither implementation owns.
	measure(true)
	measure(false)
	bestRatio := 0.0
	for pair := 0; pair < 4; pair++ {
		mtx := measure(true)
		ring := measure(false)
		ratio := ring / mtx
		t.Logf("pair %d: ring %.0f pps, mutex %.0f pps: %.2fx", pair, ring, mtx, ratio)
		if ratio > bestRatio {
			bestRatio = ratio
		}
	}
	if bestRatio < 2 {
		t.Fatalf("ring ingress peaked at %.2fx the mutex baseline across 4 pairings; gate requires >= 2x", bestRatio)
	}
}

// TestShardScalingGate is the perf gate of the sharded plane: the simulated
// aggregate throughput at 4 shards must be at least 1.6x the 1-shard plane
// of the same per-shard shape. The number is virtual-time (per-shard busy
// cycles over the modeled clock), so it is deterministic for a seed and
// independent of the host's core count — a 1-CPU CI box measures the same
// curve as a 64-core one.
func TestShardScalingGate(t *testing.T) {
	point := func(shards int) float64 {
		p, err := MeasureThroughput(BenchConfig{
			Shards:        shards,
			CoresPerShard: 2,
			Batch:         64,
			Packets:       2048,
			Flows:         256,
			Seed:          11,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if p.SimAggPktsPerSec <= 0 {
			t.Fatalf("shards=%d: no simulated throughput", shards)
		}
		if p.Shards != shards || p.Path != "shard" {
			t.Fatalf("shards=%d: mislabeled point %+v", shards, p)
		}
		return p.SimAggPktsPerSec
	}
	one := point(1)
	four := point(4)
	speedup := four / one
	t.Logf("1 shard %.0f pps, 4 shards %.0f pps (sim aggregate): %.2fx", one, four, speedup)
	if speedup < 1.6 {
		t.Fatalf("4-shard aggregate %.2fx the 1-shard plane; gate requires >= 1.6x", speedup)
	}
}
