package shard

import "testing"

// TestShardScalingGate is the perf gate of the sharded plane: the simulated
// aggregate throughput at 4 shards must be at least 1.6x the 1-shard plane
// of the same per-shard shape. The number is virtual-time (per-shard busy
// cycles over the modeled clock), so it is deterministic for a seed and
// independent of the host's core count — a 1-CPU CI box measures the same
// curve as a 64-core one.
func TestShardScalingGate(t *testing.T) {
	point := func(shards int) float64 {
		p, err := MeasureThroughput(BenchConfig{
			Shards:        shards,
			CoresPerShard: 2,
			Batch:         64,
			Packets:       2048,
			Flows:         256,
			Seed:          11,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if p.SimAggPktsPerSec <= 0 {
			t.Fatalf("shards=%d: no simulated throughput", shards)
		}
		if p.Shards != shards || p.Path != "shard" {
			t.Fatalf("shards=%d: mislabeled point %+v", shards, p)
		}
		return p.SimAggPktsPerSec
	}
	one := point(1)
	four := point(4)
	speedup := four / one
	t.Logf("1 shard %.0f pps, 4 shards %.0f pps (sim aggregate): %.2fx", one, four, speedup)
	if speedup < 1.6 {
		t.Fatalf("4-shard aggregate %.2fx the 1-shard plane; gate requires >= 1.6x", speedup)
	}
}
