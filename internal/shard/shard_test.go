package shard

import (
	"sync"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/fault"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
	"sdmmon/internal/network"
	"sdmmon/internal/npu"
	"sdmmon/internal/obs"
	"sdmmon/internal/packet"
)

// planeNP builds one installed line-card NP with a supervisor tight enough
// for tests to drive quarantine quickly.
func planeNP(t *testing.T, cores int, seed int64) *npu.NP {
	t.Helper()
	np, err := npu.New(npu.Config{
		Cores:           cores,
		MonitorsEnabled: true,
		Supervisor:      npu.SupervisorConfig{Window: 16, Threshold: 4, ProbationPackets: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	installIPv4CM(t, np, uint32(seed)*2654435761+0x600D)
	return np
}

func installIPv4CM(t *testing.T, np *npu.NP, param uint32) {
	t.Helper()
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		t.Fatal(err)
	}
	g, err := monitor.Extract(prog, mhash.NewMerkle(param))
	if err != nil {
		t.Fatal(err)
	}
	if err := np.InstallAll("ipv4cm", prog.Serialize(), g.Serialize(), param); err != nil {
		t.Fatal(err)
	}
}

// flakyNP builds an NP whose hash units corrupt every lookup — the
// persistently faulty line card. The fault is armed after installation
// (install self-checks would reject it) and after a re-install that leaves
// the instruction-hash caches cold, so every packet goes through the faulty
// circuit and alarms.
func flakyNP(t *testing.T, cores int, seed int64) *npu.NP {
	t.Helper()
	inj := fault.New(seed)
	var flaky []*fault.FlakyHasher
	np, err := npu.New(npu.Config{
		Cores:           cores,
		MonitorsEnabled: true,
		Supervisor:      npu.SupervisorConfig{Window: 16, Threshold: 4, ProbationPackets: 8},
		NewHasher: func(p uint32) mhash.Hasher {
			h := inj.FlakyHasher(mhash.NewMerkle(p), 0)
			flaky = append(flaky, h)
			return h
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	installIPv4CM(t, np, 0xFA17)
	installIPv4CM(t, np, 0xFA17) // cold caches: lookups hit the flaky circuit
	for _, h := range flaky {
		h.SetRate(1)
	}
	return np
}

func TestFlowKeyStableAndPortSensitive(t *testing.T) {
	mk := func(srcPort uint16) []byte {
		u := &packet.UDP{SrcPort: srcPort, DstPort: 53, Payload: []byte("query")}
		p := &packet.IPv4{
			TTL: 64, Proto: packet.ProtoUDP,
			Src: packet.IP(10, 0, 0, 1), Dst: packet.IP(192, 168, 0, 1),
			Payload: u.Marshal(),
		}
		b, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := mk(1000), mk(1000)
	b[8]++ // TTL is not part of the flow identity
	if FlowKeyOf(a) != FlowKeyOf(b) {
		t.Error("key changed with a non-tuple field")
	}
	if FlowKeyOf(mk(1000)) == FlowKeyOf(mk(1001)) {
		t.Error("key ignored the source port")
	}
	// Short/malformed packets still get a stable key.
	if FlowKeyOf([]byte{1, 2, 3}) != FlowKeyOf([]byte{1, 2, 3}) {
		t.Error("short-packet key unstable")
	}
}

func TestMarkCE(t *testing.T) {
	mk := func(tos uint8) []byte {
		p := &packet.IPv4{
			TOS: tos, TTL: 64, Proto: packet.ProtoUDP,
			Src: packet.IP(10, 0, 0, 1), Dst: packet.IP(10, 0, 0, 2),
			Payload: (&packet.UDP{SrcPort: 9, DstPort: 53, Payload: []byte("q")}).Marshal(),
		}
		b, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	for _, ect := range []uint8{0x1, 0x2} { // ECT(1), ECT(0)
		pkt := mk(0x20 | ect)
		if !packet.ChecksumOK(pkt) {
			t.Fatal("marshal produced a bad checksum")
		}
		if !markCE(pkt) {
			t.Fatalf("markCE refused an ECT packet (ECN %#x)", ect)
		}
		if pkt[1]&0x3 != 0x3 {
			t.Error("CE codepoint not set")
		}
		if !packet.ChecksumOK(pkt) {
			t.Error("incremental checksum update broke the header checksum")
		}
		if markCE(pkt) {
			t.Error("already-CE packet re-marked")
		}
	}
	// RFC 3168: not-ECT traffic must never be CE-marked.
	notECT := packet.NewGenerator(3).Next() // generator clears ECN bits
	if markCE(notECT) {
		t.Error("not-ECT packet marked")
	}
	if markCE([]byte{1, 2, 3}) {
		t.Error("short packet marked")
	}
}

// TestPlaneNotECTDropInsteadOfMark pins the RFC 3168 mark-or-drop
// equivalence at admission: a burst of not-ECT traffic past the marking
// threshold is never CE-marked — it is dropped in the mark's place — and
// every drop is accounted so conservation still holds.
func TestPlaneNotECTDropInsteadOfMark(t *testing.T) {
	plane, err := NewPlane(Config{
		NPs:           []*npu.NP{planeNP(t, 1, 77)},
		QueueCapacity: 32,
		MarkThreshold: 8,
		BatchSize:     16,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := packet.NewGenerator(7) // not-ECT traffic
	var dropped, marked int
	for i := 0; i < 20000; i++ {
		switch plane.Submit(gen.Next()) {
		case AdmitDropped:
			dropped++
		case AdmitMarked:
			marked++
		}
	}
	plane.Close()
	st := plane.Stats()
	if !st.Conserved() {
		t.Fatalf("not conserved: %+v", st)
	}
	if marked != 0 || st.Marked != 0 {
		t.Errorf("not-ECT traffic was CE-marked at admission (%d admissions, %d stats)", marked, st.Marked)
	}
	if dropped == 0 || uint64(dropped) != st.TailDrops {
		t.Errorf("threshold drops: admission saw %d, stats say %d", dropped, st.TailDrops)
	}
}

// TestPlaneFlowAffinity pins the core dispatch property: a single flow's
// packets all land on exactly one shard, and it is the shard ShardFor
// predicts.
func TestPlaneFlowAffinity(t *testing.T) {
	nps := make([]*npu.NP, 4)
	for i := range nps {
		nps[i] = planeNP(t, 1, int64(i+1))
	}
	plane, err := NewPlane(Config{NPs: nps, QueueCapacity: 1024})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := network.NewFlowGenerator(1, 99)
	if err != nil {
		t.Fatal(err)
	}
	first := gen.Next()
	want := plane.ShardFor(FlowKeyOf(first))
	plane.Submit(first)
	for i := 0; i < 199; i++ {
		plane.Submit(gen.Next())
	}
	plane.Close()
	st := plane.Stats()
	if !st.Conserved() {
		t.Fatalf("not conserved: %+v", st)
	}
	for _, s := range st.Shards {
		if s.Shard == want {
			if s.Arrived != 200 {
				t.Errorf("home shard %d saw %d of 200 packets", want, s.Arrived)
			}
		} else if s.Arrived != 0 {
			t.Errorf("shard %d saw %d packets of a foreign flow", s.Shard, s.Arrived)
		}
	}
}

// TestPlaneRendezvousMinimalDisruption pins the failover property of
// rendezvous hashing: when a shard dies, only its flows move; every other
// flow keeps its shard.
func TestPlaneRendezvousMinimalDisruption(t *testing.T) {
	nps := make([]*npu.NP, 4)
	for i := range nps {
		nps[i] = planeNP(t, 1, int64(i+10))
	}
	plane, err := NewPlane(Config{NPs: nps, QueueCapacity: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Close()

	gen, err := network.NewFlowGenerator(64, 7)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, 64)
	victimFlow := -1
	const victim = 2
	before := make([]int, 64)
	for i := range keys {
		pkt, idx := gen.NextIndexed()
		_ = idx
		keys[i] = FlowKeyOf(pkt)
		before[i] = plane.ShardFor(keys[i])
		if before[i] == victim && victimFlow < 0 {
			victimFlow = i
		}
	}
	if victimFlow < 0 {
		t.Fatal("no flow mapped to the victim shard — salt choice broken")
	}

	// Kill the victim: quarantine its core (race-safe by contract), then
	// drive traffic at it until the worker notices and fails over.
	if err := nps[victim].Quarantine(0); err != nil {
		t.Fatal(err)
	}
	probe, err := network.NewFlowGenerator(64, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000 && plane.Stats().Failovers == 0; i++ {
		plane.Submit(probe.Next())
	}
	if got := plane.Stats().Failovers; got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}

	moved := 0
	for i, key := range keys {
		after := plane.ShardFor(key)
		if after == victim {
			t.Fatalf("flow %d still dispatched to the dead shard", i)
		}
		if before[i] != victim && after != before[i] {
			t.Errorf("flow %d moved %d→%d though its shard is healthy", i, before[i], after)
		}
		if before[i] == victim {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no flow was on the victim shard")
	}
	if !plane.Stats().Conserved() {
		t.Fatalf("not conserved after failover: %+v", plane.Stats())
	}
}

// TestPlaneBackpressureMarksAndTailDrops pins admission control: a burst
// far past the queue bound must CE-mark past the threshold, tail-drop at
// capacity, forward marked packets with the mark intact, and still conserve
// every packet.
func TestPlaneBackpressureMarksAndTailDrops(t *testing.T) {
	col := obs.New(0)
	plane, err := NewPlane(Config{
		NPs:           []*npu.NP{planeNP(t, 1, 21)},
		QueueCapacity: 32,
		MarkThreshold: 8,
		BatchSize:     16,
		Obs:           col,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := network.NewFlowGenerator(32, 5)
	if err != nil {
		t.Fatal(err)
	}
	var dropped, marked int
	for i := 0; i < 20000; i++ {
		switch plane.Submit(gen.Next()) {
		case AdmitDropped:
			dropped++
		case AdmitMarked:
			marked++
		case AdmitStarved:
			t.Fatal("healthy plane starved a packet")
		}
	}
	plane.Close()
	st := plane.Stats()
	if !st.Conserved() {
		t.Fatalf("not conserved: %+v", st)
	}
	if st.TailDrops == 0 || uint64(dropped) != st.TailDrops {
		t.Errorf("tail drops: admission saw %d, stats say %d", dropped, st.TailDrops)
	}
	if st.Marked == 0 || uint64(marked) != st.Marked {
		t.Errorf("marked: admission saw %d, stats say %d", marked, st.Marked)
	}
	if st.ECNMarked == 0 {
		t.Error("no forwarded packet carried the CE mark out")
	}
	if st.Backlog != 0 {
		t.Errorf("backlog %d after Close", st.Backlog)
	}
	// Telemetry mirrors the stats.
	reg := col.Registry()
	if got := reg.Counter("shard_tail_drops_total").Value(); got != st.TailDrops {
		t.Errorf("shard_tail_drops_total = %d, want %d", got, st.TailDrops)
	}
	if got := reg.Counter("shard_arrived_total").Value(); got != st.Arrived {
		t.Errorf("shard_arrived_total = %d, want %d", got, st.Arrived)
	}
	bp := 0
	for _, ev := range col.Events() {
		if ev.Kind == obs.EvBackpressure {
			bp++
		}
	}
	if bp == 0 {
		t.Error("no EvBackpressure event emitted at marking onset")
	}
}

// TestPlaneConservationUnderFaultsAndFailover is the packet-conservation
// invariant of the whole plane under the worst conditions it supports: one
// shard with a persistently faulty hash circuit (alarms on every packet
// until the supervisor quarantines every core), one shard killed mid-run by
// an operator drill, admission pressure on a small queue, and the rest of
// the fleet carrying the traffic. Every submitted packet must be accounted:
// arrived == forwarded + app drops + rejected + tail drops + starved +
// backlog. Run with -race (make test-shard).
func TestPlaneConservationUnderFaultsAndFailover(t *testing.T) {
	col := obs.New(0)
	nps := []*npu.NP{
		planeNP(t, 2, 31),
		planeNP(t, 2, 32),
		planeNP(t, 2, 33),
		flakyNP(t, 2, 34),
	}
	plane, err := NewPlane(Config{
		NPs:           nps,
		QueueCapacity: 64,
		MarkThreshold: 16,
		BatchSize:     32,
		Obs:           col,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := network.NewFlowGenerator(128, 13)
	if err != nil {
		t.Fatal(err)
	}
	const total = 6000
	for i := 0; i < total; i++ {
		if i == total/3 {
			// Mid-run operator drill: kill shard 1 under live traffic.
			// Quarantine takes the slot lock, so this is safe against the
			// in-flight packets its worker is processing.
			for c := 0; c < nps[1].Cores(); c++ {
				if err := nps[1].Quarantine(c); err != nil {
					t.Fatal(err)
				}
			}
		}
		plane.Submit(gen.Next())
	}
	plane.Close()

	st := plane.Stats()
	if !st.Conserved() {
		t.Fatalf("conservation broken: arrived %d != fwd %d + app %d + rej %d + tail %d + starved %d + backlog %d\n%+v",
			st.Arrived, st.Forwarded, st.AppDrops, st.Rejected, st.TailDrops, st.Starved, st.Backlog, st)
	}
	if st.Arrived != total {
		t.Errorf("arrived %d, want %d", st.Arrived, total)
	}
	if st.Backlog != 0 {
		t.Errorf("backlog %d after Close", st.Backlog)
	}
	if st.Failovers != 2 {
		t.Errorf("failovers = %d, want 2 (flaky shard + drill)", st.Failovers)
	}
	if st.Forwarded == 0 {
		t.Error("surviving shards forwarded nothing")
	}
	var alarms uint64
	for _, s := range st.Shards {
		alarms += s.Alarms
	}
	if alarms == 0 {
		t.Error("flaky hash unit never alarmed — fault fixture broken")
	}
	for _, s := range st.Shards {
		if s.Shard == 1 || s.Shard == 3 {
			if !s.Failed {
				t.Errorf("shard %d should have failed over", s.Shard)
			}
		} else if s.Failed {
			t.Errorf("healthy shard %d failed over", s.Shard)
		}
	}
	// The failed shards' queued remainders were shed as starved drops, and
	// the events say so.
	if got := col.Registry().Counter("shard_failovers_total").Value(); got != 2 {
		t.Errorf("shard_failovers_total = %d, want 2", got)
	}
	fo := 0
	for _, ev := range col.Events() {
		if ev.Kind == obs.EvFailover {
			fo++
		}
	}
	if fo != 2 {
		t.Errorf("EvFailover events = %d, want 2", fo)
	}
	if got := col.Registry().Counter("shard_forwarded_total").Value(); got != st.Forwarded {
		t.Errorf("shard_forwarded_total = %d, want %d", got, st.Forwarded)
	}
}

// TestPlaneSubmitRacingClose pins the Submit/Close contract: submitters
// running concurrently with Close must terminate — Close sets each shard's
// closed flag without clearing its alive bit, so without the loop-top
// closed re-check Submit would re-pick the same closed-but-alive shard
// forever — and every racing submission must still be accounted (queued or
// starved), keeping conservation intact.
func TestPlaneSubmitRacingClose(t *testing.T) {
	nps := []*npu.NP{planeNP(t, 1, 51), planeNP(t, 1, 52)}
	plane, err := NewPlane(Config{NPs: nps, QueueCapacity: 64, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	const submitters = 4
	const perSubmitter = 2000
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gen, err := network.NewFlowGenerator(32, int64(100+g))
			if err != nil {
				t.Error(err)
				return
			}
			<-start
			for i := 0; i < perSubmitter; i++ {
				plane.Submit(gen.Next())
			}
		}(g)
	}
	close(start)
	plane.Close() // races the submitters
	wg.Wait()
	st := plane.Stats()
	if st.Arrived != submitters*perSubmitter {
		t.Errorf("arrived %d, want %d", st.Arrived, submitters*perSubmitter)
	}
	if !st.Conserved() {
		t.Fatalf("not conserved after racing close: %+v", st)
	}
}

func TestPlaneConfigValidation(t *testing.T) {
	np := planeNP(t, 1, 41)
	if _, err := NewPlane(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewPlane(Config{NPs: []*npu.NP{np}}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewPlane(Config{NPs: []*npu.NP{np}, QueueCapacity: 8, MarkThreshold: 9}); err == nil {
		t.Error("mark threshold past capacity accepted")
	}
	if _, err := NewPlane(Config{NPs: []*npu.NP{nil}, QueueCapacity: 8}); err == nil {
		t.Error("nil NP accepted")
	}
	p, err := NewPlane(Config{NPs: []*npu.NP{np}, QueueCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if got := p.Submit(packet.NewGenerator(1).Next()); got != AdmitStarved {
		t.Errorf("Submit after Close = %v, want starved", got)
	}
	if !p.Stats().Conserved() {
		t.Error("post-close submission broke conservation")
	}
}
