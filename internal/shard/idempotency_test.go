package shard

import (
	"testing"

	"sdmmon/internal/network"
	"sdmmon/internal/npu"
	"sdmmon/internal/obs"
)

// TestPlaneControlIdempotency pins the contract the threat engine's
// response dispatch relies on: FailShard, Lockdown, and ClearLockdown may
// be replayed (a graded response re-fires on every tick above its
// threshold) without double-counting failovers or shed packets, and the
// per-card tallies, plane-wide Stats, and the registry's
// shard_starved_drops_total counter must agree throughout.
func TestPlaneControlIdempotency(t *testing.T) {
	col := obs.New(0)
	nps := make([]*npu.NP, 3)
	for i := range nps {
		nps[i] = planeNP(t, 1, int64(i+40))
	}
	plane, err := NewPlane(Config{NPs: nps, QueueCapacity: 64, Obs: col})
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Close()
	starvedTotal := col.Registry().Counter("shard_starved_drops_total")

	gen, err := network.NewFlowGenerator(32, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		plane.Submit(gen.Next())
	}

	// consistent asserts the three views of shed packets never diverge.
	consistent := func(stage string) {
		t.Helper()
		st := plane.Stats()
		if !st.Conserved() {
			t.Fatalf("%s: not conserved: %+v", stage, st)
		}
		if got := starvedTotal.Value(); got != st.Starved {
			t.Fatalf("%s: registry starved %d != stats starved %d", stage, got, st.Starved)
		}
	}
	consistent("baseline")

	steps := []struct {
		name  string
		op    func() error
		check func(stage string)
	}{
		{
			name: "FailShard",
			op:   func() error { return plane.FailShard(1) },
			check: func(stage string) {
				st := plane.Stats()
				if st.Failovers != 1 {
					t.Errorf("%s: failovers = %d, want exactly 1", stage, st.Failovers)
				}
				if !st.Shards[1].Failed {
					t.Errorf("%s: shard 1 not marked failed", stage)
				}
			},
		},
		{
			name: "Lockdown",
			op:   func() error { plane.Lockdown(); return nil },
			check: func(stage string) {
				if !plane.LockedDown() {
					t.Errorf("%s: plane not locked down", stage)
				}
				if got := plane.Submit(gen.Next()); got != AdmitStarved {
					t.Errorf("%s: admission under lockdown = %v, want starved", stage, got)
				}
			},
		},
		{
			name: "ClearLockdown",
			op:   func() error { plane.ClearLockdown(); return nil },
			check: func(stage string) {
				if plane.LockedDown() {
					t.Errorf("%s: plane still locked down", stage)
				}
				if got := plane.Submit(gen.Next()); got == AdmitStarved {
					t.Errorf("%s: healthy shards remain but admission starved", stage)
				}
			},
		},
	}
	for _, step := range steps {
		for _, stage := range []string{step.name + "/first", step.name + "/replay"} {
			if err := step.op(); err != nil {
				t.Fatalf("%s: %v", stage, err)
			}
			step.check(stage)
			consistent(stage)
		}
	}

	for _, bad := range []int{-1, 3} {
		if err := plane.FailShard(bad); err == nil {
			t.Errorf("FailShard(%d) accepted an out-of-range shard", bad)
		}
	}

	// The worker dead-path replay: a batch tail sheds on a card a
	// concurrent FailShard already failed (the worker held no lock during
	// DrainBatch). failLocked must no-op the failover event yet still
	// fold the tail into the plane-wide counter — this is the lost-extra
	// bug the consistency checks above would miss at quiescence.
	lc := plane.cards[1]
	before := starvedTotal.Value()
	lc.mu.Lock()
	lc.arrived += 5 // the tail's packets were admitted before the wedge
	lc.starved += 5 // worker accounts the unprocessed tail on the card
	plane.failLocked(lc, 5)
	lc.mu.Unlock()
	if got := starvedTotal.Value(); got != before+5 {
		t.Errorf("dead-path replay: registry starved %d, want %d", got, before+5)
	}
	if got := plane.Stats().Failovers; got != 1 {
		t.Errorf("dead-path replay re-emitted failover: %d events", got)
	}
	consistent("dead-path replay")
}
