package shard

import (
	"testing"
	"time"

	"sdmmon/internal/network"
	"sdmmon/internal/npu"
	"sdmmon/internal/obs"
)

// TestPlaneControlIdempotency pins the contract the threat engine's
// response dispatch relies on: FailShard, Lockdown, and ClearLockdown may
// be replayed (a graded response re-fires on every tick above its
// threshold) without double-counting failovers or shed packets, and the
// per-card tallies, plane-wide Stats, and the registry's shard_* counters
// must agree throughout. Since the ring rewrite the backlog shed after a
// failover happens asynchronously on the card's worker, so the
// consistency check waits for the views to converge instead of demanding
// instantaneous agreement — but the failover count itself must move
// synchronously (the threat engine reads it right after responding).
func TestPlaneControlIdempotency(t *testing.T) {
	col := obs.New(0)
	nps := make([]*npu.NP, 3)
	for i := range nps {
		nps[i] = planeNP(t, 1, int64(i+40))
	}
	plane, err := NewPlane(Config{NPs: nps, QueueCapacity: 64, Obs: col})
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Close()
	starvedTotal := col.Registry().Counter("shard_starved_drops_total")
	arrivedTotal := col.Registry().Counter("shard_arrived_total")

	gen, err := network.NewFlowGenerator(32, 9)
	if err != nil {
		t.Fatal(err)
	}
	submitted := 0
	for i := 0; i < 200; i++ {
		plane.Submit(gen.Next())
		submitted++
	}

	// consistent asserts the views of shed and arrived packets converge:
	// conservation at every poll, and registry == Stats once the async
	// shed (if any) quiesces.
	consistent := func(stage string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			st := plane.Stats()
			if !st.Conserved() {
				t.Fatalf("%s: not conserved: %+v", stage, st)
			}
			// Arrival agreement (the re-pick accounting contract): every
			// Submit counts on the plane-wide registry counter and on
			// exactly one card (or the starved-submit tally) — a retried
			// packet must never be double-counted across cards.
			if got := arrivedTotal.Value(); got != st.Arrived || st.Arrived != uint64(submitted) {
				t.Fatalf("%s: arrivals disagree: registry %d, stats %d, submitted %d",
					stage, got, st.Arrived, submitted)
			}
			if got := starvedTotal.Value(); got == st.Starved {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: registry starved %d never converged to stats starved %d",
					stage, starvedTotal.Value(), st.Starved)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	consistent("baseline")

	steps := []struct {
		name  string
		op    func() error
		check func(stage string)
	}{
		{
			name: "FailShard",
			op:   func() error { return plane.FailShard(1) },
			check: func(stage string) {
				st := plane.Stats()
				if st.Failovers != 1 {
					t.Errorf("%s: failovers = %d, want exactly 1", stage, st.Failovers)
				}
				if !st.Shards[1].Failed {
					t.Errorf("%s: shard 1 not marked failed", stage)
				}
			},
		},
		{
			name: "Lockdown",
			op:   func() error { plane.Lockdown(); return nil },
			check: func(stage string) {
				if !plane.LockedDown() {
					t.Errorf("%s: plane not locked down", stage)
				}
				got := plane.Submit(gen.Next())
				submitted++
				if got != AdmitStarved {
					t.Errorf("%s: admission under lockdown = %v, want starved", stage, got)
				}
			},
		},
		{
			name: "ClearLockdown",
			op:   func() error { plane.ClearLockdown(); return nil },
			check: func(stage string) {
				if plane.LockedDown() {
					t.Errorf("%s: plane still locked down", stage)
				}
				got := plane.Submit(gen.Next())
				submitted++
				if got == AdmitStarved {
					t.Errorf("%s: healthy shards remain but admission starved", stage)
				}
			},
		},
	}
	for _, step := range steps {
		for _, stage := range []string{step.name + "/first", step.name + "/replay"} {
			if err := step.op(); err != nil {
				t.Fatalf("%s: %v", stage, err)
			}
			step.check(stage)
			consistent(stage)
		}
	}

	for _, bad := range []int{-1, 3} {
		if err := plane.FailShard(bad); err == nil {
			t.Errorf("FailShard(%d) accepted an out-of-range shard", bad)
		}
	}

	// The worker dead-path replay: the worker detects a wedged NP and
	// accounts a 5-packet unprocessed batch tail on a card a concurrent
	// FailShard already failed (the worker holds no lock during
	// DrainBatch, so this race is real). The tail reaches both the card
	// tally and the plane-wide counter from the worker's own accounting,
	// and the worker's failCard replay must lose the CAS — no second
	// failover, no divergence between the three views.
	lc := plane.cards[1]
	lane := lc.lanes[0]
	before := starvedTotal.Value()
	lane.arrived.Add(5) // the tail's packets were admitted before the wedge
	submitted += 5      // ...and counted on the registry at Submit time
	arrivedTotal.Add(5)
	lane.starved.Add(5)
	plane.cStarved.Add(5)
	plane.tcStarved[0].Add(5)
	plane.failCard(lc)
	if got := starvedTotal.Value(); got != before+5 {
		t.Errorf("dead-path replay: registry starved %d, want %d", got, before+5)
	}
	if got := plane.Stats().Failovers; got != 1 {
		t.Errorf("dead-path replay re-emitted failover: %d events", got)
	}
	consistent("dead-path replay")
}
