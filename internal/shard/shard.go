// Package shard is the multi-NP traffic plane: K independent npu.NP
// instances ("line cards") behind a flow-affinity dispatcher. The paper
// scales a single NP by adding cores; a deployed router scales further by
// adding line cards, and this package supplies the system glue that makes
// a fleet of monitored NPs look like one data plane:
//
//   - flow-affinity dispatch: packets are hashed on their 5-tuple and
//     rendezvous-hashed (highest-random-weight) onto a shard, so all
//     packets of a flow traverse one shard's FIFO queue and one NP —
//     per-flow order is preserved end to end;
//
//   - lock-free ingress: each shard's queue is a bounded MPSC ring of
//     arena-pooled packet buffers (ring.go). Submit copies the caller's
//     bytes into a pooled buffer exactly once and publishes it with two
//     atomic operations; the shard worker is the ring's single consumer
//     and parks on a sync.Cond only when the ring stays empty, so the
//     steady-state path takes no lock and allocates nothing;
//
//   - admission control: ECN-capable (ECT) arrivals past the marking
//     threshold are CE-marked (ECN-style backpressure, with the IPv4
//     header checksum incrementally fixed per RFC 1624), not-ECT arrivals
//     past the threshold are dropped in their place (RFC 3168's
//     mark-or-drop equivalence), and arrivals at a full queue tail-drop —
//     counted, never silently lost;
//
//   - failover: a shard whose NP can no longer take traffic (every core
//     quarantined by the supervisor) is removed from dispatch; its queued
//     packets are shed as starved drops (the QueueSim StarvedDrops
//     convention, preserving packet conservation) and its flows rendezvous-
//     rehash onto the surviving shards. Rendezvous hashing moves only the
//     failed shard's flows; every other flow keeps its shard and its order.
//
// Everything the plane does is observable through internal/obs: shard_*
// counters, per-shard depth gauges, and EvBackpressure/EvFailover ring
// events. Per-card statistics are plain atomics folded by Stats(); the
// conservation invariant (Arrived == Forwarded + AppDrops + Rejected +
// TailDrops + Starved + Backlog) holds at any instant because every path
// counts a packet's arrival before its outcome and Stats reads outcomes
// before arrivals (DESIGN.md §16).
package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"sdmmon/internal/npu"
	"sdmmon/internal/obs"
	"sdmmon/internal/packet"
)

// FlowKeyOf hashes a wire-format packet's 5-tuple (src, dst, proto, and —
// for TCP/UDP — the port pair that starts the L4 payload) with FNV-1a.
// Malformed or short packets hash over whatever bytes exist, so every
// packet gets a stable key and the dispatcher never has to reject traffic
// the NPs are expected to inspect.
func FlowKeyOf(pkt []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	if len(pkt) < 20 {
		for _, b := range pkt {
			h = (h ^ uint64(b)) * prime
		}
		return h
	}
	for _, b := range pkt[12:20] { // src, dst
		h = (h ^ uint64(b)) * prime
	}
	proto := pkt[9]
	h = (h ^ uint64(proto)) * prime
	if proto == packet.ProtoUDP || proto == packet.ProtoTCP {
		ihl := int(pkt[0]&0xF) * 4
		if ihl >= 20 && len(pkt) >= ihl+4 {
			for _, b := range pkt[ihl : ihl+4] { // src port, dst port
				h = (h ^ uint64(b)) * prime
			}
		}
	}
	return h
}

// mix64 is the splitmix64 finalizer — the per-shard weight function of the
// rendezvous hash. It is bijective, so distinct (flow, shard) pairs never
// systematically collide.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Admission is the fate of one submitted packet at the dispatcher.
type Admission int

const (
	// AdmitQueued: accepted onto a shard's ingress queue unmodified.
	AdmitQueued Admission = iota
	// AdmitMarked: accepted, but the queue was past the marking threshold
	// and the packet now carries the CE mark.
	AdmitMarked
	// AdmitDropped: tail-dropped at a full ingress queue, or a not-ECT
	// packet dropped past the marking threshold (RFC 3168: drop where an
	// ECT packet would have been CE-marked).
	AdmitDropped
	// AdmitStarved: no healthy shard remains (or the plane is closed); the
	// packet was counted as a starved drop.
	AdmitStarved
)

func (a Admission) String() string {
	switch a {
	case AdmitQueued:
		return "queued"
	case AdmitMarked:
		return "marked"
	case AdmitDropped:
		return "dropped"
	case AdmitStarved:
		return "starved"
	}
	return fmt.Sprintf("admission(%d)", int(a))
}

// Config describes a plane.
type Config struct {
	// NPs are the line cards, one per shard, already built and installed.
	// The plane owns their traffic from NewPlane until Close: nothing else
	// may call Process/ProcessBatch on them concurrently.
	NPs []*npu.NP
	// QueueCapacity bounds each shard's ingress queue; arrivals beyond it
	// tail-drop. The backing ring is sized to the next power of two, so
	// the physical bound can sit slightly above this soft bound; admission
	// enforces the soft bound and the ring enforces the hard one.
	QueueCapacity int
	// MarkThreshold is the queue depth at which admission starts CE-marking
	// arrivals; 0 selects QueueCapacity/2. Setting it equal to
	// QueueCapacity disables marking (the depth never reaches it without
	// tail-dropping instead).
	MarkThreshold int
	// BatchSize caps how many packets a shard worker drains per
	// ProcessBatch call; 0 selects 64.
	BatchSize int
	// Obs receives shard_* counters, per-shard depth gauges, and dispatch
	// ring events (ring index = shard index). Give the plane a collector of
	// its own when the NPs also publish per-core rings, or the indexes
	// overlap. Nil disables telemetry.
	Obs *obs.Collector
	// RecordBatchCycles retains every drained batch's simulated cycle cost
	// for latency percentiles. Bench-only: it allocates per batch.
	RecordBatchCycles bool
}

// lineCard is one shard: an NP, its lock-free ingress ring, the arena its
// packet buffers recycle through, and the worker state draining it. All
// statistics are atomics — producers and the drain worker never share a
// lock; the mutex below exists only as the worker's parking lot (and for
// the bench-only batch-cycle log).
type lineCard struct {
	id    int
	salt  uint64
	np    *npu.NP
	ring  *obs.EventRing
	depth *obs.Gauge

	queue *bufRing
	pool  *arena

	// alive is the dispatcher's view; cleared exactly once by failCard,
	// so a cleared bit means the re-pick loop skips this shard forever.
	alive  atomic.Bool
	failed atomic.Bool
	closed atomic.Bool
	// backpressure is the marking edge state for EvBackpressure (set by
	// the first producer past the threshold, cleared by the worker when
	// the queue drains below it).
	backpressure atomic.Bool

	// Per-card admission thresholds. Seeded from the plane defaults;
	// runtime response logic (internal/threat) tightens and restores them
	// per shard via SetAdmission without stalling producers.
	capacity atomic.Int64
	markAt   atomic.Int64

	// producers counts submitters inside their publish window (between
	// the failed/closed check and the ring enqueue). The worker sheds a
	// failed or closing card's ring for the last time only once this is
	// zero, so no packet can be published into a ring nobody will drain.
	producers atomic.Int64
	// parked is the Dekker-style handshake with the worker's parking lot:
	// the worker sets it and re-checks the ring; producers publish and
	// then check it. Sequentially consistent atomics guarantee one side
	// sees the other, so a missed wakeup is impossible.
	parked atomic.Bool

	// Producer-side tallies. Writers count arrived before the outcome;
	// Stats reads outcomes before arrived, which keeps the derived
	// backlog non-negative and conservation exact at any instant.
	arrived   atomic.Uint64
	tailDrops atomic.Uint64
	marked    atomic.Uint64
	maxDepth  atomic.Int64

	// Worker-side tallies. inflight is the size of the batch the worker
	// has dequeued but not yet handed back to the arena; the depth gauge
	// folds it in so a scrape mid-drain agrees with Stats().Backlog.
	starved   atomic.Uint64
	processed atomic.Uint64
	forwarded atomic.Uint64
	appDrops  atomic.Uint64
	rejected  atomic.Uint64
	alarms    atomic.Uint64
	faults    atomic.Uint64
	ecnMarked atomic.Uint64
	cycles    atomic.Uint64
	batches   atomic.Uint64
	inflight  atomic.Int64

	mu          sync.Mutex // parking lot + bench-only batchCycles
	cond        *sync.Cond
	batchCycles []uint64
}

// park blocks the worker until traffic, failure or close. See the parked
// field: the flag is published before the final emptiness re-check, so a
// producer that enqueued concurrently either sees the flag (and wakes us)
// or its packet is seen by the re-check.
func (lc *lineCard) park() {
	lc.parked.Store(true)
	if !lc.queue.Empty() || lc.closed.Load() || lc.failed.Load() {
		lc.parked.Store(false)
		return
	}
	lc.mu.Lock()
	for lc.parked.Load() && lc.queue.Empty() && !lc.closed.Load() && !lc.failed.Load() {
		lc.cond.Wait()
	}
	lc.parked.Store(false)
	lc.mu.Unlock()
}

// wake unparks the worker. Producers call it only after observing the
// parked flag, so the steady-state submit path pays one atomic load here,
// never a lock.
func (lc *lineCard) wake() {
	lc.mu.Lock()
	lc.parked.Store(false)
	lc.cond.Broadcast()
	lc.mu.Unlock()
}

// Plane is the sharded traffic plane.
type Plane struct {
	cards     []*lineCard
	capacity  int
	markAt    int
	batchSize int
	record    bool
	wg        sync.WaitGroup
	closed    atomic.Bool
	lockdown  atomic.Bool

	// drainHook, when non-nil (tests only; set before traffic), runs on a
	// worker between dequeuing a batch and handing it to the NP. pkts is
	// the dequeued batch; the slices are only valid until the hook returns.
	drainHook func(shard int, pkts [][]byte)

	starvedSubmit atomic.Uint64
	failovers     atomic.Uint64

	cArrived, cTailDrops, cMarked *obs.Counter
	cStarved, cFailovers          *obs.Counter
	cForwarded, cAppDrops         *obs.Counter
}

// NewPlane builds the plane and starts one drain worker per shard.
func NewPlane(cfg Config) (*Plane, error) {
	if len(cfg.NPs) == 0 {
		return nil, fmt.Errorf("shard: plane needs at least one NP")
	}
	if cfg.QueueCapacity < 1 {
		return nil, fmt.Errorf("shard: queue capacity %d must be >= 1", cfg.QueueCapacity)
	}
	markAt := cfg.MarkThreshold
	if markAt == 0 {
		markAt = cfg.QueueCapacity / 2
		if markAt < 1 {
			markAt = 1
		}
	}
	if markAt < 1 || markAt > cfg.QueueCapacity {
		return nil, fmt.Errorf("shard: mark threshold %d outside [1, %d]", markAt, cfg.QueueCapacity)
	}
	batch := cfg.BatchSize
	if batch == 0 {
		batch = 64
	}
	if batch < 1 {
		return nil, fmt.Errorf("shard: batch size %d must be >= 1", batch)
	}
	reg := cfg.Obs.Registry()
	p := &Plane{
		capacity:   cfg.QueueCapacity,
		markAt:     markAt,
		batchSize:  batch,
		record:     cfg.RecordBatchCycles,
		cArrived:   reg.Counter("shard_arrived_total"),
		cTailDrops: reg.Counter("shard_tail_drops_total"),
		cMarked:    reg.Counter("shard_marked_total"),
		cStarved:   reg.Counter("shard_starved_drops_total"),
		cFailovers: reg.Counter("shard_failovers_total"),
		cForwarded: reg.Counter("shard_forwarded_total"),
		cAppDrops:  reg.Counter("shard_app_drops_total"),
	}
	for i, np := range cfg.NPs {
		if np == nil {
			return nil, fmt.Errorf("shard: NP %d is nil", i)
		}
		lc := &lineCard{
			id: i,
			// Golden-ratio stride keeps shard salts well separated; mix64
			// in the weight function does the rest.
			salt:  mix64(uint64(i)*0x9E3779B97F4A7C15 + 1),
			np:    np,
			ring:  cfg.Obs.Ring(i),
			depth: reg.Gauge(fmt.Sprintf(`shard_queue_depth{shard="%d"}`, i)),
		}
		lc.queue = newBufRing(cfg.QueueCapacity)
		lc.pool = newArena(lc.queue.Cap(), batch)
		lc.capacity.Store(int64(cfg.QueueCapacity))
		lc.markAt.Store(int64(markAt))
		lc.cond = sync.NewCond(&lc.mu)
		lc.alive.Store(true)
		p.cards = append(p.cards, lc)
	}
	for _, lc := range p.cards {
		p.wg.Add(1)
		go p.worker(lc)
	}
	return p, nil
}

// Shards reports the number of line cards (healthy or not).
func (p *Plane) Shards() int { return len(p.cards) }

// ShardFor reports which shard the dispatcher would pick for a flow key
// right now — the rendezvous argmax over the currently healthy shards, the
// same choice Submit makes. -1 when no shard is healthy.
func (p *Plane) ShardFor(key uint64) int {
	best := -1
	var bestW uint64
	for i, lc := range p.cards {
		if !lc.alive.Load() {
			continue
		}
		w := mix64(key ^ lc.salt)
		if best < 0 || w > bestW {
			best, bestW = i, w
		}
	}
	return best
}

// ecnField reads a wire-format packet's ECN codepoint (RFC 3168: 0 =
// not-ECT, 1 = ECT(1), 2 = ECT(0), 3 = CE), or -1 for anything that is not
// a parseable IPv4 header.
func ecnField(pkt []byte) int {
	if len(pkt) < 20 || pkt[0]>>4 != 4 {
		return -1
	}
	return int(pkt[1] & 0x3)
}

// markCE sets the ECN CE codepoint on a wire-format IPv4 packet and
// incrementally updates the header checksum (RFC 1624: HC' = ~(~HC + ~m +
// m')), so a marked packet stays verifiable. Reports whether the packet
// was modified. Only ECN-capable packets — ECT(0)/ECT(1) — are marked:
// RFC 3168 §5 forbids setting CE on not-ECT traffic (already-CE and
// non-IPv4 packets are also left alone).
func markCE(pkt []byte) bool {
	switch ecnField(pkt) {
	case 0x1, 0x2: // ECT(1)/ECT(0): markable
	default: // not-ECT, already-CE, or not IPv4
		return false
	}
	old := binary.BigEndian.Uint16(pkt[0:2])
	pkt[1] |= 0x3
	m := binary.BigEndian.Uint16(pkt[0:2])
	hc := binary.BigEndian.Uint16(pkt[10:12])
	sum := uint32(^hc) + uint32(^old) + uint32(m)
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	binary.BigEndian.PutUint16(pkt[10:12], ^uint16(sum))
	return true
}

// Submit dispatches one packet. The plane copies pkt into a pooled buffer
// at admission (CE-marking mutates the copy, never the caller's bytes),
// so the caller keeps ownership of pkt and may reuse it immediately.
// Every submission is accounted under exactly one Admission outcome,
// which is what makes the plane's conservation invariant checkable.
func (p *Plane) Submit(pkt []byte) Admission {
	p.cArrived.Inc()
	// The closed/lockdown gate comes before the flow hash: a shutdown or
	// lockdown storm starves every submission, and paying FlowKeyOf for a
	// packet that cannot be admitted is pure waste.
	if p.closed.Load() || p.lockdown.Load() {
		p.starvedSubmit.Add(1)
		p.cStarved.Inc()
		return AdmitStarved
	}
	adm, _ := p.dispatch(FlowKeyOf(pkt), pkt, -1)
	return adm
}

// BatchAdmission tallies the fates of one SubmitBatch call.
type BatchAdmission struct {
	Queued  int
	Marked  int
	Dropped int
	Starved int
}

// Total is the number of packets the batch accounted for.
func (b BatchAdmission) Total() int { return b.Queued + b.Marked + b.Dropped + b.Starved }

// SubmitBatch dispatches a batch of packets with the plane-level arrival
// accounting amortized to one atomic add and the rendezvous choice cached
// across consecutive same-flow packets (flows are bursty: a batch emitted
// by network.FlowGenerator.NextBatch, or any real capture, carries runs
// of one flow). Per-packet semantics are identical to Submit.
func (p *Plane) SubmitBatch(pkts [][]byte) BatchAdmission {
	var out BatchAdmission
	if len(pkts) == 0 {
		return out
	}
	p.cArrived.Add(uint64(len(pkts)))
	lastKey := uint64(0)
	lastCard := -1
	for _, pkt := range pkts {
		if p.closed.Load() || p.lockdown.Load() {
			p.starvedSubmit.Add(1)
			p.cStarved.Inc()
			out.Starved++
			continue
		}
		key := FlowKeyOf(pkt)
		hint := -1
		if lastCard >= 0 && key == lastKey {
			// Same flow as the previous packet: the rendezvous argmax is
			// deterministic in (key, alive set), cards never return to the
			// alive set, and dispatch re-validates the hint — so the cache
			// can never misroute, only save the weight scan.
			hint = lastCard
		}
		adm, id := p.dispatch(key, pkt, hint)
		lastKey, lastCard = key, id
		switch adm {
		case AdmitQueued:
			out.Queued++
		case AdmitMarked:
			out.Marked++
		case AdmitDropped:
			out.Dropped++
		case AdmitStarved:
			out.Starved++
		}
	}
	return out
}

// dispatch runs the re-pick loop: pick a shard (honoring a still-alive
// hint), try to admit, and on refusal — the card failed or the plane
// began closing between the pick and the publish — re-check the plane
// gates and pick again. Refusal moves no counters, so a retried packet is
// counted arrived on exactly one card and the per-card tallies always sum
// to the plane-level arrival count. Returns the admitting card's index
// (-1 when starved).
func (p *Plane) dispatch(key uint64, pkt []byte, hint int) (Admission, int) {
	for {
		// Re-checked every iteration, not just at entry: Close sets each
		// shard's closed flag without clearing its alive bit (only
		// failover does that), so a submission racing Close would
		// otherwise re-pick the same closed-but-alive shard forever.
		if p.closed.Load() || p.lockdown.Load() {
			p.starvedSubmit.Add(1)
			p.cStarved.Inc()
			return AdmitStarved, -1
		}
		id := hint
		hint = -1
		if id < 0 || !p.cards[id].alive.Load() {
			id = p.ShardFor(key)
		}
		if id < 0 {
			p.starvedSubmit.Add(1)
			p.cStarved.Inc()
			return AdmitStarved, -1
		}
		if adm, ok := p.admit(p.cards[id], pkt); ok {
			return adm, id
		}
	}
}

// admit runs one packet through lc's admission control and, on
// acceptance, publishes a pooled copy onto the ingress ring. ok == false
// means the card refused to consider the packet (it failed, or the plane
// is closing) and the caller must re-pick; no accounting moved in that
// case. The outcome of an accepted packet is decided and fully published
// before admit returns, and its arrival is counted before its outcome.
func (p *Plane) admit(lc *lineCard, pkt []byte) (Admission, bool) {
	// Producer registration: the worker sheds a failed or closing card's
	// ring for the last time only once producers reaches zero, so a
	// submitter past this point can never strand a packet on the ring.
	lc.producers.Add(1)
	defer lc.producers.Add(-1)
	if lc.failed.Load() || lc.closed.Load() {
		return 0, false
	}
	lc.arrived.Add(1)
	depth := lc.queue.Len()
	if depth >= int(lc.capacity.Load()) {
		lc.tailDrops.Add(1)
		p.cTailDrops.Inc()
		return AdmitDropped, true
	}
	mark := false
	if depth >= int(lc.markAt.Load()) {
		if lc.backpressure.CompareAndSwap(false, true) {
			lc.ring.Emit(obs.EvBackpressure, 0, uint64(depth))
		}
		switch ecnField(pkt) {
		case 0x1, 0x2: // ECT: carry the congestion signal in-band
			mark = true
		case 0x3:
			// Already CE — the signal is on the wire; admit unmodified.
		default:
			// Not-ECT (or not IPv4): RFC 3168 §5 requires dropping where
			// an ECT packet would be marked. Accounted with the tail
			// drops so conservation stays a single invariant.
			lc.tailDrops.Add(1)
			p.cTailDrops.Inc()
			return AdmitDropped, true
		}
	}
	b := lc.pool.Get()
	b.data = append(b.data[:0], pkt...)
	if mark {
		markCE(b.data)
	}
	if !lc.queue.Enqueue(b) {
		// Physically full: producers raced past the soft depth check (or
		// SetAdmission holds the soft capacity above the built ring). Same
		// fate as the soft check — a counted tail drop.
		lc.pool.Put(b)
		lc.tailDrops.Add(1)
		p.cTailDrops.Inc()
		return AdmitDropped, true
	}
	d := lc.queue.Len()
	for {
		cur := lc.maxDepth.Load()
		if int64(d) <= cur || lc.maxDepth.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	lc.depth.Set(float64(d + int(lc.inflight.Load())))
	if lc.parked.Load() {
		lc.wake()
	}
	if mark {
		lc.marked.Add(1)
		p.cMarked.Inc()
		return AdmitMarked, true
	}
	return AdmitQueued, true
}

// worker drains one shard's ring until the shard fails over or the plane
// closes (a closing worker finishes its backlog — and waits out any
// producer mid-publish — first). It is the ring's single consumer.
func (p *Plane) worker(lc *lineCard) {
	defer p.wg.Done()
	batch := make([][]byte, p.batchSize)
	bufs := make([]*pbuf, p.batchSize)
	for {
		if lc.failed.Load() {
			p.shedAndExit(lc, 0)
			return
		}
		n := 0
		for n < p.batchSize {
			b := lc.queue.Dequeue()
			if b == nil {
				break
			}
			bufs[n] = b
			batch[n] = b.data
			n++
		}
		if n == 0 {
			if lc.closed.Load() {
				if lc.producers.Load() == 0 && lc.queue.Empty() {
					return
				}
				// A submitter is mid-publish; its packet is about to land
				// (or it will abort on the closed flag). Yield, re-drain.
				runtime.Gosched()
				continue
			}
			lc.park()
			continue
		}

		lc.inflight.Store(int64(n))
		// The gauge covers queued + in-flight from the moment of dequeue,
		// so a scrape between dequeue and accounting agrees with
		// Stats().Backlog instead of understating by the batch in flight.
		lc.depth.Set(float64(lc.queue.Len() + n))
		if p.drainHook != nil {
			p.drainHook(lc.id, batch[:n])
		}
		// The congestion-management applications see the residual backlog
		// as their queue depth — the post-drain state of this shard. The
		// release hook recycles the arena buffers at the earliest safe
		// moment: the batch engine's last read of the input slices.
		out, err := lc.np.DrainBatchRelease(batch[:n], lc.queue.Len(), func() {
			for i := 0; i < n; i++ {
				lc.pool.Put(bufs[i])
				bufs[i] = nil
			}
		})

		dead := !lc.np.Healthy() ||
			(err != nil && (errors.Is(err, npu.ErrNoCoreAvailable) || errors.Is(err, npu.ErrNoAppInstalled)))

		lc.batches.Add(1)
		lc.processed.Add(out.Processed)
		lc.forwarded.Add(out.Forwarded)
		lc.appDrops.Add(out.Dropped)
		lc.alarms.Add(out.Alarms)
		lc.faults.Add(out.Faults)
		lc.ecnMarked.Add(out.ECNMarked)
		lc.cycles.Add(out.Cycles)
		if p.record {
			lc.mu.Lock()
			lc.batchCycles = append(lc.batchCycles, out.Cycles)
			lc.mu.Unlock()
		}
		extra := uint64(0)
		if out.Unprocessed > 0 {
			if dead {
				// The batch tail never ran because the NP wedged: shed it
				// with the queue below, conservation intact.
				extra = uint64(out.Unprocessed)
				lc.starved.Add(extra)
				p.cStarved.Add(extra)
			} else {
				// Rejected before execution (oversize) on a healthy NP.
				lc.rejected.Add(uint64(out.Unprocessed))
			}
		}
		lc.inflight.Store(0)
		p.cForwarded.Add(out.Forwarded)
		p.cAppDrops.Add(out.Dropped)
		if dead {
			p.failCard(lc)
			p.shedAndExit(lc, extra)
			return
		}
		if lc.queue.Len() < int(lc.markAt.Load()) {
			lc.backpressure.Store(false)
		}
		lc.depth.Set(float64(lc.queue.Len()))
	}
}

// failCard removes a shard from dispatch. Idempotent: exactly one caller
// wins the CAS and counts the failover (synchronously, so FailShard's
// effect is immediately visible in Stats). The backlog shed happens on
// the worker — the ring's single consumer — in shedAndExit.
func (p *Plane) failCard(lc *lineCard) {
	if !lc.failed.CompareAndSwap(false, true) {
		return
	}
	lc.alive.Store(false)
	p.failovers.Add(1)
	p.cFailovers.Inc()
	lc.wake()
}

// shedAndExit is the worker's last act on a failed (or failed-while-
// closing) card: drain everything left on the ring — the queued backlog
// plus anything a straggling producer publishes — as starved drops, then
// emit the failover event. extra is an already-counted batch tail folded
// into the event's aux value. The producers gate guarantees no packet is
// published after the final sweep: a producer not yet registered when
// producers reads zero is ordered after that read, so it observes the
// failed/closed flag and aborts without touching the ring.
func (p *Plane) shedAndExit(lc *lineCard, extra uint64) {
	shed := uint64(0)
	for {
		for {
			b := lc.queue.Dequeue()
			if b == nil {
				break
			}
			lc.pool.Put(b)
			shed++
		}
		if lc.producers.Load() == 0 && lc.queue.Empty() {
			break
		}
		runtime.Gosched()
	}
	if shed > 0 {
		lc.starved.Add(shed)
		p.cStarved.Add(shed)
	}
	lc.inflight.Store(0)
	lc.depth.Set(0)
	lc.ring.Emit(obs.EvFailover, 0, shed+extra)
}

// SetAdmission retunes one shard's admission thresholds at runtime: queue
// capacity and CE-mark threshold. Packets already queued beyond a reduced
// capacity are not shed — they drain normally; only new arrivals see the
// tighter limits, so packet conservation is untouched. A capacity above
// the ring built at NewPlane is enforced by the ring itself (arrivals at
// a physically full ring tail-drop). This is the lever the threat
// engine's tighten_admission response pulls, and it never stalls
// producers: the thresholds are plain atomics.
func (p *Plane) SetAdmission(shard, capacity, markAt int) error {
	if shard < 0 || shard >= len(p.cards) {
		return fmt.Errorf("shard: no shard %d", shard)
	}
	if capacity < 1 {
		return fmt.Errorf("shard: queue capacity %d must be >= 1", capacity)
	}
	if markAt < 1 || markAt > capacity {
		return fmt.Errorf("shard: mark threshold %d outside [1, %d]", markAt, capacity)
	}
	lc := p.cards[shard]
	lc.capacity.Store(int64(capacity))
	lc.markAt.Store(int64(markAt))
	return nil
}

// Admission reports one shard's current admission thresholds.
func (p *Plane) Admission(shard int) (capacity, markAt int, err error) {
	if shard < 0 || shard >= len(p.cards) {
		return 0, 0, fmt.Errorf("shard: no shard %d", shard)
	}
	lc := p.cards[shard]
	return int(lc.capacity.Load()), int(lc.markAt.Load()), nil
}

// FailShard administratively removes a shard from dispatch, exactly as if
// its NP had wedged: queued packets are shed as starved drops (by the
// shard's worker, asynchronously) and the shard's flows rendezvous-rehash
// onto the survivors. Idempotent; the failover count moves before this
// returns. This is the lever the threat engine's rehash_shard response
// pulls.
func (p *Plane) FailShard(shard int) error {
	if shard < 0 || shard >= len(p.cards) {
		return fmt.Errorf("shard: no shard %d", shard)
	}
	p.failCard(p.cards[shard])
	return nil
}

// Lockdown stops admitting traffic plane-wide: every later Submit is
// accounted as a starved drop while workers drain the existing backlog.
// Queued packets still complete, so conservation holds throughout. This is
// the terminal threat response; ClearLockdown re-opens admission.
func (p *Plane) Lockdown() { p.lockdown.Store(true) }

// ClearLockdown re-opens plane-wide admission after a Lockdown.
func (p *Plane) ClearLockdown() { p.lockdown.Store(false) }

// LockedDown reports whether the plane is refusing all admission.
func (p *Plane) LockedDown() bool { return p.lockdown.Load() }

// Close stops the plane: workers finish their remaining backlog (waiting
// out producers mid-publish), then exit. Submissions racing with Close
// are still accounted (as queued or starved); Submit after Close returns
// AdmitStarved.
func (p *Plane) Close() {
	p.closed.Store(true)
	for _, lc := range p.cards {
		lc.closed.Store(true)
		lc.wake()
	}
	p.wg.Wait()
}

// ShardStats is one line card's accounting.
type ShardStats struct {
	Shard     int
	Failed    bool
	Arrived   uint64 // dispatched to this shard (including tail drops)
	TailDrops uint64
	Marked    uint64 // CE-marked at admission
	Starved   uint64 // shed at failover (queue + unfinished batch tail)
	Processed uint64 // ran on a core
	Forwarded uint64
	AppDrops  uint64 // verdict, alarm and fault drops
	Rejected  uint64 // refused before execution on a healthy NP (oversize)
	Alarms    uint64
	Faults    uint64
	ECNMarked uint64 // forwarded packets leaving with the CE mark
	Cycles    uint64 // simulated core cycles consumed
	Batches   uint64
	MaxDepth  int
	Backlog   int // on the ring + in the worker's unaccounted batch at snapshot time
}

// PlaneStats aggregates the plane.
type PlaneStats struct {
	Shards    []ShardStats
	Arrived   uint64 // total Submit calls
	Forwarded uint64
	AppDrops  uint64
	Rejected  uint64
	TailDrops uint64
	Marked    uint64
	Starved   uint64 // failover sheds + submissions with no healthy shard
	ECNMarked uint64
	Backlog   uint64
	Failovers uint64
}

// Conserved checks packet conservation: every submitted packet is exactly
// one of forwarded, app-dropped, rejected, tail-dropped, starved, or still
// queued. This is the invariant the fault-injection suite pins; a lost or
// double-counted packet surfaces as a nonzero (or wrapped-negative)
// Backlog once the plane quiesces.
func (s PlaneStats) Conserved() bool {
	return s.Arrived == s.Forwarded+s.AppDrops+s.Rejected+s.TailDrops+s.Starved+s.Backlog
}

// Stats snapshots the plane without stopping it. Per shard, the settled
// outcome counters are read first and the arrival counter last: every
// write path counts a packet's arrival before its outcome, so this read
// order bounds the derived backlog (arrived minus settled) below by the
// true in-flight count and above by packets that arrived during the
// snapshot — never negative, and zero at quiescence. Conserved() holds
// for a mid-run snapshot, not just after Close.
func (p *Plane) Stats() PlaneStats {
	var ps PlaneStats
	for _, lc := range p.cards {
		s := ShardStats{
			Shard:     lc.id,
			Failed:    lc.failed.Load(),
			TailDrops: lc.tailDrops.Load(),
			Marked:    lc.marked.Load(),
			Starved:   lc.starved.Load(),
			Processed: lc.processed.Load(),
			Forwarded: lc.forwarded.Load(),
			AppDrops:  lc.appDrops.Load(),
			Rejected:  lc.rejected.Load(),
			Alarms:    lc.alarms.Load(),
			Faults:    lc.faults.Load(),
			ECNMarked: lc.ecnMarked.Load(),
			Cycles:    lc.cycles.Load(),
			Batches:   lc.batches.Load(),
			MaxDepth:  int(lc.maxDepth.Load()),
		}
		s.Arrived = lc.arrived.Load() // last: see the read-order contract above
		settled := s.Forwarded + s.AppDrops + s.Rejected + s.TailDrops + s.Starved
		s.Backlog = int(s.Arrived - settled)
		ps.Shards = append(ps.Shards, s)
		ps.Arrived += s.Arrived
		ps.Forwarded += s.Forwarded
		ps.AppDrops += s.AppDrops
		ps.Rejected += s.Rejected
		ps.TailDrops += s.TailDrops
		ps.Marked += s.Marked
		ps.Starved += s.Starved
		ps.ECNMarked += s.ECNMarked
		ps.Backlog += uint64(s.Backlog)
	}
	ps.Arrived += p.starvedSubmit.Load()
	ps.Starved += p.starvedSubmit.Load()
	ps.Failovers = p.failovers.Load()
	return ps
}

// BatchCycles returns every drained batch's simulated cycle cost across
// all shards (only populated under Config.RecordBatchCycles).
func (p *Plane) BatchCycles() []uint64 {
	var out []uint64
	for _, lc := range p.cards {
		lc.mu.Lock()
		out = append(out, lc.batchCycles...)
		lc.mu.Unlock()
	}
	return out
}
