// Package shard is the multi-NP traffic plane: K independent npu.NP
// instances ("line cards") behind a flow-affinity dispatcher. The paper
// scales a single NP by adding cores; a deployed router scales further by
// adding line cards, and this package supplies the system glue that makes
// a fleet of monitored NPs look like one data plane:
//
//   - flow-affinity dispatch: packets are hashed on their 5-tuple and
//     rendezvous-hashed (highest-random-weight) onto a shard, so all
//     packets of a flow traverse one shard's FIFO queue and one NP —
//     per-flow order is preserved end to end;
//
//   - admission control: each shard has a bounded ingress queue; ECN-
//     capable (ECT) arrivals past the marking threshold are CE-marked
//     (ECN-style backpressure, with the IPv4 header checksum incrementally
//     fixed per RFC 1624), not-ECT arrivals past the threshold are dropped
//     in their place (RFC 3168's mark-or-drop equivalence), and arrivals
//     at a full queue tail-drop — counted, never silently lost;
//
//   - failover: a shard whose NP can no longer take traffic (every core
//     quarantined by the supervisor) is removed from dispatch; its queued
//     packets are shed as starved drops (the QueueSim StarvedDrops
//     convention, preserving packet conservation) and its flows rendezvous-
//     rehash onto the surviving shards. Rendezvous hashing moves only the
//     failed shard's flows; every other flow keeps its shard and its order.
//
// Everything the plane does is observable through internal/obs: shard_*
// counters, per-shard depth gauges, and EvBackpressure/EvFailover ring
// events.
package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"sdmmon/internal/npu"
	"sdmmon/internal/obs"
	"sdmmon/internal/packet"
)

// FlowKeyOf hashes a wire-format packet's 5-tuple (src, dst, proto, and —
// for TCP/UDP — the port pair that starts the L4 payload) with FNV-1a.
// Malformed or short packets hash over whatever bytes exist, so every
// packet gets a stable key and the dispatcher never has to reject traffic
// the NPs are expected to inspect.
func FlowKeyOf(pkt []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	if len(pkt) < 20 {
		for _, b := range pkt {
			h = (h ^ uint64(b)) * prime
		}
		return h
	}
	for _, b := range pkt[12:20] { // src, dst
		h = (h ^ uint64(b)) * prime
	}
	proto := pkt[9]
	h = (h ^ uint64(proto)) * prime
	if proto == packet.ProtoUDP || proto == packet.ProtoTCP {
		ihl := int(pkt[0]&0xF) * 4
		if ihl >= 20 && len(pkt) >= ihl+4 {
			for _, b := range pkt[ihl : ihl+4] { // src port, dst port
				h = (h ^ uint64(b)) * prime
			}
		}
	}
	return h
}

// mix64 is the splitmix64 finalizer — the per-shard weight function of the
// rendezvous hash. It is bijective, so distinct (flow, shard) pairs never
// systematically collide.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Admission is the fate of one submitted packet at the dispatcher.
type Admission int

const (
	// AdmitQueued: accepted onto a shard's ingress queue unmodified.
	AdmitQueued Admission = iota
	// AdmitMarked: accepted, but the queue was past the marking threshold
	// and the packet now carries the CE mark.
	AdmitMarked
	// AdmitDropped: tail-dropped at a full ingress queue, or a not-ECT
	// packet dropped past the marking threshold (RFC 3168: drop where an
	// ECT packet would have been CE-marked).
	AdmitDropped
	// AdmitStarved: no healthy shard remains (or the plane is closed); the
	// packet was counted as a starved drop.
	AdmitStarved
)

func (a Admission) String() string {
	switch a {
	case AdmitQueued:
		return "queued"
	case AdmitMarked:
		return "marked"
	case AdmitDropped:
		return "dropped"
	case AdmitStarved:
		return "starved"
	}
	return fmt.Sprintf("admission(%d)", int(a))
}

// Config describes a plane.
type Config struct {
	// NPs are the line cards, one per shard, already built and installed.
	// The plane owns their traffic from NewPlane until Close: nothing else
	// may call Process/ProcessBatch on them concurrently.
	NPs []*npu.NP
	// QueueCapacity bounds each shard's ingress queue; arrivals beyond it
	// tail-drop.
	QueueCapacity int
	// MarkThreshold is the queue depth at which admission starts CE-marking
	// arrivals; 0 selects QueueCapacity/2. Setting it equal to
	// QueueCapacity disables marking (the depth never reaches it without
	// tail-dropping instead).
	MarkThreshold int
	// BatchSize caps how many packets a shard worker drains per
	// ProcessBatch call; 0 selects 64.
	BatchSize int
	// Obs receives shard_* counters, per-shard depth gauges, and dispatch
	// ring events (ring index = shard index). Give the plane a collector of
	// its own when the NPs also publish per-core rings, or the indexes
	// overlap. Nil disables telemetry.
	Obs *obs.Collector
	// RecordBatchCycles retains every drained batch's simulated cycle cost
	// for latency percentiles. Bench-only: it allocates per batch.
	RecordBatchCycles bool
}

// lineCard is one shard: an NP, its bounded ingress queue, and the worker
// state draining it.
type lineCard struct {
	id    int
	salt  uint64
	np    *npu.NP
	ring  *obs.EventRing
	depth *obs.Gauge
	// alive is the dispatcher's lock-free view; the authoritative failed
	// flag lives under mu. alive is cleared only with mu held, so a
	// dispatcher that re-checks under mu never enqueues to a dead shard.
	alive atomic.Bool

	mu           sync.Mutex
	cond         *sync.Cond
	queue        [][]byte
	failed       bool
	closed       bool
	backpressure bool // marking in effect (edge state for EvBackpressure)
	// Per-card admission thresholds, under mu. Seeded from the plane
	// defaults; runtime response logic (internal/threat) tightens and
	// restores them per shard via SetAdmission.
	capacity int
	markAt   int

	// Stats, under mu. inflight is the size of the batch the worker has
	// dequeued but not yet accounted; Stats folds it into Backlog so the
	// conservation invariant holds at any instant, not just at quiescence.
	arrived, tailDrops, marked, starved      uint64
	processed, forwarded, appDrops, rejected uint64
	alarms, faults, ecnMarked                uint64
	cycles, batches                          uint64
	inflight                                 int
	maxDepth                                 int
	batchCycles                              []uint64
}

// Plane is the sharded traffic plane.
type Plane struct {
	cards     []*lineCard
	capacity  int
	markAt    int
	batchSize int
	record    bool
	wg        sync.WaitGroup
	closed    atomic.Bool
	lockdown  atomic.Bool

	starvedSubmit atomic.Uint64
	failovers     atomic.Uint64

	cArrived, cTailDrops, cMarked *obs.Counter
	cStarved, cFailovers          *obs.Counter
	cForwarded, cAppDrops         *obs.Counter
}

// NewPlane builds the plane and starts one drain worker per shard.
func NewPlane(cfg Config) (*Plane, error) {
	if len(cfg.NPs) == 0 {
		return nil, fmt.Errorf("shard: plane needs at least one NP")
	}
	if cfg.QueueCapacity < 1 {
		return nil, fmt.Errorf("shard: queue capacity %d must be >= 1", cfg.QueueCapacity)
	}
	markAt := cfg.MarkThreshold
	if markAt == 0 {
		markAt = cfg.QueueCapacity / 2
		if markAt < 1 {
			markAt = 1
		}
	}
	if markAt < 1 || markAt > cfg.QueueCapacity {
		return nil, fmt.Errorf("shard: mark threshold %d outside [1, %d]", markAt, cfg.QueueCapacity)
	}
	batch := cfg.BatchSize
	if batch == 0 {
		batch = 64
	}
	if batch < 1 {
		return nil, fmt.Errorf("shard: batch size %d must be >= 1", batch)
	}
	reg := cfg.Obs.Registry()
	p := &Plane{
		capacity:   cfg.QueueCapacity,
		markAt:     markAt,
		batchSize:  batch,
		record:     cfg.RecordBatchCycles,
		cArrived:   reg.Counter("shard_arrived_total"),
		cTailDrops: reg.Counter("shard_tail_drops_total"),
		cMarked:    reg.Counter("shard_marked_total"),
		cStarved:   reg.Counter("shard_starved_drops_total"),
		cFailovers: reg.Counter("shard_failovers_total"),
		cForwarded: reg.Counter("shard_forwarded_total"),
		cAppDrops:  reg.Counter("shard_app_drops_total"),
	}
	for i, np := range cfg.NPs {
		if np == nil {
			return nil, fmt.Errorf("shard: NP %d is nil", i)
		}
		lc := &lineCard{
			id: i,
			// Golden-ratio stride keeps shard salts well separated; mix64
			// in the weight function does the rest.
			salt:  mix64(uint64(i)*0x9E3779B97F4A7C15 + 1),
			np:    np,
			ring:  cfg.Obs.Ring(i),
			depth: reg.Gauge(fmt.Sprintf(`shard_queue_depth{shard="%d"}`, i)),
		}
		lc.capacity = cfg.QueueCapacity
		lc.markAt = markAt
		lc.cond = sync.NewCond(&lc.mu)
		lc.alive.Store(true)
		p.cards = append(p.cards, lc)
	}
	for _, lc := range p.cards {
		p.wg.Add(1)
		go p.worker(lc)
	}
	return p, nil
}

// Shards reports the number of line cards (healthy or not).
func (p *Plane) Shards() int { return len(p.cards) }

// ShardFor reports which shard the dispatcher would pick for a flow key
// right now — the rendezvous argmax over the currently healthy shards, the
// same choice Submit makes. -1 when no shard is healthy.
func (p *Plane) ShardFor(key uint64) int {
	best := -1
	var bestW uint64
	for i, lc := range p.cards {
		if !lc.alive.Load() {
			continue
		}
		w := mix64(key ^ lc.salt)
		if best < 0 || w > bestW {
			best, bestW = i, w
		}
	}
	return best
}

// ecnField reads a wire-format packet's ECN codepoint (RFC 3168: 0 =
// not-ECT, 1 = ECT(1), 2 = ECT(0), 3 = CE), or -1 for anything that is not
// a parseable IPv4 header.
func ecnField(pkt []byte) int {
	if len(pkt) < 20 || pkt[0]>>4 != 4 {
		return -1
	}
	return int(pkt[1] & 0x3)
}

// markCE sets the ECN CE codepoint on a wire-format IPv4 packet and
// incrementally updates the header checksum (RFC 1624: HC' = ~(~HC + ~m +
// m')), so a marked packet stays verifiable. Reports whether the packet
// was modified. Only ECN-capable packets — ECT(0)/ECT(1) — are marked:
// RFC 3168 §5 forbids setting CE on not-ECT traffic (already-CE and
// non-IPv4 packets are also left alone).
func markCE(pkt []byte) bool {
	switch ecnField(pkt) {
	case 0x1, 0x2: // ECT(1)/ECT(0): markable
	default: // not-ECT, already-CE, or not IPv4
		return false
	}
	old := binary.BigEndian.Uint16(pkt[0:2])
	pkt[1] |= 0x3
	m := binary.BigEndian.Uint16(pkt[0:2])
	hc := binary.BigEndian.Uint16(pkt[10:12])
	sum := uint32(^hc) + uint32(^old) + uint32(m)
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	binary.BigEndian.PutUint16(pkt[10:12], ^uint16(sum))
	return true
}

// Submit dispatches one packet. The plane takes ownership of pkt (marking
// mutates it in place; it is later handed to an NP core). Every submission
// is accounted under exactly one Admission outcome, which is what makes
// the plane's conservation invariant checkable.
func (p *Plane) Submit(pkt []byte) Admission {
	p.cArrived.Inc()
	key := FlowKeyOf(pkt)
	for {
		// Re-checked every iteration, not just at entry: Close sets each
		// shard's closed flag without clearing its alive bit (only failover
		// does that), so a submission racing Close would otherwise re-pick
		// the same closed-but-alive shard forever.
		if p.closed.Load() || p.lockdown.Load() {
			p.starvedSubmit.Add(1)
			p.cStarved.Inc()
			return AdmitStarved
		}
		id := p.ShardFor(key)
		if id < 0 {
			p.starvedSubmit.Add(1)
			p.cStarved.Inc()
			return AdmitStarved
		}
		lc := p.cards[id]
		lc.mu.Lock()
		if lc.failed || lc.closed {
			// The shard died (alive already cleared, so the re-pick skips
			// it) or the plane is closing (observing lc.closed under the
			// lock means Close's p.closed store already happened, so the
			// loop-top check accounts this packet as starved).
			lc.mu.Unlock()
			continue
		}
		lc.arrived++
		depth := len(lc.queue)
		if depth >= lc.capacity {
			lc.tailDrops++
			lc.mu.Unlock()
			p.cTailDrops.Inc()
			return AdmitDropped
		}
		adm := AdmitQueued
		if depth >= lc.markAt {
			if !lc.backpressure {
				lc.backpressure = true
				lc.ring.Emit(obs.EvBackpressure, 0, uint64(depth))
			}
			switch ecnField(pkt) {
			case 0x1, 0x2: // ECT: carry the congestion signal in-band
				markCE(pkt)
				lc.marked++
				adm = AdmitMarked
			case 0x3:
				// Already CE — the signal is on the wire; admit unmodified.
			default:
				// Not-ECT (or not IPv4): RFC 3168 §5 requires dropping
				// where an ECT packet would be marked. Accounted with the
				// tail drops so conservation stays a single invariant.
				lc.tailDrops++
				lc.mu.Unlock()
				p.cTailDrops.Inc()
				return AdmitDropped
			}
		}
		lc.queue = append(lc.queue, pkt)
		if len(lc.queue) > lc.maxDepth {
			lc.maxDepth = len(lc.queue)
		}
		lc.depth.Set(float64(len(lc.queue)))
		lc.cond.Signal()
		lc.mu.Unlock()
		if adm == AdmitMarked {
			p.cMarked.Inc()
		}
		return adm
	}
}

// worker drains one shard's queue until the shard fails over or the plane
// closes (a closing worker finishes its backlog first).
func (p *Plane) worker(lc *lineCard) {
	defer p.wg.Done()
	var buf [][]byte
	for {
		lc.mu.Lock()
		for len(lc.queue) == 0 && !lc.closed && !lc.failed {
			lc.cond.Wait()
		}
		if lc.failed || (lc.closed && len(lc.queue) == 0) {
			lc.mu.Unlock()
			return
		}
		n := len(lc.queue)
		if n > p.batchSize {
			n = p.batchSize
		}
		if cap(buf) < n {
			buf = make([][]byte, n)
		}
		batch := buf[:n]
		copy(batch, lc.queue[:n])
		for i := 0; i < n; i++ {
			lc.queue[i] = nil // release for GC; the slice head advances
		}
		lc.queue = lc.queue[n:]
		lc.inflight = n
		backlog := len(lc.queue)
		lc.mu.Unlock()

		// The congestion-management applications see the residual backlog
		// as their queue depth — the post-drain state of this shard.
		out, err := lc.np.DrainBatch(batch, backlog)

		dead := !lc.np.Healthy() ||
			(err != nil && (errors.Is(err, npu.ErrNoCoreAvailable) || errors.Is(err, npu.ErrNoAppInstalled)))

		lc.mu.Lock()
		lc.inflight = 0
		lc.batches++
		lc.processed += out.Processed
		lc.forwarded += out.Forwarded
		lc.appDrops += out.Dropped
		lc.alarms += out.Alarms
		lc.faults += out.Faults
		lc.ecnMarked += out.ECNMarked
		lc.cycles += out.Cycles
		if p.record {
			lc.batchCycles = append(lc.batchCycles, out.Cycles)
		}
		if out.Unprocessed > 0 {
			if dead {
				// The batch tail never ran because the NP wedged: shed it
				// with the queue below, conservation intact.
				lc.starved += uint64(out.Unprocessed)
			} else {
				// Rejected before execution (oversize) on a healthy NP.
				lc.rejected += uint64(out.Unprocessed)
			}
		}
		if dead {
			extra := uint64(0)
			if out.Unprocessed > 0 {
				extra = uint64(out.Unprocessed)
			}
			p.failLocked(lc, extra)
			lc.mu.Unlock()
			p.cForwarded.Add(out.Forwarded)
			p.cAppDrops.Add(out.Dropped)
			return
		}
		if len(lc.queue) < lc.markAt {
			lc.backpressure = false
		}
		lc.depth.Set(float64(len(lc.queue)))
		lc.mu.Unlock()
		p.cForwarded.Add(out.Forwarded)
		p.cAppDrops.Add(out.Dropped)
	}
}

// failLocked removes a shard from dispatch: its queued packets are shed as
// starved drops and its flows re-rendezvous onto the survivors. Called
// with lc.mu held. extra is already-shed work (a batch tail) folded into
// the failover event's aux.
func (p *Plane) failLocked(lc *lineCard, extra uint64) {
	if lc.failed {
		// A concurrent failover (FailShard racing a worker's dead-path
		// during DrainBatch) already shed the queue and emitted the
		// event, but this call's extra — a batch tail already counted on
		// the card's starved tally — still has to reach the plane-wide
		// counter or conservation breaks between Stats and the registry.
		if extra > 0 {
			p.cStarved.Add(extra)
		}
		return
	}
	lc.failed = true
	lc.alive.Store(false)
	shed := uint64(len(lc.queue))
	lc.starved += shed
	for i := range lc.queue {
		lc.queue[i] = nil
	}
	lc.queue = nil
	lc.depth.Set(0)
	lc.cond.Broadcast()
	p.failovers.Add(1)
	p.cFailovers.Inc()
	p.cStarved.Add(shed + extra)
	lc.ring.Emit(obs.EvFailover, 0, shed+extra)
}

// SetAdmission retunes one shard's admission thresholds at runtime: queue
// capacity and CE-mark threshold. Packets already queued beyond a reduced
// capacity are not shed — they drain normally; only new arrivals see the
// tighter limits, so packet conservation is untouched. This is the lever
// the threat engine's tighten_admission response pulls.
func (p *Plane) SetAdmission(shard, capacity, markAt int) error {
	if shard < 0 || shard >= len(p.cards) {
		return fmt.Errorf("shard: no shard %d", shard)
	}
	if capacity < 1 {
		return fmt.Errorf("shard: queue capacity %d must be >= 1", capacity)
	}
	if markAt < 1 || markAt > capacity {
		return fmt.Errorf("shard: mark threshold %d outside [1, %d]", markAt, capacity)
	}
	lc := p.cards[shard]
	lc.mu.Lock()
	lc.capacity = capacity
	lc.markAt = markAt
	lc.mu.Unlock()
	return nil
}

// Admission reports one shard's current admission thresholds.
func (p *Plane) Admission(shard int) (capacity, markAt int, err error) {
	if shard < 0 || shard >= len(p.cards) {
		return 0, 0, fmt.Errorf("shard: no shard %d", shard)
	}
	lc := p.cards[shard]
	lc.mu.Lock()
	capacity, markAt = lc.capacity, lc.markAt
	lc.mu.Unlock()
	return capacity, markAt, nil
}

// FailShard administratively removes a shard from dispatch, exactly as if
// its NP had wedged: queued packets are shed as starved drops and the
// shard's flows rendezvous-rehash onto the survivors. Idempotent. This is
// the lever the threat engine's rehash_shard response pulls.
func (p *Plane) FailShard(shard int) error {
	if shard < 0 || shard >= len(p.cards) {
		return fmt.Errorf("shard: no shard %d", shard)
	}
	lc := p.cards[shard]
	lc.mu.Lock()
	p.failLocked(lc, 0)
	lc.mu.Unlock()
	return nil
}

// Lockdown stops admitting traffic plane-wide: every later Submit is
// accounted as a starved drop while workers drain the existing backlog.
// Queued packets still complete, so conservation holds throughout. This is
// the terminal threat response; ClearLockdown re-opens admission.
func (p *Plane) Lockdown() { p.lockdown.Store(true) }

// ClearLockdown re-opens plane-wide admission after a Lockdown.
func (p *Plane) ClearLockdown() { p.lockdown.Store(false) }

// LockedDown reports whether the plane is refusing all admission.
func (p *Plane) LockedDown() bool { return p.lockdown.Load() }

// Close stops the plane: workers finish their remaining backlog, then
// exit. Submissions racing with Close are still accounted (as queued or
// starved); Submit after Close returns AdmitStarved.
func (p *Plane) Close() {
	p.closed.Store(true)
	for _, lc := range p.cards {
		lc.mu.Lock()
		lc.closed = true
		lc.cond.Broadcast()
		lc.mu.Unlock()
	}
	p.wg.Wait()
}

// ShardStats is one line card's accounting.
type ShardStats struct {
	Shard     int
	Failed    bool
	Arrived   uint64 // dispatched to this shard (including tail drops)
	TailDrops uint64
	Marked    uint64 // CE-marked at admission
	Starved   uint64 // shed at failover (queue + unfinished batch tail)
	Processed uint64 // ran on a core
	Forwarded uint64
	AppDrops  uint64 // verdict, alarm and fault drops
	Rejected  uint64 // refused before execution on a healthy NP (oversize)
	Alarms    uint64
	Faults    uint64
	ECNMarked uint64 // forwarded packets leaving with the CE mark
	Cycles    uint64 // simulated core cycles consumed
	Batches   uint64
	MaxDepth  int
	Backlog   int // queued + in the worker's unaccounted batch at snapshot time
}

// PlaneStats aggregates the plane.
type PlaneStats struct {
	Shards    []ShardStats
	Arrived   uint64 // total Submit calls
	Forwarded uint64
	AppDrops  uint64
	Rejected  uint64
	TailDrops uint64
	Marked    uint64
	Starved   uint64 // failover sheds + submissions with no healthy shard
	ECNMarked uint64
	Backlog   uint64
	Failovers uint64
}

// Conserved checks packet conservation: every submitted packet is exactly
// one of forwarded, app-dropped, rejected, tail-dropped, starved, or still
// queued. This is the invariant the fault-injection suite pins.
func (s PlaneStats) Conserved() bool {
	return s.Arrived == s.Forwarded+s.AppDrops+s.Rejected+s.TailDrops+s.Starved+s.Backlog
}

// Stats snapshots the plane. Each shard is snapshotted under its lock,
// and a batch the worker has dequeued but not yet accounted counts as
// backlog, so Conserved() holds for a mid-run snapshot too — not just at
// quiescence.
func (p *Plane) Stats() PlaneStats {
	var ps PlaneStats
	for _, lc := range p.cards {
		lc.mu.Lock()
		s := ShardStats{
			Shard:     lc.id,
			Failed:    lc.failed,
			Arrived:   lc.arrived,
			TailDrops: lc.tailDrops,
			Marked:    lc.marked,
			Starved:   lc.starved,
			Processed: lc.processed,
			Forwarded: lc.forwarded,
			AppDrops:  lc.appDrops,
			Rejected:  lc.rejected,
			Alarms:    lc.alarms,
			Faults:    lc.faults,
			ECNMarked: lc.ecnMarked,
			Cycles:    lc.cycles,
			Batches:   lc.batches,
			MaxDepth:  lc.maxDepth,
			Backlog:   len(lc.queue) + lc.inflight,
		}
		lc.mu.Unlock()
		ps.Shards = append(ps.Shards, s)
		ps.Arrived += s.Arrived
		ps.Forwarded += s.Forwarded
		ps.AppDrops += s.AppDrops
		ps.Rejected += s.Rejected
		ps.TailDrops += s.TailDrops
		ps.Marked += s.Marked
		ps.Starved += s.Starved
		ps.ECNMarked += s.ECNMarked
		ps.Backlog += uint64(s.Backlog)
	}
	ps.Arrived += p.starvedSubmit.Load()
	ps.Starved += p.starvedSubmit.Load()
	ps.Failovers = p.failovers.Load()
	return ps
}

// BatchCycles returns every drained batch's simulated cycle cost across
// all shards (only populated under Config.RecordBatchCycles).
func (p *Plane) BatchCycles() []uint64 {
	var out []uint64
	for _, lc := range p.cards {
		lc.mu.Lock()
		out = append(out, lc.batchCycles...)
		lc.mu.Unlock()
	}
	return out
}
