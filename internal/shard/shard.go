// Package shard is the multi-NP traffic plane: K independent npu.NP
// instances ("line cards") behind a flow-affinity dispatcher. The paper
// scales a single NP by adding cores; a deployed router scales further by
// adding line cards, and this package supplies the system glue that makes
// a fleet of monitored NPs look like one data plane:
//
//   - flow-affinity dispatch: packets are hashed on their 5-tuple and
//     rendezvous-hashed (highest-random-weight) onto a shard, so all
//     packets of a flow traverse one shard's FIFO queue and one NP —
//     per-flow order is preserved end to end;
//
//   - lock-free ingress: each shard's queue is a bounded MPSC ring of
//     arena-pooled packet buffers (ring.go). Submit copies the caller's
//     bytes into a pooled buffer exactly once and publishes it with two
//     atomic operations; the shard worker is the ring's single consumer
//     and parks on a sync.Cond only when the ring stays empty, so the
//     steady-state path takes no lock and allocates nothing;
//
//   - admission control: ECN-capable (ECT) arrivals past the marking
//     threshold are CE-marked (ECN-style backpressure, with the IPv4
//     header checksum incrementally fixed per RFC 1624), not-ECT arrivals
//     past the threshold are dropped in their place (RFC 3168's
//     mark-or-drop equivalence), and arrivals at a full queue tail-drop —
//     counted, never silently lost;
//
//   - failover: a shard whose NP can no longer take traffic (every core
//     quarantined by the supervisor) is removed from dispatch; its queued
//     packets are shed as starved drops (the QueueSim StarvedDrops
//     convention, preserving packet conservation) and its flows rendezvous-
//     rehash onto the surviving shards. Rendezvous hashing moves only the
//     failed shard's flows; every other flow keeps its shard and its order.
//
//   - tenancy (DESIGN.md §17): with Config.Tenancy set, every shard splits
//     into per-tenant lanes — one ring, arena, admission threshold pair,
//     and counter set per (card, tenant) — and dispatch classifies each
//     packet to a tenant (flow class) before picking a shard, so a
//     tenant's flows only ever land on its own lanes and drain onto its
//     own npu protection domain (npu.DrainBatchDomain). Isolation is
//     structural: tenant A flooding its lane past capacity tail-drops A's
//     packets on A's counters; B's lane, thresholds, and counters never
//     move. A lane whose domain wedges fails over alone (its flows rehash
//     to the tenant's lanes on other cards) without touching the card's
//     other tenants.
//
// Everything the plane does is observable through internal/obs: shard_*
// counters (tenant-labeled when multi-tenant), per-lane depth gauges, and
// EvBackpressure/EvFailover ring events (ring index = shard*tenants +
// tenant). Per-lane statistics are plain atomics folded by Stats(); the
// conservation invariant (Arrived == Forwarded + AppDrops + Rejected +
// TailDrops + Starved + Backlog) holds per tenant — and therefore in
// aggregate — at any instant, because every path counts a packet's arrival
// before its outcome and Stats reads outcomes before arrivals (DESIGN.md
// §16).
package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"sdmmon/internal/npu"
	"sdmmon/internal/obs"
	"sdmmon/internal/packet"
)

// FlowKeyOf hashes a wire-format packet's 5-tuple (src, dst, proto, and —
// for TCP/UDP — the port pair that starts the L4 payload) with FNV-1a.
// Malformed or short packets hash over whatever bytes exist, so every
// packet gets a stable key and the dispatcher never has to reject traffic
// the NPs are expected to inspect.
func FlowKeyOf(pkt []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	if len(pkt) < 20 {
		for _, b := range pkt {
			h = (h ^ uint64(b)) * prime
		}
		return h
	}
	for _, b := range pkt[12:20] { // src, dst
		h = (h ^ uint64(b)) * prime
	}
	proto := pkt[9]
	h = (h ^ uint64(proto)) * prime
	if proto == packet.ProtoUDP || proto == packet.ProtoTCP {
		ihl := int(pkt[0]&0xF) * 4
		if ihl >= 20 && len(pkt) >= ihl+4 {
			for _, b := range pkt[ihl : ihl+4] { // src port, dst port
				h = (h ^ uint64(b)) * prime
			}
		}
	}
	return h
}

// mix64 is the splitmix64 finalizer — the per-shard weight function of the
// rendezvous hash. It is bijective, so distinct (flow, shard) pairs never
// systematically collide.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Admission is the fate of one submitted packet at the dispatcher.
type Admission int

const (
	// AdmitQueued: accepted onto a shard's ingress queue unmodified.
	AdmitQueued Admission = iota
	// AdmitMarked: accepted, but the queue was past the marking threshold
	// and the packet now carries the CE mark.
	AdmitMarked
	// AdmitDropped: tail-dropped at a full ingress queue, or a not-ECT
	// packet dropped past the marking threshold (RFC 3168: drop where an
	// ECT packet would have been CE-marked).
	AdmitDropped
	// AdmitStarved: no healthy shard remains for the packet's tenant (or
	// the plane is closed or locked down, or the classifier refused the
	// packet); the packet was counted as a starved drop.
	AdmitStarved
)

func (a Admission) String() string {
	switch a {
	case AdmitQueued:
		return "queued"
	case AdmitMarked:
		return "marked"
	case AdmitDropped:
		return "dropped"
	case AdmitStarved:
		return "starved"
	}
	return fmt.Sprintf("admission(%d)", int(a))
}

// TenancyConfig partitions the plane among tenants. Each tenant name is an
// npu protection-domain name; every NP in Config.NPs must carry a domain
// of that name (npu.SetDomains), which is what pins a tenant's lane to its
// own cores.
type TenancyConfig struct {
	// Tenants are the protection-domain names, one per tenant, in tenant-
	// index order.
	Tenants []string
	// Classify maps a packet to its tenant index — the flow class the
	// dispatcher schedules slots by. It must be pure and safe for
	// concurrent use. A return outside [0, len(Tenants)) starves the
	// packet (counted, never silently lost, and never admitted to any
	// tenant's lane).
	Classify func(pkt []byte) int
}

// Config describes a plane.
type Config struct {
	// NPs are the line cards, one per shard, already built and installed.
	// The plane owns their traffic from NewPlane until Close: nothing else
	// may call Process/ProcessBatch on them concurrently.
	NPs []*npu.NP
	// QueueCapacity bounds each lane's ingress queue; arrivals beyond it
	// tail-drop. The backing ring is sized to the next power of two, so
	// the physical bound can sit slightly above this soft bound; admission
	// enforces the soft bound and the ring enforces the hard one.
	QueueCapacity int
	// MarkThreshold is the queue depth at which admission starts CE-marking
	// arrivals; 0 selects QueueCapacity/2. Setting it equal to
	// QueueCapacity disables marking (the depth never reaches it without
	// tail-dropping instead).
	MarkThreshold int
	// BatchSize caps how many packets a shard worker drains per
	// ProcessBatch call; 0 selects 64.
	BatchSize int
	// Obs receives shard_* counters (tenant-labeled when multi-tenant),
	// per-lane depth gauges, and dispatch ring events (ring index =
	// shard*tenants + tenant). Give the plane a collector of its own when
	// the NPs also publish per-core rings, or the indexes overlap. Nil
	// disables telemetry.
	Obs *obs.Collector
	// Tenancy, when non-nil with more than one tenant, splits every shard
	// into per-tenant lanes dispatched by Classify. Nil (or one tenant)
	// keeps the historical single-tenant plane: one lane per card, the
	// whole NP as its domain, unlabeled metric names.
	Tenancy *TenancyConfig
	// RecordBatchCycles retains every drained batch's simulated cycle cost
	// for latency percentiles. Bench-only: it allocates per batch.
	RecordBatchCycles bool
}

// tenantLane is one (card, tenant) pair: the tenant's lock-free ingress
// ring on this card, the arena its packet buffers recycle through, its
// admission thresholds, and its full counter set. All statistics are
// atomics — producers and the drain worker never share a lock. Structural
// isolation lives here: nothing another tenant does can move these
// numbers, because no code path touches a lane without first classifying
// the packet (or the management call) to this tenant.
type tenantLane struct {
	tenant int
	domain string
	ring   *obs.EventRing
	depth  *obs.Gauge

	queue *bufRing
	pool  *arena

	// dead marks this lane failed (its domain wedged, or
	// FailTenantShard): the dispatcher skips it, the worker sweeps it.
	// Cleared never — like a card's alive bit, a dead lane stays dead.
	dead atomic.Bool
	// backpressure is the marking edge state for EvBackpressure (set by
	// the first producer past the threshold, cleared by the worker when
	// the queue drains below it).
	backpressure atomic.Bool

	// Per-lane admission thresholds. Seeded from the plane defaults;
	// runtime response logic (internal/threat, per-tenant responders)
	// tightens and restores them via SetAdmission/SetTenantAdmission
	// without stalling producers.
	capacity atomic.Int64
	markAt   atomic.Int64

	// Producer-side tallies. Writers count arrived before the outcome;
	// Stats reads outcomes before arrived, which keeps the derived
	// backlog non-negative and conservation exact at any instant.
	arrived   atomic.Uint64
	tailDrops atomic.Uint64
	marked    atomic.Uint64
	maxDepth  atomic.Int64

	// Worker-side tallies. inflight is the size of the batch the worker
	// has dequeued but not yet handed back to the arena; the depth gauge
	// folds it in so a scrape mid-drain agrees with Stats().Backlog.
	starved   atomic.Uint64
	processed atomic.Uint64
	forwarded atomic.Uint64
	appDrops  atomic.Uint64
	rejected  atomic.Uint64
	alarms    atomic.Uint64
	faults    atomic.Uint64
	ecnMarked atomic.Uint64
	cycles    atomic.Uint64
	inflight  atomic.Int64
}

// lineCard is one shard: an NP, its per-tenant lanes, and the worker state
// draining them. The mutex below exists only as the worker's parking lot
// (and for the bench-only batch-cycle log).
type lineCard struct {
	id    int
	salt  uint64
	np    *npu.NP
	lanes []*tenantLane

	// alive is the dispatcher's view; cleared exactly once by failCard,
	// so a cleared bit means the re-pick loop skips this shard forever.
	alive  atomic.Bool
	failed atomic.Bool
	closed atomic.Bool

	// producers counts submitters inside their publish window (between
	// the failed/closed check and the ring enqueue). The worker sheds a
	// failed or closing card's rings for the last time only once this is
	// zero, so no packet can be published into a ring nobody will drain.
	producers atomic.Int64
	// parked is the Dekker-style handshake with the worker's parking lot:
	// the worker sets it and re-checks the rings; producers publish and
	// then check it. Sequentially consistent atomics guarantee one side
	// sees the other, so a missed wakeup is impossible.
	parked atomic.Bool

	batches atomic.Uint64

	mu          sync.Mutex // parking lot + bench-only batchCycles
	cond        *sync.Cond
	batchCycles []uint64
}

// anyQueued reports whether any lane (dead or not) holds packets.
func (lc *lineCard) anyQueued() bool {
	for _, lane := range lc.lanes {
		if !lane.queue.Empty() {
			return true
		}
	}
	return false
}

// allEmpty reports whether every lane's ring is empty.
func (lc *lineCard) allEmpty() bool { return !lc.anyQueued() }

// allDead reports whether every lane has failed.
func (lc *lineCard) allDead() bool {
	for _, lane := range lc.lanes {
		if !lane.dead.Load() {
			return false
		}
	}
	return true
}

// park blocks the worker until traffic, failure or close. See the parked
// field: the flag is published before the final emptiness re-check, so a
// producer that enqueued concurrently either sees the flag (and wakes us)
// or its packet is seen by the re-check.
func (lc *lineCard) park() {
	lc.parked.Store(true)
	if lc.anyQueued() || lc.closed.Load() || lc.failed.Load() {
		lc.parked.Store(false)
		return
	}
	lc.mu.Lock()
	for lc.parked.Load() && !lc.anyQueued() && !lc.closed.Load() && !lc.failed.Load() {
		lc.cond.Wait()
	}
	lc.parked.Store(false)
	lc.mu.Unlock()
}

// wake unparks the worker. Producers call it only after observing the
// parked flag, so the steady-state submit path pays one atomic load here,
// never a lock.
func (lc *lineCard) wake() {
	lc.mu.Lock()
	lc.parked.Store(false)
	lc.cond.Broadcast()
	lc.mu.Unlock()
}

// Plane is the sharded traffic plane.
type Plane struct {
	cards     []*lineCard
	tenants   []string
	classify  func(pkt []byte) int
	capacity  int
	markAt    int
	batchSize int
	record    bool
	wg        sync.WaitGroup
	closed    atomic.Bool
	lockdown  atomic.Bool
	tlock     []atomic.Bool // per-tenant lockdown

	// drainHook, when non-nil (tests only; set before traffic), runs on a
	// worker between dequeuing a batch and handing it to the NP. pkts is
	// the dequeued batch; the slices are only valid until the hook returns.
	drainHook func(shard int, pkts [][]byte)

	// starvedSubmit counts, per tenant, submissions starved before
	// reaching any card (plane closed, lockdown, tenant lockdown, or no
	// healthy lane); starvedUnclass counts submissions the classifier
	// refused — attributable to no tenant, they enter only the plane
	// aggregate.
	starvedSubmit  []atomic.Uint64
	starvedUnclass atomic.Uint64
	failovers      atomic.Uint64

	cArrived, cTailDrops, cMarked *obs.Counter
	cStarved, cFailovers          *obs.Counter
	cForwarded, cAppDrops         *obs.Counter

	// Per-tenant labeled counters (`shard_arrived_total{tenant="a"}` …),
	// registered only when multi-tenant; entries stay nil (no-op)
	// otherwise, so the single-tenant plane keeps exactly its historical
	// series. The leakage test drives one tenant's traffic and requires
	// every other tenant's labeled series to stay byte-identical.
	tcArrived, tcTailDrops, tcMarked []*obs.Counter
	tcStarved, tcForwarded           []*obs.Counter
	tcAppDrops                       []*obs.Counter
}

// NewPlane builds the plane and starts one drain worker per shard.
func NewPlane(cfg Config) (*Plane, error) {
	if len(cfg.NPs) == 0 {
		return nil, fmt.Errorf("shard: plane needs at least one NP")
	}
	if cfg.QueueCapacity < 1 {
		return nil, fmt.Errorf("shard: queue capacity %d must be >= 1", cfg.QueueCapacity)
	}
	markAt := cfg.MarkThreshold
	if markAt == 0 {
		markAt = cfg.QueueCapacity / 2
		if markAt < 1 {
			markAt = 1
		}
	}
	if markAt < 1 || markAt > cfg.QueueCapacity {
		return nil, fmt.Errorf("shard: mark threshold %d outside [1, %d]", markAt, cfg.QueueCapacity)
	}
	batch := cfg.BatchSize
	if batch == 0 {
		batch = 64
	}
	if batch < 1 {
		return nil, fmt.Errorf("shard: batch size %d must be >= 1", batch)
	}
	tenants := []string{""}
	var classify func([]byte) int
	if cfg.Tenancy != nil && len(cfg.Tenancy.Tenants) > 0 {
		tenants = append([]string(nil), cfg.Tenancy.Tenants...)
		classify = cfg.Tenancy.Classify
		if len(tenants) > 1 && classify == nil {
			return nil, fmt.Errorf("shard: %d tenants need a Classify function", len(tenants))
		}
		seen := map[string]bool{}
		for t, name := range tenants {
			if name == "" {
				return nil, fmt.Errorf("shard: tenant %d has an empty domain name", t)
			}
			if seen[name] {
				return nil, fmt.Errorf("shard: duplicate tenant %q", name)
			}
			seen[name] = true
		}
	}
	numT := len(tenants)
	reg := cfg.Obs.Registry()
	p := &Plane{
		tenants:       tenants,
		classify:      classify,
		capacity:      cfg.QueueCapacity,
		markAt:        markAt,
		batchSize:     batch,
		record:        cfg.RecordBatchCycles,
		tlock:         make([]atomic.Bool, numT),
		starvedSubmit: make([]atomic.Uint64, numT),
		cArrived:      reg.Counter("shard_arrived_total"),
		cTailDrops:    reg.Counter("shard_tail_drops_total"),
		cMarked:       reg.Counter("shard_marked_total"),
		cStarved:      reg.Counter("shard_starved_drops_total"),
		cFailovers:    reg.Counter("shard_failovers_total"),
		cForwarded:    reg.Counter("shard_forwarded_total"),
		cAppDrops:     reg.Counter("shard_app_drops_total"),
		tcArrived:     make([]*obs.Counter, numT),
		tcTailDrops:   make([]*obs.Counter, numT),
		tcMarked:      make([]*obs.Counter, numT),
		tcStarved:     make([]*obs.Counter, numT),
		tcForwarded:   make([]*obs.Counter, numT),
		tcAppDrops:    make([]*obs.Counter, numT),
	}
	if numT > 1 {
		for t, name := range tenants {
			p.tcArrived[t] = reg.Counter(obs.Labeled("shard_arrived_total", "tenant", name))
			p.tcTailDrops[t] = reg.Counter(obs.Labeled("shard_tail_drops_total", "tenant", name))
			p.tcMarked[t] = reg.Counter(obs.Labeled("shard_marked_total", "tenant", name))
			p.tcStarved[t] = reg.Counter(obs.Labeled("shard_starved_drops_total", "tenant", name))
			p.tcForwarded[t] = reg.Counter(obs.Labeled("shard_forwarded_total", "tenant", name))
			p.tcAppDrops[t] = reg.Counter(obs.Labeled("shard_app_drops_total", "tenant", name))
		}
	}
	for i, np := range cfg.NPs {
		if np == nil {
			return nil, fmt.Errorf("shard: NP %d is nil", i)
		}
		if numT > 1 {
			// Every tenant must own a protection domain on every card, or
			// its flows would have nowhere to run when they land there.
			for _, name := range tenants {
				if _, err := np.DomainCores(name); err != nil {
					return nil, fmt.Errorf("shard: NP %d: %w", i, err)
				}
			}
		}
		lc := &lineCard{
			id: i,
			// Golden-ratio stride keeps shard salts well separated; mix64
			// in the weight function does the rest.
			salt: mix64(uint64(i)*0x9E3779B97F4A7C15 + 1),
			np:   np,
		}
		for t, name := range tenants {
			tlabel := ""
			domain := ""
			if numT > 1 {
				tlabel = name
				domain = name
			}
			lane := &tenantLane{
				tenant: t,
				domain: domain,
				ring:   cfg.Obs.Ring(i*numT + t),
				depth: reg.Gauge(obs.Labeled("shard_queue_depth",
					"shard", strconv.Itoa(i), "tenant", tlabel)),
			}
			lane.queue = newBufRing(cfg.QueueCapacity)
			lane.pool = newArena(lane.queue.Cap(), batch)
			lane.capacity.Store(int64(cfg.QueueCapacity))
			lane.markAt.Store(int64(markAt))
			lc.lanes = append(lc.lanes, lane)
		}
		lc.cond = sync.NewCond(&lc.mu)
		lc.alive.Store(true)
		p.cards = append(p.cards, lc)
	}
	for _, lc := range p.cards {
		p.wg.Add(1)
		go p.worker(lc)
	}
	return p, nil
}

// Shards reports the number of line cards (healthy or not).
func (p *Plane) Shards() int { return len(p.cards) }

// Tenants reports the tenant (protection-domain) names in tenant-index
// order; a single-tenant plane reports [""].
func (p *Plane) Tenants() []string { return append([]string(nil), p.tenants...) }

// tenantOf classifies a packet. -1 means the classifier refused it.
func (p *Plane) tenantOf(pkt []byte) int {
	if p.classify == nil || len(p.tenants) == 1 {
		return 0
	}
	t := p.classify(pkt)
	if t < 0 || t >= len(p.tenants) {
		return -1
	}
	return t
}

// ShardFor reports which shard the dispatcher would pick for a flow key of
// tenant 0 right now — the rendezvous argmax over the shards currently
// healthy for that tenant, the same choice Submit makes. -1 when no shard
// is healthy. Multi-tenant callers want ShardForTenant.
func (p *Plane) ShardFor(key uint64) int { return p.ShardForTenant(key, 0) }

// ShardForTenant is ShardFor for one tenant's flows: cards whose lane for
// this tenant has failed are skipped even while the card itself stays
// alive for other tenants.
func (p *Plane) ShardForTenant(key uint64, tenant int) int {
	if tenant < 0 || tenant >= len(p.tenants) {
		return -1
	}
	best := -1
	var bestW uint64
	for i, lc := range p.cards {
		if !lc.alive.Load() || lc.lanes[tenant].dead.Load() {
			continue
		}
		w := mix64(key ^ lc.salt)
		if best < 0 || w > bestW {
			best, bestW = i, w
		}
	}
	return best
}

// ecnField reads a wire-format packet's ECN codepoint (RFC 3168: 0 =
// not-ECT, 1 = ECT(1), 2 = ECT(0), 3 = CE), or -1 for anything that is not
// a parseable IPv4 header.
func ecnField(pkt []byte) int {
	if len(pkt) < 20 || pkt[0]>>4 != 4 {
		return -1
	}
	return int(pkt[1] & 0x3)
}

// markCE sets the ECN CE codepoint on a wire-format IPv4 packet and
// incrementally updates the header checksum (RFC 1624: HC' = ~(~HC + ~m +
// m')), so a marked packet stays verifiable. Reports whether the packet
// was modified. Only ECN-capable packets — ECT(0)/ECT(1) — are marked:
// RFC 3168 §5 forbids setting CE on not-ECT traffic (already-CE and
// non-IPv4 packets are also left alone).
func markCE(pkt []byte) bool {
	switch ecnField(pkt) {
	case 0x1, 0x2: // ECT(1)/ECT(0): markable
	default: // not-ECT, already-CE, or not IPv4
		return false
	}
	old := binary.BigEndian.Uint16(pkt[0:2])
	pkt[1] |= 0x3
	m := binary.BigEndian.Uint16(pkt[0:2])
	hc := binary.BigEndian.Uint16(pkt[10:12])
	sum := uint32(^hc) + uint32(^old) + uint32(m)
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	binary.BigEndian.PutUint16(pkt[10:12], ^uint16(sum))
	return true
}

// starveTenant accounts one pre-card starved submission for a tenant.
func (p *Plane) starveTenant(t int) {
	p.starvedSubmit[t].Add(1)
	p.cStarved.Inc()
	p.tcStarved[t].Inc()
}

// Submit dispatches one packet. The plane copies pkt into a pooled buffer
// at admission (CE-marking mutates the copy, never the caller's bytes),
// so the caller keeps ownership of pkt and may reuse it immediately.
// Every submission is accounted under exactly one Admission outcome —
// and, once classified, under exactly one tenant — which is what makes
// the plane's per-tenant conservation invariant checkable.
func (p *Plane) Submit(pkt []byte) Admission {
	p.cArrived.Inc()
	// Classification comes first: even a submission the closed/lockdown
	// gate starves must be attributed to its tenant, or the per-tenant
	// conservation invariant would not survive a concurrent Close.
	t := p.tenantOf(pkt)
	if t < 0 {
		p.starvedUnclass.Add(1)
		p.cStarved.Inc()
		return AdmitStarved
	}
	p.tcArrived[t].Inc()
	if p.closed.Load() || p.lockdown.Load() || p.tlock[t].Load() {
		p.starveTenant(t)
		return AdmitStarved
	}
	adm, _ := p.dispatch(FlowKeyOf(pkt), t, pkt, -1)
	return adm
}

// BatchAdmission tallies the fates of one SubmitBatch call.
type BatchAdmission struct {
	Queued  int
	Marked  int
	Dropped int
	Starved int
}

// Total is the number of packets the batch accounted for.
func (b BatchAdmission) Total() int { return b.Queued + b.Marked + b.Dropped + b.Starved }

// SubmitBatch dispatches a batch of packets with the plane-level arrival
// accounting amortized to one atomic add and the rendezvous choice cached
// across consecutive same-flow packets (flows are bursty: a batch emitted
// by network.FlowGenerator.NextBatch, or any real capture, carries runs
// of one flow). Per-packet semantics are identical to Submit.
func (p *Plane) SubmitBatch(pkts [][]byte) BatchAdmission {
	var out BatchAdmission
	if len(pkts) == 0 {
		return out
	}
	p.cArrived.Add(uint64(len(pkts)))
	lastKey := uint64(0)
	lastTenant := -1
	lastCard := -1
	for _, pkt := range pkts {
		t := p.tenantOf(pkt)
		if t < 0 {
			p.starvedUnclass.Add(1)
			p.cStarved.Inc()
			out.Starved++
			continue
		}
		p.tcArrived[t].Inc()
		if p.closed.Load() || p.lockdown.Load() || p.tlock[t].Load() {
			p.starveTenant(t)
			out.Starved++
			continue
		}
		key := FlowKeyOf(pkt)
		hint := -1
		if lastCard >= 0 && key == lastKey && t == lastTenant {
			// Same flow as the previous packet: the rendezvous argmax is
			// deterministic in (key, tenant, healthy-lane set), lanes and
			// cards never return to health, and dispatch re-validates the
			// hint against both the card's alive bit and the lane's dead
			// bit — so the cache can never misroute, only save the weight
			// scan.
			hint = lastCard
		}
		adm, id := p.dispatch(key, t, pkt, hint)
		lastKey, lastTenant, lastCard = key, t, id
		switch adm {
		case AdmitQueued:
			out.Queued++
		case AdmitMarked:
			out.Marked++
		case AdmitDropped:
			out.Dropped++
		case AdmitStarved:
			out.Starved++
		}
	}
	return out
}

// dispatch runs the re-pick loop: pick a shard for the tenant's flow
// (honoring a hint whose card is alive and whose lane is not dead), try to
// admit, and on refusal — the card failed, the lane died, or the plane
// began closing between the pick and the publish — re-check the plane
// gates and pick again. Refusal moves no counters, so a retried packet is
// counted arrived on exactly one lane and the per-lane tallies always sum
// to the plane-level arrival count. Returns the admitting card's index
// (-1 when starved).
func (p *Plane) dispatch(key uint64, tenant int, pkt []byte, hint int) (Admission, int) {
	for {
		// Re-checked every iteration, not just at entry: Close sets each
		// shard's closed flag without clearing its alive bit (only
		// failover does that), so a submission racing Close would
		// otherwise re-pick the same closed-but-alive shard forever.
		if p.closed.Load() || p.lockdown.Load() || p.tlock[tenant].Load() {
			p.starveTenant(tenant)
			return AdmitStarved, -1
		}
		id := hint
		hint = -1
		if id < 0 || !p.cards[id].alive.Load() || p.cards[id].lanes[tenant].dead.Load() {
			id = p.ShardForTenant(key, tenant)
		}
		if id < 0 {
			p.starveTenant(tenant)
			return AdmitStarved, -1
		}
		if adm, ok := p.admit(p.cards[id], p.cards[id].lanes[tenant], pkt); ok {
			return adm, id
		}
	}
}

// admit runs one packet through a lane's admission control and, on
// acceptance, publishes a pooled copy onto the lane's ingress ring. ok ==
// false means the lane refused to consider the packet (its card failed,
// the lane died, or the plane is closing) and the caller must re-pick; no
// accounting moved in that case. The outcome of an accepted packet is
// decided and fully published before admit returns, and its arrival is
// counted before its outcome.
func (p *Plane) admit(lc *lineCard, lane *tenantLane, pkt []byte) (Admission, bool) {
	// Producer registration: the worker sheds a failed or closing card's
	// rings for the last time only once producers reaches zero, so a
	// submitter past this point can never strand a packet on a ring.
	lc.producers.Add(1)
	defer lc.producers.Add(-1)
	if lc.failed.Load() || lc.closed.Load() || lane.dead.Load() {
		return 0, false
	}
	lane.arrived.Add(1)
	depth := lane.queue.Len()
	if depth >= int(lane.capacity.Load()) {
		lane.tailDrops.Add(1)
		p.cTailDrops.Inc()
		p.tcTailDrops[lane.tenant].Inc()
		return AdmitDropped, true
	}
	mark := false
	if depth >= int(lane.markAt.Load()) {
		if lane.backpressure.CompareAndSwap(false, true) {
			lane.ring.Emit(obs.EvBackpressure, uint32(lane.tenant), uint64(depth))
		}
		switch ecnField(pkt) {
		case 0x1, 0x2: // ECT: carry the congestion signal in-band
			mark = true
		case 0x3:
			// Already CE — the signal is on the wire; admit unmodified.
		default:
			// Not-ECT (or not IPv4): RFC 3168 §5 requires dropping where
			// an ECT packet would be marked. Accounted with the tail
			// drops so conservation stays a single invariant.
			lane.tailDrops.Add(1)
			p.cTailDrops.Inc()
			p.tcTailDrops[lane.tenant].Inc()
			return AdmitDropped, true
		}
	}
	b := lane.pool.Get()
	b.data = append(b.data[:0], pkt...)
	if mark {
		markCE(b.data)
	}
	if !lane.queue.Enqueue(b) {
		// Physically full: producers raced past the soft depth check.
		// (SetAdmission clamps the soft capacity to the built ring, so
		// this is only ever the publish race, not a standing
		// misconfiguration.) Same fate as the soft check — a counted
		// tail drop.
		lane.pool.Put(b)
		lane.tailDrops.Add(1)
		p.cTailDrops.Inc()
		p.tcTailDrops[lane.tenant].Inc()
		return AdmitDropped, true
	}
	d := lane.queue.Len()
	for {
		cur := lane.maxDepth.Load()
		if int64(d) <= cur || lane.maxDepth.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	lane.depth.Set(float64(d + int(lane.inflight.Load())))
	if lc.parked.Load() {
		lc.wake()
	}
	if mark {
		lane.marked.Add(1)
		p.cMarked.Inc()
		p.tcMarked[lane.tenant].Inc()
		return AdmitMarked, true
	}
	return AdmitQueued, true
}

// sweepLane drains a dead lane's ring as starved drops. Worker-only: the
// worker is every lane ring's single consumer.
func (p *Plane) sweepLane(lane *tenantLane) uint64 {
	shed := uint64(0)
	for {
		b := lane.queue.Dequeue()
		if b == nil {
			break
		}
		lane.pool.Put(b)
		shed++
	}
	if shed > 0 {
		lane.starved.Add(shed)
		p.cStarved.Add(shed)
		p.tcStarved[lane.tenant].Add(shed)
		lane.depth.Set(float64(int(lane.inflight.Load())))
	}
	return shed
}

// killLane marks a lane failed from the worker's side (its domain wedged
// mid-drain) and, on a multi-tenant card whose other lanes live on, sheds
// its backlog and emits the lane-scoped failover event. On a single-tenant
// card the caller's all-dead path takes over (failCard + shedAndExit emit
// the card-level event exactly as the pre-tenancy plane did). extra is an
// already-counted batch tail folded into the event's aux value.
func (p *Plane) killLane(lc *lineCard, lane *tenantLane, extra uint64) {
	if !lane.dead.CompareAndSwap(false, true) {
		return
	}
	if len(lc.lanes) > 1 && !lc.allDead() {
		shed := p.sweepLane(lane)
		lane.depth.Set(0)
		lane.ring.Emit(obs.EvFailover, uint32(lane.tenant), shed+extra)
	}
}

// worker drains one shard's lanes until the shard fails over or the plane
// closes (a closing worker finishes its backlog — and waits out any
// producer mid-publish — first). It is the single consumer of every lane
// ring on its card.
func (p *Plane) worker(lc *lineCard) {
	defer p.wg.Done()
	batch := make([][]byte, p.batchSize)
	bufs := make([]*pbuf, p.batchSize)
	single := len(lc.lanes) == 1
	for {
		if lc.failed.Load() {
			p.shedAndExit(lc, 0)
			return
		}
		drained := false
		var deadExtra uint64
		for _, lane := range lc.lanes {
			if lane.dead.Load() {
				// Stragglers published into a dead lane between sweeps are
				// swept here; the parking check covers the final race.
				p.sweepLane(lane)
				continue
			}
			n := 0
			for n < p.batchSize {
				b := lane.queue.Dequeue()
				if b == nil {
					break
				}
				bufs[n] = b
				batch[n] = b.data
				n++
			}
			if n == 0 {
				continue
			}
			drained = true

			lane.inflight.Store(int64(n))
			// The gauge covers queued + in-flight from the moment of
			// dequeue, so a scrape between dequeue and accounting agrees
			// with Stats().Backlog instead of understating by the batch in
			// flight.
			lane.depth.Set(float64(lane.queue.Len() + n))
			if p.drainHook != nil {
				p.drainHook(lc.id, batch[:n])
			}
			// The congestion-management applications see the residual
			// backlog as their queue depth — the post-drain state of this
			// lane. The release hook recycles the arena buffers at the
			// earliest safe moment: the batch engine's last read of the
			// input slices.
			release := func() {
				for i := 0; i < n; i++ {
					lane.pool.Put(bufs[i])
					bufs[i] = nil
				}
			}
			var out npu.BatchOutcome
			var err error
			if single {
				out, err = lc.np.DrainBatchRelease(batch[:n], lane.queue.Len(), release)
			} else {
				out, err = lc.np.DrainBatchDomainRelease(lane.domain, batch[:n], lane.queue.Len(), release)
			}

			healthy := false
			if single {
				healthy = lc.np.Healthy()
			} else {
				healthy = lc.np.HealthyDomain(lane.domain)
			}
			dead := !healthy ||
				(err != nil && (errors.Is(err, npu.ErrNoCoreAvailable) || errors.Is(err, npu.ErrNoAppInstalled)))

			lc.batches.Add(1)
			lane.processed.Add(out.Processed)
			lane.forwarded.Add(out.Forwarded)
			lane.appDrops.Add(out.Dropped)
			lane.alarms.Add(out.Alarms)
			lane.faults.Add(out.Faults)
			lane.ecnMarked.Add(out.ECNMarked)
			lane.cycles.Add(out.Cycles)
			if p.record {
				lc.mu.Lock()
				lc.batchCycles = append(lc.batchCycles, out.Cycles)
				lc.mu.Unlock()
			}
			extra := uint64(0)
			if out.Unprocessed > 0 {
				if dead {
					// The batch tail never ran because the lane's domain
					// wedged: shed it, conservation intact.
					extra = uint64(out.Unprocessed)
					lane.starved.Add(extra)
					p.cStarved.Add(extra)
					p.tcStarved[lane.tenant].Add(extra)
				} else {
					// Rejected before execution (oversize) on a healthy NP.
					lane.rejected.Add(uint64(out.Unprocessed))
				}
			}
			lane.inflight.Store(0)
			p.cForwarded.Add(out.Forwarded)
			p.cAppDrops.Add(out.Dropped)
			p.tcForwarded[lane.tenant].Add(out.Forwarded)
			p.tcAppDrops[lane.tenant].Add(out.Dropped)
			if dead {
				deadExtra += extra
				p.killLane(lc, lane, extra)
				continue
			}
			if lane.queue.Len() < int(lane.markAt.Load()) {
				lane.backpressure.Store(false)
			}
			lane.depth.Set(float64(lane.queue.Len()))
		}
		if lc.allDead() {
			p.failCard(lc)
			p.shedAndExit(lc, deadExtra)
			return
		}
		if !drained {
			if lc.closed.Load() {
				if lc.producers.Load() == 0 && lc.allEmpty() {
					return
				}
				// A submitter is mid-publish; its packet is about to land
				// (or it will abort on the closed flag). Yield, re-drain.
				runtime.Gosched()
				continue
			}
			lc.park()
		}
	}
}

// failCard removes a shard from dispatch. Idempotent: exactly one caller
// wins the CAS and counts the failover (synchronously, so FailShard's
// effect is immediately visible in Stats). The backlog shed happens on
// the worker — the rings' single consumer — in shedAndExit.
func (p *Plane) failCard(lc *lineCard) {
	if !lc.failed.CompareAndSwap(false, true) {
		return
	}
	lc.alive.Store(false)
	p.failovers.Add(1)
	p.cFailovers.Inc()
	lc.wake()
}

// shedAndExit is the worker's last act on a failed (or failed-while-
// closing) card: drain everything left on every lane's ring — the queued
// backlog plus anything a straggling producer publishes — as starved
// drops, then emit each lane's failover event. extra is an already-counted
// batch tail folded into the event's aux value. The producers gate
// guarantees no packet is published after the final sweep: a producer not
// yet registered when producers reads zero is ordered after that read, so
// it observes the failed/closed flag and aborts without touching any ring.
func (p *Plane) shedAndExit(lc *lineCard, extra uint64) {
	shed := make([]uint64, len(lc.lanes))
	for {
		for li, lane := range lc.lanes {
			for {
				b := lane.queue.Dequeue()
				if b == nil {
					break
				}
				lane.pool.Put(b)
				shed[li]++
			}
		}
		if lc.producers.Load() == 0 && lc.allEmpty() {
			break
		}
		runtime.Gosched()
	}
	for li, lane := range lc.lanes {
		if shed[li] > 0 {
			lane.starved.Add(shed[li])
			p.cStarved.Add(shed[li])
			p.tcStarved[lane.tenant].Add(shed[li])
		}
		lane.inflight.Store(0)
		lane.depth.Set(0)
		lane.ring.Emit(obs.EvFailover, uint32(lane.tenant), shed[li]+extra)
	}
}

// SetAdmission retunes one shard's admission thresholds at runtime — every
// lane of the shard moves together; SetTenantAdmission tunes one lane.
// Packets already queued beyond a reduced capacity are not shed — they
// drain normally; only new arrivals see the tighter limits, so packet
// conservation is untouched. A capacity above the ring built at NewPlane
// is clamped to the ring's physical size (the ring rounds QueueCapacity up
// to a power of two): admission can only enforce up to the built ring, and
// the reported Admission() value must match what is enforced, not what was
// requested. The mark threshold is clamped with it. This is the lever the
// threat engine's tighten_admission response pulls, and it never stalls
// producers: the thresholds are plain atomics.
func (p *Plane) SetAdmission(shard, capacity, markAt int) error {
	if shard < 0 || shard >= len(p.cards) {
		return fmt.Errorf("shard: no shard %d", shard)
	}
	if capacity < 1 {
		return fmt.Errorf("shard: queue capacity %d must be >= 1", capacity)
	}
	if markAt < 1 || markAt > capacity {
		return fmt.Errorf("shard: mark threshold %d outside [1, %d]", markAt, capacity)
	}
	for _, lane := range p.cards[shard].lanes {
		setLaneAdmission(lane, capacity, markAt)
	}
	return nil
}

// SetTenantAdmission retunes one lane's thresholds: the per-tenant
// admission lever a tenant-scoped responder pulls without touching any
// other tenant's lane on the same card. Clamping follows SetAdmission.
func (p *Plane) SetTenantAdmission(shard, tenant, capacity, markAt int) error {
	if shard < 0 || shard >= len(p.cards) {
		return fmt.Errorf("shard: no shard %d", shard)
	}
	if tenant < 0 || tenant >= len(p.tenants) {
		return fmt.Errorf("shard: no tenant %d", tenant)
	}
	if capacity < 1 {
		return fmt.Errorf("shard: queue capacity %d must be >= 1", capacity)
	}
	if markAt < 1 || markAt > capacity {
		return fmt.Errorf("shard: mark threshold %d outside [1, %d]", markAt, capacity)
	}
	setLaneAdmission(p.cards[shard].lanes[tenant], capacity, markAt)
	return nil
}

// setLaneAdmission stores clamped thresholds: the soft capacity never
// exceeds the built ring, so Admission() always reports exactly what the
// lane enforces (the regression pinned by TestSetAdmissionClampsToRing).
func setLaneAdmission(lane *tenantLane, capacity, markAt int) {
	if phys := lane.queue.Cap(); capacity > phys {
		capacity = phys
	}
	if markAt > capacity {
		markAt = capacity
	}
	lane.capacity.Store(int64(capacity))
	lane.markAt.Store(int64(markAt))
}

// Admission reports one shard's current admission thresholds (tenant 0's
// lane; lanes only diverge under SetTenantAdmission — use
// TenantAdmission for the per-lane values).
func (p *Plane) Admission(shard int) (capacity, markAt int, err error) {
	if shard < 0 || shard >= len(p.cards) {
		return 0, 0, fmt.Errorf("shard: no shard %d", shard)
	}
	lane := p.cards[shard].lanes[0]
	return int(lane.capacity.Load()), int(lane.markAt.Load()), nil
}

// TenantAdmission reports one lane's current admission thresholds.
func (p *Plane) TenantAdmission(shard, tenant int) (capacity, markAt int, err error) {
	if shard < 0 || shard >= len(p.cards) {
		return 0, 0, fmt.Errorf("shard: no shard %d", shard)
	}
	if tenant < 0 || tenant >= len(p.tenants) {
		return 0, 0, fmt.Errorf("shard: no tenant %d", tenant)
	}
	lane := p.cards[shard].lanes[tenant]
	return int(lane.capacity.Load()), int(lane.markAt.Load()), nil
}

// FailShard administratively removes a shard from dispatch, exactly as if
// its NP had wedged: queued packets are shed as starved drops (by the
// shard's worker, asynchronously) and the shard's flows rendezvous-rehash
// onto the survivors. Idempotent; the failover count moves before this
// returns. This is the lever the threat engine's rehash_shard response
// pulls.
func (p *Plane) FailShard(shard int) error {
	if shard < 0 || shard >= len(p.cards) {
		return fmt.Errorf("shard: no shard %d", shard)
	}
	p.failCard(p.cards[shard])
	return nil
}

// FailTenantShard removes one tenant's lane on one shard from dispatch:
// the tenant's flows there rendezvous-rehash onto its lanes on the
// surviving cards, the lane's backlog is shed as starved drops (by the
// worker, asynchronously), and every other tenant on the card is
// untouched. Idempotent. This is the per-tenant rehash lever.
func (p *Plane) FailTenantShard(shard, tenant int) error {
	if shard < 0 || shard >= len(p.cards) {
		return fmt.Errorf("shard: no shard %d", shard)
	}
	if tenant < 0 || tenant >= len(p.tenants) {
		return fmt.Errorf("shard: no tenant %d", tenant)
	}
	lc := p.cards[shard]
	lane := lc.lanes[tenant]
	if lane.dead.CompareAndSwap(false, true) {
		lane.ring.Emit(obs.EvFailover, uint32(tenant), 0)
		lc.wake() // the worker sweeps the lane's backlog
	}
	return nil
}

// Lockdown stops admitting traffic plane-wide: every later Submit is
// accounted as a starved drop while workers drain the existing backlog.
// Queued packets still complete, so conservation holds throughout. This is
// the terminal threat response; ClearLockdown re-opens admission.
func (p *Plane) Lockdown() { p.lockdown.Store(true) }

// ClearLockdown re-opens plane-wide admission after a Lockdown.
func (p *Plane) ClearLockdown() { p.lockdown.Store(false) }

// LockedDown reports whether the plane is refusing all admission.
func (p *Plane) LockedDown() bool { return p.lockdown.Load() }

// LockdownTenant stops admitting one tenant's traffic plane-wide — the
// tenant-scoped terminal response. Its queued packets still drain; every
// other tenant admits normally.
func (p *Plane) LockdownTenant(tenant int) error {
	if tenant < 0 || tenant >= len(p.tenants) {
		return fmt.Errorf("shard: no tenant %d", tenant)
	}
	p.tlock[tenant].Store(true)
	return nil
}

// ClearLockdownTenant re-opens one tenant's admission.
func (p *Plane) ClearLockdownTenant(tenant int) error {
	if tenant < 0 || tenant >= len(p.tenants) {
		return fmt.Errorf("shard: no tenant %d", tenant)
	}
	p.tlock[tenant].Store(false)
	return nil
}

// TenantLockedDown reports whether one tenant's admission is closed.
func (p *Plane) TenantLockedDown(tenant int) bool {
	if tenant < 0 || tenant >= len(p.tenants) {
		return false
	}
	return p.tlock[tenant].Load()
}

// Close stops the plane: workers finish their remaining backlog (waiting
// out producers mid-publish), then exit. Submissions racing with Close
// are still accounted (as queued or starved); Submit after Close returns
// AdmitStarved.
func (p *Plane) Close() {
	p.closed.Store(true)
	for _, lc := range p.cards {
		lc.closed.Store(true)
		lc.wake()
	}
	p.wg.Wait()
}

// ShardStats is one line card's accounting (all lanes folded together).
type ShardStats struct {
	Shard     int
	Failed    bool
	Arrived   uint64 // dispatched to this shard (including tail drops)
	TailDrops uint64
	Marked    uint64 // CE-marked at admission
	Starved   uint64 // shed at failover (queue + unfinished batch tail)
	Processed uint64 // ran on a core
	Forwarded uint64
	AppDrops  uint64 // verdict, alarm and fault drops
	Rejected  uint64 // refused before execution on a healthy NP (oversize)
	Alarms    uint64
	Faults    uint64
	ECNMarked uint64 // forwarded packets leaving with the CE mark
	Cycles    uint64 // simulated core cycles consumed
	Batches   uint64
	MaxDepth  int // peak lane depth on this card
	Backlog   int // on the rings + in the worker's unaccounted batch at snapshot time
}

// TenantStats is one tenant's accounting across every card, plus the
// submissions starved before reaching any card. The per-tenant
// conservation invariant is stated on this struct.
type TenantStats struct {
	Tenant    int
	Name      string
	Arrived   uint64
	TailDrops uint64
	Marked    uint64
	Starved   uint64
	Processed uint64
	Forwarded uint64
	AppDrops  uint64
	Rejected  uint64
	Alarms    uint64
	Faults    uint64
	ECNMarked uint64
	Cycles    uint64
	Backlog   uint64
	LanesDead int // failed (card, tenant) lanes
}

// Conserved checks the per-tenant conservation invariant: every packet
// classified to this tenant is exactly one of forwarded, app-dropped,
// rejected, tail-dropped, starved, or still queued — at any instant, not
// just at quiescence.
func (s TenantStats) Conserved() bool {
	return s.Arrived == s.Forwarded+s.AppDrops+s.Rejected+s.TailDrops+s.Starved+s.Backlog
}

// PlaneStats aggregates the plane.
type PlaneStats struct {
	Shards  []ShardStats
	Tenants []TenantStats
	// Arrived counts total Submit calls, including submissions the
	// classifier refused (which belong to no tenant).
	Arrived   uint64
	Forwarded uint64
	AppDrops  uint64
	Rejected  uint64
	TailDrops uint64
	Marked    uint64
	Starved   uint64 // failover sheds + submissions with no healthy shard
	ECNMarked uint64
	Backlog   uint64
	Failovers uint64
}

// Conserved checks packet conservation: every submitted packet is exactly
// one of forwarded, app-dropped, rejected, tail-dropped, starved, or still
// queued. This is the invariant the fault-injection suite pins; a lost or
// double-counted packet surfaces as a nonzero (or wrapped-negative)
// Backlog once the plane quiesces.
func (s PlaneStats) Conserved() bool {
	return s.Arrived == s.Forwarded+s.AppDrops+s.Rejected+s.TailDrops+s.Starved+s.Backlog
}

// Stats snapshots the plane without stopping it. Per lane, the settled
// outcome counters are read first and the arrival counter last: every
// write path counts a packet's arrival before its outcome, so this read
// order bounds the derived backlog (arrived minus settled) below by the
// true in-flight count and above by packets that arrived during the
// snapshot — never negative, and zero at quiescence. Conserved() holds
// for a mid-run snapshot — per tenant and in aggregate — not just after
// Close.
func (p *Plane) Stats() PlaneStats {
	numT := len(p.tenants)
	ps := PlaneStats{Tenants: make([]TenantStats, numT)}
	for t := range ps.Tenants {
		ps.Tenants[t].Tenant = t
		ps.Tenants[t].Name = p.tenants[t]
	}
	for _, lc := range p.cards {
		s := ShardStats{
			Shard:   lc.id,
			Failed:  lc.failed.Load(),
			Batches: lc.batches.Load(),
		}
		for _, lane := range lc.lanes {
			ts := &ps.Tenants[lane.tenant]
			// Outcomes first, arrival last — the read-order contract.
			tailDrops := lane.tailDrops.Load()
			marked := lane.marked.Load()
			starved := lane.starved.Load()
			processed := lane.processed.Load()
			forwarded := lane.forwarded.Load()
			appDrops := lane.appDrops.Load()
			rejected := lane.rejected.Load()
			alarms := lane.alarms.Load()
			faults := lane.faults.Load()
			ecnMarked := lane.ecnMarked.Load()
			cycles := lane.cycles.Load()
			maxDepth := int(lane.maxDepth.Load())
			arrived := lane.arrived.Load() // last: see above
			settled := forwarded + appDrops + rejected + tailDrops + starved
			backlog := arrived - settled

			s.Arrived += arrived
			s.TailDrops += tailDrops
			s.Marked += marked
			s.Starved += starved
			s.Processed += processed
			s.Forwarded += forwarded
			s.AppDrops += appDrops
			s.Rejected += rejected
			s.Alarms += alarms
			s.Faults += faults
			s.ECNMarked += ecnMarked
			s.Cycles += cycles
			if maxDepth > s.MaxDepth {
				s.MaxDepth = maxDepth
			}
			s.Backlog += int(backlog)

			ts.Arrived += arrived
			ts.TailDrops += tailDrops
			ts.Marked += marked
			ts.Starved += starved
			ts.Processed += processed
			ts.Forwarded += forwarded
			ts.AppDrops += appDrops
			ts.Rejected += rejected
			ts.Alarms += alarms
			ts.Faults += faults
			ts.ECNMarked += ecnMarked
			ts.Cycles += cycles
			ts.Backlog += backlog
			if lane.dead.Load() {
				ts.LanesDead++
			}
		}
		ps.Shards = append(ps.Shards, s)
		ps.Arrived += s.Arrived
		ps.Forwarded += s.Forwarded
		ps.AppDrops += s.AppDrops
		ps.Rejected += s.Rejected
		ps.TailDrops += s.TailDrops
		ps.Marked += s.Marked
		ps.Starved += s.Starved
		ps.ECNMarked += s.ECNMarked
		ps.Backlog += uint64(s.Backlog)
	}
	for t := range ps.Tenants {
		st := p.starvedSubmit[t].Load()
		ps.Tenants[t].Arrived += st
		ps.Tenants[t].Starved += st
		ps.Arrived += st
		ps.Starved += st
	}
	un := p.starvedUnclass.Load()
	ps.Arrived += un
	ps.Starved += un
	ps.Failovers = p.failovers.Load()
	return ps
}

// TenantStatsFor snapshots one tenant's accounting (the same read-order
// contract as Stats).
func (p *Plane) TenantStatsFor(tenant int) (TenantStats, error) {
	if tenant < 0 || tenant >= len(p.tenants) {
		return TenantStats{}, fmt.Errorf("shard: no tenant %d", tenant)
	}
	return p.Stats().Tenants[tenant], nil
}

// LaneCycles returns the simulated cycles consumed per (shard, tenant)
// lane: out[shard][tenant]. The per-tenant isolation bench derives each
// tenant's virtual-time makespan from its slowest lane, the same way the
// plane bench derives the aggregate from its slowest shard.
func (p *Plane) LaneCycles() [][]uint64 {
	out := make([][]uint64, len(p.cards))
	for i, lc := range p.cards {
		row := make([]uint64, len(lc.lanes))
		for t, lane := range lc.lanes {
			row[t] = lane.cycles.Load()
		}
		out[i] = row
	}
	return out
}

// BatchCycles returns every drained batch's simulated cycle cost across
// all shards (only populated under Config.RecordBatchCycles).
func (p *Plane) BatchCycles() []uint64 {
	var out []uint64
	for _, lc := range p.cards {
		lc.mu.Lock()
		out = append(out, lc.batchCycles...)
		lc.mu.Unlock()
	}
	return out
}
