package shard

import (
	"fmt"
	"runtime"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/core"
	"sdmmon/internal/fault"
	"sdmmon/internal/network"
	"sdmmon/internal/npu"
)

// TestRolloutAgainstLiveLoadedPlane runs a staged, canaried fleet upgrade
// (network.UpgradeFleet) against line cards that are concurrently serving
// a loaded shard plane. This is the operational claim of the live-upgrade
// work pushed to plane scope: the rollout's health sampling batches on
// the same NPs the shard workers are draining (serialized on batchMu),
// the cutover drains in-flight packets at the slot boundary, and
// afterwards (a) every router is live on the new version, (b) the plane's
// packet-conservation invariant holds exactly, and (c) no shard ever
// looked dead — zero failovers, i.e. zero downtime.
func TestRolloutAgainstLiveLoadedPlane(t *testing.T) {
	const routers, cores, packets = 3, 2, 3000

	man, err := core.NewManufacturer("acme", nil)
	if err != nil {
		t.Fatal(err)
	}
	op, err := core.NewOperator("isp", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := man.Certify(op); err != nil {
		t.Fatal(err)
	}
	op.SetAppVersion("ipv4cm", "1.0.0")
	cfg := core.DefaultDeviceConfig()
	cfg.Cores = cores
	cfg.Supervisor = npu.DefaultSupervisorConfig()
	devices := make([]*core.Device, routers)
	nps := make([]*npu.NP, routers)
	for i := range devices {
		dev, err := man.Manufacture(fmt.Sprintf("r%d", i), cfg)
		if err != nil {
			t.Fatal(err)
		}
		wire, err := op.ProgramWire(dev.Public(), apps.IPv4CM())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dev.Install(wire); err != nil {
			t.Fatal(err)
		}
		devices[i] = dev
		nps[i] = dev.NP()
	}

	plane, err := NewPlane(Config{
		NPs:           nps,
		QueueCapacity: 128,
		MarkThreshold: 128, // marking off: this test is about liveness, not ECN
		BatchSize:     32,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := network.NewFlowGenerator(64, 7)
	if err != nil {
		t.Fatal(err)
	}

	// Load the plane first so the rollout starts against warm queues, then
	// keep submitting while it runs.
	for i := 0; i < packets/3; i++ {
		plane.Submit(gen.Next())
	}
	op.SetAppVersion("ipv4cm", "1.1.0")
	link := network.NewLossyLink(network.GigE(), fault.LinkFaults{}, 7)
	var rep *network.RolloutReport
	var repErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		rep, repErr = network.UpgradeFleet(op, devices, apps.IPv4CM(),
			network.RolloutConfig{Link: link, Seed: 7}, nil)
	}()
	for i := packets / 3; i < packets; i++ {
		plane.Submit(gen.Next())
		if i%64 == 0 {
			runtime.Gosched() // interleave with the rollout on a 1-CPU host
		}
	}
	<-done
	plane.Close()

	if repErr != nil {
		t.Fatalf("UpgradeFleet under load: %v", repErr)
	}
	if !rep.Completed || rep.RolledBack {
		t.Fatalf("rollout did not complete cleanly under load: %+v", rep)
	}
	if !rep.Conserved {
		t.Fatalf("device-level conservation broken during loaded rollout: %+v", rep)
	}
	for _, dev := range devices {
		if live, ok := dev.LiveApp(); !ok || live != "ipv4cm@1.1.0" {
			t.Errorf("%s live on %q after rollout, want ipv4cm@1.1.0", dev.ID, live)
		}
	}

	st := plane.Stats()
	if !st.Conserved() {
		t.Fatalf("plane conservation broken: arrived %d != forwarded %d + app-drops %d + rejected %d + tail-drops %d + starved %d + backlog %d",
			st.Arrived, st.Forwarded, st.AppDrops, st.Rejected, st.TailDrops, st.Starved, st.Backlog)
	}
	if st.Arrived != packets {
		t.Fatalf("arrived %d, submitted %d", st.Arrived, packets)
	}
	if st.Forwarded == 0 {
		t.Fatal("plane forwarded nothing during the rollout")
	}
	if st.Failovers != 0 {
		t.Fatalf("zero-downtime upgrade caused %d failover(s)", st.Failovers)
	}
	for _, s := range st.Shards {
		if s.Failed {
			t.Errorf("shard %d marked failed after a clean rollout", s.Shard)
		}
	}
}
