package shard

import (
	"sync"
	"testing"

	"sdmmon/internal/network"
	"sdmmon/internal/npu"
)

// Packet conservation must hold at every mid-run snapshot while the threat
// engine's responses fire against live traffic — tightening admission,
// quarantining cores, failing shards, and locking the plane down all
// reclassify in-flight packets, and none of them may lose or double-count
// one. This is the invariant extension the graded-response engine leans
// on: its Sampler differences Stats() snapshots taken at arbitrary points,
// so a transiently unbalanced snapshot would read as phantom traffic.
func TestPlaneConservationUnderThreatResponses(t *testing.T) {
	nps := []*npu.NP{
		planeNP(t, 2, 61),
		planeNP(t, 2, 62),
		planeNP(t, 2, 63),
	}
	plane, err := NewPlane(Config{
		NPs:           nps,
		QueueCapacity: 32,
		MarkThreshold: 8,
		BatchSize:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := network.NewFlowGenerator(128, 23)
	if err != nil {
		t.Fatal(err)
	}

	const total = 8000
	var wg sync.WaitGroup
	pkts := make(chan []byte, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range pkts {
				plane.Submit(p)
			}
		}()
	}

	// The response script, interleaved with live traffic at fixed points in
	// the arrival stream. Each step mimics one engine action; snapshots
	// between steps must all balance.
	snapshotOK := func(when string) {
		t.Helper()
		if st := plane.Stats(); !st.Conserved() {
			t.Fatalf("conservation violated %s: arrived %d != fwd %d + app %d + rej %d + tail %d + starved %d + backlog %d",
				when, st.Arrived, st.Forwarded, st.AppDrops, st.Rejected,
				st.TailDrops, st.Starved, st.Backlog)
		}
	}

	for i := 0; i < total; i++ {
		switch i {
		case total / 8: // MEDIUM: tighten the hottest shard
			if err := plane.SetAdmission(0, 4, 2); err != nil {
				t.Fatal(err)
			}
			snapshotOK("after tighten")
		case total / 4: // HIGH: isolate a core on shard 1
			if err := nps[1].Quarantine(0); err != nil {
				t.Fatal(err)
			}
			snapshotOK("after quarantine")
		case total / 3: // CRITICAL: rehash shard 2 away, lock the plane down
			if err := plane.FailShard(2); err != nil {
				t.Fatal(err)
			}
			plane.Lockdown()
			snapshotOK("under lockdown")
		case total / 2: // de-escalation: lift lockdown, restore admission
			plane.ClearLockdown()
			if err := plane.SetAdmission(0, 32, 8); err != nil {
				t.Fatal(err)
			}
			snapshotOK("after relax")
		}
		pkts <- gen.Next()
		if i%500 == 0 {
			snapshotOK("mid-traffic")
		}
	}
	close(pkts)
	wg.Wait()
	plane.Close()

	st := plane.Stats()
	if !st.Conserved() {
		t.Fatalf("conservation violated at quiescence: %+v", st)
	}
	if st.Arrived != total {
		t.Errorf("arrived %d, want %d", st.Arrived, total)
	}
	if st.Backlog != 0 {
		t.Errorf("backlog %d after Close", st.Backlog)
	}
	if st.Starved == 0 {
		t.Error("lockdown starved nothing — the drill never actually locked admission")
	}
	// The failed shard must stay failed and the survivors keep forwarding.
	for _, s := range st.Shards {
		if s.Shard == 2 && !s.Failed {
			t.Error("shard 2 should have failed over")
		}
	}
	if st.Forwarded == 0 {
		t.Error("surviving shards forwarded nothing")
	}
}

// SetAdmission and Admission round-trip and validate; a tightened shard
// must actually tail-drop at the new capacity.
func TestPlaneSetAdmission(t *testing.T) {
	nps := []*npu.NP{planeNP(t, 1, 71)}
	plane, err := NewPlane(Config{NPs: nps, QueueCapacity: 16, MarkThreshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Close()

	capacity, markAt, err := plane.Admission(0)
	if err != nil {
		t.Fatal(err)
	}
	if capacity != 16 || markAt != 8 {
		t.Fatalf("Admission(0) = %d/%d, want 16/8", capacity, markAt)
	}
	if err := plane.SetAdmission(0, 4, 2); err != nil {
		t.Fatal(err)
	}
	if capacity, markAt, _ = plane.Admission(0); capacity != 4 || markAt != 2 {
		t.Fatalf("after SetAdmission = %d/%d, want 4/2", capacity, markAt)
	}
	for _, bad := range [][2]int{{0, 1}, {4, 0}, {4, 5}, {-1, -1}} {
		if err := plane.SetAdmission(0, bad[0], bad[1]); err == nil {
			t.Errorf("SetAdmission(0, %d, %d) accepted an unusable threshold", bad[0], bad[1])
		}
	}
	if err := plane.SetAdmission(9, 4, 2); err == nil {
		t.Error("SetAdmission accepted an unknown shard")
	}
	if _, _, err := plane.Admission(9); err == nil {
		t.Error("Admission accepted an unknown shard")
	}
}

// Lockdown must starve every submission while held and release cleanly.
func TestPlaneLockdownStarvesAndReleases(t *testing.T) {
	nps := []*npu.NP{planeNP(t, 1, 81)}
	plane, err := NewPlane(Config{NPs: nps, QueueCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Close()
	gen, err := network.NewFlowGenerator(16, 5)
	if err != nil {
		t.Fatal(err)
	}

	plane.Lockdown()
	if !plane.LockedDown() {
		t.Fatal("LockedDown() false after Lockdown")
	}
	for i := 0; i < 20; i++ {
		if adm := plane.Submit(gen.Next()); adm != AdmitStarved {
			t.Fatalf("submission %d under lockdown admitted as %s", i, adm)
		}
	}
	st := plane.Stats()
	if st.Starved != 20 {
		t.Fatalf("starved = %d under lockdown, want 20", st.Starved)
	}
	if !st.Conserved() {
		t.Fatalf("conservation violated under lockdown: %+v", st)
	}

	plane.ClearLockdown()
	if plane.LockedDown() {
		t.Fatal("LockedDown() true after ClearLockdown")
	}
	if adm := plane.Submit(gen.Next()); adm == AdmitStarved {
		t.Fatal("submission starved after lockdown lifted")
	}
}
