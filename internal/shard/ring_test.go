package shard

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestBufRingShape pins the ring's sizing contract: capacity rounds up to
// the next power of two, the ring accepts exactly Cap() items before
// refusing, and an empty ring dequeues nil.
func TestBufRingShape(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{1, 1}, {2, 2}, {3, 4}, {100, 128}, {4096, 4096}, {4097, 8192},
	} {
		if got := newBufRing(tc.ask).Cap(); got != tc.want {
			t.Errorf("newBufRing(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
	r := newBufRing(8)
	if b := r.Dequeue(); b != nil {
		t.Fatal("empty ring dequeued a buffer")
	}
	if !r.Empty() || r.Len() != 0 {
		t.Fatal("fresh ring not empty")
	}
	for i := 0; i < r.Cap(); i++ {
		if !r.Enqueue(&pbuf{}) {
			t.Fatalf("enqueue %d refused below capacity", i)
		}
	}
	if r.Enqueue(&pbuf{}) {
		t.Fatal("full ring accepted a buffer")
	}
	if r.Len() != r.Cap() {
		t.Fatalf("Len = %d at capacity %d", r.Len(), r.Cap())
	}
	for i := 0; i < r.Cap(); i++ {
		if r.Dequeue() == nil {
			t.Fatalf("dequeue %d returned nil below Len", i)
		}
	}
	if !r.Empty() {
		t.Fatal("drained ring not empty")
	}
}

// TestBufRingMPSCOrderAndConservation drives the ring the way the plane
// does — many producers, one consumer, a ring far smaller than the traffic
// — and pins the two properties per-flow ordering rests on: every enqueued
// item is dequeued exactly once, and each producer's items come out in its
// publish order (one flow = one submitter's sequential publishes). Run
// with -race (make test-shard).
func TestBufRingMPSCOrderAndConservation(t *testing.T) {
	const producers = 8
	const per = 4000
	r := newBufRing(256) // far below producers*per: exercises full-ring retries
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b := &pbuf{data: []byte{byte(p), byte(i >> 8), byte(i)}}
				for !r.Enqueue(b) {
					runtime.Gosched()
				}
			}
		}(p)
	}

	last := make([]int, producers)
	for i := range last {
		last[i] = -1
	}
	deadline := time.Now().Add(30 * time.Second)
	for got := 0; got < producers*per; {
		b := r.Dequeue()
		if b == nil {
			if time.Now().After(deadline) {
				t.Fatalf("ring lost items: consumed %d of %d", got, producers*per)
			}
			runtime.Gosched()
			continue
		}
		p := int(b.data[0])
		seq := int(b.data[1])<<8 | int(b.data[2])
		if seq <= last[p] {
			t.Fatalf("producer %d: item %d dequeued after %d — order broken or duplicate", p, seq, last[p])
		}
		last[p] = seq
		got++
	}
	wg.Wait()
	if !r.Empty() {
		t.Fatal("ring not empty after consuming the full budget — duplicate delivery")
	}
	// Exact count + strictly increasing per producer + this: every item
	// arrived exactly once, in order.
	for p, l := range last {
		if l != per-1 {
			t.Errorf("producer %d: last item %d, want %d", p, l, per-1)
		}
	}
}

// TestArenaRecycles pins the arena's pooling contract: a recycled buffer
// comes back empty but keeps its storage, and releasing into a full
// freelist drops the buffer instead of blocking or panicking.
func TestArenaRecycles(t *testing.T) {
	a := newArena(4, 2)
	b := a.Get()
	b.data = append(b.data[:0], []byte("0123456789")...)
	grown := cap(b.data)
	a.Put(b)
	seen := false
	for i := 0; i < a.free.Cap()+1; i++ { // the freelist is small; b must come back around
		g := a.Get()
		if g == b {
			seen = true
			if len(g.data) != 0 {
				t.Error("recycled buffer not reset to length 0")
			}
			if cap(g.data) != grown {
				t.Error("recycled buffer lost its storage")
			}
			break
		}
	}
	if !seen {
		t.Fatal("released buffer never recycled")
	}
	// Overfill: Put beyond the freelist capacity must not block.
	for i := 0; i < a.free.Cap()+16; i++ {
		a.Put(&pbuf{})
	}
}

// TestRingArenaSteadyStateZeroAllocs is the zero-copy gate at the
// mechanism level: once the arena is warm, a full
// get→copy→enqueue→dequeue→recycle cycle — the plane's per-packet ingress
// path — performs zero heap allocations.
func TestRingArenaSteadyStateZeroAllocs(t *testing.T) {
	r := newBufRing(64)
	a := newArena(64, 8)
	pkt := make([]byte, 300) // bigger than nothing, smaller than arenaBufBytes
	allocs := testing.AllocsPerRun(2000, func() {
		b := a.Get()
		b.data = append(b.data[:0], pkt...)
		if !r.Enqueue(b) {
			t.Fatal("ring full in a balanced cycle")
		}
		got := r.Dequeue()
		if got == nil {
			t.Fatal("ring empty in a balanced cycle")
		}
		a.Put(got)
	})
	if allocs != 0 {
		t.Fatalf("steady-state ingress cycle allocates %.2f per packet, want 0", allocs)
	}
}
