package fpga

import (
	"fmt"

	"sdmmon/internal/netlist"
	"sdmmon/internal/techmap"
)

// NiosControlProcessor models the control-processor subsystem of Figure 5:
// a Nios II/f soft core running µClinux with the peripherals needed for
// download/decryption/verification (Ethernet, DDR2, boot memory, Avalon
// fabric, low-speed peripherals). Paper total (Table 1): 13,477 LUTs,
// 16,899 FFs, 798,976 memory bits.
func NiosControlProcessor() *Component {
	return &Component{
		Name: "Nios II control processor system",
		Sub: []*Component{
			{Name: "Nios II/f core (incl. 4KB I$ + 4KB D$)",
				Own: Resources{3050, 2580, 139264}, Note: "calibrated"},
			{Name: "triple-speed Ethernet MAC + FIFOs",
				Own: Resources{3320, 4260, 294912}, Note: "calibrated"},
			{Name: "DDR2 SDRAM controller + PHY",
				Own: Resources{3610, 5280, 36864}, Note: "calibrated"},
			{Name: "Avalon fabric, bridges, arbitration",
				Own: Resources{1930, 2710, 16384}, Note: "calibrated"},
			{Name: "boot/descriptor on-chip memory",
				Own: Resources{240, 370, 294912}, Note: "calibrated"},
			{Name: "JTAG UART, timers, sysid, PIO",
				Own: Resources{1310, 1690, 16384}, Note: "calibrated"},
		},
	}
}

// MonitorConfig sizes the hardware-monitor block of an NP core.
type MonitorConfig struct {
	// GraphMemBits is the monitor-memory size provisioned for monitoring
	// graphs. The prototype reserves room for several application graphs;
	// a measured graph (monitor.Graph.MemoryBits) of the installed app
	// occupies part of it.
	GraphMemBits int
	// Positions is the number of parallel candidate positions the monitor
	// tracks (the NFA width implemented in hardware).
	Positions int
	// HashWidth is the monitor hash width in bits.
	HashWidth int
}

// DefaultMonitorConfig matches the prototype dimensioning: 2 Mbit of
// monitor memory, 16 parallel positions, 4-bit hashes.
func DefaultMonitorConfig() MonitorConfig {
	return MonitorConfig{GraphMemBits: 2 * 1024 * 1024, Positions: 16, HashWidth: 4}
}

// HashUnitResources technology-maps the Merkle hash datapath and returns
// its resources plus the 32 parameter memory bits (Table 3's Merkle row).
func HashUnitResources() (Resources, error) {
	ckt := netlist.BuildMerkleUnit(netlist.MerkleUnitOptions{Registered: true})
	r, err := techmap.Map(ckt, techmap.Options{K: 4, UseCarryChains: true})
	if err != nil {
		return Resources{}, err
	}
	return Resources{LUTs: r.TotalALUTs(), FFs: r.FFs, MemBits: 32}, nil
}

// BitcountUnitResources technology-maps the baseline bitcount datapath
// (Table 3's first row). The behavioral popcount maps to generic LUTs, as
// in the prototype.
func BitcountUnitResources() (Resources, error) {
	ckt := netlist.BuildBitcountUnit(netlist.BitcountUnitOptions{Registered: true})
	r, err := techmap.Map(ckt, techmap.Options{K: 4})
	if err != nil {
		return Resources{}, err
	}
	return Resources{LUTs: r.TotalALUTs(), FFs: r.FFs, MemBits: 0}, nil
}

// comparatorResources maps the monitor's hash comparator once and scales it
// by the number of parallel positions.
func comparatorResources(width, positions int) (Resources, error) {
	ckt := netlist.BuildComparator(width)
	r, err := techmap.Map(ckt, techmap.Options{K: 4})
	if err != nil {
		return Resources{}, err
	}
	per := Resources{LUTs: r.TotalALUTs(), FFs: r.FFs}
	return per.Scale(positions), nil
}

// NPCoreWithMonitor models one PLASMA network-processor core with its
// reconfigurable hardware monitor and packet path. Paper total (Table 1):
// 41,735 LUTs, 40,590 FFs, 2,883,088 memory bits.
func NPCoreWithMonitor(cfg MonitorConfig) (*Component, error) {
	hash, err := HashUnitResources()
	if err != nil {
		return nil, err
	}
	cmps, err := comparatorResources(cfg.HashWidth, cfg.Positions)
	if err != nil {
		return nil, err
	}
	perPosition := Resources{
		// Candidate position state: current graph index register + next
		// fetch address + valid bit ≈ 2 words of control.
		LUTs: 210, FFs: 64,
	}
	monitor := &Component{
		Name: "reconfigurable hardware monitor",
		Sub: []*Component{
			{Name: fmt.Sprintf("monitor memory (%d Kbit graphs)", cfg.GraphMemBits/1024),
				Own: Resources{0, 0, cfg.GraphMemBits}, Note: "measured graphs fill this"},
			{Name: "parameterizable Merkle hash unit",
				Own: hash, Note: "techmap"},
			{Name: fmt.Sprintf("hash comparators (%d positions)", cfg.Positions),
				Own: cmps, Note: "techmap"},
			{Name: "position tracking + graph walker",
				Own: perPosition.Scale(cfg.Positions), Note: "calibrated"},
			{Name: "graph load/reconfiguration engine",
				Own: Resources{2870, 2410, 32768}, Note: "calibrated"},
			{Name: "alarm/reset and recovery sequencer",
				Own: Resources{540, 410, 0}, Note: "calibrated"},
		},
	}
	core := &Component{
		Name: "NP core with hardware monitor",
		Sub: []*Component{
			{Name: "PLASMA MIPS core (3-stage, mult/div)",
				Own: Resources{2390, 1290, 38912}, Note: "calibrated"},
			{Name: "processor instruction/data memory",
				Own: Resources{180, 120, 524288}, Note: "calibrated"},
			{Name: "packet I/O: 4x GbE MAC + DMA rings",
				Own: Resources{13840, 16960, 180224}, Note: "calibrated"},
			{Name: "packet buffers",
				Own: Resources{420, 310, 0}, Note: "calibrated"},
			{Name: "reconfigurable overlay, binary loader, core control",
				Own: Resources{17900, 17800, 0}, Note: "calibrated"},
			monitor,
		},
	}
	return core, nil
}

// PaperTable1 holds the published Table 1 rows for comparison.
var PaperTable1 = map[string]Resources{
	"Available on FPGA":             {182400, 182400, 14625792},
	"Nios II control processor":     {13477, 16899, 798976},
	"NP core with hardware monitor": {41735, 40590, 2883088},
}

// PaperTable3 holds the published Table 3 rows for comparison.
var PaperTable3 = map[string]Resources{
	"Bitcount hash":    {81, 38, 0},
	"Merkle tree hash": {49, 37, 32},
}
