package fpga

import (
	"fmt"

	"sdmmon/internal/netlist"
	"sdmmon/internal/techmap"
)

// §4.3 claims both hash functions are "fast enough to compute the hash
// within the available cycle time on our system" (100 MHz). This file turns
// that into a checkable artifact: a first-order static timing estimate of
// the mapped hash units on Stratix IV-class delays.

// TimingModel carries the per-element delays (ns) of the target fabric.
// Values are Stratix IV-class estimates: a 4-input ALUT plus local routing
// ≈ 0.8 ns, a carry element ≈ 0.05 ns per bit, register setup+clk→q ≈ 0.6 ns.
type TimingModel struct {
	LUTDelayNS    float64
	CarryPerBitNS float64
	RegOverheadNS float64
}

// StratixIVTiming returns the default delay set.
func StratixIVTiming() TimingModel {
	return TimingModel{LUTDelayNS: 0.8, CarryPerBitNS: 0.05, RegOverheadNS: 0.6}
}

// TimingReport is the Fmax estimate of one mapped unit.
type TimingReport struct {
	Name        string
	LUTLevels   int
	CarryBits   int
	CriticalNS  float64
	FmaxMHz     float64
	MeetsTarget bool // clears the prototype's 100 MHz
}

// EstimateFmax maps the circuit and produces a first-order critical-path
// estimate: LUT levels × LUT delay + carry-chain ripple + register overhead.
func EstimateFmax(ckt *netlist.Circuit, opt techmap.Options, tm TimingModel) (*TimingReport, error) {
	res, err := techmap.Map(ckt, opt)
	if err != nil {
		return nil, err
	}
	crit := float64(res.Depth)*tm.LUTDelayNS +
		float64(res.CarryALUTs)*tm.CarryPerBitNS +
		tm.RegOverheadNS
	fmax := 1000.0 / crit
	return &TimingReport{
		Name:        ckt.Name,
		LUTLevels:   res.Depth,
		CarryBits:   res.CarryALUTs,
		CriticalNS:  crit,
		FmaxMHz:     fmax,
		MeetsTarget: fmax >= 100,
	}, nil
}

// HashUnitTiming reports both Table 3 units against the 100 MHz target.
func HashUnitTiming() ([]*TimingReport, error) {
	tm := StratixIVTiming()
	merkle, err := EstimateFmax(
		netlist.BuildMerkleUnit(netlist.MerkleUnitOptions{Registered: true}),
		techmap.Options{K: 4, UseCarryChains: true}, tm)
	if err != nil {
		return nil, err
	}
	bitcount, err := EstimateFmax(
		netlist.BuildBitcountUnit(netlist.BitcountUnitOptions{Registered: true}),
		techmap.Options{K: 4}, tm)
	if err != nil {
		return nil, err
	}
	return []*TimingReport{merkle, bitcount}, nil
}

func (r *TimingReport) String() string {
	return fmt.Sprintf("%s: %d LUT levels + %d carry bits -> %.2f ns, Fmax %.0f MHz (100 MHz target: %v)",
		r.Name, r.LUTLevels, r.CarryBits, r.CriticalNS, r.FmaxMHz, r.MeetsTarget)
}
