package fpga

import (
	"strings"
	"testing"

	"sdmmon/internal/netlist"
	"sdmmon/internal/techmap"
)

func TestHashUnitTimingMeets100MHz(t *testing.T) {
	reports, err := HashUnitTiming()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("%d reports", len(reports))
	}
	for _, r := range reports {
		t.Log(r)
		if !r.MeetsTarget {
			t.Errorf("%s misses the prototype's 100 MHz: %.0f MHz", r.Name, r.FmaxMHz)
		}
		if r.CriticalNS <= 0 || r.FmaxMHz <= 0 {
			t.Errorf("%s: degenerate timing %+v", r.Name, r)
		}
	}
}

func TestEstimateFmaxScalesWithDepth(t *testing.T) {
	// A deliberately deep circuit must estimate slower than a shallow one.
	shallow := netlist.BuildComparator(4)
	deep := netlist.BuildBitcountUnit(netlist.BitcountUnitOptions{})
	tm := StratixIVTiming()
	rs, err := EstimateFmax(shallow, techmap.Options{K: 4}, tm)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := EstimateFmax(deep, techmap.Options{K: 4}, tm)
	if err != nil {
		t.Fatal(err)
	}
	if rs.FmaxMHz <= rd.FmaxMHz {
		t.Errorf("comparator (%.0f MHz) should be faster than popcount (%.0f MHz)",
			rs.FmaxMHz, rd.FmaxMHz)
	}
	if !strings.Contains(rs.String(), "Fmax") {
		t.Error("report string malformed")
	}
}
