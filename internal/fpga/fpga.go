// Package fpga models the DE4 (Stratix IV EP4SGX230) resource accounting of
// the paper's prototype and regenerates Tables 1 and 3.
//
// Two kinds of numbers feed the model:
//
//   - Genuinely synthesized: the small hash units and comparators are built
//     as gate-level netlists (internal/netlist) and technology-mapped onto
//     LUTs (internal/techmap). Their LUT/FF counts are mapper output, and
//     the monitoring-graph memory is measured from a real extracted graph.
//
//   - Macro-calibrated: the large soft cores (Nios II/f system, PLASMA
//     core, MACs, DDR controller) cannot be re-synthesized from scratch;
//     they are modelled as compositions of sub-blocks whose per-block
//     resource constants are estimates calibrated against published Altera
//     IP figures and the paper's Table 1 totals. EXPERIMENTS.md reports
//     model-vs-paper error per row.
package fpga

import (
	"fmt"
	"strings"
)

// Resources counts the three quantities Table 1 reports.
type Resources struct {
	LUTs    int
	FFs     int
	MemBits int
}

// Add returns the sum of two resource vectors.
func (r Resources) Add(o Resources) Resources {
	return Resources{r.LUTs + o.LUTs, r.FFs + o.FFs, r.MemBits + o.MemBits}
}

// Scale returns the resource vector multiplied by n.
func (r Resources) Scale(n int) Resources {
	return Resources{r.LUTs * n, r.FFs * n, r.MemBits * n}
}

// FitsIn reports whether r fits within capacity c.
func (r Resources) FitsIn(c Resources) bool {
	return r.LUTs <= c.LUTs && r.FFs <= c.FFs && r.MemBits <= c.MemBits
}

func (r Resources) String() string {
	return fmt.Sprintf("%d LUTs, %d FFs, %d memory bits", r.LUTs, r.FFs, r.MemBits)
}

// Component is a node of a hierarchical resource model.
type Component struct {
	Name string
	Own  Resources // resources of this block excluding children
	Sub  []*Component
	Note string // provenance: "techmap", "measured", or "calibrated"
}

// Total returns the component's resources including all children.
func (c *Component) Total() Resources {
	t := c.Own
	for _, s := range c.Sub {
		t = t.Add(s.Total())
	}
	return t
}

// Report renders the component tree with per-node totals.
func (c *Component) Report() string {
	var sb strings.Builder
	var walk func(*Component, int)
	walk = func(n *Component, depth int) {
		t := n.Total()
		fmt.Fprintf(&sb, "%s%-38s %8d %8d %10d", strings.Repeat("  ", depth),
			n.Name, t.LUTs, t.FFs, t.MemBits)
		if n.Note != "" {
			fmt.Fprintf(&sb, "  [%s]", n.Note)
		}
		sb.WriteString("\n")
		for _, s := range n.Sub {
			walk(s, depth+1)
		}
	}
	fmt.Fprintf(&sb, "%-38s %8s %8s %10s\n", "component", "LUTs", "FFs", "mem bits")
	walk(c, 0)
	return sb.String()
}

// DE4Capacity is the usable fabric of the Stratix IV EP4SGX230 on the
// Terasic DE4 board, as reported in Table 1's "Available on FPGA" row.
func DE4Capacity() Resources {
	return Resources{LUTs: 182400, FFs: 182400, MemBits: 14625792}
}
