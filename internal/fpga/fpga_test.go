package fpga

import (
	"strings"
	"testing"
)

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{1, 2, 3}
	b := Resources{10, 20, 30}
	if got := a.Add(b); got != (Resources{11, 22, 33}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Scale(4); got != (Resources{4, 8, 12}) {
		t.Errorf("Scale = %v", got)
	}
	if !a.FitsIn(b) || b.FitsIn(a) {
		t.Error("FitsIn wrong")
	}
	if len(a.String()) == 0 {
		t.Error("empty String")
	}
}

func TestComponentTotals(t *testing.T) {
	c := &Component{
		Name: "top",
		Own:  Resources{1, 1, 1},
		Sub: []*Component{
			{Name: "a", Own: Resources{10, 0, 0}},
			{Name: "b", Own: Resources{0, 10, 0}, Sub: []*Component{
				{Name: "b1", Own: Resources{0, 0, 10}},
			}},
		},
	}
	if got := c.Total(); got != (Resources{11, 11, 11}) {
		t.Errorf("Total = %v", got)
	}
	rep := c.Report()
	for _, want := range []string{"top", "a", "b1", "LUTs"} {
		if !strings.Contains(rep, want) {
			t.Errorf("Report missing %q:\n%s", want, rep)
		}
	}
}

func TestTable1ShapeHolds(t *testing.T) {
	rows, err := Table1(DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if e := r.ErrPct(); e > 12 {
			t.Errorf("%s: model deviates %.1f%% from paper (model %v, paper %v)",
				r.Name, e, r.Model, r.Paper)
		}
	}
	cap, cp, np := rows[0].Model, rows[1].Model, rows[2].Model
	// Shape: everything fits, control processor clearly smaller than the
	// monitored NP core.
	if !cp.Add(np).FitsIn(cap) {
		t.Error("design does not fit the DE4")
	}
	if cp.LUTs >= np.LUTs {
		t.Error("control processor should be smaller than NP core")
	}
}

func TestControlToNPRatioIsAboutOneThird(t *testing.T) {
	// §4.1: "The control processor ... is only about one third the size of
	// a network processor core with hardware monitor."
	r, err := ControlToNPRatio(DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.25 || r > 0.42 {
		t.Errorf("control/NP LUT ratio = %.2f, want ≈1/3", r)
	}
}

func TestTable3ShapeHolds(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	bc, mk := rows[0].Model, rows[1].Model
	t.Logf("bitcount: %v", bc)
	t.Logf("merkle:   %v", mk)
	// The paper's qualitative claims: comparable resources, Merkle needs
	// less logic but 32 memory bits for the parameter, bitcount none.
	if mk.LUTs >= bc.LUTs {
		t.Errorf("Merkle LUTs (%d) should be below bitcount (%d)", mk.LUTs, bc.LUTs)
	}
	if mk.MemBits != 32 {
		t.Errorf("Merkle memory bits = %d, want 32", mk.MemBits)
	}
	if bc.MemBits != 0 {
		t.Errorf("bitcount memory bits = %d, want 0", bc.MemBits)
	}
	if mk.FFs != 37 || bc.FFs != 38 {
		t.Errorf("FFs: merkle %d (paper 37), bitcount %d (paper 38)", mk.FFs, bc.FFs)
	}
	// LUT counts within a reasonable band of the paper's synthesis.
	for _, r := range rows {
		if e := r.ErrPct(); e > 30 {
			t.Errorf("%s deviates %.1f%% from paper", r.Name, e)
		}
	}
}

func TestRenderRows(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	s := RenderRows("Table 3", rows)
	if !strings.Contains(s, "Merkle") || !strings.Contains(s, "paper") {
		t.Errorf("render missing content:\n%s", s)
	}
}

func TestMaxCoresOnDevice(t *testing.T) {
	n, err := MaxCoresOnDevice(DefaultMonitorConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The DE4 fits the prototype's 1 core with plenty of headroom; the
	// model should report at least 2 and a sane upper bound.
	if n < 2 || n > 16 {
		t.Errorf("MaxCoresOnDevice = %d", n)
	}
	// Memory is the binding constraint with 2Mbit graphs per monitor.
	big := DefaultMonitorConfig()
	big.GraphMemBits = 8 * 1024 * 1024
	nBig, err := MaxCoresOnDevice(big)
	if err != nil {
		t.Fatal(err)
	}
	if nBig >= n {
		t.Errorf("larger graphs (%d cores) should fit fewer than default (%d)", nBig, n)
	}
}

func TestHashUnitResources(t *testing.T) {
	r, err := HashUnitResources()
	if err != nil {
		t.Fatal(err)
	}
	if r.LUTs == 0 || r.FFs != 37 || r.MemBits != 32 {
		t.Errorf("hash unit = %v", r)
	}
	b, err := BitcountUnitResources()
	if err != nil {
		t.Fatal(err)
	}
	if b.LUTs == 0 || b.MemBits != 0 {
		t.Errorf("bitcount unit = %v", b)
	}
}

func TestErrPctIgnoresZeroPaperDims(t *testing.T) {
	r := Row{Model: Resources{10, 10, 999}, Paper: Resources{10, 10, 0}}
	if r.ErrPct() != 0 {
		t.Errorf("ErrPct = %f", r.ErrPct())
	}
}
