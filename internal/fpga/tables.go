package fpga

import (
	"fmt"
	"math"
	"strings"
)

// Row is one line of a reproduced table: the modelled/measured resources
// next to the paper's published numbers.
type Row struct {
	Name  string
	Model Resources
	Paper Resources
}

// ErrPct returns the worst-case relative error (in percent) across the
// three resource dimensions, ignoring dimensions where the paper reports 0.
func (r Row) ErrPct() float64 {
	worst := 0.0
	for _, p := range []struct{ m, q int }{
		{r.Model.LUTs, r.Paper.LUTs},
		{r.Model.FFs, r.Paper.FFs},
		{r.Model.MemBits, r.Paper.MemBits},
	} {
		if p.q == 0 {
			continue
		}
		e := math.Abs(float64(p.m-p.q)) / float64(p.q) * 100
		if e > worst {
			worst = e
		}
	}
	return worst
}

// Table1 regenerates "Table 1: Resource use on DE4 FPGA".
func Table1(cfg MonitorConfig) ([]Row, error) {
	np, err := NPCoreWithMonitor(cfg)
	if err != nil {
		return nil, err
	}
	return []Row{
		{"Available on FPGA", DE4Capacity(), PaperTable1["Available on FPGA"]},
		{"Nios II control processor", NiosControlProcessor().Total(), PaperTable1["Nios II control processor"]},
		{"NP core with hardware monitor", np.Total(), PaperTable1["NP core with hardware monitor"]},
	}, nil
}

// Table3 regenerates "Table 3: Implementation cost of hash functions" from
// live technology-mapping runs.
func Table3() ([]Row, error) {
	bc, err := BitcountUnitResources()
	if err != nil {
		return nil, err
	}
	mk, err := HashUnitResources()
	if err != nil {
		return nil, err
	}
	return []Row{
		{"Bitcount hash", bc, PaperTable3["Bitcount hash"]},
		{"Merkle tree hash", mk, PaperTable3["Merkle tree hash"]},
	}, nil
}

// RenderRows formats rows as a fixed-width table with model-vs-paper
// columns.
func RenderRows(title string, rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-34s %28s %28s %7s\n", "", "model (LUT/FF/mem)", "paper (LUT/FF/mem)", "err%")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-34s %8d %8d %10d %8d %8d %10d %6.1f\n",
			r.Name, r.Model.LUTs, r.Model.FFs, r.Model.MemBits,
			r.Paper.LUTs, r.Paper.FFs, r.Paper.MemBits, r.ErrPct())
	}
	return sb.String()
}

// ControlToNPRatio returns the paper's headline size comparison (§4.1): the
// control processor is "only about one third the size" of an NP core with
// monitor. Returned as the LUT ratio of the modelled blocks.
func ControlToNPRatio(cfg MonitorConfig) (float64, error) {
	np, err := NPCoreWithMonitor(cfg)
	if err != nil {
		return 0, err
	}
	cp := NiosControlProcessor().Total()
	return float64(cp.LUTs) / float64(np.Total().LUTs), nil
}

// MaxCoresOnDevice is an extension experiment: how many monitored NP cores
// fit on the DE4 next to one control processor — the multicore scaling
// headroom of the SDMMon architecture (§1 "Dynamics").
func MaxCoresOnDevice(cfg MonitorConfig) (int, error) {
	np, err := NPCoreWithMonitor(cfg)
	if err != nil {
		return 0, err
	}
	budget := DE4Capacity()
	used := NiosControlProcessor().Total()
	per := np.Total()
	n := 0
	for {
		next := used.Add(per)
		if !next.FitsIn(budget) {
			return n, nil
		}
		used = next
		n++
	}
}
