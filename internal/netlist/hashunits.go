package netlist

// This file constructs the two hash units of Table 3 as gate-level
// netlists. Both units are pipelined one stage deep, matching the
// prototype: the instruction word is registered at the input and the hash
// at the output, so the hash of instruction N is available while the core
// retires instruction N+1 — within the available cycle time, as §4.3 notes.
//
// The Merkle unit's 32-bit parameter is *not* built from flip-flops: the
// prototype stores it in a small memory (Table 3 reports it as 32 memory
// bits, 0 extra FFs), which the resource model (internal/fpga) accounts
// separately. For simulation the parameter is exposed as an input bus.

// MerkleUnitOptions configures BuildMerkleUnit.
type MerkleUnitOptions struct {
	// Registered adds the input/output pipeline registers of the real
	// unit. Disable for pure combinational equivalence checking.
	Registered bool
}

// BuildMerkleUnit builds the paper's 15-node Merkle-tree hash datapath
// (4-bit arithmetic-sum compression): buses "instr" (32), "param" (32) in,
// "hash" (4) out.
func BuildMerkleUnit(opt MerkleUnitOptions) *Circuit {
	b := NewBuilder("merkle-hash-unit")
	instr := b.InputBus("instr", 32)
	param := b.InputBus("param", 32)
	valid := b.Input("valid")

	if opt.Registered {
		instr = b.RegisterBus("instr_r", instr)
		valid = b.DFF(valid, "valid_r")
	}

	// Leaf level: 8 nodes, each compressing (param nibble, instr nibble).
	level := make([][]Signal, 8)
	for i := 0; i < 8; i++ {
		pn := param[4*i : 4*i+4]
		dn := instr[4*i : 4*i+4]
		level[i] = b.AddMod(pn, dn)
	}
	// Inner levels: 4, 2, 1 nodes.
	for len(level) > 1 {
		next := make([][]Signal, len(level)/2)
		for i := range next {
			next[i] = b.AddMod(level[2*i], level[2*i+1])
		}
		level = next
	}
	hash := level[0]

	if opt.Registered {
		hash = b.RegisterBus("hash_r", hash)
	}
	b.OutputBus("hash", hash)
	b.Output("hash_valid", valid)
	return b.Build()
}

// BitcountUnitOptions configures BuildBitcountUnit.
type BitcountUnitOptions struct {
	Registered bool
}

// BuildBitcountUnit builds the conventional baseline of Table 3: a
// popcount compressor tree over the 32-bit instruction word, truncated to
// the 4-bit hash. Buses "instr" (32) in, "hash" (4) out.
func BuildBitcountUnit(opt BitcountUnitOptions) *Circuit {
	b := NewBuilder("bitcount-hash-unit")
	instr := b.InputBus("instr", 32)
	valid := b.Input("valid")

	if opt.Registered {
		instr = b.RegisterBus("instr_r", instr)
		valid = b.DFF(valid, "valid_r")
	}

	count := b.Popcount(instr) // 6 bits
	hash := count[:4]

	if opt.Registered {
		hash = b.RegisterBus("hash_r", hash)
		// The prototype's baseline registers one extra count bit before
		// truncation (one flop more than the Merkle unit's 37 — Table 3
		// reports 38).
		_ = b.DFF(count[4], "count_r4")
	}
	b.OutputBus("hash", hash)
	b.Output("hash_valid", valid)
	return b.Build()
}

// BuildComparator builds the monitor's hash comparator: "got" (width) and
// "want" (width) in, "match" out. Used by the monitor-logic resource macro.
func BuildComparator(width int) *Circuit {
	b := NewBuilder("hash-comparator")
	got := b.InputBus("got", width)
	want := b.InputBus("want", width)
	b.Output("match", b.Equal(got, want))
	return b.Build()
}
