package netlist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sdmmon/internal/mhash"
)

func TestBasicGates(t *testing.T) {
	b := NewBuilder("gates")
	a := b.Input("a")
	x := b.Input("x")
	b.Output("and", b.And(a, x))
	b.Output("or", b.Or(a, x))
	b.Output("xor", b.Xor(a, x))
	b.Output("not", b.Not(a))
	b.Output("mux", b.Mux(a, x, b.Const(true)))
	c := b.Build()
	s, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		a, x                   bool
		and, or, xor, not, mux bool
	}{
		{false, false, false, false, false, true, false},
		{false, true, false, true, true, true, true},
		{true, false, false, true, true, false, true},
		{true, true, true, true, false, false, true},
	} {
		s.SetInput(a, tc.a)
		s.SetInput(x, tc.x)
		s.Eval()
		if s.Value(c.Outputs[0]) != tc.and || s.Value(c.Outputs[1]) != tc.or ||
			s.Value(c.Outputs[2]) != tc.xor || s.Value(c.Outputs[3]) != tc.not ||
			s.Value(c.Outputs[4]) != tc.mux {
			t.Errorf("a=%v x=%v: got %v %v %v %v %v", tc.a, tc.x,
				s.Value(c.Outputs[0]), s.Value(c.Outputs[1]), s.Value(c.Outputs[2]),
				s.Value(c.Outputs[3]), s.Value(c.Outputs[4]))
		}
	}
}

func TestAdders(t *testing.T) {
	b := NewBuilder("add")
	a := b.InputBus("a", 8)
	x := b.InputBus("x", 8)
	b.OutputBus("mod", b.AddMod(a, x))
	b.OutputBus("full", b.Add(a, x))
	c := b.Build()
	s, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		av, xv := uint64(rng.Intn(256)), uint64(rng.Intn(256))
		s.SetBus("a", av)
		s.SetBus("x", xv)
		s.Eval()
		mod, _ := s.Bus("mod")
		full, _ := s.Bus("full")
		if mod != (av+xv)&0xFF {
			t.Fatalf("AddMod(%d,%d) = %d", av, xv, mod)
		}
		if full != av+xv {
			t.Fatalf("Add(%d,%d) = %d", av, xv, full)
		}
	}
	if len(c.Adders) == 0 {
		t.Error("adders not tagged for carry chains")
	}
}

func TestAddUneven(t *testing.T) {
	b := NewBuilder("uneven")
	a := b.InputBus("a", 6)
	x := b.InputBus("x", 3)
	b.OutputBus("sum", b.AddUneven(a, x))
	c := b.Build()
	for av := uint64(0); av < 64; av += 7 {
		for xv := uint64(0); xv < 8; xv++ {
			got, err := EvalFunc(c, map[string]uint64{"a": av, "x": xv}, "sum")
			if err != nil {
				t.Fatal(err)
			}
			if got != av+xv {
				t.Fatalf("AddUneven(%d,%d) = %d", av, xv, got)
			}
		}
	}
}

func TestPopcount(t *testing.T) {
	b := NewBuilder("pop")
	in := b.InputBus("in", 32)
	b.OutputBus("count", b.Popcount(in))
	c := b.Build()
	s, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	check := func(v uint32) {
		t.Helper()
		s.SetBus("in", uint64(v))
		s.Eval()
		got, _ := s.Bus("count")
		want := uint64(0)
		for i := 0; i < 32; i++ {
			if v&(1<<uint(i)) != 0 {
				want++
			}
		}
		if got != want {
			t.Fatalf("Popcount(%#x) = %d, want %d", v, got, want)
		}
	}
	check(0)
	check(0xFFFFFFFF)
	check(1)
	check(0x80000000)
	for i := 0; i < 500; i++ {
		check(rng.Uint32())
	}
}

func TestEqualAndMuxBus(t *testing.T) {
	b := NewBuilder("eqmux")
	a := b.InputBus("a", 4)
	x := b.InputBus("x", 4)
	sel := b.Input("sel")
	b.Output("eq", b.Equal(a, x))
	b.OutputBus("mux", b.MuxBus(sel, a, x))
	c := b.Build()
	s, _ := NewSimulator(c)
	for av := uint64(0); av < 16; av++ {
		for xv := uint64(0); xv < 16; xv++ {
			s.SetBus("a", av)
			s.SetBus("x", xv)
			s.SetInput(sel, false)
			s.Eval()
			if s.Value(c.Ports["eq"][0]) != (av == xv) {
				t.Fatalf("Equal(%d,%d) wrong", av, xv)
			}
			if m, _ := s.Bus("mux"); m != av {
				t.Fatalf("MuxBus sel=0 = %d, want %d", m, av)
			}
			s.SetInput(sel, true)
			s.Eval()
			if m, _ := s.Bus("mux"); m != xv {
				t.Fatalf("MuxBus sel=1 = %d, want %d", m, xv)
			}
		}
	}
}

func TestDFFPipeline(t *testing.T) {
	// Two-stage shift register.
	b := NewBuilder("shift")
	d := b.Input("d")
	q1 := b.DFF(d, "q1")
	q2 := b.DFF(q1, "q2")
	b.Output("q", q2)
	c := b.Build()
	s, _ := NewSimulator(c)
	seq := []bool{true, false, true, true, false}
	var got []bool
	for _, v := range seq {
		s.SetInput(d, v)
		s.Step()
		got = append(got, s.Value(q2))
	}
	// After step i, q2 holds the input applied at step i-1 (two flops, and
	// each Step clocks both from the values combinationally visible at the
	// start of the step): [init, d1, d2, d3, d4].
	want := []bool{false, true, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cycle %d: q=%v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
	if c.NumDFFs() != 2 {
		t.Errorf("NumDFFs = %d", c.NumDFFs())
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	b := NewBuilder("cycle")
	a := b.Input("a")
	// Build a gate and then force a self-loop.
	g := b.And(a, a)
	c := b.Build()
	c.Gates[g].In[1] = g
	if _, err := NewSimulator(c); err == nil {
		t.Error("combinational cycle not detected")
	}
}

func TestLUTRom(t *testing.T) {
	rom := make([]uint64, 16)
	for i := range rom {
		rom[i] = uint64((i * 7) & 0xF)
	}
	b := NewBuilder("rom")
	addr := b.InputBus("addr", 4)
	b.OutputBus("data", b.LUTRom(addr, rom, 4))
	c := b.Build()
	for i := uint64(0); i < 16; i++ {
		got, err := EvalFunc(c, map[string]uint64{"addr": i}, "data")
		if err != nil {
			t.Fatal(err)
		}
		if got != rom[i] {
			t.Fatalf("rom[%d] = %d, want %d", i, got, rom[i])
		}
	}
}

func TestBusErrors(t *testing.T) {
	b := NewBuilder("x")
	b.InputBus("a", 2)
	c := b.Build()
	s, _ := NewSimulator(c)
	if err := s.SetBus("nope", 1); err == nil {
		t.Error("unknown input bus accepted")
	}
	if _, err := s.Bus("nope"); err == nil {
		t.Error("unknown output bus accepted")
	}
	if _, err := EvalFunc(c, map[string]uint64{"nope": 0}, "a"); err == nil {
		t.Error("EvalFunc with bad bus accepted")
	}
}

// The central equivalence check: the gate-level Merkle unit computes
// exactly the same function as the software model used by the operator to
// generate monitoring graphs.
func TestMerkleUnitMatchesSoftware(t *testing.T) {
	c := BuildMerkleUnit(MerkleUnitOptions{Registered: false})
	s, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		param, instr := rng.Uint32(), rng.Uint32()
		s.SetBus("param", uint64(param))
		s.SetBus("instr", uint64(instr))
		s.Eval()
		got, _ := s.Bus("hash")
		want := mhash.NewMerkle(param).Hash(instr)
		if uint8(got) != want {
			t.Fatalf("param=%#x instr=%#x: circuit %x, software %x", param, instr, got, want)
		}
	}
}

func TestBitcountUnitMatchesSoftware(t *testing.T) {
	c := BuildBitcountUnit(BitcountUnitOptions{Registered: false})
	s, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	sw := mhash.NewBitcount()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		instr := rng.Uint32()
		s.SetBus("instr", uint64(instr))
		s.Eval()
		got, _ := s.Bus("hash")
		if uint8(got) != sw.Hash(instr) {
			t.Fatalf("instr=%#x: circuit %x, software %x", instr, got, sw.Hash(instr))
		}
	}
}

func TestRegisteredUnitsPipeline(t *testing.T) {
	c := BuildMerkleUnit(MerkleUnitOptions{Registered: true})
	// Table 3 flop accounting: 32 instr + 1 valid + 4 hash = 37.
	if got := c.NumDFFs(); got != 37 {
		t.Errorf("merkle unit FFs = %d, want 37", got)
	}
	cb := BuildBitcountUnit(BitcountUnitOptions{Registered: true})
	if got := cb.NumDFFs(); got != 38 {
		t.Errorf("bitcount unit FFs = %d, want 38", got)
	}
	// The registered Merkle unit still computes the right value after the
	// pipeline fills (instr registered, then hash registered: 2 cycles).
	s, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	param, instr := uint32(0xC0FFEE11), uint32(0x8C8A0004)
	s.SetBus("param", uint64(param))
	s.SetBus("instr", uint64(instr))
	s.Step()
	s.Step()
	got, _ := s.Bus("hash")
	if uint8(got) != mhash.NewMerkle(param).Hash(instr) {
		t.Errorf("pipelined hash = %x, want %x", got, mhash.NewMerkle(param).Hash(instr))
	}
}

func TestComparatorCircuit(t *testing.T) {
	c := BuildComparator(4)
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			got, err := EvalFunc(c, map[string]uint64{"got": a, "want": b}, "match")
			if err != nil {
				t.Fatal(err)
			}
			if (got == 1) != (a == b) {
				t.Fatalf("compare(%d,%d) = %d", a, b, got)
			}
		}
	}
}

// Property test: AddMod is addition mod 256 for random inputs.
func TestQuickAddMod(t *testing.T) {
	b := NewBuilder("q")
	a := b.InputBus("a", 8)
	x := b.InputBus("x", 8)
	b.OutputBus("s", b.AddMod(a, x))
	c := b.Build()
	s, _ := NewSimulator(c)
	f := func(av, xv uint8) bool {
		s.SetBus("a", uint64(av))
		s.SetBus("x", uint64(xv))
		s.Eval()
		got, _ := s.Bus("s")
		return uint8(got) == av+xv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGateCountsAndKindString(t *testing.T) {
	c := BuildMerkleUnit(MerkleUnitOptions{Registered: false})
	if c.NumGates() == 0 {
		t.Error("no gates")
	}
	if c.NumDFFs() != 0 {
		t.Error("combinational unit has DFFs")
	}
	for _, k := range []Kind{KInput, KConst0, KConst1, KNot, KAnd, KOr, KXor, KMux, KDFF} {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind has no name")
	}
}
