package netlist

import (
	"strings"
	"testing"
)

func TestVerilogMerkleUnit(t *testing.T) {
	c := BuildMerkleUnit(MerkleUnitOptions{Registered: true})
	v := c.Verilog()
	for _, want := range []string{
		"module merkle_hash_unit",
		"input wire clk",
		"input wire [31:0] instr",
		"input wire [31:0] param",
		"output wire [3:0] hash",
		"always @(posedge clk)",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing %q", want)
		}
	}
	// Every gate must be declared exactly once.
	if n := strings.Count(v, "module "); n != 1 {
		t.Errorf("%d module headers", n)
	}
	// Structural sanity: assigns for all combinational gates.
	comb := c.NumGates()
	if got := strings.Count(v, "assign n"); got < comb {
		t.Errorf("%d gate assigns for %d gates", got, comb)
	}
	// Registers appear as nonblocking assignments.
	if got := strings.Count(v, "<="); got != c.NumDFFs() {
		t.Errorf("%d nonblocking assigns for %d DFFs", got, c.NumDFFs())
	}
}

func TestVerilogCombinationalUnit(t *testing.T) {
	c := BuildBitcountUnit(BitcountUnitOptions{Registered: false})
	v := c.Verilog()
	if strings.Contains(v, "clk") {
		t.Error("combinational circuit should have no clock")
	}
	if !strings.Contains(v, "output wire [3:0] hash") {
		t.Error("missing hash output")
	}
}

func TestVerilogSingleBitPorts(t *testing.T) {
	b := NewBuilder("tiny")
	x := b.Input("x")
	y := b.Input("y")
	b.Output("f", b.And(x, y))
	v := b.Build().Verilog()
	for _, want := range []string{"input wire x", "input wire y", "output wire f", "assign f = "} {
		if !strings.Contains(v, want) {
			t.Errorf("missing %q in:\n%s", want, v)
		}
	}
}

func TestVerilogMuxAndConsts(t *testing.T) {
	b := NewBuilder("m")
	s := b.Input("s")
	b.Output("o", b.Mux(s, b.Const(false), b.Const(true)))
	v := b.Build().Verilog()
	if !strings.Contains(v, "1'b0") || !strings.Contains(v, "1'b1") || !strings.Contains(v, "?") {
		t.Errorf("mux/const forms missing:\n%s", v)
	}
}

func TestSanitizeIdent(t *testing.T) {
	cases := map[string]string{
		"merkle-hash-unit": "merkle_hash_unit",
		"a b":              "a_b",
		"9lives":           "_9lives",
		"":                 "anon",
		"ok_name2":         "ok_name2",
	}
	for in, want := range cases {
		if got := sanitizeIdent(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSetBusOnSingleInput(t *testing.T) {
	// Input() now registers a 1-bit port; SetBus must drive it.
	c := BuildMerkleUnit(MerkleUnitOptions{Registered: false})
	s, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetBus("valid", 1); err != nil {
		t.Fatal(err)
	}
	s.Eval()
	if v, err := s.Bus("hash_valid"); err != nil || v != 1 {
		t.Errorf("hash_valid = %d, %v", v, err)
	}
}
