// Package netlist provides gate-level boolean networks: construction,
// levelized simulation, and structural metadata used by the technology
// mapper (internal/techmap).
//
// The hash units of Table 3 are built as netlists here, simulated to prove
// bit-exact equivalence with the software models in internal/mhash, and
// mapped onto FPGA LUTs to regenerate the paper's resource numbers.
package netlist

import "fmt"

// Kind identifies a gate's function.
type Kind int

const (
	// KInput is a primary input.
	KInput Kind = iota
	// KConst0 and KConst1 are constant drivers.
	KConst0
	KConst1
	// KNot, KAnd, KOr, KXor are the basic gates (And/Or/Xor are 2-input).
	KNot
	KAnd
	KOr
	KXor
	// KMux selects In[1] when In[0] is 0, In[2] when In[0] is 1.
	KMux
	// KDFF is a D flip-flop: its output is the registered value of In[0].
	KDFF
)

func (k Kind) String() string {
	switch k {
	case KInput:
		return "input"
	case KConst0:
		return "const0"
	case KConst1:
		return "const1"
	case KNot:
		return "not"
	case KAnd:
		return "and"
	case KOr:
		return "or"
	case KXor:
		return "xor"
	case KMux:
		return "mux"
	case KDFF:
		return "dff"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Signal names a gate output; it is an index into Circuit.Gates.
type Signal int

// Gate is one netlist node.
type Gate struct {
	Kind Kind
	In   []Signal
	Name string // optional debug name
}

// FullAdder tags three gates (sum, carry outputs and their logical inputs)
// as one bit of a structural adder. The technology mapper can place tagged
// full adders on the FPGA's dedicated carry chain (arithmetic mode), which
// is how RTL adder trees achieve the paper's LUT counts.
type FullAdder struct {
	A, B, Cin Signal // Cin < 0 means a half adder
	Sum, Cout Signal // Cout < 0 means the carry-out is unused (mod-2^n add)
}

// Circuit is a complete netlist.
type Circuit struct {
	Name    string
	Gates   []Gate
	Inputs  []Signal            // primary inputs in declaration order
	Outputs []Signal            // primary outputs in declaration order
	Ports   map[string][]Signal // named buses (inputs and outputs)
	Adders  []FullAdder         // carry-chain candidates

	portDir map[string]bool // port name -> true when it is an input port
}

// PortIsInput reports whether the named port is an input.
func (c *Circuit) PortIsInput(name string) bool { return c.portDir[name] }

// NumGates returns the number of logic gates (excluding inputs, constants
// and DFFs).
func (c *Circuit) NumGates() int {
	n := 0
	for _, g := range c.Gates {
		switch g.Kind {
		case KNot, KAnd, KOr, KXor, KMux:
			n++
		}
	}
	return n
}

// NumDFFs returns the number of flip-flops.
func (c *Circuit) NumDFFs() int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind == KDFF {
			n++
		}
	}
	return n
}

// Builder incrementally constructs a Circuit.
type Builder struct {
	c Circuit
}

// NewBuilder creates a Builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	b := &Builder{}
	b.c.Name = name
	b.c.Ports = map[string][]Signal{}
	b.c.portDir = map[string]bool{}
	return b
}

func (b *Builder) add(g Gate) Signal {
	b.c.Gates = append(b.c.Gates, g)
	return Signal(len(b.c.Gates) - 1)
}

func (b *Builder) newInput(name string) Signal {
	s := b.add(Gate{Kind: KInput, Name: name})
	b.c.Inputs = append(b.c.Inputs, s)
	return s
}

// Input declares one primary input (also registered as a 1-bit input port).
func (b *Builder) Input(name string) Signal {
	s := b.newInput(name)
	b.c.Ports[name] = []Signal{s}
	b.c.portDir[name] = true
	return s
}

// InputBus declares a bus of n primary inputs, LSB first.
func (b *Builder) InputBus(name string, n int) []Signal {
	out := make([]Signal, n)
	for i := range out {
		out[i] = b.newInput(fmt.Sprintf("%s[%d]", name, i))
	}
	b.c.Ports[name] = out
	b.c.portDir[name] = true
	return out
}

// Const returns a constant driver.
func (b *Builder) Const(v bool) Signal {
	if v {
		return b.add(Gate{Kind: KConst1})
	}
	return b.add(Gate{Kind: KConst0})
}

// Not returns ¬a.
func (b *Builder) Not(a Signal) Signal { return b.add(Gate{Kind: KNot, In: []Signal{a}}) }

// And returns a∧b.
func (b *Builder) And(a, x Signal) Signal { return b.add(Gate{Kind: KAnd, In: []Signal{a, x}}) }

// Or returns a∨b.
func (b *Builder) Or(a, x Signal) Signal { return b.add(Gate{Kind: KOr, In: []Signal{a, x}}) }

// Xor returns a⊕b.
func (b *Builder) Xor(a, x Signal) Signal { return b.add(Gate{Kind: KXor, In: []Signal{a, x}}) }

// Mux returns sel ? hi : lo.
func (b *Builder) Mux(sel, lo, hi Signal) Signal {
	return b.add(Gate{Kind: KMux, In: []Signal{sel, lo, hi}})
}

// DFF registers d and returns the flop's output.
func (b *Builder) DFF(d Signal, name string) Signal {
	return b.add(Gate{Kind: KDFF, In: []Signal{d}, Name: name})
}

// Output designates s as a primary output with the given name.
func (b *Builder) Output(name string, s Signal) {
	b.c.Outputs = append(b.c.Outputs, s)
	b.c.Ports[name] = append(b.c.Ports[name], s)
	b.c.portDir[name] = false
}

// OutputBus designates a bus of outputs, LSB first.
func (b *Builder) OutputBus(name string, ss []Signal) {
	for _, s := range ss {
		b.c.Outputs = append(b.c.Outputs, s)
	}
	b.c.Ports[name] = append([]Signal(nil), ss...)
	b.c.portDir[name] = false
}

// TagAdder records a full/half adder for carry-chain mapping.
func (b *Builder) TagAdder(fa FullAdder) { b.c.Adders = append(b.c.Adders, fa) }

// Build finalizes and returns the circuit.
func (b *Builder) Build() *Circuit { return &b.c }
