package netlist

import "fmt"

// fullAdder emits sum/carry gates for one adder bit and tags them for
// carry-chain mapping. cin may be -1 (half adder).
func (b *Builder) fullAdder(a, x, cin Signal, wantCout bool) (sum, cout Signal) {
	if cin < 0 {
		sum = b.Xor(a, x)
		cout = Signal(-1)
		if wantCout {
			cout = b.And(a, x)
		}
		b.TagAdder(FullAdder{A: a, B: x, Cin: -1, Sum: sum, Cout: cout})
		return sum, cout
	}
	axb := b.Xor(a, x)
	sum = b.Xor(axb, cin)
	cout = Signal(-1)
	if wantCout {
		// majority(a, x, cin) = (a∧x) ∨ (cin∧(a⊕x))
		cout = b.Or(b.And(a, x), b.And(cin, axb))
	}
	b.TagAdder(FullAdder{A: a, B: x, Cin: cin, Sum: sum, Cout: cout})
	return sum, cout
}

// AddMod builds a ripple adder computing (a + x) mod 2^n where n = len(a);
// the final carry-out is dropped. This is one Merkle compression node for
// the arithmetic-sum function.
func (b *Builder) AddMod(a, x []Signal) []Signal {
	if len(a) != len(x) {
		panic(fmt.Sprintf("netlist: AddMod width mismatch %d != %d", len(a), len(x)))
	}
	out := make([]Signal, len(a))
	carry := Signal(-1)
	for i := range a {
		wantCout := i < len(a)-1
		out[i], carry = b.fullAdder(a[i], x[i], carry, wantCout)
	}
	return out
}

// Add builds a full ripple adder with carry-out: returns n+1 signals.
func (b *Builder) Add(a, x []Signal) []Signal {
	if len(a) != len(x) {
		panic(fmt.Sprintf("netlist: Add width mismatch %d != %d", len(a), len(x)))
	}
	out := make([]Signal, len(a)+1)
	carry := Signal(-1)
	for i := range a {
		out[i], carry = b.fullAdder(a[i], x[i], carry, true)
	}
	out[len(a)] = carry
	return out
}

// AddUneven adds buses of different widths (zero-extending the shorter) and
// returns max(len)+1 bits.
func (b *Builder) AddUneven(a, x []Signal) []Signal {
	if len(a) < len(x) {
		a, x = x, a
	}
	zero := b.Const(false)
	xe := make([]Signal, len(a))
	copy(xe, x)
	for i := len(x); i < len(a); i++ {
		xe[i] = zero
	}
	return b.Add(a, xe)
}

// Popcount builds a full-adder compressor tree counting the set bits of
// bits; the result bus has ceil(log2(len+1)) signals. This is the
// "bitcount" baseline hash datapath of Table 3.
func (b *Builder) Popcount(bits []Signal) []Signal {
	if len(bits) == 0 {
		return []Signal{b.Const(false)}
	}
	// Work column-wise: counts[i] is a list of bits of weight 2^i.
	counts := [][]Signal{append([]Signal(nil), bits...)}
	for col := 0; col < len(counts); col++ {
		for len(counts[col]) > 1 {
			c := counts[col]
			var rem []Signal
			for len(c) >= 3 {
				s, co := b.fullAdder(c[0], c[1], c[2], true)
				rem = append(rem, s)
				counts = ensureCol(counts, col+1)
				counts[col+1] = append(counts[col+1], co)
				c = c[3:]
			}
			if len(c) == 2 {
				s, co := b.fullAdder(c[0], c[1], -1, true)
				rem = append(rem, s)
				counts = ensureCol(counts, col+1)
				counts[col+1] = append(counts[col+1], co)
				c = c[:0]
			}
			rem = append(rem, c...)
			counts[col] = rem
		}
	}
	out := make([]Signal, len(counts))
	for i, c := range counts {
		if len(c) == 1 {
			out[i] = c[0]
		} else {
			out[i] = b.Const(false)
		}
	}
	return out
}

func ensureCol(counts [][]Signal, col int) [][]Signal {
	for len(counts) <= col {
		counts = append(counts, nil)
	}
	return counts
}

// XorBus returns the bitwise XOR of two equal-width buses.
func (b *Builder) XorBus(a, x []Signal) []Signal {
	if len(a) != len(x) {
		panic("netlist: XorBus width mismatch")
	}
	out := make([]Signal, len(a))
	for i := range a {
		out[i] = b.Xor(a[i], x[i])
	}
	return out
}

// Equal returns a single signal that is 1 iff buses a and x are equal.
// This is the monitor's hash comparator.
func (b *Builder) Equal(a, x []Signal) Signal {
	if len(a) != len(x) {
		panic("netlist: Equal width mismatch")
	}
	var acc Signal = -1
	for i := range a {
		eq := b.Not(b.Xor(a[i], x[i]))
		if acc < 0 {
			acc = eq
		} else {
			acc = b.And(acc, eq)
		}
	}
	return acc
}

// MuxBus selects between two equal-width buses.
func (b *Builder) MuxBus(sel Signal, lo, hi []Signal) []Signal {
	if len(lo) != len(hi) {
		panic("netlist: MuxBus width mismatch")
	}
	out := make([]Signal, len(lo))
	for i := range lo {
		out[i] = b.Mux(sel, lo[i], hi[i])
	}
	return out
}

// RegisterBus inserts a DFF on every signal of the bus.
func (b *Builder) RegisterBus(name string, d []Signal) []Signal {
	out := make([]Signal, len(d))
	for i := range d {
		out[i] = b.DFF(d[i], fmt.Sprintf("%s[%d]", name, i))
	}
	return out
}

// LUTRom builds combinational logic computing rom[addr] for a constant
// table, as a mux tree over the address bits. Values are outWidth bits.
func (b *Builder) LUTRom(addr []Signal, rom []uint64, outWidth int) []Signal {
	n := 1 << uint(len(addr))
	if len(rom) != n {
		panic(fmt.Sprintf("netlist: rom size %d != 2^%d", len(rom), len(addr)))
	}
	out := make([]Signal, outWidth)
	for bit := 0; bit < outWidth; bit++ {
		// Leaf constants, then a mux tree selecting by address bits.
		level := make([]Signal, n)
		for i := 0; i < n; i++ {
			level[i] = b.Const(rom[i]&(1<<uint(bit)) != 0)
		}
		for d := 0; d < len(addr); d++ {
			next := make([]Signal, len(level)/2)
			for i := range next {
				next[i] = b.Mux(addr[d], level[2*i], level[2*i+1])
			}
			level = next
		}
		out[bit] = level[0]
	}
	return out
}
