package netlist

import "fmt"

// Simulator evaluates a circuit. Combinational logic is evaluated in
// topological order each Step; DFFs update on the Step boundary (a rising
// clock edge).
type Simulator struct {
	c     *Circuit
	order []Signal // topological order of non-input, non-DFF gates
	val   []bool   // current value of every gate output
	next  []bool   // scratch for DFF next-state
}

// NewSimulator builds a simulator, verifying the combinational logic is
// acyclic (cycles through DFFs are fine).
func NewSimulator(c *Circuit) (*Simulator, error) {
	s := &Simulator{c: c, val: make([]bool, len(c.Gates)), next: make([]bool, len(c.Gates))}
	// Topological sort over combinational edges only.
	state := make([]int, len(c.Gates)) // 0 unvisited, 1 visiting, 2 done
	var visit func(Signal) error
	visit = func(g Signal) error {
		switch state[g] {
		case 1:
			return fmt.Errorf("netlist: combinational cycle through gate %d (%s)", g, c.Gates[g].Kind)
		case 2:
			return nil
		}
		state[g] = 1
		gt := c.Gates[g]
		if gt.Kind != KDFF && gt.Kind != KInput {
			for _, in := range gt.In {
				if err := visit(in); err != nil {
					return err
				}
			}
			s.order = append(s.order, g)
		}
		state[g] = 2
		return nil
	}
	for i := range c.Gates {
		if err := visit(Signal(i)); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// SetInput sets the value of a primary input or DFF (for initialization).
func (s *Simulator) SetInput(sig Signal, v bool) { s.val[sig] = v }

// SetBus drives a named input bus with the low bits of v, LSB first.
func (s *Simulator) SetBus(name string, v uint64) error {
	bus, ok := s.c.Ports[name]
	if !ok {
		return fmt.Errorf("netlist: no bus %q", name)
	}
	for i, sig := range bus {
		s.val[sig] = v&(1<<uint(i)) != 0
	}
	return nil
}

// Eval propagates the current input and DFF values through the
// combinational logic without clocking the DFFs.
func (s *Simulator) Eval() {
	for _, g := range s.order {
		gt := &s.c.Gates[g]
		switch gt.Kind {
		case KConst0:
			s.val[g] = false
		case KConst1:
			s.val[g] = true
		case KNot:
			s.val[g] = !s.val[gt.In[0]]
		case KAnd:
			s.val[g] = s.val[gt.In[0]] && s.val[gt.In[1]]
		case KOr:
			s.val[g] = s.val[gt.In[0]] || s.val[gt.In[1]]
		case KXor:
			s.val[g] = s.val[gt.In[0]] != s.val[gt.In[1]]
		case KMux:
			if s.val[gt.In[0]] {
				s.val[g] = s.val[gt.In[2]]
			} else {
				s.val[g] = s.val[gt.In[1]]
			}
		}
	}
}

// Step evaluates the combinational logic and then clocks every DFF.
func (s *Simulator) Step() {
	s.Eval()
	for i := range s.c.Gates {
		if s.c.Gates[i].Kind == KDFF {
			s.next[i] = s.val[s.c.Gates[i].In[0]]
		}
	}
	for i := range s.c.Gates {
		if s.c.Gates[i].Kind == KDFF {
			s.val[i] = s.next[i]
		}
	}
}

// Value returns the current value of a signal (after Eval/Step).
func (s *Simulator) Value(sig Signal) bool { return s.val[sig] }

// Bus reads a named bus as an unsigned integer, LSB first.
func (s *Simulator) Bus(name string) (uint64, error) {
	bus, ok := s.c.Ports[name]
	if !ok {
		return 0, fmt.Errorf("netlist: no bus %q", name)
	}
	var v uint64
	for i, sig := range bus {
		if s.val[sig] {
			v |= 1 << uint(i)
		}
	}
	return v, nil
}

// EvalFunc is a convenience for purely combinational circuits: drive the
// named input buses, evaluate, and read the named output bus.
func EvalFunc(c *Circuit, inputs map[string]uint64, output string) (uint64, error) {
	s, err := NewSimulator(c)
	if err != nil {
		return 0, err
	}
	for name, v := range inputs {
		if err := s.SetBus(name, v); err != nil {
			return 0, err
		}
	}
	s.Eval()
	return s.Bus(output)
}
