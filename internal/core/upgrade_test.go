package core

import (
	"errors"
	"sync"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/npu"
	"sdmmon/internal/packet"
	"sdmmon/internal/seccrypto"
)

// Upgrade tests use their own fixture: the shared one's operator counters
// are touched by every other test, and these tests reason about exact
// sequence numbers.
type upFixture struct {
	op  *Operator
	dev *Device
}

var (
	upOnce sync.Once
	upFix  upFixture
)

func getUpgradeFixture(t *testing.T) *upFixture {
	t.Helper()
	upOnce.Do(func() {
		mfr, err := NewManufacturer("upg-acme", nil)
		if err != nil {
			panic(err)
		}
		op, err := NewOperator("upg-isp", nil)
		if err != nil {
			panic(err)
		}
		if err := mfr.Certify(op); err != nil {
			panic(err)
		}
		dev, err := mfr.Manufacture("upg-r0", DeviceConfig{
			Cores: 2, MonitorsEnabled: true, Supervisor: npu.DefaultSupervisorConfig(),
		})
		if err != nil {
			panic(err)
		}
		upFix = upFixture{op: op, dev: dev}
	})
	return &upFix
}

// The device-level staged upgrade: verified staging leaves the old version
// live, commit cuts over, rollback restores — and the manifest identity is
// what AppOn/LiveApp report.
func TestDeviceStagedUpgradeLifecycle(t *testing.T) {
	f := getUpgradeFixture(t)
	f.op.SetAppVersion("udpecho", "1.0.0")
	wire1, err := f.op.ProgramWire(f.dev.Public(), apps.UDPEcho())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.dev.Install(wire1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.App != "udpecho@1.0.0" {
		t.Fatalf("install named %q, want manifest identity udpecho@1.0.0", rep.App)
	}

	f.op.SetAppVersion("udpecho", "1.1.0")
	wire2, err := f.op.ProgramWire(f.dev.Public(), apps.UDPEcho())
	if err != nil {
		t.Fatal(err)
	}
	srep, err := f.dev.StageUpgrade(wire2)
	if err != nil {
		t.Fatal(err)
	}
	if srep.App != "udpecho@1.1.0" {
		t.Fatalf("staged name %q", srep.App)
	}
	if live, _ := f.dev.LiveApp(); live != "udpecho@1.0.0" {
		t.Fatalf("staging replaced the live version: %q", live)
	}
	// Old version serves during the staged window.
	if res, err := f.dev.Process(packet.NewGenerator(3).Next(), 0); err != nil || res.Faulted {
		t.Fatalf("live traffic during staging: res=%+v err=%v", res, err)
	}

	cycles, err := f.dev.CommitUpgrade()
	if err != nil || cycles == 0 {
		t.Fatalf("CommitUpgrade: cycles=%d err=%v", cycles, err)
	}
	if live, _ := f.dev.LiveApp(); live != "udpecho@1.1.0" {
		t.Fatalf("after commit live=%q", live)
	}

	if _, err := f.dev.RollbackUpgrade(); err != nil {
		t.Fatal(err)
	}
	if live, _ := f.dev.LiveApp(); live != "udpecho@1.0.0" {
		t.Fatalf("after rollback live=%q", live)
	}
	// Roll forward again so later tests see the highest version live.
	if _, err := f.dev.RollbackUpgrade(); err != nil {
		t.Fatal(err)
	}

	// Anti-downgrade: the captured 1.0.0 wire replays against both install
	// paths and is refused by the sequence ledger, not by crypto.
	if _, err := f.dev.Install(wire1); !errors.Is(err, seccrypto.ErrDowngrade) {
		t.Fatalf("replayed v1 wire via Install: %v, want ErrDowngrade", err)
	}
	if _, err := f.dev.StageUpgrade(wire1); !errors.Is(err, seccrypto.ErrDowngrade) {
		t.Fatalf("replayed v1 wire via StageUpgrade: %v, want ErrDowngrade", err)
	}
}

// Aborting a staged upgrade leaves nothing to commit and the live version
// untouched.
func TestDeviceAbortUpgrade(t *testing.T) {
	f := getUpgradeFixture(t)
	before, _ := f.dev.LiveApp()
	f.op.SetAppVersion("udpecho", "1.2.0")
	wire, err := f.op.ProgramWire(f.dev.Public(), apps.UDPEcho())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.dev.StageUpgrade(wire); err != nil {
		t.Fatal(err)
	}
	f.dev.AbortUpgrade()
	if _, err := f.dev.CommitUpgrade(); !errors.Is(err, npu.ErrNothingStaged) {
		t.Fatalf("commit after abort: %v, want ErrNothingStaged", err)
	}
	if live, _ := f.dev.LiveApp(); live != before {
		t.Fatalf("abort changed the live version: %q -> %q", before, live)
	}
}

// The anti-downgrade ledger survives a reboot via SequenceState /
// RestoreSequenceState — and a reboot that loses the state re-opens the
// replay window, which is exactly why the state is persisted.
func TestSequenceStatePersistence(t *testing.T) {
	f := getUpgradeFixture(t)
	f.op.SetAppVersion("counter", "1.0.0")
	wire1, err := f.op.ProgramWire(f.dev.Public(), apps.Counter())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.dev.Install(wire1); err != nil {
		t.Fatal(err)
	}
	f.op.SetAppVersion("counter", "2.0.0")
	wire2, err := f.op.ProgramWire(f.dev.Public(), apps.Counter())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.dev.Install(wire2); err != nil {
		t.Fatal(err)
	}
	saved := f.dev.SequenceState()

	// Reboot that lost the ledger: the old wire installs again.
	if err := f.dev.RestoreSequenceState(seccrypto.NewSequenceLedger().Marshal()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.dev.Install(wire1); err != nil {
		t.Fatalf("replay after ledger loss should succeed (window re-opened): %v", err)
	}

	// Reboot with the persisted ledger: the replay is refused.
	if err := f.dev.RestoreSequenceState(saved); err != nil {
		t.Fatal(err)
	}
	if _, err := f.dev.Install(wire1); !errors.Is(err, seccrypto.ErrDowngrade) {
		t.Fatalf("replay after ledger restore: %v, want ErrDowngrade", err)
	}

	// Corrupt persisted state is rejected, not silently accepted as empty.
	if err := f.dev.RestoreSequenceState([]byte("garbage")); err == nil {
		t.Fatal("RestoreSequenceState accepted garbage")
	}
}
