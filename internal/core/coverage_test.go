package core

import (
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/attack"
	"sdmmon/internal/mhash"
)

func TestDeviceAccessors(t *testing.T) {
	f := getFixture(t)
	if f.dev.Stats().Processed == 0 {
		t.Log("no traffic yet on shared fixture (fine)")
	}
	if f.dev.CostModel().ClockHz != 100e6 {
		t.Errorf("cost model clock = %f", f.dev.CostModel().ClockHz)
	}
	if f.op.Sec() == nil {
		t.Error("Sec accessor nil")
	}
}

func TestManufactureWithCustomCompression(t *testing.T) {
	f := getFixture(t)
	dev, err := f.mfr.Manufacture("router-sbox", DeviceConfig{
		Cores: 1, MonitorsEnabled: true, Compression: mhash.SBoxCompress(),
	})
	if err != nil {
		t.Fatal(err)
	}
	op, err := NewOperator("sbox-isp", nil)
	if err != nil {
		t.Fatal(err)
	}
	op.Compression = mhash.SBoxCompress()
	if err := f.mfr.Certify(op); err != nil {
		t.Fatal(err)
	}
	wire, err := op.ProgramWire(dev.Public(), apps.IPv4CM())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Install(wire); err != nil {
		t.Fatalf("s-box install: %v", err)
	}
	// The device still detects the smash under the hardened hash.
	smash := attack.DefaultSmash()
	code, err := smash.HijackPayload()
	if err != nil {
		t.Fatal(err)
	}
	atk, err := smash.CraftPacket(code)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dev.Process(atk, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Error("s-box device missed the attack")
	}
}

func TestCompressionMismatchRejectedAtInstall(t *testing.T) {
	// Operator extracts the graph with the sum hash but the device runs
	// the s-box family: the device-side self-check must refuse the bundle.
	f := getFixture(t)
	dev, err := f.mfr.Manufacture("router-mismatch", DeviceConfig{
		Cores: 1, MonitorsEnabled: true, Compression: mhash.SBoxCompress(),
	})
	if err != nil {
		t.Fatal(err)
	}
	wire, err := f.op.ProgramWire(dev.Public(), apps.IPv4CM()) // sum-based operator
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Install(wire); err == nil {
		t.Error("hash-family mismatch installed")
	}
}

func TestInstallResidentAndSwitch(t *testing.T) {
	f := getFixture(t)
	dev, err := f.mfr.Manufacture("router-lib", DeviceConfig{Cores: 1, MonitorsEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ipv4cm", "udpecho"} {
		app, err := apps.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		wire, err := f.op.ProgramWire(dev.Public(), app)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := dev.InstallResident(wire, name)
		if err != nil {
			t.Fatalf("InstallResident(%s): %v", name, err)
		}
		if rep.Ops.RSAPrivateOps != 1 {
			t.Errorf("%s: resident install skipped crypto: %+v", name, rep.Ops)
		}
	}
	// Fast switches between the resident apps, crypto-free.
	for _, name := range []string{"ipv4cm", "udpecho", "ipv4cm"} {
		cycles, err := dev.Switch(0, name)
		if err != nil {
			t.Fatalf("Switch(%s): %v", name, err)
		}
		if cycles == 0 || cycles > 1000 {
			t.Errorf("switch cycles = %d", cycles)
		}
	}
	// The rogue operator cannot sneak into the library either.
	rw, err := f.rogue.ProgramWire(dev.Public(), apps.Counter())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.InstallResident(rw, "evil"); err == nil {
		t.Error("rogue resident install accepted")
	}
}

func TestPrepareBundleBadApp(t *testing.T) {
	f := getFixture(t)
	bad := &apps.App{Name: "broken", Source: "bogus instruction"}
	if _, err := f.op.PrepareBundle(bad); err == nil {
		t.Error("broken app bundled")
	}
	if _, err := f.op.Program(f.dev.Public(), bad); err == nil {
		t.Error("broken app programmed")
	}
}
