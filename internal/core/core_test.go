package core

import (
	"errors"
	"sync"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/attack"
	"sdmmon/internal/packet"
	"sdmmon/internal/seccrypto"
)

// Shared fixture: RSA keygen is the slow part.
type fixture struct {
	mfr   *Manufacturer
	op    *Operator
	rogue *Operator // certified by a different manufacturer
	dev   *Device
	dev2  *Device
	nomon *Device // monitors disabled
}

var (
	once sync.Once
	fix  fixture
)

func getFixture(t *testing.T) *fixture {
	t.Helper()
	once.Do(func() {
		mfr, err := NewManufacturer("acme", nil)
		if err != nil {
			panic(err)
		}
		evil, err := NewManufacturer("evil", nil)
		if err != nil {
			panic(err)
		}
		op, err := NewOperator("isp", nil)
		if err != nil {
			panic(err)
		}
		if err := mfr.Certify(op); err != nil {
			panic(err)
		}
		rogue, err := NewOperator("rogue", nil)
		if err != nil {
			panic(err)
		}
		if err := evil.Certify(rogue); err != nil {
			panic(err)
		}
		cfg := DeviceConfig{Cores: 2, MonitorsEnabled: true}
		dev, err := mfr.Manufacture("router-0", cfg)
		if err != nil {
			panic(err)
		}
		dev2, err := mfr.Manufacture("router-1", cfg)
		if err != nil {
			panic(err)
		}
		nomon, err := mfr.Manufacture("router-insecure", DeviceConfig{Cores: 1})
		if err != nil {
			panic(err)
		}
		fix = fixture{mfr: mfr, op: op, rogue: rogue, dev: dev, dev2: dev2, nomon: nomon}
	})
	return &fix
}

func TestEndToEndLifecycle(t *testing.T) {
	f := getFixture(t)
	wire, err := f.op.ProgramWire(f.dev.Public(), apps.IPv4CM())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.dev.Install(wire)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WireBytes != len(wire) {
		t.Errorf("wire bytes %d != %d", rep.WireBytes, len(wire))
	}
	if rep.ModelSeconds <= 0 {
		t.Error("no modeled install time")
	}
	if rep.Ops.RSAPrivateOps != 1 {
		t.Errorf("ops = %+v", rep.Ops)
	}
	// Benign traffic flows.
	gen := packet.NewGenerator(1)
	for i := 0; i < 30; i++ {
		res, err := f.dev.Process(gen.Next(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected || res.Faulted {
			t.Fatalf("benign packet %d flagged", i)
		}
	}
	// The attack is detected.
	smash := attack.DefaultSmash()
	code, err := smash.HijackPayload()
	if err != nil {
		t.Fatal(err)
	}
	atk, err := smash.CraftPacket(code)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.dev.Process(atk, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatal("attack not detected end-to-end")
	}
	if len(f.dev.Installs()) == 0 {
		t.Error("install history empty")
	}
}

func TestCertCheckOnlyOnce(t *testing.T) {
	f := getFixture(t)
	dev, err := f.mfr.Manufacture("router-cert", DeviceConfig{Cores: 1, MonitorsEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	wire1, err := f.op.ProgramWire(dev.Public(), apps.Counter())
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := dev.Install(wire1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.CertChecked || rep1.Ops.RSAPublicOps != 2 {
		t.Errorf("first install: %+v", rep1)
	}
	wire2, err := f.op.ProgramWire(dev.Public(), apps.UDPEcho())
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := dev.Install(wire2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CertChecked || rep2.Ops.RSAPublicOps != 1 {
		t.Errorf("second install: %+v", rep2)
	}
}

// SR1 end to end: rogue operator's package refused.
func TestSR1EndToEnd(t *testing.T) {
	f := getFixture(t)
	wire, err := f.rogue.ProgramWire(f.dev.Public(), apps.IPv4CM())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.dev.Install(wire); !errors.Is(err, seccrypto.ErrBadCertificate) {
		t.Errorf("rogue install: %v", err)
	}
}

// SR4 end to end: package for router-0 refused by router-1.
func TestSR4EndToEnd(t *testing.T) {
	f := getFixture(t)
	wire, err := f.op.ProgramWire(f.dev.Public(), apps.IPv4CM())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.dev2.Install(wire); !errors.Is(err, seccrypto.ErrWrongDevice) {
		t.Errorf("cross-device install: %v", err)
	}
}

// SR2 end to end: programmings draw fresh parameters and (usually) fresh
// graphs. Note the collapse finding bites here too: under the sum
// compression two parameters with equal nibble-sums (probability 1/16)
// produce IDENTICAL graphs — the effective key space is only 16 values, so
// the test asserts divergence across several draws, not per pair.
func TestSR2FreshParameters(t *testing.T) {
	f := getFixture(t)
	var bundles []*seccrypto.Bundle
	params := map[uint32]bool{}
	graphs := map[string]bool{}
	for i := 0; i < 6; i++ {
		b, err := f.op.PrepareBundle(apps.IPv4CM())
		if err != nil {
			t.Fatal(err)
		}
		bundles = append(bundles, b)
		params[b.HashParam] = true
		graphs[string(b.Graph)] = true
	}
	if len(params) < 6 {
		t.Errorf("only %d distinct parameters in 6 draws", len(params))
	}
	// P(all 6 graphs identical) = 16^-5 ≈ 1e-6 under the sum compression.
	if len(graphs) < 2 {
		t.Error("all graphs identical across six parameters")
	}
	for _, b := range bundles[1:] {
		if string(b.Binary) != string(bundles[0].Binary) {
			t.Error("binary should be identical across parameters")
		}
	}
}

func TestTamperedWireRejected(t *testing.T) {
	f := getFixture(t)
	wire, err := f.op.ProgramWire(f.dev.Public(), apps.Counter())
	if err != nil {
		t.Fatal(err)
	}
	wire[len(wire)/2] ^= 0x40
	if _, err := f.dev.Install(wire); err == nil {
		t.Error("tampered wire accepted")
	}
	if _, err := f.dev.Install(wire[:30]); err == nil {
		t.Error("truncated wire accepted")
	}
}

func TestUnmonitoredDeviceBaseline(t *testing.T) {
	f := getFixture(t)
	wire, err := f.op.ProgramWire(f.nomon.Public(), apps.IPv4CM())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.nomon.Install(wire); err != nil {
		t.Fatal(err)
	}
	smash := attack.DefaultSmash()
	code, err := smash.HijackPayload()
	if err != nil {
		t.Fatal(err)
	}
	atk, err := smash.CraftPacket(code)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.nomon.Process(atk, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected {
		t.Error("unmonitored device detected an attack")
	}
	if res.Verdict != apps.VerdictForward {
		t.Errorf("hijack verdict = %d", res.Verdict)
	}
}

func TestInstallOnSingleCore(t *testing.T) {
	f := getFixture(t)
	dev, err := f.mfr.Manufacture("router-percore", DeviceConfig{Cores: 2, MonitorsEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	wireA, err := f.op.ProgramWire(dev.Public(), apps.UDPEcho())
	if err != nil {
		t.Fatal(err)
	}
	wireB, err := f.op.ProgramWire(dev.Public(), apps.Counter())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.InstallOn(wireA, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.InstallOn(wireB, 1); err != nil {
		t.Fatal(err)
	}
	a0, _ := dev.NP().AppOn(0)
	a1, _ := dev.NP().AppOn(1)
	if a0 == a1 {
		t.Error("per-core installs collided")
	}
}

func TestDeviceConfigDefaults(t *testing.T) {
	cfg := DefaultDeviceConfig()
	if cfg.Cores != 4 || !cfg.MonitorsEnabled {
		t.Errorf("defaults = %+v", cfg)
	}
}
