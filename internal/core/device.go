package core

import (
	"bytes"
	"fmt"

	"sdmmon/internal/mhash"
	"sdmmon/internal/npu"
	"sdmmon/internal/obs"
	"sdmmon/internal/seccrypto"
	"sdmmon/internal/timing"
)

// Device is one router: a control processor holding the device identity and
// running the secure-installation pipeline, plus a multicore NP.
type Device struct {
	ID        string
	identity  *seccrypto.DeviceIdentity
	np        *npu.NP
	cost      timing.CostModel
	newHasher func(uint32) mhash.Hasher

	installs []InstallReport
	// pinnedOperatorKey is the operator public key (DER) pinned after the
	// first successful certificate verification. Later installs skip the
	// certificate check (the §4.2 optimization) only when the presented
	// certificate carries this exact key — skipping unconditionally would
	// let any self-signed certificate through.
	pinnedOperatorKey []byte
	// revoked lists certificate serials this device refuses (an extension
	// beyond the paper: operator key rotation needs a way to retire the
	// old certificate).
	revoked map[uint64]bool

	// Secure-install telemetry, resolved once at manufacture; nil (no
	// collector attached) makes every publish a no-op.
	mSecInstalls *obs.Counter
	mSecFailures *obs.Counter
	hSecVerify   *obs.Histogram
}

// recordInstall publishes one verification-pipeline outcome: a counted
// failure, or a counted success with its modeled control-processor seconds.
func (d *Device) recordInstall(rep *InstallReport, err error) {
	if err != nil {
		d.mSecFailures.Inc()
		return
	}
	d.mSecInstalls.Inc()
	d.hSecVerify.Observe(rep.ModelSeconds)
}

// RevokeCertificate blacklists a certificate serial (distributed by the
// manufacturer out of band). If the pinned operator key was established by
// that certificate, the pin is dropped so the next install re-verifies.
func (d *Device) RevokeCertificate(serial uint64, keyDER []byte) {
	if d.revoked == nil {
		d.revoked = map[uint64]bool{}
	}
	d.revoked[serial] = true
	if keyDER != nil && bytes.Equal(d.pinnedOperatorKey, keyDER) {
		d.pinnedOperatorKey = nil
	}
}

// Public returns the device's public identity for the operator inventory.
func (d *Device) Public() seccrypto.DevicePublic { return d.identity.PublicInfo() }

// NP exposes the network processor (stats, scratch, per-core access).
func (d *Device) NP() *npu.NP { return d.np }

// InstallReport records one secure installation with its cost accounting.
type InstallReport struct {
	App          string
	WireBytes    int
	Ops          seccrypto.OpCounts
	ModelSeconds float64 // control-processor time per the Table 2 model
	CertChecked  bool
}

// Installs returns the install history.
func (d *Device) Installs() []InstallReport { return d.installs }

// Install runs the device side of the protocol on a wire-format package:
// verify, decrypt, check, then load binary+graph+parameter onto every NP
// core. The certificate check runs on the first installation and is skipped
// afterwards, as in §4.2.
func (d *Device) Install(wire []byte) (*InstallReport, error) {
	return d.install(wire, -1)
}

// InstallOn installs onto a single core (dynamic per-core workloads, §1).
func (d *Device) InstallOn(wire []byte, coreID int) (*InstallReport, error) {
	return d.install(wire, coreID)
}

// open runs the full package verification pipeline (unmarshal, revocation,
// certificate with pinning, decrypt, signature, device binding,
// anti-downgrade) shared by the destructive install, the resident-library
// load, and the staged-upgrade path.
func (d *Device) open(wire []byte) (pkg *seccrypto.Package, bundle *seccrypto.Bundle,
	ops seccrypto.OpCounts, skipCert bool, err error) {
	pkg, err = seccrypto.UnmarshalPackage(wire)
	if err != nil {
		return nil, nil, ops, false, err
	}
	if pkg.Cert != nil && d.revoked[pkg.Cert.Serial] {
		return nil, nil, ops, false, fmt.Errorf("core: certificate serial %d revoked: %w",
			pkg.Cert.Serial, seccrypto.ErrBadCertificate)
	}
	skipCert = pkg.Cert != nil && d.pinnedOperatorKey != nil &&
		bytes.Equal(pkg.Cert.KeyDER, d.pinnedOperatorKey)
	bundle, ops, err = d.identity.OpenPackage(pkg, skipCert)
	if err != nil {
		return nil, nil, ops, skipCert, err
	}
	ops.DownloadBytes = len(wire)
	return pkg, bundle, ops, skipCert, nil
}

// bundleName derives the NP-visible application label: the signed manifest
// identity when present (so operators and the rollout engine can read which
// release a core runs), the package digest otherwise.
func bundleName(pkg *seccrypto.Package, bundle *seccrypto.Bundle) string {
	if m := bundle.Manifest; !m.Zero() {
		return fmt.Sprintf("%s@%s", m.AppName, m.Version)
	}
	return fmt.Sprintf("bundle-%s", pkg.DigestHex())
}

func (d *Device) install(wire []byte, coreID int) (rep *InstallReport, err error) {
	defer func() { d.recordInstall(rep, err) }()
	pkg, bundle, ops, skipCert, err := d.open(wire)
	if err != nil {
		return nil, err
	}

	name := bundleName(pkg, bundle)
	if coreID < 0 {
		err = d.np.InstallAll(name, bundle.Binary, bundle.Graph, bundle.HashParam)
	} else {
		err = d.np.Install(coreID, name, bundle.Binary, bundle.Graph, bundle.HashParam)
	}
	if err != nil {
		return nil, err
	}
	d.pinnedOperatorKey = append([]byte(nil), pkg.Cert.KeyDER...)

	r := InstallReport{
		App:          name,
		WireBytes:    len(wire),
		Ops:          ops,
		ModelSeconds: d.cost.EstimateOps(ops),
		CertChecked:  !skipCert,
	}
	d.installs = append(d.installs, r)
	return &r, nil
}

// StageUpgrade verifies a package and stages its bundle into every NP core's
// shadow slot: the currently live application keeps serving packets until
// CommitUpgrade cuts over. The full cryptographic pipeline (including the
// anti-downgrade sequence check) runs here, so a staged bundle is as trusted
// as an installed one.
func (d *Device) StageUpgrade(wire []byte) (rep *InstallReport, err error) {
	defer func() { d.recordInstall(rep, err) }()
	pkg, bundle, ops, skipCert, err := d.open(wire)
	if err != nil {
		return nil, err
	}
	name := bundleName(pkg, bundle)
	if err := d.np.StageInstallAll(name, bundle.Binary, bundle.Graph, bundle.HashParam); err != nil {
		return nil, err
	}
	d.pinnedOperatorKey = append([]byte(nil), pkg.Cert.KeyDER...)
	r := InstallReport{
		App:          name,
		WireBytes:    len(wire),
		Ops:          ops,
		ModelSeconds: d.cost.EstimateOps(ops),
		CertChecked:  !skipCert,
	}
	d.installs = append(d.installs, r)
	return &r, nil
}

// CommitUpgrade atomically cuts every core over to its staged bundle (per
// core at a packet boundary), retaining the displaced version for
// RollbackUpgrade. Returns the simulated NP cutover cost in core cycles.
func (d *Device) CommitUpgrade() (uint64, error) { return d.np.CommitAll() }

// AbortUpgrade discards any staged bundles; the live application is
// untouched.
func (d *Device) AbortUpgrade() { d.np.AbortAllStaged() }

// RollbackUpgrade restores the retained previous version on every core.
// Returns the simulated NP cutover cost in core cycles.
func (d *Device) RollbackUpgrade() (uint64, error) { return d.np.RollbackAll() }

// LiveApp reports the application label live on core 0 (fleet devices run
// one application on all cores).
func (d *Device) LiveApp() (string, bool) { return d.np.AppOn(0) }

// LiveParam reports the hash parameter live on core 0 — the per-device
// evidence behind the fleet's pairwise-distinct rotation invariant.
func (d *Device) LiveParam() (uint32, bool) { return d.np.ParamOn(0) }

// SequenceState serializes the device's anti-downgrade high-water marks for
// persistence across reboots.
func (d *Device) SequenceState() []byte { return d.identity.Sequences().Marshal() }

// RestoreSequenceState reloads persisted anti-downgrade state (the reboot
// path). Restoring stale or empty state re-opens the replay window — exactly
// why the ledger must be persisted.
func (d *Device) RestoreSequenceState(state []byte) error {
	l, err := seccrypto.UnmarshalSequenceLedger(state)
	if err != nil {
		return err
	}
	d.identity.RestoreSequences(l)
	return nil
}

// InstallResident verifies a package and stores its bundle in the NP's
// resident application library under the given name, without programming
// any core. Cores switch to resident applications in microseconds via
// Switch — the §4.2 fast path for dynamic workload changes.
func (d *Device) InstallResident(wire []byte, name string) (rep *InstallReport, err error) {
	defer func() { d.recordInstall(rep, err) }()
	pkg, err := seccrypto.UnmarshalPackage(wire)
	if err != nil {
		return nil, err
	}
	if pkg.Cert != nil && d.revoked[pkg.Cert.Serial] {
		return nil, fmt.Errorf("core: certificate serial %d revoked: %w",
			pkg.Cert.Serial, seccrypto.ErrBadCertificate)
	}
	skipCert := pkg.Cert != nil && d.pinnedOperatorKey != nil &&
		bytes.Equal(pkg.Cert.KeyDER, d.pinnedOperatorKey)
	bundle, ops, err := d.identity.OpenPackage(pkg, skipCert)
	if err != nil {
		return nil, err
	}
	ops.DownloadBytes = len(wire)
	if err := d.np.LoadLibrary(name, bundle.Binary, bundle.Graph, bundle.HashParam); err != nil {
		return nil, err
	}
	d.pinnedOperatorKey = append([]byte(nil), pkg.Cert.KeyDER...)
	r := InstallReport{
		App:          name,
		WireBytes:    len(wire),
		Ops:          ops,
		ModelSeconds: d.cost.EstimateOps(ops),
		CertChecked:  !skipCert,
	}
	d.installs = append(d.installs, r)
	return &r, nil
}

// Switch points a core at a resident application (no cryptography on this
// path). Returns the simulated switch cost in core cycles.
func (d *Device) Switch(coreID int, name string) (uint64, error) {
	return d.np.Switch(coreID, name)
}

// Process runs one packet through the NP (round-robin core dispatch).
func (d *Device) Process(pkt []byte, qdepth int) (npu.Result, error) {
	return d.np.Process(pkt, qdepth)
}

// Stats returns the NP statistics.
func (d *Device) Stats() npu.Stats { return d.np.Stats() }

// CostModel exposes the control-processor timing model.
func (d *Device) CostModel() timing.CostModel { return d.cost }
