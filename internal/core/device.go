package core

import (
	"bytes"
	"fmt"

	"sdmmon/internal/mhash"
	"sdmmon/internal/npu"
	"sdmmon/internal/seccrypto"
	"sdmmon/internal/timing"
)

// Device is one router: a control processor holding the device identity and
// running the secure-installation pipeline, plus a multicore NP.
type Device struct {
	ID        string
	identity  *seccrypto.DeviceIdentity
	np        *npu.NP
	cost      timing.CostModel
	newHasher func(uint32) mhash.Hasher

	installs []InstallReport
	// pinnedOperatorKey is the operator public key (DER) pinned after the
	// first successful certificate verification. Later installs skip the
	// certificate check (the §4.2 optimization) only when the presented
	// certificate carries this exact key — skipping unconditionally would
	// let any self-signed certificate through.
	pinnedOperatorKey []byte
	// revoked lists certificate serials this device refuses (an extension
	// beyond the paper: operator key rotation needs a way to retire the
	// old certificate).
	revoked map[uint64]bool
}

// RevokeCertificate blacklists a certificate serial (distributed by the
// manufacturer out of band). If the pinned operator key was established by
// that certificate, the pin is dropped so the next install re-verifies.
func (d *Device) RevokeCertificate(serial uint64, keyDER []byte) {
	if d.revoked == nil {
		d.revoked = map[uint64]bool{}
	}
	d.revoked[serial] = true
	if keyDER != nil && bytes.Equal(d.pinnedOperatorKey, keyDER) {
		d.pinnedOperatorKey = nil
	}
}

// Public returns the device's public identity for the operator inventory.
func (d *Device) Public() seccrypto.DevicePublic { return d.identity.PublicInfo() }

// NP exposes the network processor (stats, scratch, per-core access).
func (d *Device) NP() *npu.NP { return d.np }

// InstallReport records one secure installation with its cost accounting.
type InstallReport struct {
	App          string
	WireBytes    int
	Ops          seccrypto.OpCounts
	ModelSeconds float64 // control-processor time per the Table 2 model
	CertChecked  bool
}

// Installs returns the install history.
func (d *Device) Installs() []InstallReport { return d.installs }

// Install runs the device side of the protocol on a wire-format package:
// verify, decrypt, check, then load binary+graph+parameter onto every NP
// core. The certificate check runs on the first installation and is skipped
// afterwards, as in §4.2.
func (d *Device) Install(wire []byte) (*InstallReport, error) {
	return d.install(wire, -1)
}

// InstallOn installs onto a single core (dynamic per-core workloads, §1).
func (d *Device) InstallOn(wire []byte, coreID int) (*InstallReport, error) {
	return d.install(wire, coreID)
}

func (d *Device) install(wire []byte, coreID int) (*InstallReport, error) {
	pkg, err := seccrypto.UnmarshalPackage(wire)
	if err != nil {
		return nil, err
	}
	if pkg.Cert != nil && d.revoked[pkg.Cert.Serial] {
		return nil, fmt.Errorf("core: certificate serial %d revoked: %w",
			pkg.Cert.Serial, seccrypto.ErrBadCertificate)
	}
	skipCert := pkg.Cert != nil && d.pinnedOperatorKey != nil &&
		bytes.Equal(pkg.Cert.KeyDER, d.pinnedOperatorKey)
	bundle, ops, err := d.identity.OpenPackage(pkg, skipCert)
	if err != nil {
		return nil, err
	}
	ops.DownloadBytes = len(wire)

	name := fmt.Sprintf("bundle-%s", pkg.DigestHex())
	if coreID < 0 {
		err = d.np.InstallAll(name, bundle.Binary, bundle.Graph, bundle.HashParam)
	} else {
		err = d.np.Install(coreID, name, bundle.Binary, bundle.Graph, bundle.HashParam)
	}
	if err != nil {
		return nil, err
	}
	d.pinnedOperatorKey = append([]byte(nil), pkg.Cert.KeyDER...)

	rep := InstallReport{
		App:          name,
		WireBytes:    len(wire),
		Ops:          ops,
		ModelSeconds: d.cost.EstimateOps(ops),
		CertChecked:  !skipCert,
	}
	d.installs = append(d.installs, rep)
	return &rep, nil
}

// InstallResident verifies a package and stores its bundle in the NP's
// resident application library under the given name, without programming
// any core. Cores switch to resident applications in microseconds via
// Switch — the §4.2 fast path for dynamic workload changes.
func (d *Device) InstallResident(wire []byte, name string) (*InstallReport, error) {
	pkg, err := seccrypto.UnmarshalPackage(wire)
	if err != nil {
		return nil, err
	}
	if pkg.Cert != nil && d.revoked[pkg.Cert.Serial] {
		return nil, fmt.Errorf("core: certificate serial %d revoked: %w",
			pkg.Cert.Serial, seccrypto.ErrBadCertificate)
	}
	skipCert := pkg.Cert != nil && d.pinnedOperatorKey != nil &&
		bytes.Equal(pkg.Cert.KeyDER, d.pinnedOperatorKey)
	bundle, ops, err := d.identity.OpenPackage(pkg, skipCert)
	if err != nil {
		return nil, err
	}
	ops.DownloadBytes = len(wire)
	if err := d.np.LoadLibrary(name, bundle.Binary, bundle.Graph, bundle.HashParam); err != nil {
		return nil, err
	}
	d.pinnedOperatorKey = append([]byte(nil), pkg.Cert.KeyDER...)
	rep := InstallReport{
		App:          name,
		WireBytes:    len(wire),
		Ops:          ops,
		ModelSeconds: d.cost.EstimateOps(ops),
		CertChecked:  !skipCert,
	}
	d.installs = append(d.installs, rep)
	return &rep, nil
}

// Switch points a core at a resident application (no cryptography on this
// path). Returns the simulated switch cost in core cycles.
func (d *Device) Switch(coreID int, name string) (uint64, error) {
	return d.np.Switch(coreID, name)
}

// Process runs one packet through the NP (round-robin core dispatch).
func (d *Device) Process(pkt []byte, qdepth int) (npu.Result, error) {
	return d.np.Process(pkt, qdepth)
}

// Stats returns the NP statistics.
func (d *Device) Stats() npu.Stats { return d.np.Stats() }

// CostModel exposes the control-processor timing model.
func (d *Device) CostModel() timing.CostModel { return d.cost }
