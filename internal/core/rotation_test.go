package core

import (
	"errors"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/seccrypto"
)

// Key rotation + revocation extension: the operator rotates its keys, the
// fleet revokes the old certificate, and packages signed before the
// rotation stop installing while fresh ones flow.
func TestKeyRotationAndRevocation(t *testing.T) {
	f := getFixture(t)
	dev, err := f.mfr.Manufacture("router-rot", DeviceConfig{Cores: 1, MonitorsEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	op, err := NewOperator("rotating-isp", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.mfr.Certify(op); err != nil {
		t.Fatal(err)
	}

	// Pre-rotation package installs and pins the old key.
	oldWire, err := op.ProgramWire(dev.Public(), apps.Counter())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Install(oldWire); err != nil {
		t.Fatal(err)
	}

	// Rotate and revoke the old certificate on the device.
	oldSerial, oldKey, err := op.Rotate(f.mfr)
	if err != nil {
		t.Fatal(err)
	}
	if oldSerial == 0 || len(oldKey) == 0 {
		t.Fatal("rotation did not report the old credential")
	}
	dev.RevokeCertificate(oldSerial, oldKey)

	// A replay of the pre-rotation package is now refused.
	if _, err := dev.Install(oldWire); !errors.Is(err, seccrypto.ErrBadCertificate) {
		t.Errorf("pre-rotation package: err = %v, want revoked certificate", err)
	}

	// Fresh packages signed with the rotated key install (full cert check
	// since the pin was dropped), and re-pin the new key.
	newWire, err := op.ProgramWire(dev.Public(), apps.UDPEcho())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dev.Install(newWire)
	if err != nil {
		t.Fatalf("post-rotation install: %v", err)
	}
	if !rep.CertChecked {
		t.Error("post-rotation install skipped the certificate check")
	}
	// Second post-rotation install skips the check again (new pin).
	newWire2, err := op.ProgramWire(dev.Public(), apps.Counter())
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := dev.Install(newWire2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CertChecked {
		t.Error("new key not pinned after rotation")
	}
}

func TestRevocationWithoutPinDrop(t *testing.T) {
	f := getFixture(t)
	dev, err := f.mfr.Manufacture("router-rev", DeviceConfig{Cores: 1, MonitorsEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	// Revoking an unrelated serial must not disturb normal operation.
	dev.RevokeCertificate(9999, nil)
	wire, err := f.op.ProgramWire(dev.Public(), apps.Counter())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Install(wire); err != nil {
		t.Fatalf("unrelated revocation broke installs: %v", err)
	}
}
