// Package core is the SDMMon facade: it wires the substrates into the
// paper's three-entity system (Figure 3) and exposes the lifecycle a
// downstream user drives:
//
//	manufacturer := core.NewManufacturer("acme")
//	operator     := core.NewOperator("isp")
//	manufacturer.Certify(operator)                    // installation time
//	device       := manufacturer.Manufacture("r0", 2) // manufacturing time
//	pkg          := operator.Program(device.Public(), apps.IPv4CM()) // programming time
//	report       := device.Install(pkg)               // secure installation
//	device.Process(packet)                            // runtime, monitored
//
// The Device couples a control processor (package verification with Table 2
// cost accounting) to a multicore NP (internal/npu) whose monitors enforce
// the installed monitoring graphs.
package core

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"

	"sdmmon/internal/apps"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
	"sdmmon/internal/npu"
	"sdmmon/internal/obs"
	"sdmmon/internal/seccrypto"
	"sdmmon/internal/timing"
)

// Manufacturer produces devices and certifies operators (root of trust).
type Manufacturer struct {
	sec *seccrypto.Manufacturer
	rng io.Reader
}

// NewManufacturer creates a manufacturer. rng may be nil (crypto/rand).
func NewManufacturer(name string, rng io.Reader) (*Manufacturer, error) {
	if rng == nil {
		rng = rand.Reader
	}
	m, err := seccrypto.NewManufacturer(name, rng)
	if err != nil {
		return nil, err
	}
	return &Manufacturer{sec: m, rng: rng}, nil
}

// Certify issues the operator's certificate and attaches it ("at
// installation time", §3.1).
func (m *Manufacturer) Certify(o *Operator) error {
	cert, err := m.sec.IssueCertificate(o.sec)
	if err != nil {
		return err
	}
	o.sec.SetCertificate(cert)
	return nil
}

// DeviceConfig sizes a manufactured device.
type DeviceConfig struct {
	Cores int
	// MonitorsEnabled=false builds the insecure baseline device.
	MonitorsEnabled bool
	// Compression selects the Merkle compression function; nil means the
	// paper's arithmetic sum.
	Compression mhash.Compress
	// Supervisor enables the NP's per-core health tracker (quarantine on
	// persistent alarms/faults). The rollout health gate reads its state;
	// the zero value disables it.
	Supervisor npu.SupervisorConfig
	// Obs, when set, attaches a telemetry collector: the NP publishes
	// packet/alarm counters, per-core cycle histograms and lifecycle trace
	// events into it, and the device adds secure-install counters plus a
	// verification-time histogram. Nil disables all hooks at zero cost.
	Obs *obs.Collector
}

// DefaultDeviceConfig is a 4-core monitored device with the paper's hash.
func DefaultDeviceConfig() DeviceConfig {
	return DeviceConfig{Cores: 4, MonitorsEnabled: true}
}

// Manufacture provisions a device with keys and the manufacturer's root of
// trust ("at manufacturing time", §3.1).
func (m *Manufacturer) Manufacture(id string, cfg DeviceConfig) (*Device, error) {
	ident, err := m.sec.ProvisionDevice(id, m.rng)
	if err != nil {
		return nil, err
	}
	newHasher := func(p uint32) mhash.Hasher { return mhash.NewMerkle(p) }
	if cfg.Compression != nil {
		c := cfg.Compression
		newHasher = func(p uint32) mhash.Hasher {
			h, err := mhash.NewMerkleWith(p, 4, c)
			if err != nil {
				// Width 4 is always valid; only a nil-safe guard.
				panic(err)
			}
			return h
		}
	}
	np, err := npu.New(npu.Config{
		Cores:           cfg.Cores,
		MonitorsEnabled: cfg.MonitorsEnabled,
		NewHasher:       newHasher,
		Supervisor:      cfg.Supervisor,
		Obs:             cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	d := &Device{
		ID:        id,
		identity:  ident,
		np:        np,
		cost:      timing.NiosIIPrototype(),
		newHasher: newHasher,
	}
	if reg := cfg.Obs.Registry(); reg != nil {
		d.mSecInstalls = reg.Counter("sec_installs_total")
		d.mSecFailures = reg.Counter("sec_install_failures_total")
		d.hSecVerify = reg.Histogram("sec_verify_seconds", obs.SecondsBuckets)
	}
	return d, nil
}

// Operator prepares and ships signed application bundles.
type Operator struct {
	Name string
	sec  *seccrypto.Operator
	rng  io.Reader
	// Compression must match the fleet's device configuration; nil means
	// the paper's arithmetic sum.
	Compression mhash.Compress

	// appSeq is the operator's per-application monotonic release counter;
	// every prepared bundle carries the next value in its signed manifest.
	// Devices track their own high-water marks, so a shared fleet-wide
	// counter is sufficient (each device just sees increasing numbers).
	appSeq map[string]uint64
	// appVersion is the human-facing semantic version stamped into
	// manifests, set with SetAppVersion ("" derives a label from the
	// sequence).
	appVersion map[string]string
}

// SetAppVersion sets the semantic version label stamped into subsequent
// manifests for an application (e.g. "2.1.0" before a fleet upgrade).
func (o *Operator) SetAppVersion(appName, version string) {
	if o.appVersion == nil {
		o.appVersion = map[string]string{}
	}
	o.appVersion[appName] = version
}

// nextManifest draws the next release manifest for an application.
func (o *Operator) nextManifest(appName string) seccrypto.Manifest {
	if o.appSeq == nil {
		o.appSeq = map[string]uint64{}
	}
	o.appSeq[appName]++
	seq := o.appSeq[appName]
	version := o.appVersion[appName]
	if version == "" {
		version = fmt.Sprintf("0.0.%d", seq)
	}
	return seccrypto.Manifest{AppName: appName, Version: version, Sequence: seq}
}

// NewOperator creates an operator. rng may be nil (crypto/rand).
func NewOperator(name string, rng io.Reader) (*Operator, error) {
	if rng == nil {
		rng = rand.Reader
	}
	o, err := seccrypto.NewOperator(name, rng)
	if err != nil {
		return nil, err
	}
	return &Operator{Name: name, sec: o, rng: rng}, nil
}

// PrepareBundle performs the operator's offline work for one device: draw a
// fresh random 32-bit hash parameter, assemble the application, and extract
// the monitoring graph under that parameter.
func (o *Operator) PrepareBundle(app *apps.App) (*seccrypto.Bundle, error) {
	var pb [4]byte
	if _, err := io.ReadFull(o.rng, pb[:]); err != nil {
		return nil, fmt.Errorf("core: parameter: %w", err)
	}
	return o.PrepareBundleWith(app, binary.BigEndian.Uint32(pb[:]))
}

// PrepareBundleWith is PrepareBundle with a caller-chosen hash parameter.
// Fleet rotation plans assign parameters centrally (pairwise-distinct across
// the fleet), so the draw moves out of the operator and the extraction runs
// under exactly the assigned value.
func (o *Operator) PrepareBundleWith(app *apps.App, param uint32) (*seccrypto.Bundle, error) {
	prog, err := app.Program()
	if err != nil {
		return nil, err
	}
	var h mhash.Hasher = mhash.NewMerkle(param)
	if o.Compression != nil {
		h, err = mhash.NewMerkleWith(param, 4, o.Compression)
		if err != nil {
			return nil, err
		}
	}
	g, err := monitor.Extract(prog, h)
	if err != nil {
		return nil, err
	}
	return &seccrypto.Bundle{
		Manifest:  o.nextManifest(app.Name),
		Binary:    prog.Serialize(),
		Graph:     g.Serialize(),
		HashParam: param,
	}, nil
}

// Program builds the signed, encrypted package for one device ("at
// programming time", §3.1). Each call draws a fresh hash parameter — the
// heterogeneity requirement SR2.
func (o *Operator) Program(dev seccrypto.DevicePublic, app *apps.App) (*seccrypto.Package, error) {
	b, err := o.PrepareBundle(app)
	if err != nil {
		return nil, err
	}
	return o.sec.BuildPackage(dev, b, o.rng)
}

// ProgramWire is Program plus wire serialization (what the network
// transports).
func (o *Operator) ProgramWire(dev seccrypto.DevicePublic, app *apps.App) ([]byte, error) {
	p, err := o.Program(dev, app)
	if err != nil {
		return nil, err
	}
	return p.Marshal(), nil
}

// ProgramWireWith builds and serializes a package whose bundle carries a
// caller-assigned hash parameter (rotation rollouts).
func (o *Operator) ProgramWireWith(dev seccrypto.DevicePublic, app *apps.App, param uint32) ([]byte, error) {
	b, err := o.PrepareBundleWith(app, param)
	if err != nil {
		return nil, err
	}
	p, err := o.sec.BuildPackage(dev, b, o.rng)
	if err != nil {
		return nil, err
	}
	return p.Marshal(), nil
}

// Sec exposes the underlying crypto operator (attack models use it to build
// adversarial packages).
func (o *Operator) Sec() *seccrypto.Operator { return o.sec }

// Rotate replaces the operator's key pair and obtains a fresh certificate
// from the manufacturer — the key-rotation extension. The old certificate's
// serial and key are returned so it can be revoked on the fleet via
// Device.RevokeCertificate.
func (o *Operator) Rotate(m *Manufacturer) (oldSerial uint64, oldKeyDER []byte, err error) {
	old := o.sec.Certificate()
	if old != nil {
		oldSerial = old.Serial
		oldKeyDER = append([]byte(nil), old.KeyDER...)
	}
	fresh, err := seccrypto.NewOperator(o.Name, o.rng)
	if err != nil {
		return 0, nil, err
	}
	o.sec = fresh
	if err := m.Certify(o); err != nil {
		return 0, nil, err
	}
	return oldSerial, oldKeyDER, nil
}
