package asm

import (
	"testing"

	"sdmmon/internal/isa"
)

func TestImplicitDataSection(t *testing.T) {
	// .data without an address continues, word-aligned, after the text.
	p := mustAsm(t, `
		.text 0x0
	main:
		nop
		nop
		break
		.data
	v:	.word 42
	`)
	if p.Symbols["v"] != 12 {
		t.Errorf("implicit .data placed v at %#x, want 0xC", p.Symbols["v"])
	}
	img, _ := p.Image()
	if img[12] != 0 || img[15] != 42 {
		t.Errorf("word at v = % x", img[12:16])
	}
}

func TestRegisterPseudoOps(t *testing.T) {
	p := mustAsm(t, `
		.text 0x0
	main:
		move $t0, $t1
		not $t2, $t3
		neg $t4, $t5
		call sub
		ret
	sub:
		jr $ra
	`)
	ws := p.CodeWords()
	if ws[0].W != isa.EncodeR(isa.FnADDU, isa.RegT1, isa.RegZero, isa.RegT0, 0) {
		t.Errorf("move = %s", isa.Disasm(0, ws[0].W))
	}
	if ws[1].W != isa.EncodeR(isa.FnNOR, isa.RegT3, isa.RegZero, isa.RegT2, 0) {
		t.Errorf("not = %s", isa.Disasm(4, ws[1].W))
	}
	if ws[2].W != isa.EncodeR(isa.FnSUB, isa.RegZero, isa.RegT5, isa.RegT4, 0) {
		t.Errorf("neg = %s", isa.Disasm(8, ws[2].W))
	}
	if ws[3].W.Op() != isa.OpJAL {
		t.Errorf("call = %s", isa.Disasm(12, ws[3].W))
	}
	if ws[4].W != isa.EncodeR(isa.FnJR, isa.RegRA, 0, 0, 0) {
		t.Errorf("ret = %s", isa.Disasm(16, ws[4].W))
	}
}

func TestLoadIntoWritesSegments(t *testing.T) {
	p := mustAsm(t, `
		.text 0x10
	main:
		break
		.data 0x40
	d:	.byte 7
	`)
	sink := &captureLoader{data: map[uint32][]byte{}}
	p.LoadInto(sink)
	if len(sink.data) != 2 {
		t.Fatalf("loaded %d segments", len(sink.data))
	}
	if sink.data[0x40][0] != 7 {
		t.Error("data segment content wrong")
	}
}

type captureLoader struct{ data map[uint32][]byte }

func (c *captureLoader) WriteBytes(addr uint32, b []byte) {
	c.data[addr] = append([]byte(nil), b...)
}

func TestCharEscapes(t *testing.T) {
	p := mustAsm(t, `
		.text 0x0
	main:
		li $t0, '\t'
		li $t1, '\0'
		li $t2, '\\'
		li $t3, '\''
		break
	`)
	ws := p.CodeWords()
	wants := []uint16{'\t', 0, '\\', '\''}
	for i, want := range wants {
		if ws[i].W.Imm() != want {
			t.Errorf("escape %d = %d, want %d", i, ws[i].W.Imm(), want)
		}
	}
	if _, err := Assemble(".text 0x0\nmain:\nli $t0, '\\q'\n"); err == nil {
		t.Error("unknown escape accepted")
	}
	if _, err := Assemble(".text 0x0\nmain:\nli $t0, 'ab'\n"); err == nil {
		t.Error("multi-char literal accepted")
	}
}

func TestMoreEncodeErrors(t *testing.T) {
	cases := []string{
		"move $t0",
		"li $t0",
		"la $t0",
		"b",
		"beqz $t0",
		"push",
		"pop",
		"call",
		"jr",
		"jalr $t0, $t1, $t2",
		"sll $t0, $t1",
		"sll $t0, $t1, 99",
		"mult $t0",
		"mfhi",
		"mthi",
		"lui $t0",
		"lui $t0, 0x12345",
		"beq $t0, $t1",
		"blez $t0",
		"bltz $t0",
		"j",
		"lw $t0",
		"syscall extra? no",
		"blt $t0, $t1",
	}
	for _, src := range cases {
		if _, err := Assemble(".text 0x0\nmain:\n" + src + "\n"); err == nil {
			t.Errorf("%q accepted", src)
		}
	}
}

func TestBranchAlignmentAndRange(t *testing.T) {
	if _, err := Assemble(`
		.text 0x0
	main:
		.equ ODD, 0x1001
		beq $t0, $t1, ODD
	`); err == nil {
		t.Error("unaligned branch target accepted")
	}
	if _, err := Assemble(`
		.text 0x0
	main:
		.equ FAR, 0x1000000
		beq $t0, $t1, FAR
	`); err == nil {
		t.Error("out-of-range branch accepted")
	}
}
