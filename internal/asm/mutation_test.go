package asm

import (
	"math/rand"
	"testing"
)

// Deserialize handles device-side bytes that arrive through the (verified)
// package path, but the parser itself must be robust to arbitrary
// corruption: errors, never panics, and accepted outputs must be usable.
func TestDeserializeMutationRobustness(t *testing.T) {
	p := MustAssemble(`
		.text 0x0
	main:
		li $t0, 5
	loop:
		addiu $t0, $t0, -1
		bnez $t0, loop
		jal sub
		break
	sub:
		jr $ra
		.data 0x1000
	tbl:	.word 1, 2, 3, 4
	msg:	.asciiz "hello"
	`)
	good := p.Serialize()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		mut := append([]byte(nil), good...)
		switch rng.Intn(4) {
		case 0:
			for j := 0; j < 1+rng.Intn(5); j++ {
				mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
			}
		case 1:
			mut = mut[:rng.Intn(len(mut))]
		case 2:
			extra := make([]byte, 1+rng.Intn(32))
			rng.Read(extra)
			mut = append(mut, extra...)
		case 3:
			if len(mut) > 12 {
				at := 4 + rng.Intn(len(mut)-8)
				rng.Read(mut[at : at+4])
			}
		}
		q, err := Deserialize(mut)
		if err != nil {
			continue
		}
		// Whatever is accepted must answer queries without panicking.
		q.CodeWords()
		q.Image()
		q.Size()
		q.IsCode(q.Entry)
	}
}

// Assemble must reject arbitrary text gracefully.
func TestAssembleGarbageRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	alphabet := []byte("abcdefghijklmnopqrstuvwxyz $,.()#:0123456789\n\t\"\\-+")
	for i := 0; i < 2000; i++ {
		n := rng.Intn(200)
		src := make([]byte, n)
		for j := range src {
			src[j] = alphabet[rng.Intn(len(alphabet))]
		}
		// Must not panic; errors are expected and fine.
		_, _ = Assemble(string(src))
	}
}
