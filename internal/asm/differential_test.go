package asm

import (
	"math/rand"
	"strings"
	"testing"

	"sdmmon/internal/isa"
)

// Broad disassembler↔assembler differential test: generate random valid
// instruction words across every format, disassemble, re-assemble at the
// same pc, and require the identical word back.
func TestDisasmAssembleDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	const pc = 0x1000

	gen := func() isa.Word {
		for {
			var w isa.Word
			switch rng.Intn(5) {
			case 0: // R-type
				fns := []uint32{
					isa.FnSLL, isa.FnSRL, isa.FnSRA, isa.FnSLLV, isa.FnSRLV, isa.FnSRAV,
					isa.FnJR, isa.FnJALR, isa.FnMFHI, isa.FnMTHI, isa.FnMFLO, isa.FnMTLO,
					isa.FnMULT, isa.FnMULTU, isa.FnDIV, isa.FnDIVU,
					isa.FnADD, isa.FnADDU, isa.FnSUB, isa.FnSUBU,
					isa.FnAND, isa.FnOR, isa.FnXOR, isa.FnNOR, isa.FnSLT, isa.FnSLTU,
				}
				fn := fns[rng.Intn(len(fns))]
				rs, rt, rd := uint32(rng.Intn(32)), uint32(rng.Intn(32)), uint32(rng.Intn(32))
				sh := uint32(0)
				switch fn {
				case isa.FnSLL, isa.FnSRL, isa.FnSRA:
					sh, rs = uint32(rng.Intn(32)), 0
				case isa.FnSLLV, isa.FnSRLV, isa.FnSRAV:
				case isa.FnJR:
					rt, rd = 0, 0
				case isa.FnJALR:
					rt = 0
					if rd == 0 {
						rd = isa.RegRA
					}
				case isa.FnMFHI, isa.FnMFLO:
					rs, rt = 0, 0
				case isa.FnMTHI, isa.FnMTLO:
					rt, rd = 0, 0
				case isa.FnMULT, isa.FnMULTU, isa.FnDIV, isa.FnDIVU:
					rd = 0
				}
				w = isa.EncodeR(fn, rs, rt, rd, sh)
			case 1: // I-type ALU
				ops := []uint32{isa.OpADDI, isa.OpADDIU, isa.OpSLTI, isa.OpSLTIU,
					isa.OpANDI, isa.OpORI, isa.OpXORI}
				w = isa.EncodeI(ops[rng.Intn(len(ops))], uint32(rng.Intn(32)),
					uint32(rng.Intn(32)), uint16(rng.Uint32()))
			case 2: // lui / memory
				if rng.Intn(4) == 0 {
					w = isa.EncodeI(isa.OpLUI, 0, uint32(rng.Intn(32)), uint16(rng.Uint32()))
				} else {
					ops := []uint32{isa.OpLB, isa.OpLH, isa.OpLW, isa.OpLBU, isa.OpLHU,
						isa.OpSB, isa.OpSH, isa.OpSW}
					w = isa.EncodeI(ops[rng.Intn(len(ops))], uint32(rng.Intn(32)),
						uint32(rng.Intn(32)), uint16(rng.Uint32()))
				}
			case 3: // branches (bounded offsets so the target stays positive)
				off := uint16(rng.Intn(0x3FF))
				switch rng.Intn(3) {
				case 0:
					ops := []uint32{isa.OpBEQ, isa.OpBNE}
					w = isa.EncodeI(ops[rng.Intn(2)], uint32(rng.Intn(32)),
						uint32(rng.Intn(32)), off)
				case 1:
					ops := []uint32{isa.OpBLEZ, isa.OpBGTZ}
					w = isa.EncodeI(ops[rng.Intn(2)], uint32(rng.Intn(32)), 0, off)
				case 2:
					rts := []uint32{isa.RtBLTZ, isa.RtBGEZ, isa.RtBLTZAL, isa.RtBGEZAL}
					w = isa.EncodeI(isa.OpRegImm, uint32(rng.Intn(32)),
						rts[rng.Intn(4)], off)
				}
			case 4: // jumps
				op := isa.OpJ
				if rng.Intn(2) == 0 {
					op = isa.OpJAL
				}
				w = isa.EncodeJ(op, uint32(rng.Intn(1<<20))<<2)
			}
			if isa.Valid(w) {
				return w
			}
		}
	}

	for i := 0; i < 5000; i++ {
		w := gen()
		text := isa.Disasm(pc, w)
		if strings.HasPrefix(text, ".word") {
			t.Fatalf("valid word %08x disassembled to %q", uint32(w), text)
		}
		// syscall/break disassemble without their code fields; skip exact
		// round-trip only for words that carry a nonzero code field.
		if (w.Op() == isa.OpSpecial && (w.Fn() == isa.FnSYSCALL || w.Fn() == isa.FnBREAK)) &&
			uint32(w)&0x03FFFFC0 != 0 {
			continue
		}
		src := ".text 0x1000\nmain:\n" + text + "\n"
		p, err := Assemble(src)
		if err != nil {
			t.Fatalf("%q (from %08x) does not assemble: %v", text, uint32(w), err)
		}
		got := p.CodeWords()[0].W
		if got != w {
			t.Fatalf("%q: round-trip %08x != original %08x", text, uint32(got), uint32(w))
		}
	}
}
