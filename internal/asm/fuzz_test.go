package asm

import "testing"

func FuzzDeserializeProgram(f *testing.F) {
	p := MustAssemble(".text 0x0\nmain:\n li $t0, 1\n break\n.data 0x100\nx: .word 7\n")
	f.Add(p.Serialize())
	f.Add([]byte("SDMB"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := Deserialize(data)
		if err != nil {
			return
		}
		_ = q.Serialize()
		q.CodeWords()
		q.Image()
		q.IsCode(q.Entry)
	})
}

func FuzzAssemble(f *testing.F) {
	f.Add(".text 0x0\nmain:\n addu $v0, $a0, $a1\n jr $ra\n")
	f.Add("li $t0, 0x12345678")
	f.Add(".word 1, 2, 3")
	f.Add(".asciiz \"hi\\n\"")
	f.Add("lw $t0, 4($sp)")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		// Valid programs must round-trip their serialization.
		q, err := Deserialize(p.Serialize())
		if err != nil {
			t.Fatalf("assembled program does not deserialize: %v", err)
		}
		if q.Entry != p.Entry {
			t.Fatal("entry changed in round trip")
		}
	})
}
