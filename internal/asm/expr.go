package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// Expression parser for operand fields: full precedence with parentheses.
//
//	expr   := or
//	or     := xor ('|' xor)*
//	xor    := and ('^' and)*
//	and    := shift ('&' shift)*
//	shift  := sum (('<<'|'>>') sum)*
//	sum    := prod (('+'|'-') prod)*
//	prod   := unary (('*'|'/'|'%') unary)*
//	unary  := ('-'|'~')* atom
//	atom   := number | char | symbol | '(' expr ')'
//
// Numbers accept 0x/0b/0o prefixes and decimal. Symbols resolve .equ
// constants first, then labels.
type exprParser struct {
	a      *assembler
	st     *stmt
	labels bool
	src    string
	pos    int
}

func (a *assembler) evalExpr(expr string, st *stmt, labels bool) (uint32, error) {
	p := &exprParser{a: a, st: st, labels: labels, src: expr}
	v, err := p.parseOr()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return 0, a.errf(st, "trailing %q in expression %q", p.src[p.pos:], expr)
	}
	return v, nil
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	p.skipSpace()
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *exprParser) take(tok string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], tok) {
		// Avoid eating "<<" as "<" etc.: the caller passes the longest
		// token first.
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *exprParser) parseOr() (uint32, error) {
	v, err := p.parseXor()
	if err != nil {
		return 0, err
	}
	for p.peek() == '|' {
		p.pos++
		r, err := p.parseXor()
		if err != nil {
			return 0, err
		}
		v |= r
	}
	return v, nil
}

func (p *exprParser) parseXor() (uint32, error) {
	v, err := p.parseAnd()
	if err != nil {
		return 0, err
	}
	for p.peek() == '^' {
		p.pos++
		r, err := p.parseAnd()
		if err != nil {
			return 0, err
		}
		v ^= r
	}
	return v, nil
}

func (p *exprParser) parseAnd() (uint32, error) {
	v, err := p.parseShift()
	if err != nil {
		return 0, err
	}
	for p.peek() == '&' {
		p.pos++
		r, err := p.parseShift()
		if err != nil {
			return 0, err
		}
		v &= r
	}
	return v, nil
}

func (p *exprParser) parseShift() (uint32, error) {
	v, err := p.parseSum()
	if err != nil {
		return 0, err
	}
	for {
		switch {
		case p.take("<<"):
			r, err := p.parseSum()
			if err != nil {
				return 0, err
			}
			if r > 31 {
				return 0, p.a.errf(p.st, "shift count %d out of range", r)
			}
			v <<= r
		case p.take(">>"):
			r, err := p.parseSum()
			if err != nil {
				return 0, err
			}
			if r > 31 {
				return 0, p.a.errf(p.st, "shift count %d out of range", r)
			}
			v >>= r
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseSum() (uint32, error) {
	v, err := p.parseProd()
	if err != nil {
		return 0, err
	}
	for {
		switch p.peek() {
		case '+':
			p.pos++
			r, err := p.parseProd()
			if err != nil {
				return 0, err
			}
			v += r
		case '-':
			p.pos++
			r, err := p.parseProd()
			if err != nil {
				return 0, err
			}
			v -= r
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseProd() (uint32, error) {
	v, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		c := p.peek()
		// '>>' handled above; a single '/' here is division.
		switch c {
		case '*':
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			v *= r
		case '/':
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, p.a.errf(p.st, "division by zero in expression")
			}
			v /= r
		case '%':
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, p.a.errf(p.st, "modulo by zero in expression")
			}
			v %= r
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseUnary() (uint32, error) {
	switch p.peek() {
	case '-':
		p.pos++
		v, err := p.parseUnary()
		return -v, err
	case '~':
		p.pos++
		v, err := p.parseUnary()
		return ^v, err
	}
	return p.parseAtom()
}

func (p *exprParser) parseAtom() (uint32, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0, p.a.errf(p.st, "empty expression")
	}
	c := p.src[p.pos]
	switch {
	case c == '(':
		p.pos++
		v, err := p.parseOr()
		if err != nil {
			return 0, err
		}
		if p.peek() != ')' {
			return 0, p.a.errf(p.st, "missing ')' in expression")
		}
		p.pos++
		return v, nil
	case c == '\'':
		// A backslash escapes the next character, including a quote.
		body := p.src[p.pos+1:]
		length := 0
		switch {
		case len(body) >= 3 && body[0] == '\\' && body[2] == '\'':
			length = 4 // 'x\'' escaped form
		case len(body) >= 2 && body[0] != '\\' && body[1] == '\'':
			length = 3 // plain 'x'
		default:
			return 0, p.a.errf(p.st, "unterminated char literal")
		}
		lit := p.src[p.pos : p.pos+length]
		p.pos += length
		return charValue(lit, p.a, p.st)
	case c >= '0' && c <= '9':
		start := p.pos
		for p.pos < len(p.src) && isNumChar(p.src[p.pos]) {
			p.pos++
		}
		tok := p.src[start:p.pos]
		if v, err := strconv.ParseInt(tok, 0, 64); err == nil {
			return uint32(v), nil
		}
		if v, err := strconv.ParseUint(tok, 0, 64); err == nil {
			return uint32(v), nil
		}
		return 0, p.a.errf(p.st, "bad number %q", tok)
	case isIdentStart(c):
		start := p.pos
		for p.pos < len(p.src) && isIdentChar(p.src[p.pos]) {
			p.pos++
		}
		name := p.src[start:p.pos]
		if v, ok := p.a.equs[name]; ok {
			return v, nil
		}
		if v, ok := p.a.symbols[name]; ok {
			return v, nil
		}
		if p.labels {
			return 0, p.a.errf(p.st, "undefined symbol %q", name)
		}
		return 0, p.a.errf(p.st, "symbol %q not resolvable here", name)
	}
	return 0, p.a.errf(p.st, "unexpected %q in expression", string(c))
}

func isNumChar(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F' ||
		c == 'x' || c == 'X' || c == 'o' || c == 'O'
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == '.'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func charValue(lit string, a *assembler, st *stmt) (uint32, error) {
	inner := lit[1 : len(lit)-1]
	if len(inner) == 2 && inner[0] == '\\' {
		switch inner[1] {
		case 'n':
			return '\n', nil
		case 't':
			return '\t', nil
		case '0':
			return 0, nil
		case '\\':
			return '\\', nil
		case '\'':
			return '\'', nil
		}
	}
	if len(inner) == 1 {
		return uint32(inner[0]), nil
	}
	return 0, a.errf(st, "bad char literal %q", lit)
}

// ensure fmt stays imported if error paths change.
var _ = fmt.Sprintf
