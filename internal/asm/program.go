// Package asm implements a two-pass assembler for the MIPS-I subset defined
// in internal/isa. Packet-processing applications (internal/apps) are written
// in this assembly dialect and assembled at runtime; the resulting Program is
// what the network operator signs, the router installs, and the offline
// analyzer (internal/monitor) turns into a monitoring graph.
package asm

import (
	"fmt"
	"sort"

	"sdmmon/internal/isa"
)

// Segment is a contiguous run of assembled bytes at a fixed address.
type Segment struct {
	Addr uint32 // base byte address
	Data []byte
	Code bool // true if the segment holds instruction words
}

// Program is the output of the assembler: a set of non-overlapping segments,
// a symbol table, and an entry point.
type Program struct {
	Entry    uint32
	Segments []Segment // sorted by Addr
	Symbols  map[string]uint32
}

// CodeWord is one instruction word at its byte address.
type CodeWord struct {
	Addr uint32
	W    isa.Word
}

// CodeWords returns every instruction word in the program in address order.
func (p *Program) CodeWords() []CodeWord {
	var out []CodeWord
	for _, s := range p.Segments {
		if !s.Code {
			continue
		}
		for i := 0; i+4 <= len(s.Data); i += 4 {
			w := isa.Word(beWord(s.Data[i:]))
			out = append(out, CodeWord{Addr: s.Addr + uint32(i), W: w})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// WordAt returns the instruction word at byte address a, if a lies in a code
// segment.
func (p *Program) WordAt(a uint32) (isa.Word, bool) {
	for _, s := range p.Segments {
		if s.Code && a >= s.Addr && a+4 <= s.Addr+uint32(len(s.Data)) {
			return isa.Word(beWord(s.Data[a-s.Addr:])), true
		}
	}
	return 0, false
}

// IsCode reports whether byte address a lies inside a code segment.
func (p *Program) IsCode(a uint32) bool {
	for _, s := range p.Segments {
		if s.Code && a >= s.Addr && a < s.Addr+uint32(len(s.Data)) {
			return true
		}
	}
	return false
}

// Size returns the total number of assembled bytes across all segments.
func (p *Program) Size() int {
	n := 0
	for _, s := range p.Segments {
		n += len(s.Data)
	}
	return n
}

// Image flattens the program into a single byte image plus its base address.
// Gaps between segments are zero-filled. The second return value is the base
// address of the image.
func (p *Program) Image() ([]byte, uint32) {
	if len(p.Segments) == 0 {
		return nil, 0
	}
	lo := p.Segments[0].Addr
	hi := lo
	for _, s := range p.Segments {
		if s.Addr < lo {
			lo = s.Addr
		}
		if end := s.Addr + uint32(len(s.Data)); end > hi {
			hi = end
		}
	}
	img := make([]byte, hi-lo)
	for _, s := range p.Segments {
		copy(img[s.Addr-lo:], s.Data)
	}
	return img, lo
}

// Loader is any memory a Program can be loaded into (the CPU bus satisfies
// this).
type Loader interface {
	WriteBytes(addr uint32, data []byte)
}

// LoadInto writes every segment into mem.
func (p *Program) LoadInto(mem Loader) {
	for _, s := range p.Segments {
		mem.WriteBytes(s.Addr, s.Data)
	}
}

// Serialize encodes the program into a deterministic binary form: this is
// the "processing binary" that the network operator signs and ships inside
// the SDMMon package.
func (p *Program) Serialize() []byte {
	var out []byte
	put32 := func(v uint32) { out = append(out, byte(v>>24), byte(v>>16), byte(v>>8), byte(v)) }
	out = append(out, 'S', 'D', 'M', 'B') // magic
	put32(p.Entry)
	put32(uint32(len(p.Segments)))
	for _, s := range p.Segments {
		put32(s.Addr)
		put32(uint32(len(s.Data)))
		if s.Code {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
		out = append(out, s.Data...)
	}
	return out
}

// MaxAddress bounds segment addresses and sizes accepted by Deserialize: NP
// core memories are small (64 KiB in this simulator, a few MiB on real
// devices), so anything beyond 64 MiB is corrupt or hostile input that would
// otherwise provoke huge allocations in Image.
const MaxAddress = 64 << 20

// Deserialize decodes a binary produced by Serialize.
func Deserialize(b []byte) (*Program, error) {
	if len(b) < 12 || b[0] != 'S' || b[1] != 'D' || b[2] != 'M' || b[3] != 'B' {
		return nil, fmt.Errorf("asm: bad program magic")
	}
	get32 := func(off int) uint32 { return beWord(b[off:]) }
	p := &Program{Entry: get32(4), Symbols: map[string]uint32{}}
	n := int(get32(8))
	off := 12
	for i := 0; i < n; i++ {
		if off+9 > len(b) {
			return nil, fmt.Errorf("asm: truncated segment header %d", i)
		}
		addr := get32(off)
		ln := int(get32(off + 4))
		code := b[off+8] == 1
		off += 9
		if ln < 0 || off+ln > len(b) {
			return nil, fmt.Errorf("asm: truncated segment data %d", i)
		}
		if addr > MaxAddress || ln > MaxAddress || int(addr)+ln > MaxAddress {
			return nil, fmt.Errorf("asm: segment %d at 0x%x+%d exceeds the address cap", i, addr, ln)
		}
		data := make([]byte, ln)
		copy(data, b[off:off+ln])
		off += ln
		p.Segments = append(p.Segments, Segment{Addr: addr, Data: data, Code: code})
	}
	if off != len(b) {
		return nil, fmt.Errorf("asm: %d trailing bytes after program", len(b)-off)
	}
	return p, nil
}

func beWord(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
