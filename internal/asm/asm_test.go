package asm

import (
	"strings"
	"testing"

	"sdmmon/internal/isa"
)

func mustAsm(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestBasicEncoding(t *testing.T) {
	p := mustAsm(t, `
		.text 0x0
	main:
		addu $v0, $a0, $a1
		addiu $sp, $sp, -8
		ori $t0, $zero, 0xbeef
		lw  $t1, 4($sp)
		sw  $t1, 0($sp)
		jr  $ra
	`)
	words := p.CodeWords()
	if len(words) != 6 {
		t.Fatalf("got %d words, want 6", len(words))
	}
	want := []isa.Word{
		isa.EncodeR(isa.FnADDU, isa.RegA0, isa.RegA1, isa.RegV0, 0),
		isa.EncodeI(isa.OpADDIU, isa.RegSP, isa.RegSP, 0xFFF8),
		isa.EncodeI(isa.OpORI, isa.RegZero, isa.RegT0, 0xBEEF),
		isa.EncodeI(isa.OpLW, isa.RegSP, isa.RegT1, 4),
		isa.EncodeI(isa.OpSW, isa.RegSP, isa.RegT1, 0),
		isa.EncodeR(isa.FnJR, isa.RegRA, 0, 0, 0),
	}
	for i, w := range want {
		if words[i].W != w {
			t.Errorf("word %d = %08x (%s), want %08x (%s)", i,
				uint32(words[i].W), isa.Disasm(words[i].Addr, words[i].W),
				uint32(w), isa.Disasm(words[i].Addr, w))
		}
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAsm(t, `
		.text 0x100
	main:
		beq $t0, $t1, done
		addiu $t0, $t0, 1
		b main
	done:
		jr $ra
	`)
	ws := p.CodeWords()
	// beq at 0x100 targets done at 0x10C: offset = (0x10C-0x104)/4 = 2.
	if ws[0].W != isa.EncodeI(isa.OpBEQ, isa.RegT0, isa.RegT1, 2) {
		t.Errorf("beq encoded %08x", uint32(ws[0].W))
	}
	// b at 0x108 targets main at 0x100: offset = (0x100-0x10C)/4 = -3.
	if ws[2].W != isa.EncodeI(isa.OpBEQ, 0, 0, 0xFFFD) {
		t.Errorf("b encoded %08x", uint32(ws[2].W))
	}
	if p.Entry != 0x100 {
		t.Errorf("entry = %#x, want 0x100", p.Entry)
	}
}

func TestJumpEncoding(t *testing.T) {
	p := mustAsm(t, `
		.text 0x400
	main:
		jal func
		break
	func:
		jr $ra
	`)
	ws := p.CodeWords()
	if got := isa.JumpTarget(0x400, ws[0].W); got != 0x408 {
		t.Errorf("jal target = %#x, want 0x408", got)
	}
}

func TestPseudoLI(t *testing.T) {
	p := mustAsm(t, `
		.text 0x0
	main:
		li $t0, 42
		li $t1, -7
		li $t2, 0xFFFF
		li $t3, 0x12345678
		break
	`)
	ws := p.CodeWords()
	if len(ws) != 6 {
		t.Fatalf("got %d words, want 6 (li large = 2 words)", len(ws))
	}
	if ws[0].W != isa.EncodeI(isa.OpADDIU, 0, isa.RegT0, 42) {
		t.Errorf("li small = %08x", uint32(ws[0].W))
	}
	if ws[1].W != isa.EncodeI(isa.OpADDIU, 0, isa.RegT1, 0xFFF9) {
		t.Errorf("li negative = %08x", uint32(ws[1].W))
	}
	if ws[2].W != isa.EncodeI(isa.OpORI, 0, isa.RegT2, 0xFFFF) {
		t.Errorf("li 0xFFFF = %08x", uint32(ws[2].W))
	}
	if ws[3].W != isa.EncodeI(isa.OpLUI, 0, isa.RegT3, 0x1234) ||
		ws[4].W != isa.EncodeI(isa.OpORI, isa.RegT3, isa.RegT3, 0x5678) {
		t.Errorf("li large = %08x %08x", uint32(ws[3].W), uint32(ws[4].W))
	}
}

func TestPseudoLA(t *testing.T) {
	p := mustAsm(t, `
		.text 0x0
	main:
		la $t0, buf
		break
		.data 0x340004
	buf:
		.word 1
	`)
	ws := p.CodeWords()
	if ws[0].W != isa.EncodeI(isa.OpLUI, 0, isa.RegT0, 0x0034) ||
		ws[1].W != isa.EncodeI(isa.OpORI, isa.RegT0, isa.RegT0, 0x0004) {
		t.Errorf("la = %08x %08x", uint32(ws[0].W), uint32(ws[1].W))
	}
}

func TestPseudoCmpBranches(t *testing.T) {
	p := mustAsm(t, `
		.text 0x0
	main:
		blt $t0, $t1, out
		bge $t0, $t1, out
		bgtu $t0, $t1, out
	out:
		break
	`)
	ws := p.CodeWords()
	// blt: slt $at, $t0, $t1 ; bne $at, $zero, out
	if ws[0].W != isa.EncodeR(isa.FnSLT, isa.RegT0, isa.RegT1, isa.RegAT, 0) {
		t.Errorf("blt slt = %s", isa.Disasm(0, ws[0].W))
	}
	if ws[1].W.Op() != isa.OpBNE {
		t.Errorf("blt branch = %s", isa.Disasm(4, ws[1].W))
	}
	// Branch offset from 0x4 to out=0x18: (0x18-0x8)/4 = 4.
	if ws[1].W.SImm() != 4 {
		t.Errorf("blt offset = %d, want 4", ws[1].W.SImm())
	}
	// bge uses beq on the slt result.
	if ws[3].W.Op() != isa.OpBEQ {
		t.Errorf("bge branch = %s", isa.Disasm(12, ws[3].W))
	}
	// bgtu: sltu $at, $t1, $t0 ; bne
	if ws[4].W != isa.EncodeR(isa.FnSLTU, isa.RegT1, isa.RegT0, isa.RegAT, 0) {
		t.Errorf("bgtu sltu = %s", isa.Disasm(16, ws[4].W))
	}
}

func TestDataDirectives(t *testing.T) {
	p := mustAsm(t, `
		.text 0x0
	main:
		break
		.data 0x1000
	w:	.word 0xDEADBEEF, 2
	h:	.half 0x1234
	b:	.byte 1, 2, 3
	s:	.asciiz "hi\n"
		.align 2
	e:	.space 8
	`)
	if p.Symbols["w"] != 0x1000 || p.Symbols["h"] != 0x1008 || p.Symbols["b"] != 0x100A {
		t.Errorf("data symbols: w=%#x h=%#x b=%#x", p.Symbols["w"], p.Symbols["h"], p.Symbols["b"])
	}
	if p.Symbols["s"] != 0x100D {
		t.Errorf("s = %#x, want 0x100D", p.Symbols["s"])
	}
	// s is 4 bytes ("hi\n\0"), so next free is 0x1011, aligned to 0x1014.
	if p.Symbols["e"] != 0x1014 {
		t.Errorf("e = %#x, want 0x1014", p.Symbols["e"])
	}
	img, base := p.Image()
	if base != 0 {
		t.Fatalf("base = %#x", base)
	}
	if img[0x1000] != 0xDE || img[0x1001] != 0xAD || img[0x1002] != 0xBE || img[0x1003] != 0xEF {
		t.Errorf(".word not big-endian: % x", img[0x1000:0x1004])
	}
	if string(img[0x100D:0x1011]) != "hi\n\x00" {
		t.Errorf("asciiz = %q", img[0x100D:0x1011])
	}
}

func TestEquConstants(t *testing.T) {
	p := mustAsm(t, `
		.equ BUFSZ, 64
		.equ PORT, 0x2000
		.text 0x0
	main:
		li $t0, BUFSZ
		li $t1, PORT+4
		break
	`)
	ws := p.CodeWords()
	if ws[0].W != isa.EncodeI(isa.OpADDIU, 0, isa.RegT0, 64) {
		t.Errorf("equ use = %s", isa.Disasm(0, ws[0].W))
	}
	if ws[1].W != isa.EncodeI(isa.OpADDIU, 0, isa.RegT1, 0x2004) {
		t.Errorf("equ expr = %s", isa.Disasm(4, ws[1].W))
	}
}

func TestPushPop(t *testing.T) {
	p := mustAsm(t, `
		.text 0x0
	main:
		push $ra
		pop $ra
		break
	`)
	ws := p.CodeWords()
	if ws[0].W != isa.EncodeI(isa.OpADDIU, isa.RegSP, isa.RegSP, 0xFFFC) ||
		ws[1].W != isa.EncodeI(isa.OpSW, isa.RegSP, isa.RegRA, 0) {
		t.Error("push expansion wrong")
	}
	if ws[2].W != isa.EncodeI(isa.OpLW, isa.RegSP, isa.RegRA, 0) ||
		ws[3].W != isa.EncodeI(isa.OpADDIU, isa.RegSP, isa.RegSP, 4) {
		t.Error("pop expansion wrong")
	}
}

func TestComments(t *testing.T) {
	p := mustAsm(t, `
		.text 0x0          # hash comment
	main:                      ; semicolon comment
		nop                // slash comment
		break
	`)
	if len(p.CodeWords()) != 2 {
		t.Errorf("got %d words, want 2", len(p.CodeWords()))
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"bogus $t0, $t1", "unknown mnemonic"},
		{"addi $t0, $t1, 70000", "out of signed"},
		{"andi $t0, $t1, 0x10000", "out of unsigned"},
		{"lw $t0, 4", "bad memory operand"},
		{"add $t0, $t1", "needs rd, rs, rt"},
		{"beq $t0, $t1, nowhere", "undefined symbol"},
		{"add $t0, $t1, $zz", "bad register"},
		{".word", "at least one value"},
		{".asciiz hi", "quoted string"},
	}
	for _, c := range cases {
		_, err := Assemble(".text 0x0\n" + c.src + "\n")
		if err == nil {
			t.Errorf("%q: expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%q: error %q does not mention %q", c.src, err, c.frag)
		}
	}
}

func TestOverlapDetected(t *testing.T) {
	_, err := Assemble(`
		.text 0x0
	main:
		nop
		nop
		.data 0x4
		.word 1
	`)
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("overlap not detected: %v", err)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	p := mustAsm(t, `
		.text 0x100
	main:
		li $t0, 5
	loop:
		addiu $t0, $t0, -1
		bnez $t0, loop
		break
		.data 0x1000
	tbl:	.word 1, 2, 3
	`)
	b := p.Serialize()
	q, err := Deserialize(b)
	if err != nil {
		t.Fatalf("Deserialize: %v", err)
	}
	if q.Entry != p.Entry {
		t.Errorf("entry %#x != %#x", q.Entry, p.Entry)
	}
	if len(q.Segments) != len(p.Segments) {
		t.Fatalf("segments %d != %d", len(q.Segments), len(p.Segments))
	}
	for i := range p.Segments {
		a, b := p.Segments[i], q.Segments[i]
		if a.Addr != b.Addr || a.Code != b.Code || string(a.Data) != string(b.Data) {
			t.Errorf("segment %d mismatch", i)
		}
	}
}

func TestDeserializeErrors(t *testing.T) {
	if _, err := Deserialize([]byte("nope")); err == nil {
		t.Error("bad magic accepted")
	}
	p := mustAsm(t, ".text 0x0\nmain:\nbreak\n")
	b := p.Serialize()
	if _, err := Deserialize(b[:len(b)-1]); err == nil {
		t.Error("truncated program accepted")
	}
	if _, err := Deserialize(append(b, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestDisasmRoundTrip(t *testing.T) {
	// Every non-branch instruction the disassembler emits should
	// re-assemble to the identical word.
	p := mustAsm(t, `
		.text 0x0
	main:
		addu $v0, $a0, $a1
		sub $t0, $t1, $t2
		and $t3, $t4, $t5
		nor $s0, $s1, $s2
		sll $t0, $t1, 7
		srav $t0, $t1, $t2
		mult $a0, $a1
		mfhi $t0
		addiu $sp, $sp, -64
		ori $t0, $zero, 0xffff
		lui $gp, 0x1000
		lw $t0, 12($sp)
		sb $t1, -3($a0)
		jr $ra
		syscall
		break
	`)
	for _, cw := range p.CodeWords() {
		text := isa.Disasm(cw.Addr, cw.W)
		q, err := Assemble(".text 0x0\nmain:\n" + text + "\n")
		if err != nil {
			t.Errorf("%q does not re-assemble: %v", text, err)
			continue
		}
		if got := q.CodeWords()[0].W; got != cw.W {
			t.Errorf("%q round-trips to %08x, want %08x", text, uint32(got), uint32(cw.W))
		}
	}
}

func TestCodeWordHelpers(t *testing.T) {
	p := mustAsm(t, `
		.text 0x10
	main:
		nop
		break
		.data 0x100
	d:	.word 7
	`)
	if w, ok := p.WordAt(0x10); !ok || w != isa.NOP {
		t.Error("WordAt(0x10) failed")
	}
	if _, ok := p.WordAt(0x100); ok {
		t.Error("WordAt on data segment should fail")
	}
	if !p.IsCode(0x14) || p.IsCode(0x100) || p.IsCode(0x5000) {
		t.Error("IsCode misclassifies")
	}
	if p.Size() != 12 {
		t.Errorf("Size = %d, want 12", p.Size())
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("bogus instruction here")
}
