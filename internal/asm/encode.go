package asm

import (
	"strings"

	"sdmmon/internal/isa"
)

// encodeInstr translates one (possibly pseudo) instruction statement into
// machine words.
func (a *assembler) encodeInstr(st *stmt) ([]isa.Word, error) {
	mn := st.mnemonic
	switch mn {
	case "nop", "halt", "ret", "syscall", "break":
		if len(st.ops) != 0 {
			return nil, a.errf(st, "%s takes no operands", mn)
		}
	}
	switch mn {
	// --- pseudo-instructions ---
	case "nop":
		return []isa.Word{isa.NOP}, nil
	case "halt":
		return []isa.Word{isa.EncodeR(isa.FnBREAK, 0, 0, 0, 0)}, nil
	case "move":
		rd, rs, err := a.reg2(st)
		if err != nil {
			return nil, err
		}
		return []isa.Word{isa.EncodeR(isa.FnADDU, rs, isa.RegZero, rd, 0)}, nil
	case "not":
		rd, rs, err := a.reg2(st)
		if err != nil {
			return nil, err
		}
		return []isa.Word{isa.EncodeR(isa.FnNOR, rs, isa.RegZero, rd, 0)}, nil
	case "neg":
		rd, rs, err := a.reg2(st)
		if err != nil {
			return nil, err
		}
		return []isa.Word{isa.EncodeR(isa.FnSUB, isa.RegZero, rs, rd, 0)}, nil
	case "li":
		if len(st.ops) != 2 {
			return nil, a.errf(st, "li needs rt, imm")
		}
		rt, err := a.reg(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		v, err := a.eval(st.ops[1], st, true)
		if err != nil {
			return nil, err
		}
		return encodeLI(rt, v), nil
	case "la":
		if len(st.ops) != 2 {
			return nil, a.errf(st, "la needs rt, symbol")
		}
		rt, err := a.reg(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		v, err := a.eval(st.ops[1], st, true)
		if err != nil {
			return nil, err
		}
		return []isa.Word{
			isa.EncodeI(isa.OpLUI, 0, rt, uint16(v>>16)),
			isa.EncodeI(isa.OpORI, rt, rt, uint16(v)),
		}, nil
	case "b":
		if len(st.ops) != 1 {
			return nil, a.errf(st, "b needs a target")
		}
		off, err := a.branchOff(st, st.ops[0], st.addr)
		if err != nil {
			return nil, err
		}
		return []isa.Word{isa.EncodeI(isa.OpBEQ, isa.RegZero, isa.RegZero, off)}, nil
	case "beqz", "bnez":
		if len(st.ops) != 2 {
			return nil, a.errf(st, "%s needs rs, target", mn)
		}
		rs, err := a.reg(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		off, err := a.branchOff(st, st.ops[1], st.addr)
		if err != nil {
			return nil, err
		}
		op := isa.OpBEQ
		if mn == "bnez" {
			op = isa.OpBNE
		}
		return []isa.Word{isa.EncodeI(op, rs, isa.RegZero, off)}, nil
	case "blt", "bgt", "ble", "bge", "bltu", "bgtu", "bleu", "bgeu":
		return a.encodeCmpBranch(st, mn)
	case "push":
		if len(st.ops) != 1 {
			return nil, a.errf(st, "push needs a register")
		}
		rs, err := a.reg(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		return []isa.Word{
			isa.EncodeI(isa.OpADDIU, isa.RegSP, isa.RegSP, uint16(0xFFFC)), // sp -= 4
			isa.EncodeI(isa.OpSW, isa.RegSP, rs, 0),
		}, nil
	case "pop":
		if len(st.ops) != 1 {
			return nil, a.errf(st, "pop needs a register")
		}
		rt, err := a.reg(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		return []isa.Word{
			isa.EncodeI(isa.OpLW, isa.RegSP, rt, 0),
			isa.EncodeI(isa.OpADDIU, isa.RegSP, isa.RegSP, 4),
		}, nil
	case "call":
		if len(st.ops) != 1 {
			return nil, a.errf(st, "call needs a target")
		}
		v, err := a.eval(st.ops[0], st, true)
		if err != nil {
			return nil, err
		}
		return []isa.Word{isa.EncodeJ(isa.OpJAL, v)}, nil
	case "ret":
		return []isa.Word{isa.EncodeR(isa.FnJR, isa.RegRA, 0, 0, 0)}, nil

	// --- R-type three-register ---
	case "add", "addu", "sub", "subu", "and", "or", "xor", "nor", "slt", "sltu":
		rd, rs, rt, err := a.reg3(st)
		if err != nil {
			return nil, err
		}
		return []isa.Word{isa.EncodeR(rFn(mn), rs, rt, rd, 0)}, nil
	case "sllv", "srlv", "srav":
		// rd, rt, rs order in assembly.
		if len(st.ops) != 3 {
			return nil, a.errf(st, "%s needs rd, rt, rs", mn)
		}
		rd, err := a.reg(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		rt, err := a.reg(st, st.ops[1])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(st, st.ops[2])
		if err != nil {
			return nil, err
		}
		return []isa.Word{isa.EncodeR(rFn(mn), rs, rt, rd, 0)}, nil
	case "sll", "srl", "sra":
		if len(st.ops) != 3 {
			return nil, a.errf(st, "%s needs rd, rt, shamt", mn)
		}
		rd, err := a.reg(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		rt, err := a.reg(st, st.ops[1])
		if err != nil {
			return nil, err
		}
		sh, err := a.eval(st.ops[2], st, true)
		if err != nil {
			return nil, err
		}
		if sh > 31 {
			return nil, a.errf(st, "shift amount %d out of range", sh)
		}
		return []isa.Word{isa.EncodeR(rFn(mn), 0, rt, rd, sh)}, nil
	case "mult", "multu", "div", "divu":
		if len(st.ops) != 2 {
			return nil, a.errf(st, "%s needs rs, rt", mn)
		}
		rs, err := a.reg(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		rt, err := a.reg(st, st.ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Word{isa.EncodeR(rFn(mn), rs, rt, 0, 0)}, nil
	case "mfhi", "mflo":
		if len(st.ops) != 1 {
			return nil, a.errf(st, "%s needs rd", mn)
		}
		rd, err := a.reg(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		return []isa.Word{isa.EncodeR(rFn(mn), 0, 0, rd, 0)}, nil
	case "mthi", "mtlo":
		if len(st.ops) != 1 {
			return nil, a.errf(st, "%s needs rs", mn)
		}
		rs, err := a.reg(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		return []isa.Word{isa.EncodeR(rFn(mn), rs, 0, 0, 0)}, nil
	case "jr":
		if len(st.ops) != 1 {
			return nil, a.errf(st, "jr needs rs")
		}
		rs, err := a.reg(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		return []isa.Word{isa.EncodeR(isa.FnJR, rs, 0, 0, 0)}, nil
	case "jalr":
		switch len(st.ops) {
		case 1:
			rs, err := a.reg(st, st.ops[0])
			if err != nil {
				return nil, err
			}
			return []isa.Word{isa.EncodeR(isa.FnJALR, rs, 0, isa.RegRA, 0)}, nil
		case 2:
			rd, err := a.reg(st, st.ops[0])
			if err != nil {
				return nil, err
			}
			rs, err := a.reg(st, st.ops[1])
			if err != nil {
				return nil, err
			}
			return []isa.Word{isa.EncodeR(isa.FnJALR, rs, 0, rd, 0)}, nil
		}
		return nil, a.errf(st, "jalr needs [rd,] rs")
	case "syscall":
		return []isa.Word{isa.EncodeR(isa.FnSYSCALL, 0, 0, 0, 0)}, nil
	case "break":
		return []isa.Word{isa.EncodeR(isa.FnBREAK, 0, 0, 0, 0)}, nil

	// --- I-type ALU ---
	case "addi", "addiu", "slti", "sltiu":
		rt, rs, imm, err := a.immArgs(st, true)
		if err != nil {
			return nil, err
		}
		return []isa.Word{isa.EncodeI(iOp(mn), rs, rt, imm)}, nil
	case "andi", "ori", "xori":
		rt, rs, imm, err := a.immArgs(st, false)
		if err != nil {
			return nil, err
		}
		return []isa.Word{isa.EncodeI(iOp(mn), rs, rt, imm)}, nil
	case "lui":
		if len(st.ops) != 2 {
			return nil, a.errf(st, "lui needs rt, imm")
		}
		rt, err := a.reg(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		v, err := a.eval(st.ops[1], st, true)
		if err != nil {
			return nil, err
		}
		if v > 0xFFFF {
			return nil, a.errf(st, "lui immediate 0x%x out of range", v)
		}
		return []isa.Word{isa.EncodeI(isa.OpLUI, 0, rt, uint16(v))}, nil

	// --- branches ---
	case "beq", "bne":
		if len(st.ops) != 3 {
			return nil, a.errf(st, "%s needs rs, rt, target", mn)
		}
		rs, err := a.reg(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		rt, err := a.reg(st, st.ops[1])
		if err != nil {
			return nil, err
		}
		off, err := a.branchOff(st, st.ops[2], st.addr)
		if err != nil {
			return nil, err
		}
		return []isa.Word{isa.EncodeI(iOp(mn), rs, rt, off)}, nil
	case "blez", "bgtz":
		if len(st.ops) != 2 {
			return nil, a.errf(st, "%s needs rs, target", mn)
		}
		rs, err := a.reg(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		off, err := a.branchOff(st, st.ops[1], st.addr)
		if err != nil {
			return nil, err
		}
		return []isa.Word{isa.EncodeI(iOp(mn), rs, 0, off)}, nil
	case "bltz", "bgez", "bltzal", "bgezal":
		if len(st.ops) != 2 {
			return nil, a.errf(st, "%s needs rs, target", mn)
		}
		rs, err := a.reg(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		off, err := a.branchOff(st, st.ops[1], st.addr)
		if err != nil {
			return nil, err
		}
		var rt uint32
		switch mn {
		case "bltz":
			rt = isa.RtBLTZ
		case "bgez":
			rt = isa.RtBGEZ
		case "bltzal":
			rt = isa.RtBLTZAL
		case "bgezal":
			rt = isa.RtBGEZAL
		}
		return []isa.Word{isa.EncodeI(isa.OpRegImm, rs, rt, off)}, nil

	// --- jumps ---
	case "j", "jal":
		if len(st.ops) != 1 {
			return nil, a.errf(st, "%s needs a target", mn)
		}
		v, err := a.eval(st.ops[0], st, true)
		if err != nil {
			return nil, err
		}
		op := isa.OpJ
		if mn == "jal" {
			op = isa.OpJAL
		}
		return []isa.Word{isa.EncodeJ(op, v)}, nil

	// --- memory ---
	case "lb", "lh", "lw", "lbu", "lhu", "sb", "sh", "sw":
		if len(st.ops) != 2 {
			return nil, a.errf(st, "%s needs rt, off(rs)", mn)
		}
		rt, err := a.reg(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		off, rs, err := a.memOperand(st, st.ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Word{isa.EncodeI(iOp(mn), rs, rt, off)}, nil
	}
	return nil, a.errf(st, "unknown mnemonic %q", mn)
}

func encodeLI(rt, v uint32) []isa.Word {
	if int32(v) >= -32768 && int32(v) <= 32767 {
		return []isa.Word{isa.EncodeI(isa.OpADDIU, isa.RegZero, rt, uint16(v))}
	}
	if v <= 0xFFFF {
		return []isa.Word{isa.EncodeI(isa.OpORI, isa.RegZero, rt, uint16(v))}
	}
	return []isa.Word{
		isa.EncodeI(isa.OpLUI, 0, rt, uint16(v>>16)),
		isa.EncodeI(isa.OpORI, rt, rt, uint16(v)),
	}
}

// encodeCmpBranch expands blt/bgt/ble/bge (+unsigned) into slt(u) $at + branch.
func (a *assembler) encodeCmpBranch(st *stmt, mn string) ([]isa.Word, error) {
	if len(st.ops) != 3 {
		return nil, a.errf(st, "%s needs rs, rt, target", mn)
	}
	rs, err := a.reg(st, st.ops[0])
	if err != nil {
		return nil, err
	}
	rt, err := a.reg(st, st.ops[1])
	if err != nil {
		return nil, err
	}
	// The branch is the second emitted word.
	off, err := a.branchOff(st, st.ops[2], st.addr+4)
	if err != nil {
		return nil, err
	}
	fn := isa.FnSLT
	if strings.HasSuffix(mn, "u") {
		fn = isa.FnSLTU
		mn = mn[:len(mn)-1]
	}
	var slt isa.Word
	var br isa.Word
	switch mn {
	case "blt": // rs < rt
		slt = isa.EncodeR(fn, rs, rt, isa.RegAT, 0)
		br = isa.EncodeI(isa.OpBNE, isa.RegAT, isa.RegZero, off)
	case "bge": // !(rs < rt)
		slt = isa.EncodeR(fn, rs, rt, isa.RegAT, 0)
		br = isa.EncodeI(isa.OpBEQ, isa.RegAT, isa.RegZero, off)
	case "bgt": // rt < rs
		slt = isa.EncodeR(fn, rt, rs, isa.RegAT, 0)
		br = isa.EncodeI(isa.OpBNE, isa.RegAT, isa.RegZero, off)
	case "ble": // !(rt < rs)
		slt = isa.EncodeR(fn, rt, rs, isa.RegAT, 0)
		br = isa.EncodeI(isa.OpBEQ, isa.RegAT, isa.RegZero, off)
	}
	return []isa.Word{slt, br}, nil
}

func rFn(mn string) uint32 {
	switch mn {
	case "add":
		return isa.FnADD
	case "addu":
		return isa.FnADDU
	case "sub":
		return isa.FnSUB
	case "subu":
		return isa.FnSUBU
	case "and":
		return isa.FnAND
	case "or":
		return isa.FnOR
	case "xor":
		return isa.FnXOR
	case "nor":
		return isa.FnNOR
	case "slt":
		return isa.FnSLT
	case "sltu":
		return isa.FnSLTU
	case "sll":
		return isa.FnSLL
	case "srl":
		return isa.FnSRL
	case "sra":
		return isa.FnSRA
	case "sllv":
		return isa.FnSLLV
	case "srlv":
		return isa.FnSRLV
	case "srav":
		return isa.FnSRAV
	case "mult":
		return isa.FnMULT
	case "multu":
		return isa.FnMULTU
	case "div":
		return isa.FnDIV
	case "divu":
		return isa.FnDIVU
	case "mfhi":
		return isa.FnMFHI
	case "mflo":
		return isa.FnMFLO
	case "mthi":
		return isa.FnMTHI
	case "mtlo":
		return isa.FnMTLO
	}
	panic("rFn: " + mn)
}

func iOp(mn string) uint32 {
	switch mn {
	case "addi":
		return isa.OpADDI
	case "addiu":
		return isa.OpADDIU
	case "slti":
		return isa.OpSLTI
	case "sltiu":
		return isa.OpSLTIU
	case "andi":
		return isa.OpANDI
	case "ori":
		return isa.OpORI
	case "xori":
		return isa.OpXORI
	case "beq":
		return isa.OpBEQ
	case "bne":
		return isa.OpBNE
	case "blez":
		return isa.OpBLEZ
	case "bgtz":
		return isa.OpBGTZ
	case "lb":
		return isa.OpLB
	case "lh":
		return isa.OpLH
	case "lw":
		return isa.OpLW
	case "lbu":
		return isa.OpLBU
	case "lhu":
		return isa.OpLHU
	case "sb":
		return isa.OpSB
	case "sh":
		return isa.OpSH
	case "sw":
		return isa.OpSW
	}
	panic("iOp: " + mn)
}

// --- operand helpers -----------------------------------------------------

func (a *assembler) reg(st *stmt, op string) (uint32, error) {
	r, ok := isa.RegNumber(strings.TrimSpace(op))
	if !ok {
		return 0, a.errf(st, "bad register %q", op)
	}
	return r, nil
}

func (a *assembler) reg2(st *stmt) (r1, r2 uint32, err error) {
	if len(st.ops) != 2 {
		return 0, 0, a.errf(st, "%s needs two registers", st.mnemonic)
	}
	if r1, err = a.reg(st, st.ops[0]); err != nil {
		return
	}
	r2, err = a.reg(st, st.ops[1])
	return
}

func (a *assembler) reg3(st *stmt) (rd, rs, rt uint32, err error) {
	if len(st.ops) != 3 {
		return 0, 0, 0, a.errf(st, "%s needs rd, rs, rt", st.mnemonic)
	}
	if rd, err = a.reg(st, st.ops[0]); err != nil {
		return
	}
	if rs, err = a.reg(st, st.ops[1]); err != nil {
		return
	}
	rt, err = a.reg(st, st.ops[2])
	return
}

// immArgs parses "rt, rs, imm". signed selects the immediate range check.
func (a *assembler) immArgs(st *stmt, signed bool) (rt, rs uint32, imm uint16, err error) {
	if len(st.ops) != 3 {
		return 0, 0, 0, a.errf(st, "%s needs rt, rs, imm", st.mnemonic)
	}
	if rt, err = a.reg(st, st.ops[0]); err != nil {
		return
	}
	if rs, err = a.reg(st, st.ops[1]); err != nil {
		return
	}
	var v uint32
	if v, err = a.eval(st.ops[2], st, true); err != nil {
		return
	}
	if signed {
		if int32(v) < -32768 || int32(v) > 32767 {
			err = a.errf(st, "immediate %d out of signed 16-bit range", int32(v))
			return
		}
	} else if v > 0xFFFF {
		err = a.errf(st, "immediate 0x%x out of unsigned 16-bit range", v)
		return
	}
	imm = uint16(v)
	return
}

// branchOff computes the 16-bit branch offset from the instruction at
// brAddr to the target expression.
func (a *assembler) branchOff(st *stmt, expr string, brAddr uint32) (uint16, error) {
	t, err := a.eval(expr, st, true)
	if err != nil {
		return 0, err
	}
	diff := int64(t) - int64(brAddr) - 4
	if diff&3 != 0 {
		return 0, a.errf(st, "branch target 0x%x not word aligned", t)
	}
	off := diff >> 2
	if off < -32768 || off > 32767 {
		return 0, a.errf(st, "branch target 0x%x out of range", t)
	}
	return uint16(int16(off)), nil
}

// memOperand parses "off(rs)" — the offset may be any expression, including
// a parenthesized one, so the register is delimited by the LAST balanced
// paren group, which must close the operand.
func (a *assembler) memOperand(st *stmt, op string) (off uint16, rs uint32, err error) {
	op = strings.TrimSpace(op)
	if len(op) == 0 || op[len(op)-1] != ')' {
		return 0, 0, a.errf(st, "bad memory operand %q", op)
	}
	depth := 0
	lp := -1
	for i := len(op) - 1; i >= 0; i-- {
		switch op[i] {
		case ')':
			depth++
		case '(':
			depth--
			if depth == 0 {
				lp = i
			}
		}
		if lp >= 0 {
			break
		}
	}
	if lp < 0 {
		return 0, 0, a.errf(st, "bad memory operand %q", op)
	}
	rp := len(op) - 1
	regPart := op[lp+1 : rp]
	offPart := strings.TrimSpace(op[:lp])
	if rs, err = a.reg(st, regPart); err != nil {
		return
	}
	var v uint32
	if offPart == "" {
		v = 0
	} else if v, err = a.eval(offPart, st, true); err != nil {
		return
	}
	if int32(v) < -32768 || int32(v) > 32767 {
		err = a.errf(st, "memory offset %d out of range", int32(v))
		return
	}
	off = uint16(v)
	return
}
