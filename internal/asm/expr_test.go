package asm

import (
	"strings"
	"testing"

	"sdmmon/internal/isa"
)

// exprValue assembles "li $t0, <expr>" and extracts the loaded constant.
func exprValue(t *testing.T, expr string) uint32 {
	t.Helper()
	p, err := Assemble(".equ BASE, 0x1000\n.equ N, 5\n.text 0x0\nmain:\n la $t0, " + expr + "\n break\n")
	if err != nil {
		t.Fatalf("%q: %v", expr, err)
	}
	ws := p.CodeWords()
	hi := uint32(ws[0].W.Imm())
	lo := uint32(ws[1].W.Imm())
	return hi<<16 | lo
}

func TestExpressionPrecedence(t *testing.T) {
	cases := map[string]uint32{
		"1+2*3":             7,
		"(1+2)*3":           9,
		"16/4/2":            2,
		"17%5":              2,
		"1<<4":              16,
		"0xF0>>4":           0xF,
		"1<<4+1":            32, // shift binds looser than sum
		"0xFF&0x0F":         0x0F,
		"0xF0|0x0F":         0xFF,
		"0xFF^0x0F":         0xF0,
		"~0":                0xFFFFFFFF,
		"-1":                0xFFFFFFFF,
		"-(2+3)":            0xFFFFFFFB,
		"BASE+N*4":          0x1014,
		"(BASE>>8)&0xF":     0x0,
		"BASE|N":            0x1005,
		"'A'":               65,
		"'\\n'":             10,
		"'A'+1":             66,
		"0b1010":            10,
		"0o17":              15,
		"2*(N+(1<<2))":      18,
		"1 + 2 * ( 3 - 1 )": 5,
	}
	for expr, want := range cases {
		if got := exprValue(t, expr); got != want {
			t.Errorf("%q = %#x, want %#x", expr, got, want)
		}
	}
}

func TestExpressionErrors(t *testing.T) {
	cases := []struct{ expr, frag string }{
		{"(1+2", "missing ')'"},
		{"1/0", "division by zero"},
		{"5%0", "modulo by zero"},
		{"1<<40", "out of range"},
		{"nope+1", "undefined symbol"},
		{"1 2", "trailing"},
		{"$t0", "unexpected"},
	}
	for _, c := range cases {
		_, err := Assemble(".text 0x0\nmain:\n la $t0, " + c.expr + "\n")
		if err == nil {
			t.Errorf("%q accepted", c.expr)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%q: error %q does not mention %q", c.expr, err, c.frag)
		}
	}
}

func TestParenthesizedMemoryOffset(t *testing.T) {
	p, err := Assemble(`
		.equ SLOT, 3
		.text 0x0
	main:
		lw $t0, (SLOT*4)($sp)
		sw $t1, (SLOT+1)*4($sp)
		lw $t2, 8($sp)
		break
	`)
	if err != nil {
		t.Fatal(err)
	}
	ws := p.CodeWords()
	if ws[0].W.SImm() != 12 {
		t.Errorf("lw offset = %d, want 12", ws[0].W.SImm())
	}
	if ws[1].W.SImm() != 16 {
		t.Errorf("sw offset = %d, want 16", ws[1].W.SImm())
	}
	if ws[2].W.SImm() != 8 {
		t.Errorf("plain offset = %d, want 8", ws[2].W.SImm())
	}
	if ws[0].W.Rs() != isa.RegSP || ws[1].W.Rs() != isa.RegSP {
		t.Error("base register wrong")
	}
}

func TestExpressionInDirectives(t *testing.T) {
	p := MustAssemble(`
		.equ SIZE, 8
		.text 0x0
	main:
		break
		.data 0x1000
	tbl:	.word SIZE*4, SIZE<<1, ~SIZE&0xFF
		.space SIZE*2
	end:	.byte 1
	`)
	img, _ := p.Image()
	if got := uint32(img[0x1000])<<24 | uint32(img[0x1001])<<16 | uint32(img[0x1002])<<8 | uint32(img[0x1003]); got != 32 {
		t.Errorf("word 0 = %d", got)
	}
	if p.Symbols["end"] != 0x1000+12+16 {
		t.Errorf("end = %#x", p.Symbols["end"])
	}
}
