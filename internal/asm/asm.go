package asm

import (
	"fmt"
	"strings"

	"sdmmon/internal/isa"
)

// Error is an assembly error annotated with the source line that caused it.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// Assemble translates MIPS assembly source into a Program. The dialect:
//
//	label:  mnemonic op1, op2, op3    # comment
//
// Directives: .text [addr], .data [addr], .org addr, .align n, .space n,
// .word e[, e...], .half ..., .byte ..., .ascii "s", .asciiz "s",
// .equ name, value, .globl name (accepted, ignored).
//
// Pseudo-instructions: nop, li, la, move, b, beqz, bnez, blt/bgt/ble/bge
// (+u), not, neg, push, pop, call, ret, halt (break).
//
// The entry point is the symbol "main" if defined, otherwise the first code
// address.
func Assemble(src string) (*Program, error) {
	a := &assembler{
		symbols: map[string]uint32{},
		equs:    map[string]uint32{},
	}
	if err := a.parse(src); err != nil {
		return nil, err
	}
	if err := a.layout(); err != nil {
		return nil, err
	}
	if err := a.encode(); err != nil {
		return nil, err
	}
	return a.finish()
}

// MustAssemble is Assemble but panics on error; used for the built-in
// applications whose sources are compile-time constants.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

type stmtKind int

const (
	stInstr stmtKind = iota
	stDirective
)

type stmt struct {
	line     int
	kind     stmtKind
	labels   []string
	mnemonic string   // lower-cased instruction or directive (with '.')
	ops      []string // raw operand strings
	addr     uint32   // assigned in layout
	size     uint32   // bytes occupied, assigned in layout
	code     bool     // belongs to a code region
}

type assembler struct {
	stmts   []stmt
	symbols map[string]uint32 // labels
	equs    map[string]uint32 // .equ constants
	segs    []Segment
}

// --- Pass 0: parse lines into statements -------------------------------

func (a *assembler) parse(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		s := stripComment(raw)
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		// Peel off leading labels.
		var labels []string
		for {
			idx := strings.Index(s, ":")
			if idx < 0 {
				break
			}
			cand := strings.TrimSpace(s[:idx])
			if !isIdent(cand) {
				break
			}
			labels = append(labels, cand)
			s = strings.TrimSpace(s[idx+1:])
		}
		if s == "" {
			if len(labels) > 0 {
				a.stmts = append(a.stmts, stmt{line: line, kind: stInstr, labels: labels, mnemonic: "", size: 0})
			}
			continue
		}
		mn, rest := splitMnemonic(s)
		mn = strings.ToLower(mn)
		st := stmt{line: line, labels: labels, mnemonic: mn, ops: splitOperands(rest)}
		if strings.HasPrefix(mn, ".") {
			st.kind = stDirective
		}
		a.stmts = append(a.stmts, st)
	}
	return nil
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '"' {
			inStr = !inStr
			continue
		}
		if inStr {
			if c == '\\' {
				i++
			}
			continue
		}
		if c == '#' || c == ';' {
			return s[:i]
		}
		if c == '/' && i+1 < len(s) && s[i+1] == '/' {
			return s[:i]
		}
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func splitMnemonic(s string) (mn, rest string) {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' {
			return s[:i], strings.TrimSpace(s[i:])
		}
	}
	return s, ""
}

// splitOperands splits on commas at top level (not inside quoted strings or
// parentheses).
func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	depth, inStr, start := 0, false, 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

// --- Pass 1: layout (assign addresses, define symbols) ------------------

func (a *assembler) layout() error {
	lc := uint32(0)
	code := true
	dataNext := uint32(0) // running high-water mark for implicit .data
	hiWater := func() uint32 {
		if lc > dataNext {
			return lc
		}
		return dataNext
	}
	for i := range a.stmts {
		st := &a.stmts[i]
		st.addr = lc
		st.code = code

		if st.kind == stDirective {
			switch st.mnemonic {
			case ".equ":
				if len(st.ops) != 2 {
					return a.errf(st, ".equ needs name, value")
				}
				v, err := a.eval(st.ops[1], st, false)
				if err != nil {
					return err
				}
				a.equs[st.ops[0]] = v
				a.defineLabels(st, lc)
				continue
			case ".text":
				if len(st.ops) == 1 {
					v, err := a.eval(st.ops[0], st, false)
					if err != nil {
						return err
					}
					if v > MaxAddress {
						return a.errf(st, "address 0x%x exceeds the cap", v)
					}
					lc = v
				}
				code = true
				st.addr, st.code = lc, code
				a.defineLabels(st, lc)
				continue
			case ".data":
				dataNext = hiWater()
				if len(st.ops) == 1 {
					v, err := a.eval(st.ops[0], st, false)
					if err != nil {
						return err
					}
					if v > MaxAddress {
						return a.errf(st, "address 0x%x exceeds the cap", v)
					}
					lc = v
				} else {
					lc = align4(dataNext)
				}
				code = false
				st.addr, st.code = lc, code
				a.defineLabels(st, lc)
				continue
			case ".org":
				if len(st.ops) != 1 {
					return a.errf(st, ".org needs an address")
				}
				v, err := a.eval(st.ops[0], st, false)
				if err != nil {
					return err
				}
				if v > MaxAddress {
					return a.errf(st, "address 0x%x exceeds the cap", v)
				}
				lc = v
				st.addr = lc
				a.defineLabels(st, lc)
				continue
			case ".align":
				if len(st.ops) != 1 {
					return a.errf(st, ".align needs a power")
				}
				v, err := a.eval(st.ops[0], st, false)
				if err != nil {
					return err
				}
				mask := (uint32(1) << v) - 1
				old := lc
				lc = (lc + mask) &^ mask
				st.addr, st.size = old, lc-old
				a.defineLabels(st, lc)
				continue
			case ".globl", ".global", ".ent", ".end", ".set":
				a.defineLabels(st, lc)
				continue
			}
		}

		a.defineLabels(st, lc)
		sz, err := a.sizeOf(st)
		if err != nil {
			return err
		}
		st.size = sz
		lc += sz
		if lc > MaxAddress {
			return a.errf(st, "program exceeds the %d-byte address cap", MaxAddress)
		}
	}
	return nil
}

func (a *assembler) defineLabels(st *stmt, at uint32) {
	for _, l := range st.labels {
		a.symbols[l] = at
	}
}

func align4(v uint32) uint32 { return (v + 3) &^ 3 }

// sizeOf returns the byte size a statement occupies.
func (a *assembler) sizeOf(st *stmt) (uint32, error) {
	if st.mnemonic == "" {
		return 0, nil
	}
	if st.kind == stDirective {
		switch st.mnemonic {
		case ".word", ".half", ".byte":
			if len(st.ops) == 0 {
				return 0, a.errf(st, "%s needs at least one value", st.mnemonic)
			}
			switch st.mnemonic {
			case ".word":
				return uint32(4 * len(st.ops)), nil
			case ".half":
				return uint32(2 * len(st.ops)), nil
			}
			return uint32(len(st.ops)), nil
		case ".space":
			v, err := a.eval(st.ops[0], st, false)
			return v, err
		case ".ascii", ".asciiz":
			if len(st.ops) != 1 {
				return 0, a.errf(st, "%s needs one string", st.mnemonic)
			}
			s, err := parseString(st.ops[0])
			if err != nil {
				return 0, a.errf(st, "%v", err)
			}
			n := uint32(len(s))
			if st.mnemonic == ".asciiz" {
				n++
			}
			return n, nil
		}
		return 0, a.errf(st, "unknown directive %q", st.mnemonic)
	}
	// Instructions: everything is 4 bytes except multi-word pseudos.
	switch st.mnemonic {
	case "la":
		return 8, nil
	case "li":
		if len(st.ops) != 2 {
			return 0, a.errf(st, "li needs rt, imm")
		}
		v, err := a.eval(st.ops[1], st, false)
		if err != nil {
			return 0, a.errf(st, "li needs a constant known at its point of use (use la for addresses)")
		}
		if int32(v) >= -32768 && int32(v) <= 32767 {
			return 4, nil
		}
		if v <= 0xFFFF {
			return 4, nil
		}
		return 8, nil
	case "blt", "bgt", "ble", "bge", "bltu", "bgtu", "bleu", "bgeu":
		return 8, nil
	case "push", "pop":
		return 8, nil
	}
	return 4, nil
}

// --- Pass 2: encode ------------------------------------------------------

type chunk struct {
	addr uint32
	data []byte
	code bool
}

func (a *assembler) encode() error {
	var chunks []chunk
	emit := func(st *stmt, data []byte) {
		chunks = append(chunks, chunk{addr: st.addr, data: data, code: st.code})
	}
	emitWords := func(st *stmt, ws ...isa.Word) {
		data := make([]byte, 4*len(ws))
		for i, w := range ws {
			putBE32(data[4*i:], uint32(w))
		}
		emit(st, data)
	}

	for i := range a.stmts {
		st := &a.stmts[i]
		if st.mnemonic == "" {
			continue
		}
		if st.kind == stDirective {
			switch st.mnemonic {
			case ".equ", ".text", ".data", ".org", ".globl", ".global", ".ent", ".end", ".set":
				continue
			case ".align":
				if st.size > 0 {
					emit(st, make([]byte, st.size))
				}
				continue
			case ".space":
				emit(st, make([]byte, st.size))
				continue
			case ".word":
				data := make([]byte, 4*len(st.ops))
				for j, op := range st.ops {
					v, err := a.eval(op, st, true)
					if err != nil {
						return err
					}
					putBE32(data[4*j:], v)
				}
				emit(st, data)
				continue
			case ".half":
				data := make([]byte, 2*len(st.ops))
				for j, op := range st.ops {
					v, err := a.eval(op, st, true)
					if err != nil {
						return err
					}
					data[2*j] = byte(v >> 8)
					data[2*j+1] = byte(v)
				}
				emit(st, data)
				continue
			case ".byte":
				data := make([]byte, len(st.ops))
				for j, op := range st.ops {
					v, err := a.eval(op, st, true)
					if err != nil {
						return err
					}
					data[j] = byte(v)
				}
				emit(st, data)
				continue
			case ".ascii", ".asciiz":
				s, err := parseString(st.ops[0])
				if err != nil {
					return a.errf(st, "%v", err)
				}
				if st.mnemonic == ".asciiz" {
					s = append(s, 0)
				}
				emit(st, s)
				continue
			}
		}
		ws, err := a.encodeInstr(st)
		if err != nil {
			return err
		}
		if uint32(4*len(ws)) != st.size {
			return a.errf(st, "internal: size mismatch for %q (%d != %d)", st.mnemonic, 4*len(ws), st.size)
		}
		emitWords(st, ws...)
	}

	// Merge chunks into segments.
	a.segs = mergeChunks(chunks)
	return nil
}

func mergeChunks(chunks []chunk) []Segment {
	var nonEmpty []chunk
	for _, c := range chunks {
		if len(c.data) > 0 {
			nonEmpty = append(nonEmpty, c)
		}
	}
	if len(nonEmpty) == 0 {
		return nil
	}
	// Stable sort by address (layout already emits in address order per
	// region, but .org can jump around).
	for i := 1; i < len(nonEmpty); i++ {
		for j := i; j > 0 && nonEmpty[j].addr < nonEmpty[j-1].addr; j-- {
			nonEmpty[j], nonEmpty[j-1] = nonEmpty[j-1], nonEmpty[j]
		}
	}
	var segs []Segment
	cur := Segment{Addr: nonEmpty[0].addr, Code: nonEmpty[0].code}
	cur.Data = append(cur.Data, nonEmpty[0].data...)
	for _, c := range nonEmpty[1:] {
		if c.addr == cur.Addr+uint32(len(cur.Data)) && c.code == cur.Code {
			cur.Data = append(cur.Data, c.data...)
			continue
		}
		segs = append(segs, cur)
		cur = Segment{Addr: c.addr, Code: c.code, Data: append([]byte(nil), c.data...)}
	}
	segs = append(segs, cur)
	return segs
}

func (a *assembler) finish() (*Program, error) {
	p := &Program{Segments: a.segs, Symbols: a.symbols}
	if e, ok := a.symbols["main"]; ok {
		p.Entry = e
	} else {
		for _, s := range a.segs {
			if s.Code {
				p.Entry = s.Addr
				break
			}
		}
	}
	// Overlap check.
	for i := 0; i < len(a.segs); i++ {
		for j := i + 1; j < len(a.segs); j++ {
			aSeg, bSeg := a.segs[i], a.segs[j]
			aEnd := aSeg.Addr + uint32(len(aSeg.Data))
			bEnd := bSeg.Addr + uint32(len(bSeg.Data))
			if aSeg.Addr < bEnd && bSeg.Addr < aEnd {
				return nil, fmt.Errorf("asm: overlapping segments at 0x%x and 0x%x", aSeg.Addr, bSeg.Addr)
			}
		}
	}
	return p, nil
}

func putBE32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

// --- Expression evaluation ----------------------------------------------

// eval resolves an operand expression (full precedence with parentheses;
// see internal/asm/expr.go for the grammar).
func (a *assembler) eval(expr string, st *stmt, labels bool) (uint32, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return 0, a.errf(st, "empty expression")
	}
	return a.evalExpr(expr, st, labels)
}

func parseString(op string) ([]byte, error) {
	op = strings.TrimSpace(op)
	if len(op) < 2 || op[0] != '"' || op[len(op)-1] != '"' {
		return nil, fmt.Errorf("expected quoted string, got %q", op)
	}
	body := op[1 : len(op)-1]
	var out []byte
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			out = append(out, c)
			continue
		}
		i++
		if i >= len(body) {
			return nil, fmt.Errorf("trailing backslash in string")
		}
		switch body[i] {
		case 'n':
			out = append(out, '\n')
		case 't':
			out = append(out, '\t')
		case '0':
			out = append(out, 0)
		case '\\':
			out = append(out, '\\')
		case '"':
			out = append(out, '"')
		default:
			return nil, fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return out, nil
}

func (a *assembler) errf(st *stmt, format string, args ...interface{}) error {
	return &Error{Line: st.line, Msg: fmt.Sprintf(format, args...)}
}
