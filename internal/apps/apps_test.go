package apps

import (
	"bytes"
	"encoding/binary"
	"testing"

	"sdmmon/internal/packet"
)

func TestAllAppsAssemble(t *testing.T) {
	for _, a := range All() {
		p, err := a.Program()
		if err != nil {
			t.Errorf("%s: %v", a.Name, err)
			continue
		}
		if len(p.CodeWords()) == 0 {
			t.Errorf("%s: no code", a.Name)
		}
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("ipv4cm")
	if err != nil || a.Name != "ipv4cm" || !a.Vulnerable {
		t.Errorf("ByName(ipv4cm) = %v, %v", a, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown app accepted")
	}
}

func benignPacket(t *testing.T, optWords int, ttl uint8) []byte {
	t.Helper()
	opts := make([]byte, 4*optWords)
	for i := range opts {
		opts[i] = byte(0x40 + i)
	}
	p := &packet.IPv4{
		TOS:     0x10,
		ID:      7,
		TTL:     ttl,
		Proto:   packet.ProtoUDP,
		Src:     packet.IP(10, 0, 0, 1),
		Dst:     packet.IP(192, 168, 1, 2),
		Options: opts,
		Payload: (&packet.UDP{SrcPort: 5000, DstPort: 53, Payload: []byte("query")}).Marshal(),
	}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestIPv4CMMatchesReference(t *testing.T) {
	for _, app := range []*App{IPv4CM(), IPv4Safe()} {
		for _, optWords := range []int{0, 1, 2, 3, 4} { // ≤16 bytes: benign range
			for _, qdepth := range []int{0, 10, 33, 100} {
				pkt := benignPacket(t, optWords, 17)
				res, err := RunApp(app, pkt, qdepth)
				if err != nil {
					t.Fatal(err)
				}
				if res.Exc != nil {
					t.Fatalf("%s opts=%d: exception %v", app.Name, optWords, res.Exc)
				}
				ref := RefIPv4CM(pkt, qdepth)
				if res.Verdict != ref.Verdict {
					t.Errorf("%s opts=%d q=%d: verdict %d, ref %d",
						app.Name, optWords, qdepth, res.Verdict, ref.Verdict)
				}
				if !bytes.Equal(res.Packet, ref.Packet) {
					t.Errorf("%s opts=%d q=%d: packet mismatch\n got % x\n ref % x",
						app.Name, optWords, qdepth, res.Packet, ref.Packet)
				}
			}
		}
	}
}

func TestIPv4CMDropsBadPackets(t *testing.T) {
	app := IPv4CM()
	// TTL 0 drops.
	res, err := RunApp(app, benignPacket(t, 0, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictDrop {
		t.Error("TTL=0 packet forwarded")
	}
	// Version 6 drops.
	pkt := benignPacket(t, 0, 9)
	pkt[0] = 0x65
	res, err = RunApp(app, pkt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictDrop {
		t.Error("version-6 packet forwarded")
	}
	// Runt packet drops.
	res, err = RunApp(app, []byte{0x45, 0, 0, 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictDrop {
		t.Error("runt packet forwarded")
	}
}

func TestIPv4CMChecksumStaysValid(t *testing.T) {
	// After TTL decrement + incremental update, the checksum must still
	// verify.
	pkt := benignPacket(t, 2, 17)
	if !packet.ChecksumOK(pkt) {
		t.Fatal("generator produced bad checksum")
	}
	res, err := RunApp(IPv4CM(), pkt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !packet.ChecksumOK(res.Packet) {
		t.Error("checksum invalid after TTL decrement")
	}
	if res.Packet[8] != pkt[8]-1 {
		t.Error("TTL not decremented")
	}
}

func TestCongestionMarking(t *testing.T) {
	pkt := benignPacket(t, 0, 17)
	res, err := RunApp(IPv4CM(), pkt, CMThreshold+1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packet[1]&0x3 != 0x3 {
		t.Error("ECN CE not set under queue pressure")
	}
	res, err = RunApp(IPv4CM(), pkt, CMThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packet[1]&0x3 != 0 {
		t.Error("ECN CE set without queue pressure")
	}
}

func TestCMCounterPersists(t *testing.T) {
	prog, err := IPv4CM().Program()
	if err != nil {
		t.Fatal(err)
	}
	core := NewCore(prog)
	for i := 0; i < 5; i++ {
		res := core.Process(benignPacket(t, 0, 17), CMThreshold+10)
		if res.Exc != nil {
			t.Fatal(res.Exc)
		}
	}
	marked := binary.BigEndian.Uint32(core.Scratch(0, 4))
	if marked != 5 {
		t.Errorf("marked counter = %d, want 5", marked)
	}
}

func TestUDPEchoMatchesReference(t *testing.T) {
	pkt := benignPacket(t, 0, 9)
	res, err := RunApp(UDPEcho(), pkt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exc != nil {
		t.Fatal(res.Exc)
	}
	ref := RefUDPEcho(pkt)
	if res.Verdict != ref.Verdict || !bytes.Equal(res.Packet, ref.Packet) {
		t.Errorf("udpecho mismatch\n got % x\n ref % x", res.Packet, ref.Packet)
	}
	// Addresses really swapped.
	if !bytes.Equal(res.Packet[12:16], pkt[16:20]) || !bytes.Equal(res.Packet[16:20], pkt[12:16]) {
		t.Error("IPs not swapped")
	}
}

func TestUDPEchoIgnoresTCP(t *testing.T) {
	pkt := benignPacket(t, 0, 9)
	pkt[9] = packet.ProtoTCP
	res, err := RunApp(UDPEcho(), pkt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Packet, pkt) {
		t.Error("non-UDP packet modified")
	}
}

func TestCounterApp(t *testing.T) {
	prog, err := Counter().Program()
	if err != nil {
		t.Fatal(err)
	}
	core := NewCore(prog)
	protos := []uint8{17, 17, 6, 1, 17}
	for _, proto := range protos {
		pkt := benignPacket(t, 0, 9)
		pkt[9] = proto
		res := core.Process(pkt, 0)
		if res.Exc != nil {
			t.Fatal(res.Exc)
		}
		if res.Verdict != VerdictForward {
			t.Error("counter dropped a packet")
		}
	}
	if n := binary.BigEndian.Uint32(core.Scratch(17*4, 4)); n != 3 {
		t.Errorf("UDP count = %d, want 3", n)
	}
	if n := binary.BigEndian.Uint32(core.Scratch(6*4, 4)); n != 1 {
		t.Errorf("TCP count = %d, want 1", n)
	}
	if v, slot := RefCounter(benignPacket(t, 0, 9)); v != VerdictForward || slot != 17 {
		t.Errorf("RefCounter = %d, %d", v, slot)
	}
}

func TestOversizePacketDropped(t *testing.T) {
	prog, err := Counter().Program()
	if err != nil {
		t.Fatal(err)
	}
	core := NewCore(prog)
	res := core.Process(make([]byte, MemSize), 0)
	if res.Verdict != VerdictDrop {
		t.Error("oversize packet not dropped")
	}
}

func TestVulnerableOverflowSmashesStackWithoutMonitor(t *testing.T) {
	// The raw vulnerability, no monitor attached: a 40-byte option field
	// overruns the 16-byte buffer and clobbers the saved return address.
	// With garbage bytes the core wanders off and faults; the app must
	// *not* complete normally.
	opts := make([]byte, 40)
	for i := range opts {
		opts[i] = 0xEE
	}
	p := &packet.IPv4{TTL: 9, Proto: packet.ProtoUDP,
		Src: packet.IP(1, 2, 3, 4), Dst: packet.IP(5, 6, 7, 8),
		Options: opts, Payload: []byte("xx")}
	pkt, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunApp(IPv4CM(), pkt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exc == nil && res.Verdict == VerdictForward {
		t.Error("stack smash completed as a normal forward")
	}
	// The safe variant shrugs it off.
	res, err = RunApp(IPv4Safe(), pkt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exc != nil || res.Verdict != VerdictForward {
		t.Errorf("safe variant: exc=%v verdict=%d", res.Exc, res.Verdict)
	}
}
