// Package apps contains the packet-processing applications that run on the
// simulated PLASMA cores, written in the MIPS assembly dialect of
// internal/asm. The flagship application is IPv4 forwarding with congestion
// management ("IPv4+CM", the binary the prototype installs in §4.2) in two
// variants: the vulnerable one with an unchecked IP-option copy (the attack
// surface of Chasaki & Wolf that the hardware monitor must catch) and a
// bounds-checked one.
//
// Calling convention between the NP dispatcher (internal/npu) and an app:
//
//	$a0 = packet base address (PktBase), $a1 = packet length in bytes,
//	$a2 = current output-queue depth (for congestion management),
//	$sp = top of core-private memory.
//
// The app returns with break; $v0 holds the verdict: 0 = drop,
// 1 = forward. Packets are modified in place.
package apps

import (
	"fmt"
	"sync"

	"sdmmon/internal/asm"
)

// Memory map shared by the dispatcher and the applications.
const (
	// PktBase is where the dispatcher DMA-writes the packet.
	PktBase = 0x4000
	// ScratchBase is per-core persistent scratch (counters, tables).
	ScratchBase = 0x3800
	// MemSize is the per-core memory size.
	MemSize = 64 * 1024
	// StackTop is the initial stack pointer.
	StackTop = MemSize
	// CMThreshold is the queue depth above which congestion management
	// marks packets (ECN CE).
	CMThreshold = 32
	// OptBufSize is the on-stack option buffer of the vulnerable app.
	OptBufSize = 16
)

// Verdicts returned in $v0.
const (
	VerdictDrop    = 0
	VerdictForward = 1
)

// App is one packet-processing application.
type App struct {
	Name        string
	Description string
	Source      string
	Vulnerable  bool // has the unchecked option copy

	once sync.Once
	prog *asm.Program
	err  error
}

// Program assembles the application (cached).
func (a *App) Program() (*asm.Program, error) {
	a.once.Do(func() {
		a.prog, a.err = asm.Assemble(a.Source)
		if a.err != nil {
			a.err = fmt.Errorf("apps: %s: %w", a.Name, a.err)
		}
	})
	return a.prog, a.err
}

// All returns every built-in application.
func All() []*App {
	return []*App{IPv4CM(), IPv4Safe(), UDPEcho(), Counter(), ACL()}
}

// ByName looks up a built-in application.
func ByName(name string) (*App, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}

// common header shared by the sources.
const header = `
	.equ PKT, 0x4000
	.equ SCRATCH, 0x3800
	.equ CM_THRESH, 32
`

// IPv4CM returns the vulnerable IPv4-forwarding-with-congestion-management
// application: version check, TTL decrement with incremental checksum
// update, ECN marking under queue pressure, and an *unchecked* copy of IP
// options into a 16-byte stack buffer — a stack-smashing surface reachable
// from the wire.
func IPv4CM() *App {
	return &App{
		Name:        "ipv4cm",
		Description: "IPv4 forwarding + congestion marking (vulnerable option copy)",
		Vulnerable:  true,
		Source: header + `
	.text 0x0
main:
	jal process
	break                      # $v0 = verdict

# process(a0=pkt, a1=len, a2=qdepth) -> v0
process:
	addiu $sp, $sp, -24
	sw $ra, 20($sp)            # saved ra sits 4 bytes above the 16B buffer

	# -- header validation --
	slti $t0, $a1, 20          # runt packet?
	bnez $t0, drop
	lbu $t0, 0($a0)
	srl $t1, $t0, 4            # version
	li  $t2, 4
	bne $t1, $t2, drop
	andi $s0, $t0, 0xF         # ihl in words
	slti $t0, $s0, 5
	bnez $t0, drop

	# -- TTL --
	lbu $t3, 8($a0)
	beqz $t3, drop             # TTL expired
	addiu $t3, $t3, -1
	sb $t3, 8($a0)

	# -- incremental checksum update (RFC 1141: TTL -1 adds 0x0100) --
	lhu $t4, 10($a0)
	addiu $t4, $t4, 0x100
	srl $t5, $t4, 16           # fold carry
	andi $t4, $t4, 0xFFFF
	addu $t4, $t4, $t5
	sh $t4, 10($a0)

	# -- congestion management: ECN CE mark under queue pressure --
	li $t5, CM_THRESH
	ble $a2, $t5, no_cm
	lbu $t6, 1($a0)
	ori $t6, $t6, 0x3
	sb $t6, 1($a0)
	# count marked packets in scratch word 0
	li $t7, SCRATCH
	lw $t6, 0($t7)
	addiu $t6, $t6, 1
	sw $t6, 0($t7)
no_cm:

	# -- option processing (VULNERABLE: length from header, no clamp) --
	li $t7, 5
	ble $s0, $t7, fwd
	addiu $t8, $s0, -5
	sll $t8, $t8, 2            # option bytes = (ihl-5)*4, up to 40
	addiu $t0, $a0, 20         # src = options in packet
	move $t1, $sp              # dst = 16-byte stack buffer
	move $t2, $zero
copy:
	slt $at, $t2, $t8
	beqz $at, fwd
	addu $t3, $t0, $t2
	lbu $t4, 0($t3)
	addu $t5, $t1, $t2
	sb $t4, 0($t5)             # bytes 20..23 clobber the saved $ra
	addiu $t2, $t2, 1
	b copy

fwd:
	li $v0, 1
	lw $ra, 20($sp)
	addiu $sp, $sp, 24
	jr $ra
drop:
	li $v0, 0
	lw $ra, 20($sp)
	addiu $sp, $sp, 24
	jr $ra
`,
	}
}

// IPv4Safe returns the bounds-checked variant: identical processing, but
// the option copy clamps the length to the buffer size.
func IPv4Safe() *App {
	return &App{
		Name:        "ipv4safe",
		Description: "IPv4 forwarding + congestion marking (bounds-checked)",
		Source: header + `
	.text 0x0
main:
	jal process
	break

process:
	addiu $sp, $sp, -24
	sw $ra, 20($sp)

	slti $t0, $a1, 20
	bnez $t0, drop
	lbu $t0, 0($a0)
	srl $t1, $t0, 4
	li  $t2, 4
	bne $t1, $t2, drop
	andi $s0, $t0, 0xF
	slti $t0, $s0, 5
	bnez $t0, drop

	lbu $t3, 8($a0)
	beqz $t3, drop
	addiu $t3, $t3, -1
	sb $t3, 8($a0)

	lhu $t4, 10($a0)
	addiu $t4, $t4, 0x100
	srl $t5, $t4, 16
	andi $t4, $t4, 0xFFFF
	addu $t4, $t4, $t5
	sh $t4, 10($a0)

	li $t5, CM_THRESH
	ble $a2, $t5, no_cm
	lbu $t6, 1($a0)
	ori $t6, $t6, 0x3
	sb $t6, 1($a0)
no_cm:

	li $t7, 5
	ble $s0, $t7, fwd
	addiu $t8, $s0, -5
	sll $t8, $t8, 2
	# clamp to the buffer size: the one-line fix
	li $t9, 16
	ble $t8, $t9, clamped
	move $t8, $t9
clamped:
	addiu $t0, $a0, 20
	move $t1, $sp
	move $t2, $zero
copy:
	slt $at, $t2, $t8
	beqz $at, fwd
	addu $t3, $t0, $t2
	lbu $t4, 0($t3)
	addu $t5, $t1, $t2
	sb $t4, 0($t5)
	addiu $t2, $t2, 1
	b copy

fwd:
	li $v0, 1
	lw $ra, 20($sp)
	addiu $sp, $sp, 24
	jr $ra
drop:
	li $v0, 0
	lw $ra, 20($sp)
	addiu $sp, $sp, 24
	jr $ra
`,
	}
}

// UDPEcho returns a UDP echo responder: swaps IP addresses and UDP ports of
// UDP packets, forwards everything else unchanged.
func UDPEcho() *App {
	return &App{
		Name:        "udpecho",
		Description: "UDP echo: swap IP addresses and UDP ports",
		Source: header + `
	.text 0x0
main:
	slti $t0, $a1, 28          # IP + UDP minimum
	bnez $t0, fwd
	lbu $t0, 9($a0)            # protocol
	li  $t1, 17
	bne $t0, $t1, fwd

	# swap src/dst IP (words at 12 and 16)
	lw $t2, 12($a0)
	lw $t3, 16($a0)
	sw $t3, 12($a0)
	sw $t2, 16($a0)

	# header length -> start of UDP
	lbu $t4, 0($a0)
	andi $t4, $t4, 0xF
	sll $t4, $t4, 2
	addu $t5, $a0, $t4
	# swap UDP ports (halfwords at +0 and +2)
	lhu $t6, 0($t5)
	lhu $t7, 2($t5)
	sh $t7, 0($t5)
	sh $t6, 2($t5)
fwd:
	li $v0, 1
	break
`,
	}
}

// Counter returns a per-protocol packet counter: increments a 64-entry
// table in scratch memory keyed by (protocol & 0x3F) and forwards.
func Counter() *App {
	return &App{
		Name:        "counter",
		Description: "per-protocol packet counters in scratch memory",
		Source: header + `
	.text 0x0
main:
	slti $t0, $a1, 20
	bnez $t0, drop
	lbu $t0, 9($a0)            # protocol
	andi $t0, $t0, 0x3F
	sll $t0, $t0, 2
	li $t1, SCRATCH
	addu $t1, $t1, $t0
	lw $t2, 0($t1)
	addiu $t2, $t2, 1
	sw $t2, 0($t1)
	li $v0, 1
	break
drop:
	li $v0, 0
	break
`,
	}
}
