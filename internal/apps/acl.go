package apps

import "encoding/binary"

// ACL-related scratch layout: the rule count lives at ScratchBase+ACLCountOff,
// rules at ScratchBase+ACLRulesOff. Each rule is three words: source prefix,
// mask, action (0 = drop, 1 = forward).
const (
	ACLCountOff = 0xFC
	ACLRulesOff = 0x100
	ACLRuleSize = 12
	ACLMaxRules = 32
)

// ACL returns a stateful firewall application: the packet's source address
// is matched against a rule table in scratch memory (first match wins,
// default forward). Its nested lookup loop gives the monitor a deeper CFG
// than the forwarding apps.
func ACL() *App {
	return &App{
		Name:        "acl",
		Description: "source-address firewall with a scratch-memory rule table",
		Source: header + `
	.equ ACL_COUNT, 0x38FC
	.equ ACL_RULES, 0x3900
	.text 0x0
main:
	slti $t0, $a1, 20
	bnez $t0, drop
	lw $s0, 12($a0)           # source address
	li $t1, ACL_COUNT
	lw $t2, 0($t1)            # rule count
	li $t3, ACL_RULES
	move $t4, $zero           # rule index
loop:
	slt $at, $t4, $t2
	beqz $at, fwd             # no more rules: default forward
	lw $t5, 0($t3)            # prefix
	lw $t6, 4($t3)            # mask
	and $t8, $s0, $t6
	bne $t8, $t5, next
	lw $v0, 8($t3)            # matched: action is the verdict
	break
next:
	addiu $t3, $t3, 12
	addiu $t4, $t4, 1
	b loop
fwd:
	li $v0, 1
	break
drop:
	li $v0, 0
	break
`,
	}
}

// ACLRule is one firewall rule.
type ACLRule struct {
	Prefix  uint32
	Mask    uint32
	Forward bool
}

// InstallACLRules writes the rule table into a core's scratch memory.
func InstallACLRules(c *Core, rules []ACLRule) {
	if len(rules) > ACLMaxRules {
		rules = rules[:ACLMaxRules]
	}
	var cnt [4]byte
	binary.BigEndian.PutUint32(cnt[:], uint32(len(rules)))
	c.Mem().WriteBytes(uint32(ScratchBase+ACLCountOff), cnt[:])
	buf := make([]byte, ACLRuleSize*len(rules))
	for i, r := range rules {
		off := ACLRuleSize * i
		binary.BigEndian.PutUint32(buf[off:], r.Prefix)
		binary.BigEndian.PutUint32(buf[off+4:], r.Mask)
		action := uint32(0)
		if r.Forward {
			action = 1
		}
		binary.BigEndian.PutUint32(buf[off+8:], action)
	}
	c.Mem().WriteBytes(uint32(ScratchBase+ACLRulesOff), buf)
}

// RefACL is the Go reference model of the acl application.
func RefACL(pkt []byte, rules []ACLRule) int {
	if len(pkt) < 20 {
		return VerdictDrop
	}
	src := binary.BigEndian.Uint32(pkt[12:16])
	for _, r := range rules {
		if src&r.Mask == r.Prefix {
			if r.Forward {
				return VerdictForward
			}
			return VerdictDrop
		}
	}
	return VerdictForward
}
