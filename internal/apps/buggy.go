package apps

// FaultyEcho returns a deliberately broken release of the echo application:
// it performs a misaligned word load on every packet, raising an alignment
// exception the moment it runs traffic. It assembles cleanly, its monitoring
// graph extracts from its own binary, and it passes every cryptographic and
// self-check gate of the secure installation path — the failure only shows up
// under live traffic. That makes it the canonical bad canary for the staged
// rollout's health gate (network.UpgradeFleet): a regression no install-time
// check can catch. Deliberately NOT in All(): the application sweeps there
// assume fault-free binaries.
func FaultyEcho() *App {
	return &App{
		Name:        "udpecho",
		Description: "broken echo release: misaligned load faults on every packet",
		Source: header + `
	.text 0x0
main:
	lw $t0, 1($a0)             # misaligned: PKT+1 is never word-aligned
	li $v0, 1
	break
`,
	}
}
