package apps

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
	"sdmmon/internal/packet"
)

func aclRules() []ACLRule {
	return []ACLRule{
		{Prefix: 0x0A000000, Mask: 0xFF000000, Forward: false}, // drop 10.0.0.0/8
		{Prefix: 0xC0A80100, Mask: 0xFFFFFF00, Forward: true},  // allow 192.168.1.0/24
		{Prefix: 0xC0A80000, Mask: 0xFFFF0000, Forward: false}, // drop rest of 192.168/16
	}
}

func aclPacket(t *testing.T, src uint32) []byte {
	t.Helper()
	p := &packet.IPv4{
		TTL:     9,
		Proto:   packet.ProtoUDP,
		Src:     packet.IP(byte(src>>24), byte(src>>16), byte(src>>8), byte(src)),
		Dst:     packet.IP(8, 8, 8, 8),
		Payload: (&packet.UDP{SrcPort: 99, DstPort: 53, Payload: []byte("q")}).Marshal(),
	}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestACLMatchesReference(t *testing.T) {
	prog, err := ACL().Program()
	if err != nil {
		t.Fatal(err)
	}
	core := NewCore(prog)
	rules := aclRules()
	InstallACLRules(core, rules)

	cases := []uint32{
		0x0A010203, // 10.1.2.3 -> drop (rule 0)
		0xC0A80105, // 192.168.1.5 -> forward (rule 1)
		0xC0A80205, // 192.168.2.5 -> drop (rule 2)
		0x08080808, // 8.8.8.8 -> default forward
	}
	for _, src := range cases {
		pkt := aclPacket(t, src)
		res := core.Process(pkt, 0)
		if res.Exc != nil {
			t.Fatalf("src %08x: %v", src, res.Exc)
		}
		want := RefACL(pkt, rules)
		if res.Verdict != want {
			t.Errorf("src %08x: verdict %d, ref %d", src, res.Verdict, want)
		}
	}
}

func TestACLRandomDifferential(t *testing.T) {
	prog, err := ACL().Program()
	if err != nil {
		t.Fatal(err)
	}
	core := NewCore(prog)
	rng := rand.New(rand.NewSource(17))
	var rules []ACLRule
	for i := 0; i < 8; i++ {
		maskBits := uint32(8 * (1 + rng.Intn(3)))
		mask := uint32(0xFFFFFFFF) << (32 - maskBits)
		rules = append(rules, ACLRule{
			Prefix:  rng.Uint32() & mask,
			Mask:    mask,
			Forward: rng.Intn(2) == 0,
		})
	}
	InstallACLRules(core, rules)
	for i := 0; i < 300; i++ {
		src := rng.Uint32()
		if i%3 == 0 && len(rules) > 0 {
			// Force rule hits regularly.
			r := rules[rng.Intn(len(rules))]
			src = r.Prefix | (rng.Uint32() &^ r.Mask)
		}
		pkt := aclPacket(t, src)
		res := core.Process(pkt, 0)
		if res.Exc != nil {
			t.Fatalf("src %08x: %v", src, res.Exc)
		}
		if want := RefACL(pkt, rules); res.Verdict != want {
			t.Fatalf("src %08x: verdict %d, ref %d", src, res.Verdict, want)
		}
	}
}

func TestACLEmptyTableForwardsAll(t *testing.T) {
	prog, err := ACL().Program()
	if err != nil {
		t.Fatal(err)
	}
	core := NewCore(prog)
	res := core.Process(aclPacket(t, 0x0A000001), 0)
	if res.Exc != nil || res.Verdict != VerdictForward {
		t.Errorf("empty table: verdict=%d exc=%v", res.Verdict, res.Exc)
	}
}

func TestACLRuleCapEnforced(t *testing.T) {
	prog, err := ACL().Program()
	if err != nil {
		t.Fatal(err)
	}
	core := NewCore(prog)
	many := make([]ACLRule, ACLMaxRules+10)
	for i := range many {
		many[i] = ACLRule{Prefix: uint32(i) << 24, Mask: 0xFF000000, Forward: true}
	}
	InstallACLRules(core, many)
	cnt := binary.BigEndian.Uint32(core.Scratch(ACLCountOff, 4))
	if cnt != ACLMaxRules {
		t.Errorf("installed %d rules, want cap %d", cnt, ACLMaxRules)
	}
}

func TestACLUnderMonitor(t *testing.T) {
	// The deeper-CFG app must run alarm-free under the monitor across
	// parameters, including rule-hit and rule-miss paths.
	prog, err := ACL().Program()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 10; trial++ {
		h := mhash.NewMerkle(rng.Uint32())
		g, err := monitor.Extract(prog, h)
		if err != nil {
			t.Fatal(err)
		}
		m, err := monitor.New(g, h)
		if err != nil {
			t.Fatal(err)
		}
		core := NewCore(prog)
		core.Trace = m.Observe
		InstallACLRules(core, aclRules())
		for _, src := range []uint32{0x0A010203, 0xC0A80105, 0x08080808} {
			m.Reset()
			res := core.Process(aclPacket(t, src), 0)
			if res.Exc != nil {
				t.Fatalf("trial %d src %08x: %v", trial, src, res.Exc)
			}
		}
	}
}
