package apps

import (
	"fmt"

	"sdmmon/internal/asm"
	"sdmmon/internal/cpu"
	"sdmmon/internal/isa"
)

// Core is a single NP core with a loaded application, retaining scratch
// state across packets. The multicore dispatcher in internal/npu composes
// these; the helper is also used directly by tests and examples.
type Core struct {
	prog *asm.Program
	mem  *cpu.Memory
	cpu  *cpu.CPU
	// Trace, if set, is attached to the core for every packet (monitor
	// port).
	Trace cpu.TraceFunc
	// MaxCyclesPerPacket is the watchdog budget (default 200k).
	MaxCyclesPerPacket uint64

	// out is the reused output-packet buffer: Process reads the packet
	// region back into it without allocating.
	out []byte
}

// NewCore loads prog into a fresh core.
func NewCore(prog *asm.Program) *Core {
	mem := cpu.NewMemory(MemSize)
	prog.LoadInto(mem)
	return &Core{
		prog:               prog,
		mem:                mem,
		cpu:                cpu.New(mem, prog.Entry),
		MaxCyclesPerPacket: 200_000,
	}
}

// PacketResult is the outcome of processing one packet.
//
// Packet aliases the core's reused output buffer: it is valid until the
// next Process call on the same core. Callers that retain results across
// packets must copy it. This keeps the steady-state packet path free of
// heap allocations.
type PacketResult struct {
	Verdict int
	Packet  []byte // packet bytes after processing (aliased, see above)
	Cycles  uint64
	Exc     *cpu.Exception // nil on clean completion
}

// Process runs the loaded application over one packet. The core is reset
// (registers, PC) per packet — the recovery model of §2.1 — but memory
// persists so scratch state survives. The steady-state path (no
// architectural exception) performs zero heap allocations.
func (c *Core) Process(pkt []byte, qdepth int) PacketResult {
	if len(pkt) > MemSize-PktBase {
		return PacketResult{Verdict: VerdictDrop, Packet: pkt}
	}
	c.cpu.Reset(c.prog.Entry)
	c.cpu.Trace = c.Trace
	// DMA the packet in. The buffer is not scrubbed beyond the packet:
	// stale bytes from prior packets remain, as in real packet memory.
	c.mem.WriteBytes(PktBase, pkt)
	c.cpu.Regs[isa.RegA0] = PktBase
	c.cpu.Regs[isa.RegA1] = uint32(len(pkt))
	c.cpu.Regs[isa.RegA2] = uint32(qdepth)
	c.cpu.Regs[isa.RegSP] = StackTop

	cycles, exc := c.cpu.Run(c.MaxCyclesPerPacket)
	c.out = c.mem.AppendBytes(c.out[:0], PktBase, len(pkt))
	verdict := int(c.cpu.Regs[isa.RegV0])
	if exc != nil {
		verdict = VerdictDrop // recovery drops the attack packet
	}
	return PacketResult{Verdict: verdict, Packet: c.out, Cycles: cycles, Exc: exc}
}

// Recover performs the paper's §2.1 recovery reset at the moment an alarm
// or architectural exception is handled: all registers cleared (including
// the stack pointer) and the PC forced back to the entry point. Memory is
// untouched — the binary stays loaded and scratch state persists, exactly
// like the hardware reset line.
func (c *Core) Recover() { c.cpu.Reset(c.prog.Entry) }

// Program exposes the loaded program (diagnostics and fault injection).
func (c *Core) Program() *asm.Program { return c.prog }

// Scratch reads n bytes of the core's scratch region.
func (c *Core) Scratch(off, n int) []byte {
	return c.mem.ReadBytes(uint32(ScratchBase+off), n)
}

// CPU exposes the underlying core for diagnostics.
func (c *Core) CPU() *cpu.CPU { return c.cpu }

// Mem exposes the core memory (tests, attack staging).
func (c *Core) Mem() *cpu.Memory { return c.mem }

// RunApp is a one-shot convenience: assemble, load, process a single
// packet.
func RunApp(a *App, pkt []byte, qdepth int) (PacketResult, error) {
	prog, err := a.Program()
	if err != nil {
		return PacketResult{}, err
	}
	if prog.Entry != 0 && !prog.IsCode(prog.Entry) {
		return PacketResult{}, fmt.Errorf("apps: %s: bad entry", a.Name)
	}
	return NewCore(prog).Process(pkt, qdepth), nil
}
