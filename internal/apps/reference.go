package apps

import "encoding/binary"

// This file holds Go reference models of the applications, used for
// differential testing against the assembly running on the simulated core:
// same packet in, same verdict and packet bytes out.

// RefResult is the reference model outcome.
type RefResult struct {
	Verdict int
	Packet  []byte // packet after in-place modification
}

// RefIPv4CM models ipv4cm/ipv4safe on a *benign* packet (options within the
// buffer for the vulnerable variant — beyond it the assembly's behaviour is
// the bug under study, not a function to model).
func RefIPv4CM(pkt []byte, qdepth int) RefResult {
	out := append([]byte(nil), pkt...)
	if len(out) < 20 {
		return RefResult{VerdictDrop, out}
	}
	if out[0]>>4 != 4 {
		return RefResult{VerdictDrop, out}
	}
	ihl := int(out[0] & 0xF)
	if ihl < 5 {
		return RefResult{VerdictDrop, out}
	}
	if out[8] == 0 {
		return RefResult{VerdictDrop, out}
	}
	out[8]--
	// Incremental checksum per RFC 1141 (as the assembly implements it).
	cs := binary.BigEndian.Uint16(out[10:])
	v := uint32(cs) + 0x100
	v = v&0xFFFF + v>>16
	binary.BigEndian.PutUint16(out[10:], uint16(v))
	if qdepth > CMThreshold {
		out[1] |= 0x3
	}
	return RefResult{VerdictForward, out}
}

// RefUDPEcho models udpecho.
func RefUDPEcho(pkt []byte) RefResult {
	out := append([]byte(nil), pkt...)
	if len(out) < 28 || out[9] != 17 {
		return RefResult{VerdictForward, out}
	}
	var src, dst [4]byte
	copy(src[:], out[12:16])
	copy(dst[:], out[16:20])
	copy(out[12:16], dst[:])
	copy(out[16:20], src[:])
	ihl := int(out[0]&0xF) * 4
	if ihl+4 <= len(out) {
		sp := binary.BigEndian.Uint16(out[ihl:])
		dp := binary.BigEndian.Uint16(out[ihl+2:])
		binary.BigEndian.PutUint16(out[ihl:], dp)
		binary.BigEndian.PutUint16(out[ihl+2:], sp)
	}
	return RefResult{VerdictForward, out}
}

// RefCounter models counter: returns the verdict and the scratch table
// index it increments (-1 for drop).
func RefCounter(pkt []byte) (verdict, slot int) {
	if len(pkt) < 20 {
		return VerdictDrop, -1
	}
	return VerdictForward, int(pkt[9] & 0x3F)
}
