// Package cpu simulates the PLASMA-like MIPS-I network processor core used
// on the paper's prototype. The simulator is an ISA-level interpreter with a
// cycle counter and a per-retired-instruction trace tap; the hardware
// monitor (internal/monitor) attaches to that tap exactly as the RTL monitor
// attaches to the core's instruction report port.
//
// Memory is unified and byte-addressable (big-endian, as on MIPS): packet
// payload lives in the same address space as code, which is precisely the
// property the data-plane attacks of Chasaki & Wolf exploit and the monitor
// must catch.
package cpu

import "fmt"

// Memory is a flat byte-addressable RAM starting at address 0 with an
// optional MMIO window at the top of the address range.
type Memory struct {
	data []byte
	mmio []mmioRegion
}

type mmioRegion struct {
	base, size uint32
	h          MMIOHandler
}

// MMIOHandler services loads and stores in a memory-mapped I/O window.
// size is 1, 2 or 4; addresses are absolute.
type MMIOHandler interface {
	Load(addr uint32, size int) uint32
	Store(addr uint32, size int, v uint32)
}

// NewMemory allocates a RAM of the given size in bytes (rounded up to a
// multiple of 4).
func NewMemory(size int) *Memory {
	size = (size + 3) &^ 3
	return &Memory{data: make([]byte, size)}
}

// Size returns the RAM size in bytes.
func (m *Memory) Size() int { return len(m.data) }

// MapMMIO registers handler h for the [base, base+size) window. MMIO windows
// take priority over RAM.
func (m *Memory) MapMMIO(base, size uint32, h MMIOHandler) {
	m.mmio = append(m.mmio, mmioRegion{base: base, size: size, h: h})
}

func (m *Memory) mmioAt(addr uint32) (MMIOHandler, bool) {
	for _, r := range m.mmio {
		if addr >= r.base && addr < r.base+r.size {
			return r.h, true
		}
	}
	return nil, false
}

// Reset zeroes the RAM (MMIO mappings are kept).
func (m *Memory) Reset() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// WriteBytes copies data into RAM at addr; out-of-range writes are truncated.
// It satisfies asm.Loader.
func (m *Memory) WriteBytes(addr uint32, data []byte) {
	if int(addr) >= len(m.data) {
		return
	}
	copy(m.data[addr:], data)
}

// ReadBytes copies n bytes from RAM at addr.
func (m *Memory) ReadBytes(addr uint32, n int) []byte {
	return m.AppendBytes(nil, addr, n)
}

// AppendBytes appends n bytes of RAM starting at addr to dst and returns
// the extended slice; bytes past the end of RAM read as zero. It reuses
// dst's capacity, so callers that recycle a buffer read memory without
// allocating — the packet data-plane path depends on this.
func (m *Memory) AppendBytes(dst []byte, addr uint32, n int) []byte {
	if cap(dst)-len(dst) < n {
		grown := make([]byte, len(dst), len(dst)+n)
		copy(grown, dst)
		dst = grown
	}
	start := len(dst)
	dst = dst[:start+n]
	out := dst[start:]
	copied := 0
	if int(addr) < len(m.data) {
		copied = copy(out, m.data[addr:])
	}
	for i := copied; i < n; i++ {
		out[i] = 0
	}
	return dst
}

// inRange reports whether an n-byte access at addr fits in RAM.
func (m *Memory) inRange(addr uint32, n int) bool {
	return int(addr)+n <= len(m.data) && int(addr) >= 0
}

// Load32 reads a big-endian word. ok=false on a bus error.
func (m *Memory) Load32(addr uint32) (uint32, bool) {
	if h, hit := m.mmioAt(addr); hit {
		return h.Load(addr, 4), true
	}
	if !m.inRange(addr, 4) {
		return 0, false
	}
	b := m.data[addr:]
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), true
}

// Load16 reads a big-endian halfword.
func (m *Memory) Load16(addr uint32) (uint32, bool) {
	if h, hit := m.mmioAt(addr); hit {
		return h.Load(addr, 2), true
	}
	if !m.inRange(addr, 2) {
		return 0, false
	}
	b := m.data[addr:]
	return uint32(b[0])<<8 | uint32(b[1]), true
}

// Load8 reads a byte.
func (m *Memory) Load8(addr uint32) (uint32, bool) {
	if h, hit := m.mmioAt(addr); hit {
		return h.Load(addr, 1), true
	}
	if !m.inRange(addr, 1) {
		return 0, false
	}
	return uint32(m.data[addr]), true
}

// Store32 writes a big-endian word.
func (m *Memory) Store32(addr uint32, v uint32) bool {
	if h, hit := m.mmioAt(addr); hit {
		h.Store(addr, 4, v)
		return true
	}
	if !m.inRange(addr, 4) {
		return false
	}
	b := m.data[addr:]
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
	return true
}

// Store16 writes a big-endian halfword.
func (m *Memory) Store16(addr uint32, v uint32) bool {
	if h, hit := m.mmioAt(addr); hit {
		h.Store(addr, 2, v)
		return true
	}
	if !m.inRange(addr, 2) {
		return false
	}
	b := m.data[addr:]
	b[0], b[1] = byte(v>>8), byte(v)
	return true
}

// Store8 writes a byte.
func (m *Memory) Store8(addr uint32, v uint32) bool {
	if h, hit := m.mmioAt(addr); hit {
		h.Store(addr, 1, v)
		return true
	}
	if !m.inRange(addr, 1) {
		return false
	}
	m.data[addr] = byte(v)
	return true
}

// String summarizes the memory configuration.
func (m *Memory) String() string {
	return fmt.Sprintf("cpu.Memory{%d KiB, %d mmio}", len(m.data)/1024, len(m.mmio))
}
