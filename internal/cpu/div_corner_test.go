package cpu

import (
	"testing"

	"sdmmon/internal/isa"
)

func TestDivOverflowCornerDoesNotPanic(t *testing.T) {
	mem := NewMemory(4096)
	mem.Store32(0, uint32(isa.EncodeR(isa.FnDIV, isa.RegT0, isa.RegT1, 0, 0)))
	c := New(mem, 0)
	c.Regs[isa.RegT0] = 0x80000000 // INT_MIN
	c.Regs[isa.RegT1] = 0xFFFFFFFF // -1
	if exc := c.Step(); exc != nil {
		t.Fatal(exc)
	}
	if c.Lo != 0x80000000 || c.Hi != 0 {
		t.Errorf("hi:lo = %#x:%#x", c.Hi, c.Lo)
	}
}
