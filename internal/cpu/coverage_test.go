package cpu

import (
	"strings"
	"testing"

	"sdmmon/internal/asm"
	"sdmmon/internal/isa"
)

func TestExceptionStringsAndErrors(t *testing.T) {
	kinds := []ExceptionKind{ExcNone, ExcReservedInstr, ExcUnaligned, ExcBusError,
		ExcOverflow, ExcMonitorAlarm, ExcCycleLimit, ExcSyscall, ExceptionKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", int(k))
		}
	}
	e := &Exception{Kind: ExcBusError, PC: 0x40, Addr: 0x1000}
	msg := e.Error()
	for _, want := range []string{"bus-error", "0x40", "0x1000"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestMemoryStringer(t *testing.T) {
	m := NewMemory(8192)
	if !strings.Contains(m.String(), "8 KiB") {
		t.Errorf("String = %q", m.String())
	}
}

func TestMemorySubWordBounds(t *testing.T) {
	m := NewMemory(16)
	// In-range sub-word accesses.
	if !m.Store16(0, 0xAABB) || !m.Store8(2, 0xCC) {
		t.Fatal("in-range stores failed")
	}
	if v, ok := m.Load16(0); !ok || v != 0xAABB {
		t.Errorf("Load16 = %#x, %v", v, ok)
	}
	if v, ok := m.Load8(2); !ok || v != 0xCC {
		t.Errorf("Load8 = %#x, %v", v, ok)
	}
	// Out-of-range accesses fail cleanly at every width.
	if m.Store16(15, 1) || m.Store8(16, 1) || m.Store32(14, 1) {
		t.Error("out-of-range store succeeded")
	}
	if _, ok := m.Load16(15); ok {
		t.Error("out-of-range Load16 succeeded")
	}
	if _, ok := m.Load8(16); ok {
		t.Error("out-of-range Load8 succeeded")
	}
	if _, ok := m.Load32(14); ok {
		t.Error("out-of-range Load32 succeeded")
	}
}

func TestMMIOSubWordAccess(t *testing.T) {
	m := NewMemory(4096)
	dev := &recordingDevice{}
	m.MapMMIO(0xF00, 16, dev)
	p := asm.MustAssemble(`
		.equ DEV, 0xF00
		.text 0x0
	main:
		li $t0, DEV
		li $t1, 0xAB
		sb $t1, 0($t0)
		sh $t1, 2($t0)
		lbu $v0, 4($t0)
		lhu $v1, 6($t0)
		break
	`)
	p.LoadInto(m)
	c := New(m, 0)
	if _, exc := c.Run(1000); exc != nil {
		t.Fatal(exc)
	}
	if dev.stores[1] != 1 || dev.stores[2] != 1 {
		t.Errorf("sub-word stores not routed: %v", dev.stores)
	}
	if c.Regs[isa.RegV0] != 0x5A || c.Regs[isa.RegV1] != 0x5A5A&0xFFFF {
		t.Errorf("sub-word loads: v0=%#x v1=%#x", c.Regs[isa.RegV0], c.Regs[isa.RegV1])
	}
}

type recordingDevice struct {
	stores map[int]int
}

func (d *recordingDevice) Load(addr uint32, size int) uint32 {
	if size == 1 {
		return 0x5A
	}
	return 0x5A5A
}

func (d *recordingDevice) Store(addr uint32, size int, v uint32) {
	if d.stores == nil {
		d.stores = map[int]int{}
	}
	d.stores[size]++
}

func TestStepAfterHalt(t *testing.T) {
	p := asm.MustAssemble(".text 0x0\nmain:\nbreak\n")
	m := NewMemory(4096)
	p.LoadInto(m)
	c := New(m, 0)
	if _, exc := c.Run(10); exc != nil {
		t.Fatal(exc)
	}
	if !c.Halted() {
		t.Fatal("not halted")
	}
	// A second Run is a no-op on a halted core.
	cycles, exc := c.Run(10)
	if exc != nil || cycles != 0 {
		t.Errorf("halted Run: %d cycles, %v", cycles, exc)
	}
}

func TestUnalignedHalfwordStore(t *testing.T) {
	p := asm.MustAssemble(`
		.text 0x0
	main:
		li $t0, 0x1001
		sh $t1, 0($t0)
		break
	`)
	m := NewMemory(8192)
	p.LoadInto(m)
	c := New(m, 0)
	_, exc := c.Run(100)
	if exc == nil || exc.Kind != ExcUnaligned {
		t.Errorf("exc = %v", exc)
	}
}

func TestStoreBusErrors(t *testing.T) {
	for _, src := range []string{
		"li $t0, 0x7000\nlui $t0, 0x7000\nsb $t1, 0($t0)",
		"lui $t0, 0x7000\nsh $t1, 0($t0)",
		"lui $t0, 0x7000\nsw $t1, 0($t0)",
		"lui $t0, 0x7000\nlb $v0, 0($t0)",
		"lui $t0, 0x7000\nlh $v0, 0($t0)",
		"lui $t0, 0x7000\nlhu $v0, 0($t0)",
		"lui $t0, 0x7000\nlbu $v0, 0($t0)",
	} {
		p, err := asm.Assemble(".text 0x0\nmain:\n" + src + "\nbreak\n")
		if err != nil {
			t.Fatal(err)
		}
		m := NewMemory(4096)
		p.LoadInto(m)
		c := New(m, 0)
		_, exc := c.Run(100)
		if exc == nil || exc.Kind != ExcBusError {
			t.Errorf("%q: exc = %v", src, exc)
		}
	}
}
