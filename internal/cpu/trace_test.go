package cpu

import (
	"strings"
	"testing"

	"sdmmon/internal/asm"
	"sdmmon/internal/isa"
)

func TestTracerRecordsExecution(t *testing.T) {
	p := asm.MustAssemble(`
		.text 0x0
	main:
		li $t0, 2
	loop:
		addiu $t0, $t0, -1
		bgtz $t0, loop
		break
	`)
	mem := NewMemory(4096)
	p.LoadInto(mem)
	c := New(mem, 0)
	tr := NewTracer(16, nil)
	c.Trace = tr.Observe
	if _, exc := c.Run(1000); exc != nil {
		t.Fatal(exc)
	}
	// li; (addiu,bgtz)x2; break = 6.
	if tr.Retired() != 6 {
		t.Fatalf("retired = %d", tr.Retired())
	}
	last := tr.Last(3)
	if len(last) != 3 {
		t.Fatalf("Last(3) returned %d", len(last))
	}
	if last[2].PC != 0xC { // break
		t.Errorf("newest entry pc = %#x", last[2].PC)
	}
	if last[0].Seq >= last[1].Seq || last[1].Seq >= last[2].Seq {
		t.Error("entries not oldest-first")
	}
	d := tr.Dump(6)
	if !strings.Contains(d, "break") || !strings.Contains(d, "addiu") {
		t.Errorf("dump missing disasm:\n%s", d)
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(4, nil)
	for i := 0; i < 10; i++ {
		tr.Observe(uint32(4*i), isa.NOP)
	}
	last := tr.Last(10) // only 4 kept
	if len(last) != 4 {
		t.Fatalf("kept %d", len(last))
	}
	if last[0].Seq != 6 || last[3].Seq != 9 {
		t.Errorf("window = [%d..%d], want [6..9]", last[0].Seq, last[3].Seq)
	}
}

func TestTracerChainsToMonitorAndFlagsAlarm(t *testing.T) {
	calls := 0
	inner := func(pc uint32, w isa.Word) bool {
		calls++
		return calls < 3 // alarm on the third instruction
	}
	tr := NewTracer(8, inner)
	ok := true
	for i := 0; i < 3 && ok; i++ {
		ok = tr.Observe(uint32(4*i), isa.NOP)
	}
	if ok {
		t.Fatal("alarm not propagated")
	}
	last := tr.Last(3)
	if !last[2].Rejected {
		t.Error("alarm instruction not flagged")
	}
	if last[0].Rejected || last[1].Rejected {
		t.Error("pre-alarm instructions flagged")
	}
	if !strings.Contains(tr.Dump(3), "!!") {
		t.Error("dump does not flag the alarm")
	}
}

func TestTracerMinimumSize(t *testing.T) {
	tr := NewTracer(0, nil)
	tr.Observe(0, isa.NOP)
	if len(tr.Last(5)) != 1 {
		t.Error("degenerate tracer broken")
	}
}
