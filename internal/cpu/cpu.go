package cpu

import (
	"fmt"

	"sdmmon/internal/isa"
)

// ExceptionKind enumerates the architectural exceptions the core raises.
type ExceptionKind int

const (
	ExcNone ExceptionKind = iota
	// ExcReservedInstr: the fetched word does not decode to an implemented
	// instruction.
	ExcReservedInstr
	// ExcUnaligned: a load/store address violated its natural alignment.
	ExcUnaligned
	// ExcBusError: an access fell outside RAM and any MMIO window.
	ExcBusError
	// ExcOverflow: signed overflow on add/sub/addi.
	ExcOverflow
	// ExcMonitorAlarm: the attached hardware monitor rejected the retired
	// instruction stream and asserted the core's reset line.
	ExcMonitorAlarm
	// ExcCycleLimit: the Run cycle budget was exhausted (runaway/looping
	// code — the watchdog case).
	ExcCycleLimit
	// ExcSyscall: a syscall was executed with no handler installed.
	ExcSyscall
)

func (k ExceptionKind) String() string {
	switch k {
	case ExcNone:
		return "none"
	case ExcReservedInstr:
		return "reserved-instruction"
	case ExcUnaligned:
		return "unaligned-access"
	case ExcBusError:
		return "bus-error"
	case ExcOverflow:
		return "arithmetic-overflow"
	case ExcMonitorAlarm:
		return "monitor-alarm"
	case ExcCycleLimit:
		return "cycle-limit"
	case ExcSyscall:
		return "syscall-unhandled"
	}
	return fmt.Sprintf("exception(%d)", int(k))
}

// Exception describes an abnormal termination of execution.
type Exception struct {
	Kind ExceptionKind
	PC   uint32 // pc of the faulting instruction
	Addr uint32 // faulting data address, if applicable
}

func (e *Exception) Error() string {
	return fmt.Sprintf("cpu: %s at pc=0x%x addr=0x%x", e.Kind, e.PC, e.Addr)
}

// TraceFunc observes every retired instruction. Returning false asserts the
// monitor's reset line: the core stops with ExcMonitorAlarm. This is the
// attachment point for the hardware monitor.
type TraceFunc func(pc uint32, w isa.Word) bool

// SyscallFunc services a syscall instruction. Register state may be
// inspected and modified through the CPU. Returning false halts the core.
type SyscallFunc func(c *CPU) bool

// CPU is one PLASMA-like core.
type CPU struct {
	Regs   [32]uint32
	PC     uint32
	Hi, Lo uint32
	Mem    *Memory

	// Cycles counts consumed clock cycles using the cost table below.
	Cycles uint64
	// Retired counts retired instructions.
	Retired uint64

	// Trace, if non-nil, observes every retired instruction (the monitor
	// port).
	Trace TraceFunc
	// Syscall, if non-nil, services syscall instructions.
	Syscall SyscallFunc

	halted bool
}

// Cycle costs approximating the multi-cycle PLASMA units. Every instruction
// costs one cycle; these add extra cycles.
const (
	extraCyclesMult = 3  // 4-cycle multiplier
	extraCyclesDiv  = 35 // 36-cycle iterative divider
	extraCyclesLoad = 1  // synchronous block-RAM read port
)

// New creates a core attached to mem, with PC at entry.
func New(mem *Memory, entry uint32) *CPU {
	c := &CPU{Mem: mem, PC: entry}
	return c
}

// Reset performs the hardware reset the monitor triggers on an alarm: all
// registers cleared, PC forced to entry. Memory contents are untouched (the
// binary stays loaded; recovery reloads only the processing stack state).
func (c *CPU) Reset(entry uint32) {
	c.Regs = [32]uint32{}
	c.Hi, c.Lo = 0, 0
	c.PC = entry
	c.halted = false
}

// Halted reports whether the core executed a break (normal completion).
func (c *CPU) Halted() bool { return c.halted }

// Run executes instructions until break, an exception, or the cycle budget
// is exhausted. It returns the number of cycles consumed by this call.
func (c *CPU) Run(maxCycles uint64) (uint64, *Exception) {
	start := c.Cycles
	for !c.halted {
		if c.Cycles-start >= maxCycles {
			return c.Cycles - start, &Exception{Kind: ExcCycleLimit, PC: c.PC}
		}
		if exc := c.Step(); exc != nil {
			return c.Cycles - start, exc
		}
	}
	return c.Cycles - start, nil
}

// Step executes one instruction. A nil return means the instruction retired
// normally (or the core halted via break).
func (c *CPU) Step() *Exception {
	pc := c.PC
	raw, ok := c.Mem.Load32(pc)
	if !ok {
		return &Exception{Kind: ExcBusError, PC: pc, Addr: pc}
	}
	w := isa.Word(raw)
	if !isa.Valid(w) {
		// The word still "retires" from the fetch stage in hardware, so
		// the monitor sees it before the trap; report it first.
		if c.Trace != nil && !c.Trace(pc, w) {
			return &Exception{Kind: ExcMonitorAlarm, PC: pc}
		}
		return &Exception{Kind: ExcReservedInstr, PC: pc}
	}

	// Report to the monitor port. The monitor observes the instruction as
	// it retires; an alarm resets the core before architectural state can
	// propagate further, which we model by checking before execution of
	// the *next* effect-bearing step is irrelevant — the attack is caught
	// at this instruction boundary either way.
	if c.Trace != nil && !c.Trace(pc, w) {
		return &Exception{Kind: ExcMonitorAlarm, PC: pc}
	}

	c.Cycles++
	c.Retired++
	next := pc + 4

	switch w.Op() {
	case isa.OpSpecial:
		exc := c.execSpecial(pc, w, &next)
		if exc != nil {
			return exc
		}
	case isa.OpRegImm:
		rs := int32(c.Regs[w.Rs()])
		taken := false
		switch w.Rt() {
		case isa.RtBLTZ:
			taken = rs < 0
		case isa.RtBGEZ:
			taken = rs >= 0
		case isa.RtBLTZAL:
			taken = rs < 0
			c.Regs[isa.RegRA] = pc + 4
		case isa.RtBGEZAL:
			taken = rs >= 0
			c.Regs[isa.RegRA] = pc + 4
		}
		if taken {
			next = isa.BranchTarget(pc, w)
		}
	case isa.OpJ:
		next = isa.JumpTarget(pc, w)
	case isa.OpJAL:
		c.Regs[isa.RegRA] = pc + 4
		next = isa.JumpTarget(pc, w)
	case isa.OpBEQ:
		if c.Regs[w.Rs()] == c.Regs[w.Rt()] {
			next = isa.BranchTarget(pc, w)
		}
	case isa.OpBNE:
		if c.Regs[w.Rs()] != c.Regs[w.Rt()] {
			next = isa.BranchTarget(pc, w)
		}
	case isa.OpBLEZ:
		if int32(c.Regs[w.Rs()]) <= 0 {
			next = isa.BranchTarget(pc, w)
		}
	case isa.OpBGTZ:
		if int32(c.Regs[w.Rs()]) > 0 {
			next = isa.BranchTarget(pc, w)
		}
	case isa.OpADDI:
		a, b := int32(c.Regs[w.Rs()]), w.SImm()
		s := a + b
		if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
			return &Exception{Kind: ExcOverflow, PC: pc}
		}
		c.setReg(w.Rt(), uint32(s))
	case isa.OpADDIU:
		c.setReg(w.Rt(), c.Regs[w.Rs()]+uint32(w.SImm()))
	case isa.OpSLTI:
		if int32(c.Regs[w.Rs()]) < w.SImm() {
			c.setReg(w.Rt(), 1)
		} else {
			c.setReg(w.Rt(), 0)
		}
	case isa.OpSLTIU:
		if c.Regs[w.Rs()] < uint32(w.SImm()) {
			c.setReg(w.Rt(), 1)
		} else {
			c.setReg(w.Rt(), 0)
		}
	case isa.OpANDI:
		c.setReg(w.Rt(), c.Regs[w.Rs()]&uint32(w.Imm()))
	case isa.OpORI:
		c.setReg(w.Rt(), c.Regs[w.Rs()]|uint32(w.Imm()))
	case isa.OpXORI:
		c.setReg(w.Rt(), c.Regs[w.Rs()]^uint32(w.Imm()))
	case isa.OpLUI:
		c.setReg(w.Rt(), uint32(w.Imm())<<16)
	default:
		if exc := c.execMem(pc, w); exc != nil {
			return exc
		}
	}

	c.PC = next
	return nil
}

func (c *CPU) setReg(r, v uint32) {
	if r != isa.RegZero {
		c.Regs[r] = v
	}
}

func (c *CPU) execSpecial(pc uint32, w isa.Word, next *uint32) *Exception {
	rs, rt := c.Regs[w.Rs()], c.Regs[w.Rt()]
	switch w.Fn() {
	case isa.FnSLL:
		c.setReg(w.Rd(), rt<<w.Shamt())
	case isa.FnSRL:
		c.setReg(w.Rd(), rt>>w.Shamt())
	case isa.FnSRA:
		c.setReg(w.Rd(), uint32(int32(rt)>>w.Shamt()))
	case isa.FnSLLV:
		c.setReg(w.Rd(), rt<<(rs&31))
	case isa.FnSRLV:
		c.setReg(w.Rd(), rt>>(rs&31))
	case isa.FnSRAV:
		c.setReg(w.Rd(), uint32(int32(rt)>>(rs&31)))
	case isa.FnJR:
		*next = rs
	case isa.FnJALR:
		c.setReg(w.Rd(), pc+4)
		*next = rs
	case isa.FnSYSCALL:
		if c.Syscall == nil {
			return &Exception{Kind: ExcSyscall, PC: pc}
		}
		if !c.Syscall(c) {
			c.halted = true
		}
	case isa.FnBREAK:
		c.halted = true
	case isa.FnMFHI:
		c.setReg(w.Rd(), c.Hi)
	case isa.FnMTHI:
		c.Hi = rs
	case isa.FnMFLO:
		c.setReg(w.Rd(), c.Lo)
	case isa.FnMTLO:
		c.Lo = rs
	case isa.FnMULT:
		c.Cycles += extraCyclesMult
		p := int64(int32(rs)) * int64(int32(rt))
		c.Hi, c.Lo = uint32(uint64(p)>>32), uint32(uint64(p))
	case isa.FnMULTU:
		c.Cycles += extraCyclesMult
		p := uint64(rs) * uint64(rt)
		c.Hi, c.Lo = uint32(p>>32), uint32(p)
	case isa.FnDIV:
		c.Cycles += extraCyclesDiv
		switch {
		case rt == 0:
			// MIPS leaves HI/LO unpredictable on divide-by-zero; keep them.
		case int32(rs) == -1<<31 && int32(rt) == -1:
			// Overflow corner: Go would panic on INT_MIN / -1. MIPS
			// defines no trap; the hardware quotient wraps to INT_MIN.
			c.Lo = rs
			c.Hi = 0
		default:
			c.Lo = uint32(int32(rs) / int32(rt))
			c.Hi = uint32(int32(rs) % int32(rt))
		}
	case isa.FnDIVU:
		c.Cycles += extraCyclesDiv
		if rt != 0 {
			c.Lo = rs / rt
			c.Hi = rs % rt
		}
	case isa.FnADD:
		a, b := int32(rs), int32(rt)
		s := a + b
		if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
			return &Exception{Kind: ExcOverflow, PC: pc}
		}
		c.setReg(w.Rd(), uint32(s))
	case isa.FnADDU:
		c.setReg(w.Rd(), rs+rt)
	case isa.FnSUB:
		a, b := int32(rs), int32(rt)
		s := a - b
		if (a >= 0 && b < 0 && s < 0) || (a < 0 && b >= 0 && s >= 0) {
			return &Exception{Kind: ExcOverflow, PC: pc}
		}
		c.setReg(w.Rd(), uint32(s))
	case isa.FnSUBU:
		c.setReg(w.Rd(), rs-rt)
	case isa.FnAND:
		c.setReg(w.Rd(), rs&rt)
	case isa.FnOR:
		c.setReg(w.Rd(), rs|rt)
	case isa.FnXOR:
		c.setReg(w.Rd(), rs^rt)
	case isa.FnNOR:
		c.setReg(w.Rd(), ^(rs | rt))
	case isa.FnSLT:
		if int32(rs) < int32(rt) {
			c.setReg(w.Rd(), 1)
		} else {
			c.setReg(w.Rd(), 0)
		}
	case isa.FnSLTU:
		if rs < rt {
			c.setReg(w.Rd(), 1)
		} else {
			c.setReg(w.Rd(), 0)
		}
	}
	return nil
}

func (c *CPU) execMem(pc uint32, w isa.Word) *Exception {
	addr := c.Regs[w.Rs()] + uint32(w.SImm())
	switch w.Op() {
	case isa.OpLB:
		c.Cycles += extraCyclesLoad
		v, ok := c.Mem.Load8(addr)
		if !ok {
			return &Exception{Kind: ExcBusError, PC: pc, Addr: addr}
		}
		c.setReg(w.Rt(), uint32(int32(int8(v))))
	case isa.OpLBU:
		c.Cycles += extraCyclesLoad
		v, ok := c.Mem.Load8(addr)
		if !ok {
			return &Exception{Kind: ExcBusError, PC: pc, Addr: addr}
		}
		c.setReg(w.Rt(), v)
	case isa.OpLH:
		if addr&1 != 0 {
			return &Exception{Kind: ExcUnaligned, PC: pc, Addr: addr}
		}
		c.Cycles += extraCyclesLoad
		v, ok := c.Mem.Load16(addr)
		if !ok {
			return &Exception{Kind: ExcBusError, PC: pc, Addr: addr}
		}
		c.setReg(w.Rt(), uint32(int32(int16(v))))
	case isa.OpLHU:
		if addr&1 != 0 {
			return &Exception{Kind: ExcUnaligned, PC: pc, Addr: addr}
		}
		c.Cycles += extraCyclesLoad
		v, ok := c.Mem.Load16(addr)
		if !ok {
			return &Exception{Kind: ExcBusError, PC: pc, Addr: addr}
		}
		c.setReg(w.Rt(), v)
	case isa.OpLW:
		if addr&3 != 0 {
			return &Exception{Kind: ExcUnaligned, PC: pc, Addr: addr}
		}
		c.Cycles += extraCyclesLoad
		v, ok := c.Mem.Load32(addr)
		if !ok {
			return &Exception{Kind: ExcBusError, PC: pc, Addr: addr}
		}
		c.setReg(w.Rt(), v)
	case isa.OpSB:
		if !c.Mem.Store8(addr, c.Regs[w.Rt()]) {
			return &Exception{Kind: ExcBusError, PC: pc, Addr: addr}
		}
	case isa.OpSH:
		if addr&1 != 0 {
			return &Exception{Kind: ExcUnaligned, PC: pc, Addr: addr}
		}
		if !c.Mem.Store16(addr, c.Regs[w.Rt()]) {
			return &Exception{Kind: ExcBusError, PC: pc, Addr: addr}
		}
	case isa.OpSW:
		if addr&3 != 0 {
			return &Exception{Kind: ExcUnaligned, PC: pc, Addr: addr}
		}
		if !c.Mem.Store32(addr, c.Regs[w.Rt()]) {
			return &Exception{Kind: ExcBusError, PC: pc, Addr: addr}
		}
	}
	return nil
}
