package cpu

import (
	"fmt"
	"strings"

	"sdmmon/internal/isa"
)

// Tracer is a ring-buffer execution tracer: it chains in front of any other
// trace consumer (such as the hardware monitor) and keeps the last N
// retired instructions with disassembly — the forensic view of what a core
// was doing when an alarm fired.
type Tracer struct {
	ring  []TraceEntry
	next  int
	count uint64
	inner TraceFunc // optional downstream consumer (the monitor)
}

// TraceEntry is one retired instruction.
type TraceEntry struct {
	Seq uint64
	PC  uint32
	W   isa.Word
	// Rejected marks the instruction on which the downstream consumer
	// (monitor) asserted the alarm.
	Rejected bool
}

// NewTracer builds a tracer keeping the last n instructions, forwarding
// each observation to inner (may be nil).
func NewTracer(n int, inner TraceFunc) *Tracer {
	if n < 1 {
		n = 1
	}
	return &Tracer{ring: make([]TraceEntry, 0, n), inner: inner}
}

// Observe implements TraceFunc.
func (t *Tracer) Observe(pc uint32, w isa.Word) bool {
	ok := true
	if t.inner != nil {
		ok = t.inner(pc, w)
	}
	e := TraceEntry{Seq: t.count, PC: pc, W: w, Rejected: !ok}
	t.count++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.next] = e
	}
	t.next = (t.next + 1) % cap(t.ring)
	return ok
}

// Reset clears the ring and the retired counter. The NP's recovery path
// wipes the forensic trace when the core takes its next packet after an
// alarm — the dump window is between the alarm and that packet.
func (t *Tracer) Reset() {
	t.ring = t.ring[:0]
	t.next = 0
	t.count = 0
}

// Retired returns the total number of instructions observed.
func (t *Tracer) Retired() uint64 { return t.count }

// Last returns up to n most recent entries, oldest first.
func (t *Tracer) Last(n int) []TraceEntry {
	size := len(t.ring)
	if n > size {
		n = size
	}
	if n <= 0 {
		return nil
	}
	out := make([]TraceEntry, 0, n)
	start := (t.next - n + size) % size
	if size < cap(t.ring) {
		// Ring not yet full: entries are [0, size) in order.
		start = size - n
		for i := start; i < size; i++ {
			out = append(out, t.ring[i])
		}
		return out
	}
	for i := 0; i < n; i++ {
		out = append(out, t.ring[(start+i)%size])
	}
	return out
}

// Dump renders the most recent n entries with disassembly; the alarm
// instruction (if present) is flagged.
func (t *Tracer) Dump(n int) string {
	var sb strings.Builder
	for _, e := range t.Last(n) {
		flag := "   "
		if e.Rejected {
			flag = "!! "
		}
		fmt.Fprintf(&sb, "%s%8d  %06x  %08x  %s\n",
			flag, e.Seq, e.PC, uint32(e.W), isa.Disasm(e.PC, e.W))
	}
	return sb.String()
}
