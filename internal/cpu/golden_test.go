package cpu

import (
	"math/rand"
	"testing"

	"sdmmon/internal/isa"
)

// Golden-model differential test: execute single random ALU instructions on
// the core and compare every architectural effect against an independent
// Go model of the MIPS semantics.

type aluCase struct {
	fn       uint32
	signedOv bool
	model    func(rs, rt uint32) uint32
}

var aluCases = []aluCase{
	{isa.FnADDU, false, func(rs, rt uint32) uint32 { return rs + rt }},
	{isa.FnSUBU, false, func(rs, rt uint32) uint32 { return rs - rt }},
	{isa.FnAND, false, func(rs, rt uint32) uint32 { return rs & rt }},
	{isa.FnOR, false, func(rs, rt uint32) uint32 { return rs | rt }},
	{isa.FnXOR, false, func(rs, rt uint32) uint32 { return rs ^ rt }},
	{isa.FnNOR, false, func(rs, rt uint32) uint32 { return ^(rs | rt) }},
	{isa.FnSLT, false, func(rs, rt uint32) uint32 {
		if int32(rs) < int32(rt) {
			return 1
		}
		return 0
	}},
	{isa.FnSLTU, false, func(rs, rt uint32) uint32 {
		if rs < rt {
			return 1
		}
		return 0
	}},
	{isa.FnSLLV, false, func(rs, rt uint32) uint32 { return rt << (rs & 31) }},
	{isa.FnSRLV, false, func(rs, rt uint32) uint32 { return rt >> (rs & 31) }},
	{isa.FnSRAV, false, func(rs, rt uint32) uint32 { return uint32(int32(rt) >> (rs & 31)) }},
}

func TestGoldenRTypeALU(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	mem := NewMemory(4096)
	for iter := 0; iter < 4000; iter++ {
		tc := aluCases[rng.Intn(len(aluCases))]
		rsN, rtN, rdN := uint32(8+rng.Intn(8)), uint32(16+rng.Intn(8)), uint32(2+rng.Intn(4))
		rsV, rtV := rng.Uint32(), rng.Uint32()
		w := isa.EncodeR(tc.fn, rsN, rtN, rdN, 0)
		mem.Store32(0, uint32(w))
		c := New(mem, 0)
		c.Regs[rsN] = rsV
		c.Regs[rtN] = rtV
		if exc := c.Step(); exc != nil {
			t.Fatalf("%s: %v", isa.Disasm(0, w), exc)
		}
		// The model must read the *possibly aliased* register state: if
		// rs == rt the written value is whatever was stored last.
		mrs, mrt := rsV, rtV
		if rsN == rtN {
			mrs = rtV
			mrt = rtV
		}
		want := tc.model(mrs, mrt)
		if c.Regs[rdN] != want {
			t.Fatalf("%s with rs=%#x rt=%#x: rd=%#x, want %#x",
				isa.Disasm(0, w), mrs, mrt, c.Regs[rdN], want)
		}
		if c.PC != 4 {
			t.Fatalf("pc = %#x after ALU op", c.PC)
		}
	}
}

func TestGoldenShiftImmediates(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	mem := NewMemory(4096)
	for iter := 0; iter < 2000; iter++ {
		sh := uint32(rng.Intn(32))
		rtV := rng.Uint32()
		var fn uint32
		var want uint32
		switch rng.Intn(3) {
		case 0:
			fn, want = isa.FnSLL, rtV<<sh
		case 1:
			fn, want = isa.FnSRL, rtV>>sh
		case 2:
			fn, want = isa.FnSRA, uint32(int32(rtV)>>sh)
		}
		w := isa.EncodeR(fn, 0, isa.RegT0, isa.RegT1, sh)
		mem.Store32(0, uint32(w))
		c := New(mem, 0)
		c.Regs[isa.RegT0] = rtV
		if exc := c.Step(); exc != nil {
			t.Fatal(exc)
		}
		if c.Regs[isa.RegT1] != want {
			t.Fatalf("%s rt=%#x: got %#x want %#x", isa.Disasm(0, w), rtV, c.Regs[isa.RegT1], want)
		}
	}
}

func TestGoldenImmediates(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	mem := NewMemory(4096)
	type icase struct {
		op    uint32
		model func(rs uint32, imm uint16) uint32
	}
	cases := []icase{
		{isa.OpADDIU, func(rs uint32, imm uint16) uint32 { return rs + uint32(int32(int16(imm))) }},
		{isa.OpANDI, func(rs uint32, imm uint16) uint32 { return rs & uint32(imm) }},
		{isa.OpORI, func(rs uint32, imm uint16) uint32 { return rs | uint32(imm) }},
		{isa.OpXORI, func(rs uint32, imm uint16) uint32 { return rs ^ uint32(imm) }},
		{isa.OpLUI, func(rs uint32, imm uint16) uint32 { return uint32(imm) << 16 }},
		{isa.OpSLTI, func(rs uint32, imm uint16) uint32 {
			if int32(rs) < int32(int16(imm)) {
				return 1
			}
			return 0
		}},
		{isa.OpSLTIU, func(rs uint32, imm uint16) uint32 {
			if rs < uint32(int32(int16(imm))) {
				return 1
			}
			return 0
		}},
	}
	for iter := 0; iter < 4000; iter++ {
		tc := cases[rng.Intn(len(cases))]
		rsV := rng.Uint32()
		imm := uint16(rng.Uint32())
		w := isa.EncodeI(tc.op, isa.RegT0, isa.RegT1, imm)
		mem.Store32(0, uint32(w))
		c := New(mem, 0)
		c.Regs[isa.RegT0] = rsV
		if exc := c.Step(); exc != nil {
			t.Fatal(exc)
		}
		if want := tc.model(rsV, imm); c.Regs[isa.RegT1] != want {
			t.Fatalf("%s rs=%#x: got %#x want %#x", isa.Disasm(0, w), rsV, c.Regs[isa.RegT1], want)
		}
	}
}

func TestGoldenMultDiv(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	mem := NewMemory(4096)
	for iter := 0; iter < 3000; iter++ {
		rsV, rtV := rng.Uint32(), rng.Uint32()
		var fn uint32
		var wantHi, wantLo uint32
		switch rng.Intn(4) {
		case 0:
			fn = isa.FnMULT
			p := int64(int32(rsV)) * int64(int32(rtV))
			wantHi, wantLo = uint32(uint64(p)>>32), uint32(uint64(p))
		case 1:
			fn = isa.FnMULTU
			p := uint64(rsV) * uint64(rtV)
			wantHi, wantLo = uint32(p>>32), uint32(p)
		case 2:
			fn = isa.FnDIV
			if rtV == 0 {
				continue
			}
			if int32(rsV) == -2147483648 && int32(rtV) == -1 {
				// The overflow corner wraps on MIPS (no trap).
				wantLo, wantHi = rsV, 0
				break
			}
			wantLo = uint32(int32(rsV) / int32(rtV))
			wantHi = uint32(int32(rsV) % int32(rtV))
		case 3:
			fn = isa.FnDIVU
			if rtV == 0 {
				continue
			}
			wantLo = rsV / rtV
			wantHi = rsV % rtV
		}
		w := isa.EncodeR(fn, isa.RegT0, isa.RegT1, 0, 0)
		mem.Store32(0, uint32(w))
		c := New(mem, 0)
		c.Regs[isa.RegT0] = rsV
		c.Regs[isa.RegT1] = rtV
		if exc := c.Step(); exc != nil {
			t.Fatal(exc)
		}
		if c.Hi != wantHi || c.Lo != wantLo {
			t.Fatalf("%s rs=%#x rt=%#x: hi:lo=%#x:%#x want %#x:%#x",
				isa.Disasm(0, w), rsV, rtV, c.Hi, c.Lo, wantHi, wantLo)
		}
	}
}

func TestGoldenBranchDecisions(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	mem := NewMemory(4096)
	for iter := 0; iter < 4000; iter++ {
		rsV := rng.Uint32()
		rtV := rng.Uint32()
		if rng.Intn(4) == 0 {
			rtV = rsV // force equality sometimes
		}
		var w isa.Word
		var taken bool
		switch rng.Intn(6) {
		case 0:
			w = isa.EncodeI(isa.OpBEQ, isa.RegT0, isa.RegT1, 4)
			taken = rsV == rtV
		case 1:
			w = isa.EncodeI(isa.OpBNE, isa.RegT0, isa.RegT1, 4)
			taken = rsV != rtV
		case 2:
			w = isa.EncodeI(isa.OpBLEZ, isa.RegT0, 0, 4)
			taken = int32(rsV) <= 0
		case 3:
			w = isa.EncodeI(isa.OpBGTZ, isa.RegT0, 0, 4)
			taken = int32(rsV) > 0
		case 4:
			w = isa.EncodeI(isa.OpRegImm, isa.RegT0, isa.RtBLTZ, 4)
			taken = int32(rsV) < 0
		case 5:
			w = isa.EncodeI(isa.OpRegImm, isa.RegT0, isa.RtBGEZ, 4)
			taken = int32(rsV) >= 0
		}
		mem.Store32(0, uint32(w))
		c := New(mem, 0)
		c.Regs[isa.RegT0] = rsV
		c.Regs[isa.RegT1] = rtV
		if exc := c.Step(); exc != nil {
			t.Fatal(exc)
		}
		wantPC := uint32(4)
		if taken {
			wantPC = isa.BranchTarget(0, w)
		}
		if c.PC != wantPC {
			t.Fatalf("%s rs=%#x rt=%#x: pc=%#x want %#x",
				isa.Disasm(0, w), rsV, rtV, c.PC, wantPC)
		}
	}
}

func TestGoldenLoadStoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	mem := NewMemory(8192)
	for iter := 0; iter < 3000; iter++ {
		v := rng.Uint32()
		addr := uint32(0x1000 + 4*rng.Intn(256))
		// Store then load through the core; the loaded value must match
		// the store's width semantics.
		prog := []isa.Word{
			isa.EncodeI(isa.OpSW, isa.RegT0, isa.RegT1, uint16(addr)),
			isa.EncodeI(isa.OpLW, isa.RegT0, isa.RegT2, uint16(addr)),
			isa.EncodeI(isa.OpLHU, isa.RegT0, isa.RegT3, uint16(addr+2)),
			isa.EncodeI(isa.OpLBU, isa.RegT0, isa.RegT4, uint16(addr+3)),
			isa.EncodeI(isa.OpLB, isa.RegT0, isa.RegT5, uint16(addr)),
		}
		for i, w := range prog {
			mem.Store32(uint32(4*i), uint32(w))
		}
		c := New(mem, 0)
		c.Regs[isa.RegT1] = v
		for range prog {
			if exc := c.Step(); exc != nil {
				t.Fatal(exc)
			}
		}
		if c.Regs[isa.RegT2] != v {
			t.Fatalf("lw: %#x want %#x", c.Regs[isa.RegT2], v)
		}
		if c.Regs[isa.RegT3] != v&0xFFFF {
			t.Fatalf("lhu: %#x want %#x", c.Regs[isa.RegT3], v&0xFFFF)
		}
		if c.Regs[isa.RegT4] != v&0xFF {
			t.Fatalf("lbu: %#x want %#x", c.Regs[isa.RegT4], v&0xFF)
		}
		if c.Regs[isa.RegT5] != uint32(int32(int8(v>>24))) {
			t.Fatalf("lb: %#x want %#x", c.Regs[isa.RegT5], uint32(int32(int8(v>>24))))
		}
	}
}
