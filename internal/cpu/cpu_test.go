package cpu

import (
	"testing"

	"sdmmon/internal/asm"
	"sdmmon/internal/isa"
)

// runProgram assembles src, loads it into a fresh 64 KiB machine and runs to
// completion (or exception).
func runProgram(t *testing.T, src string) (*CPU, *Exception) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	mem := NewMemory(64 * 1024)
	p.LoadInto(mem)
	c := New(mem, p.Entry)
	c.Regs[isa.RegSP] = uint32(mem.Size())
	_, exc := c.Run(1_000_000)
	return c, exc
}

func TestArithmetic(t *testing.T) {
	c, exc := runProgram(t, `
		.text 0x0
	main:
		li $t0, 20
		li $t1, 22
		addu $v0, $t0, $t1     # 42
		subu $v1, $t1, $t0     # 2
		and  $a0, $t0, $t1     # 20 & 22 = 20
		or   $a1, $t0, $t1     # 22
		xor  $a2, $t0, $t1     # 2
		nor  $a3, $zero, $zero # 0xFFFFFFFF
		break
	`)
	if exc != nil {
		t.Fatalf("exception: %v", exc)
	}
	if c.Regs[isa.RegV0] != 42 {
		t.Errorf("v0 = %d, want 42", c.Regs[isa.RegV0])
	}
	if c.Regs[isa.RegV1] != 2 {
		t.Errorf("v1 = %d", c.Regs[isa.RegV1])
	}
	if c.Regs[isa.RegA0] != 20 || c.Regs[isa.RegA1] != 22 || c.Regs[isa.RegA2] != 2 {
		t.Errorf("logic ops wrong: %d %d %d", c.Regs[isa.RegA0], c.Regs[isa.RegA1], c.Regs[isa.RegA2])
	}
	if c.Regs[isa.RegA3] != 0xFFFFFFFF {
		t.Errorf("nor = %#x", c.Regs[isa.RegA3])
	}
	if !c.Halted() {
		t.Error("core should have halted on break")
	}
}

func TestShifts(t *testing.T) {
	c, exc := runProgram(t, `
		.text 0x0
	main:
		li $t0, 0x80000000
		srl $t1, $t0, 4        # 0x08000000
		sra $t2, $t0, 4        # 0xF8000000
		li $t3, 3
		sllv $t4, $t3, $t3     # 3 << 3 = 24
		break
	`)
	if exc != nil {
		t.Fatalf("exception: %v", exc)
	}
	if c.Regs[isa.RegT1] != 0x08000000 {
		t.Errorf("srl = %#x", c.Regs[isa.RegT1])
	}
	if c.Regs[isa.RegT2] != 0xF8000000 {
		t.Errorf("sra = %#x", c.Regs[isa.RegT2])
	}
	if c.Regs[isa.RegT4] != 24 {
		t.Errorf("sllv = %d", c.Regs[isa.RegT4])
	}
}

func TestMultDiv(t *testing.T) {
	c, exc := runProgram(t, `
		.text 0x0
	main:
		li $t0, -6
		li $t1, 7
		mult $t0, $t1
		mflo $v0              # -42
		li $t2, 45
		li $t3, 7
		divu $t2, $t3
		mflo $v1              # 6
		mfhi $a0              # 3
		break
	`)
	if exc != nil {
		t.Fatalf("exception: %v", exc)
	}
	if int32(c.Regs[isa.RegV0]) != -42 {
		t.Errorf("mult lo = %d", int32(c.Regs[isa.RegV0]))
	}
	if c.Regs[isa.RegV1] != 6 || c.Regs[isa.RegA0] != 3 {
		t.Errorf("divu = %d rem %d", c.Regs[isa.RegV1], c.Regs[isa.RegA0])
	}
}

func TestMult64BitResult(t *testing.T) {
	c, exc := runProgram(t, `
		.text 0x0
	main:
		li $t0, 0x10000
		li $t1, 0x10000
		multu $t0, $t1
		mfhi $v0              # 1
		mflo $v1              # 0
		break
	`)
	if exc != nil {
		t.Fatalf("exception: %v", exc)
	}
	if c.Regs[isa.RegV0] != 1 || c.Regs[isa.RegV1] != 0 {
		t.Errorf("hi:lo = %#x:%#x", c.Regs[isa.RegV0], c.Regs[isa.RegV1])
	}
}

func TestLoadsStores(t *testing.T) {
	c, exc := runProgram(t, `
		.text 0x0
	main:
		la $t0, buf
		li $t1, 0xDEADBEEF
		sw $t1, 0($t0)
		lw $v0, 0($t0)
		lb $v1, 0($t0)        # 0xDE sign-extended = -34
		lbu $a0, 0($t0)       # 0xDE = 222
		lh $a1, 2($t0)        # 0xBEEF sign-extended
		lhu $a2, 2($t0)       # 0xBEEF
		sb $zero, 3($t0)
		lw $a3, 0($t0)        # 0xDEADBE00
		break
		.data 0x1000
	buf:	.space 16
	`)
	if exc != nil {
		t.Fatalf("exception: %v", exc)
	}
	if c.Regs[isa.RegV0] != 0xDEADBEEF {
		t.Errorf("lw = %#x", c.Regs[isa.RegV0])
	}
	if int32(c.Regs[isa.RegV1]) != -34 {
		t.Errorf("lb = %d", int32(c.Regs[isa.RegV1]))
	}
	if c.Regs[isa.RegA0] != 222 {
		t.Errorf("lbu = %d", c.Regs[isa.RegA0])
	}
	beef := uint16(0xBEEF)
	if int32(c.Regs[isa.RegA1]) != int32(int16(beef)) {
		t.Errorf("lh = %d", int32(c.Regs[isa.RegA1]))
	}
	if c.Regs[isa.RegA2] != 0xBEEF {
		t.Errorf("lhu = %#x", c.Regs[isa.RegA2])
	}
	if c.Regs[isa.RegA3] != 0xDEADBE00 {
		t.Errorf("after sb: %#x", c.Regs[isa.RegA3])
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..10 = 55.
	c, exc := runProgram(t, `
		.text 0x0
	main:
		li $t0, 10
		li $v0, 0
	loop:
		addu $v0, $v0, $t0
		addiu $t0, $t0, -1
		bgtz $t0, loop
		break
	`)
	if exc != nil {
		t.Fatalf("exception: %v", exc)
	}
	if c.Regs[isa.RegV0] != 55 {
		t.Errorf("sum = %d, want 55", c.Regs[isa.RegV0])
	}
}

func TestFunctionCall(t *testing.T) {
	c, exc := runProgram(t, `
		.text 0x0
	main:
		li $a0, 5
		jal double
		move $t5, $v0
		li $a0, 21
		jal double
		addu $v0, $v0, $t5    # 10 + 42 = 52
		break
	double:
		addu $v0, $a0, $a0
		jr $ra
	`)
	if exc != nil {
		t.Fatalf("exception: %v", exc)
	}
	if c.Regs[isa.RegV0] != 52 {
		t.Errorf("v0 = %d, want 52", c.Regs[isa.RegV0])
	}
}

func TestStackPushPop(t *testing.T) {
	c, exc := runProgram(t, `
		.text 0x0
	main:
		li $t0, 111
		li $t1, 222
		push $t0
		push $t1
		pop $t2              # 222
		pop $t3              # 111
		break
	`)
	if exc != nil {
		t.Fatalf("exception: %v", exc)
	}
	if c.Regs[isa.RegT2] != 222 || c.Regs[isa.RegT3] != 111 {
		t.Errorf("stack: t2=%d t3=%d", c.Regs[isa.RegT2], c.Regs[isa.RegT3])
	}
	if c.Regs[isa.RegSP] != uint32(c.Mem.Size()) {
		t.Errorf("sp not restored: %#x", c.Regs[isa.RegSP])
	}
}

func TestRegZeroIsHardwired(t *testing.T) {
	c, exc := runProgram(t, `
		.text 0x0
	main:
		li $t0, 7
		addu $zero, $t0, $t0
		move $v0, $zero
		break
	`)
	if exc != nil {
		t.Fatalf("exception: %v", exc)
	}
	if c.Regs[isa.RegZero] != 0 || c.Regs[isa.RegV0] != 0 {
		t.Error("$zero was written")
	}
}

func TestOverflowException(t *testing.T) {
	_, exc := runProgram(t, `
		.text 0x0
	main:
		li $t0, 0x7FFFFFFF
		li $t1, 1
		add $v0, $t0, $t1
		break
	`)
	if exc == nil || exc.Kind != ExcOverflow {
		t.Errorf("exception = %v, want overflow", exc)
	}
}

func TestUnalignedException(t *testing.T) {
	_, exc := runProgram(t, `
		.text 0x0
	main:
		li $t0, 0x1001
		lw $v0, 0($t0)
		break
	`)
	if exc == nil || exc.Kind != ExcUnaligned {
		t.Errorf("exception = %v, want unaligned", exc)
	}
}

func TestBusErrorException(t *testing.T) {
	_, exc := runProgram(t, `
		.text 0x0
	main:
		lui $t0, 0x7000
		lw $v0, 0($t0)
		break
	`)
	if exc == nil || exc.Kind != ExcBusError {
		t.Errorf("exception = %v, want bus error", exc)
	}
}

func TestReservedInstructionException(t *testing.T) {
	_, exc := runProgram(t, `
		.text 0x0
	main:
		.word 0xFC000000
		break
	`)
	if exc == nil || exc.Kind != ExcReservedInstr {
		t.Errorf("exception = %v, want reserved instruction", exc)
	}
}

func TestCycleLimit(t *testing.T) {
	_, exc := runProgram(t, `
		.text 0x0
	main:
		b main
	`)
	if exc == nil || exc.Kind != ExcCycleLimit {
		t.Errorf("exception = %v, want cycle limit", exc)
	}
}

func TestSyscallHook(t *testing.T) {
	p := asm.MustAssemble(`
		.text 0x0
	main:
		li $v0, 7
		syscall
		li $v1, 1
		break
	`)
	mem := NewMemory(4096)
	p.LoadInto(mem)
	c := New(mem, p.Entry)
	var got uint32
	c.Syscall = func(c *CPU) bool {
		got = c.Regs[isa.RegV0]
		return true
	}
	if _, exc := c.Run(1000); exc != nil {
		t.Fatalf("exception: %v", exc)
	}
	if got != 7 {
		t.Errorf("syscall saw v0=%d", got)
	}
	if c.Regs[isa.RegV1] != 1 {
		t.Error("execution did not continue after syscall")
	}
}

func TestSyscallWithoutHandler(t *testing.T) {
	_, exc := runProgram(t, `
		.text 0x0
	main:
		syscall
		break
	`)
	if exc == nil || exc.Kind != ExcSyscall {
		t.Errorf("exception = %v, want syscall", exc)
	}
}

func TestTraceTapSeesEveryInstruction(t *testing.T) {
	p := asm.MustAssemble(`
		.text 0x0
	main:
		li $t0, 3
	loop:
		addiu $t0, $t0, -1
		bgtz $t0, loop
		break
	`)
	mem := NewMemory(4096)
	p.LoadInto(mem)
	c := New(mem, p.Entry)
	var trace []uint32
	c.Trace = func(pc uint32, w isa.Word) bool {
		trace = append(trace, pc)
		return true
	}
	if _, exc := c.Run(1000); exc != nil {
		t.Fatalf("exception: %v", exc)
	}
	// li; (addiu; bgtz) x3; break = 8 instructions.
	if len(trace) != 8 {
		t.Fatalf("trace length = %d, want 8: %x", len(trace), trace)
	}
	if uint64(len(trace)) != c.Retired {
		t.Errorf("Retired = %d, trace = %d", c.Retired, len(trace))
	}
	want := []uint32{0, 4, 8, 4, 8, 4, 8, 12}
	for i, pc := range want {
		if trace[i] != pc {
			t.Errorf("trace[%d] = %#x, want %#x", i, trace[i], pc)
		}
	}
}

func TestTraceAlarmStopsCore(t *testing.T) {
	p := asm.MustAssemble(`
		.text 0x0
	main:
		nop
		nop
		nop
		break
	`)
	mem := NewMemory(4096)
	p.LoadInto(mem)
	c := New(mem, p.Entry)
	n := 0
	c.Trace = func(pc uint32, w isa.Word) bool {
		n++
		return n < 2 // alarm on the second instruction
	}
	_, exc := c.Run(1000)
	if exc == nil || exc.Kind != ExcMonitorAlarm {
		t.Fatalf("exception = %v, want monitor alarm", exc)
	}
	if exc.PC != 4 {
		t.Errorf("alarm pc = %#x, want 0x4", exc.PC)
	}
}

func TestResetClearsState(t *testing.T) {
	mem := NewMemory(4096)
	c := New(mem, 0x40)
	c.Regs[5] = 99
	c.Hi, c.Lo = 1, 2
	c.PC = 0x80
	c.Reset(0x10)
	if c.PC != 0x10 || c.Regs[5] != 0 || c.Hi != 0 || c.Lo != 0 {
		t.Error("reset did not clear state")
	}
	if c.Halted() {
		t.Error("reset core should not be halted")
	}
}

func TestCycleCosts(t *testing.T) {
	p := asm.MustAssemble(`
		.text 0x0
	main:
		mult $t0, $t1
		break
	`)
	mem := NewMemory(4096)
	p.LoadInto(mem)
	c := New(mem, 0)
	c.Run(1000)
	// mult = 1+3, break = 1.
	if c.Cycles != 5 {
		t.Errorf("cycles = %d, want 5", c.Cycles)
	}
	if c.Retired != 2 {
		t.Errorf("retired = %d, want 2", c.Retired)
	}
}

func TestMMIO(t *testing.T) {
	mem := NewMemory(4096)
	dev := &testDevice{}
	mem.MapMMIO(0x0000F000, 16, dev)
	p := asm.MustAssemble(`
		.equ DEV, 0xF000
		.text 0x0
	main:
		li $t0, DEV
		li $t1, 0x1234
		sw $t1, 0($t0)
		lw $v0, 4($t0)
		break
	`)
	p.LoadInto(mem)
	c := New(mem, 0)
	if _, exc := c.Run(1000); exc != nil {
		t.Fatalf("exception: %v", exc)
	}
	if dev.stored != 0x1234 {
		t.Errorf("MMIO store saw %#x", dev.stored)
	}
	if c.Regs[isa.RegV0] != 0xCAFE {
		t.Errorf("MMIO load = %#x", c.Regs[isa.RegV0])
	}
}

type testDevice struct{ stored uint32 }

func (d *testDevice) Load(addr uint32, size int) uint32     { return 0xCAFE }
func (d *testDevice) Store(addr uint32, size int, v uint32) { d.stored = v }

func TestMemoryHelpers(t *testing.T) {
	m := NewMemory(100) // rounds to 100 -> 100 already multiple of 4
	if m.Size() != 100 {
		t.Errorf("size = %d", m.Size())
	}
	m.WriteBytes(10, []byte{1, 2, 3, 4})
	got := m.ReadBytes(10, 4)
	if got[0] != 1 || got[3] != 4 {
		t.Errorf("ReadBytes = %v", got)
	}
	// Out-of-range operations are safe no-ops / zero fills.
	m.WriteBytes(1000, []byte{9})
	z := m.ReadBytes(1000, 2)
	if z[0] != 0 {
		t.Error("out-of-range read should return zeros")
	}
	m.Reset()
	if m.ReadBytes(10, 1)[0] != 0 {
		t.Error("Reset did not clear RAM")
	}
}

func TestJALRLinksCorrectly(t *testing.T) {
	c, exc := runProgram(t, `
		.text 0x0
	main:
		la $t9, target
		jalr $t9
		break
	target:
		move $v0, $ra
		jr $ra
	`)
	if exc != nil {
		t.Fatalf("exception: %v", exc)
	}
	// jalr is the third instruction (la = 2 words), so ra = 0xC.
	if c.Regs[isa.RegV0] != 0xC {
		t.Errorf("ra = %#x, want 0xC", c.Regs[isa.RegV0])
	}
}

func TestBltzalLinks(t *testing.T) {
	c, exc := runProgram(t, `
		.text 0x0
	main:
		li $t0, -1
		bltzal $t0, sub
		break
	sub:
		move $v0, $ra
		jr $ra
	`)
	if exc != nil {
		t.Fatalf("exception: %v", exc)
	}
	if c.Regs[isa.RegV0] != 0x8 {
		t.Errorf("ra = %#x, want 0x8", c.Regs[isa.RegV0])
	}
}
