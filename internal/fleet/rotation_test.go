package fleet

import (
	"bytes"
	"testing"

	"sdmmon/internal/attack"
	"sdmmon/internal/mhash"
)

func TestRotationPlanDeterministicAndDistinct(t *testing.T) {
	ids := []string{"np-0003", "np-0000", "np-0002", "np-0001"}
	a := NewRotationPlan(99, ids)
	b := NewRotationPlan(99, []string{"np-0000", "np-0001", "np-0002", "np-0003"})
	if !a.Distinct() {
		t.Fatal("plan violates the pairwise-distinct invariant")
	}
	// Same seed and same ID set (any order) derive the same assignment —
	// this is what lets a resumed controller rebuild identical payloads.
	if !bytes.Equal(a.Marshal(), b.Marshal()) {
		t.Error("plan derivation depends on input ID order")
	}
	if c := NewRotationPlan(100, ids); bytes.Equal(a.Marshal(), c.Marshal()) {
		t.Error("different seeds produced identical plans")
	}
}

func TestRotationPlanWireStrict(t *testing.T) {
	plan := NewRotationPlan(7, []string{"np-0000", "np-0001", "np-0002"})
	wire := plan.Marshal()
	back, err := UnmarshalRotationPlan(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Marshal(), wire) {
		t.Error("plan encoding is not a fixed point")
	}
	for cut := 0; cut < len(wire); cut += 3 {
		if _, err := UnmarshalRotationPlan(wire[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	// A plan assigning two routers the same parameter breaks the rotation
	// invariant and must not decode.
	dup := &RotationPlan{Params: map[string]uint32{"a": 5, "b": 5}}
	if _, err := UnmarshalRotationPlan(dup.Marshal()); err == nil {
		t.Error("duplicate-parameter plan decoded")
	}
}

// TestRotationContainsEngineeredBypass is the acceptance half the
// pairwise-distinct checks can't cover: rotation has to actually buy
// containment. The attacker engineers the one-instruction persist attack
// against one router's live hash parameter (the per-parameter monitor
// bypass) and replays the identical packet fleet-wide. Before rotation all
// routers share a parameter, so the bypass transfers everywhere; after a
// completed rotation rollout it is confined to ≈1/16 per mismatched router,
// and — match or mismatch — every router's monitor raises an alarm.
//
// S-box compression is required for the experiment to be meaningful: under
// the paper's arithmetic sum, engineered hash matches are
// parameter-independent and rotation buys nothing (the collapse finding in
// internal/network).
func TestRotationContainsEngineeredBypass(t *testing.T) {
	cfg := Config{
		Routers:     16,
		GroupSize:   8,
		Seed:        31,
		Compression: mhash.SBoxCompress(),
	}

	// Pre-rotation baseline: every router holds the shared initial
	// parameter, so a bypass engineered against any one of them
	// compromises the whole fleet.
	pre := buildFleet(t, cfg)
	_, preComp, preDet := replayBypass(t, pre, pre.Routers()[0])
	if preComp != pre.Size() {
		t.Errorf("pre-rotation: %d/%d compromised; shared parameters should transfer everywhere",
			preComp, pre.Size())
	}
	if preDet != pre.Size() {
		t.Errorf("pre-rotation: detected on %d/%d routers", preDet, pre.Size())
	}

	// Rotated fleet: run the full rollout, then engineer against one
	// router's rotated parameter.
	f := buildFleet(t, cfg)
	ctl, err := NewController(f, RolloutConfig{Gate: testGate(), Policy: testPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ctl.Run()
	if err != nil || !rep.Completed {
		t.Fatalf("rollout did not complete: %v", err)
	}
	target, comp, det := replayBypass(t, f, f.Router("np-0000"))
	if !targetCompromised(t, f, target) {
		t.Errorf("engineered bypass failed against its own target %s", target.ID)
	}
	// Detection on every OTHER router is the acceptance criterion: a
	// mismatching monitor alarms immediately on the forged packet, and
	// even the matching one alarms one instruction later.
	if det != f.Size() {
		t.Errorf("bypass detected on %d/%d routers, want all", det, f.Size())
	}
	// Containment: expected transfers beyond the target ≈ 15/16 ≈ 1;
	// allow slack but far below the pre-rotation total of 16.
	if comp > 6 {
		t.Errorf("rotated fleet: %d/%d compromised, want containment", comp, f.Size())
	}
}

// replayBypass engineers the persist attack against one router's live
// parameter and replays the packet on every router, returning the target
// actually used (the next router is tried when engineering fails for a
// parameter — rare and seed-dependent), compromised count, and detected
// count.
func replayBypass(t *testing.T, f *Fleet, preferred *SimRouter) (*SimRouter, int, int) {
	t.Helper()
	prog, err := f.App.Program()
	if err != nil {
		t.Fatal(err)
	}
	smash := attack.DefaultSmash()
	candidates := append([]*SimRouter{preferred}, f.Routers()...)
	for _, target := range candidates {
		param, ok := target.LiveParam()
		if !ok {
			t.Fatalf("%s has no live image", target.ID)
		}
		pkt, engineered, err := smash.PersistAttack(prog, f.Hasher(param))
		if err != nil {
			t.Fatal(err)
		}
		if !engineered {
			continue
		}
		comp, det := 0, 0
		for _, r := range f.Routers() {
			out, err := r.NP.ProcessOn(0, pkt, 0)
			if err != nil {
				t.Fatal(err)
			}
			if out.Detected {
				det++
			}
			hit, err := attack.PersistSucceeded(r.NP, 0)
			if err != nil {
				t.Fatal(err)
			}
			if hit {
				comp++
			}
		}
		return target, comp, det
	}
	t.Skip("persist attack engineered against no parameter in this fleet (seed-dependent)")
	return nil, 0, 0
}

func targetCompromised(t *testing.T, f *Fleet, target *SimRouter) bool {
	t.Helper()
	hit, err := attack.PersistSucceeded(target.NP, 0)
	if err != nil {
		t.Fatal(err)
	}
	return hit
}
