package fleet

import (
	"bytes"
	"testing"

	"sdmmon/internal/seccrypto"
)

// The wire-format fuzz invariant: any input that decodes must re-encode to
// the identical bytes (the canonical encoding is a fixed point), and
// decoders must reject — never panic on — arbitrary input.

func FuzzFleetReport(f *testing.F) {
	rep := &FleetReport{
		Seed:            42,
		Release:         seccrypto.Manifest{AppName: "ipv4cm", Version: "rot.3", Sequence: 3},
		Waves:           []WaveStatus{WaveCommitted, WaveCommitted, WavePending, WavePending},
		Completed:       false,
		MakespanSeconds: 12.5,
		GroupClocks:     []float64{12.5, 3.25},
		Probe:           HealthSample{Processed: 640, Alarms: 1, Faults: 0},
		TotalAttempts:   97,
		Routers: []RouterRecord{
			{ID: "np-0000", Wave: 0, State: StateCommitted, Attempts: 3},
			{ID: "np-0001", Wave: 1, State: StateUnreachable, Attempts: 8, LastErr: "delivery attempts exhausted"},
			{ID: "np-0002", Wave: 2, State: StatePending, Byzantine: true},
		},
	}
	f.Add(rep.Marshal())
	f.Add([]byte("FLTR"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := UnmarshalFleetReport(data)
		if err != nil {
			return
		}
		if !bytes.Equal(dec.Marshal(), data) {
			t.Fatalf("decoded report is not a fixed point of its encoding")
		}
	})
}

func FuzzRotationPlan(f *testing.F) {
	f.Add(NewRotationPlan(7, []string{"np-0000", "np-0001", "np-0002"}).Marshal())
	f.Add((&RotationPlan{Params: map[string]uint32{}}).Marshal())
	f.Add([]byte("FLRP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		plan, err := UnmarshalRotationPlan(data)
		if err != nil {
			return
		}
		// Anything that decodes satisfies the rotation invariant and
		// re-encodes canonically.
		if !plan.Distinct() {
			t.Fatal("decoder accepted a plan with duplicate parameters")
		}
		if !bytes.Equal(plan.Marshal(), data) {
			t.Fatal("decoded plan is not a fixed point of its encoding")
		}
	})
}
