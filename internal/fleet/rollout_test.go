package fleet

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"sdmmon/internal/fault"
	"sdmmon/internal/network"
)

// partitionedConfig is the acceptance drill: 1,000 routers under 15% link
// loss with group 5's backhaul cut for (effectively) the whole first run.
func partitionedConfig(seed int64) Config {
	return Config{
		Routers:   1000,
		GroupSize: 50,
		Seed:      seed,
		Faults:    fault.LinkFaults{DropRate: 0.15},
		Partitions: map[int][]fault.PartitionLink{
			5: {{Start: 0, End: 1e12}},
		},
	}
}

// runPartitioned executes the drill once: rollout with the partition open,
// save/decode the report, heal the partition, resume on a fresh
// controller. Returns the mid-run report bytes and the final report.
func runPartitioned(t *testing.T, seed int64) (midWire []byte, final *FleetReport, f *Fleet) {
	t.Helper()
	f = buildFleet(t, partitionedConfig(seed))
	ctl, err := NewController(f, RolloutConfig{Gate: testGate(), Policy: testPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ctl.Run()
	if err != nil {
		t.Fatalf("partitioned rollout errored: %v", err)
	}
	if rep.Completed {
		t.Fatal("rollout claims completion with a partitioned group")
	}
	unreachable := 0
	for i := range rep.Routers {
		if rep.Routers[i].State == StateUnreachable {
			unreachable++
			if !strings.HasPrefix(rep.Routers[i].ID, "np-02") {
				t.Errorf("router %s outside group 5 marked unreachable", rep.Routers[i].ID)
			}
		}
	}
	if unreachable != 50 {
		t.Fatalf("%d unreachable routers, want the partitioned group's 50", unreachable)
	}
	for w, st := range rep.Waves {
		if st != WaveCommitted {
			t.Errorf("wave %d status %v; the gate must pass over reachable routers", w, st)
		}
	}

	// Controller restart: serialize, decode, heal the backhaul, resume.
	midWire = rep.Marshal()
	decoded, err := UnmarshalFleetReport(midWire)
	if err != nil {
		t.Fatal(err)
	}
	f.Groups[5].Link.Partitions = nil
	ctl2, err := NewController(f, RolloutConfig{Gate: testGate(), Policy: testPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	final, err = ctl2.Resume(decoded)
	if err != nil {
		t.Fatalf("resume errored: %v", err)
	}
	if !final.Completed {
		t.Fatalf("resumed rollout did not complete: %d records", len(final.Routers))
	}
	return midWire, final, f
}

func TestRollout1000PartitionResumeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-router drill")
	}
	midA, finalA, fleetA := runPartitioned(t, 42)

	// Committed routers are never re-delivered on resume: their attempt
	// counts are frozen at the mid-run values.
	midRep, err := UnmarshalFleetReport(midA)
	if err != nil {
		t.Fatal(err)
	}
	attempts := map[string]uint32{}
	for i := range midRep.Routers {
		if midRep.Routers[i].State == StateCommitted {
			attempts[midRep.Routers[i].ID] = midRep.Routers[i].Attempts
		}
	}
	for i := range finalA.Routers {
		if want, ok := attempts[finalA.Routers[i].ID]; ok && finalA.Routers[i].Attempts != want {
			t.Errorf("committed router %s re-delivered on resume: attempts %d -> %d",
				finalA.Routers[i].ID, want, finalA.Routers[i].Attempts)
		}
	}
	// Probe totals accumulate rather than recount: the resume adds exactly
	// one baseline window per straggler plus one post window per newly
	// committed router.
	hp := uint64(testGate().HealthPackets)
	wantDelta := 50*hp + 50*hp
	if got := finalA.Probe.Processed - midRep.Probe.Processed; got != wantDelta {
		t.Errorf("resume probe delta %d packets, want %d (no double counting)", got, wantDelta)
	}

	// The rotation invariant holds across the whole 1000-router fleet.
	seen := map[uint32]string{}
	for id, p := range fleetA.LiveParams() {
		if other, dup := seen[p]; dup {
			t.Errorf("routers %s and %s share parameter %#x", id, other, p)
		}
		seen[p] = id
	}
	if len(seen) != 1000 {
		t.Errorf("%d live parameters for 1000 routers", len(seen))
	}

	// Seeded re-run: identical wave trajectory and identical report bytes,
	// both at the mid-run save point and after resume.
	midB, finalB, _ := runPartitioned(t, 42)
	if !bytes.Equal(midA, midB) {
		t.Error("mid-run report bytes diverged across identical seeded runs")
	}
	if !bytes.Equal(finalA.Marshal(), finalB.Marshal()) {
		t.Error("final report bytes diverged across identical seeded runs")
	}
}

// poisonRouter injects a persistent instruction-store fault into the
// router's live core — the post-commit health regression the gate exists
// to catch.
func poisonRouter(t *testing.T, f *Fleet, r *SimRouter) {
	t.Helper()
	c, err := r.NP.Core(0)
	if err != nil {
		t.Fatalf("core of %s: %v", r.ID, err)
	}
	inj := fault.New(network.DeriveSeed(f.Seed, "poison-"+r.ID))
	words := c.Program().CodeWords()
	if !inj.Poison(c, words[1].Addr) {
		t.Fatalf("poison of %s failed", r.ID)
	}
}

func TestBadWaveHaltsAndRollsBack(t *testing.T) {
	f := buildFleet(t, Config{
		Routers:   200,
		GroupSize: 25,
		Seed:      7,
		Faults:    fault.LinkFaults{DropRate: 0.1, CorruptRate: 0.05},
	})
	initial, _ := f.Router("np-0000").LiveParam()
	ctl, err := NewController(f, RolloutConfig{
		Gate:   testGate(),
		Policy: testPolicy(),
		AfterCommit: func(r *SimRouter, wave int) {
			if wave == 2 {
				poisonRouter(t, f, r)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ctl.Run()
	if !errors.Is(err, ErrHalted) {
		t.Fatalf("err = %v, want ErrHalted", err)
	}
	if !rep.Halted || rep.Completed {
		t.Fatalf("halted=%v completed=%v", rep.Halted, rep.Completed)
	}
	if rep.Waves[0] != WaveCommitted || rep.Waves[1] != WaveCommitted {
		t.Errorf("canary/wave-1 statuses %v %v, want committed", rep.Waves[0], rep.Waves[1])
	}
	if rep.Waves[2] != WaveRolledBack {
		t.Errorf("wave 2 status %v, want rolled-back", rep.Waves[2])
	}
	if rep.Waves[3] != WavePending {
		t.Errorf("wave 3 status %v, want pending (never reached)", rep.Waves[3])
	}

	for i := range rep.Routers {
		rec := &rep.Routers[i]
		r := f.Router(rec.ID)
		switch rec.Wave {
		case 0, 1:
			// Canary and wave-1 stay committed on their rotated parameters
			// and healthy.
			if rec.State != StateCommitted {
				t.Errorf("%s (wave %d) state %v, want committed", rec.ID, rec.Wave, rec.State)
			}
			if p, _ := r.LiveParam(); p == initial {
				t.Errorf("%s still on the initial shared parameter", rec.ID)
			}
			obs, _ := r.Probe(16)
			if obs.Alarms != 0 || obs.Faults != 0 {
				t.Errorf("%s unhealthy after halt: %+v", rec.ID, obs)
			}
		case 2:
			if rec.State != StateRolledBack {
				t.Errorf("%s (wave 2) state %v, want rolled-back", rec.ID, rec.State)
				continue
			}
			// The rollback restored the previous (clean) image: healthy
			// again, back on the initial parameter.
			if p, _ := r.LiveParam(); p != initial {
				t.Errorf("%s rolled back but parameter %#x != initial %#x", rec.ID, p, initial)
			}
			obs, _ := r.Probe(16)
			if obs.Alarms != 0 || obs.Faults != 0 {
				t.Errorf("%s unhealthy after rollback: %+v", rec.ID, obs)
			}
		default:
			if rec.State != StatePending {
				t.Errorf("%s (wave %d) state %v, want pending", rec.ID, rec.Wave, rec.State)
			}
		}
	}
}

func TestCrashedRouterRecoversOnResume(t *testing.T) {
	f := buildFleet(t, Config{Routers: 16, GroupSize: 8, Seed: 13})
	crashed := f.Router("np-0005")
	crashed.CrashAfterStage()
	ctl, err := NewController(f, RolloutConfig{Gate: testGate(), Policy: testPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ctl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed {
		t.Fatal("rollout completed despite a mid-wave crash")
	}
	var rec *RouterRecord
	for i := range rep.Routers {
		if rep.Routers[i].ID == "np-0005" {
			rec = &rep.Routers[i]
		} else if rep.Routers[i].State != StateCommitted {
			t.Errorf("%s state %v, want committed", rep.Routers[i].ID, rep.Routers[i].State)
		}
	}
	if rec.State != StateUnreachable {
		t.Fatalf("crashed router state %v, want unreachable", rec.State)
	}

	// The crash lost the staged bundle but not the ledger, and the ledger
	// only advances at commit — so the resume's re-delivery of the same
	// release must not be rejected as a downgrade.
	decoded, err := UnmarshalFleetReport(rep.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	ctl2, err := NewController(f, RolloutConfig{Gate: testGate(), Policy: testPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	final, err := ctl2.Resume(decoded)
	if err != nil {
		t.Fatalf("resume errored: %v", err)
	}
	if !final.Completed {
		t.Fatal("resume did not complete")
	}
	for i := range final.Routers {
		if final.Routers[i].ID == "np-0005" && final.Routers[i].State != StateCommitted {
			t.Errorf("crashed router not committed after resume: %v", final.Routers[i].State)
		}
		if strings.Contains(final.Routers[i].LastErr, "sequence regression") {
			t.Errorf("%s hit the downgrade guard on resume: %s", final.Routers[i].ID, final.Routers[i].LastErr)
		}
	}
}

func TestByzantineRouterCannotHideRegression(t *testing.T) {
	f := buildFleet(t, Config{Routers: 32, GroupSize: 8, Seed: 23})
	liar := f.Router("np-0003") // wave 2 member (indices 1..7)
	liar.Byzantine()
	ctl, err := NewController(f, RolloutConfig{
		Gate:   testGate(),
		Policy: testPolicy(),
		AfterCommit: func(r *SimRouter, wave int) {
			if r.ID == "np-0003" {
				poisonRouter(t, f, r)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ctl.Run()
	if !errors.Is(err, ErrHalted) {
		t.Fatalf("err = %v, want ErrHalted: the gate must use observed health, not the router's claim", err)
	}
	var liarRec *RouterRecord
	for i := range rep.Routers {
		if rep.Routers[i].ID == "np-0003" {
			liarRec = &rep.Routers[i]
		}
	}
	if !liarRec.Byzantine {
		t.Error("lying router not flagged byzantine")
	}
	if liarRec.State != StateRolledBack {
		t.Errorf("lying router state %v, want rolled-back", liarRec.State)
	}
}
