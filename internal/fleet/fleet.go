// Package fleet is the hierarchical control plane over thousands of
// simulated routers: routers are organized into groups behind aggregation
// tiers (each group shares one lossy management link with its own virtual
// clock), and releases roll out in waves — canary → 1% → 25% → 100% — with
// a health gate between waves. A failed gate halts the rollout and rolls
// the failed wave back over the same lossy links; the resumable FleetReport
// lets a restarted controller pick up exactly where it stopped.
//
// The payload is the paper's homogeneity defense operationalized (§3.2,
// SR2): every rollout is a hash-parameter rotation, assigning each router a
// pairwise-distinct Merkle parameter from a seeded plan, so a brute-forced
// monitor bypass against one router never transfers to another.
//
// Routers here are lightweight — an NP plus a persisted anti-downgrade
// ledger behind a checksummed wire bundle — mirroring network.Fleet: the
// full RSA installation path is exercised end-to-end in internal/core and
// internal/network with small fleets; a thousand RSA identities would only
// slow the control-plane experiments down without changing them. What the
// wire checksum models is the property the retry loop needs: a corrupted
// bundle is detected at the router and retried, never trusted.
package fleet

import (
	"errors"
	"fmt"
	"math"

	"sdmmon/internal/apps"
	"sdmmon/internal/fault"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
	"sdmmon/internal/network"
	"sdmmon/internal/npu"
	"sdmmon/internal/packet"
	"sdmmon/internal/seccrypto"
)

// Router lifecycle errors.
var (
	// ErrDowngrade: a bundle's sequence is at or below the router's
	// high-water mark (replay or downgrade; never retried into acceptance).
	ErrDowngrade = errors.New("fleet: bundle sequence regression")
	// ErrNothingStaged: a commit command arrived with no staged bundle and
	// a live image older than the commanded release (e.g. the router
	// crashed between stage and commit).
	ErrNothingStaged = errors.New("fleet: nothing staged to commit")
)

// SimRouter is one fleet member: a monitored NP, the persisted
// anti-downgrade ledger (flash; survives crashes), and the volatile staged
// state (RAM; lost on crash).
type SimRouter struct {
	ID string
	NP *npu.NP

	ledger *seccrypto.SequenceLedger

	// staged is the manifest of the bundle sitting in the NP's shadow
	// slots, nil when nothing is staged. Volatile: Crash clears it.
	staged *seccrypto.Manifest
	// live is the manifest of the committed installation (zero before the
	// first commit through the control plane).
	live seccrypto.Manifest
	// byzantine routers claim perfect health regardless of reality.
	byzantine bool
	// crashAfterStage arms a one-shot power-cycle fired right after the
	// next successful stage (the mid-wave crash drill).
	crashAfterStage bool

	probe *packet.Generator
}

// Byzantine marks the router as lying in health reports.
func (r *SimRouter) Byzantine() { r.byzantine = true }

// CrashAfterStage arms a one-shot crash fired right after the router's
// next successful stage — before the commit command can land.
func (r *SimRouter) CrashAfterStage() { r.crashAfterStage = true }

// LiveParam reports the hash parameter of the live installation.
func (r *SimRouter) LiveParam() (uint32, bool) { return r.NP.ParamOn(0) }

// ApplyBundle is the router's end of a bundle delivery: verify the
// checksum (a corrupted datagram fails here and is retried by the sender,
// exactly like a bad signature), enforce anti-downgrade against the
// persisted ledger, and stage the bundle into the NP's shadow slots. The
// ledger's high-water mark advances only at commit, so a crash that loses
// the staged state leaves the release deliverable again.
func (r *SimRouter) ApplyBundle(wire []byte) error {
	b, err := DecodeBundle(wire)
	if err != nil {
		return err
	}
	if b.Manifest.Sequence <= r.ledger.HighWater(b.Manifest.AppName) {
		return fmt.Errorf("%w: %s seq %d, high-water %d", ErrDowngrade,
			b.Manifest.AppName, b.Manifest.Sequence, r.ledger.HighWater(b.Manifest.AppName))
	}
	if r.staged != nil && *r.staged == b.Manifest {
		// Duplicate copy of an already-staged release: idempotent.
		return nil
	}
	if err := r.NP.StageInstallAll(b.Manifest.AppName, b.Binary, b.Graph, b.Param); err != nil {
		return err
	}
	m := b.Manifest
	r.staged = &m
	return nil
}

// ApplyCommand executes a commit or rollback command addressed at one
// release. Both are idempotent under redelivery: a duplicate commit for the
// already-live release and a duplicate rollback for an already-rolled-back
// release succeed without touching the NP — command datagrams are
// duplicated and retried by the same lossy links the bundles cross.
func (r *SimRouter) ApplyCommand(wire []byte) error {
	c, err := DecodeCommand(wire)
	if err != nil {
		return err
	}
	switch c.Op {
	case OpCommit:
		if r.live == c.Manifest {
			return nil // duplicate commit: already live
		}
		if r.staged == nil || *r.staged != c.Manifest {
			return fmt.Errorf("%w: commit %s", ErrNothingStaged, c.Manifest)
		}
		if _, err := r.NP.CommitAll(); err != nil {
			return err
		}
		if err := r.ledger.Accept(c.Manifest.AppName, c.Manifest.Sequence); err != nil {
			return err
		}
		r.live = c.Manifest
		r.staged = nil
		return nil
	case OpRollback:
		if r.live != c.Manifest {
			return nil // duplicate rollback: that release is no longer live
		}
		if _, err := r.NP.RollbackAll(); err != nil {
			return err
		}
		// The ledger keeps its high-water mark: rolling back restores the
		// old code, not the old replay-protection state — the fixed release
		// that follows draws a fresh, higher sequence.
		r.live = seccrypto.Manifest{}
		return nil
	}
	return fmt.Errorf("fleet: unknown command op %d", c.Op)
}

// Crash power-cycles the router mid-rollout: the staged shadow slots (RAM)
// are lost, the ledger (flash) survives. The live installation keeps
// serving after the reboot.
func (r *SimRouter) Crash() {
	r.NP.AbortAllStaged()
	r.staged = nil
}

// HealthSample is one router's health over a probe window.
type HealthSample struct {
	Processed uint64
	Alarms    uint64
	Faults    uint64
}

// EventRate returns (alarms+faults) per processed packet.
func (s HealthSample) EventRate() float64 {
	if s.Processed == 0 {
		return 0
	}
	return float64(s.Alarms+s.Faults) / float64(s.Processed)
}

// Probe pushes n benign packets through the router and returns two
// samples: observed is the controller's own ground truth (its probe
// responses), claimed is what the router reports back — a byzantine router
// claims a clean window regardless of what actually happened. The
// controller never gates on claimed values; it cross-checks them.
func (r *SimRouter) Probe(n int) (observed, claimed HealthSample) {
	for i := 0; i < n; i++ {
		res, err := r.NP.ProcessOn(0, r.probe.Next(), 0)
		observed.Processed++
		if err != nil {
			// A quarantined or unloadable core is itself a health event.
			observed.Faults++
			continue
		}
		if res.Detected {
			observed.Alarms++
		}
		if res.Faulted {
			observed.Faults++
		}
	}
	if r.byzantine {
		return observed, HealthSample{Processed: observed.Processed}
	}
	return observed, observed
}

// Group is one aggregation tier: a set of routers behind a shared lossy
// management link with its own virtual clock.
type Group struct {
	Index   int
	Routers []*SimRouter
	Link    *network.LossyLink
}

// Config sizes and seeds a fleet.
type Config struct {
	// Routers is the fleet size (>= 2: a canary plus at least one more).
	Routers int
	// GroupSize is routers per aggregation group; 0 selects 32.
	GroupSize int
	// Seed drives every random stream: initial parameters, link faults,
	// retry jitter, rotation assignment, probe traffic.
	Seed int64
	// Faults is the per-group management-link fault model.
	Faults fault.LinkFaults
	// App defaults to the vulnerable ipv4cm.
	App *apps.App
	// Compression selects the Merkle compression function; nil is the
	// paper's arithmetic sum. The rotation experiments use the S-box
	// compression — under the sum, engineered hash matches are
	// parameter-independent and rotation buys no containment (the
	// collapse finding in internal/network).
	Compression mhash.Compress
	// Partitions schedules blackhole windows per group index (virtual
	// seconds on that group's link clock).
	Partitions map[int][]fault.PartitionLink
}

// Fleet is the built topology plus the operator-side release state.
type Fleet struct {
	Groups []*Group
	App    *apps.App
	Seed   int64

	binary []byte // serialized application, shared by every bundle
	mkHash func(uint32) mhash.Hasher
	seq    uint64 // operator's monotonic release counter
}

// New builds a fleet: every router starts with the *same* hash parameter —
// the homogeneous deployment the paper warns about and the rotation rollout
// repairs — and version 0 of the application installed directly (the
// pre-control-plane state).
func New(cfg Config) (*Fleet, error) {
	if cfg.Routers < 2 {
		return nil, fmt.Errorf("fleet: %d routers (need >= 2)", cfg.Routers)
	}
	if cfg.GroupSize <= 0 {
		cfg.GroupSize = 32
	}
	if cfg.App == nil {
		cfg.App = apps.IPv4CM()
	}
	prog, err := cfg.App.Program()
	if err != nil {
		return nil, err
	}
	mk := func(p uint32) mhash.Hasher { return mhash.NewMerkle(p) }
	if cfg.Compression != nil {
		comp := cfg.Compression
		mk = func(p uint32) mhash.Hasher {
			h, err := mhash.NewMerkleWith(p, 4, comp)
			if err != nil {
				panic(err) // width 4 is always valid
			}
			return h
		}
	}
	shared := uint32(network.DeriveSeed(cfg.Seed, "fleet-initial-param"))
	sharedGraph, err := monitor.Extract(prog, mk(shared))
	if err != nil {
		return nil, err
	}
	binary := prog.Serialize()
	graph := sharedGraph.Serialize()

	f := &Fleet{App: cfg.App, Seed: cfg.Seed, mkHash: mk, binary: binary}
	nGroups := (cfg.Routers + cfg.GroupSize - 1) / cfg.GroupSize
	for g := 0; g < nGroups; g++ {
		link := network.NewLossyLink(network.GigE(), cfg.Faults,
			network.DeriveSeed(cfg.Seed, fmt.Sprintf("group-%d", g)))
		link.Partitions = cfg.Partitions[g]
		grp := &Group{Index: g, Link: link}
		for i := g * cfg.GroupSize; i < (g+1)*cfg.GroupSize && i < cfg.Routers; i++ {
			id := fmt.Sprintf("np-%04d", i)
			np, err := npu.New(npu.Config{Cores: 1, MonitorsEnabled: true, NewHasher: mk})
			if err != nil {
				return nil, err
			}
			if err := np.InstallAll(cfg.App.Name, binary, graph, shared); err != nil {
				return nil, err
			}
			grp.Routers = append(grp.Routers, &SimRouter{
				ID:     id,
				NP:     np,
				ledger: seccrypto.NewSequenceLedger(),
				probe:  packet.NewGenerator(network.DeriveSeed(cfg.Seed, "probe-"+id)),
			})
		}
		f.Groups = append(f.Groups, grp)
	}
	return f, nil
}

// Size returns the router count.
func (f *Fleet) Size() int {
	n := 0
	for _, g := range f.Groups {
		n += len(g.Routers)
	}
	return n
}

// Routers returns the fleet flattened in rollout order (group-major, which
// is also ID order).
func (f *Fleet) Routers() []*SimRouter {
	out := make([]*SimRouter, 0, f.Size())
	for _, g := range f.Groups {
		out = append(out, g.Routers...)
	}
	return out
}

// Router finds a fleet member by ID.
func (f *Fleet) Router(id string) *SimRouter {
	for _, g := range f.Groups {
		for _, r := range g.Routers {
			if r.ID == id {
				return r
			}
		}
	}
	return nil
}

// LiveParams collects every router's live hash parameter, keyed by ID —
// the evidence behind the pairwise-distinct rotation invariant.
func (f *Fleet) LiveParams() map[string]uint32 {
	out := make(map[string]uint32, f.Size())
	for _, g := range f.Groups {
		for _, r := range g.Routers {
			if p, ok := r.LiveParam(); ok {
				out[r.ID] = p
			}
		}
	}
	return out
}

// Hasher builds the fleet's hash unit for a parameter (attacker tooling in
// the bypass experiments).
func (f *Fleet) Hasher(param uint32) mhash.Hasher { return f.mkHash(param) }

// BuildRelease assembles the next release's per-router bundles under a
// rotation plan: each router's monitoring graph is extracted under its
// assigned parameter, so the bundle only validates against that parameter
// on that router. All bundles share one manifest (one release, one
// sequence number).
func (f *Fleet) BuildRelease(plan *RotationPlan) (seccrypto.Manifest, map[string][]byte, error) {
	f.seq++
	man := seccrypto.Manifest{
		AppName:  f.App.Name,
		Version:  fmt.Sprintf("rot.%d", f.seq),
		Sequence: f.seq,
	}
	wires, err := f.releaseWires(man, plan)
	return man, wires, err
}

// releaseWires rebuilds the per-router bundles for an existing release
// manifest — the resume path re-derives byte-identical payloads from the
// report's manifest and the seed-pure rotation plan.
func (f *Fleet) releaseWires(man seccrypto.Manifest, plan *RotationPlan) (map[string][]byte, error) {
	prog, err := f.App.Program()
	if err != nil {
		return nil, err
	}
	if man.Sequence > f.seq {
		f.seq = man.Sequence
	}
	wires := make(map[string][]byte, len(plan.Params))
	for id, param := range plan.Params {
		g, err := monitor.Extract(prog, f.mkHash(param))
		if err != nil {
			return nil, fmt.Errorf("fleet: extract for %s: %w", id, err)
		}
		wires[id] = EncodeBundle(Bundle{
			Manifest: man,
			Param:    param,
			Binary:   f.binary,
			Graph:    g.Serialize(),
		})
	}
	return wires, nil
}

// MakespanSeconds is the rollout's virtual wall clock: groups deliver in
// parallel, so the makespan is the latest group clock.
func (f *Fleet) MakespanSeconds() float64 {
	var m float64
	for _, g := range f.Groups {
		m = math.Max(m, g.Link.Clock())
	}
	return m
}
