package fleet

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"sdmmon/internal/network"
	"sdmmon/internal/threat"
)

// Controller errors.
var (
	// ErrHalted: the rollout stopped on a failed health gate and the wave
	// was rolled back. A halted report is terminal — the fix ships as a
	// fresh release with a higher sequence, never as a resume.
	ErrHalted = errors.New("fleet: rollout halted by health gate")
	// ErrNotResumable: Resume was handed a halted or mismatched report.
	ErrNotResumable = errors.New("fleet: report is not resumable")
)

// GateConfig tunes the per-wave health gate.
type GateConfig struct {
	// RateBudget is the tolerated increase of the wave's post-commit
	// alarm+fault rate over its pre-rollout baseline; 0 selects 0.02.
	RateBudget float64
	// MaxLevel is the threat-engine ceiling: a post-wave level above it
	// fails the gate. The zero value (None) selects Medium.
	MaxLevel threat.Level
	// HealthPackets is the probe depth per router per window; 0 selects 32.
	HealthPackets int
}

func (g GateConfig) withDefaults() GateConfig {
	if g.RateBudget == 0 {
		g.RateBudget = 0.02
	}
	if g.MaxLevel == threat.None {
		g.MaxLevel = threat.Medium
	}
	if g.HealthPackets == 0 {
		g.HealthPackets = 32
	}
	return g
}

// RolloutConfig drives one release through the fleet.
type RolloutConfig struct {
	Gate GateConfig
	// Policy bounds every per-router delivery (bundles and commands). The
	// zero value selects DefaultRetryPolicy without the per-router
	// deadline (virtual time, not wall time, is the budget here).
	Policy network.RetryPolicy
	// WaveFractions are the cumulative fleet fractions after the canary;
	// nil selects the canonical canary → 1% → 25% → 100%.
	WaveFractions []float64
	// AfterCommit, when set, runs right after a router commits (fault
	// hooks: the badwave drill poisons wave-2 routers here). Called from
	// the router's group goroutine; it must touch only that router.
	AfterCommit func(r *SimRouter, wave int)
}

// Controller drives wave-based rollouts over a fleet.
type Controller struct {
	f      *Fleet
	cfg    RolloutConfig
	engine *threat.Engine
	tick   threat.Tick
}

// NewController builds a controller with its own threat engine (record-only
// default configuration; the gate reads its level).
func NewController(f *Fleet, cfg RolloutConfig) (*Controller, error) {
	cfg.Gate = cfg.Gate.withDefaults()
	if cfg.Policy.MaxAttempts == 0 {
		cfg.Policy = network.DefaultRetryPolicy()
		cfg.Policy.DeadlineSeconds = 0
	}
	if cfg.WaveFractions == nil {
		cfg.WaveFractions = []float64{0.01, 0.25, 1.0}
	}
	for i, fr := range cfg.WaveFractions {
		if fr <= 0 || fr > 1 {
			return nil, fmt.Errorf("fleet: wave fraction %v out of (0, 1]", fr)
		}
		if i > 0 && fr < cfg.WaveFractions[i-1] {
			return nil, fmt.Errorf("fleet: wave fractions must be non-decreasing")
		}
	}
	if cfg.WaveFractions[len(cfg.WaveFractions)-1] != 1.0 {
		return nil, fmt.Errorf("fleet: final wave fraction must be 1.0")
	}
	engine, err := threat.NewEngine(threat.DefaultEngineConfig())
	if err != nil {
		return nil, err
	}
	return &Controller{f: f, cfg: cfg, engine: engine}, nil
}

// waveOf maps a rollout-order router index to its wave: index 0 is the
// canary; the cumulative fractions cut the rest.
func (c *Controller) waveOf(idx, n int) uint8 {
	if idx == 0 {
		return 0
	}
	for w, fr := range c.cfg.WaveFractions {
		if idx < int(math.Ceil(fr*float64(n))) {
			return uint8(w + 1)
		}
	}
	return uint8(len(c.cfg.WaveFractions))
}

// Run drives a fresh rollout: derive the rotation plan, build the release,
// and execute every wave. The returned report is also returned alongside
// ErrHalted so a failed gate still yields the full picture.
func (c *Controller) Run() (*FleetReport, error) {
	routers := c.f.Routers()
	ids := make([]string, len(routers))
	for i, r := range routers {
		ids[i] = r.ID
	}
	plan := NewRotationPlan(c.f.Seed, ids)
	man, wires, err := c.f.BuildRelease(plan)
	if err != nil {
		return nil, err
	}
	rep := &FleetReport{
		Seed:        c.f.Seed,
		Release:     man,
		Waves:       make([]WaveStatus, len(c.cfg.WaveFractions)+1),
		GroupClocks: make([]float64, len(c.f.Groups)),
	}
	n := len(routers)
	for i, r := range routers {
		rep.Routers = append(rep.Routers, RouterRecord{ID: r.ID, Wave: c.waveOf(i, n)})
	}
	return c.execute(rep, wires)
}

// Resume continues a rollout from a decoded report: committed routers are
// never re-delivered, probe totals accumulate on top of the saved ones, and
// each group link's virtual clock picks up where the report left it (a
// partition window that was open at the save point is still honored).
func (c *Controller) Resume(rep *FleetReport) (*FleetReport, error) {
	if rep.Halted {
		return nil, fmt.Errorf("%w: halted rollout (ship a fresh release)", ErrNotResumable)
	}
	if rep.Seed != c.f.Seed {
		return nil, fmt.Errorf("%w: report seed %d, fleet seed %d", ErrNotResumable, rep.Seed, c.f.Seed)
	}
	if len(rep.GroupClocks) != len(c.f.Groups) {
		return nil, fmt.Errorf("%w: %d group clocks for %d groups", ErrNotResumable,
			len(rep.GroupClocks), len(c.f.Groups))
	}
	ids := make([]string, 0, len(rep.Routers))
	for i := range rep.Routers {
		if c.f.Router(rep.Routers[i].ID) == nil {
			return nil, fmt.Errorf("%w: unknown router %q", ErrNotResumable, rep.Routers[i].ID)
		}
		ids = append(ids, rep.Routers[i].ID)
	}
	for g, clk := range rep.GroupClocks {
		c.f.Groups[g].Link.SetClock(clk)
	}
	// Re-derive the identical release: same rotation plan (pure function of
	// seed and IDs) under the report's manifest.
	plan := NewRotationPlan(c.f.Seed, ids)
	wires, err := c.f.releaseWires(rep.Release, plan)
	if err != nil {
		return nil, err
	}
	cp := *rep
	cp.Routers = append([]RouterRecord(nil), rep.Routers...)
	cp.Waves = append([]WaveStatus(nil), rep.Waves...)
	cp.GroupClocks = append([]float64(nil), rep.GroupClocks...)
	cp.Completed = false
	return c.execute(&cp, wires)
}

// routerOutcome is one router's result within a wave, produced inside its
// group's goroutine and merged deterministically afterwards.
type routerOutcome struct {
	rec      *RouterRecord
	baseline HealthSample // pre-delivery probe
	post     HealthSample // post-commit probe (committed routers only)
	attempts int
	// rbAttempts counts the rollback command's transmissions separately:
	// the forward-path attempts are merged into the report before the gate
	// runs, so the rollback delta must not be double-counted.
	rbAttempts int
	state      RouterState
	lastErr    string
	byz        bool
}

// groupWork is one group's slice of a wave.
type groupWork struct {
	group   *Group
	members []*routerOutcome // rollout order within the group
}

func add(dst *HealthSample, s HealthSample) {
	dst.Processed += s.Processed
	dst.Alarms += s.Alarms
	dst.Faults += s.Faults
}

// execute runs every wave that still has work, gating between waves.
func (c *Controller) execute(rep *FleetReport, wires map[string][]byte) (*FleetReport, error) {
	commitWire := EncodeCommand(Command{Op: OpCommit, Manifest: rep.Release})
	cmdSeed := network.DeriveSeed(c.f.Seed, "commit-cmd")

	byID := make(map[string]*RouterRecord, len(rep.Routers))
	for i := range rep.Routers {
		byID[rep.Routers[i].ID] = &rep.Routers[i]
	}

	for w := range rep.Waves {
		if rep.Waves[w] == WaveRolledBack {
			continue
		}
		// Collect this wave's unfinished members, grouped.
		var work []*groupWork
		committedBefore := 0
		for _, g := range c.f.Groups {
			var gw *groupWork
			for _, r := range g.Routers {
				rec := byID[r.ID]
				if rec == nil || int(rec.Wave) != w {
					continue
				}
				if rec.State == StateCommitted {
					committedBefore++
					continue
				}
				if gw == nil {
					gw = &groupWork{group: g}
				}
				gw.members = append(gw.members, &routerOutcome{rec: rec, state: rec.State})
			}
			if gw != nil {
				work = append(work, gw)
			}
		}
		if len(work) == 0 {
			// Nothing left to do: every member already committed, or the
			// wave is empty at this fleet size (e.g. a 1% wave of a tiny
			// fleet). Either way it is vacuously committed.
			rep.Waves[w] = WaveCommitted
			continue
		}

		// Deliver concurrently per group; routers within a group are
		// sequential (they share the link and its clock).
		var wg sync.WaitGroup
		for _, gw := range work {
			wg.Add(1)
			go func(gw *groupWork) {
				defer wg.Done()
				c.runGroupWave(gw, wires, commitWire, cmdSeed, w)
			}(gw)
		}
		wg.Wait()

		// Merge deterministically (work is group-ordered, members are
		// rollout-ordered) and evaluate the gate.
		var baseline, post HealthSample
		committedNow := 0
		for _, gw := range work {
			for _, out := range gw.members {
				out.rec.State = out.state
				out.rec.Attempts += uint32(out.attempts)
				out.rec.LastErr = out.lastErr
				out.rec.Byzantine = out.rec.Byzantine || out.byz
				rep.TotalAttempts += uint64(out.attempts)
				add(&rep.Probe, out.baseline)
				add(&rep.Probe, out.post)
				if out.state == StateCommitted {
					committedNow++
					add(&baseline, out.baseline)
					add(&post, out.post)
				}
			}
		}

		if committedNow == 0 && committedBefore == 0 {
			// Nothing in this wave is live (e.g. the whole wave sat behind
			// a partition): stop without judging later waves — the report
			// stays resumable right here.
			break
		}
		if committedNow > 0 {
			halted, err := c.gate(rep, work, w, baseline, post, commitWire, cmdSeed)
			if err != nil {
				return rep, err
			}
			if halted {
				c.saveClocks(rep)
				return rep, ErrHalted
			}
		}
		rep.Waves[w] = WaveCommitted
	}

	c.saveClocks(rep)
	rep.Completed = !rep.Halted && allCommitted(rep)
	return rep, nil
}

// runGroupWave drives one group's share of a wave over its own link:
// baseline probe, bundle delivery, the one-shot crash hook, the commit
// command, the post-commit hook, and the post probe with its byzantine
// cross-check.
func (c *Controller) runGroupWave(gw *groupWork, wires map[string][]byte, commitWire []byte, cmdSeed int64, wave int) {
	link := gw.group.Link
	hp := c.cfg.Gate.HealthPackets
	for _, out := range gw.members {
		r := c.f.Router(out.rec.ID)
		base, _ := r.Probe(hp)
		out.baseline = base

		if out.state != StateStaged {
			dr := network.DeliverReliable(link, r.ID, wires[r.ID], c.cfg.Policy, c.f.Seed, r.ApplyBundle)
			out.attempts += dr.Attempts
			if dr.Err != nil {
				out.state, out.lastErr = StateUnreachable, dr.Err.Error()
				continue
			}
			out.state = StateStaged
		}
		if r.crashAfterStage {
			r.crashAfterStage = false
			r.Crash()
		}
		cr := network.DeliverReliable(link, r.ID, commitWire, c.cfg.Policy, cmdSeed, r.ApplyCommand)
		out.attempts += cr.Attempts
		if cr.Err != nil {
			out.lastErr = cr.Err.Error()
			if r.staged == nil {
				// The staged state is gone (crash); the bundle must be
				// re-delivered on resume.
				out.state = StateUnreachable
			}
			continue
		}
		out.state, out.lastErr = StateCommitted, ""
		if c.cfg.AfterCommit != nil {
			c.cfg.AfterCommit(r, wave)
		}
		postObs, claimed := r.Probe(hp)
		out.post = postObs
		// Byzantine cross-check: the gate never consumes the claimed
		// sample, but a claim diverging from the controller's own
		// observation marks the router.
		out.byz = claimed != postObs
	}
}

// gate evaluates a wave's health: rate regression against its own baseline
// plus the threat-engine level ceiling. A failed gate rolls the wave back
// and halts the rollout.
func (c *Controller) gate(rep *FleetReport, work []*groupWork, wave int, baseline, post HealthSample, commitWire []byte, cmdSeed int64) (halted bool, err error) {
	// One engine tick per judged wave: per-group alarm and fault rates from
	// the post-commit probes.
	var samples []threat.Sample
	for _, gw := range work {
		var gp HealthSample
		for _, out := range gw.members {
			if out.state == StateCommitted {
				add(&gp, out.post)
			}
		}
		if gp.Processed == 0 {
			continue
		}
		samples = append(samples,
			threat.Sample{Shard: gw.group.Index, Core: -1, Signal: threat.SigAlarmRate,
				Value: float64(gp.Alarms) / float64(gp.Processed)},
			threat.Sample{Shard: gw.group.Index, Core: -1, Signal: threat.SigFaultRate,
				Value: float64(gp.Faults) / float64(gp.Processed)})
	}
	if len(samples) > 0 {
		c.tick++
		if _, err := c.engine.Tick(c.tick, samples); err != nil {
			return false, err
		}
	}
	regressed := post.EventRate()-baseline.EventRate() > c.cfg.Gate.RateBudget
	level := c.engine.Level()
	if !regressed && level <= c.cfg.Gate.MaxLevel {
		return false, nil
	}

	// Roll the wave back over the same lossy links, concurrently per
	// group, retried exactly like the forward path.
	rollbackWire := EncodeCommand(Command{Op: OpRollback, Manifest: rep.Release})
	rbSeed := network.DeriveSeed(c.f.Seed, "rollback-cmd")
	var wg sync.WaitGroup
	for _, gw := range work {
		wg.Add(1)
		go func(gw *groupWork) {
			defer wg.Done()
			for _, out := range gw.members {
				if out.state != StateCommitted {
					continue
				}
				r := c.f.Router(out.rec.ID)
				rr := network.DeliverReliable(gw.group.Link, r.ID, rollbackWire, c.cfg.Policy, rbSeed, r.ApplyCommand)
				out.rbAttempts = rr.Attempts
				if rr.Err != nil {
					out.lastErr = rr.Err.Error()
					continue
				}
				out.state = StateRolledBack
			}
		}(gw)
	}
	wg.Wait()
	// Merge the rollback deltas (the forward-path attempts were already
	// folded in before the gate ran).
	for _, gw := range work {
		for _, out := range gw.members {
			out.rec.State = out.state
			out.rec.LastErr = out.lastErr
			out.rec.Attempts += uint32(out.rbAttempts)
			rep.TotalAttempts += uint64(out.rbAttempts)
		}
	}
	rep.Waves[wave] = WaveRolledBack
	rep.Halted = true
	return true, nil
}

func (c *Controller) saveClocks(rep *FleetReport) {
	for _, g := range c.f.Groups {
		rep.GroupClocks[g.Index] = g.Link.Clock()
	}
	var m float64
	for _, clk := range rep.GroupClocks {
		m = math.Max(m, clk)
	}
	rep.MakespanSeconds = m
}

func allCommitted(rep *FleetReport) bool {
	for i := range rep.Routers {
		if rep.Routers[i].State != StateCommitted {
			return false
		}
	}
	return true
}
