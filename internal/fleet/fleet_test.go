package fleet

import (
	"errors"
	"testing"

	"sdmmon/internal/fault"
	"sdmmon/internal/network"
)

// testPolicy keeps retry budgets small so partitioned waves fail fast.
func testPolicy() network.RetryPolicy {
	return network.RetryPolicy{
		MaxAttempts:        8,
		BaseBackoffSeconds: 0.1,
		MaxBackoffSeconds:  2,
		JitterFrac:         0.25,
	}
}

func testGate() GateConfig {
	return GateConfig{HealthPackets: 8}
}

func buildFleet(t *testing.T, cfg Config) *Fleet {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRolloutCleanCompletes(t *testing.T) {
	f := buildFleet(t, Config{
		Routers:   64,
		GroupSize: 16,
		Seed:      11,
		Faults:    fault.LinkFaults{DropRate: 0.05, CorruptRate: 0.02},
	})
	ctl, err := NewController(f, RolloutConfig{Gate: testGate(), Policy: testPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ctl.Run()
	if err != nil {
		t.Fatalf("rollout failed: %v", err)
	}
	if !rep.Completed {
		t.Fatalf("rollout not completed: %+v", rep)
	}
	for w, st := range rep.Waves {
		if st != WaveCommitted {
			t.Errorf("wave %d status %v, want committed", w, st)
		}
	}
	for i := range rep.Routers {
		if rep.Routers[i].State != StateCommitted {
			t.Errorf("router %s state %v", rep.Routers[i].ID, rep.Routers[i].State)
		}
		if rep.Routers[i].Byzantine {
			t.Errorf("router %s falsely flagged byzantine", rep.Routers[i].ID)
		}
	}
	if rep.MakespanSeconds <= 0 {
		t.Error("zero makespan for a lossy rollout")
	}

	// The rotation invariant: pairwise-distinct live parameters.
	params := f.LiveParams()
	if len(params) != 64 {
		t.Fatalf("LiveParams returned %d routers", len(params))
	}
	seen := map[uint32]string{}
	for id, p := range params {
		if other, dup := seen[p]; dup {
			t.Errorf("routers %s and %s share parameter %#x", id, other, p)
		}
		seen[p] = id
	}
}

func TestRolloutReportRoundTrip(t *testing.T) {
	f := buildFleet(t, Config{Routers: 8, GroupSize: 4, Seed: 3})
	ctl, err := NewController(f, RolloutConfig{Gate: testGate(), Policy: testPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ctl.Run()
	if err != nil {
		t.Fatal(err)
	}
	wire := rep.Marshal()
	back, err := UnmarshalFleetReport(wire)
	if err != nil {
		t.Fatalf("round trip decode: %v", err)
	}
	wire2 := back.Marshal()
	if string(wire) != string(wire2) {
		t.Error("report encoding is not a fixed point")
	}
	if back.Release != rep.Release || back.Completed != rep.Completed {
		t.Errorf("round trip mutated header: %+v vs %+v", back, rep)
	}
	if len(back.Routers) != len(rep.Routers) {
		t.Fatalf("round trip lost records: %d vs %d", len(back.Routers), len(rep.Routers))
	}

	// Strict decoder: truncations and bit flips must never parse.
	for cut := 0; cut < len(wire); cut += 7 {
		if _, err := UnmarshalFleetReport(wire[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	flipped := append([]byte(nil), wire...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := UnmarshalFleetReport(flipped); err == nil {
		t.Error("bit-flipped report decoded")
	}
}

func TestResumeRejectsHaltedOrMismatched(t *testing.T) {
	f := buildFleet(t, Config{Routers: 8, GroupSize: 4, Seed: 5})
	ctl, err := NewController(f, RolloutConfig{Gate: testGate(), Policy: testPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Resume(&FleetReport{Seed: 5, Halted: true}); !errors.Is(err, ErrNotResumable) {
		t.Errorf("halted report resumed: %v", err)
	}
	if _, err := ctl.Resume(&FleetReport{Seed: 99}); !errors.Is(err, ErrNotResumable) {
		t.Errorf("mismatched seed resumed: %v", err)
	}
}
