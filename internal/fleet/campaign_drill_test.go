package fleet_test

import (
	"testing"

	"sdmmon/internal/campaign"
)

// The fleet-wide evasion drill: crack one router's parameter under a probe
// budget, replay the winning variant fleet-wide pre- and post-rotation,
// and verify rotation collapses the transfer. Pre-rotation the homogeneous
// fleet (the paper's deployment) falls to the single cracked variant;
// post-rotation the variant transfers only by fresh collision (≈1/16 per
// router under the S-box compression).
func TestCampaignCollisionFleetDrill(t *testing.T) {
	res, err := campaign.CollisionFleetDrill(campaign.FleetDrillConfig{Routers: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	t.Logf("drill: %+v", *res)
	if res.PreTransfer != res.Routers {
		t.Errorf("pre-rotation transfer %d/%d, want full homogeneous compromise",
			res.PreTransfer, res.Routers)
	}
	if res.PostTransfer >= res.PreTransfer/2 {
		t.Errorf("post-rotation transfer %d (pre %d): rotation did not contain the variant",
			res.PostTransfer, res.PreTransfer)
	}
	if res.SearchP50 < 0 && res.SearchExhausted == 0 {
		t.Error("post-rotation searches reported neither successes nor exhaustion")
	}
}

// Drill determinism: the same seed replays the same drill field for field
// (WallSeconds never enters the result).
func TestCampaignFleetDrillDeterministic(t *testing.T) {
	a, err := campaign.CollisionFleetDrill(campaign.FleetDrillConfig{Routers: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := campaign.CollisionFleetDrill(campaign.FleetDrillConfig{Routers: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("drill not deterministic:\n a %+v\n b %+v", *a, *b)
	}
}
