package fleet

import (
	"fmt"

	"sdmmon/internal/fault"
	"sdmmon/internal/network"
)

// RolloutMeasurement summarizes one complete seeded rotation rollout — the
// makespan sweep behind EXPERIMENTS.md §14 and the fleet_rollout series in
// BENCH_npu.json. All times are virtual link-clock seconds.
type RolloutMeasurement struct {
	Routers           int     `json:"routers"`
	Groups            int     `json:"groups"`
	DropRate          float64 `json:"drop_rate"`
	MakespanSeconds   float64 `json:"makespan_seconds"`
	TotalAttempts     uint64  `json:"total_attempts"`
	AttemptsPerRouter float64 `json:"attempts_per_router"`
}

// MeasureRollout builds a fleet of the given size, runs the wave rollout to
// completion under the given management-link drop rate, and reports the
// makespan. Deterministic per (routers, drop, seed).
func MeasureRollout(routers int, drop float64, seed int64) (RolloutMeasurement, error) {
	var m RolloutMeasurement
	gs := routers / 8
	if gs < 8 {
		gs = 8
	}
	f, err := New(Config{
		Routers:   routers,
		GroupSize: gs,
		Seed:      seed,
		Faults:    fault.LinkFaults{DropRate: drop},
	})
	if err != nil {
		return m, err
	}
	ctl, err := NewController(f, RolloutConfig{
		Gate: GateConfig{HealthPackets: 8},
		Policy: network.RetryPolicy{
			MaxAttempts:        32,
			BaseBackoffSeconds: 0.1,
			MaxBackoffSeconds:  2,
			JitterFrac:         0.25,
		},
	})
	if err != nil {
		return m, err
	}
	rep, err := ctl.Run()
	if err != nil {
		return m, err
	}
	if !rep.Completed {
		return m, fmt.Errorf("fleet: measurement rollout did not complete (%d routers, %.0f%% drop)",
			routers, drop*100)
	}
	m = RolloutMeasurement{
		Routers:           routers,
		Groups:            len(f.Groups),
		DropRate:          drop,
		MakespanSeconds:   rep.MakespanSeconds,
		TotalAttempts:     rep.TotalAttempts,
		AttemptsPerRouter: float64(rep.TotalAttempts) / float64(routers),
	}
	return m, nil
}
