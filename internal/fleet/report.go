package fleet

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"sdmmon/internal/seccrypto"
)

// RouterState is one router's position in the rollout state machine.
type RouterState uint8

const (
	// StatePending: no delivery reached the router yet.
	StatePending RouterState = iota
	// StateStaged: the bundle is staged (shadow slots) but not committed —
	// the commit command never got through.
	StateStaged
	// StateCommitted: the release is live on the router.
	StateCommitted
	// StateRolledBack: the release was committed, then rolled back by a
	// failed health gate.
	StateRolledBack
	// StateUnreachable: the retry budget ran out without a staged bundle;
	// the wave proceeded without the router.
	StateUnreachable

	numRouterStates = iota
)

var routerStateNames = [numRouterStates]string{
	"pending", "staged", "committed", "rolled-back", "unreachable",
}

func (s RouterState) String() string {
	if int(s) < numRouterStates {
		return routerStateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// WaveStatus is one wave's position in the rollout.
type WaveStatus uint8

const (
	// WavePending: the wave has not run (or still has undelivered members).
	WavePending WaveStatus = iota
	// WaveCommitted: the wave's gate passed; stragglers may remain.
	WaveCommitted
	// WaveRolledBack: the wave's gate failed and its routers were rolled
	// back.
	WaveRolledBack

	numWaveStatuses = iota
)

var waveStatusNames = [numWaveStatuses]string{"pending", "committed", "rolled-back"}

func (s WaveStatus) String() string {
	if int(s) < numWaveStatuses {
		return waveStatusNames[s]
	}
	return fmt.Sprintf("wave-status(%d)", uint8(s))
}

// RouterRecord is one router's rollout outcome.
type RouterRecord struct {
	ID    string
	Wave  uint8
	State RouterState
	// Byzantine marks a router whose claimed health diverged from the
	// controller's own observations.
	Byzantine bool
	// Attempts counts transmissions across every delivery to the router
	// (bundles and commands, including resumed runs).
	Attempts uint32
	// LastErr is the final delivery or command error, "" on success.
	LastErr string
}

// FleetReport is the rollout's resumable outcome: enough state for a
// restarted controller to finish the job without re-delivering to routers
// that already committed, plus the totals the experiments table reads. Its
// serialization ("FLTR") is canonical — records sorted by router ID, fixed
// encodings — so a seeded re-run reproduces identical bytes.
type FleetReport struct {
	Seed    int64
	Release seccrypto.Manifest
	Waves   []WaveStatus
	// Halted: a health gate failed; the rollout stopped and the failed
	// wave was rolled back. A halted report is not resumable — the fix
	// ships as a fresh release.
	Halted bool
	// Completed: every router committed and no gate failed.
	Completed bool
	// MakespanSeconds is the latest group-link virtual clock.
	MakespanSeconds float64
	// GroupClocks preserves each group link's virtual clock so a resumed
	// run continues the same timeline (partition windows stay aligned).
	GroupClocks []float64
	// Routers is sorted by ID.
	Routers []RouterRecord
	// Probe totals across the rollout (resume accumulates, never recounts).
	Probe HealthSample
	// TotalAttempts sums transmissions fleet-wide.
	TotalAttempts uint64
}

// Stragglers returns the IDs of routers that have not committed (and were
// not rolled back) — the work a resumed run picks up.
func (r *FleetReport) Straggler(id string) bool {
	for i := range r.Routers {
		if r.Routers[i].ID == id {
			s := r.Routers[i].State
			return s != StateCommitted && s != StateRolledBack
		}
	}
	return false
}

func putU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func putU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func putF64(buf *bytes.Buffer, v float64) { putU64(buf, math.Float64bits(v)) }

func putBool(buf *bytes.Buffer, v bool) {
	if v {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
}

// Marshal serializes the report canonically ("FLTR").
func (r *FleetReport) Marshal() []byte {
	recs := append([]RouterRecord(nil), r.Routers...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	var buf bytes.Buffer
	putU64(&buf, uint64(r.Seed))
	writeManifest(&buf, r.Release)
	putU32(&buf, uint32(len(r.Waves)))
	for _, w := range r.Waves {
		buf.WriteByte(uint8(w))
	}
	putBool(&buf, r.Halted)
	putBool(&buf, r.Completed)
	putF64(&buf, r.MakespanSeconds)
	putU32(&buf, uint32(len(r.GroupClocks)))
	for _, c := range r.GroupClocks {
		putF64(&buf, c)
	}
	putU32(&buf, uint32(len(recs)))
	for _, rec := range recs {
		writeBytes(&buf, []byte(rec.ID))
		buf.WriteByte(rec.Wave)
		buf.WriteByte(uint8(rec.State))
		putBool(&buf, rec.Byzantine)
		putU32(&buf, rec.Attempts)
		writeBytes(&buf, []byte(rec.LastErr))
	}
	putU64(&buf, r.Probe.Processed)
	putU64(&buf, r.Probe.Alarms)
	putU64(&buf, r.Probe.Faults)
	putU64(&buf, r.TotalAttempts)
	return sealEnvelope("FLTR", buf.Bytes())
}

// UnmarshalFleetReport strictly parses an FLTR payload: bad magic,
// checksum mismatch, truncation, out-of-range enums, unsorted or duplicate
// records, and trailing bytes are all rejected.
func UnmarshalFleetReport(wire []byte) (*FleetReport, error) {
	payload, err := openEnvelope(wire, "FLTR")
	if err != nil {
		return nil, err
	}
	rd := bytes.NewReader(payload)
	rep := &FleetReport{}
	var seed uint64
	if err := binary.Read(rd, binary.BigEndian, &seed); err != nil {
		return nil, fmt.Errorf("%w: seed: %v", ErrWire, err)
	}
	rep.Seed = int64(seed)
	if rep.Release, err = readManifest(rd); err != nil {
		return nil, err
	}
	var nWaves uint32
	if err := binary.Read(rd, binary.BigEndian, &nWaves); err != nil {
		return nil, fmt.Errorf("%w: wave count: %v", ErrWire, err)
	}
	if int64(nWaves) > int64(rd.Len()) {
		return nil, fmt.Errorf("%w: wave count %d exceeds payload", ErrWire, nWaves)
	}
	for i := uint32(0); i < nWaves; i++ {
		b, err := rd.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: wave %d: %v", ErrWire, i, err)
		}
		if int(b) >= numWaveStatuses {
			return nil, fmt.Errorf("%w: wave %d status %d out of range", ErrWire, i, b)
		}
		rep.Waves = append(rep.Waves, WaveStatus(b))
	}
	readBool := func(what string) (bool, error) {
		b, err := rd.ReadByte()
		if err != nil {
			return false, fmt.Errorf("%w: %s: %v", ErrWire, what, err)
		}
		if b > 1 {
			return false, fmt.Errorf("%w: %s flag %d", ErrWire, what, b)
		}
		return b == 1, nil
	}
	readF64 := func(what string) (float64, error) {
		var v uint64
		if err := binary.Read(rd, binary.BigEndian, &v); err != nil {
			return 0, fmt.Errorf("%w: %s: %v", ErrWire, what, err)
		}
		return math.Float64frombits(v), nil
	}
	if rep.Halted, err = readBool("halted"); err != nil {
		return nil, err
	}
	if rep.Completed, err = readBool("completed"); err != nil {
		return nil, err
	}
	if rep.MakespanSeconds, err = readF64("makespan"); err != nil {
		return nil, err
	}
	var nClocks uint32
	if err := binary.Read(rd, binary.BigEndian, &nClocks); err != nil {
		return nil, fmt.Errorf("%w: clock count: %v", ErrWire, err)
	}
	if int64(nClocks)*8 > int64(rd.Len()) {
		return nil, fmt.Errorf("%w: clock count %d exceeds payload", ErrWire, nClocks)
	}
	for i := uint32(0); i < nClocks; i++ {
		c, err := readF64("group clock")
		if err != nil {
			return nil, err
		}
		rep.GroupClocks = append(rep.GroupClocks, c)
	}
	var nRecs uint32
	if err := binary.Read(rd, binary.BigEndian, &nRecs); err != nil {
		return nil, fmt.Errorf("%w: record count: %v", ErrWire, err)
	}
	if int64(nRecs) > int64(rd.Len()) { // each record needs >= 11 bytes
		return nil, fmt.Errorf("%w: record count %d exceeds payload", ErrWire, nRecs)
	}
	prevID := ""
	for i := uint32(0); i < nRecs; i++ {
		var rec RouterRecord
		id, err := readBytes(rd, "router id")
		if err != nil {
			return nil, err
		}
		rec.ID = string(id)
		if i > 0 && rec.ID <= prevID {
			return nil, fmt.Errorf("%w: record %q out of order", ErrWire, rec.ID)
		}
		prevID = rec.ID
		if rec.Wave, err = rd.ReadByte(); err != nil {
			return nil, fmt.Errorf("%w: record wave: %v", ErrWire, err)
		}
		st, err := rd.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: record state: %v", ErrWire, err)
		}
		if int(st) >= numRouterStates {
			return nil, fmt.Errorf("%w: record state %d out of range", ErrWire, st)
		}
		rec.State = RouterState(st)
		if rec.Byzantine, err = readBool("byzantine"); err != nil {
			return nil, err
		}
		if err := binary.Read(rd, binary.BigEndian, &rec.Attempts); err != nil {
			return nil, fmt.Errorf("%w: record attempts: %v", ErrWire, err)
		}
		lastErr, err := readBytes(rd, "last error")
		if err != nil {
			return nil, err
		}
		rec.LastErr = string(lastErr)
		rep.Routers = append(rep.Routers, rec)
	}
	for _, f := range []*uint64{&rep.Probe.Processed, &rep.Probe.Alarms, &rep.Probe.Faults, &rep.TotalAttempts} {
		if err := binary.Read(rd, binary.BigEndian, f); err != nil {
			return nil, fmt.Errorf("%w: totals: %v", ErrWire, err)
		}
	}
	if rd.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing report bytes", ErrWire, rd.Len())
	}
	return rep, nil
}
