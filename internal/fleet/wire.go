package fleet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sort"

	"sdmmon/internal/network"
	"sdmmon/internal/seccrypto"
)

// The control plane's wire formats. All follow the repo's serialization
// idiom (seccrypto's ledger): 4-byte ASCII magic, big-endian fixed-width
// integers, length-prefixed byte strings, and a strict decoder that rejects
// truncation, bad counts, and trailing bytes. Bundles and commands carry an
// FNV-1a checksum over their payload — the simulation's stand-in for the
// signature check: a datagram corrupted on the wire fails verification at
// the router and is retried by the sender, never trusted.

// ErrWire is wrapped by every decode failure.
var ErrWire = errors.New("fleet: malformed wire payload")

func checksum(b []byte) uint32 {
	h := fnv.New32a()
	h.Write(b)
	return h.Sum32()
}

func writeBytes(buf *bytes.Buffer, b []byte) {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(b)))
	buf.Write(n[:])
	buf.Write(b)
}

func readBytes(r *bytes.Reader, what string) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: %s length: %v", ErrWire, what, err)
	}
	if int64(n) > int64(r.Len()) {
		return nil, fmt.Errorf("%w: %s length %d exceeds payload", ErrWire, what, n)
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrWire, what, err)
	}
	return out, nil
}

// openEnvelope verifies a magic+checksum envelope and returns the payload.
func openEnvelope(wire []byte, magic string) ([]byte, error) {
	if len(wire) < 8 || string(wire[:4]) != magic {
		return nil, fmt.Errorf("%w: bad %s envelope", ErrWire, magic)
	}
	payload := wire[8:]
	if binary.BigEndian.Uint32(wire[4:8]) != checksum(payload) {
		return nil, fmt.Errorf("%w: %s checksum mismatch", ErrWire, magic)
	}
	return payload, nil
}

// sealEnvelope prepends magic and checksum to a payload.
func sealEnvelope(magic string, payload []byte) []byte {
	out := make([]byte, 0, 8+len(payload))
	out = append(out, magic...)
	var c [4]byte
	binary.BigEndian.PutUint32(c[:], checksum(payload))
	out = append(out, c[:]...)
	return append(out, payload...)
}

func writeManifest(buf *bytes.Buffer, m seccrypto.Manifest) {
	writeBytes(buf, []byte(m.AppName))
	writeBytes(buf, []byte(m.Version))
	var s [8]byte
	binary.BigEndian.PutUint64(s[:], m.Sequence)
	buf.Write(s[:])
}

func readManifest(r *bytes.Reader) (seccrypto.Manifest, error) {
	var m seccrypto.Manifest
	app, err := readBytes(r, "app name")
	if err != nil {
		return m, err
	}
	ver, err := readBytes(r, "version")
	if err != nil {
		return m, err
	}
	if err := binary.Read(r, binary.BigEndian, &m.Sequence); err != nil {
		return m, fmt.Errorf("%w: sequence: %v", ErrWire, err)
	}
	m.AppName, m.Version = string(app), string(ver)
	return m, nil
}

// Bundle is one router's installation payload: the release manifest, the
// router's assigned hash parameter, and the binary plus the monitoring
// graph extracted under that parameter.
type Bundle struct {
	Manifest seccrypto.Manifest
	Param    uint32
	Binary   []byte
	Graph    []byte
}

// EncodeBundle serializes a bundle ("FLTB").
func EncodeBundle(b Bundle) []byte {
	var buf bytes.Buffer
	writeManifest(&buf, b.Manifest)
	var p [4]byte
	binary.BigEndian.PutUint32(p[:], b.Param)
	buf.Write(p[:])
	writeBytes(&buf, b.Binary)
	writeBytes(&buf, b.Graph)
	return sealEnvelope("FLTB", buf.Bytes())
}

// DecodeBundle strictly parses an FLTB payload.
func DecodeBundle(wire []byte) (Bundle, error) {
	var b Bundle
	payload, err := openEnvelope(wire, "FLTB")
	if err != nil {
		return b, err
	}
	r := bytes.NewReader(payload)
	if b.Manifest, err = readManifest(r); err != nil {
		return b, err
	}
	if err := binary.Read(r, binary.BigEndian, &b.Param); err != nil {
		return b, fmt.Errorf("%w: param: %v", ErrWire, err)
	}
	if b.Binary, err = readBytes(r, "binary"); err != nil {
		return b, err
	}
	if b.Graph, err = readBytes(r, "graph"); err != nil {
		return b, err
	}
	if r.Len() != 0 {
		return b, fmt.Errorf("%w: %d trailing bundle bytes", ErrWire, r.Len())
	}
	return b, nil
}

// Command ops.
const (
	OpCommit uint8 = iota + 1
	OpRollback
)

// Command is a control-plane order addressed at one release: cut the
// staged bundle over, or roll the named release back.
type Command struct {
	Op       uint8
	Manifest seccrypto.Manifest
}

// EncodeCommand serializes a command ("FLCM").
func EncodeCommand(c Command) []byte {
	var buf bytes.Buffer
	buf.WriteByte(c.Op)
	writeManifest(&buf, c.Manifest)
	return sealEnvelope("FLCM", buf.Bytes())
}

// DecodeCommand strictly parses an FLCM payload.
func DecodeCommand(wire []byte) (Command, error) {
	var c Command
	payload, err := openEnvelope(wire, "FLCM")
	if err != nil {
		return c, err
	}
	r := bytes.NewReader(payload)
	op, err := r.ReadByte()
	if err != nil {
		return c, fmt.Errorf("%w: op: %v", ErrWire, err)
	}
	if op != OpCommit && op != OpRollback {
		return c, fmt.Errorf("%w: unknown op %d", ErrWire, op)
	}
	c.Op = op
	if c.Manifest, err = readManifest(r); err != nil {
		return c, err
	}
	if r.Len() != 0 {
		return c, fmt.Errorf("%w: %d trailing command bytes", ErrWire, r.Len())
	}
	return c, nil
}

// RotationPlan assigns every router a hash parameter. A valid plan is
// pairwise distinct: no two routers share a parameter, so a per-parameter
// monitor bypass engineered against one router fails on every other.
type RotationPlan struct {
	Params map[string]uint32
}

// NewRotationPlan draws a deterministic pairwise-distinct assignment for
// the given router IDs from the seed. The same (seed, IDs) always produces
// the same plan — a resumed rollout re-derives identical payloads.
func NewRotationPlan(seed int64, ids []string) *RotationPlan {
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	rng := rand.New(rand.NewSource(network.DeriveSeed(seed, "rotation-plan")))
	used := make(map[uint32]bool, len(sorted))
	plan := &RotationPlan{Params: make(map[string]uint32, len(sorted))}
	for _, id := range sorted {
		p := rng.Uint32()
		for used[p] {
			p = rng.Uint32()
		}
		used[p] = true
		plan.Params[id] = p
	}
	return plan
}

// Distinct verifies the pairwise-distinct invariant.
func (p *RotationPlan) Distinct() bool {
	seen := make(map[uint32]bool, len(p.Params))
	for _, v := range p.Params {
		if seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Marshal serializes the plan ("FLRP"), entries sorted by router ID so the
// encoding is canonical.
func (p *RotationPlan) Marshal() []byte {
	ids := make([]string, 0, len(p.Params))
	for id := range p.Params {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var buf bytes.Buffer
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(ids)))
	buf.Write(n[:])
	for _, id := range ids {
		writeBytes(&buf, []byte(id))
		var v [4]byte
		binary.BigEndian.PutUint32(v[:], p.Params[id])
		buf.Write(v[:])
	}
	return sealEnvelope("FLRP", buf.Bytes())
}

// UnmarshalRotationPlan strictly parses an FLRP payload, rejecting
// duplicate router IDs and duplicate parameters (a plan that violates the
// rotation invariant must not decode).
func UnmarshalRotationPlan(wire []byte) (*RotationPlan, error) {
	payload, err := openEnvelope(wire, "FLRP")
	if err != nil {
		return nil, err
	}
	r := bytes.NewReader(payload)
	var count uint32
	if err := binary.Read(r, binary.BigEndian, &count); err != nil {
		return nil, fmt.Errorf("%w: plan count: %v", ErrWire, err)
	}
	if int64(count) > int64(r.Len()) { // each entry needs >= 8 bytes
		return nil, fmt.Errorf("%w: plan count %d exceeds payload", ErrWire, count)
	}
	plan := &RotationPlan{Params: make(map[string]uint32, count)}
	seen := make(map[uint32]bool, count)
	prevID := ""
	for i := uint32(0); i < count; i++ {
		id, err := readBytes(r, "router id")
		if err != nil {
			return nil, err
		}
		if i > 0 && string(id) <= prevID {
			return nil, fmt.Errorf("%w: plan entry %q out of order", ErrWire, id)
		}
		prevID = string(id)
		var v uint32
		if err := binary.Read(r, binary.BigEndian, &v); err != nil {
			return nil, fmt.Errorf("%w: plan entry %d: %v", ErrWire, i, err)
		}
		if seen[v] {
			return nil, fmt.Errorf("%w: duplicate parameter %#x", ErrWire, v)
		}
		seen[v] = true
		plan.Params[string(id)] = v
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing plan bytes", ErrWire, r.Len())
	}
	return plan, nil
}
