package tenant

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/npu"
	"sdmmon/internal/obs"
	"sdmmon/internal/seccrypto"
)

// tnp builds one unpartitioned line-card NP.
func tnp(t *testing.T, cores int, sup npu.SupervisorConfig) *npu.NP {
	t.Helper()
	np, err := npu.New(npu.Config{Cores: cores, MonitorsEnabled: true, Supervisor: sup})
	if err != nil {
		t.Fatal(err)
	}
	return np
}

// twoTenantMgr builds a manager with tenants a (cores 0,1) and b (cores
// 2,3) over nps fresh 4-core NPs. Supervisor disabled unless sup is set.
func twoTenantMgr(t *testing.T, nps int, col *obs.Collector, sup npu.SupervisorConfig) *Manager {
	t.Helper()
	cards := make([]*npu.NP, nps)
	for i := range cards {
		cards[i] = tnp(t, 4, sup)
	}
	mgr, err := New(Config{
		NPs: cards,
		Specs: []Spec{
			{Name: "a", Cores: []int{0, 1}},
			{Name: "b", Cores: []int{2, 3}},
		},
		Classify:      benchClassify,
		QueueCapacity: 64,
		Obs:           col,
	})
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

func mustPkt(t *testing.T, tenant int, flow uint16) []byte {
	t.Helper()
	b, err := benchPkt(tenant, flow, []byte("tenant-test"))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func counterVal(col *obs.Collector, name string, tenant string) uint64 {
	return col.Registry().Counter(obs.Labeled(name, "tenant", tenant)).Value()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Specs: []Spec{{Name: "a", Cores: []int{0}}}, QueueCapacity: 8}); err == nil {
		t.Fatal("manager without NPs accepted")
	}
	if _, err := New(Config{NPs: []*npu.NP{tnp(t, 2, npu.SupervisorConfig{})}, QueueCapacity: 8}); err == nil {
		t.Fatal("manager without tenant specs accepted")
	}
	// Overlapping core claims are refused by the npu domain layer.
	_, err := New(Config{
		NPs: []*npu.NP{tnp(t, 4, npu.SupervisorConfig{})},
		Specs: []Spec{
			{Name: "a", Cores: []int{0, 1}},
			{Name: "b", Cores: []int{1, 2}},
		},
		Classify:      benchClassify,
		QueueCapacity: 8,
	})
	if err == nil {
		t.Fatal("overlapping tenant core claims accepted")
	}
}

func TestInstallLedgerAntiDowngrade(t *testing.T) {
	col := obs.New(64)
	mgr := twoTenantMgr(t, 2, col, npu.SupervisorConfig{})
	defer mgr.Close()

	v1 := AppBundle{App: apps.IPv4CM(), Param: 0x11, Version: "1.0", Sequence: 1}
	if err := mgr.Install("a", v1); err != nil {
		t.Fatalf("install a seq 1: %v", err)
	}
	if hw, _ := mgr.HighWater("a", "ipv4cm"); hw != 1 {
		t.Fatalf("tenant a high-water = %d, want 1", hw)
	}

	// Replaying the same sequence is a downgrade for tenant a...
	if err := mgr.Install("a", v1); !errors.Is(err, seccrypto.ErrDowngrade) {
		t.Fatalf("replayed sequence: err = %v, want ErrDowngrade", err)
	}
	if got := counterVal(col, "tenant_refused_total", "a"); got != 1 {
		t.Fatalf("tenant_refused_total{a} = %d, want 1", got)
	}
	// ...but tenant b's ledger is independent: the same sequence is fresh.
	if err := mgr.Install("b", v1); err != nil {
		t.Fatalf("install b seq 1: %v", err)
	}

	v2 := AppBundle{App: apps.IPv4CM(), Param: 0x12, Version: "1.1", Sequence: 2}
	if err := mgr.Install("a", v2); err != nil {
		t.Fatalf("install a seq 2: %v", err)
	}

	// Ledger persistence survives a plane rebuild.
	img, err := mgr.MarshalLedger("a")
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := twoTenantMgr(t, 1, nil, npu.SupervisorConfig{})
	defer mgr2.Close()
	if err := mgr2.RestoreLedger("a", img); err != nil {
		t.Fatal(err)
	}
	if hw, _ := mgr2.HighWater("a", "ipv4cm"); hw != 2 {
		t.Fatalf("restored high-water = %d, want 2", hw)
	}
	if err := mgr2.Install("a", v2); !errors.Is(err, seccrypto.ErrDowngrade) {
		t.Fatalf("restored ledger allowed replay: %v", err)
	}

	if _, err := mgr.HighWater("ghost", "ipv4cm"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("ghost tenant: err = %v, want ErrUnknownTenant", err)
	}
}

func TestInstallLandsOnlyOnTenantSlots(t *testing.T) {
	mgr := twoTenantMgr(t, 2, nil, npu.SupervisorConfig{})
	defer mgr.Close()
	if err := mgr.Install("a", AppBundle{App: apps.UDPEcho(), Param: 0xA1}); err != nil {
		t.Fatal(err)
	}
	for i, np := range mgr.nps {
		for _, core := range []int{0, 1} {
			if name, ok := np.AppOn(core); !ok || name != "udpecho" {
				t.Fatalf("NP %d core %d: app %q ok=%v, want udpecho", i, core, name, ok)
			}
		}
		for _, core := range []int{2, 3} {
			if name, ok := np.AppOn(core); ok {
				t.Fatalf("NP %d core %d: tenant a's install leaked app %q onto tenant b's slot", i, core, name)
			}
		}
	}
}

func TestRolloutCleanUpgrade(t *testing.T) {
	col := obs.New(64)
	mgr := twoTenantMgr(t, 3, col, npu.SupervisorConfig{})
	defer mgr.Close()
	if err := mgr.Install("a", AppBundle{App: apps.UDPEcho(), Param: 0xA1, Version: "1.0", Sequence: 1}); err != nil {
		t.Fatal(err)
	}

	rep, err := mgr.Rollout("a", AppBundle{App: apps.UDPEcho(), Param: 0xA2, Version: "1.1", Sequence: 2}, Gate{}, 42)
	if err != nil {
		t.Fatalf("clean rollout: %v (reason %q)", err, rep.Reason)
	}
	if !rep.Completed || rep.RolledBack {
		t.Fatalf("rollout completed=%v rolledback=%v, want completed", rep.Completed, rep.RolledBack)
	}
	if rep.Waves != 3 {
		t.Fatalf("waves = %d, want 3", rep.Waves)
	}
	for _, out := range rep.Outcomes {
		if !out.Committed || out.RolledBack || out.Err != nil {
			t.Fatalf("NP %d outcome %+v, want committed", out.NP, out)
		}
		if out.Baseline.Processed == 0 || out.After.Processed == 0 {
			t.Fatalf("NP %d: empty health samples %+v", out.NP, out)
		}
	}
	if hw, _ := mgr.HighWater("a", "udpecho"); hw != 2 {
		t.Fatalf("post-rollout high-water = %d, want 2", hw)
	}
	if got := counterVal(col, "tenant_rollouts_completed_total", "a"); got != 1 {
		t.Fatalf("tenant_rollouts_completed_total{a} = %d, want 1", got)
	}

	// The completed sequence is now the floor: replaying it is refused
	// before anything stages.
	if _, err := mgr.Rollout("a", AppBundle{App: apps.UDPEcho(), Param: 0xA3, Version: "1.1", Sequence: 2}, Gate{}, 43); !errors.Is(err, seccrypto.ErrDowngrade) {
		t.Fatalf("replayed rollout sequence: err = %v, want ErrDowngrade", err)
	}
}

// TestRolloutRegressionBystanderByteIdentical is the isolation-pinning
// proof for rollouts: tenant a ships a release that passes every install
// gate and faults under live traffic; the canary health gate catches it and
// rolls tenant a back — and tenant b's entire telemetry slice, domain
// statistics and installed software are byte-for-byte identical across the
// whole episode.
func TestRolloutRegressionBystanderByteIdentical(t *testing.T) {
	col := obs.New(64)
	mgr := twoTenantMgr(t, 2, col, npu.SupervisorConfig{})
	defer mgr.Close()
	if err := mgr.Install("a", AppBundle{App: apps.UDPEcho(), Param: 0xA1, Version: "1.0", Sequence: 1}); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Install("b", AppBundle{App: apps.IPv4CM(), Param: 0xB1, Version: "3.0", Sequence: 7}); err != nil {
		t.Fatal(err)
	}

	// Freeze tenant b's world before the hostile episode.
	bBefore, err := col.Snapshot().FilterLabel("tenant", "b").MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	bStats := make([]npu.Stats, len(mgr.nps))
	for i, np := range mgr.nps {
		if bStats[i], err = np.StatsDomain("b"); err != nil {
			t.Fatal(err)
		}
	}

	bad := AppBundle{App: apps.FaultyEcho(), Param: 0xA2, Version: "1.1", Sequence: 2}
	rep, err := mgr.Rollout("a", bad, Gate{HealthPackets: 32}, 99)
	if !errors.Is(err, ErrHealthRegression) {
		t.Fatalf("faulty rollout: err = %v, want ErrHealthRegression", err)
	}
	if !rep.RolledBack || rep.Completed {
		t.Fatalf("faulty rollout report %+v, want rolled back", rep)
	}
	if rep.Waves != 1 {
		t.Fatalf("regression escaped the canary: waves = %d, want 1", rep.Waves)
	}
	if out := rep.Outcomes[0]; !out.RolledBack || out.Committed {
		t.Fatalf("canary outcome %+v, want rolled back", out)
	}
	if rep.Outcomes[1].Committed || rep.Outcomes[1].RolledBack {
		t.Fatalf("NP 1 was touched by a canary-stage regression: %+v", rep.Outcomes[1])
	}
	if got := counterVal(col, "tenant_rollbacks_total", "a"); got != 1 {
		t.Fatalf("tenant_rollbacks_total{a} = %d, want 1", got)
	}

	// Tenant b: telemetry byte-identical, domain stats identical, software
	// untouched, health untouched.
	bAfter, err := col.Snapshot().FilterLabel("tenant", "b").MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bBefore, bAfter) {
		t.Fatalf("bystander telemetry changed across tenant a's rollback:\nbefore %s\nafter  %s", bBefore, bAfter)
	}
	for i, np := range mgr.nps {
		ds, err := np.StatsDomain("b")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ds, bStats[i]) {
			t.Fatalf("NP %d: bystander domain stats changed: %+v -> %+v", i, bStats[i], ds)
		}
		for _, core := range []int{2, 3} {
			if name, ok := np.AppOn(core); !ok || name != "ipv4cm" {
				t.Fatalf("NP %d core %d: bystander app %q ok=%v after rollback", i, core, name, ok)
			}
		}
		if !np.HealthyDomain("b") {
			t.Fatalf("NP %d: bystander domain unhealthy after a's rollback", i)
		}
	}

	// The rolled-back sequence was never accepted, so the fixed release can
	// reuse it.
	if hw, _ := mgr.HighWater("a", "udpecho"); hw != 1 {
		t.Fatalf("rolled-back rollout advanced the ledger to %d", hw)
	}
	rep, err = mgr.Rollout("a", AppBundle{App: apps.UDPEcho(), Param: 0xA3, Version: "1.1-fixed", Sequence: 2}, Gate{}, 100)
	if err != nil || !rep.Completed {
		t.Fatalf("retry with fixed release: err=%v report %+v", err, rep)
	}
	if hw, _ := mgr.HighWater("a", "udpecho"); hw != 2 {
		t.Fatalf("retry did not advance ledger: high-water %d", hw)
	}
}

// TestRolloutQuarantineGate drives the other regression trigger: with the
// supervisor armed, the faulty canary quarantines its own cores, and the
// gate fails on quarantines even before the rate comparison.
func TestRolloutQuarantineGate(t *testing.T) {
	sup := npu.SupervisorConfig{Window: 16, Threshold: 4, ProbationPackets: 8}
	mgr := twoTenantMgr(t, 2, nil, sup)
	defer mgr.Close()
	if err := mgr.Install("a", AppBundle{App: apps.UDPEcho(), Param: 0xA1, Sequence: 1}); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Install("b", AppBundle{App: apps.IPv4CM(), Param: 0xB1, Sequence: 1}); err != nil {
		t.Fatal(err)
	}
	rep, err := mgr.Rollout("a", AppBundle{App: apps.FaultyEcho(), Param: 0xA2, Sequence: 2}, Gate{HealthPackets: 32}, 7)
	if !errors.Is(err, ErrHealthRegression) {
		t.Fatalf("err = %v, want ErrHealthRegression", err)
	}
	if !rep.RolledBack {
		t.Fatalf("report %+v, want rolled back", rep)
	}
	// The blast radius stays inside tenant a: b's domain never loses a core.
	for i, np := range mgr.nps {
		if !np.HealthyDomain("b") {
			t.Fatalf("NP %d: bystander lost health during a's quarantine storm", i)
		}
	}
}

func TestSnapshotAndTenantControls(t *testing.T) {
	col := obs.New(64)
	mgr := twoTenantMgr(t, 2, col, npu.SupervisorConfig{})
	if err := mgr.Install("a", AppBundle{App: apps.IPv4CM(), Param: 0xA1}); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Install("b", AppBundle{App: apps.IPv4CM(), Param: 0xB1}); err != nil {
		t.Fatal(err)
	}

	var pkts [][]byte
	for i := 0; i < 40; i++ {
		pkts = append(pkts, mustPkt(t, 0, uint16(i%8)))
	}
	for i := 0; i < 24; i++ {
		pkts = append(pkts, mustPkt(t, 1, uint16(i%8)))
	}
	mgr.Plane().SubmitBatch(pkts)

	// Tenant-scoped lockdown levers resolve by name.
	if err := mgr.Lockdown("a"); err != nil {
		t.Fatal(err)
	}
	if !mgr.Plane().TenantLockedDown(0) {
		t.Fatal("tenant a not locked down")
	}
	if mgr.Plane().TenantLockedDown(1) {
		t.Fatal("tenant b locked down by a's lockdown")
	}
	if err := mgr.Unlock("a"); err != nil {
		t.Fatal(err)
	}
	mgr.Close()

	snapA, err := mgr.Snapshot("a")
	if err != nil {
		t.Fatal(err)
	}
	snapB, err := mgr.Snapshot("b")
	if err != nil {
		t.Fatal(err)
	}
	if snapA.Plane.Arrived != 40 || snapB.Plane.Arrived != 24 {
		t.Fatalf("arrived a=%d b=%d, want 40/24", snapA.Plane.Arrived, snapB.Plane.Arrived)
	}
	if !snapA.Plane.Conserved() || !snapB.Plane.Conserved() {
		t.Fatalf("snapshots not conserved: a=%+v b=%+v", snapA.Plane, snapB.Plane)
	}
	if len(snapA.Domains) != 2 {
		t.Fatalf("snapshot has %d domain accounts, want 2", len(snapA.Domains))
	}
	var domA uint64
	for _, ds := range snapA.Domains {
		domA += ds.Processed
	}
	if domA != snapA.Plane.Processed {
		t.Fatalf("domain processed %d != plane processed %d", domA, snapA.Plane.Processed)
	}

	// Quarantine goes through the domain gate: tenant a cannot name b's core.
	if err := mgr.Quarantine("a", 0, 2); !errors.Is(err, npu.ErrDomainViolation) {
		t.Fatalf("cross-tenant quarantine: err = %v, want ErrDomainViolation", err)
	}
	if err := mgr.Quarantine("a", 0, 0); err != nil {
		t.Fatalf("in-domain quarantine: %v", err)
	}
	if _, err := mgr.Snapshot("ghost"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("ghost snapshot: err = %v, want ErrUnknownTenant", err)
	}
}

func TestMeasureIsolation(t *testing.T) {
	base, err := MeasureIsolation(IsolationConfig{
		Tenants: 1, Shards: 2, CoresPerTenant: 2, PacketsPerTenant: 512, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := MeasureIsolation(IsolationConfig{
		Tenants: 4, Shards: 2, CoresPerTenant: 2, PacketsPerTenant: 512, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.PerTenant) != 4 {
		t.Fatalf("per-tenant series has %d entries, want 4", len(multi.PerTenant))
	}
	for i, pps := range multi.PerTenant {
		if pps <= 0 {
			t.Fatalf("tenant %d measured %v pkts/sec", i, pps)
		}
	}
	// The isolation claim: a tenant keeps its own cores, so adding three
	// neighbors must not divide its throughput. Allow modest scheduling
	// noise but reject anything resembling proportional degradation.
	if multi.MinPktsPerSec < 0.5*base.MinPktsPerSec {
		t.Fatalf("isolation broken: 4-tenant min %.0f vs single-tenant %.0f pkts/sec",
			multi.MinPktsPerSec, base.MinPktsPerSec)
	}
}
