package tenant

// Tenant-isolation bench (EXPERIMENTS.md §E17): per-tenant throughput as
// the same silicon is split among 1, 2 and 4 tenants. Each tenant keeps
// the same private resources at every point — the same core count per NP,
// its own ingress lanes, its own monitoring graphs — so ideal isolation
// means per-tenant throughput that does not degrade as neighbors are
// added. The measurement is virtual-time, like the shard bench: a tenant's
// makespan is its slowest lane's busy cycles over its core count, and its
// throughput is its packet budget over that makespan at the modeled clock.

import (
	"fmt"
	"time"

	"sdmmon/internal/npu"
	"sdmmon/internal/packet"
)

// IsolationConfig describes one isolation measurement point.
type IsolationConfig struct {
	App              string // "" selects ipv4cm
	Tenants          int
	Shards           int
	CoresPerTenant   int // per NP, per tenant
	PacketsPerTenant int
	Flows            int // flow population per tenant; 0 selects 64
	Seed             int64
	// ClockMHz models the hardware clock; 0 selects 100 MHz.
	ClockMHz float64
}

// IsolationPoint is one measured point of the tenant_isolation series.
type IsolationPoint struct {
	Tenants          int       `json:"tenants"`
	Shards           int       `json:"shards"`
	CoresPerTenant   int       `json:"cores_per_tenant"`
	PacketsPerTenant uint64    `json:"packets_per_tenant"`
	PerTenant        []float64 `json:"per_tenant_pkts_per_sec"`
	// MinPktsPerSec is the slowest tenant — the isolation headline: it
	// should track the single-tenant baseline, not divide by the tenant
	// count.
	MinPktsPerSec float64 `json:"min_pkts_per_sec"`
	// AggPktsPerSec is the whole plane's simulated aggregate.
	AggPktsPerSec float64 `json:"agg_pkts_per_sec"`
	WallSeconds   float64 `json:"wall_seconds"`
}

// benchPkt builds a deterministic UDP packet for one tenant and flow; the
// tenant index rides in the source address's second octet, which is what
// the bench classifier reads back.
func benchPkt(tenant int, flow uint16, payload []byte) ([]byte, error) {
	u := &packet.UDP{SrcPort: 1000 + flow, DstPort: 53, Payload: payload}
	p := &packet.IPv4{
		TTL: 64, Proto: packet.ProtoUDP,
		Src:     packet.IP(10, byte(tenant), byte(flow>>8), byte(flow)),
		Dst:     packet.IP(192, 168, 0, 1),
		Payload: u.Marshal(),
	}
	return p.Marshal()
}

// benchClassify reads the tenant index back out of the source address.
func benchClassify(pkt []byte) int {
	if len(pkt) < 20 {
		return -1
	}
	return int(pkt[13])
}

// MeasureIsolation runs one point: Tenants tenants, each owning
// CoresPerTenant cores on each of Shards NPs, each submitting
// PacketsPerTenant packets of its own flows, interleaved round-robin so
// every tenant contends for dispatch at once. The run must be loss-free
// and per-tenant conserved or the point is rejected.
func MeasureIsolation(cfg IsolationConfig) (IsolationPoint, error) {
	if cfg.Tenants < 1 || cfg.Shards < 1 || cfg.CoresPerTenant < 1 {
		return IsolationPoint{}, fmt.Errorf("tenant: bench needs tenants, shards, cores >= 1")
	}
	if cfg.PacketsPerTenant < 1 {
		cfg.PacketsPerTenant = 2048
	}
	flows := cfg.Flows
	if flows == 0 {
		flows = 64
	}
	clockHz := cfg.ClockMHz * 1e6
	if clockHz <= 0 {
		clockHz = 100e6
	}

	specs := make([]Spec, cfg.Tenants)
	for t := range specs {
		cores := make([]int, cfg.CoresPerTenant)
		for c := range cores {
			cores[c] = t*cfg.CoresPerTenant + c
		}
		specs[t] = Spec{Name: fmt.Sprintf("t%d", t), Cores: cores}
	}
	nps := make([]*npu.NP, cfg.Shards)
	for i := range nps {
		np, err := npu.NewBenchNP(cfg.App, cfg.Tenants*cfg.CoresPerTenant, false, cfg.Seed+int64(i))
		if err != nil {
			return IsolationPoint{}, err
		}
		nps[i] = np
	}
	// Capacity covers each tenant's full budget and marking is disabled so
	// the run is loss-free and every seed processes the identical set.
	mgr, err := New(Config{
		NPs:           nps,
		Specs:         specs,
		Classify:      benchClassify,
		QueueCapacity: cfg.PacketsPerTenant,
		MarkThreshold: cfg.PacketsPerTenant,
	})
	if err != nil {
		return IsolationPoint{}, err
	}
	// NewBenchNP pre-installs on every core, which SetDomains preserves, so
	// the domains are live without a per-tenant install here; the isolation
	// property under test is dispatch and accounting, not provisioning.

	payload := []byte("isolation-bench")
	total := cfg.Tenants * cfg.PacketsPerTenant
	pkts := make([][]byte, 0, total)
	for i := 0; i < cfg.PacketsPerTenant; i++ {
		for t := 0; t < cfg.Tenants; t++ {
			b, err := benchPkt(t, uint16((i*31+t)%flows), payload)
			if err != nil {
				return IsolationPoint{}, err
			}
			pkts = append(pkts, b)
		}
	}

	start := time.Now()
	mgr.Plane().SubmitBatch(pkts)
	mgr.Close()
	wall := time.Since(start).Seconds()

	st := mgr.Plane().Stats()
	if !st.Conserved() {
		return IsolationPoint{}, fmt.Errorf("tenant: bench run not conserved")
	}
	if st.TailDrops != 0 || st.Starved != 0 || st.Backlog != 0 {
		return IsolationPoint{}, fmt.Errorf("tenant: bench run lost packets (tail=%d starved=%d backlog=%d)",
			st.TailDrops, st.Starved, st.Backlog)
	}

	p := IsolationPoint{
		Tenants:          cfg.Tenants,
		Shards:           cfg.Shards,
		CoresPerTenant:   cfg.CoresPerTenant,
		PacketsPerTenant: uint64(cfg.PacketsPerTenant),
		PerTenant:        make([]float64, cfg.Tenants),
		WallSeconds:      wall,
	}
	lanes := mgr.Plane().LaneCycles()
	var aggMakespan uint64
	for t := 0; t < cfg.Tenants; t++ {
		ts := st.Tenants[t]
		if !ts.Conserved() {
			return IsolationPoint{}, fmt.Errorf("tenant: %s not conserved in bench run", ts.Name)
		}
		var makespan uint64
		for s := 0; s < cfg.Shards; s++ {
			span := lanes[s][t] / uint64(cfg.CoresPerTenant)
			if span > makespan {
				makespan = span
			}
		}
		if makespan > 0 {
			p.PerTenant[t] = float64(ts.Forwarded+ts.AppDrops) * clockHz / float64(makespan)
		}
		if makespan > aggMakespan {
			aggMakespan = makespan
		}
		if t == 0 || p.PerTenant[t] < p.MinPktsPerSec {
			p.MinPktsPerSec = p.PerTenant[t]
		}
	}
	if aggMakespan > 0 {
		p.AggPktsPerSec = float64(st.Forwarded+st.AppDrops) * clockHz / float64(aggMakespan)
	}
	return p, nil
}
