// Package tenant is the trusted domain manager (DESIGN.md §17): the one
// layer that lets a single monitored plane host many applications from
// many tenants with hardware-grade isolation. The paper's architecture
// protects one application with one monitor; a deployed network processor
// is shared — several customers' packet programs run side by side on one
// sea of cores, and the security system has to keep them apart at every
// layer, not just in the monitoring graphs.
//
// The manager composes the isolation primitives the lower layers export
// into per-tenant protection domains:
//
//   - cores: each tenant owns an exclusive slice of every NP's core slots
//     (npu.SetDomains), and every install, stage, commit, rollback and
//     quarantine the manager performs goes through the domain-gated npu
//     entry points — a call that names another tenant's core is refused
//     with npu.ErrDomainViolation before any state moves;
//
//   - monitoring: each tenant's bundles carry its own monitoring graphs,
//     extracted under its own hash parameter, so one tenant learning
//     another's graph structure or hash schedule gains nothing;
//
//   - versions: each tenant has its own seccrypto.SequenceLedger, so
//     anti-downgrade high-water marks are per tenant — tenant A shipping
//     sequence 40 does not let (or force) tenant B to skip to 41, and a
//     replayed old bundle is refused per tenant;
//
//   - traffic: the shard plane schedules by flow class (shard.Tenancy):
//     each tenant's flows ride its own ingress lanes and drain onto its
//     own cores, with per-tenant admission, lockdown, failover and exact
//     per-tenant packet conservation;
//
//   - telemetry: every tenant-scoped series carries a tenant label, and
//     the leakage drill in this package's tests byte-compares a bystander
//     tenant's entire label slice across another tenant's traffic, attack
//     and response activity.
//
// Rollouts are tenant-scoped too (rollout.go): a tenant's new version
// canaries on its own slots of NP 0, health-gates against its own domain
// statistics, and rolls back its own domain fleet-wide on regression —
// structurally unable to touch anyone else's slots because every step
// addresses cores through the tenant's domain name.
package tenant

import (
	"errors"
	"fmt"

	"sdmmon/internal/apps"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
	"sdmmon/internal/npu"
	"sdmmon/internal/obs"
	"sdmmon/internal/seccrypto"
	"sdmmon/internal/shard"
)

// Manager-level errors.
var (
	// ErrUnknownTenant: the named tenant is not part of this plane.
	ErrUnknownTenant = errors.New("tenant: unknown tenant")
)

// Spec declares one tenant: its name (which becomes its protection-domain
// name on every NP and its label in the metric namespace) and the core
// slots it owns on every NP. Core ownership is exclusive; New refuses
// overlapping specs (via npu.SetDomains).
type Spec struct {
	Name  string
	Cores []int
}

// AppBundle is one tenant application release. The manager assembles the
// binary and extracts the monitoring graph itself, under the tenant's own
// hash parameter — tenants hand over programs, never pre-built graphs, so
// a tenant cannot ship a graph that vouches for someone else's binary.
type AppBundle struct {
	App *apps.App
	// Param seeds the tenant's monitoring hash for this release. Rotate it
	// per release; it never needs to relate to any other tenant's.
	Param uint32
	// Version is a human label carried into reports ("1.2.0").
	Version string
	// Sequence is the anti-downgrade sequence number checked against the
	// tenant's own ledger. 0 bypasses the ledger (legacy/unversioned).
	Sequence uint64
}

// target renders the report label for a bundle.
func (b AppBundle) target() string {
	v := b.Version
	if v == "" {
		v = "unversioned"
	}
	return fmt.Sprintf("%s@%s#%d", b.App.Name, v, b.Sequence)
}

// Config assembles a multi-tenant plane.
type Config struct {
	// NPs are the line cards. The manager installs the domain partition on
	// every one of them; they must not already be partitioned.
	NPs []*npu.NP
	// Specs declare the tenants, in tenant-index order.
	Specs []Spec
	// Classify maps a packet to its tenant index (the flow class); see
	// shard.TenancyConfig.Classify. Required when len(Specs) > 1.
	Classify func(pkt []byte) int
	// QueueCapacity / MarkThreshold / BatchSize shape each tenant's
	// per-shard ingress lane; see shard.Config.
	QueueCapacity int
	MarkThreshold int
	BatchSize     int
	// Obs receives the plane's tenant-labeled series and the manager's
	// tenant_* lifecycle counters. Nil disables telemetry.
	Obs *obs.Collector
}

// tenantState is the manager's per-tenant record.
type tenantState struct {
	name   string
	ledger *seccrypto.SequenceLedger

	mInstalls  *obs.Counter
	mRollouts  *obs.Counter
	mRollbacks *obs.Counter
	mRefused   *obs.Counter
}

// Manager is the trusted domain manager: the only component that holds
// both the core partition and the dispatch plane, and the only path
// through which tenant software reaches cores.
type Manager struct {
	nps     []*npu.NP
	plane   *shard.Plane
	tenants []*tenantState
	byName  map[string]int
	obs     *obs.Collector
}

// New partitions every NP, builds the tenant-aware shard plane, and
// returns the manager. Install each tenant's application (Install or
// Rollout) before submitting its traffic: a lane draining onto a domain
// with nothing installed fails over, exactly like a wedged card.
func New(cfg Config) (*Manager, error) {
	if len(cfg.NPs) == 0 {
		return nil, fmt.Errorf("tenant: manager needs at least one NP")
	}
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("tenant: manager needs at least one tenant spec")
	}
	if cfg.QueueCapacity < 1 {
		return nil, fmt.Errorf("tenant: queue capacity %d must be >= 1", cfg.QueueCapacity)
	}
	specs := make([]npu.DomainSpec, len(cfg.Specs))
	names := make([]string, len(cfg.Specs))
	for i, sp := range cfg.Specs {
		specs[i] = npu.DomainSpec{Name: sp.Name, Cores: sp.Cores}
		names[i] = sp.Name
	}
	for i, np := range cfg.NPs {
		if err := np.SetDomains(specs); err != nil {
			return nil, fmt.Errorf("tenant: NP %d: %w", i, err)
		}
	}
	var tenancy *shard.TenancyConfig
	if len(names) > 1 || cfg.Classify != nil {
		tenancy = &shard.TenancyConfig{Tenants: names, Classify: cfg.Classify}
	} else {
		tenancy = &shard.TenancyConfig{Tenants: names}
	}
	plane, err := shard.NewPlane(shard.Config{
		NPs:           cfg.NPs,
		QueueCapacity: cfg.QueueCapacity,
		MarkThreshold: cfg.MarkThreshold,
		BatchSize:     cfg.BatchSize,
		Obs:           cfg.Obs,
		Tenancy:       tenancy,
	})
	if err != nil {
		return nil, err
	}
	m := &Manager{
		nps:    cfg.NPs,
		plane:  plane,
		byName: make(map[string]int, len(names)),
		obs:    cfg.Obs,
	}
	reg := cfg.Obs.Registry()
	for i, name := range names {
		m.byName[name] = i
		m.tenants = append(m.tenants, &tenantState{
			name:       name,
			ledger:     seccrypto.NewSequenceLedger(),
			mInstalls:  reg.Counter(obs.Labeled("tenant_installs_total", "tenant", name)),
			mRollouts:  reg.Counter(obs.Labeled("tenant_rollouts_completed_total", "tenant", name)),
			mRollbacks: reg.Counter(obs.Labeled("tenant_rollbacks_total", "tenant", name)),
			mRefused:   reg.Counter(obs.Labeled("tenant_refused_total", "tenant", name)),
		})
	}
	return m, nil
}

// Plane exposes the dispatch plane (Submit/SubmitBatch/Stats and the
// per-tenant admission and lockdown levers).
func (m *Manager) Plane() *shard.Plane { return m.plane }

// Tenants lists tenant names in index order.
func (m *Manager) Tenants() []string {
	out := make([]string, len(m.tenants))
	for i, ts := range m.tenants {
		out[i] = ts.name
	}
	return out
}

// Index resolves a tenant name.
func (m *Manager) Index(name string) (int, error) {
	i, ok := m.byName[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	return i, nil
}

// state resolves a tenant record.
func (m *Manager) state(name string) (*tenantState, error) {
	i, err := m.Index(name)
	if err != nil {
		return nil, err
	}
	return m.tenants[i], nil
}

// build assembles a bundle's binary and monitoring graph under the
// tenant's hash parameter.
func build(b AppBundle) (binary, graph []byte, err error) {
	if b.App == nil {
		return nil, nil, fmt.Errorf("tenant: bundle has no application")
	}
	prog, err := b.App.Program()
	if err != nil {
		return nil, nil, err
	}
	g, err := monitor.Extract(prog, mhash.NewMerkle(b.Param))
	if err != nil {
		return nil, nil, err
	}
	return prog.Serialize(), g.Serialize(), nil
}

// Install puts a bundle live on every core the tenant owns, on every NP,
// gated by the tenant's anti-downgrade ledger. This is the direct
// (non-canaried) path — first boot, or an emergency push; use Rollout for
// health-gated upgrades.
func (m *Manager) Install(tenant string, b AppBundle) error {
	ts, err := m.state(tenant)
	if err != nil {
		return err
	}
	if b.Sequence > 0 {
		if err := ts.ledger.Accept(b.App.Name, b.Sequence); err != nil {
			ts.mRefused.Inc()
			return err
		}
	}
	binary, graph, err := build(b)
	if err != nil {
		return err
	}
	for i, np := range m.nps {
		if err := np.InstallDomainAll(tenant, b.App.Name, binary, graph, b.Param); err != nil {
			return fmt.Errorf("tenant: install on NP %d: %w", i, err)
		}
	}
	ts.mInstalls.Inc()
	return nil
}

// HighWater reports the tenant's accepted sequence high-water mark for an
// application.
func (m *Manager) HighWater(tenant, app string) (uint64, error) {
	ts, err := m.state(tenant)
	if err != nil {
		return 0, err
	}
	return ts.ledger.HighWater(app), nil
}

// MarshalLedger serializes one tenant's ledger for persistence; restore
// with RestoreLedger after rebuilding the plane.
func (m *Manager) MarshalLedger(tenant string) ([]byte, error) {
	ts, err := m.state(tenant)
	if err != nil {
		return nil, err
	}
	return ts.ledger.Marshal(), nil
}

// RestoreLedger replaces one tenant's ledger with a persisted image.
func (m *Manager) RestoreLedger(tenant string, data []byte) error {
	ts, err := m.state(tenant)
	if err != nil {
		return err
	}
	l, err := seccrypto.UnmarshalSequenceLedger(data)
	if err != nil {
		return err
	}
	ts.ledger = l
	return nil
}

// Snapshot is one tenant's cross-layer view: its plane accounting and its
// per-NP domain statistics. Nothing in it reads another tenant's state.
type Snapshot struct {
	Tenant string
	Plane  shard.TenantStats
	// Domains[i] is the tenant's stat account on NP i.
	Domains []npu.Stats
}

// Snapshot collects one tenant's view.
func (m *Manager) Snapshot(tenant string) (Snapshot, error) {
	idx, err := m.Index(tenant)
	if err != nil {
		return Snapshot{}, err
	}
	ps, err := m.plane.TenantStatsFor(idx)
	if err != nil {
		return Snapshot{}, err
	}
	snap := Snapshot{Tenant: tenant, Plane: ps}
	for _, np := range m.nps {
		ds, err := np.StatsDomain(tenant)
		if err != nil {
			return Snapshot{}, err
		}
		snap.Domains = append(snap.Domains, ds)
	}
	return snap, nil
}

// Quarantine isolates one core of the tenant's domain on one NP — the
// tenant-scoped isolate_core response action. A core outside the tenant's
// domain is refused with npu.ErrDomainViolation.
func (m *Manager) Quarantine(tenant string, np, core int) error {
	if _, err := m.state(tenant); err != nil {
		return err
	}
	if np < 0 || np >= len(m.nps) {
		return fmt.Errorf("tenant: no NP %d", np)
	}
	return m.nps[np].QuarantineDomain(tenant, core)
}

// Lockdown closes one tenant's admission plane-wide (and only that
// tenant's); Unlock re-opens it.
func (m *Manager) Lockdown(tenant string) error {
	idx, err := m.Index(tenant)
	if err != nil {
		return err
	}
	return m.plane.LockdownTenant(idx)
}

// Unlock re-opens one tenant's admission.
func (m *Manager) Unlock(tenant string) error {
	idx, err := m.Index(tenant)
	if err != nil {
		return err
	}
	return m.plane.ClearLockdownTenant(idx)
}

// Close stops the plane (drains backlogs first).
func (m *Manager) Close() { m.plane.Close() }
