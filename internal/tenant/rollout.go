package tenant

// Tenant-scoped canary rollouts: the fleet-rollout discipline of
// internal/network (canary first, health gate against the unit's own
// baseline, automatic rollback on regression) applied to one tenant's
// protection domain across the plane's NPs. Every step addresses cores
// through the tenant's domain name — StageInstallDomainAll,
// CommitDomainAll, RollbackDomainAll — so the rollout is structurally
// unable to touch another tenant's slots: the npu layer refuses
// out-of-domain cores before any state moves, and the isolation test
// byte-compares a bystander's telemetry across a hostile rollout to prove
// it.

import (
	"errors"
	"fmt"

	"sdmmon/internal/npu"
	"sdmmon/internal/packet"
	"sdmmon/internal/seccrypto"
)

// ErrHealthRegression: the canary (or a later wave) regressed against its
// own pre-upgrade baseline; the tenant's domain was rolled back everywhere
// it had committed.
var ErrHealthRegression = errors.New("tenant: health regression; domain rolled back")

// Gate parameterizes the per-NP health check of a tenant rollout.
type Gate struct {
	// HealthPackets per sample (baseline and post-commit). Default 128.
	HealthPackets int
	// RateBudget is the tolerated event-rate increase (alarms+faults per
	// processed packet) over the baseline. Default 0.02.
	RateBudget float64
}

func (g Gate) withDefaults() Gate {
	if g.HealthPackets <= 0 {
		g.HealthPackets = 128
	}
	if g.RateBudget <= 0 {
		g.RateBudget = 0.02
	}
	return g
}

// HealthSample is one traffic measurement on one NP's tenant domain.
type HealthSample struct {
	Processed   uint64
	Events      uint64 // alarms + faults
	Quarantines uint64
}

// Rate is events per processed packet (0 for an empty sample).
func (h HealthSample) Rate() float64 {
	if h.Processed == 0 {
		return 0
	}
	return float64(h.Events) / float64(h.Processed)
}

// regressed applies the gate: post-commit event rate above baseline plus
// budget, or any quarantine on the new version.
func (g Gate) regressed(base, after HealthSample) bool {
	if after.Quarantines > 0 {
		return true
	}
	return after.Rate() > base.Rate()+g.RateBudget
}

// NPOutcome records one NP's part in a tenant rollout.
type NPOutcome struct {
	NP         int
	Committed  bool
	RolledBack bool
	Baseline   HealthSample
	After      HealthSample
	Err        error
}

// Report is the outcome of one tenant rollout.
type Report struct {
	Tenant string
	Target string
	// Waves counts health-gated commit waves (wave 0 is the canary: the
	// tenant's slots on NP 0).
	Waves      int
	Completed  bool
	RolledBack bool
	Reason     string
	Outcomes   []NPOutcome
}

// sampleDomain runs n deterministic packets through one NP's tenant domain
// and measures the domain's own outcome. The batch-local delta (DrainBatch
// reports exactly this batch's counters) plus the domain quarantine delta
// make the sample immune to concurrent traffic on other tenants' cores.
func sampleDomain(np *npu.NP, domain string, gen *packet.Generator, n int) (HealthSample, error) {
	pkts := make([][]byte, n)
	for i := range pkts {
		pkts[i] = gen.Next()
	}
	before, err := np.StatsDomain(domain)
	if err != nil {
		return HealthSample{}, err
	}
	out, derr := np.DrainBatchDomain(domain, pkts, 0)
	after, err := np.StatsDomain(domain)
	if err != nil {
		return HealthSample{}, err
	}
	h := HealthSample{
		Processed:   out.Processed,
		Events:      out.Alarms + out.Faults,
		Quarantines: after.Quarantines - before.Quarantines,
	}
	return h, derr
}

// Rollout performs a canaried, health-gated upgrade of one tenant's domain
// across every NP. The canary is the tenant's own slots on NP 0: stage,
// commit at a packet boundary, then compare the domain's post-commit event
// rate against its own pre-upgrade baseline. A regression rolls the
// tenant's domain back everywhere it committed (and discards anything
// staged) and returns ErrHealthRegression; no other tenant's slots are
// touched at any point, in success or failure. On success the tenant's
// anti-downgrade ledger advances to the bundle's sequence.
func (m *Manager) Rollout(tenant string, b AppBundle, gate Gate, seed int64) (*Report, error) {
	ts, err := m.state(tenant)
	if err != nil {
		return nil, err
	}
	gate = gate.withDefaults()
	rep := &Report{
		Tenant:   tenant,
		Target:   b.target(),
		Outcomes: make([]NPOutcome, len(m.nps)),
	}
	for i := range rep.Outcomes {
		rep.Outcomes[i].NP = i
	}
	finish := func(reason string, err error) (*Report, error) {
		rep.Reason = reason
		rep.Completed = err == nil && !rep.RolledBack
		if rep.Completed {
			ts.mRollouts.Inc()
		}
		return rep, err
	}

	// Anti-downgrade gate before anything is staged: the high-water mark
	// only advances after the rollout completes, so a rolled-back sequence
	// can be retried.
	if b.Sequence > 0 {
		if hw := ts.ledger.HighWater(b.App.Name); b.Sequence <= hw {
			ts.mRefused.Inc()
			return finish(fmt.Sprintf("sequence %d at or below high-water %d", b.Sequence, hw),
				fmt.Errorf("%w: %s sequence %d, tenant high-water %d",
					seccrypto.ErrDowngrade, b.App.Name, b.Sequence, hw))
		}
	}
	binary, graph, err := build(b)
	if err != nil {
		return finish("bundle build failed", err)
	}

	// abortAll discards anything staged (idempotent per NP) and rolls the
	// committed NPs back, newest first.
	rollbackAll := func(committed []int) {
		for _, np := range m.nps {
			_ = np.AbortStagedDomain(tenant)
		}
		for i := len(committed) - 1; i >= 0; i-- {
			j := committed[i]
			if _, err := m.nps[j].RollbackDomainAll(tenant); err != nil {
				rep.Outcomes[j].Err = fmt.Errorf("rollback on NP %d: %w", j, err)
				continue
			}
			rep.Outcomes[j].Committed = false
			rep.Outcomes[j].RolledBack = true
		}
		ts.mRollbacks.Inc()
		rep.RolledBack = true
	}

	var committed []int
	for i, np := range m.nps {
		rep.Waves = i + 1
		out := &rep.Outcomes[i]

		gen := packet.NewGenerator(seed ^ int64(i)<<8)
		base, err := sampleDomain(np, tenant, gen, gate.HealthPackets)
		if err != nil {
			return finish(fmt.Sprintf("baseline on NP %d failed", i),
				fmt.Errorf("tenant: baseline on NP %d: %w", i, err))
		}
		out.Baseline = base

		if err := np.StageInstallDomainAll(tenant, b.App.Name, binary, graph, b.Param); err != nil {
			_ = np.AbortStagedDomain(tenant)
			return finish(fmt.Sprintf("stage on NP %d refused", i),
				fmt.Errorf("tenant: stage on NP %d: %w", i, err))
		}
		if _, err := np.CommitDomainAll(tenant); err != nil {
			rollbackAll(committed)
			return finish(fmt.Sprintf("commit on NP %d failed", i),
				fmt.Errorf("tenant: commit on NP %d: %w", i, err))
		}
		out.Committed = true
		committed = append(committed, i)

		gen = packet.NewGenerator(seed ^ int64(i)<<8 ^ 0x5a5a)
		after, err := sampleDomain(np, tenant, gen, gate.HealthPackets)
		out.After = after
		regressed := gate.regressed(base, after)
		if err != nil {
			// The new version took the whole domain down — the strongest
			// possible regression.
			regressed = true
		}
		if regressed {
			out.Err = fmt.Errorf("%w: %s on NP %d rate %.4f vs baseline %.4f (+%d quarantines)",
				ErrHealthRegression, tenant, i, after.Rate(), base.Rate(), after.Quarantines)
			rollbackAll(committed)
			return finish(fmt.Sprintf("health regression on NP %d; tenant domain rolled back", i), out.Err)
		}
	}

	if b.Sequence > 0 {
		if err := ts.ledger.Accept(b.App.Name, b.Sequence); err != nil {
			// Unreachable given the entry check, but never let the ledger
			// silently diverge from what is running.
			return finish("ledger refused completed rollout", err)
		}
	}
	return finish("", nil)
}
