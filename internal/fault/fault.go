// Package fault provides deterministic, seeded fault injectors for the
// resilience suite: bit flips in a core's instruction memory, flaky
// hash-unit outputs, corruption of serialized monitoring-graph bundles,
// forced core hangs (cycle-budget exhaustion), spurious exceptions, and
// drop/corrupt/duplicate faults on the management wire.
//
// Every injector draws from a single seeded source, so a fault scenario is
// a pure function of its seed: the invariant tests and `npsim -faults`
// replay the exact same fault sequence on every run.
package fault

import (
	"math/rand"

	"sdmmon/internal/apps"
	"sdmmon/internal/mhash"
)

// Injector is a deterministic fault source.
type Injector struct {
	rng  *rand.Rand
	wire WireStats
}

// New builds an injector seeded for reproducible fault sequences.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Rand exposes the injector's random source (scenario drivers that need
// auxiliary deterministic choices).
func (in *Injector) Rand() *rand.Rand { return in.rng }

// FlipBit flips one bit of the instruction word at byte address addr in the
// core's memory — a single-event upset in the instruction store. The
// corruption is persistent: the paper's recovery resets registers, not
// memory, so only a re-installation heals it.
func (in *Injector) FlipBit(c *apps.Core, addr uint32, bit uint) bool {
	raw, ok := c.Mem().Load32(addr)
	if !ok {
		return false
	}
	return c.Mem().Store32(addr, raw^(1<<(bit&31)))
}

// FlipCodeBit flips a random bit in a random instruction word of the
// core's loaded program and returns the faulted location.
func (in *Injector) FlipCodeBit(c *apps.Core) (addr uint32, bit uint) {
	words := c.Program().CodeWords()
	cw := words[in.rng.Intn(len(words))]
	bit = uint(in.rng.Intn(32))
	in.FlipBit(c, cw.Addr, bit)
	return cw.Addr, bit
}

// Poison overwrites the instruction word at addr with a word that does not
// decode to any implemented instruction, forcing a spurious architectural
// exception (reserved-instruction) if the monitor's hash check lets it
// retire.
func (in *Injector) Poison(c *apps.Core, addr uint32) bool {
	// 0x3F is an unassigned primary opcode in the implemented MIPS-I
	// subset, so the word never validates regardless of its operand bits.
	const reserved = 0xFC00_0000
	return c.Mem().Store32(addr, reserved|uint32(in.rng.Intn(1<<16)))
}

// Hang models runaway code by exhausting the core's cycle budget: the
// watchdog budget is shrunk to `budget` cycles so any packet trips
// ExcCycleLimit. The returned function restores the original budget.
func (in *Injector) Hang(c *apps.Core, budget uint64) (restore func()) {
	old := c.MaxCyclesPerPacket
	if budget < 1 {
		budget = 1
	}
	c.MaxCyclesPerPacket = budget
	return func() { c.MaxCyclesPerPacket = old }
}

// CorruptBits returns a copy of b with nbits random bit positions flipped
// (at most one flip per position).
func (in *Injector) CorruptBits(b []byte, nbits int) []byte {
	out := append([]byte(nil), b...)
	if len(out) == 0 {
		return out
	}
	for i := 0; i < nbits; i++ {
		pos := in.rng.Intn(len(out) * 8)
		out[pos/8] ^= 1 << uint(pos%8)
	}
	return out
}

// FlakyHasher wraps a hash unit and flips a random output bit on a
// configurable fraction of lookups — a hardware fault in the monitor's own
// hash circuit. Rate 0 passes through untouched; SetRate arms the fault
// after installation (the install-time self-check would otherwise reject
// the unit outright, which is its own test case).
type FlakyHasher struct {
	inner mhash.Hasher
	rng   *rand.Rand
	rate  float64
	flips uint64
}

// FlakyHasher derives a faulty hash unit from the injector's seed stream.
func (in *Injector) FlakyHasher(inner mhash.Hasher, rate float64) *FlakyHasher {
	return &FlakyHasher{
		inner: inner,
		rng:   rand.New(rand.NewSource(in.rng.Int63())),
		rate:  rate,
	}
}

// SetRate changes the per-lookup corruption probability.
func (h *FlakyHasher) SetRate(r float64) { h.rate = r }

// Flips reports how many lookups were corrupted.
func (h *FlakyHasher) Flips() uint64 { return h.flips }

// Hash implements mhash.Hasher with injected output corruption.
func (h *FlakyHasher) Hash(instr uint32) uint8 {
	v := h.inner.Hash(instr)
	if h.rate > 0 && h.rng.Float64() < h.rate {
		h.flips++
		v ^= 1 << uint(h.rng.Intn(h.inner.Width()))
	}
	return v
}

// Width implements mhash.Hasher.
func (h *FlakyHasher) Width() int { return h.inner.Width() }

// PartitionLink is a scheduled network partition on a management link: every
// datagram offered to the wire while the virtual clock is inside
// [Start, End) is blackholed — the aggregation tier behind the link is
// unreachable for the whole window, which is how a backhaul cut differs
// from the per-datagram randomness of LinkFaults. Windows are expressed in
// the same virtual seconds the delivery loops accumulate (wire + backoff
// time), so a partition is deterministic per scenario, not per seed.
type PartitionLink struct {
	// Start and End bound the blackhole window in virtual seconds.
	// A window with End <= Start never activates.
	Start, End float64
}

// Active reports whether the partition blackholes the wire at virtual time
// now.
func (p PartitionLink) Active(now float64) bool {
	return p.End > p.Start && now >= p.Start && now < p.End
}

// LinkFaults parameterizes the management-path fault model: each delivered
// datagram is independently dropped, bit-corrupted, or duplicated.
type LinkFaults struct {
	DropRate      float64
	CorruptRate   float64
	DuplicateRate float64
}

// WireStats is the injector's ground-truth accounting of what it did to the
// management wire — the reference the delivery reports are audited against:
// every dropped or corrupted datagram must surface as exactly one failed
// delivery attempt upstream.
type WireStats struct {
	// Sent counts datagrams offered to the wire (calls to Wire).
	Sent uint64
	// Dropped counts datagrams that produced zero copies.
	Dropped uint64
	// Corrupted counts datagrams whose delivered copy was bit-flipped.
	Corrupted uint64
	// Duplicated counts datagrams delivered twice.
	Duplicated uint64
}

// WireStats returns the injector's cumulative wire fault accounting.
func (in *Injector) WireStats() WireStats { return in.wire }

// Wire applies the link fault model to one datagram. It returns zero
// copies (dropped), one copy (possibly corrupted), or two copies
// (duplicated). The input slice is never aliased by the output.
func (in *Injector) Wire(wire []byte, f LinkFaults) [][]byte {
	in.wire.Sent++
	if in.rng.Float64() < f.DropRate {
		in.wire.Dropped++
		return nil
	}
	out := append([]byte(nil), wire...)
	if in.rng.Float64() < f.CorruptRate {
		out = in.CorruptBits(out, 1+in.rng.Intn(8))
		in.wire.Corrupted++
	}
	copies := [][]byte{out}
	if in.rng.Float64() < f.DuplicateRate {
		copies = append(copies, append([]byte(nil), out...))
		in.wire.Duplicated++
	}
	return copies
}
