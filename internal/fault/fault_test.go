package fault

import (
	"bytes"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/mhash"
)

func testCore(t *testing.T) *apps.Core {
	t.Helper()
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		t.Fatal(err)
	}
	return apps.NewCore(prog)
}

// Same seed, same faults: the whole point of the injector is that a
// scenario replays bit-for-bit.
func TestInjectorDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	ca, cb := testCore(t), testCore(t)
	for i := 0; i < 16; i++ {
		addrA, bitA := a.FlipCodeBit(ca)
		addrB, bitB := b.FlipCodeBit(cb)
		if addrA != addrB || bitA != bitB {
			t.Fatalf("flip %d diverged: (%#x,%d) vs (%#x,%d)", i, addrA, bitA, addrB, bitB)
		}
	}
	wire := []byte("0123456789abcdef0123456789abcdef")
	f := LinkFaults{DropRate: 0.3, CorruptRate: 0.3, DuplicateRate: 0.2}
	for i := 0; i < 64; i++ {
		outA, outB := a.Wire(wire, f), b.Wire(wire, f)
		if len(outA) != len(outB) {
			t.Fatalf("wire %d: %d vs %d copies", i, len(outA), len(outB))
		}
		for j := range outA {
			if !bytes.Equal(outA[j], outB[j]) {
				t.Fatalf("wire %d copy %d differs", i, j)
			}
		}
	}
}

func TestFlipBitFlipsExactlyOneBit(t *testing.T) {
	in := New(1)
	c := testCore(t)
	words := c.Program().CodeWords()
	addr := words[0].Addr
	before, _ := c.Mem().Load32(addr)
	if !in.FlipBit(c, addr, 7) {
		t.Fatal("FlipBit failed")
	}
	after, _ := c.Mem().Load32(addr)
	if before^after != 1<<7 {
		t.Fatalf("flip changed %#x, want bit 7 only", before^after)
	}
}

func TestCorruptBitsBounded(t *testing.T) {
	in := New(9)
	orig := bytes.Repeat([]byte{0xA5}, 64)
	out := in.CorruptBits(orig, 5)
	if len(out) != len(orig) {
		t.Fatalf("length changed: %d -> %d", len(orig), len(out))
	}
	diff := 0
	for i := range out {
		for b := 0; b < 8; b++ {
			if (out[i]^orig[i])>>b&1 == 1 {
				diff++
			}
		}
	}
	if diff < 1 || diff > 5 {
		t.Fatalf("%d bits flipped, want 1..5", diff)
	}
	if !bytes.Equal(orig, bytes.Repeat([]byte{0xA5}, 64)) {
		t.Fatal("input was mutated")
	}
}

func TestFlakyHasherRateAndWidth(t *testing.T) {
	in := New(3)
	inner := mhash.NewMerkle(0xBEEF)
	h := in.FlakyHasher(inner, 0)
	for w := uint32(0); w < 256; w++ {
		if h.Hash(w) != inner.Hash(w) {
			t.Fatalf("rate 0 corrupted word %d", w)
		}
	}
	if h.Width() != inner.Width() {
		t.Fatalf("width %d != %d", h.Width(), inner.Width())
	}
	h.SetRate(1)
	mask := uint8(1<<inner.Width() - 1)
	for w := uint32(0); w < 256; w++ {
		got := h.Hash(w)
		if got == inner.Hash(w) {
			t.Fatalf("rate 1 left word %d intact", w)
		}
		if got&^mask != 0 {
			t.Fatalf("corrupted hash %#x exceeds width %d", got, inner.Width())
		}
	}
	if h.Flips() != 256 {
		t.Fatalf("flips=%d want 256", h.Flips())
	}
}

func TestWireFaultRates(t *testing.T) {
	in := New(7)
	wire := bytes.Repeat([]byte{0x42}, 128)
	f := LinkFaults{DropRate: 0.3, CorruptRate: 0.2, DuplicateRate: 0.1}
	const n = 2000
	drops, dups, corrupt := 0, 0, 0
	for i := 0; i < n; i++ {
		out := in.Wire(wire, f)
		switch {
		case len(out) == 0:
			drops++
			continue
		case len(out) == 2:
			dups++
			if !bytes.Equal(out[0], out[1]) {
				t.Fatal("duplicate differs from original copy")
			}
		}
		if !bytes.Equal(out[0], wire) {
			corrupt++
		}
	}
	if drops < n*2/10 || drops > n*4/10 {
		t.Errorf("drops=%d, want ~%d", drops, n*3/10)
	}
	if corrupt < n/10 || corrupt > n*3/10 {
		t.Errorf("corrupted=%d, want ~%d of delivered", corrupt, n*2/10)
	}
	if dups < n/20 || dups > n*2/10 {
		t.Errorf("duplicates=%d, want ~%d", dups, n/10)
	}
}

func TestHangShrinksAndRestoresBudget(t *testing.T) {
	in := New(5)
	c := testCore(t)
	orig := c.MaxCyclesPerPacket
	restore := in.Hang(c, 8)
	if c.MaxCyclesPerPacket != 8 {
		t.Fatalf("budget %d, want 8", c.MaxCyclesPerPacket)
	}
	restore()
	if c.MaxCyclesPerPacket != orig {
		t.Fatalf("budget %d after restore, want %d", c.MaxCyclesPerPacket, orig)
	}
}
