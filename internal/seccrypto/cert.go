package seccrypto

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Certificate is the manufacturer-issued credential of §3.1 ("at
// installation time"): the network operator's public key signed with the
// manufacturer's private key, establishing the device's chain of trust.
type Certificate struct {
	Subject   string // operator name
	KeyDER    []byte // operator public key, PKIX DER
	Serial    uint64
	Signature []byte // manufacturer signature over the fields above
}

// certBody serializes the signed portion deterministically.
func certBody(subject string, keyDER []byte, serial uint64) []byte {
	var b bytes.Buffer
	b.WriteString("SDMC")
	writeBytes(&b, []byte(subject))
	writeBytes(&b, keyDER)
	var s [8]byte
	binary.BigEndian.PutUint64(s[:], serial)
	b.Write(s[:])
	return b.Bytes()
}

// Marshal serializes the certificate.
func (c *Certificate) Marshal() []byte {
	var b bytes.Buffer
	b.Write(certBody(c.Subject, c.KeyDER, c.Serial))
	writeBytes(&b, c.Signature)
	return b.Bytes()
}

// UnmarshalCertificate parses a certificate produced by Marshal.
func UnmarshalCertificate(data []byte) (*Certificate, error) {
	r := bytes.NewReader(data)
	var magic [4]byte
	if _, err := r.Read(magic[:]); err != nil || string(magic[:]) != "SDMC" {
		return nil, fmt.Errorf("seccrypto: bad certificate magic")
	}
	subject, err := readBytes(r)
	if err != nil {
		return nil, fmt.Errorf("seccrypto: certificate subject: %w", err)
	}
	keyDER, err := readBytes(r)
	if err != nil {
		return nil, fmt.Errorf("seccrypto: certificate key: %w", err)
	}
	var serial uint64
	if err := binary.Read(r, binary.BigEndian, &serial); err != nil {
		return nil, fmt.Errorf("seccrypto: certificate serial: %w", err)
	}
	sig, err := readBytes(r)
	if err != nil {
		return nil, fmt.Errorf("seccrypto: certificate signature: %w", err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("seccrypto: %d trailing certificate bytes", r.Len())
	}
	return &Certificate{Subject: string(subject), KeyDER: keyDER, Serial: serial, Signature: sig}, nil
}

func writeBytes(b *bytes.Buffer, p []byte) {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(p)))
	b.Write(l[:])
	b.Write(p)
}

func readBytes(r *bytes.Reader) ([]byte, error) {
	var l [4]byte
	if _, err := r.Read(l[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(l[:])
	if int(n) > r.Len() {
		return nil, fmt.Errorf("length %d exceeds remaining %d", n, r.Len())
	}
	p := make([]byte, n)
	if _, err := r.Read(p); err != nil {
		return nil, err
	}
	return p, nil
}
