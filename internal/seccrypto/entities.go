package seccrypto

import (
	"fmt"
	"io"
)

// Manufacturer is the root of trust (§2.2): it provisions devices with key
// pairs at manufacturing time and issues certificates to network operators
// at installation time.
type Manufacturer struct {
	Name   string
	key    *KeyPair
	serial uint64
}

// NewManufacturer creates a manufacturer with a fresh key pair.
func NewManufacturer(name string, rng io.Reader) (*Manufacturer, error) {
	k, err := GenerateKeyPair(rng)
	if err != nil {
		return nil, err
	}
	return &Manufacturer{Name: name, key: k}, nil
}

// DeviceIdentity is the secret material configured into a network processor
// at manufacturing time: the router key pair (K_R+/K_R-) and the
// manufacturer's public key as root of trust, plus the anti-downgrade
// sequence ledger the device accumulates over its lifetime.
type DeviceIdentity struct {
	ID  string
	key *KeyPair
	mfr *KeyPair // only the public half is used
	seq *SequenceLedger
}

// Sequences returns the device's anti-downgrade ledger (lazily created).
func (d *DeviceIdentity) Sequences() *SequenceLedger {
	if d.seq == nil {
		d.seq = NewSequenceLedger()
	}
	return d.seq
}

// RestoreSequences replaces the ledger — the reboot path, after reloading
// persisted high-water marks with UnmarshalSequenceLedger. A nil ledger
// resets to empty (factory state, losing replay protection).
func (d *DeviceIdentity) RestoreSequences(l *SequenceLedger) {
	if l == nil {
		l = NewSequenceLedger()
	}
	d.seq = l
}

// ProvisionDevice performs the "at manufacturing time" step of §3.1.
func (m *Manufacturer) ProvisionDevice(id string, rng io.Reader) (*DeviceIdentity, error) {
	k, err := GenerateKeyPair(rng)
	if err != nil {
		return nil, err
	}
	return &DeviceIdentity{ID: id, key: k, mfr: m.key}, nil
}

// IssueCertificate performs the "at installation time" step of §3.1: the
// manufacturer signs the operator's public key, so devices can establish a
// chain of trust to the operator.
func (m *Manufacturer) IssueCertificate(operator *Operator) (*Certificate, error) {
	m.serial++
	keyDER := MarshalPublicKey(operator.keys.Public())
	sig, err := m.key.sign(certBody(operator.Name, keyDER, m.serial))
	if err != nil {
		return nil, err
	}
	return &Certificate{Subject: operator.Name, KeyDER: keyDER, Serial: m.serial, Signature: sig}, nil
}

// Operator is the network operator: it programs devices by generating
// monitoring graphs, drawing hash parameters and shipping signed, encrypted
// packages.
type Operator struct {
	Name string
	keys *KeyPair
	cert *Certificate
}

// NewOperator creates an operator with a fresh key pair. The certificate is
// attached later via SetCertificate once the manufacturer issues it.
func NewOperator(name string, rng io.Reader) (*Operator, error) {
	k, err := GenerateKeyPair(rng)
	if err != nil {
		return nil, err
	}
	return &Operator{Name: name, keys: k}, nil
}

// SetCertificate attaches the manufacturer-issued certificate.
func (o *Operator) SetCertificate(c *Certificate) { o.cert = c }

// Certificate returns the attached certificate (nil before installation).
func (o *Operator) Certificate() *Certificate { return o.cert }

// PublicKeyDER returns the operator public key in PKIX DER form.
func (o *Operator) PublicKeyDER() []byte { return MarshalPublicKey(o.keys.Public()) }

// DevicePublic describes the target router for package encryption: its
// identity and public key. Operators learn these out of band (inventory).
type DevicePublic struct {
	ID     string
	KeyDER []byte
}

// PublicInfo exports the device's public identity for the operator's
// inventory.
func (d *DeviceIdentity) PublicInfo() DevicePublic {
	return DevicePublic{ID: d.ID, KeyDER: MarshalPublicKey(d.key.Public())}
}

// validate checks internal invariants before use.
func (d *DeviceIdentity) validate() error {
	if d.key == nil || d.mfr == nil {
		return fmt.Errorf("seccrypto: device %q not provisioned", d.ID)
	}
	return nil
}
