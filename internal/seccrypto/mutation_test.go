package seccrypto

import (
	"crypto/rand"
	mrand "math/rand"
	"testing"
)

// The package parser and the full verification pipeline face
// attacker-supplied bytes directly (AC1: the attacker can inject any
// traffic). Arbitrary corruption must produce errors — never panics, and
// never a successfully "verified" bundle.
func TestPackageMutationNeverVerifies(t *testing.T) {
	f := getFixture(t)
	pkg, err := f.op.BuildPackage(f.dev.PublicInfo(), testBundle(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	good := pkg.Marshal()
	rng := mrand.New(mrand.NewSource(13))
	accepted := 0
	for i := 0; i < 800; i++ {
		mut := append([]byte(nil), good...)
		switch rng.Intn(4) {
		case 0:
			for j := 0; j < 1+rng.Intn(4); j++ {
				mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
			}
		case 1:
			mut = mut[:rng.Intn(len(mut))]
		case 2:
			extra := make([]byte, 1+rng.Intn(16))
			rng.Read(extra)
			mut = append(mut, extra...)
		case 3:
			if len(mut) > 16 {
				at := rng.Intn(len(mut) - 8)
				rng.Read(mut[at : at+8])
			}
		}
		p2, err := UnmarshalPackage(mut)
		if err != nil {
			continue
		}
		// Structurally valid mutants must still fail verification unless
		// the mutation was a no-op.
		if _, _, err := f.dev.OpenPackage(p2, false); err == nil {
			if string(mut) != string(good) {
				t.Fatalf("mutated package verified (iteration %d)", i)
			}
			accepted++
		}
	}
	_ = accepted
}

func TestCertificateMutationNeverVerifies(t *testing.T) {
	f := getFixture(t)
	pkg, err := f.op.BuildPackage(f.dev.PublicInfo(), testBundle(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	good := pkg.Cert.Marshal()
	rng := mrand.New(mrand.NewSource(14))
	for i := 0; i < 500; i++ {
		mut := append([]byte(nil), good...)
		mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		c2, err := UnmarshalCertificate(mut)
		if err != nil {
			continue
		}
		if string(mut) == string(good) {
			continue
		}
		// Swap the mutated certificate into an otherwise valid package:
		// the root-of-trust check must catch it.
		p2 := *pkg
		p2.Cert = c2
		if _, _, err := f.dev.OpenPackage(&p2, false); err == nil {
			t.Fatalf("mutated certificate passed the chain of trust (iteration %d)", i)
		}
	}
}
