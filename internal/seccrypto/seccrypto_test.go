package seccrypto

import (
	"bytes"
	"crypto/rand"
	"errors"
	"sync"
	"testing"
)

// Key generation is expensive; share one fixture across the package tests.
type fixture struct {
	mfr      *Manufacturer
	op       *Operator
	dev      *DeviceIdentity
	dev2     *DeviceIdentity
	otherMfr *Manufacturer
	rogue    *Operator // no certificate from mfr
}

var (
	fixOnce sync.Once
	fix     fixture
)

func getFixture(t testing.TB) *fixture {
	if t != nil {
		t.Helper()
	}
	fixOnce.Do(func() {
		var err error
		must := func(e error) {
			if err == nil {
				err = e
			}
		}
		var mfr, otherMfr *Manufacturer
		var op, rogue *Operator
		mfr, e := NewManufacturer("acme-np", rand.Reader)
		must(e)
		otherMfr, e = NewManufacturer("evil-fab", rand.Reader)
		must(e)
		op, e = NewOperator("backbone-isp", rand.Reader)
		must(e)
		rogue, e = NewOperator("rogue-isp", rand.Reader)
		must(e)
		if err != nil {
			panic(err)
		}
		cert, e := mfr.IssueCertificate(op)
		if e != nil {
			panic(e)
		}
		op.SetCertificate(cert)
		// The rogue operator self-certifies with the wrong manufacturer.
		rcert, e := otherMfr.IssueCertificate(rogue)
		if e != nil {
			panic(e)
		}
		rogue.SetCertificate(rcert)
		dev, e := mfr.ProvisionDevice("router-0", rand.Reader)
		if e != nil {
			panic(e)
		}
		dev2, e := mfr.ProvisionDevice("router-1", rand.Reader)
		if e != nil {
			panic(e)
		}
		fix = fixture{mfr: mfr, op: op, dev: dev, dev2: dev2, otherMfr: otherMfr, rogue: rogue}
	})
	return &fix
}

func testBundle() *Bundle {
	return &Bundle{
		Binary:    bytes.Repeat([]byte{0xAB, 0xCD}, 600),
		Graph:     bytes.Repeat([]byte{0x12}, 400),
		HashParam: 0xDEADBEEF,
	}
}

func TestHonestPackageRoundTrip(t *testing.T) {
	f := getFixture(t)
	pkg, err := f.op.BuildPackage(f.dev.PublicInfo(), testBundle(), rand.Reader)
	if err != nil {
		t.Fatalf("BuildPackage: %v", err)
	}
	got, ops, err := f.dev.OpenPackage(pkg, false)
	if err != nil {
		t.Fatalf("OpenPackage: %v", err)
	}
	want := testBundle()
	if !bytes.Equal(got.Binary, want.Binary) || !bytes.Equal(got.Graph, want.Graph) ||
		got.HashParam != want.HashParam {
		t.Error("bundle mismatch after round trip")
	}
	// Operation counts consumed by the timing model: 1 private op (key
	// unwrap), 2 public ops (cert + signature), AES over the payload.
	if ops.RSAPrivateOps != 1 || ops.RSAPublicOps != 2 {
		t.Errorf("ops = %+v", ops)
	}
	if ops.AESBytes < len(want.Binary) {
		t.Errorf("AES bytes %d below payload size", ops.AESBytes)
	}
	if ops.SHA256Bytes == 0 {
		t.Error("no SHA bytes counted")
	}
}

func TestSkipCertCheck(t *testing.T) {
	// Table 2's footnote: the certificate check can be skipped after the
	// first installation; only one public-key op remains.
	f := getFixture(t)
	pkg, err := f.op.BuildPackage(f.dev.PublicInfo(), testBundle(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	_, ops, err := f.dev.OpenPackage(pkg, true)
	if err != nil {
		t.Fatal(err)
	}
	if ops.RSAPublicOps != 1 {
		t.Errorf("RSAPublicOps = %d, want 1 with cert check skipped", ops.RSAPublicOps)
	}
}

// SR1: only packages signed by a certified operator install.
func TestSR1RejectsRogueOperator(t *testing.T) {
	f := getFixture(t)
	pkg, err := f.rogue.BuildPackage(f.dev.PublicInfo(), testBundle(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = f.dev.OpenPackage(pkg, false)
	if !errors.Is(err, ErrBadCertificate) {
		t.Errorf("rogue operator: err = %v, want ErrBadCertificate", err)
	}
}

// SR1: payload tampering breaks the signature.
func TestSR1RejectsTamperedPayload(t *testing.T) {
	f := getFixture(t)
	pkg, err := f.op.BuildPackage(f.dev.PublicInfo(), testBundle(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	pkg.EncPayload[40] ^= 0x01
	_, _, err = f.dev.OpenPackage(pkg, false)
	if err == nil {
		t.Fatal("tampered payload accepted")
	}
	if !errors.Is(err, ErrBadSignature) && !errors.Is(err, ErrCorrupt) {
		t.Errorf("tampered payload: err = %v", err)
	}
}

// SR1/AC2: an attacker swapping in a forged monitoring graph (to make
// malicious code look valid) cannot produce a valid signature.
func TestSR1RejectsSwappedGraph(t *testing.T) {
	f := getFixture(t)
	good, err := f.op.BuildPackage(f.dev.PublicInfo(), testBundle(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	evil := testBundle()
	evil.Graph = bytes.Repeat([]byte{0x66}, 400)
	// The attacker re-encrypts an evil bundle under their own session key
	// but must reuse the operator's signature (they cannot forge one).
	forged, err := f.rogue.BuildPackage(f.dev.PublicInfo(), evil, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	forged.Cert = good.Cert
	forged.Signature = good.Signature
	_, _, err = f.dev.OpenPackage(forged, false)
	if !errors.Is(err, ErrBadSignature) {
		t.Errorf("swapped graph: err = %v, want ErrBadSignature", err)
	}
}

// SR3: the payload is confidential — ciphertext reveals nothing readable.
func TestSR3Confidentiality(t *testing.T) {
	f := getFixture(t)
	b := testBundle()
	b.Binary = []byte("SECRET-PROPRIETARY-PIPELINE-CODE-SECRET")
	pkg, err := f.op.BuildPackage(f.dev.PublicInfo(), b, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	wire := pkg.Marshal()
	if bytes.Contains(wire, b.Binary) {
		t.Error("binary visible on the wire")
	}
	if bytes.Contains(wire, []byte("SECRET")) {
		t.Error("plaintext fragment visible on the wire")
	}
	var param [4]byte
	param[0], param[1], param[2], param[3] = 0xDE, 0xAD, 0xBE, 0xEF
	if bytes.Contains(wire, param[:]) {
		t.Error("hash parameter visible on the wire")
	}
}

// SR4: a package built for router-0 must not open on router-1.
func TestSR4DeviceBinding(t *testing.T) {
	f := getFixture(t)
	pkg, err := f.op.BuildPackage(f.dev.PublicInfo(), testBundle(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = f.dev2.OpenPackage(pkg, false)
	if !errors.Is(err, ErrWrongDevice) {
		t.Errorf("cross-device: err = %v, want ErrWrongDevice", err)
	}
}

// SR4 hardening: even re-wrapping the session key for another device fails
// because the device ID is bound inside the signed payload.
func TestSR4RewrapDefeated(t *testing.T) {
	f := getFixture(t)
	// Build identical bundles for both devices; then graft router-0's
	// encrypted payload+signature onto router-1's key wrapping.
	p0, err := f.op.BuildPackage(f.dev.PublicInfo(), testBundle(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := f.op.BuildPackage(f.dev2.PublicInfo(), testBundle(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	spliced := &Package{
		DeviceID:   p1.DeviceID,
		Cert:       p0.Cert,
		EncKey:     p1.EncKey,     // wrapped for router-1
		IV:         p0.IV,         // but payload from router-0's package
		EncPayload: p0.EncPayload, // (encrypted under a different K_sym)
		Signature:  p0.Signature,
	}
	if _, _, err := f.dev2.OpenPackage(spliced, false); err == nil {
		t.Fatal("spliced package accepted")
	}
}

func TestCertificateRoundTrip(t *testing.T) {
	f := getFixture(t)
	c := f.op.Certificate()
	b := c.Marshal()
	c2, err := UnmarshalCertificate(b)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Subject != c.Subject || c2.Serial != c.Serial ||
		!bytes.Equal(c2.KeyDER, c.KeyDER) || !bytes.Equal(c2.Signature, c.Signature) {
		t.Error("certificate round-trip mismatch")
	}
	if _, err := UnmarshalCertificate([]byte("bogus")); err == nil {
		t.Error("bad certificate accepted")
	}
	if _, err := UnmarshalCertificate(append(b, 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestPackageMarshalRoundTrip(t *testing.T) {
	f := getFixture(t)
	pkg, err := f.op.BuildPackage(f.dev.PublicInfo(), testBundle(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	wire := pkg.Marshal()
	got, err := UnmarshalPackage(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.DeviceID != pkg.DeviceID || !bytes.Equal(got.EncKey, pkg.EncKey) ||
		!bytes.Equal(got.EncPayload, pkg.EncPayload) || !bytes.Equal(got.Signature, pkg.Signature) {
		t.Error("package round-trip mismatch")
	}
	// The round-tripped package still opens.
	if _, _, err := f.dev.OpenPackage(got, false); err != nil {
		t.Errorf("round-tripped package rejected: %v", err)
	}
	if pkg.DigestHex() != got.DigestHex() {
		t.Error("digest mismatch")
	}
	if _, err := UnmarshalPackage(wire[:10]); err == nil {
		t.Error("truncated package accepted")
	}
	if _, err := UnmarshalPackage(append(wire, 1)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestOperatorWithoutCertificateCannotShip(t *testing.T) {
	op, err := NewOperator("fresh", rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	f := getFixture(t)
	if _, err := op.BuildPackage(f.dev.PublicInfo(), testBundle(), rand.Reader); err == nil {
		t.Error("uncertified operator built a package")
	}
}

func TestPublicKeyMarshalRoundTrip(t *testing.T) {
	f := getFixture(t)
	der := f.op.PublicKeyDER()
	pub, err := UnmarshalPublicKey(der)
	if err != nil {
		t.Fatal(err)
	}
	if pub.N.Cmp(f.op.keys.Public().N) != 0 {
		t.Error("modulus mismatch")
	}
	if _, err := UnmarshalPublicKey([]byte{1, 2, 3}); err == nil {
		t.Error("junk DER accepted")
	}
}

func TestAESPaddingErrors(t *testing.T) {
	key := make([]byte, 32)
	iv := make([]byte, 16)
	if _, err := aesCBCDecrypt(key, iv, []byte{1, 2, 3}); err == nil {
		t.Error("non-block ciphertext accepted")
	}
	if _, err := aesCBCDecrypt(key, iv[:4], make([]byte, 16)); err == nil {
		t.Error("short iv accepted")
	}
	enc, err := aesCBCEncrypt(key, iv, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := aesCBCDecrypt(key, iv, enc)
	if err != nil || string(dec) != "hello" {
		t.Errorf("cbc round trip: %q %v", dec, err)
	}
	// Exact block-size plaintext grows by a full padding block.
	enc16, err := aesCBCEncrypt(key, iv, make([]byte, 16))
	if err != nil || len(enc16) != 32 {
		t.Errorf("block-aligned padding: len %d, err %v", len(enc16), err)
	}
}

func TestOpCountsAdd(t *testing.T) {
	a := OpCounts{DownloadBytes: 1, RSAPrivateOps: 2, RSAPublicOps: 3, SHA256Bytes: 4, AESBytes: 5}
	b := a
	a.Add(b)
	if a.DownloadBytes != 2 || a.RSAPrivateOps != 4 || a.RSAPublicOps != 6 ||
		a.SHA256Bytes != 8 || a.AESBytes != 10 {
		t.Errorf("Add = %+v", a)
	}
}

func TestCertificateSerialIncrements(t *testing.T) {
	f := getFixture(t)
	c1, err := f.mfr.IssueCertificate(f.op)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := f.mfr.IssueCertificate(f.op)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Serial != c1.Serial+1 {
		t.Errorf("serials %d, %d", c1.Serial, c2.Serial)
	}
}
