// Package seccrypto implements the cryptographic machinery of SDMMon's
// system-level security architecture (§3): the three-entity key hierarchy
// (network processor manufacturer → network operator → network processor
// device), operator certificates, and the signed+encrypted package that
// carries a processing binary, its monitoring graph and the secret hash
// parameter to exactly one router.
//
// Algorithm choices follow the prototype (§4.2): RSA with 2048-bit keys for
// signatures and key transport, AES for the bulk payload, SHA-256 digests.
// Two deliberate hardening deviations from the 2014 OpenSSL defaults are
// documented in DESIGN.md: OAEP (instead of PKCS#1 v1.5) for key transport
// and the device identity bound inside the signed payload.
package seccrypto

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"fmt"
	"io"
)

// KeyBits is the RSA modulus size used by every entity, per §4.2.
const KeyBits = 2048

// KeyPair wraps an entity's RSA key pair.
type KeyPair struct {
	priv *rsa.PrivateKey
}

// GenerateKeyPair creates a fresh RSA-2048 key pair from rng (use
// crypto/rand.Reader outside tests).
func GenerateKeyPair(rng io.Reader) (*KeyPair, error) {
	priv, err := rsa.GenerateKey(rng, KeyBits)
	if err != nil {
		return nil, fmt.Errorf("seccrypto: keygen: %w", err)
	}
	return &KeyPair{priv: priv}, nil
}

// Public returns the public half.
func (k *KeyPair) Public() *rsa.PublicKey { return &k.priv.PublicKey }

// sign produces an RSA PKCS#1 v1.5 signature over SHA-256(msg).
func (k *KeyPair) sign(msg []byte) ([]byte, error) {
	d := sha256.Sum256(msg)
	sig, err := rsa.SignPKCS1v15(rand.Reader, k.priv, crypto.SHA256, d[:])
	if err != nil {
		return nil, fmt.Errorf("seccrypto: sign: %w", err)
	}
	return sig, nil
}

// verify checks an RSA PKCS#1 v1.5 signature over SHA-256(msg).
func verify(pub *rsa.PublicKey, msg, sig []byte) error {
	d := sha256.Sum256(msg)
	if err := rsa.VerifyPKCS1v15(pub, crypto.SHA256, d[:], sig); err != nil {
		return fmt.Errorf("seccrypto: bad signature: %w", err)
	}
	return nil
}

// decryptKey recovers a session key encrypted to this key pair with
// RSA-OAEP.
func (k *KeyPair) decryptKey(enc []byte) ([]byte, error) {
	key, err := rsa.DecryptOAEP(sha256.New(), nil, k.priv, enc, oaepLabel)
	if err != nil {
		return nil, fmt.Errorf("seccrypto: session key decrypt: %w", err)
	}
	return key, nil
}

// encryptKeyTo wraps a session key to a recipient public key with RSA-OAEP.
func encryptKeyTo(pub *rsa.PublicKey, key []byte, rng io.Reader) ([]byte, error) {
	enc, err := rsa.EncryptOAEP(sha256.New(), rng, pub, key, oaepLabel)
	if err != nil {
		return nil, fmt.Errorf("seccrypto: session key encrypt: %w", err)
	}
	return enc, nil
}

var oaepLabel = []byte("sdmmon-package-key-v1")

// MarshalPublicKey serializes a public key (PKIX DER).
func MarshalPublicKey(pub *rsa.PublicKey) []byte {
	der, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		// rsa.PublicKey always marshals; an error here is a programming
		// bug, not an input condition.
		panic(fmt.Sprintf("seccrypto: marshal public key: %v", err))
	}
	return der
}

// UnmarshalPublicKey parses a PKIX DER public key and requires RSA.
func UnmarshalPublicKey(der []byte) (*rsa.PublicKey, error) {
	k, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("seccrypto: parse public key: %w", err)
	}
	pub, ok := k.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("seccrypto: public key is %T, want RSA", k)
	}
	return pub, nil
}
