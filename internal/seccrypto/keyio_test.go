package seccrypto

import (
	"bytes"
	"crypto/rand"
	"testing"
)

func TestKeyPairPEMRoundTrip(t *testing.T) {
	f := getFixture(t)
	pemBytes, err := f.op.Keys().MarshalPEM()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(pemBytes, []byte("PRIVATE KEY")) {
		t.Error("PEM missing header")
	}
	k, err := UnmarshalKeyPairPEM(pemBytes)
	if err != nil {
		t.Fatal(err)
	}
	if k.Public().N.Cmp(f.op.Keys().Public().N) != 0 {
		t.Error("modulus changed in round trip")
	}
}

func TestUnmarshalKeyPairPEMErrors(t *testing.T) {
	if _, err := UnmarshalKeyPairPEM([]byte("not pem")); err == nil {
		t.Error("junk accepted")
	}
	if _, err := UnmarshalKeyPairPEM([]byte("-----BEGIN CERTIFICATE-----\nAAAA\n-----END CERTIFICATE-----\n")); err == nil {
		t.Error("wrong block type accepted")
	}
}

func TestRebuiltEntitiesInteroperate(t *testing.T) {
	f := getFixture(t)
	// Serialize all three entities and rebuild them, then run the full
	// package path across the rebuilt instances.
	mfrPEM, err := f.mfr.Keys().MarshalPEM()
	if err != nil {
		t.Fatal(err)
	}
	mfrKeys, err := UnmarshalKeyPairPEM(mfrPEM)
	if err != nil {
		t.Fatal(err)
	}
	mfr2 := NewManufacturerWithKeys(f.mfr.Name, mfrKeys, 100)

	opPEM, err := f.op.Keys().MarshalPEM()
	if err != nil {
		t.Fatal(err)
	}
	opKeys, err := UnmarshalKeyPairPEM(opPEM)
	if err != nil {
		t.Fatal(err)
	}
	op2 := NewOperatorWithKeys(f.op.Name, opKeys)
	cert, err := mfr2.IssueCertificate(op2)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Serial != 101 {
		t.Errorf("serial = %d, want 101 (continued from stored state)", cert.Serial)
	}
	op2.SetCertificate(cert)

	devPEM, err := f.dev.Keys().MarshalPEM()
	if err != nil {
		t.Fatal(err)
	}
	devKeys, err := UnmarshalKeyPairPEM(devPEM)
	if err != nil {
		t.Fatal(err)
	}
	dev2, err := NewDeviceIdentityWithKeys(f.dev.ID, devKeys, mfr2.PublicDER())
	if err != nil {
		t.Fatal(err)
	}

	pkg, err := op2.BuildPackage(dev2.PublicInfo(), testBundle(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := dev2.OpenPackage(pkg, false)
	if err != nil {
		t.Fatalf("rebuilt entities cannot complete the protocol: %v", err)
	}
	if got.HashParam != testBundle().HashParam {
		t.Error("bundle mismatch")
	}
}

func TestNewDeviceIdentityWithKeysErrors(t *testing.T) {
	f := getFixture(t)
	if _, err := NewDeviceIdentityWithKeys("x", f.dev.Keys(), []byte("junk")); err == nil {
		t.Error("junk manufacturer key accepted")
	}
}

func TestBundleMarshalRoundTrip(t *testing.T) {
	b := testBundle()
	raw := b.Marshal()
	got, err := UnmarshalBundle(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Binary, b.Binary) || !bytes.Equal(got.Graph, b.Graph) ||
		got.HashParam != b.HashParam {
		t.Error("bundle round-trip mismatch")
	}
	if _, err := UnmarshalBundle([]byte("nope")); err == nil {
		t.Error("junk bundle accepted")
	}
	if _, err := UnmarshalBundle(raw[:len(raw)-2]); err == nil {
		t.Error("truncated bundle accepted")
	}
}

func TestWritePEM(t *testing.T) {
	f := getFixture(t)
	var buf bytes.Buffer
	if err := WritePEM(&buf, f.op.Keys()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("PRIVATE KEY")) {
		t.Error("WritePEM produced no PEM")
	}
}
