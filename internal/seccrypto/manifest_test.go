package seccrypto

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
)

// versionedBundle returns a test bundle carrying a release manifest.
func versionedBundle(app, version string, seq uint64) *Bundle {
	b := testBundle()
	b.Manifest = Manifest{AppName: app, Version: version, Sequence: seq}
	return b
}

func TestManifestZeroAndString(t *testing.T) {
	var z Manifest
	if !z.Zero() {
		t.Error("zero manifest not Zero()")
	}
	if z.String() != "(unversioned)" {
		t.Errorf("zero String=%q", z.String())
	}
	m := Manifest{AppName: "fw", Version: "2.1.0", Sequence: 7}
	if m.Zero() {
		t.Error("populated manifest reported Zero()")
	}
	if m.String() != "fw@2.1.0#7" {
		t.Errorf("String=%q", m.String())
	}
}

// The manifest survives the full encrypt/sign/verify round trip.
func TestManifestRoundTrip(t *testing.T) {
	f := getFixture(t)
	want := versionedBundle("mrt-app", "1.4.2", 9)
	pkg, err := f.op.BuildPackage(f.dev.PublicInfo(), want, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := f.dev.OpenPackage(pkg, false)
	if err != nil {
		t.Fatal(err)
	}
	if got.Manifest != want.Manifest {
		t.Errorf("manifest = %v, want %v", got.Manifest, want.Manifest)
	}
	// Bundle-local storage round trip too.
	back, err := UnmarshalBundle(want.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.Manifest != want.Manifest {
		t.Errorf("stored manifest = %v, want %v", back.Manifest, want.Manifest)
	}
}

// Replays and downgrades of fully verified packages are rejected; only
// strictly increasing sequences install.
func TestSequenceRegressionRejected(t *testing.T) {
	f := getFixture(t)
	open := func(seq uint64) error {
		pkg, err := f.op.BuildPackage(f.dev.PublicInfo(), versionedBundle("srr-app", "1.0.0", seq), rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = f.dev.OpenPackage(pkg, false)
		return err
	}
	if err := open(5); err != nil {
		t.Fatalf("first install seq=5: %v", err)
	}
	if err := open(5); !errors.Is(err, ErrDowngrade) { // replay
		t.Fatalf("replayed seq=5: %v, want ErrDowngrade", err)
	}
	if err := open(4); !errors.Is(err, ErrDowngrade) { // downgrade
		t.Fatalf("downgraded seq=4: %v, want ErrDowngrade", err)
	}
	if err := open(6); err != nil { // legitimate upgrade
		t.Fatalf("upgrade seq=6: %v", err)
	}
	if hw := f.dev.Sequences().HighWater("srr-app"); hw != 6 {
		t.Fatalf("high-water=%d, want 6", hw)
	}
}

// The exact same wire package replayed to the same device is rejected on the
// second delivery — the recorded-release attack.
func TestExactPackageReplayRejected(t *testing.T) {
	f := getFixture(t)
	pkg, err := f.op.BuildPackage(f.dev.PublicInfo(), versionedBundle("epr-app", "3.0.0", 1), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.dev.OpenPackage(pkg, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.dev.OpenPackage(pkg, false); !errors.Is(err, ErrDowngrade) {
		t.Fatalf("replay of identical package: %v, want ErrDowngrade", err)
	}
}

// The ledger advances only on packages that passed every cryptographic
// check: a tampered high-sequence package must not burn the sequence space.
func TestLedgerNotAdvancedByFailedVerification(t *testing.T) {
	f := getFixture(t)
	pkg, err := f.op.BuildPackage(f.dev.PublicInfo(), versionedBundle("lna-app", "9.0.0", 100), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	pkg.EncPayload[len(pkg.EncPayload)/2] ^= 0x40
	if _, _, err := f.dev.OpenPackage(pkg, false); err == nil {
		t.Fatal("tampered package verified")
	}
	if hw := f.dev.Sequences().HighWater("lna-app"); hw != 0 {
		t.Fatalf("failed verification advanced the ledger to %d", hw)
	}
	// A genuine low-sequence release still installs afterwards.
	good, err := f.op.BuildPackage(f.dev.PublicInfo(), versionedBundle("lna-app", "1.0.0", 1), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.dev.OpenPackage(good, false); err != nil {
		t.Fatalf("genuine release after tampered one: %v", err)
	}
}

// Unversioned (legacy) bundles bypass the ledger: installable repeatedly,
// but with no replay protection — the documented trade-off.
func TestLegacyBundleBypassesLedger(t *testing.T) {
	f := getFixture(t)
	for i := 0; i < 2; i++ {
		pkg, err := f.op.BuildPackage(f.dev.PublicInfo(), testBundle(), rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := f.dev.OpenPackage(pkg, false); err != nil {
			t.Fatalf("legacy install %d: %v", i, err)
		}
	}
}

// Satellite: a mutated manifest must fail the signature even when the
// attacker re-encrypts the payload perfectly. The attacker builds a valid
// SDM2 payload with the sequence bumped, encrypts it under their own session
// key wrapped to the real device, but can only attach the original
// signature.
func TestManifestMutationFailsSignature(t *testing.T) {
	f := getFixture(t)
	pkg, err := f.op.BuildPackage(f.dev.PublicInfo(), versionedBundle("mmf-app", "1.0.0", 3), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	devPub, err := UnmarshalPublicKey(f.dev.PublicInfo().KeyDER)
	if err != nil {
		t.Fatal(err)
	}
	forged := payloadBytes(f.dev.ID, versionedBundle("mmf-app", "99.0.0", 999))
	key := bytes.Repeat([]byte{0x42}, 32)
	iv := bytes.Repeat([]byte{0x24}, 16)
	encPayload, err := aesCBCEncrypt(key, iv, forged)
	if err != nil {
		t.Fatal(err)
	}
	encKey, err := encryptKeyTo(devPub, key, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	pkg.EncKey, pkg.IV, pkg.EncPayload = encKey, iv, encPayload

	_, _, err = f.dev.OpenPackage(pkg, false)
	if !errors.Is(err, ErrBadSignature) {
		t.Fatalf("manifest mutation: %v, want ErrBadSignature", err)
	}
	if hw := f.dev.Sequences().HighWater("mmf-app"); hw != 0 {
		t.Fatalf("forged manifest advanced the ledger to %d", hw)
	}
}

func TestSequenceLedgerAccept(t *testing.T) {
	l := NewSequenceLedger()
	if hw := l.HighWater("a"); hw != 0 {
		t.Fatalf("fresh high-water=%d", hw)
	}
	if err := l.Accept("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Accept("a", 1); !errors.Is(err, ErrDowngrade) {
		t.Fatalf("equal sequence: %v", err)
	}
	if err := l.Accept("b", 1); err != nil { // independent per app
		t.Fatal(err)
	}
	if err := l.Accept("a", 10); err != nil {
		t.Fatal(err)
	}
	if err := l.Accept("a", 9); !errors.Is(err, ErrDowngrade) {
		t.Fatalf("lower sequence: %v", err)
	}
}

func TestSequenceLedgerMarshalRoundTrip(t *testing.T) {
	l := NewSequenceLedger()
	for app, seq := range map[string]uint64{"fw": 12, "nat": 1, "acl": 0xFFFFFFFFFF} {
		if err := l.Accept(app, seq); err != nil {
			t.Fatal(err)
		}
	}
	got, err := UnmarshalSequenceLedger(l.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"fw", "nat", "acl", "missing"} {
		if got.HighWater(app) != l.HighWater(app) {
			t.Errorf("%s: high-water %d != %d", app, got.HighWater(app), l.HighWater(app))
		}
	}
	// Deterministic encoding (sorted by name).
	if !bytes.Equal(l.Marshal(), got.Marshal()) {
		t.Error("ledger encoding not deterministic")
	}

	for _, bad := range [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("SDMS"),                 // missing count
		[]byte("SDMS\xFF\xFF\xFF\xFF"), // absurd count
		append(l.Marshal(), 0x00),      // trailing byte
		[]byte("SDMS\x00\x00\x00\x01\x00\x00\x00\x02a"), // truncated entry
	} {
		if _, err := UnmarshalSequenceLedger(bad); !errors.Is(err, ErrCorrupt) {
			t.Errorf("UnmarshalSequenceLedger(%q): %v, want ErrCorrupt", bad, err)
		}
	}
}

// RestoreSequences replaces a device's ledger (the reboot path); nil restores
// to empty, re-opening the replay window — documented, and tested so the
// behaviour is deliberate.
func TestRestoreSequences(t *testing.T) {
	f := getFixture(t)
	dev := f.dev2
	pkg, err := f.op.BuildPackage(dev.PublicInfo(), versionedBundle("rs-app", "1.0.0", 2), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.dev2.OpenPackage(pkg, false); err != nil {
		t.Fatal(err)
	}

	saved, err := UnmarshalSequenceLedger(dev.Sequences().Marshal())
	if err != nil {
		t.Fatal(err)
	}
	dev.RestoreSequences(nil) // simulated reboot without persisted state
	if _, _, err := dev.OpenPackage(pkg, false); err != nil {
		t.Fatalf("replay after ledger wipe should verify (window re-opened): %v", err)
	}
	dev.RestoreSequences(saved) // reboot with persisted state
	if _, _, err := dev.OpenPackage(pkg, false); !errors.Is(err, ErrDowngrade) {
		t.Fatalf("replay after ledger restore: %v, want ErrDowngrade", err)
	}
}
