package seccrypto

import (
	"crypto/rsa"
	"crypto/x509"
	"encoding/pem"
	"fmt"
	"io"
)

// This file provides PEM persistence for entity key material so the
// cmd/sdmmon tool can operate across invocations, plus constructors that
// rebuild entities from stored keys.

// MarshalKeyPairPEM serializes the private key (PKCS#8 PEM).
func (k *KeyPair) MarshalPEM() ([]byte, error) {
	der, err := x509.MarshalPKCS8PrivateKey(k.priv)
	if err != nil {
		return nil, fmt.Errorf("seccrypto: marshal private key: %w", err)
	}
	return pem.EncodeToMemory(&pem.Block{Type: "PRIVATE KEY", Bytes: der}), nil
}

// UnmarshalKeyPairPEM parses a PKCS#8 PEM private key.
func UnmarshalKeyPairPEM(data []byte) (*KeyPair, error) {
	block, _ := pem.Decode(data)
	if block == nil || block.Type != "PRIVATE KEY" {
		return nil, fmt.Errorf("seccrypto: no PRIVATE KEY block")
	}
	k, err := x509.ParsePKCS8PrivateKey(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("seccrypto: parse private key: %w", err)
	}
	priv, ok := k.(*rsa.PrivateKey)
	if !ok {
		return nil, fmt.Errorf("seccrypto: private key is %T, want RSA", k)
	}
	return &KeyPair{priv: priv}, nil
}

// Keys returns the entity's key pair for persistence.
func (m *Manufacturer) Keys() *KeyPair { return m.key }

// Keys returns the entity's key pair for persistence.
func (o *Operator) Keys() *KeyPair { return o.keys }

// Keys returns the device key pair for persistence.
func (d *DeviceIdentity) Keys() *KeyPair { return d.key }

// NewManufacturerWithKeys rebuilds a manufacturer from stored keys.
func NewManufacturerWithKeys(name string, keys *KeyPair, nextSerial uint64) *Manufacturer {
	return &Manufacturer{Name: name, key: keys, serial: nextSerial}
}

// NewOperatorWithKeys rebuilds an operator from stored keys (attach the
// certificate separately).
func NewOperatorWithKeys(name string, keys *KeyPair) *Operator {
	return &Operator{Name: name, keys: keys}
}

// NewDeviceIdentityWithKeys rebuilds a device identity from its stored key
// pair and the manufacturer root-of-trust public key (DER).
func NewDeviceIdentityWithKeys(id string, keys *KeyPair, mfrPubDER []byte) (*DeviceIdentity, error) {
	pub, err := UnmarshalPublicKey(mfrPubDER)
	if err != nil {
		return nil, err
	}
	return &DeviceIdentity{ID: id, key: keys, mfr: &KeyPair{priv: &rsa.PrivateKey{PublicKey: *pub}}}, nil
}

// ManufacturerPublicDER exports the root-of-trust public key for device
// provisioning records.
func (m *Manufacturer) PublicDER() []byte { return MarshalPublicKey(m.key.Public()) }

// WriteTo is a small helper so callers can stream PEM material.
func WritePEM(w io.Writer, k *KeyPair) error {
	b, err := k.MarshalPEM()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
