package seccrypto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// The paper's per-router binding (SR4) stops a package built for one device
// from installing on another, but says nothing about *time*: a recorded
// package for the same device verifies forever, so an attacker who captured
// last year's vulnerable release can replay it and roll the router back
// (a downgrade attack). The manifest closes that hole: every bundle carries
// an application name, a human-facing semantic version, and a monotonic
// sequence number, all inside the signed plaintext, and each device keeps a
// per-application high-water mark that a verified package must exceed.

// Manifest identifies one release of a bundle. It is serialized inside the
// signed (and encrypted) payload, so any mutation of it invalidates the
// operator signature.
type Manifest struct {
	// AppName is the stable application identity the sequence is scoped to.
	AppName string
	// Version is the operator-facing semantic version label ("2.1.0").
	Version string
	// Sequence is the strictly monotonic release counter for AppName. A
	// device accepts a package only if Sequence exceeds its high-water mark
	// for the application; 0 marks a legacy/unversioned bundle that bypasses
	// the ledger (and earns no replay protection).
	Sequence uint64
}

// Zero reports whether the manifest is the unversioned legacy value.
func (m Manifest) Zero() bool {
	return m.AppName == "" && m.Version == "" && m.Sequence == 0
}

func (m Manifest) String() string {
	if m.Zero() {
		return "(unversioned)"
	}
	return fmt.Sprintf("%s@%s#%d", m.AppName, m.Version, m.Sequence)
}

// ErrDowngrade is returned when a verified package carries a sequence number
// at or below the device's high-water mark for its application — a replayed
// or downgraded release.
var ErrDowngrade = errors.New("seccrypto: bundle sequence regression (downgrade or replay)")

// SequenceLedger is a device's per-application high-water marks of accepted
// bundle sequence numbers. It is persisted across reboots (Marshal /
// UnmarshalSequenceLedger) so replay protection survives power cycles.
type SequenceLedger struct {
	high map[string]uint64
}

// NewSequenceLedger returns an empty ledger.
func NewSequenceLedger() *SequenceLedger {
	return &SequenceLedger{high: map[string]uint64{}}
}

// HighWater returns the highest accepted sequence for an application (0 if
// none was ever accepted).
func (l *SequenceLedger) HighWater(app string) uint64 {
	if l == nil || l.high == nil {
		return 0
	}
	return l.high[app]
}

// Accept checks seq against the application's high-water mark and advances
// it. Equal or lower sequences are rejected with ErrDowngrade: equality is a
// replay, less is a downgrade.
func (l *SequenceLedger) Accept(app string, seq uint64) error {
	if l.high == nil {
		l.high = map[string]uint64{}
	}
	if hw := l.high[app]; seq <= hw {
		return fmt.Errorf("%w: %s sequence %d, device high-water %d", ErrDowngrade, app, seq, hw)
	}
	l.high[app] = seq
	return nil
}

// Marshal serializes the ledger for device-local persistence. Entries are
// sorted by application name so the encoding is deterministic.
func (l *SequenceLedger) Marshal() []byte {
	var names []string
	for n := range l.high {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	buf.WriteString("SDMS")
	var c [4]byte
	binary.BigEndian.PutUint32(c[:], uint32(len(names)))
	buf.Write(c[:])
	for _, n := range names {
		writeBytes(&buf, []byte(n))
		var s [8]byte
		binary.BigEndian.PutUint64(s[:], l.high[n])
		buf.Write(s[:])
	}
	return buf.Bytes()
}

// UnmarshalSequenceLedger parses a ledger stored with Marshal.
func UnmarshalSequenceLedger(data []byte) (*SequenceLedger, error) {
	r := bytes.NewReader(data)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || string(magic[:]) != "SDMS" {
		return nil, fmt.Errorf("%w: bad ledger magic", ErrCorrupt)
	}
	var count uint32
	if err := binary.Read(r, binary.BigEndian, &count); err != nil {
		return nil, fmt.Errorf("%w: ledger count: %v", ErrCorrupt, err)
	}
	if int64(count) > int64(r.Len()) { // each entry needs >= 12 bytes
		return nil, fmt.Errorf("%w: ledger count %d exceeds payload", ErrCorrupt, count)
	}
	l := NewSequenceLedger()
	for i := uint32(0); i < count; i++ {
		name, err := readBytes(r)
		if err != nil {
			return nil, fmt.Errorf("%w: ledger entry %d: %v", ErrCorrupt, i, err)
		}
		var seq uint64
		if err := binary.Read(r, binary.BigEndian, &seq); err != nil {
			return nil, fmt.Errorf("%w: ledger entry %d sequence: %v", ErrCorrupt, i, err)
		}
		l.high[string(name)] = seq
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing ledger bytes", ErrCorrupt, r.Len())
	}
	return l, nil
}
